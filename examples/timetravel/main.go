// Timetravel demonstrates the multi-version store's historical reads: the
// unified-epoch design (§III-B) makes every read a historical read, so
// analytic queries over past snapshots are free — no locks, no conflicts
// with the live write stream, and any number of past versions readable at
// exact transaction boundaries.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"alohadb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := alohadb.Open(alohadb.Config{
		Servers:       2,
		EpochDuration: 4 * time.Millisecond,
		Preload: func(emit func(alohadb.Pair) error) error {
			for _, sym := range []string{"ORCL", "AAPL", "MSFT"} {
				if err := emit(alohadb.Pair{
					Key:   alohadb.Key("price:" + sym),
					Value: alohadb.EncodeInt64(100),
				}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()

	symbols := []alohadb.Key{"price:ORCL", "price:AAPL", "price:MSFT"}

	// Record a snapshot timestamp after each "trading round" of updates.
	var snapshots []alohadb.Timestamp
	deltas := [][]int64{
		{+5, -3, +1},
		{-2, +8, -4},
		{+9, -1, +2},
	}
	for round, d := range deltas {
		var h *alohadb.TxnHandle
		for i, sym := range symbols {
			var err error
			h, err = db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
				{Key: sym, Functor: alohadb.Add(d[i])},
			}})
			if err != nil {
				return err
			}
		}
		// Wait until the round's functors are processed, then snapshot.
		if _, _, err := h.Await(ctx); err != nil {
			return err
		}
		snap, err := db.Snapshot()
		if err != nil {
			return err
		}
		snapshots = append(snapshots, snap)
		fmt.Printf("round %d committed at snapshot %v\n", round+1, snap)
	}

	// Time-travel: read the whole board at each past snapshot. Historical
	// reads below the current epoch are served immediately and touch only
	// immutable versions — no synchronization with live writers at all.
	for i, snap := range snapshots {
		fmt.Printf("board as of round %d:", i+1)
		for _, sym := range symbols {
			v, found, err := db.GetAt(ctx, sym, snap)
			if err != nil {
				return err
			}
			if !found {
				fmt.Printf("  %s=?", sym)
				continue
			}
			n, _ := alohadb.DecodeInt64(v)
			fmt.Printf("  %s=%d", sym, n)
		}
		fmt.Println()
	}

	// Cross-snapshot analytics: biggest mover between round 1 and 3.
	fmt.Println("movers round 1 -> 3:")
	for _, sym := range symbols {
		v1, _, err := db.GetAt(ctx, sym, snapshots[0])
		if err != nil {
			return err
		}
		v3, _, err := db.GetAt(ctx, sym, snapshots[2])
		if err != nil {
			return err
		}
		a, _ := alohadb.DecodeInt64(v1)
		b, _ := alohadb.DecodeInt64(v3)
		fmt.Printf("  %s: %+d\n", sym, b-a)
	}
	return nil
}
