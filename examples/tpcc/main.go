// TPC-C runs a short burst of NewOrder and Payment transactions through
// both engines — ALOHA-DB's functor-enabled ECC and the Calvin baseline —
// on the same data and partitioning, then prints throughput and the
// latency breakdown (a miniature of the paper's §V-B evaluation).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"alohadb/internal/calvin"
	"alohadb/internal/core"
	"alohadb/internal/harness"
	"alohadb/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		servers  = flag.Int("servers", 4, "cluster size")
		perHost  = flag.Int("warehouses", 1, "warehouses per host (contention knob)")
		items    = flag.Int("items", 5000, "item table size")
		duration = flag.Duration("duration", time.Second, "measurement window")
		clients  = flag.Int("clients", 16, "closed-loop clients")
		scaled   = flag.Bool("scaled", false, "use scaled TPC-C (partition by item/district)")
	)
	flag.Parse()

	cfg := tpcc.Config{
		Servers:              *servers,
		Scaled:               *scaled,
		WarehousesPerServer:  *perHost,
		DistrictsPerServer:   *perHost,
		Items:                *items,
		CustomersPerDistrict: 100,
		AbortRate:            0.01,
	}

	fmt.Printf("TPC-C: %d servers, %d warehouses/districts per host, %d items, scaled=%v\n",
		*servers, *perHost, *items, *scaled)

	// ALOHA-DB.
	aloha, err := harness.NewAlohaTPCC(cfg, 0, 0, nil)
	if err != nil {
		return err
	}
	ares, err := harness.RunAloha(harness.AlohaRun{
		Cluster: aloha,
		NewTxn: func(cli int) func() core.Txn {
			g, gerr := tpcc.NewGenerator(cfg, cli%cfg.Servers, int64(cli)+1)
			if gerr != nil {
				panic(gerr)
			}
			return func() core.Txn { return tpcc.AlohaNewOrder(cfg, g.NextNewOrder()) }
		},
		Clients:       *clients,
		BatchSize:     4,
		Duration:      *duration,
		SampleLatency: true,
	})
	stats := aloha.Stats()
	aloha.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", ares)
	fmt.Printf("  aborts (1%% invalid items): %d; remote reads: %d; pushes: %d\n",
		ares.Aborts, stats.RemoteReads, stats.PushesSent)

	// Calvin baseline (it cannot abort, so its stream has no invalid
	// items, matching the paper's setup).
	cal, err := harness.NewCalvinTPCC(cfg, 0, 0)
	if err != nil {
		return err
	}
	calvinCfg := cfg
	calvinCfg.AbortRate = 0
	cres, err := harness.RunCalvin(harness.CalvinRun{
		Cluster: cal,
		NewTxn: func(cli int) func() calvin.Txn {
			g, gerr := tpcc.NewGenerator(calvinCfg, cli%cfg.Servers, int64(cli)+1)
			if gerr != nil {
				panic(gerr)
			}
			return func() calvin.Txn { return tpcc.CalvinNewOrder(cfg, g.NextNewOrder()) }
		},
		Clients:   *clients,
		BatchSize: 4,
		Duration:  *duration,
	})
	cal.Close()
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", cres)
	if cres.Throughput > 0 {
		fmt.Printf("\nALOHA-DB / Calvin throughput ratio: %.1fx\n", ares.Throughput/cres.Throughput)
	}
	return nil
}
