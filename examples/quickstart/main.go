// Quickstart: open an embedded ALOHA-DB cluster, write with functors, and
// read at serializable snapshots.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"alohadb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four combined front-end/back-end servers with 5 ms unified epochs
	// (the paper's production default is 25 ms; short epochs keep this
	// demo snappy).
	db, err := alohadb.Open(alohadb.Config{
		Servers:       4,
		EpochDuration: 5 * time.Millisecond,
		Preload: func(emit func(alohadb.Pair) error) error {
			return emit(alohadb.Pair{Key: "visits", Value: alohadb.EncodeInt64(0)})
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()

	// A write-only transaction: a literal value plus an arithmetic
	// functor. Functors are placeholders — the ADD below is installed
	// without reading anything and computed asynchronously after its
	// epoch commits, so no lock is ever taken.
	h, err := db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
		{Key: "motd", Functor: alohadb.PutValue(alohadb.Value("functors, not locks"))},
		{Key: "visits", Functor: alohadb.Add(1)},
	}})
	if err != nil {
		return err
	}
	// Acknowledgment option 2 (§IV-A): wait until the functors are fully
	// computed and learn the commit/abort decision.
	committed, reason, err := h.Await(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("transaction %v committed=%v %s\n", h.Version(), committed, reason)

	// Latest-version reads are serializable: they receive a timestamp in
	// the current epoch and are served when it commits (§III-B).
	motd, _, err := db.Get(ctx, "motd")
	if err != nil {
		return err
	}
	visitsRaw, _, err := db.Get(ctx, "visits")
	if err != nil {
		return err
	}
	visits, _ := alohadb.DecodeInt64(visitsRaw)
	fmt.Printf("motd=%q visits=%d\n", motd, visits)

	// Multi-key read-only transactions read one consistent snapshot.
	m, snap, err := db.ReadMany(ctx, []alohadb.Key{"motd", "visits"})
	if err != nil {
		return err
	}
	fmt.Printf("snapshot %v: %d keys\n", snap, len(m))
	return nil
}
