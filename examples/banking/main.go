// Banking reproduces the paper's Figure 5 scenario: three transactions
// over two accounts on two partitions — a multi-write, an unconditional
// transfer expressed as pure arithmetic functors, and a conditional
// transfer that aborts because the remaining balance would be negative.
// ALOHA-DB never aborts on conflicts; this abort is a logic error decided
// uniformly by every functor of the transaction (§IV-C).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"alohadb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// xferOutArg/xferInArg encode "source key | amount" for the conditional
// transfer handlers.
func transferHandlers() map[string]alohadb.Handler {
	balance := func(r alohadb.Read) int64 {
		if !r.Found {
			return 0
		}
		n, _ := alohadb.DecodeInt64(r.Value)
		return n
	}
	return map[string]alohadb.Handler{
		// xfer-out debits its own key, aborting on insufficient funds.
		"xfer-out": func(ctx *alohadb.HandlerContext) (*alohadb.Resolution, error) {
			amt, _ := alohadb.DecodeInt64(ctx.Arg)
			bal := balance(ctx.Reads[ctx.Key])
			if bal < amt {
				return alohadb.ResolveAbort("insufficient funds"), nil
			}
			return alohadb.ResolveValue(alohadb.EncodeInt64(bal - amt)), nil
		},
		// xfer-in credits its own key; its read set names the source key
		// so it reaches the same abort decision as xfer-out.
		"xfer-in": func(ctx *alohadb.HandlerContext) (*alohadb.Resolution, error) {
			src := alohadb.Key(ctx.Arg[8:])
			amt, _ := alohadb.DecodeInt64(ctx.Arg[:8])
			if balance(ctx.Reads[src]) < amt {
				return alohadb.ResolveAbort("insufficient funds"), nil
			}
			bal := balance(ctx.Reads[ctx.Key])
			return alohadb.ResolveValue(alohadb.EncodeInt64(bal + amt)), nil
		},
	}
}

func xferInArg(src alohadb.Key, amt int64) []byte {
	return append(alohadb.EncodeInt64(amt), src...)
}

func run() error {
	db, err := alohadb.Open(alohadb.Config{
		Servers:       2,
		EpochDuration: 5 * time.Millisecond,
		Handlers:      transferHandlers(),
		// Pin A and B to different partitions, like the figure.
		Router: alohadb.NewStaticRouter(2, func(k alohadb.Key, n int) int {
			if k == "account:A" {
				return 0
			}
			return 1 % n
		}),
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()

	// show reads both accounts at one consistent snapshot: two separate
	// Get calls would each draw their own snapshot.
	show := func() error {
		m, _, err := db.ReadMany(ctx, []alohadb.Key{"account:A", "account:B"})
		if err != nil {
			return err
		}
		av, _ := alohadb.DecodeInt64(m["account:A"])
		bv, _ := alohadb.DecodeInt64(m["account:B"])
		fmt.Printf("  A=$%d  B=$%d\n", av, bv)
		return nil
	}

	// T1: multi-write $150 to A, $100 to B. Awaiting between transactions
	// orders them explicitly; transactions submitted concurrently within
	// one epoch are ordered by their decentralized timestamps instead.
	fmt.Println("T1: multi-write 150 to A, 100 to B")
	t1, err := db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
		{Key: "account:A", Functor: alohadb.PutValue(alohadb.EncodeInt64(150))},
		{Key: "account:B", Functor: alohadb.PutValue(alohadb.EncodeInt64(100))},
	}})
	if err != nil {
		return err
	}
	if _, _, err := t1.Await(ctx); err != nil {
		return err
	}
	if err := show(); err != nil {
		return err
	}

	// T2: unconditional transfer $100 from A to B — exactly the figure's
	// SUB/ADD functors whose read set is the key itself.
	fmt.Println("T2: transfer 100 from A to B (SUB/ADD functors)")
	t2, err := db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
		{Key: "account:A", Functor: alohadb.Sub(100)},
		{Key: "account:B", Functor: alohadb.Add(100)},
	}})
	if err != nil {
		return err
	}
	if committed, reason, err := t2.Await(ctx); err != nil {
		return err
	} else {
		fmt.Printf("  committed=%v %s\n", committed, reason)
	}
	if err := show(); err != nil {
		return err
	}

	// T3: conditional transfer $100 from A to B if the balance allows —
	// A has only $50 left, so every functor of T3 resolves ABORTED. The
	// functor on A pushes its value proactively to B's partition
	// (recipient set, §IV-B), sparing B's functor the remote read.
	fmt.Println("T3: conditional transfer 100 from A to B (aborts: insufficient funds)")
	t3, err := db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
		{Key: "account:A", Functor: alohadb.User("xfer-out", alohadb.EncodeInt64(100), nil,
			alohadb.WithRecipients("account:B"))},
		{Key: "account:B", Functor: alohadb.User("xfer-in", xferInArg("account:A", 100),
			[]alohadb.Key{"account:A"})},
	}})
	if err != nil {
		return err
	}
	committed, reason, err := t3.Await(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  committed=%v reason=%q\n", committed, reason)
	if err := show(); err != nil {
		return err
	}

	stats := db.Stats()
	fmt.Printf("engine: %d functors installed, %d computed, %d pushes sent, %d push hits\n",
		stats.FunctorsInstalled, stats.FunctorsComputed, stats.PushesSent, stats.PushHits)
	return nil
}
