// Reservations demonstrates the optimistic approach to dependent
// transactions (paper §IV-E): a seat-booking workload where each booking
// must read the seat map before deciding which seat to write — the read
// set determines the write set, so the plain one-shot model does not fit.
// Bookings read a snapshot, pick a seat, and install OCC functors that
// validate (Hyder-style, but in parallel per key) during functor
// computing; losers abort and retry against a fresh snapshot.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"alohadb"
)

const seats = 8

func seatKey(i int) alohadb.Key { return alohadb.Key(fmt.Sprintf("seat:%d", i)) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := alohadb.Open(alohadb.Config{
		Servers:       2,
		EpochDuration: 4 * time.Millisecond,
		Preload: func(emit func(alohadb.Pair) error) error {
			for i := 0; i < seats; i++ {
				if err := emit(alohadb.Pair{Key: seatKey(i), Value: alohadb.Value("free")}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()

	// book reads the seat map at a snapshot, picks the first free seat,
	// and writes its name with OCC validation against that seat key. If a
	// rival booked the same seat first (its write serialized earlier), the
	// functor computation aborts and the booking retries.
	book := func(who string) (int, int, error) {
		for attempt := 1; ; attempt++ {
			snap, err := db.Snapshot()
			if err != nil {
				return 0, 0, err
			}
			// Reads at the snapshot: wait for its epoch, then scan.
			seatsNow, err := db.ScanPrefix(ctx, "seat:", snap)
			if err != nil {
				return 0, 0, err
			}
			chosen := -1
			for i := 0; i < seats; i++ {
				if string(seatsNow[seatKey(i)]) == "free" {
					chosen = i
					break
				}
			}
			if chosen < 0 {
				return -1, attempt, nil // sold out
			}
			h, err := db.Submit(ctx, alohadb.Txn{Writes: []alohadb.Write{
				{Key: seatKey(chosen), Functor: alohadb.OCCWrite(alohadb.Value(who), snap, nil)},
			}})
			if err != nil {
				return 0, 0, err
			}
			committed, _, err := h.Await(ctx)
			if err != nil {
				return 0, 0, err
			}
			if committed {
				return chosen, attempt, nil
			}
			// Validation failed: somebody else took the seat. Retry.
		}
	}

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	results := make(map[string]string)
	for i := 0; i < 10; i++ {
		who := fmt.Sprintf("guest-%02d", i)
		wg.Add(1)
		go func(who string) {
			defer wg.Done()
			seat, attempts, err := book(who)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				results[who] = "error: " + err.Error()
				return
			}
			if seat < 0 {
				results[who] = fmt.Sprintf("sold out (after %d attempts)", attempts)
				return
			}
			results[who] = fmt.Sprintf("seat %d (attempt %d)", seat, attempts)
		}(who)
	}
	wg.Wait()

	for i := 0; i < 10; i++ {
		who := fmt.Sprintf("guest-%02d", i)
		fmt.Printf("%s -> %s\n", who, results[who])
	}

	// Verify: every seat has exactly one owner.
	snap, err := db.Snapshot()
	if err != nil {
		return err
	}
	final, err := db.ScanPrefix(ctx, "seat:", snap)
	if err != nil {
		return err
	}
	owners := make(map[string]bool)
	taken := 0
	for i := 0; i < seats; i++ {
		v := string(final[seatKey(i)])
		if v == "free" {
			continue
		}
		taken++
		if owners[v] {
			return fmt.Errorf("DOUBLE BOOKING: %s holds two seats", v)
		}
		owners[v] = true
	}
	fmt.Printf("%d/%d seats taken, no double bookings\n", taken, seats)
	return nil
}
