# ALOHA-DB development targets.

GO ?= go

.PHONY: all build fmt-check vet test race bench bench-net figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Transport/combiner hot-path benchmarks; writes BENCH_transport.json.
bench-net:
	$(GO) run ./cmd/aloha-bench -netbench -netbench-label current -duration 2s

# Quick regeneration of every figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/aloha-bench -figure all

# Paper-scale parameters (slow).
figures-full:
	$(GO) run ./cmd/aloha-bench -figure all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/timetravel
	$(GO) run ./examples/reservations
	$(GO) run ./examples/tpcc -duration 500ms -items 1000

clean:
	$(GO) clean ./...
