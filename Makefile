# ALOHA-DB development targets.

GO ?= go

.PHONY: all build fmt-check vet test race bench bench-net chaos chaos-long figures figures-full examples obs-smoke migrate-smoke scenarios soak trend-gate clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Transport/combiner hot-path benchmarks; writes BENCH_transport.json.
bench-net:
	$(GO) run ./cmd/aloha-bench -netbench -netbench-label current -duration 2s

# Regression gate: rerun the suite and fail on a throughput regression
# against the committed current section (no file writes).
netbench-gate:
	./scripts/netbench-gate.sh

# Oracle-checked chaos smoke: a handful of seeds, exits non-zero on any
# violation and prints the replay command.
chaos:
	$(GO) run ./cmd/aloha-bench -chaos -chaos-seeds 4
	$(GO) run ./cmd/aloha-bench -chaos -chaos-seeds 1 -chaos-crash
	$(GO) run ./cmd/aloha-bench -chaos -chaos-seeds 1 -chaos-tcp

# Nightly-scale chaos sweep under the race detector (20+ seeds rotating
# link chaos, crash recovery, and TCP).
chaos-long:
	$(GO) test -race -timeout 40m ./internal/chaos/ -run TestChaosLong -v -count=1 -args -chaos.long

# Quick regeneration of every figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/aloha-bench -figure all

# Paper-scale parameters (slow).
figures-full:
	$(GO) run ./cmd/aloha-bench -figure all -full

# Observability smoke: boot a 3-server sim cluster with the full obs stack,
# aggregate it with aloha-top, and assert the cluster view is sane.
obs-smoke:
	./scripts/obs-smoke.sh

# Live-migration smoke: induce a single-partition Zipfian hot spot on a
# 3-server sim cluster, split it live through the placement layer, and
# assert throughput recovery plus a sane aloha-top view across the move.
migrate-smoke:
	./scripts/migrate-smoke.sh

# Scenario matrix smoke: every smoke-tagged scenario from the declarative
# registry (high-contention workloads + ported harnesses) under light
# fault injection, oracle-checked. `-scenario-list` shows the catalog.
scenarios:
	$(GO) run ./cmd/aloha-bench -scenarios smoke

# Nightly-scale soak: loop the soak-tagged scenarios with rotating seeds
# for SOAK_DURATION (default 20m). A failure writes a replayable artifact
# (scenario name, seed, log tail) to SCENARIO_ARTIFACT when set.
SOAK_DURATION ?= 20m
SCENARIO_ARTIFACT ?=
SCENARIO_TREND ?=
soak:
	$(GO) run ./cmd/aloha-bench -scenarios soak -soak-duration $(SOAK_DURATION) $(if $(SCENARIO_ARTIFACT),-scenario-artifact $(SCENARIO_ARTIFACT)) $(if $(SCENARIO_TREND),-scenario-trend $(SCENARIO_TREND))

# Nightly trend gate: compare tonight's TREND_*.jsonl summary rows against
# the previous night's file, failing on throughput / p99 / stall / anomaly
# regressions beyond a loose tolerance. First night (no previous file)
# passes and seeds the baseline.
TREND_PREV ?= TREND_prev.jsonl
TREND_CUR ?= TREND_soak.jsonl
trend-gate:
	./scripts/trend-gate.sh $(TREND_PREV) $(TREND_CUR)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/timetravel
	$(GO) run ./examples/reservations
	$(GO) run ./examples/tpcc -duration 500ms -items 1000

clean:
	$(GO) clean ./...
