// Command aloha-client is a minimal CLI for a TCP-deployed ALOHA-DB
// cluster: put, get, add, and delete against any server.
//
//	aloha-client -peers localhost:7000,localhost:7001 put mykey hello
//	aloha-client -peers localhost:7000,localhost:7001 get mykey
//	aloha-client -peers localhost:7000,localhost:7001 add counter 5
//	aloha-client -peers localhost:7000,localhost:7001 del mykey
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peers  = flag.String("peers", "", "comma-separated server addresses")
		server = flag.Int("server", 0, "server index to talk to")
		wait   = flag.Bool("wait", true, "wait for functor computing (ack option 2)")
	)
	flag.Parse()
	args := flag.Args()
	if *peers == "" || len(args) < 2 {
		return fmt.Errorf("usage: aloha-client -peers a,b,c <put|get|add|del> <key> [value]")
	}
	list := strings.Split(*peers, ",")
	if *server < 0 || *server >= len(list) {
		return fmt.Errorf("server index %d out of range", *server)
	}
	book := map[transport.NodeID]string{
		transport.NodeID(*server): strings.TrimSpace(list[*server]),
		// The client joins the mesh on an ephemeral high ID and port.
		transport.NodeID(1000): "127.0.0.1:0",
	}
	core.RegisterMessages()
	net := transport.NewTCPNetwork(book)
	defer net.Close()
	conn, err := net.Node(1000, func(context.Context, transport.NodeID, any) (any, error) { return nil, nil })
	if err != nil {
		return err
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dst := transport.NodeID(*server)

	cmd, key := args[0], kv.Key(args[1])
	switch cmd {
	case "get":
		raw, err := conn.Call(ctx, dst, core.MsgClientGet{Key: key})
		if err != nil {
			return err
		}
		resp := raw.(core.MsgClientGetResp)
		if !resp.Found {
			fmt.Println("(not found)")
			return nil
		}
		if n, ok := kv.DecodeInt64(resp.Value); ok {
			fmt.Printf("%s = %d\n", key, n)
			return nil
		}
		fmt.Printf("%s = %q\n", key, resp.Value)
		return nil
	case "put", "add", "del":
		var fn *functor.Functor
		switch cmd {
		case "put":
			if len(args) < 3 {
				return fmt.Errorf("put needs a value")
			}
			fn = functor.Value(kv.Value(args[2]))
		case "add":
			if len(args) < 3 {
				return fmt.Errorf("add needs a delta")
			}
			d, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				return err
			}
			fn = functor.Add(d)
		case "del":
			fn = functor.Deleted()
		}
		raw, err := conn.Call(ctx, dst, core.MsgClientSubmit{
			Writes:       []core.Write{{Key: key, Functor: fn}},
			WaitComputed: *wait,
		})
		if err != nil {
			return err
		}
		resp := raw.(core.MsgClientSubmitResp)
		if resp.Aborted {
			fmt.Printf("aborted at %v: %s\n", resp.Version, resp.Reason)
			return nil
		}
		fmt.Printf("committed at %v\n", resp.Version)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
