// Command aloha-em runs the epoch manager for a multi-process ALOHA-DB
// cluster: it grants and revokes epoch authorizations at every server over
// the TCP transport (paper §III-A). See cmd/aloha-server for the full
// deployment example.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/epoch"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peers    = flag.String("peers", "", "comma-separated server addresses, index-ordered")
		emAddr   = flag.String("em", "", "this epoch manager's address")
		duration = flag.Duration("epoch", epoch.DefaultDuration, "unified epoch duration (starting point when adaptive bounds are set)")
		epochMin = flag.Duration("epoch-interval-min", 0, "adaptive epoch interval lower bound (with -epoch-interval-max; 0 disables the tuner)")
		epochMax = flag.Duration("epoch-interval-max", 0, "adaptive epoch interval upper bound")
		codec    = flag.String("wire-codec", "binary", "wire codec for dialed connections: binary or gob")
		timeout  = flag.Duration("switch-timeout", time.Second, "straggler escape timeout per epoch switch")
		start    = flag.Uint("start-epoch", 0, "first granted epoch (0 = 1); a restarted EM must start above the cluster's current epoch or the servers rightly refuse to regress (see aloha_server_epoch or /debug/stall on any server)")
	)
	flag.Parse()
	if *peers == "" || *emAddr == "" {
		return fmt.Errorf("missing -peers or -em")
	}
	list := strings.Split(*peers, ",")
	book := make(map[transport.NodeID]string, len(list)+1)
	serverIDs := make([]transport.NodeID, len(list))
	for i, addr := range list {
		book[transport.NodeID(i)] = strings.TrimSpace(addr)
		serverIDs[i] = transport.NodeID(i)
	}
	emID := transport.NodeID(len(list))
	book[emID] = strings.TrimSpace(*emAddr)

	wc, err := transport.ParseCodec(*codec)
	if err != nil {
		return err
	}
	core.RegisterMessages()
	net := transport.NewTCPNetwork(book, transport.WithCodec(wc))
	defer net.Close()

	em, err := core.NewEMNode(net, emID, serverIDs, epoch.Config{
		Duration:      *duration,
		SwitchTimeout: *timeout,
		StartEpoch:    tstamp.Epoch(*start),
		MinDuration:   *epochMin,
		MaxDuration:   *epochMax,
	})
	if err != nil {
		return err
	}
	defer em.Close()
	if err := em.Manager.Run(); err != nil {
		return err
	}
	fmt.Printf("aloha-em driving %d servers with %s epochs\n", len(list), *duration)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
