// Command aloha-em runs the epoch manager for a multi-process ALOHA-DB
// cluster: it grants and revokes epoch authorizations at every server over
// the TCP transport (paper §III-A). See cmd/aloha-server for the full
// deployment example.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/epoch"
	"alohadb/internal/metrics"
	"alohadb/internal/obs/journal"
	"alohadb/internal/obs/tsdb"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peers    = flag.String("peers", "", "comma-separated server addresses, index-ordered")
		emAddr   = flag.String("em", "", "this epoch manager's address")
		duration = flag.Duration("epoch", epoch.DefaultDuration, "unified epoch duration (starting point when adaptive bounds are set)")
		epochMin = flag.Duration("epoch-interval-min", 0, "adaptive epoch interval lower bound (with -epoch-interval-max; 0 disables the tuner)")
		epochMax = flag.Duration("epoch-interval-max", 0, "adaptive epoch interval upper bound")
		codec    = flag.String("wire-codec", "binary", "wire codec for dialed connections: binary or gob")
		timeout  = flag.Duration("switch-timeout", time.Second, "straggler escape timeout per epoch switch")
		start    = flag.Uint("start-epoch", 0, "first granted epoch (0 = 1); a restarted EM must start above the cluster's current epoch or the servers rightly refuse to regress (see aloha_server_epoch or /debug/stall on any server)")
		opsAddr  = flag.String("metrics-addr", "", "ops HTTP listener (/metrics, /debug/epochs, /debug/timeseries); empty disables")
		tsEvery  = flag.Duration("timeseries-interval", 500*time.Millisecond, "flight recorder sample interval (0 disables the recorder)")
		tsKeep   = flag.Int("timeseries-retention", 0, "flight recorder ring length in samples (0 = default 240)")
	)
	flag.Parse()
	if *peers == "" || *emAddr == "" {
		return fmt.Errorf("missing -peers or -em")
	}
	list := strings.Split(*peers, ",")
	book := make(map[transport.NodeID]string, len(list)+1)
	serverIDs := make([]transport.NodeID, len(list))
	for i, addr := range list {
		book[transport.NodeID(i)] = strings.TrimSpace(addr)
		serverIDs[i] = transport.NodeID(i)
	}
	emID := transport.NodeID(len(list))
	book[emID] = strings.TrimSpace(*emAddr)

	wc, err := transport.ParseCodec(*codec)
	if err != nil {
		return err
	}
	core.RegisterMessages()
	net := transport.NewTCPNetwork(book, transport.WithCodec(wc))
	defer net.Close()

	em, err := core.NewEMNode(net, emID, serverIDs, epoch.Config{
		Duration:      *duration,
		SwitchTimeout: *timeout,
		StartEpoch:    tstamp.Epoch(*start),
		MinDuration:   *epochMin,
		MaxDuration:   *epochMax,
	})
	if err != nil {
		return err
	}
	defer em.Close()

	// The EM's flight recorder watches the cluster's heartbeat from the
	// grantor's side: epoch grant rate (a stalled cluster flatlines here
	// first), switch cost, the adaptive tuner's interval, and runtime
	// health. Same rings and /debug/timeseries document as the servers',
	// so aloha-top could merge it, and anomalies (grant-rate drop, switch
	// cost step-up) annotate themselves with the epoch range.
	var rec *tsdb.Recorder
	if *opsAddr != "" && *tsEvery > 0 {
		mgr := em.Manager
		rec = tsdb.New(tsdb.Config{
			Server:    int(emID),
			Interval:  *tsEvery,
			Retention: *tsKeep,
			Epoch:     func() uint64 { return uint64(mgr.Current()) },
			Sources: []tsdb.Source{
				{Name: "epoch_grant_rate", Unit: "epochs/s", Kind: tsdb.KindRate,
					Value:  func() float64 { return float64(mgr.Current()) },
					Detect: tsdb.Detect{DropFrac: 0.5, MinBaseline: 1}},
				{Name: "epoch_interval", Unit: "seconds", Kind: tsdb.KindGauge,
					Value: func() float64 { return mgr.Interval().Seconds() }},
				{Name: "switch_mean", Unit: "seconds", Kind: tsdb.KindGauge,
					Value: func() float64 {
						n, total := mgr.SwitchStats()
						if n == 0 {
							return math.NaN()
						}
						return total.Seconds() / float64(n)
					}},
				{Name: "heap_bytes", Unit: "bytes", Kind: tsdb.KindGauge,
					Value: func() float64 {
						var ms runtime.MemStats
						runtime.ReadMemStats(&ms)
						return float64(ms.HeapAlloc)
					}},
				{Name: "goroutines", Unit: "goroutines", Kind: tsdb.KindGauge,
					Value: func() float64 { return float64(runtime.NumGoroutine()) }},
			},
		})
		rec.Start()
		defer rec.Stop()
	}

	var ops *http.Server
	if *opsAddr != "" {
		mgr := em.Manager
		gather := func() []metrics.Family {
			return metrics.Merge(mgr.MetricFamilies(), net.NetMetrics().MetricFamilies(), metrics.RuntimeFamilies())
		}
		opts := []metrics.OpsOption{
			metrics.WithDebug("epochs", journal.DocHandler(nil, mgr.Journal())),
		}
		if rec != nil {
			opts = append(opts, metrics.WithDebug("timeseries", rec.Handler()))
		}
		ops = &http.Server{Addr: *opsAddr, Handler: metrics.OpsHandler(gather, opts...)}
		go func() {
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "aloha-em: ops listener: %v\n", err)
			}
		}()
		fmt.Printf("aloha-em ops endpoint on http://%s/metrics\n", *opsAddr)
	}

	if err := em.Manager.Run(); err != nil {
		return err
	}
	fmt.Printf("aloha-em driving %d servers with %s epochs\n", len(list), *duration)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if ops != nil {
		ops.Close()
	}
	return nil
}
