package main

import (
	"fmt"
	"os"
	"time"

	"alohadb/internal/harness"
	"alohadb/internal/obs/tsdb"
)

// trendRows converts figure results into bench-kind trend rows, the same
// aloha-trend/v1 schema the scenario soak emits, so bench and soak
// trajectories flow through one gate. Scenario keys are
// "fig<N>/<engine>/<label>"; labels that repeat within a figure (e.g.
// Figure 6's client sweep reuses the config label) get a deterministic
// "#<n>" suffix in sweep order.
func trendRows(fig string, results []harness.Result, at time.Time) []tsdb.TrendRow {
	seen := make(map[string]int, len(results))
	rows := make([]tsdb.TrendRow, 0, len(results))
	for _, r := range results {
		key := "fig" + fig + "/" + r.Engine + "/" + r.Label
		if n := seen[key]; n > 0 {
			key = fmt.Sprintf("%s#%d", key, n+1)
		}
		seen["fig"+fig+"/"+r.Engine+"/"+r.Label]++
		rows = append(rows, tsdb.TrendRow{
			Kind:       tsdb.TrendKindBench,
			Scenario:   key,
			At:         at.UTC().Format(time.RFC3339),
			WindowS:    r.Duration.Seconds(),
			Throughput: r.Throughput,
			P99MS:      float64(r.Latency.P99) / float64(time.Millisecond),
			MeanMS:     float64(r.Latency.Mean) / float64(time.Millisecond),
			Commits:    r.Txns,
			Aborts:     r.Aborts,
		})
	}
	return rows
}

// runTrendGate is the nightly regression gate: read the previous run's
// trend file and the current one, compare matched (kind, scenario) rows
// under the loose tolerances, and exit non-zero listing every sustained
// regression. A missing previous file is not an error — the first night
// has no baseline.
func runTrendGate(prevPath, curPath string, tolerance float64) error {
	cur, err := tsdb.ReadTrend(curPath)
	if err != nil {
		return fmt.Errorf("aloha-bench: trend gate: current %s: %w", curPath, err)
	}
	prev, err := tsdb.ReadTrend(prevPath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("# trend gate: no previous baseline at %s — %d current rows pass by default\n", prevPath, len(cur))
			return nil
		}
		return fmt.Errorf("aloha-bench: trend gate: previous %s: %w", prevPath, err)
	}
	fails := tsdb.GateTrend(prev, cur, tsdb.GateConfig{Tolerance: tolerance})
	fmt.Printf("# trend gate: %d baseline rows vs %d current rows (tolerance %.0f%%)\n",
		len(prev), len(cur), 100*gateTolerance(tolerance))
	if len(fails) == 0 {
		fmt.Println("# trend gate: no sustained regressions")
		return nil
	}
	for _, f := range fails {
		fmt.Printf("REGRESSION %s\n", f)
	}
	return fmt.Errorf("aloha-bench: trend gate: %d sustained regression(s)", len(fails))
}

// gateTolerance mirrors GateConfig's default so the banner reports the
// effective value when the flag is unset.
func gateTolerance(t float64) float64 {
	if t <= 0 {
		return 0.35
	}
	return t
}
