// Command aloha-bench regenerates the paper's evaluation figures
// (Figures 6-11, §V) on the embedded simulated cluster, printing one row
// per parameter point.
//
// Usage:
//
//	aloha-bench -figure 9                 # quick sweep of Figure 9
//	aloha-bench -figure 6 -full           # paper-scale parameters
//	aloha-bench -figure all -servers 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"alohadb/internal/harness"
	"alohadb/internal/obs/tsdb"
	"alohadb/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, or all")
		full     = flag.Bool("full", false, "paper-scale parameters (slow); default is the quick sweep")
		servers  = flag.Int("servers", 0, "cluster size override")
		duration = flag.Duration("duration", 0, "measurement window override per point")
		items    = flag.Int("items", 0, "TPC-C item table size override")
		csvPath  = flag.String("csv", "", "also write machine-readable results to this CSV file (figures 6-9, 11)")

		traceSample  = flag.Float64("trace-sample", 0, "trace sample rate in [0,1] for the ALOHA-DB clusters under benchmark")
		traceSlowest = flag.Int("trace-slowest", 0, "after the sweep, dump the N slowest captured traces (needs -trace-sample)")

		netbench      = flag.Bool("netbench", false, "run the network-path benchmark suite (transport coalescing, remote reads, 2-server NewOrder over TCP) instead of the figures")
		netbenchOut   = flag.String("netbench-out", "BENCH_transport.json", "netbench report path (baseline rows in the file are preserved)")
		netbenchLabel = flag.String("netbench-label", "current", "which report section the run's rows replace: current or baseline")
		netbenchGate  = flag.Bool("netbench-gate", false, "regression-gate mode: run the suite, compare throughput rows against the committed current section of -netbench-out, and exit non-zero on a regression beyond -netbench-gate-tolerance without writing the file")
		netbenchTol   = flag.Float64("netbench-gate-tolerance", 0.10, "allowed fractional throughput regression in gate mode (0.10 = 10%)")
		netbenchTraj  = flag.String("netbench-trajectory", "", "when replacing the current section, preserve the old current rows in the trajectory under this label")

		chaosMode  = flag.Bool("chaos", false, "run oracle-checked chaos scenarios instead of the figures; exits non-zero on any oracle violation")
		chaosSeeds = flag.Int("chaos-seeds", 4, "number of consecutive chaos seeds to run")
		chaosSeed  = flag.Int64("chaos-seed", 0, "replay exactly this chaos seed (overrides -chaos-seeds)")
		chaosBase  = flag.Int64("chaos-base", 1, "first seed of the chaos sweep")
		chaosOps   = flag.Int("chaos-ops", 60, "transactions per chaos writer")
		chaosCrash = flag.Bool("chaos-crash", false, "crash the cluster mid-run and recover from the WAL in every chaos scenario")
		chaosTCP   = flag.Bool("chaos-tcp", false, "run chaos scenarios over real TCP sockets")
		chaosCodec = flag.String("chaos-codec", "", "TCP wire codec for chaos scenarios: binary, gob, or mixed (with -chaos-tcp)")

		scenarios        = flag.String("scenarios", "", "run the declarative scenario matrix: an attribute expression over the catalog (e.g. smoke, 'chaos && !crash', 'name:feed-*'); exits non-zero on any failure and writes a replay artifact")
		scenarioList     = flag.Bool("scenario-list", false, "list the scenario catalog (names, attributes, summaries) and exit")
		scenarioSeed     = flag.Int64("scenario-seed", 1, "deterministic base seed for the scenario matrix (recorded in the replay artifact)")
		scenarioWindow   = flag.Duration("scenario-window", 0, "per-scenario workload window override (default 800ms)")
		scenarioArtifact = flag.String("scenario-artifact", "", "replay artifact path for failing scenarios (default $SCENARIO_ARTIFACT)")
		scenarioTrend    = flag.String("scenario-trend", "", "trend-summary JSONL path for the matrix run (default $SCENARIO_TREND); the nightly soak writes it and `make trend-gate` compares it against the previous night")
		soakDuration     = flag.Duration("soak-duration", 0, "soak mode: divide this total budget across the selected scenarios and run each as a long-window soak gated on p99 SLOs and zero stalls")

		trendOut  = flag.String("trend-out", "", "also write the figure results as bench-kind trend rows (aloha-trend/v1 JSONL) to this file; the checked-in quick sweep lives in TREND_bench_quick.jsonl")
		trendGate = flag.Bool("trend-gate", false, "trend-gate mode: compare the -trend-cur file against the -trend-prev baseline and exit non-zero on any sustained regression (no benchmarks run)")
		trendPrev = flag.String("trend-prev", "", "previous run's trend JSONL for -trend-gate (missing file = no baseline yet, gate passes)")
		trendCur  = flag.String("trend-cur", "", "current run's trend JSONL for -trend-gate")
		trendTol  = flag.Float64("trend-tolerance", 0, "trend gate fractional tolerance on throughput drops and p99 rises (0 = default 0.35)")

		obsSim         = flag.Bool("obs-sim", false, "boot a live simulated cluster with the full observability stack (per-server ops listeners, epoch watchdogs, skew profiler) plus a light workload; the target for aloha-top and CI's obs smoke")
		obsSimServers  = flag.Int("obs-sim-servers", 3, "obs-sim cluster size")
		obsSimAddrFile = flag.String("obs-sim-addr-file", "", "write the comma-separated ops addresses to this file once the listeners are up")

		epochReport        = flag.Int("epoch-report", 0, "boot an embedded cluster, run a light workload for -duration, then print the N slowest epochs with cluster-wide critical-path attribution (which server and stage gated each commit)")
		epochReportServers = flag.Int("epoch-report-servers", 3, "epoch-report cluster size")

		migrateSim         = flag.Bool("migrate-sim", false, "run the hot-spot recovery smoke: measure baseline throughput, induce a single-partition Zipfian hot spot, split it live via the placement layer, and require post-split throughput to recover; exits non-zero on failure")
		migrateSimAddrFile = flag.String("migrate-sim-addr-file", "", "write the comma-separated ops addresses to this file once the listeners are up")
		migrateSimPhase    = flag.Duration("migrate-sim-phase", 2*time.Second, "measurement window per migrate-sim phase")
		migrateSimRatio    = flag.Float64("migrate-sim-ratio", 0.9, "required post-split throughput as a fraction of baseline")
	)
	flag.Parse()

	if *trendGate {
		if *trendPrev == "" || *trendCur == "" {
			return fmt.Errorf("aloha-bench: -trend-gate needs -trend-prev and -trend-cur")
		}
		return runTrendGate(*trendPrev, *trendCur, *trendTol)
	}

	if *scenarios != "" || *scenarioList {
		return runScenarios(scenarioOptions{
			expr:     *scenarios,
			list:     *scenarioList,
			seed:     *scenarioSeed,
			window:   *scenarioWindow,
			soak:     *soakDuration,
			artifact: *scenarioArtifact,
			trend:    *scenarioTrend,
		})
	}

	if *epochReport > 0 {
		return runEpochReport(epochReportOptions{
			servers:  *epochReportServers,
			duration: *duration,
			slowest:  *epochReport,
		})
	}

	if *migrateSim {
		return runMigrateSim(migrateSimOptions{
			servers:  *servers,
			addrFile: *migrateSimAddrFile,
			phase:    *migrateSimPhase,
			minRatio: *migrateSimRatio,
		})
	}

	if *obsSim {
		return runObsSim(obsSimOptions{
			servers:  *obsSimServers,
			duration: *duration,
			addrFile: *obsSimAddrFile,
		})
	}

	if *chaosMode {
		return runChaos(chaosOptions{
			seeds: *chaosSeeds,
			seed:  *chaosSeed,
			base:  *chaosBase,
			ops:   *chaosOps,
			crash: *chaosCrash,
			tcp:   *chaosTCP,
			codec: *chaosCodec,
		})
	}

	if *netbench {
		o := harness.Options{
			Quick:    !*full,
			Duration: *duration,
			Items:    *items,
			Out:      os.Stdout,
		}
		if *netbenchGate {
			return runNetBenchGate(o, *netbenchOut, *netbenchTol)
		}
		return runNetBench(o, *netbenchOut, *netbenchLabel, *netbenchTraj)
	}

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{SampleRate: *traceSample})
	} else if *traceSlowest > 0 {
		return fmt.Errorf("aloha-bench: -trace-slowest needs -trace-sample > 0")
	}

	opts := harness.Options{
		Quick:    !*full,
		Servers:  *servers,
		Duration: *duration,
		Items:    *items,
		Out:      os.Stdout,
		Tracer:   tracer,
	}

	var collected []harness.Result
	var trend []tsdb.TrendRow
	trendAt := time.Now()
	collect := func(figName string, rows []harness.Result, err error) error {
		collected = append(collected, rows...)
		trend = append(trend, trendRows(figName, rows, trendAt)...)
		return err
	}
	type fig struct {
		name string
		run  func(harness.Options) error
	}
	figs := map[string]func(harness.Options) error{
		"6":  func(o harness.Options) error { rows, err := harness.Figure6(o); return collect("6", rows, err) },
		"7":  func(o harness.Options) error { rows, err := harness.Figure7(o); return collect("7", rows, err) },
		"8":  func(o harness.Options) error { rows, err := harness.Figure8(o); return collect("8", rows, err) },
		"9":  func(o harness.Options) error { rows, err := harness.Figure9(o); return collect("9", rows, err) },
		"10": func(o harness.Options) error { _, err := harness.Figure10(o); return err },
		"11": func(o harness.Options) error { rows, err := harness.Figure11(o); return collect("11", rows, err) },
	}

	var order []fig
	if *figure == "all" {
		for _, n := range []string{"6", "7", "8", "9", "10", "11"} {
			order = append(order, fig{name: n, run: figs[n]})
		}
	} else {
		f, ok := figs[*figure]
		if !ok {
			return fmt.Errorf("unknown figure %q (want 6..11 or all)", *figure)
		}
		order = append(order, fig{name: *figure, run: f})
	}

	for _, f := range order {
		start := time.Now()
		if err := f.run(opts); err != nil {
			return fmt.Errorf("figure %s: %w", f.name, err)
		}
		fmt.Printf("# figure %s done in %s\n\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	if *csvPath != "" && len(collected) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteCSV(f, collected); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Printf("# wrote %d rows to %s\n", len(collected), *csvPath)
	}
	if *trendOut != "" && len(trend) > 0 {
		if err := tsdb.WriteTrend(*trendOut, trend); err != nil {
			return fmt.Errorf("write trend: %w", err)
		}
		fmt.Printf("# wrote %d trend rows to %s\n", len(trend), *trendOut)
	}
	if *traceSlowest > 0 {
		slowest := trace.Slowest(tracer.Traces(), *traceSlowest)
		fmt.Printf("# %d slowest traces (of %d captured, %d spans dropped)\n",
			len(slowest), len(tracer.Traces()), tracer.Dropped())
		if err := trace.WriteText(os.Stdout, slowest); err != nil {
			return err
		}
	}
	return nil
}

// runNetBench executes the network-path suite and merges its rows into the
// JSON report, preserving the other section (committed baseline rows
// survive `make bench-net` regenerating the current rows, and vice versa).
// With trajLabel set, the superseded current rows move into the trajectory
// under that label instead of being discarded, so the committed file keeps
// the transport's performance history.
func runNetBench(o harness.Options, path, label, trajLabel string) error {
	if label != "current" && label != "baseline" {
		return fmt.Errorf("aloha-bench: -netbench-label must be current or baseline, got %q", label)
	}
	rows, err := harness.NetBench(o)
	if err != nil {
		return err
	}
	var report harness.NetBenchReport
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("aloha-bench: parse %s: %w", path, err)
		}
	}
	if label == "baseline" {
		report.Baseline = rows
	} else {
		if trajLabel != "" && len(report.Current) > 0 {
			report.Trajectory = append(report.Trajectory, harness.NetBenchSnapshot{
				Label: trajLabel, Rows: report.Current,
			})
			fmt.Printf("# preserved %d old current rows in trajectory %q\n", len(report.Current), trajLabel)
		}
		report.Current = rows
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %d %s rows to %s\n", len(rows), label, path)
	return nil
}

// runNetBenchGate is CI's regression gate: run the suite and compare its
// throughput rows against the committed current section, failing on any
// regression beyond tolerance. The report file is never written.
func runNetBenchGate(o harness.Options, path string, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("aloha-bench: gate needs a committed report: %w", err)
	}
	var report harness.NetBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		return fmt.Errorf("aloha-bench: parse %s: %w", path, err)
	}
	if len(report.Current) == 0 {
		return fmt.Errorf("aloha-bench: %s has no current section to gate against", path)
	}
	rows, err := harness.NetBench(o)
	if err != nil {
		return err
	}
	if fails := harness.GateFailures(report.Current, rows, tolerance); len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("# GATE FAIL %s\n", f)
		}
		return fmt.Errorf("aloha-bench: netbench gate: %d throughput regression(s) beyond %.0f%%", len(fails), tolerance*100)
	}
	fmt.Printf("# netbench gate PASS against %s (tolerance %.0f%%)\n", path, tolerance*100)
	return nil
}
