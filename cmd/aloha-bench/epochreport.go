package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs/clusterview"
	"alohadb/internal/obs/journal"
	"alohadb/internal/scenario"
)

// epochReportOptions configures the -epoch-report run.
type epochReportOptions struct {
	servers  int
	duration time.Duration
	slowest  int
}

// runEpochReport answers "why were my slowest epochs slow?" without any HTTP
// plumbing: it boots an embedded cluster, drives a light Zipfian workload for
// the measurement window, then merges the in-process epoch journals (every
// server's plus the EM mirror) and prints the slowest N committed epochs with
// their cluster-wide critical-path attribution — which server and which stage
// (install tail, ack straggler, fsync, ship, broadcast) gated each commit.
func runEpochReport(o epochReportOptions) error {
	if o.servers <= 0 {
		o.servers = 3
	}
	if o.duration <= 0 {
		o.duration = 3 * time.Second
	}
	if o.slowest <= 0 {
		o.slowest = 10
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:       o.servers,
		EpochDuration: 5 * time.Millisecond,
		Registry:      functor.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		return err
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 999)
	deadline := time.Now().Add(o.duration)
	var submitted int
	for time.Now().Before(deadline) {
		key := kv.Key(fmt.Sprintf("item-%d", zipf.Uint64()))
		h, err := c.Server(submitted%o.servers).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: key, Functor: functor.Add(1)},
		}})
		if err == nil {
			submitted++
			if submitted%16 == 0 {
				_, _, _ = h.Await(ctx)
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	// Let the tail of the workload commit and publish before snapshotting:
	// wait for the commit frontier to pass the current epoch rather than
	// sleeping a guessed number of epoch durations.
	if err := scenario.WaitCommitted(c, 2*time.Second); err != nil {
		return err
	}

	docs := make([]journal.Doc, 0, o.servers+1)
	for i := 0; i < o.servers; i++ {
		docs = append(docs, c.Server(i).Journal().Doc())
	}
	if em := c.EpochManager(); em != nil {
		docs = append(docs, journal.Doc{EM: em.Journal().Snapshot()})
	}
	paths := clusterview.MergeEpochs(docs...)

	fmt.Printf("epoch report: %d servers, %s window, %d txns submitted, %d epochs attributed\n",
		o.servers, o.duration, submitted, len(paths))
	fmt.Printf("slowest %d epochs (critical path):\n", o.slowest)
	clusterview.RenderEpochs(os.Stdout, paths, o.slowest)
	for sid, gc := range clusterview.GatingSummary(paths) {
		fmt.Printf("server %d gated %d epochs (mostly %s)\n", sid, gc.Epochs, gc.Stage)
	}
	return nil
}
