package main

// The -chaos mode runs seed-driven fault-injection scenarios against a
// real cluster and checks every run with the history oracle — the CLI
// face of internal/chaos, used by the CI smoke job and for replaying
// failing seeds from nightly runs.

import (
	"fmt"
	"os"

	"alohadb/internal/chaos"
)

type chaosOptions struct {
	seeds int    // number of consecutive seeds to run
	seed  int64  // when non-zero, replay exactly this seed
	base  int64  // first seed of the sweep
	ops   int    // transactions per writer
	crash bool   // include a mid-run crash + WAL recovery in every scenario
	tcp   bool   // run over real TCP sockets
	codec string // TCP wire codec: binary, gob, or mixed
}

// runChaos executes the configured scenarios and returns an error (→
// non-zero exit) if any seed's oracle run fails, printing the exact
// replay invocation for each failure.
func runChaos(o chaosOptions) error {
	seeds := make([]int64, 0, o.seeds)
	if o.seed != 0 {
		seeds = append(seeds, o.seed)
	} else {
		for i := 0; i < o.seeds; i++ {
			seeds = append(seeds, o.base+int64(i))
		}
	}
	var failed []int64
	for _, seed := range seeds {
		cfg := chaos.ScenarioConfig{
			Seed:         seed,
			LinkChaos:    !o.tcp,
			OpsPerWriter: o.ops,
			Crash:        o.crash,
			TCP:          o.tcp,
			WireCodec:    o.codec,
		}
		if o.tcp {
			// TCP RPCs are slower; the in-memory fault mix would mostly
			// measure retry latency (same tuning as TestChaosOverTCP).
			probs := chaos.DefaultProbabilities()
			probs.DropCall, probs.DropSend = 0.01, 0.03
			cfg.Probabilities = &probs
		}
		if o.crash {
			dir, err := os.MkdirTemp("", "aloha-chaos-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cfg.Dir = dir
		}
		rep, err := chaos.RunScenario(cfg)
		if err != nil {
			fmt.Printf("seed %d: scenario error: %v\n", seed, err)
			failed = append(failed, seed)
			continue
		}
		fmt.Println(rep)
		if !rep.OK() {
			failed = append(failed, seed)
		}
	}
	if len(failed) > 0 {
		for _, seed := range failed {
			codecFlag := ""
			if o.codec != "" {
				codecFlag = " -chaos-codec " + o.codec
			}
			fmt.Printf("replay: go run ./cmd/aloha-bench -chaos -chaos-seed %d%s%s%s\n",
				seed, boolFlag(" -chaos-crash", o.crash), boolFlag(" -chaos-tcp", o.tcp), codecFlag)
		}
		return fmt.Errorf("aloha-bench: %d/%d chaos seeds failed the oracle", len(failed), len(seeds))
	}
	fmt.Printf("# chaos: %d seeds, oracle PASS\n", len(seeds))
	return nil
}

func boolFlag(s string, set bool) string {
	if set {
		return s
	}
	return ""
}
