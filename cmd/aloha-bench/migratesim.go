package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/scenario"
	"alohadb/internal/tstamp"
)

// migrateSimOptions configures the live-migration smoke simulation.
type migrateSimOptions struct {
	servers  int
	addrFile string
	writers  int
	phase    time.Duration
	minRatio float64
}

// runMigrateSim is the hot-spot recovery smoke: boot a simulated cluster
// with the skew profiler and per-server ops listeners, measure baseline
// throughput under a uniform workload, induce a Zipfian hot spot whose
// keys all live on one partition, split the hot range live (the skew
// top-K feeds MoveKey), and verify post-split throughput recovers to
// within the configured fraction of the baseline. Exits non-zero when the
// split moves nothing or throughput stays depressed.
func runMigrateSim(o migrateSimOptions) error {
	if o.servers <= 0 {
		o.servers = 3
	}
	if o.writers <= 0 {
		o.writers = 6
	}
	if o.phase <= 0 {
		o.phase = 2 * time.Second
	}
	if o.minRatio <= 0 {
		o.minRatio = 0.9
	}
	// Ops listeners so aloha-top can watch the split happen (ownership
	// generation, migration counters, per-partition skew). Retention is
	// bounded: the workload appends tens of thousands of versions per key,
	// and unbounded chains make every epoch seal (a copy-on-write merge of
	// the full chain) grow linearly with phase count, which would skew the
	// before/after throughput comparison.
	env, err := scenario.BuildEnv(scenario.EnvConfig{
		Servers:       o.servers,
		EpochDuration: 5 * time.Millisecond,
		Registry:      functor.NewRegistry(),
		Retention:     8,
		Skew:          &obs.SkewConfig{SampleEvery: 1, TopK: 32},
		Ops:           true,
	})
	if err != nil {
		return err
	}
	defer env.Close()
	c := env.Cluster
	skew := env.Skew
	list := strings.Join(env.OpsAddrs, ",")
	fmt.Printf("migrate-sim: %d servers ready at %s\n", o.servers, list)
	if o.addrFile != "" {
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(list+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}

	// Two key sets with the same Zipfian popularity profile, differing
	// only in placement: spread[r] (popularity rank r) hashes to partition
	// r%servers — the balanced layout — while hot[r] all hash to partition
	// 0, so the hot phase drives one server far above the others. The live
	// split must recover the balanced layout's throughput.
	const setSize = 16
	craft := func(prefix string, part func(rank int) int) ([]kv.Key, error) {
		keys := make([]kv.Key, 0, setSize)
		for i := 0; len(keys) < setSize && i < 100_000; i++ {
			k := kv.Key(fmt.Sprintf("%s%05d", prefix, i))
			if kv.PartitionOf(k, o.servers) == part(len(keys)) {
				keys = append(keys, k)
			}
		}
		if len(keys) < setSize {
			return nil, fmt.Errorf("migrate-sim: could not craft key set %q", prefix)
		}
		return keys, nil
	}
	spread, err := craft("spread-", func(rank int) int { return rank % o.servers })
	if err != nil {
		return err
	}
	hot, err := craft("hot-", func(int) int { return 0 })
	if err != nil {
		return err
	}

	// measure drives closed-loop writers for one phase and returns the
	// committed install rate plus the error count. mkPick builds one
	// key picker per writer from its seeded rng.
	measure := func(mkPick func(rng *rand.Rand) func() kv.Key) (float64, int) {
		var ops, errs atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < o.writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w) + 1))
				pick := mkPick(rng)
				srv := c.Server(w % o.servers)
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					h, err := srv.Submit(ctx, core.Txn{Writes: []core.Write{
						{Key: pick(), Functor: functor.Add(1)},
					}})
					switch {
					case err != nil:
						errs.Add(1)
					default:
						if aborted, _ := h.Installed(); aborted {
							errs.Add(1)
							cancel()
							continue
						}
						ops.Add(1)
						// Await every 64th txn: without pacing, installs outrun
						// the functor processors and the growing compute
						// backlog bleeds CPU into later phases, skewing the
						// before/after comparison. (A tighter interval would
						// epoch-bind the writers and hide placement entirely.)
						if n%64 == 0 {
							_, _, _ = h.Await(ctx)
						}
					}
					cancel()
				}
			}(w)
		}
		time.Sleep(o.phase)
		close(stop)
		wg.Wait()
		// Settle before the next window so leftover compute work from this
		// one cannot bleed into its measurement.
		c.DrainProcessors()
		return float64(ops.Load()) / o.phase.Seconds(), int(errs.Load())
	}

	// Mildly Zipfian (s=1.1, v=8): rank 0 draws ~3x the tail, but no single
	// key dominates — a steeper curve would serialize on the head key's
	// version chain and hide the partition imbalance the split fixes.
	zipfPick := func(keys []kv.Key) func(rng *rand.Rand) func() kv.Key {
		return func(rng *rand.Rand) func() kv.Key {
			z := rand.NewZipf(rng, 1.1, 8, uint64(len(keys)-1))
			return func() kv.Key { return keys[z.Uint64()] }
		}
	}
	// measureMedian runs three windows and takes the median rate and the
	// worst error count: single windows on a shared CI machine can swing
	// >10% from GC pauses and scheduler noise alone.
	measureMedian := func(mkPick func(rng *rand.Rand) func() kv.Key) (float64, int) {
		rates := make([]float64, 3)
		errs := 0
		for i := range rates {
			r, e := measure(mkPick)
			rates[i] = r
			if e > errs {
				errs = e
			}
		}
		sort.Float64s(rates)
		return rates[1], errs
	}

	// Warm up to chain steady state (retention-bounded view lengths, GC
	// heap settled) before measuring anything: fresh empty chains would
	// flatter the first phase measured and nothing else.
	measure(zipfPick(spread))

	baseline, berrs := measureMedian(zipfPick(spread))
	fmt.Printf("migrate-sim: baseline (balanced layout) %.0f ops/s (%d errors)\n", baseline, berrs)

	hotRate, herrs := measure(zipfPick(hot))
	fmt.Printf("migrate-sim: hot spot (all on partition 0) %.0f ops/s (%d errors)\n", hotRate, herrs)

	// Forced split: the skew profiler's top-K orders the hot keys by
	// observed traffic; move rank r to partition r%servers, reproducing
	// the balanced layout live. Handoffs execute inside the timed epoch
	// barriers.
	snap := skew.Snapshot()
	var tickets []*core.MoveTicket
	rank := 0
	for _, hk := range snap.TopKeys {
		k := kv.Key(hk.Key)
		// The top-K spans both phases; split only the hot range (an
		// operator targets the misplaced range, not every warm key).
		if !strings.HasPrefix(string(k), "hot-") ||
			int(c.PlacementTable().Route(k, tstamp.MaxEpoch)) != 0 {
			continue
		}
		to := rank % o.servers
		rank++
		if to == 0 {
			continue
		}
		t, err := c.Rebalancer().MoveKey(k, to)
		if err != nil {
			return fmt.Errorf("migrate-sim: move %q: %w", k, err)
		}
		tickets = append(tickets, t)
	}
	if len(tickets) == 0 {
		return fmt.Errorf("migrate-sim: skew top-K surfaced no partition-0 keys to split")
	}
	var handoff tstamp.Epoch
	for _, t := range tickets {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		e, err := t.Wait(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("migrate-sim: handoff: %w", err)
		}
		handoff = e
	}
	fmt.Printf("migrate-sim: split %d hot keys off partition 0 (generation %d, handoff epoch %d)\n",
		len(tickets), c.PlacementTable().Generation(), handoff)

	recovered, rerrs := measureMedian(zipfPick(hot))
	ratio := 0.0
	if baseline > 0 {
		ratio = recovered / baseline
	}
	ok := ratio >= o.minRatio && rerrs == 0
	fmt.Printf("migrate-sim: recovered %.0f ops/s (%d errors), ratio %.2f of baseline, ok=%v\n",
		recovered, rerrs, ratio, ok)
	if !ok {
		return fmt.Errorf("migrate-sim: post-split throughput %.0f ops/s is %.2f of baseline %.0f ops/s (want >= %.2f, errors %d)",
			recovered, ratio, baseline, o.minRatio, rerrs)
	}
	return nil
}
