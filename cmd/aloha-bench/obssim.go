package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/scenario"
)

// obsSimOptions configures the observability simulation cluster.
type obsSimOptions struct {
	servers  int
	duration time.Duration
	addrFile string
}

// runObsSim boots an embedded cluster with the full observability stack —
// skew profiler, per-server epoch watchdogs, and one ops HTTP listener per
// server — then drives a light Zipfian workload for the configured
// duration. It exists so aloha-top (and CI's obs smoke) has a live
// multi-server target without a multi-process deployment: each listener
// serves exactly what one aloha-server -metrics-addr would.
func runObsSim(o obsSimOptions) error {
	if o.servers <= 0 {
		o.servers = 3
	}
	if o.duration <= 0 {
		o.duration = 30 * time.Second
	}
	// One watchdog and one ops listener per server, like aloha-server —
	// all wired by the scenario env builder.
	env, err := scenario.BuildEnv(scenario.EnvConfig{
		Servers:       o.servers,
		EpochDuration: 5 * time.Millisecond,
		Registry:      functor.NewRegistry(),
		Skew:          &obs.SkewConfig{SampleEvery: 4, TopK: 16},
		Ops:           true,
		// Fast recorder clock: a ~2s workload pause must clear the
		// detector's baseline window inside a 10s smoke run.
		Timeseries:         true,
		TimeseriesInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer env.Close()
	c := env.Cluster

	list := strings.Join(env.OpsAddrs, ",")
	fmt.Printf("obs-sim: %d servers ready at %s for %s\n", o.servers, list, o.duration)
	if o.addrFile != "" {
		// Written atomically (rename) so a watcher never reads a partial list.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(list+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}

	// Light Zipfian workload: hot-skewed writes with occasional reads, so
	// the skew profiler and stage histograms have real data to show.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.3, 1, 499)
	deadline := time.Now().Add(o.duration)
	// Pause the workload mid-run so the flight recorder's level-shift
	// detector has a real commit-rate drop to annotate — the obs smoke
	// asserts /debug/timeseries serves at least one annotated window.
	hiccupAt := time.Now().Add(o.duration / 2)
	hiccup := o.duration / 5
	if hiccup > 2*time.Second {
		hiccup = 2 * time.Second
	}
	var submitted, failed int
	for time.Now().Before(deadline) {
		if !hiccupAt.IsZero() && time.Now().After(hiccupAt) {
			fmt.Printf("obs-sim: injecting %s workload hiccup\n", hiccup.Round(time.Millisecond))
			time.Sleep(hiccup)
			hiccupAt = time.Time{}
		}
		key := kv.Key(fmt.Sprintf("item-%d", zipf.Uint64()))
		h, err := c.Server(submitted%o.servers).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: key, Functor: functor.Add(1)},
		}})
		if err != nil {
			failed++
		} else {
			submitted++
			if submitted%10 == 0 {
				if _, _, err := h.Await(ctx); err != nil {
					failed++
				}
				_, _, _ = c.Server(0).GetCommitted(ctx, key)
			}
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("obs-sim: done (%d submitted, %d errors)\n", submitted, failed)
	if failed > submitted/10 {
		return fmt.Errorf("obs-sim: %d/%d submissions failed", failed, submitted)
	}
	return nil
}
