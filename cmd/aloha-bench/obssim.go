package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/obs"
	"alohadb/internal/obs/journal"
)

// obsSimOptions configures the observability simulation cluster.
type obsSimOptions struct {
	servers  int
	duration time.Duration
	addrFile string
}

// runObsSim boots an embedded cluster with the full observability stack —
// skew profiler, per-server epoch watchdogs, and one ops HTTP listener per
// server — then drives a light Zipfian workload for the configured
// duration. It exists so aloha-top (and CI's obs smoke) has a live
// multi-server target without a multi-process deployment: each listener
// serves exactly what one aloha-server -metrics-addr would.
func runObsSim(o obsSimOptions) error {
	if o.servers <= 0 {
		o.servers = 3
	}
	if o.duration <= 0 {
		o.duration = 30 * time.Second
	}
	skew := obs.NewSkew(obs.SkewConfig{SampleEvery: 4, TopK: 16, Partitions: o.servers})
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:       o.servers,
		EpochDuration: 5 * time.Millisecond,
		Registry:      functor.NewRegistry(),
		Skew:          skew,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		return err
	}

	// One watchdog and one ops listener per server, like aloha-server.
	addrs := make([]string, o.servers)
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < o.servers; i++ {
		srv := c.Server(i)
		wd := srv.NewWatchdog(obs.WatchdogConfig{Threshold: 2 * time.Second})
		wd.Start()
		defer wd.Stop()
		gather := func() []metrics.Family {
			fams := srv.MetricFamilies()
			fams = append(fams, metrics.RuntimeFamilies()...)
			fams = append(fams, wd.MetricFamilies()...)
			fams = append(fams, skew.MetricFamilies()...)
			if reb := c.Rebalancer(); reb != nil {
				fams = append(fams, reb.MetricFamilies()...)
			}
			return fams
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		// Embedded cluster: the EM is in-process, so each server's
		// /debug/epochs carries the EM mirror too (harmless duplication —
		// the clusterview merge dedups EM records by epoch).
		hs := &http.Server{Handler: metrics.OpsHandler(gather,
			metrics.WithDebug("stall", wd.Handler()),
			metrics.WithDebug("hotkeys", skew.Handler()),
			metrics.WithDebug("epochs", journal.DocHandler(srv.Journal(), c.EpochManager().Journal())),
			metrics.WithHealth("watchdog", wd.Health),
		)}
		servers = append(servers, hs)
		go func() { _ = hs.Serve(ln) }()
	}

	list := strings.Join(addrs, ",")
	fmt.Printf("obs-sim: %d servers ready at %s for %s\n", o.servers, list, o.duration)
	if o.addrFile != "" {
		// Written atomically (rename) so a watcher never reads a partial list.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(list+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}

	// Light Zipfian workload: hot-skewed writes with occasional reads, so
	// the skew profiler and stage histograms have real data to show.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.3, 1, 499)
	deadline := time.Now().Add(o.duration)
	var submitted, failed int
	for time.Now().Before(deadline) {
		key := kv.Key(fmt.Sprintf("item-%d", zipf.Uint64()))
		h, err := c.Server(submitted%o.servers).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: key, Functor: functor.Add(1)},
		}})
		if err != nil {
			failed++
		} else {
			submitted++
			if submitted%10 == 0 {
				if _, _, err := h.Await(ctx); err != nil {
					failed++
				}
				_, _, _ = c.Server(0).GetCommitted(ctx, key)
			}
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("obs-sim: done (%d submitted, %d errors)\n", submitted, failed)
	if failed > submitted/10 {
		return fmt.Errorf("obs-sim: %d/%d submissions failed", failed, submitted)
	}
	return nil
}
