package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"alohadb/internal/scenario"
	"alohadb/internal/scenario/catalog"
)

// scenarioOptions configures a -scenarios matrix run.
type scenarioOptions struct {
	expr     string
	list     bool
	seed     int64
	window   time.Duration
	soak     time.Duration
	artifact string
	trend    string
}

// runScenarios selects scenarios from the catalog by attribute expression
// and runs them through the matrix runner: `-scenarios smoke` is CI's
// quick matrix, `-scenarios soak -soak-duration 30m` is the nightly soak.
// Any failure writes a replayable artifact and exits non-zero.
func runScenarios(o scenarioOptions) error {
	catalog.Register()
	if o.list {
		scenario.List(os.Stdout, scenario.Default())
		return nil
	}
	scns, err := scenario.Default().Select(o.expr)
	if err != nil {
		return err
	}
	if len(scns) == 0 {
		return fmt.Errorf("aloha-bench: -scenarios %q selected nothing (try -scenario-list)", o.expr)
	}
	start := time.Now()
	_, err = scenario.Run(context.Background(), scns, scenario.RunOptions{
		Seed:         o.seed,
		Window:       o.window,
		Soak:         o.soak,
		Out:          os.Stdout,
		ArtifactPath: o.artifact,
		TrendPath:    o.trend,
	})
	if err != nil {
		return err
	}
	fmt.Printf("# %d scenario(s) passed in %s\n", len(scns), time.Since(start).Round(time.Millisecond))
	return nil
}
