// Command aloha-server runs one ALOHA-DB node (combined front-end and
// back-end) in a multi-process TCP deployment. Start every server plus one
// aloha-em epoch manager, all sharing the same -peers list.
//
// Example three-node cluster on one machine:
//
//	aloha-server -id 0 -peers localhost:7000,localhost:7001,localhost:7002 -em localhost:7100 &
//	aloha-server -id 1 -peers localhost:7000,localhost:7001,localhost:7002 -em localhost:7100 &
//	aloha-server -id 2 -peers localhost:7000,localhost:7001,localhost:7002 -em localhost:7100 &
//	aloha-em -peers localhost:7000,localhost:7001,localhost:7002 -em localhost:7100
//
// Clients connect through aloha-client using the same -peers list.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/metrics"
	"alohadb/internal/obs"
	"alohadb/internal/obs/journal"
	"alohadb/internal/obs/tsdb"
	"alohadb/internal/placement"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.Int("id", 0, "this server's index in the peer list")
		peers   = flag.String("peers", "", "comma-separated server addresses, index-ordered")
		emAddr  = flag.String("em", "", "epoch manager address")
		workers = flag.Int("workers", 0, "functor processor pool size (0 = default)")
		walPath = flag.String("wal", "", "write-ahead log path (empty disables durability)")
		opsAddr = flag.String("metrics-addr", "", "ops HTTP listener (/metrics, /healthz, /debug/pprof, /debug/traces); empty disables")

		traceSample = flag.Float64("trace-sample", 0, "trace sample rate in [0,1] (0 disables sampling)")
		traceSlow   = flag.Duration("trace-slow", 0, "always capture transactions slower than this (0 disables)")
		traceRing   = flag.Int("trace-ring", 0, "trace span ring size (0 = default)")

		wireCodec     = flag.String("wire-codec", "binary", "wire codec for dialed connections: binary (zero-allocation framing) or gob (legacy; inbound always auto-detects, so mixed clusters interoperate)")
		flushBytes    = flag.Int("net-flush-bytes", 0, "transport per-peer buffered-write flush threshold in bytes (0 = default 64KiB)")
		flushInterval = flag.Duration("net-flush-interval", 0, "transport flusher linger after the send queue drains (0 = flush immediately)")
		batchWindow   = flag.Duration("read-batch-window", 0, "remote read/ensure combiner linger between batch dispatches (0 = combine without sleeping)")

		placementMap = flag.String("placement-map", "", "JSON ownership map installed at boot (same format as /debug/placement; give every server the same file). Live rebalancing runs through the embedded Rebalancer in single-process clusters; multi-process servers adopt newer maps from WrongOwner responses as they coordinate.")

		stallThreshold = flag.Duration("epoch-stall-threshold", 5*time.Second, "epoch watchdog: declare a stall when the visibility bound stops advancing this long (0 disables)")
		journalRing    = flag.Int("epoch-journal-ring", journal.DefaultRing, "epoch lifecycle journal depth in epochs, served at /debug/epochs (0 disables)")
		skewSample     = flag.Int("skew-sample", 0, "hot-key profiler: sample every Nth key access (0 disables profiling)")
		skewTopK       = flag.Int("skew-topk", 0, "hot-key profiler: tracked heavy-hitter count (0 = default)")
		walMaxFsyncAge = flag.Duration("wal-fsync-max-age", 0, "readiness: fail /healthz when the last WAL fsync is older than this (0 disables; needs -wal)")

		tsInterval  = flag.Duration("timeseries-interval", 500*time.Millisecond, "metrics flight recorder sample interval, served at /debug/timeseries (0 disables)")
		tsRetention = flag.Int("timeseries-retention", 0, "flight recorder ring depth in samples per series (0 = default 240, i.e. 2 minutes at the default interval)")
	)
	flag.Parse()

	addrs, emID, err := buildAddressBook(*peers, *emAddr)
	if err != nil {
		return err
	}
	_ = emID
	if *id < 0 || *id >= emID {
		return fmt.Errorf("aloha-server: -id %d out of range for %d peers", *id, emID)
	}

	wc, err := transport.ParseCodec(*wireCodec)
	if err != nil {
		return err
	}
	core.RegisterMessages()
	net := transport.NewTCPNetwork(addrs,
		transport.WithCodec(wc),
		transport.WithFlushBytes(*flushBytes),
		transport.WithFlushInterval(*flushInterval))
	defer net.Close()

	tracer := trace.New(trace.Config{
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
		RingSize:      *traceRing,
	})
	var skew *obs.Skew
	if *skewSample > 0 {
		skew = obs.NewSkew(obs.SkewConfig{SampleEvery: *skewSample, TopK: *skewTopK, Partitions: emID})
	}
	cfg := core.ServerConfig{
		ID:              *id,
		NumServers:      emID,
		Registry:        functor.NewRegistry(),
		Workers:         *workers,
		Tracer:          tracer,
		ReadBatchWindow: *batchWindow,
		Skew:            skew,
		JournalRing:     *journalRing,
	}
	if *journalRing <= 0 {
		cfg.JournalRing = -1 // flag 0 = off; config negative = disabled
	}
	var walLog *wal.Log
	if *walPath != "" {
		walLog, err = wal.Open(*walPath)
		if err != nil {
			return err
		}
		defer walLog.Close()
		cfg.Durability = walLog
	}
	srv, err := core.NewServer(cfg, net)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *placementMap != "" {
		m, err := placement.LoadMap(*placementMap)
		if err != nil {
			return fmt.Errorf("aloha-server: -placement-map: %w", err)
		}
		srv.PlacementTable().Install(m)
		fmt.Printf("aloha-server %d placement map generation %d (%d moves)\n",
			*id, m.Gen, len(m.Moves))
	}

	srv.SetQueueDepthSource(net.SendQueueDepths)
	var wd *obs.Watchdog
	if *stallThreshold > 0 {
		wd = srv.NewWatchdog(obs.WatchdogConfig{Threshold: *stallThreshold})
		wd.Start()
		defer wd.Stop()
	}
	// The recorder samples sources the two setters above fill, so it is
	// built after them (tsdb.Recorder is nil-safe when disabled).
	var rec *tsdb.Recorder
	if *tsInterval > 0 {
		srv.SetMaxQueueDepthSource(net.MaxSendQueueDepth)
		rec = srv.NewRecorder(tsdb.Config{Interval: *tsInterval, Retention: *tsRetention})
		rec.Start()
		defer rec.Stop()
	}
	fmt.Printf("aloha-server %d listening on %s (epoch manager at %s)\n",
		*id, addrs[transport.NodeID(*id)], *emAddr)

	var ops *http.Server
	if *opsAddr != "" {
		gather := func() []metrics.Family {
			fams := metrics.Merge(srv.MetricFamilies(), net.NetMetrics().MetricFamilies())
			fams = append(fams, metrics.RuntimeFamilies()...)
			fams = append(fams, wd.MetricFamilies()...)   // nil-safe: empty when disabled
			fams = append(fams, skew.MetricFamilies()...) // nil-safe: empty when disabled
			return fams
		}
		opts := []metrics.OpsOption{
			metrics.WithTraces(trace.Handler(tracer)),
			metrics.WithDebug("placement", placement.Handler(srv.PlacementTable())),
		}
		if srv.Journal() != nil {
			// This process hosts no EM (aloha-em does); the second argument
			// is nil-safe and the merge tolerates docs without EM mirrors.
			opts = append(opts, metrics.WithDebug("epochs", journal.DocHandler(srv.Journal(), nil)))
		}
		if wd != nil {
			opts = append(opts,
				metrics.WithDebug("stall", wd.Handler()),
				metrics.WithHealth("watchdog", wd.Health))
		}
		if skew != nil {
			opts = append(opts, metrics.WithDebug("hotkeys", skew.Handler()))
		}
		if rec != nil {
			opts = append(opts, metrics.WithDebug("timeseries", rec.Handler()))
		}
		if walLog != nil && *walMaxFsyncAge > 0 {
			maxAge := *walMaxFsyncAge
			opts = append(opts, metrics.WithHealth("wal", func() (bool, string) {
				age, ok := walLog.LastSyncAge()
				if !ok || age <= maxAge {
					return true, ""
				}
				return false, fmt.Sprintf("last fsync %s ago (max %s): commits are not reaching disk", age.Round(time.Millisecond), maxAge)
			}))
		}
		ops = &http.Server{Addr: *opsAddr, Handler: metrics.OpsHandler(gather, opts...)}
		go func() {
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "aloha-server: ops listener: %v\n", err)
			}
		}()
		fmt.Printf("aloha-server %d ops endpoint on http://%s/metrics\n", *id, *opsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if ops != nil {
		ops.Close()
	}
	return nil
}

// buildAddressBook lays out node IDs: servers 0..n-1, the epoch manager at
// n, clients above.
func buildAddressBook(peers, em string) (map[transport.NodeID]string, int, error) {
	if peers == "" {
		return nil, 0, fmt.Errorf("missing -peers")
	}
	list := strings.Split(peers, ",")
	book := make(map[transport.NodeID]string, len(list)+1)
	for i, addr := range list {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, 0, fmt.Errorf("empty address at index %d", i)
		}
		book[transport.NodeID(i)] = addr
	}
	if em != "" {
		book[transport.NodeID(len(list))] = strings.TrimSpace(em)
	}
	return book, len(list), nil
}
