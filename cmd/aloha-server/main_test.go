package main

import (
	"testing"

	"alohadb/internal/transport"
)

func TestBuildAddressBook(t *testing.T) {
	book, n, err := buildAddressBook("a:1, b:2 ,c:3", "em:9")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	want := map[transport.NodeID]string{0: "a:1", 1: "b:2", 2: "c:3", 3: "em:9"}
	for id, addr := range want {
		if book[id] != addr {
			t.Errorf("book[%d] = %q, want %q", id, book[id], addr)
		}
	}
}

func TestBuildAddressBookNoEM(t *testing.T) {
	book, n, err := buildAddressBook("a:1,b:2", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(book) != 2 {
		t.Errorf("n=%d len=%d", n, len(book))
	}
}

func TestBuildAddressBookErrors(t *testing.T) {
	if _, _, err := buildAddressBook("", "em:9"); err == nil {
		t.Error("empty peers should fail")
	}
	if _, _, err := buildAddressBook("a:1,,c:3", ""); err == nil {
		t.Error("empty address should fail")
	}
}
