// Command aloha-top is the cluster-wide observability dashboard: it polls
// every server's ops endpoint (/metrics, /healthz, /debug/stall,
// /debug/hotkeys, /debug/epochs) and renders one merged frame — minimum
// committed epoch, aggregate commit rate, per-server p99s, a stall/skew
// roll-up, and each server's share of the epoch critical paths (the
// "gating" column). -epochs N adds a drill-down of the N slowest epochs
// with their cluster-wide attribution (which server and stage gated each
// commit). When servers run the metrics flight recorder
// (/debug/timeseries), the frame adds a cluster commit-rate sparkline and
// active-anomaly callouts; -timeseries adds a drill-down of every merged
// series with its trend strip.
//
// Interactive (refreshing) mode:
//
//	aloha-top -servers localhost:8000,localhost:8001,localhost:8002
//
// One-shot machine-readable mode for scripts and CI:
//
//	aloha-top -servers ... -cluster-json -once
//
// which scrapes twice (-rate-window apart) so commit rates are real, and
// reports whether the minimum committed epoch moved monotonically between
// the two scrapes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alohadb/internal/obs/clusterview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers    = flag.String("servers", "", "comma-separated ops (metrics-addr) endpoints, one per server")
		interval   = flag.Duration("interval", 2*time.Second, "refresh interval in dashboard mode")
		jsonOut    = flag.Bool("cluster-json", false, "emit merged cluster snapshots as JSON instead of the dashboard")
		once       = flag.Bool("once", false, "scrape once (twice -rate-window apart for rates) and exit")
		rateWindow = flag.Duration("rate-window", 500*time.Millisecond, "gap between the two scrapes of a -once run")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-server scrape timeout")
		epochsN    = flag.Int("epochs", 0, "epoch drill-down: show the N slowest epochs with critical-path attribution below the dashboard")
		timeseries = flag.Bool("timeseries", false, "timeseries drill-down: sparkline every merged flight-recorder series below the dashboard")
	)
	flag.Parse()
	if *servers == "" {
		return fmt.Errorf("aloha-top: missing -servers")
	}
	var addrs []string
	for _, a := range strings.Split(*servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	sc := &clusterview.Scraper{Addrs: addrs, Client: &http.Client{Timeout: *timeout}}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *once {
		return oneShot(ctx, sc, *rateWindow, *jsonOut, *epochsN, *timeseries)
	}
	return watch(ctx, sc, *interval, *jsonOut, *epochsN, *timeseries)
}

// oneShot scrapes twice so rates are measured, then emits a single frame.
// The JSON carries min_epoch_monotonic — CI's obs smoke asserts it: the
// cluster's visibility floor must never move backwards.
func oneShot(ctx context.Context, sc *clusterview.Scraper, window time.Duration, jsonOut bool, epochsN int, timeseries bool) error {
	prev := sc.Scrape(ctx)
	select {
	case <-time.After(window):
	case <-ctx.Done():
		return ctx.Err()
	}
	cur := clusterview.Delta(prev, sc.Scrape(ctx))
	if !jsonOut {
		clusterview.Render(os.Stdout, cur)
		if epochsN > 0 {
			fmt.Printf("\nslowest epochs (critical path):\n")
			clusterview.RenderEpochs(os.Stdout, cur.EpochPaths, epochsN)
		}
		if timeseries {
			fmt.Printf("\nflight recorder (merged series):\n")
			clusterview.RenderTimeseries(os.Stdout, cur, 48)
		}
		return nil
	}
	out := struct {
		clusterview.ClusterSnapshot
		MinEpochMonotonic bool `json:"min_epoch_monotonic"`
	}{cur, cur.MinCommittedEpoch >= prev.MinCommittedEpoch}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func watch(ctx context.Context, sc *clusterview.Scraper, interval time.Duration, jsonOut bool, epochsN int, timeseries bool) error {
	var prev clusterview.ClusterSnapshot
	havePrev := false
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		cur := sc.Scrape(ctx)
		if havePrev {
			cur = clusterview.Delta(prev, cur)
		}
		if jsonOut {
			if err := json.NewEncoder(os.Stdout).Encode(cur); err != nil {
				return err
			}
		} else {
			// Clear and home, then draw the frame.
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("aloha-top  %s  (refresh %s, ctrl-c to quit)\n\n", cur.At.Format("15:04:05"), interval)
			clusterview.Render(os.Stdout, cur)
			if epochsN > 0 {
				fmt.Printf("\nslowest epochs (critical path):\n")
				clusterview.RenderEpochs(os.Stdout, cur.EpochPaths, epochsN)
			}
			if timeseries {
				fmt.Printf("\nflight recorder (merged series):\n")
				clusterview.RenderTimeseries(os.Stdout, cur, 48)
			}
		}
		prev, havePrev = cur, true
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil
		}
	}
}
