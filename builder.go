package alohadb

import (
	"context"
	"fmt"

	"alohadb/internal/core"
	"alohadb/internal/functor"
)

// TxnBuilder assembles a transaction from functors while automating the
// paper's manual transformation conventions (§IV-B/§IV-C):
//
//   - recipient sets are derived automatically: if one functor of the
//     transaction reads a key another functor writes, the written key's
//     functor gets the reader's key in its recipient set, enabling the
//     proactive push optimization without hand-maintenance;
//   - condition keys (inputs to an abort decision) are added to every
//     user functor's read set, enforcing §IV-C's rule that all functors
//     of a transaction must reach the same commit/abort decision;
//   - duplicate writes to one key are rejected (one functor per key per
//     transaction).
//
// The paper calls automating the transaction-to-functor transformation
// future work; TxnBuilder is the mechanical part of that automation.
type TxnBuilder struct {
	writes     []Write
	requires   []Key
	conditions []Key
	err        error
}

// NewTxn starts a transaction builder.
func NewTxn() *TxnBuilder { return &TxnBuilder{} }

// Write adds one key-functor pair. The functor may be any constructor
// (PutValue, Add, User, ...).
func (b *TxnBuilder) Write(k Key, fn *Functor) *TxnBuilder {
	if b.err != nil {
		return b
	}
	if fn == nil {
		b.err = fmt.Errorf("alohadb: nil functor for %q", k)
		return b
	}
	for _, w := range b.writes {
		if w.Key == k {
			b.err = fmt.Errorf("alohadb: duplicate write to %q", k)
			return b
		}
	}
	b.writes = append(b.writes, Write{Key: k, Functor: fn})
	return b
}

// Require adds phase-1 existence requirements: if any key is absent on its
// partition, the transaction aborts during install with a second round.
func (b *TxnBuilder) Require(keys ...Key) *TxnBuilder {
	if b.err != nil {
		return b
	}
	for _, k := range keys {
		if k == "" {
			b.err = fmt.Errorf("alohadb: empty require key")
			return b
		}
	}
	b.requires = append(b.requires, keys...)
	return b
}

// Condition declares keys whose values influence the transaction's
// commit/abort decision; they are added to every user functor's read set
// so all functors agree (§IV-C).
func (b *TxnBuilder) Condition(keys ...Key) *TxnBuilder {
	if b.err != nil {
		return b
	}
	for _, k := range keys {
		if k == "" {
			b.err = fmt.Errorf("alohadb: empty condition key")
			return b
		}
	}
	b.conditions = append(b.conditions, keys...)
	return b
}

// Build finalizes the transaction: condition keys are folded into every
// user functor's read set and recipient sets are derived from the
// intra-transaction read/write structure. The input functors are not
// mutated; rewritten copies are used where needed.
func (b *TxnBuilder) Build() (Txn, error) {
	if b.err != nil {
		return Txn{}, b.err
	}
	if len(b.writes) == 0 {
		return Txn{}, fmt.Errorf("alohadb: empty transaction")
	}
	writes := make([]Write, len(b.writes))
	copy(writes, b.writes)

	// Fold condition keys into user functors' read sets.
	if len(b.conditions) > 0 {
		for i, w := range writes {
			if w.Functor.Type != functor.TypeUser {
				continue
			}
			rs := w.Functor.ReadSet
			var missing []Key
			for _, ck := range b.conditions {
				found := ck == w.Key // implicit self-read covers the own key
				for _, rk := range rs {
					if rk == ck {
						found = true
						break
					}
				}
				if !found {
					missing = append(missing, ck)
				}
			}
			if len(missing) > 0 {
				cp := *w.Functor
				cp.ReadSet = append(append([]Key{}, rs...), missing...)
				writes[i].Functor = &cp
			}
		}
	}

	// Derive recipient sets: the functor writing key K proactively pushes
	// to every other functor of this transaction whose read set names K.
	written := make(map[Key]int, len(writes))
	for i, w := range writes {
		written[w.Key] = i
	}
	recipients := make(map[int][]Key)
	for _, w := range writes {
		for _, rk := range w.Functor.ReadSet {
			src, ok := written[rk]
			if !ok || writes[src].Key == w.Key {
				continue
			}
			recipients[src] = append(recipients[src], w.Key)
		}
	}
	for i, keys := range recipients {
		w := writes[i]
		if len(w.Functor.Recipients) > 0 {
			continue // hand-specified wins
		}
		cp := *w.Functor
		cp.Recipients = dedupKeys(keys)
		writes[i].Functor = &cp
	}
	return core.Txn{Writes: writes, Requires: b.requires}, nil
}

// Submit builds and submits in one step.
func (b *TxnBuilder) Submit(ctx context.Context, db *DB) (*TxnHandle, error) {
	txn, err := b.Build()
	if err != nil {
		return nil, err
	}
	return db.Submit(ctx, txn)
}

func dedupKeys(keys []Key) []Key {
	seen := make(map[Key]bool, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
