package alohadb

import (
	"encoding/binary"
	"fmt"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// This file implements the optimistic approach to dependent transactions
// (paper §IV-E): a transaction reads all required keys at a snapshot,
// computes its writes client-side, and installs OCC functors that perform
// Hyder-style backward validation during functor computing — aborting if
// any key of the read set changed between the snapshot and the
// transaction's version. Unlike Hyder's central log melding, each functor
// validates independently against only the keys it declares, so
// validations proceed in parallel.

const _occHandlerName = "aloha.occ"

// OCCWrite builds a functor that writes value if none of the keys in
// readSet (plus the written key itself) changed after the snapshot, and
// aborts the transaction otherwise. Every functor of the transaction must
// declare the same read set so all of them reach the same commit/abort
// decision (paper §IV-C).
func OCCWrite(value Value, snapshot Timestamp, readSet []Key) *Functor {
	arg := make([]byte, 0, 9+len(value))
	arg = binary.BigEndian.AppendUint64(arg, uint64(snapshot))
	arg = append(arg, 0) // write marker: value
	arg = append(arg, value...)
	return functor.User(_occHandlerName, arg, readSet)
}

// OCCDelete is OCCWrite for a tombstone.
func OCCDelete(snapshot Timestamp, readSet []Key) *Functor {
	arg := make([]byte, 0, 9)
	arg = binary.BigEndian.AppendUint64(arg, uint64(snapshot))
	arg = append(arg, 1) // write marker: delete
	return functor.User(_occHandlerName, arg, readSet)
}

// occHandler validates and applies one OCC write. The engine supplies the
// version of every read (the latest version strictly below the functor's
// own version); a version above the snapshot means a conflicting
// transaction serialized between the read and the write.
func occHandler(ctx *HandlerContext) (*Resolution, error) {
	if len(ctx.Arg) < 9 {
		return nil, fmt.Errorf("alohadb: malformed OCC argument")
	}
	snapshot := tstamp.Timestamp(binary.BigEndian.Uint64(ctx.Arg))
	isDelete := ctx.Arg[8] == 1
	for k, r := range ctx.Reads {
		if r.Found && r.Version > snapshot {
			return functor.AbortResolution(fmt.Sprintf(
				"occ conflict: %q changed at %v after snapshot %v", k, r.Version, snapshot)), nil
		}
	}
	if isDelete {
		return functor.DeleteResolution(), nil
	}
	value := kv.Value(ctx.Arg[9:])
	if len(value) == 0 {
		value = nil
	}
	return functor.ValueResolution(value), nil
}
