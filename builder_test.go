package alohadb

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"alohadb/internal/functor"
)

func TestBuilderAutoRecipients(t *testing.T) {
	txn, err := NewTxn().
		Write("src", User("debit", EncodeInt64(10), nil)).
		Write("dst", User("credit", EncodeInt64(10), []Key{"src"})).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var srcFn *Functor
	for _, w := range txn.Writes {
		if w.Key == "src" {
			srcFn = w.Functor
		}
	}
	if srcFn == nil {
		t.Fatal("src write missing")
	}
	if !reflect.DeepEqual(srcFn.Recipients, []Key{"dst"}) {
		t.Errorf("src recipients = %v, want [dst]", srcFn.Recipients)
	}
}

func TestBuilderRecipientsHandSpecifiedWins(t *testing.T) {
	txn, err := NewTxn().
		Write("src", User("debit", nil, nil, WithRecipients("elsewhere"))).
		Write("dst", User("credit", nil, []Key{"src"})).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := txn.Writes[0].Functor.Recipients; !reflect.DeepEqual(got, []Key{"elsewhere"}) {
		t.Errorf("recipients = %v, want hand-specified to win", got)
	}
}

func TestBuilderConditionKeysFoldedIn(t *testing.T) {
	txn, err := NewTxn().
		Write("a", User("h1", nil, nil)).
		Write("b", User("h2", nil, []Key{"x"})).
		Write("c", Add(1)). // arithmetic: untouched
		Condition("a", "x", "y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[Key]*Functor{}
	for _, w := range txn.Writes {
		byKey[w.Key] = w.Functor
	}
	// "a" reads x and y (a itself is its implicit self-read).
	if got := byKey["a"].ReadSet; !reflect.DeepEqual(got, []Key{"x", "y"}) {
		t.Errorf("a readset = %v, want [x y]", got)
	}
	// "b" keeps x (already present), gains a and y.
	if got := byKey["b"].ReadSet; !reflect.DeepEqual(got, []Key{"x", "a", "y"}) {
		t.Errorf("b readset = %v, want [x a y]", got)
	}
	if byKey["c"].Type != functor.TypeAdd || byKey["c"].ReadSet != nil {
		t.Errorf("arithmetic functor was rewritten: %+v", byKey["c"])
	}
}

func TestBuilderInputFunctorsNotMutated(t *testing.T) {
	original := User("h", nil, []Key{"x"})
	_, err := NewTxn().
		Write("a", original).
		Write("x", PutValue(Value("v"))).
		Condition("cond").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(original.ReadSet) != 1 || original.Recipients != nil {
		t.Errorf("builder mutated the caller's functor: %+v", original)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewTxn().Build(); err == nil {
		t.Error("empty transaction should fail")
	}
	if _, err := NewTxn().Write("k", nil).Build(); err == nil {
		t.Error("nil functor should fail")
	}
	if _, err := NewTxn().Write("k", Add(1)).Write("k", Add(2)).Build(); err == nil {
		t.Error("duplicate write should fail")
	}
	// The error is sticky across chained calls.
	if _, err := NewTxn().Write("k", nil).Write("j", Add(1)).Build(); err == nil {
		t.Error("error should be sticky")
	}
	if _, err := NewTxn().Write("k", Add(1)).Require("").Build(); err == nil {
		t.Error("empty require key should fail")
	}
	if _, err := NewTxn().Write("k", Add(1)).Condition("").Build(); err == nil {
		t.Error("empty condition key should fail")
	}
	// Require and Condition respect an earlier error: the nil-functor
	// error survives, and their arguments are not recorded.
	b := NewTxn().Write("k", nil).Require("r").Condition("c")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nil functor") {
		t.Errorf("err = %v, want the original nil-functor error", err)
	}
	if len(b.requires) != 0 || len(b.conditions) != 0 {
		t.Errorf("failed builder recorded keys: requires=%v conditions=%v", b.requires, b.conditions)
	}
}

// TestBuilderEndToEnd uses Condition to make two functors agree on an
// abort decision that only one of them naturally reads.
func TestBuilderEndToEnd(t *testing.T) {
	db := openTestDB(t, Config{
		Handlers: map[string]Handler{
			// gate commits its argument only if the gate key is non-zero.
			"gate": func(ctx *HandlerContext) (*Resolution, error) {
				g := ctx.Reads["gate"]
				if !g.Found {
					return ResolveAbort("gate closed"), nil
				}
				if n, _ := DecodeInt64(g.Value); n == 0 {
					return ResolveAbort("gate closed"), nil
				}
				return ResolveValue(ctx.Arg), nil
			},
		},
		Preload: func(emit func(Pair) error) error {
			return emit(Pair{Key: "gate", Value: EncodeInt64(0)})
		},
	})
	ctx := context.Background()
	txn, err := NewTxn().
		Write("out1", User("gate", Value("v1"), nil)).
		Write("out2", User("gate", Value("v2"), nil)).
		Condition("gate").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.Submit(ctx, txn)
	if err != nil {
		t.Fatal(err)
	}
	advance(t, db)
	committed, reason, err := h.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed || !strings.Contains(reason, "gate closed") {
		t.Fatalf("committed=%v reason=%q, want gate-closed abort", committed, reason)
	}
	for _, k := range []Key{"out1", "out2"} {
		if _, found, _ := db.GetCommitted(ctx, k); found {
			t.Errorf("%s visible despite abort", k)
		}
	}

	// Open the gate; the same transaction shape commits both writes.
	if _, err := db.Submit(ctx, Txn{Writes: []Write{{Key: "gate", Functor: PutValue(EncodeInt64(1))}}}); err != nil {
		t.Fatal(err)
	}
	advance(t, db)
	txn2, err := NewTxn().
		Write("out1", User("gate", Value("v1"), nil)).
		Write("out2", User("gate", Value("v2"), nil)).
		Condition("gate").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := db.Submit(ctx, txn2)
	if err != nil {
		t.Fatal(err)
	}
	advance(t, db)
	if committed, reason, err := h2.Await(ctx); err != nil || !committed {
		t.Fatalf("committed=%v reason=%q err=%v", committed, reason, err)
	}
	v, found, err := db.GetCommitted(ctx, "out2")
	if err != nil || !found || string(v) != "v2" {
		t.Errorf("out2 = %q found=%v err=%v", v, found, err)
	}
}

func TestBuilderSubmitHelper(t *testing.T) {
	db := openTestDB(t, Config{})
	ctx := context.Background()
	h, err := NewTxn().Write("k", Add(7)).Submit(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	advance(t, db)
	if committed, _, err := h.Await(ctx); err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	v, _, err := db.GetCommitted(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := DecodeInt64(v); n != 7 {
		t.Errorf("k = %d, want 7", n)
	}
}
