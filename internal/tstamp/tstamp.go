// Package tstamp implements the decentralized timestamp scheme used by
// ALOHA-DB's epoch-based concurrency control.
//
// A Timestamp packs three fields into a uint64:
//
//	bits 63..40  epoch number (24 bits)
//	bits 39..12  per-server sequence number within the epoch (28 bits)
//	bits 11..0   server ID (12 bits)
//
// Natural uint64 ordering therefore orders timestamps first by epoch, then
// by sequence, then by server — a valid serialization order in which every
// timestamp is globally unique without any cross-server coordination, and
// every timestamp is contained in its epoch's validity interval
// [Start(e), Start(e+1)). This realizes the properties the paper obtains
// from NTP-synchronized clocks (global uniqueness, epoch containment,
// decentralized assignment) structurally rather than probabilistically.
package tstamp

import "fmt"

// Timestamp is a packed epoch/sequence/server transaction version number.
// It doubles as the version number of every write the transaction installs.
type Timestamp uint64

// Epoch identifies one write epoch. Epoch 0 is reserved for pre-loaded data
// (it is visible from the first client-serving epoch onward).
type Epoch uint32

const (
	epochBits  = 24
	seqBits    = 28
	serverBits = 12

	epochShift = seqBits + serverBits // 40
	seqShift   = serverBits           // 12

	// MaxEpoch is the largest representable epoch number.
	MaxEpoch Epoch = 1<<epochBits - 1
	// MaxSeq is the largest per-server sequence number within one epoch.
	MaxSeq uint32 = 1<<seqBits - 1
	// MaxServer is the largest representable server ID.
	MaxServer uint16 = 1<<serverBits - 1

	seqMask    = uint64(MaxSeq)
	serverMask = uint64(MaxServer)
)

// Zero is the smallest timestamp. No transaction ever receives it; it is
// useful as a lower bound for scans.
const Zero Timestamp = 0

// Max is the largest representable timestamp, useful as an upper bound for
// "latest version" reads.
const Max Timestamp = ^Timestamp(0)

// Make assembles a timestamp from its fields. It panics if any field is out
// of range; callers derive fields from bounded counters, so a violation is a
// programming error rather than a runtime condition.
func Make(epoch Epoch, seq uint32, server uint16) Timestamp {
	if epoch > MaxEpoch {
		panic(fmt.Sprintf("tstamp: epoch %d out of range", epoch))
	}
	if seq > MaxSeq {
		panic(fmt.Sprintf("tstamp: seq %d out of range", seq))
	}
	if server > MaxServer {
		panic(fmt.Sprintf("tstamp: server %d out of range", server))
	}
	return Timestamp(uint64(epoch)<<epochShift | uint64(seq)<<seqShift | uint64(server))
}

// Epoch extracts the epoch number.
func (t Timestamp) Epoch() Epoch { return Epoch(uint64(t) >> epochShift) }

// Seq extracts the per-server sequence number.
func (t Timestamp) Seq() uint32 { return uint32(uint64(t) >> seqShift & seqMask) }

// Server extracts the server ID.
func (t Timestamp) Server() uint16 { return uint16(uint64(t) & serverMask) }

// Prev returns the largest timestamp strictly smaller than t. Functor
// computation reads "the latest version not exceeding v-1" (Algorithm 1,
// line 13); Prev supplies that bound. Prev of Zero is Zero.
func (t Timestamp) Prev() Timestamp {
	if t == Zero {
		return Zero
	}
	return t - 1
}

// String renders the timestamp as epoch.seq@server for logs and tests.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d@%d", t.Epoch(), t.Seq(), t.Server())
}

// Start returns the first timestamp of epoch e. All transactions of epochs
// < e have timestamps strictly below Start(e), so Start(e) is the snapshot
// bound for reads issued while epoch e is the active write epoch.
func Start(e Epoch) Timestamp { return Timestamp(uint64(e) << epochShift) }

// End returns the exclusive upper bound of epoch e's timestamps, i.e.
// Start(e+1). End of the maximum epoch saturates at Max.
func End(e Epoch) Timestamp {
	if e >= MaxEpoch {
		return Max
	}
	return Start(e + 1)
}

// Contains reports whether t belongs to epoch e's validity interval.
func Contains(e Epoch, t Timestamp) bool { return t.Epoch() == e }
