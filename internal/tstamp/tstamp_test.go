package tstamp

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMakeRoundTrip(t *testing.T) {
	tests := []struct {
		name   string
		epoch  Epoch
		seq    uint32
		server uint16
	}{
		{name: "zero", epoch: 0, seq: 0, server: 0},
		{name: "small", epoch: 1, seq: 2, server: 3},
		{name: "max epoch", epoch: MaxEpoch, seq: 0, server: 0},
		{name: "max seq", epoch: 0, seq: MaxSeq, server: 0},
		{name: "max server", epoch: 0, seq: 0, server: MaxServer},
		{name: "all max", epoch: MaxEpoch, seq: MaxSeq, server: MaxServer},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := Make(tt.epoch, tt.seq, tt.server)
			if got := ts.Epoch(); got != tt.epoch {
				t.Errorf("Epoch() = %d, want %d", got, tt.epoch)
			}
			if got := ts.Seq(); got != tt.seq {
				t.Errorf("Seq() = %d, want %d", got, tt.seq)
			}
			if got := ts.Server(); got != tt.server {
				t.Errorf("Server() = %d, want %d", got, tt.server)
			}
		})
	}
}

func TestMakePanicsOutOfRange(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{name: "epoch", fn: func() { Make(MaxEpoch+1, 0, 0) }},
		{name: "seq", fn: func() { Make(0, MaxSeq+1, 0) }},
		{name: "server", fn: func() { Make(0, 0, MaxServer+1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(epoch uint32, seq uint32, server uint16) bool {
		e := Epoch(epoch) & MaxEpoch
		s := seq & MaxSeq
		sv := server & MaxServer
		ts := Make(e, s, sv)
		return ts.Epoch() == e && ts.Seq() == s && ts.Server() == sv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOrderingProperty verifies that natural uint64 ordering agrees with
// lexicographic (epoch, seq, server) ordering.
func TestOrderingProperty(t *testing.T) {
	f := func(e1, s1 uint32, sv1 uint16, e2, s2 uint32, sv2 uint16) bool {
		a := Make(Epoch(e1)&MaxEpoch, s1&MaxSeq, sv1&MaxServer)
		b := Make(Epoch(e2)&MaxEpoch, s2&MaxSeq, sv2&MaxServer)
		lexLess := a.Epoch() < b.Epoch() ||
			(a.Epoch() == b.Epoch() && a.Seq() < b.Seq()) ||
			(a.Epoch() == b.Epoch() && a.Seq() == b.Seq() && a.Server() < b.Server())
		return (a < b) == lexLess
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochBounds(t *testing.T) {
	for _, e := range []Epoch{0, 1, 7, 1000, MaxEpoch - 1} {
		start, end := Start(e), End(e)
		if start.Epoch() != e {
			t.Errorf("Start(%d).Epoch() = %d", e, start.Epoch())
		}
		if !Contains(e, start) {
			t.Errorf("Contains(%d, Start) = false", e)
		}
		if Contains(e, end) {
			t.Errorf("Contains(%d, End) = true", e)
		}
		inner := Make(e, MaxSeq, MaxServer)
		if !(start <= inner && inner < end) {
			t.Errorf("epoch %d: inner timestamp outside [start, end)", e)
		}
	}
	if End(MaxEpoch) != Max {
		t.Errorf("End(MaxEpoch) = %v, want Max", End(MaxEpoch))
	}
}

func TestPrev(t *testing.T) {
	if Zero.Prev() != Zero {
		t.Error("Prev of Zero should be Zero")
	}
	ts := Make(3, 5, 1)
	if ts.Prev() != ts-1 {
		t.Error("Prev should subtract one")
	}
}

func TestString(t *testing.T) {
	if got := Make(3, 5, 1).String(); got != "3.5@1" {
		t.Errorf("String() = %q, want %q", got, "3.5@1")
	}
}

func TestGeneratorSequential(t *testing.T) {
	g := NewGenerator(7)
	g.SetEpoch(2)
	prev := Zero
	for i := 1; i <= 100; i++ {
		ts, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ts.Epoch() != 2 || ts.Server() != 7 || ts.Seq() != uint32(i) {
			t.Fatalf("unexpected ts %v at i=%d", ts, i)
		}
		if ts <= prev {
			t.Fatalf("timestamps not monotone: %v after %v", ts, prev)
		}
		prev = ts
	}
}

func TestGeneratorEpochMonotone(t *testing.T) {
	g := NewGenerator(0)
	g.SetEpoch(5)
	if _, err := g.Next(); err != nil {
		t.Fatal(err)
	}
	g.SetEpoch(3) // backwards: ignored
	if got := g.Epoch(); got != 5 {
		t.Errorf("Epoch() = %d, want 5", got)
	}
	g.SetEpoch(5) // same epoch: no counter reset
	ts, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Seq() != 2 {
		t.Errorf("Seq() = %d, want 2 (counter must not reset)", ts.Seq())
	}
	g.SetEpoch(6)
	ts, err = g.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Epoch() != 6 || ts.Seq() != 1 {
		t.Errorf("after SetEpoch(6): got %v, want 6.1@0", ts)
	}
}

func TestGeneratorConcurrentUnique(t *testing.T) {
	g := NewGenerator(1)
	g.SetEpoch(1)
	const (
		workers = 8
		perW    = 2000
	)
	results := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Timestamp, 0, perW)
			for i := 0; i < perW; i++ {
				ts, err := g.Next()
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				out = append(out, ts)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, workers*perW)
	for _, out := range results {
		for _, ts := range out {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = true
		}
	}
	if len(seen) != workers*perW {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), workers*perW)
	}
}

func TestGeneratorsDistinctServersNeverCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g1 := NewGenerator(1)
	g2 := NewGenerator(2)
	g1.SetEpoch(1)
	g2.SetEpoch(1)
	seen := make(map[Timestamp]bool)
	for i := 0; i < 1000; i++ {
		g := g1
		if rng.Intn(2) == 0 {
			g = g2
		}
		ts, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[ts] {
			t.Fatalf("collision at %v", ts)
		}
		seen[ts] = true
	}
}

// TestStragglerBoundStructural documents how the packed scheme realizes
// §III-C's bound: every timestamp a server issues without authorization
// (generator retargeted at epoch e+1) is strictly below epoch e+1's
// finish timestamp, so serializability cannot be violated by stragglers.
func TestStragglerBoundStructural(t *testing.T) {
	g := NewGenerator(3)
	g.SetEpoch(7) // authorized epoch
	g.SetEpoch(8) // revocation: straggler mode targets the next epoch
	for i := 0; i < 1000; i++ {
		ts, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ts < Start(8) || ts >= End(8) {
			t.Fatalf("no-auth timestamp %v outside epoch 8's validity", ts)
		}
	}
}
