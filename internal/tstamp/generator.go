package tstamp

import (
	"errors"
	"sync/atomic"
)

// ErrEpochExhausted is returned when a server has drawn every sequence
// number of an epoch. With 2^28 sequence numbers per server per epoch this
// indicates a runaway loop rather than a realistic workload.
var ErrEpochExhausted = errors.New("tstamp: epoch sequence space exhausted")

// Generator issues globally unique timestamps for one server. It is safe
// for concurrent use: Next is a single atomic fetch-add.
//
// A generator is (re)targeted at an epoch with SetEpoch, typically when the
// front-end receives an authorization grant. In straggler mode (paper
// §III-C) the front-end targets the generator at the *next* epoch before
// holding its authorization; the packed-timestamp scheme then bounds every
// issued timestamp below that epoch's finish timestamp by construction.
type Generator struct {
	server uint16
	// state packs the target epoch (high 32 bits, though only 24 used)
	// and the next sequence number (low 32 bits, only 28 used) so that
	// SetEpoch and Next race safely: one 64-bit CAS/Add covers both.
	state atomic.Uint64
}

// NewGenerator returns a generator for the given server ID, initially
// targeted at epoch 0 (the data-loading epoch).
func NewGenerator(server uint16) *Generator {
	if server > MaxServer {
		panic("tstamp: server ID out of range")
	}
	return &Generator{server: server}
}

// Server returns the server ID the generator stamps into timestamps.
func (g *Generator) Server() uint16 { return g.server }

// Epoch returns the epoch the generator currently draws from.
func (g *Generator) Epoch() Epoch {
	return Epoch(g.state.Load() >> 32)
}

// SetEpoch retargets the generator at epoch e and resets the sequence
// counter. Retargeting at the current epoch is a no-op (the sequence space
// must not be reused). Moving backwards is rejected: timestamps must be
// monotone per server.
func (g *Generator) SetEpoch(e Epoch) {
	for {
		old := g.state.Load()
		if Epoch(old>>32) >= e {
			return
		}
		if g.state.CompareAndSwap(old, uint64(e)<<32) {
			return
		}
	}
}

// Next issues the next timestamp in the generator's current epoch.
func (g *Generator) Next() (Timestamp, error) {
	s := g.state.Add(1)
	seq := uint32(s & 0xffffffff)
	if seq > MaxSeq {
		return Zero, ErrEpochExhausted
	}
	return Make(Epoch(s>>32), seq, g.server), nil
}
