package placement

import (
	"encoding/json"
	"net/http"
	"os"
)

// Status is the JSON shape served by Handler: the table's newest installed
// ownership map, flattened for operators. An empty Moves with Generation 0
// means the base placement (hash partitioning) is in full effect.
type Status struct {
	Generation Generation `json:"generation"`
	Moves      []Move     `json:"moves,omitempty"`
}

// Status snapshots the table for serialization.
func (t *Table) Status() Status {
	st := Status{}
	if m := t.Map(); m != nil {
		st.Generation = m.Gen
		st.Moves = m.Moves
	}
	return st
}

// Handler serves the table's Status as JSON — mounted at /debug/placement
// on a server's ops listener so operators can see which ranges have moved
// and at which epochs the handoffs took effect.
func Handler(t *Table) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Status())
	})
}

// LoadMap reads a JSON ownership map ({"generation": N, "moves": [...]})
// from a file. It lets a multi-process deployment boot every server onto
// the same non-default placement — the format matches what Handler serves,
// so a running cluster's /debug/placement output can seed the next boot.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &Map{Gen: st.Generation, Moves: st.Moves}, nil
}
