// Package placement is ALOHA-DB's epoch-versioned key→server routing
// layer. It replaces the static Partitioner closure with a Router: a base
// placement (usually hash partitioning) overlaid by an OwnershipMap of key
// ranges whose moves take effect at explicit epochs. The epoch boundary is
// the paper's natural atomic handoff point: a move stamped "from epoch e+1"
// routes every version in epochs ≤ e to the old owner and every version in
// epochs ≥ e+1 to the new one, so two servers never both accept writes for
// the same (key, epoch) — the same validity rule that makes epoch-based
// timestamps serializable makes ownership changes linearizable.
//
// Maps carry a generation number. A server rejecting an install because its
// map is newer than the coordinator's answers WrongOwner and attaches its
// map, so routing converges without a config service: generations only move
// forward and the newest map wins (see Table.Install).
package placement

import (
	"fmt"
	"sort"
	"sync/atomic"

	"alohadb/internal/kv"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// Generation numbers ownership maps. It increases by exactly one per
// installed map, so "newer" is a single integer comparison.
type Generation uint64

// Range is a half-open key interval [Start, End). An empty End means +∞,
// so Range{} spans the whole key space.
type Range struct {
	Start kv.Key `json:"start"`
	End   kv.Key `json:"end"`
}

// Contains reports whether k falls inside the range.
func (r Range) Contains(k kv.Key) bool {
	return k >= r.Start && (r.End == "" || k < r.End)
}

// Empty reports whether the range can contain no key.
func (r Range) Empty() bool { return r.End != "" && r.End <= r.Start }

// Overlaps reports whether the two ranges share any key.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return (r.End == "" || o.Start < r.End) && (o.End == "" || r.Start < o.End)
}

func (r Range) String() string {
	if r.End == "" {
		return fmt.Sprintf("[%q,+inf)", string(r.Start))
	}
	return fmt.Sprintf("[%q,%q)", string(r.Start), string(r.End))
}

// KeyRange is the smallest non-empty range holding exactly k: [k, k+"\x00").
// Single hot keys are the common migration unit, so this gets a name.
func KeyRange(k kv.Key) Range {
	return Range{Start: k, End: k + "\x00"}
}

// Move reassigns one range to a new owner for all versions in epochs ≥
// From. Earlier epochs keep routing to whoever owned the range before —
// that is what lets in-flight transactions of the sealing epoch finish at
// the old owner while the next epoch's writes land at the new one.
type Move struct {
	Range Range            `json:"range"`
	To    transport.NodeID `json:"to"`
	From  tstamp.Epoch     `json:"from"`
}

// Map is a versioned ownership overlay: an ordered list of moves applied on
// top of a base placement. Later moves shadow earlier ones, so Lookup scans
// newest-first. Maps are immutable once installed; every change builds a
// successor with Next.
type Map struct {
	Gen   Generation `json:"gen"`
	Moves []Move     `json:"moves"`
}

// Lookup resolves the owner of k at epoch e through the overlay. It
// returns ok=false when no move covers (k, e) and the base placement
// applies.
func (m *Map) Lookup(k kv.Key, e tstamp.Epoch) (transport.NodeID, bool) {
	if m == nil {
		return 0, false
	}
	for i := len(m.Moves) - 1; i >= 0; i-- {
		mv := m.Moves[i]
		if e >= mv.From && mv.Range.Contains(k) {
			return mv.To, true
		}
	}
	return 0, false
}

// Next derives the successor map: generation+1, with the new moves
// appended (shadowing any earlier overlapping moves).
func (m *Map) Next(moves ...Move) *Map {
	n := &Map{Gen: 1}
	if m != nil {
		n.Gen = m.Gen + 1
		n.Moves = append(n.Moves, m.Moves...)
	}
	n.Moves = append(n.Moves, moves...)
	return n
}

// Router resolves the owner of a key for a version in epoch e. Pass
// tstamp.MaxEpoch to route at the current (newest) placement — the right
// epoch for reads, ensures, and pushes, which always target the live owner.
type Router interface {
	Route(k kv.Key, e tstamp.Epoch) transport.NodeID
}

// StaticRouter adapts a legacy partitioner closure — func(key, numServers)
// → server index — to the Router interface. It ignores the epoch: static
// placements are valid forever.
type StaticRouter struct {
	n  int
	fn func(k kv.Key, n int) int
}

// NewStatic wraps a legacy Partitioner for n servers. A nil fn means hash
// partitioning by kv.PartitionOf.
func NewStatic(n int, fn func(k kv.Key, n int) int) *StaticRouter {
	if fn == nil {
		fn = kv.PartitionOf
	}
	return &StaticRouter{n: n, fn: fn}
}

// Route implements Router.
func (s *StaticRouter) Route(k kv.Key, _ tstamp.Epoch) transport.NodeID {
	return transport.NodeID(s.fn(k, s.n))
}

// Table is a server's live routing state: an immutable base Router overlaid
// by the newest installed Map. Route is lock-free (one atomic load), so it
// sits on the install and read hot paths unchanged.
type Table struct {
	base Router
	cur  atomic.Pointer[Map]
}

// NewTable builds a table over the given base placement with no overlay
// (generation 0).
func NewTable(base Router) *Table {
	return &Table{base: base}
}

// Route resolves the owner of k for a version in epoch e.
func (t *Table) Route(k kv.Key, e tstamp.Epoch) transport.NodeID {
	if owner, ok := t.cur.Load().Lookup(k, e); ok {
		return owner
	}
	return t.base.Route(k, e)
}

// Install adopts m if it is newer than the current map, returning whether
// it was adopted. Generations are totally ordered by the rebalancer (one
// writer), so "newer wins" converges every server on the same map no matter
// how installs and WrongOwner responses interleave.
func (t *Table) Install(m *Map) bool {
	if m == nil {
		return false
	}
	for {
		cur := t.cur.Load()
		if cur != nil && cur.Gen >= m.Gen {
			return false
		}
		if t.cur.CompareAndSwap(cur, m) {
			return true
		}
	}
}

// Map returns the newest installed map (nil before any install).
func (t *Table) Map() *Map { return t.cur.Load() }

// Generation returns the newest installed map's generation (0 before any
// install).
func (t *Table) Generation() Generation {
	if m := t.cur.Load(); m != nil {
		return m.Gen
	}
	return 0
}

// Owners returns the distinct owners the table would route the given keys
// to at epoch e, sorted. A convenience for loaders and tests.
func (t *Table) Owners(keys []kv.Key, e tstamp.Epoch) []transport.NodeID {
	seen := map[transport.NodeID]struct{}{}
	for _, k := range keys {
		seen[t.Route(k, e)] = struct{}{}
	}
	out := make([]transport.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
