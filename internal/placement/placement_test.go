package placement

import (
	"testing"

	"alohadb/internal/kv"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

func TestRangeContains(t *testing.T) {
	cases := []struct {
		r    Range
		k    kv.Key
		want bool
	}{
		{Range{}, "anything", true},
		{Range{Start: "b"}, "a", false},
		{Range{Start: "b"}, "b", true},
		{Range{Start: "b", End: "c"}, "b", true},
		{Range{Start: "b", End: "c"}, "bzzz", true},
		{Range{Start: "b", End: "c"}, "c", false},
		{KeyRange("k1"), "k1", true},
		{KeyRange("k1"), "k10", false},
		{KeyRange("k1"), "k1\x00", false},
	}
	for _, c := range cases {
		if got := c.r.Contains(c.k); got != c.want {
			t.Errorf("%v.Contains(%q) = %v, want %v", c.r, c.k, got, c.want)
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Start: "b", End: "d"}
	for _, c := range []struct {
		o    Range
		want bool
	}{
		{Range{Start: "a", End: "b"}, false},
		{Range{Start: "a", End: "c"}, true},
		{Range{Start: "c"}, true},
		{Range{Start: "d"}, false},
		{Range{}, true},
		{Range{Start: "x", End: "x"}, false}, // empty
	} {
		if got := a.Overlaps(c.o); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.o, got, c.want)
		}
		if got := c.o.Overlaps(a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.o, a, got, c.want)
		}
	}
}

func TestMapLookupEpochFence(t *testing.T) {
	m := (*Map)(nil).Next(Move{Range: KeyRange("hot"), To: 2, From: 5})
	if m.Gen != 1 {
		t.Fatalf("first map gen = %d, want 1", m.Gen)
	}
	if _, ok := m.Lookup("hot", 4); ok {
		t.Fatalf("move applied before its From epoch")
	}
	if owner, ok := m.Lookup("hot", 5); !ok || owner != 2 {
		t.Fatalf("Lookup(hot, 5) = %d,%v want 2,true", owner, ok)
	}
	if _, ok := m.Lookup("cold", 9); ok {
		t.Fatalf("uncovered key matched the overlay")
	}
	// A later move shadows the earlier one from its own epoch onward.
	m2 := m.Next(Move{Range: KeyRange("hot"), To: 1, From: 8})
	if owner, _ := m2.Lookup("hot", 7); owner != 2 {
		t.Fatalf("epoch 7 owner = %d, want 2", owner)
	}
	if owner, _ := m2.Lookup("hot", 8); owner != 1 {
		t.Fatalf("epoch 8 owner = %d, want 1", owner)
	}
}

func TestTableRouteAndInstall(t *testing.T) {
	base := NewStatic(3, func(k kv.Key, n int) int { return 0 })
	tab := NewTable(base)
	if got := tab.Route("k", 1); got != 0 {
		t.Fatalf("base route = %d, want 0", got)
	}
	if tab.Generation() != 0 {
		t.Fatalf("fresh table generation = %d, want 0", tab.Generation())
	}
	m1 := tab.Map().Next(Move{Range: KeyRange("k"), To: 2, From: 3})
	if !tab.Install(m1) {
		t.Fatalf("install of newer map rejected")
	}
	if got := tab.Route("k", 3); got != 2 {
		t.Fatalf("overlay route = %d, want 2", got)
	}
	if got := tab.Route("k", 2); got != 0 {
		t.Fatalf("pre-move epoch route = %d, want 0", got)
	}
	// Stale or equal generations must be rejected; newer adopted.
	if tab.Install(&Map{Gen: 1}) {
		t.Fatalf("equal-generation install adopted")
	}
	if !tab.Install(m1.Next()) {
		t.Fatalf("newer-generation install rejected")
	}
	if tab.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", tab.Generation())
	}
}

func TestStaticRouterDefaultsToHash(t *testing.T) {
	r := NewStatic(4, nil)
	k := kv.Key("some-key")
	want := transport.NodeID(kv.PartitionOf(k, 4))
	if got := r.Route(k, tstamp.MaxEpoch); got != want {
		t.Fatalf("Route = %d, want %d", got, want)
	}
}
