package placement

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// The debug handler's output must round-trip through LoadMap: operators
// seed the next boot's -placement-map from a running cluster's
// /debug/placement.
func TestDebugHandlerRoundTrip(t *testing.T) {
	tbl := NewTable(NewStatic(3, nil))
	m := (*Map)(nil).Next(
		Move{Range: KeyRange("hot-1"), To: 2, From: 7},
		Move{Range: Range{Start: "warm-", End: "warn-"}, To: 1, From: 9},
	)
	if !tbl.Install(m) {
		t.Fatal("install rejected")
	}

	rec := httptest.NewRecorder()
	Handler(tbl).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/placement", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.Generation != 1 || len(st.Moves) != 2 {
		t.Fatalf("status = %+v", st)
	}

	path := filepath.Join(t.TempDir(), "map.json")
	if err := os.WriteFile(path, rec.Body.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMap(path)
	if err != nil {
		t.Fatalf("LoadMap: %v", err)
	}
	if got.Gen != m.Gen || len(got.Moves) != len(m.Moves) {
		t.Fatalf("loaded map %+v, want %+v", got, m)
	}

	// A fresh table booted from the file routes identically.
	boot := NewTable(NewStatic(3, nil))
	boot.Install(got)
	for _, k := range []string{"hot-1", "warm-x", "cold-q"} {
		for _, e := range []tstamp.Epoch{0, 8, tstamp.MaxEpoch} {
			if a, b := tbl.Route(kv.Key(k), e), boot.Route(kv.Key(k), e); a != b {
				t.Fatalf("route(%q, %d): live %d, booted %d", k, e, a, b)
			}
		}
	}
}

func TestLoadMapRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMap(path); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadMap(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected read error")
	}
}
