package core_test

// Chaos wiring for the core cluster: these tests drive a real cluster
// through a fault-injecting transport (internal/chaos) and assert the
// engine's behavior at the API surface — fail-fast aborts under severed
// links, clean recovery after healing, and full oracle-checked scenarios.
// They live in package core_test because internal/chaos imports core.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"alohadb/internal/chaos"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/transport"
)

// prefixPartitioner pins "s<i>:..." keys to server i so tests can aim
// writes at a specific partition.
func prefixPartitioner(k kv.Key, n int) int {
	for i := 0; i < n; i++ {
		if strings.HasPrefix(string(k), fmt.Sprintf("s%d:", i)) {
			return i
		}
	}
	return core.HashPartitioner(k, n)
}

func appendReg() *functor.Registry {
	reg := functor.NewRegistry()
	reg.MustRegister("append", func(fc *functor.Context) (*functor.Resolution, error) {
		prev := fc.Reads[fc.Key]
		out := make([]byte, 0, len(prev.Value)+len(fc.Arg))
		out = append(out, prev.Value...)
		out = append(out, fc.Arg...)
		return functor.ValueResolution(out), nil
	})
	return reg
}

func newChaosCluster(t *testing.T) (*core.Cluster, *chaos.Network) {
	t.Helper()
	// Probabilistic faults off: these tests inject deterministically via
	// Sever/Heal only.
	net := chaos.Wrap(transport.NewMemNetwork(), chaos.Config{Seed: 1})
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:           3,
		EpochDuration:     5 * time.Millisecond,
		Registry:          appendReg(),
		Network:           net,
		Router:            placement.NewStatic(3, prefixPartitioner),
		AbortRetries:      3,
		AbortRetryBackoff: time.Millisecond,
		SwitchTimeout:     time.Second,
	})
	if err != nil {
		net.Close()
		t.Fatalf("cluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		net.Close()
	})
	return c, net
}

func appendTxn(tag string, keys ...kv.Key) core.Txn {
	txn := core.Txn{}
	for _, k := range keys {
		txn.Writes = append(txn.Writes, core.Write{Key: k, Functor: functor.User("append", []byte(tag+";"), nil)})
	}
	return txn
}

// TestChaosSeveredLinkFailsFast asserts that a transaction touching an
// unreachable partition aborts within the bounded retry budget instead of
// hanging, and reports the indeterminate outcome honestly.
func TestChaosSeveredLinkFailsFast(t *testing.T) {
	c, net := newChaosCluster(t)
	ctx := context.Background()
	// Both directions: installs 0->1 and abort retries 0->1 must fail.
	net.Sever(0, 1)
	net.Sever(1, 0)
	start := time.Now()
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	results, _, err := c.Server(0).SubmitBatch(sctx, []core.Txn{appendTxn("lost", "s1:a")})
	cancel()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("SubmitBatch error: %v", err)
	}
	if !results[0].Aborted {
		t.Fatalf("txn against severed partition did not abort: %+v", results[0])
	}
	if !results[0].AbortIncomplete {
		t.Fatalf("abort acked by unreachable partition? %+v", results[0])
	}
	// Fail-fast: 3 retries with 1-2 ms backoff, not the 5 s caller budget.
	if elapsed > 2*time.Second {
		t.Fatalf("abort took %v; the retry budget should bound it well under the caller timeout", elapsed)
	}
}

// TestChaosPartitionAbortRollsBackLocalHalf: when the remote half of a
// multi-partition transaction can't install, the local half must roll
// back too — a reader must never see the transaction's partial effects
// (epoch atomicity, paper §III-B).
func TestChaosPartitionAbortRollsBackLocalHalf(t *testing.T) {
	c, net := newChaosCluster(t)
	ctx := context.Background()
	// Seed a baseline value on the local partition.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	results, _, err := c.Server(0).SubmitBatch(sctx, []core.Txn{appendTxn("base", "s0:k")})
	cancel()
	if err != nil || results[0].Aborted {
		t.Fatalf("baseline txn failed: err=%v res=%+v", err, results[0])
	}
	net.Sever(0, 2)
	net.Sever(2, 0)
	sctx, cancel = context.WithTimeout(ctx, 5*time.Second)
	results, _, err = c.Server(0).SubmitBatch(sctx, []core.Txn{appendTxn("torn", "s0:k", "s2:k")})
	cancel()
	if err != nil {
		t.Fatalf("SubmitBatch error: %v", err)
	}
	if !results[0].Aborted {
		t.Fatalf("txn with unreachable peer did not abort: %+v", results[0])
	}
	net.HealAll()
	// Let the write's epoch close: same-epoch snapshots can order before
	// the write (decentralized timestamps), so read from a later epoch.
	time.Sleep(15 * time.Millisecond)
	// The local install of "torn" was rolled back by the second-round
	// abort (server 0 was always reachable from itself), so readers skip
	// it: only the baseline remains.
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	v, found, err := c.Server(1).Get(rctx, "s0:k")
	cancel()
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !found || string(v) != "base;" {
		t.Fatalf("s0:k = %q (found=%v), want %q — aborted txn's local half leaked", v, found, "base;")
	}
}

// TestChaosHealRestoresService: after HealAll, previously failing
// cross-partition transactions commit and are readable everywhere.
func TestChaosHealRestoresService(t *testing.T) {
	c, net := newChaosCluster(t)
	ctx := context.Background()
	net.Sever(0, 1)
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	results, _, err := c.Server(0).SubmitBatch(sctx, []core.Txn{appendTxn("during", "s1:h")})
	cancel()
	if err != nil || !results[0].Aborted {
		t.Fatalf("expected abort while severed: err=%v res=%+v", err, results[0])
	}
	net.HealAll()
	sctx, cancel = context.WithTimeout(ctx, 5*time.Second)
	results, _, err = c.Server(0).SubmitBatch(sctx, []core.Txn{appendTxn("after", "s1:h")})
	cancel()
	if err != nil || results[0].Aborted {
		t.Fatalf("txn after heal failed: err=%v res=%+v", err, results[0])
	}
	// Read from a later epoch than the write's (same-epoch snapshots can
	// order before it).
	time.Sleep(15 * time.Millisecond)
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	v, _, err := c.Server(2).Get(rctx, "s1:h")
	cancel()
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if got := string(v); got != "after;" {
		t.Fatalf("s1:h = %q, want %q", got, "after;")
	}
}

// TestChaosScenarioQuick runs full oracle-checked scenarios against the
// cluster — the core-level entry point for the chaos suite (the long
// nightly variant lives in internal/chaos with -chaos.long).
func TestChaosScenarioQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario skipped in -short mode")
	}
	for _, seed := range []int64{7001, 7002} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := chaos.RunScenario(chaos.ScenarioConfig{
				Seed:         seed,
				LinkChaos:    true,
				Writers:      4,
				OpsPerWriter: 40,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			t.Logf("%s", rep)
			if !rep.OK() {
				t.Errorf("seed %d: %s", seed, rep)
			}
		})
	}
}
