package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
)

// TestDynamicDependentKeys exercises the TPC-C order-id pattern: a
// determinate functor on a sequence key allocates an id during computation
// and writes rows whose names embed the id (unknown at install time). A
// schema-level dependency rule forces the sequence key's watermark forward
// before any order row is read, so readers always observe the deferred
// writes (§IV-E).
func TestDynamicDependentKeys(t *testing.T) {
	reg := functor.NewRegistry()
	reg.MustRegister("alloc-order", func(ctx *functor.Context) (*functor.Resolution, error) {
		id := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			id, _ = kv.DecodeInt64(r.Value)
		}
		id++
		return &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.EncodeInt64(id),
			DependentWrites: []functor.DependentWrite{
				{Key: kv.Key(fmt.Sprintf("order:%d", id)), Value: ctx.Arg},
			},
		}, nil
	})
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     reg,
		Workers:      -1, // no async processing: the rule alone must settle writes
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			// Sequence key on 0, order rows on 1: the deferred write
			// crosses partitions.
			if strings.HasPrefix(string(k), "order:") {
				return 1
			}
			return 0
		}),
		DependencyRule: func(k kv.Key) (kv.Key, bool) {
			if strings.HasPrefix(string(k), "order:") {
				return "seq", true
			}
			return "", false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		if _, err := c.Server(0).Submit(ctx, Txn{Writes: []Write{
			{Key: "seq", Functor: functor.User("alloc-order", payload, nil)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	mustAdvance(t, c)
	// Reading an order row (never directly installed!) must trigger the
	// rule, compute the sequence functors, apply the deferred writes, and
	// return the payload — even without asynchronous processors.
	for i := 1; i <= 3; i++ {
		key := kv.Key(fmt.Sprintf("order:%d", i))
		v, found, err := c.Server(1).GetCommitted(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("payload-%d", i)
		if !found || string(v) != want {
			t.Errorf("%s = %q found=%v, want %q", key, v, found, want)
		}
	}
	if n, ok := readInt(t, c, 0, "seq"); !ok || n != 3 {
		t.Errorf("seq = %d ok=%v, want 3", n, ok)
	}
	// A row that was never allocated reads as absent, after the rule has
	// settled the sequence key (no false positives).
	if _, found, err := c.Server(0).GetCommitted(ctx, "order:99"); err != nil || found {
		t.Errorf("order:99 found=%v err=%v, want absent", found, err)
	}
}

// TestDependencyRuleWithAbortedAllocator: an aborted determinate functor
// must not leave phantom dependent rows, and the id must be reused by the
// next allocation (the paper's "ALOHA-DB must assign the order id
// dynamically" behaviour, §V-A2).
func TestDependencyRuleWithAbortedAllocator(t *testing.T) {
	reg := functor.NewRegistry()
	reg.MustRegister("alloc-order", func(ctx *functor.Context) (*functor.Resolution, error) {
		id := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			id, _ = kv.DecodeInt64(r.Value)
		}
		id++
		return &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.EncodeInt64(id),
			DependentWrites: []functor.DependentWrite{
				{Key: kv.Key(fmt.Sprintf("order:%d", id)), Value: ctx.Arg},
			},
		}, nil
	})
	c, err := NewCluster(ClusterConfig{
		Servers:      1,
		ManualEpochs: true,
		Registry:     reg,
		Workers:      -1,
		DependencyRule: func(k kv.Key) (kv.Key, bool) {
			if strings.HasPrefix(string(k), "order:") {
				return "seq", true
			}
			return "", false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{{Key: "item", Value: kv.Value("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// First allocation aborts in phase 1 (missing required item).
	h, err := c.Server(0).Submit(ctx, Txn{
		Writes:   []Write{{Key: "seq", Functor: functor.User("alloc-order", []byte("phantom"), nil)}},
		Requires: []kv.Key{"missing"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if aborted, _ := h.Installed(); !aborted {
		t.Fatal("expected phase-1 abort")
	}
	// Second allocation succeeds.
	if _, err := c.Server(0).Submit(ctx, Txn{
		Writes:   []Write{{Key: "seq", Functor: functor.User("alloc-order", []byte("real"), nil)}},
		Requires: []kv.Key{"item"},
	}); err != nil {
		t.Fatal(err)
	}
	mustAdvance(t, c)
	// The aborted allocation's version is skipped: id 1 goes to the real
	// transaction and its payload is "real", not "phantom".
	v, found, err := c.Server(0).GetCommitted(ctx, "order:1")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "real" {
		t.Errorf("order:1 = %q found=%v, want real", v, found)
	}
	if n, ok := readInt(t, c, 0, "seq"); !ok || n != 1 {
		t.Errorf("seq = %d ok=%v, want 1", n, ok)
	}
}
