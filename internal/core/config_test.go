package core

import (
	"strings"
	"testing"

	"alohadb/internal/mvstore"
	"alohadb/internal/transport"
)

func TestServerConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	tests := []struct {
		name    string
		cfg     ServerConfig
		wantErr string
	}{
		{name: "zero servers", cfg: ServerConfig{ID: 0, NumServers: 0}, wantErr: "NumServers"},
		{name: "negative id", cfg: ServerConfig{ID: -1, NumServers: 2}, wantErr: "out of range"},
		{name: "id too large", cfg: ServerConfig{ID: 2, NumServers: 2}, wantErr: "out of range"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewServer(tt.cfg, net)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
	// A duplicate node ID is rejected by the transport.
	if _, err := NewServer(ServerConfig{ID: 0, NumServers: 2}, net); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{ID: 0, NumServers: 2}, net); err == nil {
		t.Error("duplicate attach should fail")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Servers: 0}); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := NewCluster(ClusterConfig{
		Servers: 2,
		Stores:  []*mvstore.Store{mvstore.New()}, // wrong length
	}); err == nil {
		t.Error("mismatched seeded stores should fail")
	}
	c, err := NewCluster(ClusterConfig{Servers: 1, ManualEpochs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Error("double Start should fail")
	}
	if err := c.Load(nil); err == nil {
		t.Error("Load after Start should fail")
	}
	if err := c.LoadFunctor("k", nil); err == nil {
		t.Error("LoadFunctor after Start should fail")
	}
}

func TestWorkersConfigSemantics(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	// Default: 0 -> max(2, GOMAXPROCS) workers; negative -> none.
	s0, err := NewServer(ServerConfig{ID: 0, NumServers: 3, Workers: 0}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	if got, want := len(s0.proc.shards), defaultWorkers(); got != want {
		t.Errorf("default workers = %d, want %d", got, want)
	}
	if defaultWorkers() < 2 {
		t.Errorf("defaultWorkers() = %d, want >= 2", defaultWorkers())
	}
	s1, err := NewServer(ServerConfig{ID: 1, NumServers: 3, Workers: -1}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if got := len(s1.proc.shards); got != 0 {
		t.Errorf("negative workers = %d shards, want 0", got)
	}
	s2, err := NewServer(ServerConfig{ID: 2, NumServers: 3, Workers: 7}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.proc.shards); got != 7 {
		t.Errorf("workers = %d, want 7", got)
	}
}

func TestStatsStringer(t *testing.T) {
	s := Stats{TxnsCommitted: 5, FunctorsInstalled: 10, FunctorsComputed: 9}
	out := s.String()
	for _, want := range []string{"txns=5", "functors=9/10"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q, missing %q", out, want)
		}
	}
}
