package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// serverStats aggregates per-server counters for the benchmark harness,
// including the Figure-10 stage breakdown: functor installing (issue →
// installed), waiting for processing (installed → retrieved by a
// processor), and processing (handler run time).
type serverStats struct {
	txnsCommitted atomic.Uint64
	txnsAborted   atomic.Uint64
	readsServed   atomic.Uint64

	functorsInstalled atomic.Uint64
	functorsComputed  atomic.Uint64
	remoteReads       atomic.Uint64
	pushesSent        atomic.Uint64
	pushHits          atomic.Uint64
	onDemandComputes  atomic.Uint64
	versionsCompacted atomic.Uint64

	installNanos atomic.Int64 // issue -> installed
	installCount atomic.Uint64
	waitNanos    atomic.Int64 // installed -> retrieved by processor
	waitCount    atomic.Uint64
	computeNanos atomic.Int64 // handler run time
	computeCount atomic.Uint64
}

func (s *serverStats) recordInstall(d time.Duration) {
	s.installNanos.Add(int64(d))
	s.installCount.Add(1)
}

func (s *serverStats) recordWait(d time.Duration) {
	s.waitNanos.Add(int64(d))
	s.waitCount.Add(1)
}

func (s *serverStats) recordCompute(d time.Duration) {
	s.computeNanos.Add(int64(d))
	s.computeCount.Add(1)
}

// Stats is an immutable snapshot of one server's counters.
type Stats struct {
	TxnsCommitted     uint64
	TxnsAborted       uint64
	ReadsServed       uint64
	FunctorsInstalled uint64
	FunctorsComputed  uint64
	RemoteReads       uint64
	PushesSent        uint64
	PushHits          uint64
	OnDemandComputes  uint64
	VersionsCompacted uint64

	// Stage breakdown (Figure 10): cumulative time and event counts.
	InstallTime  time.Duration
	InstallCount uint64
	WaitTime     time.Duration
	WaitCount    uint64
	ComputeTime  time.Duration
	ComputeCount uint64
}

// Add accumulates another snapshot into s, for cluster-wide aggregation.
func (s *Stats) Add(o Stats) {
	s.TxnsCommitted += o.TxnsCommitted
	s.TxnsAborted += o.TxnsAborted
	s.ReadsServed += o.ReadsServed
	s.FunctorsInstalled += o.FunctorsInstalled
	s.FunctorsComputed += o.FunctorsComputed
	s.RemoteReads += o.RemoteReads
	s.PushesSent += o.PushesSent
	s.PushHits += o.PushHits
	s.OnDemandComputes += o.OnDemandComputes
	s.VersionsCompacted += o.VersionsCompacted
	s.InstallTime += o.InstallTime
	s.InstallCount += o.InstallCount
	s.WaitTime += o.WaitTime
	s.WaitCount += o.WaitCount
	s.ComputeTime += o.ComputeTime
	s.ComputeCount += o.ComputeCount
}

// String renders a compact operator-facing summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"txns=%d aborts=%d reads=%d functors=%d/%d remote-reads=%d pushes=%d/%d hits compacted=%d",
		s.TxnsCommitted, s.TxnsAborted, s.ReadsServed,
		s.FunctorsComputed, s.FunctorsInstalled,
		s.RemoteReads, s.PushesSent, s.PushHits, s.VersionsCompacted)
}

func (s *serverStats) snapshot() Stats {
	return Stats{
		TxnsCommitted:     s.txnsCommitted.Load(),
		TxnsAborted:       s.txnsAborted.Load(),
		ReadsServed:       s.readsServed.Load(),
		FunctorsInstalled: s.functorsInstalled.Load(),
		FunctorsComputed:  s.functorsComputed.Load(),
		RemoteReads:       s.remoteReads.Load(),
		PushesSent:        s.pushesSent.Load(),
		PushHits:          s.pushHits.Load(),
		OnDemandComputes:  s.onDemandComputes.Load(),
		VersionsCompacted: s.versionsCompacted.Load(),
		InstallTime:       time.Duration(s.installNanos.Load()),
		InstallCount:      s.installCount.Load(),
		WaitTime:          time.Duration(s.waitNanos.Load()),
		WaitCount:         s.waitCount.Load(),
		ComputeTime:       time.Duration(s.computeNanos.Load()),
		ComputeCount:      s.computeCount.Load(),
	}
}
