package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"alohadb/internal/metrics"
)

// Abort-reason taxonomy indices. Every aborted transaction lands in
// exactly one bucket, derived from the TxnResult reason string — the
// classification an operator needs to tell "the workload hit a
// constraint" from "chaos ate the install call" from "placement churn
// outran the reroute budget" when the abort rate moves.
const (
	abortConstraint    = iota // phase-1 requirement or install rejection
	abortReroute              // WrongOwner reroute budget exhausted
	abortChaos                // injected fault (chaos transport)
	abortIndeterminate        // second-round rollback unacknowledged
	abortOther                // transport errors, everything else
	numAbortReasons
)

// AbortReasons maps taxonomy indices to their exported reason labels.
var AbortReasons = [numAbortReasons]string{
	abortConstraint:    "constraint",
	abortReroute:       "wrong-owner-reroute-exhausted",
	abortChaos:         "chaos-injected",
	abortIndeterminate: "crash-indeterminate",
	abortOther:         "other",
}

// classifyAbortReason buckets one abort by its TxnResult fields. An
// indeterminate rollback dominates: whatever caused the abort, the
// operator's first concern is that the outcome is not clean.
func classifyAbortReason(reason string, incomplete bool) int {
	switch {
	case incomplete:
		return abortIndeterminate
	case reason == ErrRerouteExhausted.Error():
		return abortReroute
	case strings.Contains(reason, "chaos: injected"):
		return abortChaos
	case strings.Contains(reason, "required key"):
		return abortConstraint
	default:
		return abortOther
	}
}

// serverStats aggregates per-server instruments: engine counters plus the
// Figure-10 stage histograms — functor installing (issue → installed),
// waiting for processing (installed → retrieved by a processor), and
// processing (handler run time) — and the epoch-level distributions
// (transactions per epoch, server-observed switch span). All record calls
// are atomic and allocation-free; snapshots are taken by Stats (flat
// compatibility view) and MetricFamilies (self-describing families).
type serverStats struct {
	txnsCommitted atomic.Uint64
	txnsAborted   atomic.Uint64
	abortReasons  [numAbortReasons]atomic.Uint64
	readsServed   atomic.Uint64

	functorsInstalled atomic.Uint64
	functorsComputed  atomic.Uint64
	remoteReads       atomic.Uint64
	pushesSent        atomic.Uint64
	pushHits          atomic.Uint64
	onDemandComputes  atomic.Uint64
	versionsCompacted atomic.Uint64

	installHist *metrics.Histogram // issue -> installed
	waitHist    *metrics.Histogram // installed -> retrieved by processor
	computeHist *metrics.Histogram // handler run time

	epochTxns   *metrics.Histogram // transactions begun per committed epoch
	epochSwitch *metrics.Histogram // revoke -> committed span, as seen by this server

	// Combiner dispatch sizes: how many remote reads/ensures each outbound
	// RPC carried (size 1 = the single-request fast path). Sum/Count give
	// the combining factor.
	readBatchHist   *metrics.Histogram
	ensureBatchHist *metrics.Histogram
}

// init builds the histograms; called once from NewServer.
func (s *serverStats) init() {
	s.installHist = metrics.NewHistogram(metrics.LatencyBounds())
	s.waitHist = metrics.NewHistogram(metrics.LatencyBounds())
	s.computeHist = metrics.NewHistogram(metrics.LatencyBounds())
	s.epochTxns = metrics.NewHistogram(metrics.CountBounds())
	s.epochSwitch = metrics.NewHistogram(metrics.LatencyBounds())
	s.readBatchHist = metrics.NewHistogram(metrics.CountBounds())
	s.ensureBatchHist = metrics.NewHistogram(metrics.CountBounds())
}

func (s *serverStats) recordInstall(d time.Duration) { s.installHist.ObserveDuration(d) }
func (s *serverStats) recordWait(d time.Duration)    { s.waitHist.ObserveDuration(d) }
func (s *serverStats) recordCompute(d time.Duration) { s.computeHist.ObserveDuration(d) }
func (s *serverStats) recordReadBatch(n int)         { s.readBatchHist.Observe(int64(n)) }
func (s *serverStats) recordEnsureBatch(n int)       { s.ensureBatchHist.Observe(int64(n)) }

// recordAbortReason buckets one abort into the reason taxonomy
// (allocation-free: the classification is string compares against the
// already-built reason).
func (s *serverStats) recordAbortReason(reason string, incomplete bool) {
	s.abortReasons[classifyAbortReason(reason, incomplete)].Add(1)
}

// recordEpoch records one committed epoch: how many transactions this
// server began in it and how long the revoke→committed window lasted.
func (s *serverStats) recordEpoch(txns uint64, switchSpan time.Duration) {
	s.epochTxns.Observe(int64(txns))
	if switchSpan > 0 {
		s.epochSwitch.ObserveDuration(switchSpan)
	}
}

// Stats is an immutable snapshot of one server's counters. It is the
// flat compatibility view; MetricFamilies is the structured API carrying
// the full distributions.
type Stats struct {
	TxnsCommitted     uint64
	TxnsAborted       uint64
	ReadsServed       uint64
	FunctorsInstalled uint64
	FunctorsComputed  uint64
	RemoteReads       uint64
	PushesSent        uint64
	PushHits          uint64
	OnDemandComputes  uint64
	VersionsCompacted uint64

	// Stage breakdown (Figure 10): cumulative time and event counts,
	// derived from the stage histograms.
	InstallTime  time.Duration
	InstallCount uint64
	WaitTime     time.Duration
	WaitCount    uint64
	ComputeTime  time.Duration
	ComputeCount uint64

	// Combiner effectiveness: outbound read/ensure RPC dispatches and the
	// ops they carried. BatchedReads/ReadBatches is the read combining
	// factor (1.0 = nothing combined).
	ReadBatches    uint64
	BatchedReads   uint64
	EnsureBatches  uint64
	BatchedEnsures uint64
}

// Add accumulates another snapshot into s, for cluster-wide aggregation.
func (s *Stats) Add(o Stats) {
	s.TxnsCommitted += o.TxnsCommitted
	s.TxnsAborted += o.TxnsAborted
	s.ReadsServed += o.ReadsServed
	s.FunctorsInstalled += o.FunctorsInstalled
	s.FunctorsComputed += o.FunctorsComputed
	s.RemoteReads += o.RemoteReads
	s.PushesSent += o.PushesSent
	s.PushHits += o.PushHits
	s.OnDemandComputes += o.OnDemandComputes
	s.VersionsCompacted += o.VersionsCompacted
	s.InstallTime += o.InstallTime
	s.InstallCount += o.InstallCount
	s.WaitTime += o.WaitTime
	s.WaitCount += o.WaitCount
	s.ComputeTime += o.ComputeTime
	s.ComputeCount += o.ComputeCount
	s.ReadBatches += o.ReadBatches
	s.BatchedReads += o.BatchedReads
	s.EnsureBatches += o.EnsureBatches
	s.BatchedEnsures += o.BatchedEnsures
}

// String renders a compact operator-facing summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"txns=%d aborts=%d reads=%d functors=%d/%d remote-reads=%d pushes=%d/%d hits compacted=%d",
		s.TxnsCommitted, s.TxnsAborted, s.ReadsServed,
		s.FunctorsComputed, s.FunctorsInstalled,
		s.RemoteReads, s.PushesSent, s.PushHits, s.VersionsCompacted)
}

func (s *serverStats) snapshot() Stats {
	install := s.installHist.Snapshot()
	wait := s.waitHist.Snapshot()
	compute := s.computeHist.Snapshot()
	readBatch := s.readBatchHist.Snapshot()
	ensureBatch := s.ensureBatchHist.Snapshot()
	return Stats{
		TxnsCommitted:     s.txnsCommitted.Load(),
		TxnsAborted:       s.txnsAborted.Load(),
		ReadsServed:       s.readsServed.Load(),
		FunctorsInstalled: s.functorsInstalled.Load(),
		FunctorsComputed:  s.functorsComputed.Load(),
		RemoteReads:       s.remoteReads.Load(),
		PushesSent:        s.pushesSent.Load(),
		PushHits:          s.pushHits.Load(),
		OnDemandComputes:  s.onDemandComputes.Load(),
		VersionsCompacted: s.versionsCompacted.Load(),
		InstallTime:       time.Duration(install.Sum),
		InstallCount:      install.Count,
		WaitTime:          time.Duration(wait.Sum),
		WaitCount:         wait.Count,
		ComputeTime:       time.Duration(compute.Sum),
		ComputeCount:      compute.Count,
		ReadBatches:       readBatch.Count,
		BatchedReads:      uint64(readBatch.Sum),
		EnsureBatches:     ensureBatch.Count,
		BatchedEnsures:    uint64(ensureBatch.Sum),
	}
}

// Metric family names exported by every server. cmd/aloha-server serves
// them on /metrics; DB.Metrics returns them programmatically.
const (
	FamTxnsCommitted     = "aloha_txns_committed_total"
	FamTxnsAborted       = "aloha_txns_aborted_total"
	FamTxnAbortReason    = "aloha_txn_abort_total"
	FamReadsServed       = "aloha_reads_served_total"
	FamFunctorsInstalled = "aloha_functors_installed_total"
	FamFunctorsComputed  = "aloha_functors_computed_total"
	FamRemoteReads       = "aloha_remote_reads_total"
	FamPushesSent        = "aloha_pushes_sent_total"
	FamPushHits          = "aloha_push_hits_total"
	FamOnDemandComputes  = "aloha_on_demand_computes_total"
	FamVersionsCompacted = "aloha_versions_compacted_total"
	FamStageInstall      = "aloha_stage_install_seconds"
	FamStageWait         = "aloha_stage_wait_seconds"
	FamStageCompute      = "aloha_stage_compute_seconds"
	FamEpochTxns         = "aloha_epoch_txns"
	FamEpochSwitch       = "aloha_epoch_switch_seconds"
	FamReadBatchSize     = "aloha_read_batch_size"
	FamEnsureBatchSize   = "aloha_ensure_batch_size"
	FamCommittedEpoch    = "aloha_committed_epoch"
	FamServerEpoch       = "aloha_server_epoch"
	FamPlacementGen      = "aloha_placement_generation"
)

// families builds the unlabeled family list; the server tags each series
// with its server label before exposing them.
func (s *serverStats) families() []metrics.Family {
	counter := func(name, help string, v uint64) metrics.Family {
		return metrics.Family{
			Name: name, Help: help, Kind: metrics.KindCounter,
			Series: []metrics.Series{metrics.CounterSeries(v)},
		}
	}
	hist := func(name, help string, unit metrics.Unit, h *metrics.Histogram) metrics.Family {
		return metrics.Family{
			Name: name, Help: help, Kind: metrics.KindHistogram, Unit: unit,
			Series: []metrics.Series{metrics.HistSeries(h.Snapshot())},
		}
	}
	abortSeries := make([]metrics.Series, 0, numAbortReasons)
	for i := 0; i < numAbortReasons; i++ {
		abortSeries = append(abortSeries, metrics.CounterSeries(
			s.abortReasons[i].Load(), metrics.Label{Key: "reason", Value: AbortReasons[i]}))
	}
	return []metrics.Family{
		counter(FamTxnsCommitted, "Transactions whose write-only phase succeeded.", s.txnsCommitted.Load()),
		counter(FamTxnsAborted, "Transactions rolled back by the second round.", s.txnsAborted.Load()),
		{
			Name: FamTxnAbortReason, Help: "Aborted transactions by reason taxonomy (constraint, wrong-owner-reroute-exhausted, chaos-injected, crash-indeterminate, other).",
			Kind:   metrics.KindCounter,
			Series: abortSeries,
		},
		counter(FamReadsServed, "Read requests served by this partition.", s.readsServed.Load()),
		counter(FamFunctorsInstalled, "Functors installed as in-epoch versions.", s.functorsInstalled.Load()),
		counter(FamFunctorsComputed, "Functors resolved to final states.", s.functorsComputed.Load()),
		counter(FamRemoteReads, "Historical reads issued to other partitions during computation.", s.remoteReads.Load()),
		counter(FamPushesSent, "Proactive value pushes sent to recipient partitions.", s.pushesSent.Load()),
		counter(FamPushHits, "Computations served from the proactive-push cache.", s.pushHits.Load()),
		counter(FamOnDemandComputes, "Functors computed on demand at read time.", s.onDemandComputes.Load()),
		counter(FamVersionsCompacted, "Historical versions removed by retention.", s.versionsCompacted.Load()),
		hist(FamStageInstall, "Transaction issue to all functors installed (Figure 10 stage 1).", metrics.UnitSeconds, s.installHist),
		hist(FamStageWait, "Functor install to processor dequeue (Figure 10 stage 2).", metrics.UnitSeconds, s.waitHist),
		hist(FamStageCompute, "Functor handler run time (Figure 10 stage 3).", metrics.UnitSeconds, s.computeHist),
		hist(FamEpochTxns, "Transactions this server began per committed epoch.", metrics.UnitNone, s.epochTxns),
		hist(FamEpochSwitch, "Epoch revoke to committed span observed by this server.", metrics.UnitSeconds, s.epochSwitch),
		hist(FamReadBatchSize, "Remote reads carried per combiner dispatch (1 = uncombined).", metrics.UnitNone, s.readBatchHist),
		hist(FamEnsureBatchSize, "Remote ensures carried per combiner dispatch (1 = uncombined).", metrics.UnitNone, s.ensureBatchHist),
	}
}
