package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
)

// TestCloseReleasesGoroutines guards the goroutine-lifetime discipline:
// after a cluster serves traffic and closes, the goroutine count returns
// to (near) its pre-cluster baseline.
func TestCloseReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c, err := NewCluster(ClusterConfig{
		Servers:       3,
		EpochDuration: 3 * time.Millisecond,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var last *TxnHandle
	for i := 0; i < 50; i++ {
		h, err := c.Server(i%3).Submit(ctx, Txn{Writes: []Write{
			{Key: kv.Key(string(rune('a' + i%5))), Functor: functor.Add(1)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		last = h
	}
	if _, _, err := last.Await(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// One-way sends and revoke-ack goroutines drain asynchronously; allow
	// them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
