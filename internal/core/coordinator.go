package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// Txn is one client transaction expressed, as in the paper's model (§IV-A),
// as a write set of key-functor pairs (the read sets live inside the
// functors) plus optional phase-1 existence requirements.
type Txn struct {
	// Writes are the key-functor pairs of the write-only phase.
	Writes []Write
	// Requires lists keys that must exist for the install to succeed;
	// each is checked on the partition owning it.
	Requires []kv.Key
}

// TxnResult reports the outcome of a transaction's write-only phase.
type TxnResult struct {
	// Version is the transaction's timestamp (zero if no timestamp was
	// assigned).
	Version tstamp.Timestamp
	// Aborted is set when phase 1 failed and the second round rolled the
	// transaction back.
	Aborted bool
	// Reason explains an abort.
	Reason string
	// AbortIncomplete is set alongside Aborted when the second-round
	// rollback could not be acknowledged by every partition that may hold
	// the transaction's installs within the retry budget. The outcome is
	// then indeterminate rather than cleanly aborted: an unreachable
	// partition may expose the installs once its epoch commits, unless
	// crash recovery replays the abort from the coordinator's log.
	AbortIncomplete bool
}

// ErrRerouteExhausted is the abort reason recorded when a transaction's
// installs kept bouncing off stale-ownership rejections past the
// wrongOwnerRetries budget — every round adopted a newer placement map and
// resent, and the last round was still told WrongOwner. Seeing it means
// placement is churning faster than the coordinator can chase it (or a
// partition is stuck answering with a map it never updates).
var ErrRerouteExhausted = errors.New("core: install rerouting exhausted its retry budget")

// RerouteExhausted reports whether this abort was the WrongOwner
// retry-budget fallback rather than a phase-1 conflict or constraint
// failure. Callers that drive live migration can treat it as a retryable
// routing failure instead of a semantic abort.
func (r TxnResult) RerouteExhausted() bool {
	return r.Aborted && r.Reason == ErrRerouteExhausted.Error()
}

// Submit runs one read-write transaction's write-only phase: assign a
// timestamp in the current epoch, install every functor on its partition,
// and on any phase-1 failure run the second round that aborts the
// transaction everywhere (paper §IV-A, §V-A2). The returned handle lets the
// caller choose between the two acknowledgment options: installed (phase 1
// complete) or fully computed.
func (s *Server) Submit(ctx context.Context, txn Txn) (*TxnHandle, error) {
	results, handles, err := s.SubmitBatch(ctx, []Txn{txn})
	if err != nil {
		return nil, err
	}
	_ = results
	return handles[0], nil
}

// SubmitBatch runs many transactions' write-only phases with one install
// message per involved partition, the batching convention the paper uses
// for its apples-to-apples RPC comparison with Calvin.
func (s *Server) SubmitBatch(ctx context.Context, txns []Txn) ([]TxnResult, []*TxnHandle, error) {
	if len(txns) == 0 {
		return nil, nil, nil
	}
	start := time.Now()
	// The transaction's trace root: it covers the write-only phase (fan-out
	// installs plus any second-round aborts). Asynchronous children —
	// visibility wait, functor processing, deferred writes — attach to the
	// same trace through the contexts and work items derived from it, and
	// the slow-capture policy keys off this span's duration.
	ctx, root := s.tr.StartRoot(ctx, "txn.submit")
	root.SetAttr("txns", strconv.Itoa(len(txns)))
	defer root.End()
	rootSC := trace.FromContext(ctx)
	_, done, err := s.beginTxn(len(txns))
	if err != nil {
		return nil, nil, err
	}
	defer done()

	results := make([]TxnResult, len(txns))
	handles := make([]*TxnHandle, len(txns))

	// Assign timestamps and fan writes out by partition. A batch involves a
	// handful of partitions, so the per-owner grouping is a linear-scan slice
	// rather than a map — same reasoning as the per-transaction grouping
	// below, and it saves a map allocation per batch on the hot path.
	type ownerBatch struct {
		owner  int
		slices []installSlice
	}
	var perOwner []ownerBatch
	batchFor := func(o int) *ownerBatch {
		for j := range perOwner {
			if perOwner[j].owner == o {
				return &perOwner[j]
			}
		}
		perOwner = append(perOwner, ownerBatch{owner: o})
		return &perOwner[len(perOwner)-1]
	}
	versions := make([]tstamp.Timestamp, len(txns))
	for i := range txns {
		ts, err := s.gen.Next()
		if err != nil {
			return nil, nil, fmt.Errorf("core: assign timestamp: %w", err)
		}
		versions[i] = ts
		results[i].Version = ts
		withMarkers := expandDependentMarkers(txns[i].Writes)
		// Group this transaction's writes by owner. Transactions touch a
		// handful of partitions, so a linear scan over a small slice beats
		// a map allocation per transaction.
		type ownerSlice struct {
			owner int
			inst  InstallTxn
		}
		var owners []ownerSlice
		sliceFor := func(o int) *InstallTxn {
			for j := range owners {
				if owners[j].owner == o {
					return &owners[j].inst
				}
			}
			owners = append(owners, ownerSlice{owner: o, inst: InstallTxn{Version: ts}})
			return &owners[len(owners)-1].inst
		}
		// Installs route at the transaction's epoch, not at the newest
		// placement: a move taking effect next epoch must not steer this
		// epoch's writes to the new owner early (the move's From-epoch
		// fence, placement.Move).
		for _, w := range withMarkers {
			it := sliceFor(s.ownerAt(w.Key, ts.Epoch()))
			it.Writes = append(it.Writes, w)
		}
		for _, rk := range txns[i].Requires {
			it := sliceFor(s.ownerAt(rk, ts.Epoch()))
			it.Requires = append(it.Requires, rk)
		}
		for _, os := range owners {
			b := batchFor(os.owner)
			b.slices = append(b.slices, installSlice{txnIdx: i, inst: os.inst})
		}
		handles[i] = &TxnHandle{s: s, version: ts, writes: withMarkers, sc: rootSC}
	}

	// One install call per partition, in parallel.
	type ownerOutcome struct {
		owner   int
		slices  []installSlice
		resp    MsgInstallResp
		callErr error
	}
	outcomes := make([]ownerOutcome, 0, len(perOwner))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ob := range perOwner {
		wg.Add(1)
		go func(owner int, slices []installSlice) {
			defer wg.Done()
			ictx, span := s.tr.Start(ctx, "txn.install")
			span.SetAttr("owner", strconv.Itoa(owner))
			defer span.End()
			msg := MsgInstall{Txns: make([]InstallTxn, len(slices))}
			for i, sl := range slices {
				msg.Txns[i] = sl.inst
			}
			var resp MsgInstallResp
			var callErr error
			if owner == s.id {
				resp = s.handleInstall(ictx, msg)
			} else {
				raw, err := s.conn.Call(ictx, transport.NodeID(owner), msg)
				if err != nil {
					callErr = err
				} else if r, ok := raw.(MsgInstallResp); ok {
					resp = r
				} else {
					callErr = fmt.Errorf("core: install: unexpected response %T", raw)
				}
			}
			mu.Lock()
			outcomes = append(outcomes, ownerOutcome{owner: owner, slices: slices, resp: resp, callErr: callErr})
			mu.Unlock()
		}(ob.owner, ob.slices)
	}
	wg.Wait()

	// Determine per-transaction outcomes, remembering every partition a
	// transaction wrote to. The second round must over-send rather than
	// under-send: a partition whose install call errored may still have
	// applied the request (only the response was lost), and a partition
	// that rejected a batch item can have installed a prefix of its writes
	// before the durability failure — while aborting a version that never
	// landed is a harmless no-op. Aborts are the rare path, so only the
	// write slices are recorded; the key lists for the abort messages are
	// extracted lazily instead of allocating one per install.
	type wroteAt struct {
		owner  int
		writes []Write
	}
	wrote := make([][]wroteAt, len(txns))
	var wrongOwner []installSlice
	for _, oc := range outcomes {
		for j, sl := range oc.slices {
			i := sl.txnIdx
			if len(sl.inst.Writes) > 0 {
				wrote[i] = append(wrote[i], wroteAt{owner: oc.owner, writes: sl.inst.Writes})
			}
			switch {
			case oc.callErr != nil:
				results[i].Aborted = true
				results[i].Reason = oc.callErr.Error()
			case j < len(oc.resp.Results) && oc.resp.Results[j].WrongOwner:
				// Stale-generation routing: the partition's ownership map is
				// newer than ours. Nothing was installed there; adopt its map
				// and resend the slice — same timestamp — to whoever the new
				// map says owns the keys.
				s.table.Install(oc.resp.Placement)
				wrongOwner = append(wrongOwner, sl)
			case j < len(oc.resp.Results) && !oc.resp.Results[j].OK:
				results[i].Aborted = true
				results[i].Reason = oc.resp.Results[j].Err
			}
		}
	}
	if len(wrongOwner) > 0 {
		s.retryWrongOwner(ctx, wrongOwner, results, func(i int, owner int, writes []Write) {
			wrote[i] = append(wrote[i], wroteAt{owner: owner, writes: writes})
		})
	}

	// Second round: abort failed transactions on every partition that may
	// have installed them, one message per involved partition — a failed
	// batch can abort many transactions on the same peer, so their per-txn
	// aborts combine into one MsgAbortBatch.
	var abortsByOwner map[int][]MsgAbort
	var abortTxnsByOwner map[int][]int
	for i := range txns {
		if !results[i].Aborted {
			s.stats.txnsCommitted.Add(1)
			continue
		}
		s.stats.txnsAborted.Add(1)
		handles[i].abortedInstall = true
		handles[i].reason = results[i].Reason
		for _, wa := range wrote[i] {
			keys := make([]kv.Key, len(wa.writes))
			for wi, w := range wa.writes {
				keys[wi] = w.Key
			}
			if abortsByOwner == nil {
				abortsByOwner = make(map[int][]MsgAbort)
				abortTxnsByOwner = make(map[int][]int)
			}
			abortsByOwner[wa.owner] = append(abortsByOwner[wa.owner], MsgAbort{Version: versions[i], Keys: keys})
			abortTxnsByOwner[wa.owner] = append(abortTxnsByOwner[wa.owner], i)
		}
	}
	for owner, aborts := range abortsByOwner {
		if owner == s.id {
			for ai, a := range aborts {
				if err := s.handleAbort(ctx, a); err != nil {
					// A forward to a new owner failed; same uncertainty as
					// an unreachable partition below.
					i := abortTxnsByOwner[owner][ai]
					results[i].AbortIncomplete = true
					handles[i].abortIncomplete = true
				}
			}
			continue
		}
		// A single abort keeps the original wire message. Either way the
		// call rides ctx — the root-bearing context, so the abort round's
		// RPCs stay inside the transaction's trace — and is synchronous and
		// retried: the in-flight slot must outlive the rollback so the
		// epoch cannot commit with the transaction half-installed, and a
		// transiently unreachable partition (dropped request, healing
		// partition) usually acknowledges within the retry budget.
		var msg any = MsgAbortBatch{Aborts: aborts}
		if len(aborts) == 1 {
			msg = aborts[0]
		}
		if !s.callAbortRetry(ctx, owner, msg) {
			// The partition stayed unreachable. Unless crash recovery
			// replays the abort from its log, the installs may surface
			// when the epoch commits; surface the uncertainty to the
			// caller instead of pretending the rollback happened.
			for _, i := range abortTxnsByOwner[owner] {
				results[i].AbortIncomplete = true
				handles[i].abortIncomplete = true
			}
		}
	}
	// Classify aborts after the second round so an unacknowledged rollback
	// lands in the crash-indeterminate bucket rather than its original
	// reason.
	for i := range txns {
		if results[i].Aborted {
			s.stats.recordAbortReason(results[i].Reason, results[i].AbortIncomplete)
		}
	}
	s.stats.recordInstall(time.Since(start))
	return results, handles, nil
}

// installSlice is one transaction's writes destined for one partition
// (shared by SubmitBatch's initial fan-out and the WrongOwner retry path).
type installSlice struct {
	txnIdx int
	inst   InstallTxn
}

// wrongOwnerRetries bounds how many times a stale-generation install is
// re-routed before the transaction falls back to a normal abort. A
// rejection during the migration barrier itself answers with the
// pre-handoff map, so the first retry can bounce too; the backoff lets the
// barrier finish and the new map reach the rejecting server.
const wrongOwnerRetries = 6

// retryWrongOwner resends install slices that a partition rejected with
// WrongOwner: each round re-groups the slices' writes under the newest
// adopted ownership map — at the transaction's original epoch, with its
// original timestamp — and sends them to the owners the map names now.
// Rejections with a newer map feed the next round; exhausting the budget
// aborts the transaction through the caller's normal second round. noteWrote
// records every send so over-sent aborts reach every partition that may
// hold an install.
func (s *Server) retryWrongOwner(ctx context.Context, pending []installSlice, results []TxnResult, noteWrote func(txnIdx, owner int, writes []Write)) {
	backoff := time.Millisecond
	for attempt := 0; len(pending) > 0 && attempt < wrongOwnerRetries; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
			case <-s.ctx.Done():
				timer.Stop()
			}
			if backoff < 20*time.Millisecond {
				backoff *= 2
			}
		}
		// Re-group every pending slice by current ownership; one slice can
		// split across owners when the map moved only part of its keys.
		type ownerBatch struct {
			owner  int
			slices []installSlice
		}
		var perOwner []ownerBatch
		add := func(o int, sl installSlice) {
			for j := range perOwner {
				if perOwner[j].owner == o {
					perOwner[j].slices = append(perOwner[j].slices, sl)
					return
				}
			}
			perOwner = append(perOwner, ownerBatch{owner: o, slices: []installSlice{sl}})
		}
		for _, sl := range pending {
			if results[sl.txnIdx].Aborted {
				// Another slice already failed the transaction; the second
				// round will roll it back, don't grow its footprint.
				continue
			}
			e := sl.inst.Version.Epoch()
			type ownerSlice struct {
				owner int
				inst  InstallTxn
			}
			var owners []ownerSlice
			sliceFor := func(o int) *InstallTxn {
				for j := range owners {
					if owners[j].owner == o {
						return &owners[j].inst
					}
				}
				owners = append(owners, ownerSlice{owner: o, inst: InstallTxn{Version: sl.inst.Version}})
				return &owners[len(owners)-1].inst
			}
			for _, w := range sl.inst.Writes {
				it := sliceFor(s.ownerAt(w.Key, e))
				it.Writes = append(it.Writes, w)
			}
			for _, rk := range sl.inst.Requires {
				it := sliceFor(s.ownerAt(rk, e))
				it.Requires = append(it.Requires, rk)
			}
			for _, os := range owners {
				add(os.owner, installSlice{txnIdx: sl.txnIdx, inst: os.inst})
			}
		}
		pending = pending[:0]
		for _, ob := range perOwner {
			msg := MsgInstall{Txns: make([]InstallTxn, len(ob.slices)), Placement: s.table.Map()}
			for i, sl := range ob.slices {
				msg.Txns[i] = sl.inst
			}
			var resp MsgInstallResp
			if ob.owner == s.id {
				resp = s.handleInstall(ctx, msg)
			} else {
				raw, err := s.conn.Call(ctx, transport.NodeID(ob.owner), msg)
				if err != nil {
					for _, sl := range ob.slices {
						results[sl.txnIdx].Aborted = true
						results[sl.txnIdx].Reason = err.Error()
					}
					continue
				}
				var ok bool
				if resp, ok = raw.(MsgInstallResp); !ok {
					for _, sl := range ob.slices {
						results[sl.txnIdx].Aborted = true
						results[sl.txnIdx].Reason = fmt.Sprintf("core: install retry: unexpected response %T", raw)
					}
					continue
				}
			}
			for j, sl := range ob.slices {
				if len(sl.inst.Writes) > 0 {
					noteWrote(sl.txnIdx, ob.owner, sl.inst.Writes)
				}
				switch {
				case j < len(resp.Results) && resp.Results[j].WrongOwner:
					s.table.Install(resp.Placement)
					pending = append(pending, sl)
				case j < len(resp.Results) && !resp.Results[j].OK:
					results[sl.txnIdx].Aborted = true
					results[sl.txnIdx].Reason = resp.Results[j].Err
				}
			}
		}
	}
	for _, sl := range pending {
		if !results[sl.txnIdx].Aborted {
			results[sl.txnIdx].Aborted = true
			results[sl.txnIdx].Reason = ErrRerouteExhausted.Error()
		}
	}
}

// callAbortRetry delivers one second-round abort message, retrying with
// exponential backoff while the partition is unreachable. It returns false
// when the budget is exhausted without an acknowledged delivery.
func (s *Server) callAbortRetry(ctx context.Context, owner int, msg any) bool {
	backoff := s.abortBackoff
	for attempt := 0; attempt < s.abortRetries; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return false
			case <-s.ctx.Done():
				timer.Stop()
				return false
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		}
		if _, err := s.conn.Call(ctx, transport.NodeID(owner), msg); err == nil {
			return true
		}
	}
	return false
}

// expandDependentMarkers adds a DEP-MARKER write for every dependent key
// named by a determinate functor that is not already in the write set
// (paper §IV-E: dependent keys store no concrete functor in the write-only
// phase; the marker realizes the "watermark of the determinate key" rule as
// an explicit placeholder).
func expandDependentMarkers(writes []Write) []Write {
	var markers []Write
	for _, w := range writes {
		for _, dk := range w.Functor.DependentKeys {
			exists := false
			for _, w2 := range writes {
				if w2.Key == dk {
					exists = true
					break
				}
			}
			for _, m := range markers {
				if m.Key == dk {
					exists = true
					break
				}
			}
			if !exists {
				markers = append(markers, Write{Key: dk, Functor: functor.DepMarker(w.Key)})
			}
		}
	}
	if len(markers) == 0 {
		return writes
	}
	out := make([]Write, 0, len(writes)+len(markers))
	out = append(out, writes...)
	return append(out, markers...)
}

// TxnHandle tracks one submitted transaction across the acknowledgment
// options of §IV-A.
type TxnHandle struct {
	s               *Server
	version         tstamp.Timestamp
	writes          []Write
	abortedInstall  bool
	abortIncomplete bool
	reason          string
	// sc is the submit root's trace context; Await parents its span here
	// so the whole lifecycle shares one trace.
	sc trace.SpanContext
}

// Version returns the transaction's timestamp.
func (h *TxnHandle) Version() tstamp.Timestamp { return h.version }

// Installed reports the write-only phase outcome (acknowledgment option 1).
func (h *TxnHandle) Installed() (aborted bool, reason string) {
	return h.abortedInstall, h.reason
}

// AbortIncomplete reports whether the second-round rollback exhausted its
// retry budget on some partition; see TxnResult.AbortIncomplete.
func (h *TxnHandle) AbortIncomplete() bool { return h.abortIncomplete }

// Await blocks until the transaction's functors are fully computed and
// returns the commit/abort decision (acknowledgment option 2). Any functor
// of the transaction reflects the decision (§IV-A), so waiting on the first
// written key suffices.
func (h *TxnHandle) Await(ctx context.Context) (committed bool, reason string, err error) {
	if h.abortedInstall {
		return false, h.reason, nil
	}
	if len(h.writes) == 0 {
		return true, "", nil
	}
	ctx, span := h.s.tr.StartAt(ctx, h.sc, "txn.await")
	defer span.End()
	if err := h.s.waitVisible(ctx, h.version); err != nil {
		return false, "", err
	}
	k := h.writes[0].Key
	wait := MsgWaitComputed{Key: k, Version: h.version}
	var resp MsgWaitComputedResp
	if owner := h.s.owner(k); owner == h.s.id {
		resp, err = h.s.handleWaitComputed(ctx, wait)
	} else {
		var raw any
		raw, err = h.s.conn.Call(ctx, transport.NodeID(owner), wait)
		if err == nil {
			var ok bool
			if resp, ok = raw.(MsgWaitComputedResp); !ok {
				err = fmt.Errorf("core: await: unexpected response %T", raw)
			}
		}
	}
	if err != nil {
		return false, "", err
	}
	switch resp.Kind {
	case functor.ResolvedAborted:
		return false, resp.Reason, nil
	default:
		return true, "", nil
	}
}

// Get performs a latest-version read-only transaction under unified epochs
// (§III-B): it draws a timestamp in the current write epoch, waits for that
// epoch to commit, then reads the historical version at the timestamp.
func (s *Server) Get(ctx context.Context, key kv.Key) (kv.Value, bool, error) {
	ts, err := s.gen.Next()
	if err != nil {
		return nil, false, err
	}
	return s.getAtSnapshot(ctx, key, ts)
}

// GetAt reads key at an explicit snapshot. Snapshots in uncommitted epochs
// wait for visibility; historical snapshots are served immediately.
func (s *Server) GetAt(ctx context.Context, key kv.Key, snapshot tstamp.Timestamp) (kv.Value, bool, error) {
	return s.getAtSnapshot(ctx, key, snapshot)
}

// GetCommitted reads the latest already-committed version of key without
// waiting for the current epoch, trading the freshness of Get for immediate
// service (snapshot = end of the last committed epoch).
func (s *Server) GetCommitted(ctx context.Context, key kv.Key) (kv.Value, bool, error) {
	bound := s.visibleBound()
	if bound == tstamp.Zero {
		return nil, false, fmt.Errorf("core: cluster not started")
	}
	return s.getAtSnapshot(ctx, key, bound.Prev())
}

// Snapshot returns a timestamp in the current epoch, usable with GetAt to
// assemble multi-key serializable read-only transactions.
func (s *Server) Snapshot() (tstamp.Timestamp, error) { return s.gen.Next() }

// ReadMany reads several keys at one snapshot, forming a serializable
// read-only transaction.
func (s *Server) ReadMany(ctx context.Context, keys []kv.Key) (map[kv.Key]kv.Value, tstamp.Timestamp, error) {
	ts, err := s.gen.Next()
	if err != nil {
		return nil, tstamp.Zero, err
	}
	out := make(map[kv.Key]kv.Value, len(keys))
	for _, k := range keys {
		v, found, err := s.getAtSnapshot(ctx, k, ts)
		if err != nil {
			return nil, tstamp.Zero, err
		}
		if found {
			out[k] = v
		}
	}
	return out, ts, nil
}

func (s *Server) getAtSnapshot(ctx context.Context, key kv.Key, ts tstamp.Timestamp) (kv.Value, bool, error) {
	// Read-only transactions root their own trace: under unified epochs
	// they carry a write-epoch timestamp and can block in visibility.wait
	// just like writers (§III-B), which is exactly the stage worth seeing.
	ctx, root := s.tr.StartRoot(ctx, "txn.read")
	root.SetAttr("key", string(key))
	defer root.End()
	if err := s.waitVisible(ctx, ts); err != nil {
		return nil, false, err
	}
	// Remote keys route through s.read and thus the per-owner combiner, so
	// concurrent read-only transactions against one partition share RPCs.
	r, err := s.read(ctx, key, ts)
	if err != nil {
		return nil, false, err
	}
	return r.Value, r.Found, nil
}
