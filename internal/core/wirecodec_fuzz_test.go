package core

import (
	"reflect"
	"testing"

	"alohadb/internal/wire"
)

// fuzzMessageCodec drives one message kind's decoder with arbitrary
// payload bytes. Two properties:
//
//  1. No panic: adversarial bytes must yield an error or a message,
//     never a crash (the decoder is fed straight off the network).
//  2. Fixpoint: when the bytes do decode, re-encoding the result and
//     decoding again must reproduce the same struct. Byte equality is
//     NOT required — the decoder accepts non-minimal varints the
//     encoder never emits — but the struct round trip must be stable.
func fuzzMessageCodec(f *testing.F, kind wire.Kind, samples []any) {
	RegisterMessages()
	for _, msg := range samples {
		b, _, err := wire.AppendEnvelope(nil, &wire.Envelope{Kind: 1, Msg: msg})
		if err != nil {
			f.Fatal(err)
		}
		// Seed with the payload only: everything after the envelope
		// header's msgKind byte.
		env, err := wire.DecodeEnvelope(b[wire.FrameLenSize:])
		if err != nil || env.Msg == nil {
			f.Fatalf("bad seed: %v", err)
		}
		payload := payloadOf(f, msg)
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		msg, err := decodePayload(kind, payload)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		re := payloadOf(t, msg)
		msg2, err := decodePayload(kind, re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v\npayload % x", err, re)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("fixpoint violated:\n first %#v\nsecond %#v", msg, msg2)
		}
	})
}

// payloadOf encodes msg through the envelope codec and strips the
// envelope header, returning just the message payload bytes.
func payloadOf(t testing.TB, msg any) []byte {
	t.Helper()
	b, gobFallback, err := wire.AppendEnvelope(nil, &wire.Envelope{Kind: 1, Msg: msg})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if gobFallback {
		t.Fatalf("%T took the gob fallback", msg)
	}
	// Header: len(4) | kind(1) | id(1, value 0) | from(1, value 0) |
	// flags(1, value 0) | msgKind(1).
	const header = wire.FrameLenSize + 5
	return b[header:]
}

// decodePayload runs the registered decoder for kind over payload by
// synthesizing a minimal envelope around it.
func decodePayload(kind wire.Kind, payload []byte) (any, error) {
	body := append([]byte{1, 0, 0, 0, byte(kind)}, payload...)
	env, err := wire.DecodeEnvelope(body)
	if err != nil {
		return nil, err
	}
	return env.Msg, nil
}

func FuzzMsgInstall(f *testing.F) {
	fuzzMessageCodec(f, wireKindInstall, []any{
		hotSamples()[0], hotSamples()[1], MsgInstall{},
	})
}

func FuzzMsgInstallResp(f *testing.F) {
	fuzzMessageCodec(f, wireKindInstallResp, []any{
		hotSamples()[2], MsgInstallResp{},
	})
}

func FuzzMsgReadBatch(f *testing.F) {
	fuzzMessageCodec(f, wireKindReadBatch, []any{
		benchReadBatch(), MsgReadBatch{},
	})
}

func FuzzMsgReadBatchResp(f *testing.F) {
	fuzzMessageCodec(f, wireKindReadBatchResp, []any{
		hotSamples()[10], MsgReadBatchResp{},
	})
}

func FuzzMsgEnsureBatch(f *testing.F) {
	fuzzMessageCodec(f, wireKindEnsureBatch, []any{
		MsgEnsureBatch{Reqs: []EnsureReq{{Key: "d1", Version: 3, UpTo: true}}},
		MsgEnsureBatch{},
	})
}

func FuzzMsgEnsureBatchResp(f *testing.F) {
	fuzzMessageCodec(f, wireKindEnsureBatchResp, []any{
		MsgEnsureBatchResp{Results: []EnsureResult{{Err: "x"}, {}}},
	})
}

func FuzzMsgApplyDeferred(f *testing.F) {
	fuzzMessageCodec(f, wireKindApplyDeferred, []any{
		MsgApplyDeferred{Version: 9, Dissolve: nil, Aborted: true},
	})
}

func FuzzMsgPush(f *testing.F) {
	fuzzMessageCodec(f, wireKindPush, []any{
		MsgPush{Version: 5, Key: "k", Found: true},
	})
}

// FuzzEnvelope fuzzes the whole envelope decoder — header parsing, trace
// flags, error text, and the registered payload dispatch — with raw
// frame bodies.
func FuzzEnvelope(f *testing.F) {
	RegisterMessages()
	for _, msg := range hotSamples() {
		b, _, err := wire.AppendEnvelope(nil, &wire.Envelope{ID: 3, From: 1, Kind: 1, Msg: msg})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b[wire.FrameLenSize:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		env, err := wire.DecodeEnvelope(body)
		if err != nil {
			return
		}
		// Decoded envelopes must re-encode unless the payload rode the
		// gob escape hatch (gob streams are not byte-stable).
		b2, gobFallback, err := wire.AppendEnvelope(nil, &env)
		if err != nil || gobFallback {
			return
		}
		env2, err := wire.DecodeEnvelope(b2[wire.FrameLenSize:])
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("fixpoint violated:\n first %#v\nsecond %#v", env, env2)
		}
	})
}
