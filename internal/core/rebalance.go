package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/placement"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// Rebalancer orchestrates live range migration inside the epoch manager's
// barrier (epoch.Manager.SetBarrier): callers enqueue moves with MoveRange
// (or let EnableAuto derive them from the hot-key profiler) and the next
// epoch switch executes them atomically, when no transaction of the sealing
// epoch is in flight anywhere.
//
// One move's handoff at the barrier sealing epoch e:
//
//  1. Seal the range at every server except the move's target (moveMu's
//     write side waits out installs that passed the previous fence).
//  2. Export the range's version chains from every non-target server — the
//     current owner plus any not-yet-retired older replicas.
//  3. Import at the target: idempotent Puts, carried resolutions, stashed
//     forwarded aborts applied, unresolved functors queued to the processor
//     under the usual epoch discipline.
//  4. Install the successor ownership map (moves stamped From e+1) at the
//     target first — once any coordinator can learn the new map, the target
//     already holds the records its Requires checks need — then at every
//     other server, then in the cluster table.
//  5. Clear the seals. Epoch-(e+1) straggler installs that raced to the old
//     owner under the stale map now bounce WrongOwner with the new map
//     attached and re-route (same timestamp) to the target.
//
// The old owner keeps its replica and keeps computing it — at-most-once is
// an effect guarantee, and duplicate deterministic computes of the same
// functor resolve to the identical value through the resolve-once CAS. The
// replica retires at a barrier ≥2 epochs after the handoff, once every
// record in it is final.
//
// The rebalancer drives the handoff through direct in-process server calls,
// not through the transport: migration is control plane, and the embedded
// cluster (like the TCP deployment's server processes) hosts every server
// in-process. Chaos fault injection therefore exercises the data plane
// around a migration without being able to corrupt the handoff itself.
type Rebalancer struct {
	c *Cluster

	mu      sync.Mutex
	queue   []*MoveTicket
	retires []*retireJob
	auto    AutoRebalanceConfig
	autoOn  bool
	autoAt  tstamp.Epoch // last epoch auto enqueued a move

	rangesMoved     atomic.Uint64
	keysStreamed    atomic.Uint64
	recordsStreamed atomic.Uint64
	lastHandoff     atomic.Uint32
	retired         atomic.Uint64
}

// MoveTicket tracks one queued range move through its barrier execution.
type MoveTicket struct {
	rng placement.Range
	to  transport.NodeID

	done    chan struct{}
	handoff tstamp.Epoch
	err     error
}

// Range returns the range the ticket moves.
func (t *MoveTicket) Range() placement.Range { return t.rng }

// Wait blocks until the move's barrier has executed and returns the handoff
// epoch: versions in epochs ≤ handoff stay with the old owner, later ones
// belong to the new owner.
func (t *MoveTicket) Wait(ctx context.Context) (tstamp.Epoch, error) {
	select {
	case <-t.done:
		return t.handoff, t.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// retireJob is a deferred replica retirement: drop the old copies of a
// migrated range once the handoff has settled and every record is final.
type retireJob struct {
	rng      placement.Range
	to       transport.NodeID
	handoff  tstamp.Epoch
	notAfter tstamp.Epoch // give up once attempts exhaust
	dueAt    tstamp.Epoch
}

// retireGrace is how many epochs after the handoff the old replica
// survives before the first retirement attempt: by then the handoff epoch
// has committed everywhere and its functors have almost always resolved.
const retireGrace = 2

// retireAttempts bounds the retirement retries; a chain pinned by an
// unresolved functor for this long stays as garbage (memory, not
// correctness) rather than stalling the retire queue.
const retireAttempts = 8

// AutoRebalanceConfig tunes skew-driven automatic migration.
type AutoRebalanceConfig struct {
	// MinImbalance is the max/mean per-partition access ratio that triggers
	// a move (default 1.5; 1.0 is perfectly even).
	MinImbalance float64
	// CooldownEpochs is the minimum number of epochs between automatic
	// moves (default 8), giving the profiler time to observe the new
	// placement before reacting again.
	CooldownEpochs int
}

func newRebalancer(c *Cluster) *Rebalancer {
	return &Rebalancer{c: c}
}

// MoveRange enqueues a live migration of rng to server `to`; the next epoch
// switch executes it. The returned ticket reports the handoff epoch.
func (r *Rebalancer) MoveRange(rng placement.Range, to int) (*MoveTicket, error) {
	if to < 0 || to >= len(r.c.servers) {
		return nil, fmt.Errorf("core: move target %d out of range [0,%d)", to, len(r.c.servers))
	}
	if rng.Empty() {
		return nil, fmt.Errorf("core: cannot move empty range %v", rng)
	}
	t := &MoveTicket{rng: rng, to: transport.NodeID(to), done: make(chan struct{})}
	r.mu.Lock()
	r.queue = append(r.queue, t)
	r.mu.Unlock()
	return t, nil
}

// MoveKey enqueues a migration of the single-key range holding k — the
// common unit when splitting a hot spot off its partition.
func (r *Rebalancer) MoveKey(k kv.Key, to int) (*MoveTicket, error) {
	return r.MoveRange(placement.KeyRange(k), to)
}

// EnableAuto turns on skew-driven migration: at each barrier the rebalancer
// inspects the cluster's hot-key profiler and, when partition load is
// imbalanced beyond cfg.MinImbalance, moves the hottest key of the most
// loaded partition to the least loaded one. Requires ClusterConfig.Skew.
func (r *Rebalancer) EnableAuto(cfg AutoRebalanceConfig) error {
	if r.c.cfg.Skew == nil {
		return fmt.Errorf("core: auto rebalance needs ClusterConfig.Skew")
	}
	if cfg.MinImbalance <= 1 {
		cfg.MinImbalance = 1.5
	}
	if cfg.CooldownEpochs <= 0 {
		cfg.CooldownEpochs = 8
	}
	r.mu.Lock()
	r.auto = cfg
	r.autoOn = true
	r.mu.Unlock()
	return nil
}

// DisableAuto turns skew-driven migration off.
func (r *Rebalancer) DisableAuto() {
	r.mu.Lock()
	r.autoOn = false
	r.mu.Unlock()
}

// barrier is the epoch manager's switch hook (epoch.Manager.SetBarrier): it
// runs after every revoke ack of epoch e and before Committed(e)+Grant(e+1)
// — the window where executing queued moves is race-free.
func (r *Rebalancer) barrier(e tstamp.Epoch) {
	r.mu.Lock()
	moves := r.queue
	r.queue = nil
	r.mu.Unlock()
	for _, t := range moves {
		r.executeMove(t, e)
	}
	r.runRetirements(e)
	r.maybeAutoMove(e)
}

// executeMove performs one handoff at the barrier sealing epoch e; see the
// type comment for the step-by-step protocol.
func (r *Rebalancer) executeMove(t *MoveTicket, e tstamp.Epoch) {
	defer close(t.done)
	target := r.c.servers[int(t.to)]

	// 1. Fence the range everywhere but at the target (the target must keep
	// accepting: epoch-(e+1) installs re-routed under the new map land
	// there while the barrier is still clearing other servers' seals).
	seal := MsgRangeSeal{Ranges: []placement.Range{t.rng}}
	for _, srv := range r.c.servers {
		if srv == target {
			continue
		}
		srv.handleRangeSeal(seal)
	}

	// 2.+3. Stream every non-target replica of the range to the target.
	for _, srv := range r.c.servers {
		if srv == target {
			continue
		}
		exp := srv.handleRangeExport(MsgRangeExport{Range: t.rng})
		if len(exp.Keys) == 0 {
			continue
		}
		imp := target.handleRangeImport(context.Background(), MsgRangeImport{Keys: exp.Keys, Handoff: e})
		r.keysStreamed.Add(uint64(imp.Keys))
		r.recordsStreamed.Add(uint64(imp.Records))
	}

	// 4. Install the successor map: target first, then the rest, then the
	// cluster's own table (coordinators embedded in servers learn it from
	// either their own table or a WrongOwner response).
	next := r.c.table.Map().Next(placement.Move{Range: t.rng, To: t.to, From: e + 1})
	target.table.Install(next)
	for _, srv := range r.c.servers {
		if srv != target {
			srv.table.Install(next)
		}
	}
	r.c.table.Install(next)

	// 5. Lift the fences; stale-map installs now bounce off the ownership
	// check instead of the seal.
	lift := MsgRangeSeal{Ranges: []placement.Range{t.rng}, Clear: true}
	for _, srv := range r.c.servers {
		if srv != target {
			srv.handleRangeSeal(lift)
		}
	}

	t.handoff = e
	r.rangesMoved.Add(1)
	r.lastHandoff.Store(uint32(e))
	r.mu.Lock()
	r.retires = append(r.retires, &retireJob{
		rng: t.rng, to: t.to, handoff: e,
		dueAt:    e + retireGrace,
		notAfter: e + retireGrace + retireAttempts,
	})
	r.mu.Unlock()
}

// runRetirements drops old replicas of settled handoffs. A chain still
// holding non-final records pushes its job to the next barrier until the
// attempt budget runs out.
func (r *Rebalancer) runRetirements(e tstamp.Epoch) {
	r.mu.Lock()
	jobs := r.retires
	r.retires = nil
	var keep []*retireJob
	r.mu.Unlock()
	for _, j := range jobs {
		if e < j.dueAt {
			keep = append(keep, j)
			continue
		}
		remaining := 0
		for _, srv := range r.c.servers {
			if srv == r.c.servers[int(j.to)] {
				continue
			}
			resp := srv.handleRangeRetire(MsgRangeRetire{Range: j.rng, Handoff: j.handoff})
			r.retired.Add(uint64(resp.Dropped))
			remaining += resp.Remaining
		}
		if remaining > 0 && e < j.notAfter {
			j.dueAt = e + 1
			keep = append(keep, j)
		}
	}
	if len(keep) > 0 {
		r.mu.Lock()
		r.retires = append(r.retires, keep...)
		r.mu.Unlock()
	}
}

// maybeAutoMove inspects the skew profiler and enqueues a hot-key move for
// the NEXT barrier when partition load is imbalanced enough. Enqueuing
// (rather than executing immediately) keeps each barrier's work bounded and
// lets the cooldown rate-limit reactions.
func (r *Rebalancer) maybeAutoMove(e tstamp.Epoch) {
	r.mu.Lock()
	cfg, on, last := r.auto, r.autoOn, r.autoAt
	r.mu.Unlock()
	if !on || r.c.cfg.Skew == nil {
		return
	}
	if last != 0 && e < last+tstamp.Epoch(cfg.CooldownEpochs) {
		return
	}
	snap := r.c.cfg.Skew.Snapshot()
	if snap.Imbalance < cfg.MinImbalance || len(snap.TopKeys) == 0 || len(snap.Partitions) == 0 {
		return
	}
	// Coolest partition by access share; the hottest key not already there
	// is the move candidate.
	coolest, coolAcc := -1, uint64(0)
	for _, p := range snap.Partitions {
		if p.Partition < 0 || p.Partition >= len(r.c.servers) {
			continue
		}
		if coolest == -1 || p.Accesses < coolAcc {
			coolest, coolAcc = p.Partition, p.Accesses
		}
	}
	if coolest == -1 {
		return
	}
	for _, hk := range snap.TopKeys {
		if int(r.c.table.Route(kv.Key(hk.Key), tstamp.MaxEpoch)) == coolest {
			continue
		}
		if _, err := r.MoveKey(kv.Key(hk.Key), coolest); err == nil {
			r.mu.Lock()
			r.autoAt = e
			r.mu.Unlock()
		}
		return
	}
}

// Metric family names exported by the rebalancer.
const (
	FamMigrationRangesMoved  = "aloha_migration_ranges_moved_total"
	FamMigrationKeysStreamed = "aloha_migration_keys_streamed_total"
	FamMigrationRecords      = "aloha_migration_records_streamed_total"
	FamMigrationRetired      = "aloha_migration_chains_retired_total"
	FamMigrationLastHandoff  = "aloha_migration_last_handoff_epoch"
	FamMigrationInflight     = "aloha_migration_inflight"
)

// Inflight reports queued moves plus pending retirements without
// allocating (the flight recorder samples it every tick). Nil-safe.
func (r *Rebalancer) Inflight() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue) + len(r.retires)
}

// MetricFamilies returns the rebalancer's migration counters and gauges.
func (r *Rebalancer) MetricFamilies() []metrics.Family {
	r.mu.Lock()
	inflight := len(r.queue) + len(r.retires)
	r.mu.Unlock()
	counter := func(name, help string, v uint64) metrics.Family {
		return metrics.Family{
			Name: name, Help: help, Kind: metrics.KindCounter,
			Series: []metrics.Series{metrics.CounterSeries(v)},
		}
	}
	return []metrics.Family{
		counter(FamMigrationRangesMoved, "Ranges handed to a new owner by the rebalancer.", r.rangesMoved.Load()),
		counter(FamMigrationKeysStreamed, "Keys streamed to new owners during migrations.", r.keysStreamed.Load()),
		counter(FamMigrationRecords, "Version records streamed to new owners during migrations.", r.recordsStreamed.Load()),
		counter(FamMigrationRetired, "Old-owner version chains dropped after settled handoffs.", r.retired.Load()),
		{
			Name: FamMigrationLastHandoff, Help: "Epoch of the most recent ownership handoff.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(r.lastHandoff.Load()))},
		},
		{
			Name: FamMigrationInflight, Help: "Queued moves plus pending replica retirements.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(inflight))},
		},
	}
}
