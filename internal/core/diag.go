package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"alohadb/internal/obs"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// This file is the server side of the epoch watchdog (internal/obs): the
// progress signal, the peer probes, and the stall-snapshot capture that
// gathers every queue the epoch-switch protocol can wedge on — unacked
// in-flight epochs (a revoked-but-unacked FE), buffered installs waiting
// for commit, processor and combiner queues (a lagging functor compute),
// and transport send queues (a backed-up or severed link).

// CommittedEpoch returns the last epoch whose versions are visible on this
// server (zero before the first commit).
func (s *Server) CommittedEpoch() tstamp.Epoch {
	if b := s.visibleBound(); b > 0 {
		return b.Epoch() - 1
	}
	return 0
}

// SetQueueDepthSource installs a callback reporting per-peer transport
// send-queue depths for stall snapshots (the TCP network exposes one; the
// in-memory mesh has no queues). Set before the watchdog starts.
func (s *Server) SetQueueDepthSource(fn func() map[transport.NodeID]int) {
	s.queueDepths = fn
}

// ProbePeers pings every other server plus the epoch manager node
// (address-book convention: node n) and reports reachability and epoch
// positions. A handler-level error still counts as reachable — the round
// trip completed; only transport failures mark a peer unreachable.
func (s *Server) ProbePeers(ctx context.Context, timeout time.Duration) []obs.PeerProbe {
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	targets := make([]int, 0, s.n)
	for i := 0; i <= s.n; i++ {
		if i != s.id {
			targets = append(targets, i)
		}
	}
	probes := make([]obs.PeerProbe, len(targets))
	var wg sync.WaitGroup
	for i, node := range targets {
		wg.Add(1)
		go func(i, node int) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			start := time.Now()
			resp, err := s.conn.Call(pctx, transport.NodeID(node), MsgPing{})
			p := obs.PeerProbe{Node: node, RTT: time.Since(start)}
			switch {
			case err == nil:
				p.Reachable = true
				if pong, ok := resp.(MsgPong); ok {
					p.CommittedEpoch = pong.CommittedEpoch
					p.CurrentEpoch = pong.CurrentEpoch
				}
			case errors.Is(err, transport.ErrRemote):
				p.Reachable = true
				p.Err = err.Error()
			default:
				p.Err = err.Error()
			}
			probes[i] = p
		}(i, node)
	}
	wg.Wait()
	return probes
}

// handlePing answers a peer probe with this server's epoch positions.
func (s *Server) handlePing() MsgPong {
	return MsgPong{
		Node:           s.id,
		CommittedEpoch: uint64(s.CommittedEpoch()),
		CurrentEpoch:   uint64(s.gen.Epoch()),
	}
}

// StallCapture builds a stall snapshot of this server; the watchdog calls
// it once per stall episode. ctx bounds the peer probes.
func (s *Server) StallCapture(ctx context.Context) *obs.StallSnapshot {
	snap := &obs.StallSnapshot{
		Server:         s.id,
		CommittedEpoch: uint64(s.CommittedEpoch()),
		CurrentEpoch:   uint64(s.gen.Epoch()),
		WALFsyncAge:    -1,
	}

	// Peer reachability: who is not answering, and whose seal is lagging.
	snap.Peers = s.ProbePeers(ctx, 0)
	for _, p := range snap.Peers {
		if !p.Reachable {
			snap.UnreachablePeers = append(snap.UnreachablePeers, p.Node)
		}
	}

	// Unacked in-flight epochs: a revoked epoch still listed here means
	// this server itself is the revoked-but-unacked FE (§III-B).
	s.mu.Lock()
	for e := range s.inflight {
		snap.InflightEpochs = append(snap.InflightEpochs, uint64(e))
	}
	s.mu.Unlock()
	sort.Slice(snap.InflightEpochs, func(i, j int) bool { return snap.InflightEpochs[i] < snap.InflightEpochs[j] })

	// Buffered installs per epoch, and the oldest pending functor overall:
	// its key, f-type, queue wait, and owning transaction's trace ID point
	// the operator at the lagging compute.
	var oldest *obs.PendingFunctor
	consider := func(it workItem) {
		wait := time.Since(it.installed)
		if oldest != nil && wait <= time.Duration(oldest.QueueWait) {
			return
		}
		pf := &obs.PendingFunctor{
			Key:       string(it.key),
			Version:   uint64(it.version),
			QueueWait: wait,
		}
		if it.rec != nil && it.rec.Functor != nil {
			pf.FType = it.rec.Functor.Type.String()
		}
		if tid := it.sc.Trace; tid != 0 {
			pf.TraceID = fmt.Sprintf("%016x", uint64(tid))
		}
		oldest = pf
	}
	s.pendingMu.Lock()
	for e, items := range s.pending {
		snap.PendingEpochs = append(snap.PendingEpochs, obs.EpochBuffer{Epoch: uint64(e), Buffered: len(items)})
		for _, it := range items {
			consider(it)
		}
	}
	s.pendingMu.Unlock()
	sort.Slice(snap.PendingEpochs, func(i, j int) bool { return snap.PendingEpochs[i].Epoch < snap.PendingEpochs[j].Epoch })

	// Processor shard queues (committed work awaiting compute).
	snap.ProcessorQueues = s.proc.queueDepths(consider)

	// Combiner occupancy: remote reads/ensures stuck forming or in flight.
	snap.CombinerQueues = s.comb.occupancy()

	// Transport send-queue depths, when the network reports them.
	if s.queueDepths != nil {
		depths := s.queueDepths()
		for node, depth := range depths {
			snap.SendQueues = append(snap.SendQueues, obs.SendQueue{Peer: int(node), Depth: depth})
		}
		sort.Slice(snap.SendQueues, func(i, j int) bool { return snap.SendQueues[i].Peer < snap.SendQueues[j].Peer })
	}

	// WAL fsync age, when the durability hook exposes it.
	if src, ok := s.durability.(interface{ LastSyncAge() (time.Duration, bool) }); ok {
		if age, ok := src.LastSyncAge(); ok {
			snap.WALFsyncAge = age
		}
	}

	// Cross-link the tracer's slow-transaction ring: trace IDs captured
	// around the stall, inspectable at /debug/traces. Nil-safe when
	// tracing is disabled.
	slow := s.tr.Tracer().SlowTraces()
	if n := len(slow); n > 8 {
		slow = slow[n-8:]
	}
	for _, tr := range slow {
		snap.SlowTraces = append(snap.SlowTraces, fmt.Sprintf("%016x", uint64(tr.ID)))
	}

	snap.OldestPending = oldest
	return snap
}

// NewWatchdog builds this server's epoch-progress watchdog: progress is
// the visibility bound (any committed epoch advances it) and the capture
// is StallCapture. Caller-set Progress/Capture/Server are preserved so
// tests can substitute signals. Returns nil (inert) when cfg.Threshold is
// zero; the caller owns Start/Stop.
func (s *Server) NewWatchdog(cfg obs.WatchdogConfig) *obs.Watchdog {
	cfg.Server = s.id
	if cfg.Progress == nil {
		cfg.Progress = s.visible.Load
	}
	if cfg.Capture == nil {
		cfg.Capture = s.StallCapture
	}
	// Remember the watchdog so the epoch journal can stamp its stall marker
	// (Active is nil-safe, so a zero-threshold watchdog costs nothing).
	s.wd = obs.NewWatchdog(cfg)
	return s.wd
}
