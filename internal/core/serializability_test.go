package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"alohadb/internal/epoch"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// TestSerializabilityEquivalence is the core correctness property: running
// a random mix of non-commutative transactions through the full concurrent
// cluster must yield, for every key, exactly the value a sequential replay
// in timestamp order yields. Append is order-sensitive, so any
// serializability violation (lost write, reordering, torn multi-key
// transaction) changes the bytes.
func TestSerializabilityEquivalence(t *testing.T) {
	const (
		servers = 4
		keys    = 8
		writers = 8
		perW    = 50
	)
	c, err := NewCluster(ClusterConfig{
		Servers:       servers,
		EpochDuration: 3 * time.Millisecond,
		Registry:      testRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	allKeys := make([]kv.Key, keys)
	for i := range allKeys {
		allKeys[i] = kv.Key(fmt.Sprintf("k%d", i))
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	type op struct {
		version tstamp.Timestamp
		key     kv.Key
		arg     byte
	}
	var (
		mu  sync.Mutex
		ops []op
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				arg := byte('a' + rng.Intn(26))
				// Mix single-key and two-key transactions.
				nWrites := 1 + rng.Intn(2)
				seen := map[kv.Key]bool{}
				var writes []Write
				for len(writes) < nWrites {
					k := allKeys[rng.Intn(keys)]
					if seen[k] {
						continue
					}
					seen[k] = true
					writes = append(writes, Write{
						Key:     k,
						Functor: functor.User("append", []byte{arg}, nil),
					})
				}
				h, err := c.Server(rng.Intn(servers)).Submit(ctx, Txn{Writes: writes})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if aborted, reason := h.Installed(); aborted {
					t.Errorf("unexpected abort: %s", reason)
					return
				}
				mu.Lock()
				for _, wr := range writes {
					ops = append(ops, op{version: h.Version(), key: wr.Key, arg: arg})
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Let the final epoch commit and all functors compute.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().FunctorsComputed < c.Stats().FunctorsInstalled {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Force epoch advancement past the last write, then read committed.
	time.Sleep(3 * epochSettle)

	// Sequential replay in timestamp order.
	sort.Slice(ops, func(i, j int) bool { return ops[i].version < ops[j].version })
	want := make(map[kv.Key][]byte)
	versionsSeen := make(map[tstamp.Timestamp]bool)
	for _, o := range ops {
		want[o.key] = append(want[o.key], o.arg)
		versionsSeen[o.version] = true
	}
	if len(versionsSeen) != writers*perW {
		t.Fatalf("expected %d unique versions, got %d", writers*perW, len(versionsSeen))
	}
	for _, k := range allKeys {
		v, found, err := c.Server(0).Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(want[k]) == 0 {
			if found {
				t.Errorf("%s: unexpectedly found %q", k, v)
			}
			continue
		}
		if !found {
			t.Errorf("%s: missing (want %d bytes)", k, len(want[k]))
			continue
		}
		if !bytes.Equal(v, want[k]) {
			t.Errorf("%s: engine produced %q, sequential replay %q", k, v, want[k])
		}
	}
}

const epochSettle = 10 * time.Millisecond

// TestClusterOverTCP runs the full engine across the TCP transport,
// exercising gob encoding of every message type on the wire.
func TestClusterOverTCP(t *testing.T) {
	RegisterMessages()
	const servers = 3
	addrs := make(map[transport.NodeID]string, servers)
	for i := 0; i < servers; i++ {
		addrs[transport.NodeID(i)] = "127.0.0.1:0"
	}
	net := transport.NewTCPNetwork(addrs)
	defer net.Close()
	c, err := NewCluster(ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Registry:     testRegistry(t),
		Network:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{
		{Key: "acct:a", Value: kv.EncodeInt64(500)},
		{Key: "acct:b", Value: kv.EncodeInt64(500)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A cross-partition conditional transfer, with a remote read and a
	// recipient push across real sockets.
	h, err := c.Server(0).Submit(ctx, Txn{Writes: []Write{
		{Key: "acct:a", Functor: functor.User("xfer-out", kv.EncodeInt64(100), nil,
			functor.WithRecipients("acct:b"))},
		{Key: "acct:b", Functor: functor.User("xfer-in", xferInArg("acct:a", 100), []kv.Key{"acct:a"})},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAdvance(t, c)
	committed, reason, err := h.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatalf("transfer aborted: %s", reason)
	}
	for _, tt := range []struct {
		key  kv.Key
		want int64
	}{{"acct:a", 400}, {"acct:b", 600}} {
		v, found, err := c.Server(2).GetCommitted(ctx, tt.key)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := kv.DecodeInt64(v)
		if !found || n != tt.want {
			t.Errorf("%s = %d found=%v, want %d", tt.key, n, found, tt.want)
		}
	}
	// An aborting transfer over TCP.
	h2, err := c.Server(1).Submit(ctx, Txn{Writes: []Write{
		{Key: "acct:a", Functor: functor.User("xfer-out", kv.EncodeInt64(1_000_000), nil)},
		{Key: "acct:b", Functor: functor.User("xfer-in", xferInArg("acct:a", 1_000_000), []kv.Key{"acct:a"})},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAdvance(t, c)
	committed, _, err = h2.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Error("over-withdrawal should abort")
	}
}

// TestRemoteEpochManager drives a cluster through the EM-over-transport
// protocol path (MsgGrant/MsgRevoke/MsgRevokeAck/MsgCommitted).
func TestRemoteEpochManager(t *testing.T) {
	RegisterMessages()
	memNet := transport.NewMemNetwork()
	defer memNet.Close()
	const servers = 2
	reg := testRegistry(t)
	var srvs []*Server
	for i := 0; i < servers; i++ {
		s, err := NewServer(ServerConfig{ID: i, NumServers: servers, Registry: reg}, memNet)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs = append(srvs, s)
	}
	em, err := NewEMNode(memNet, transport.NodeID(servers), []transport.NodeID{0, 1}, epoch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Manager.Start(); err != nil {
		t.Fatal(err)
	}
	waitEpoch := func(e tstamp.Epoch) {
		deadline := time.Now().Add(2 * time.Second)
		for srvs[0].gen.Epoch() < e || srvs[1].gen.Epoch() < e {
			if time.Now().After(deadline) {
				t.Fatalf("servers never reached epoch %d", e)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitEpoch(1)
	ctx := context.Background()
	h, err := srvs[0].Submit(ctx, Txn{Writes: []Write{
		{Key: "k", Functor: functor.Value(kv.Value("via-remote-em"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Manager.Advance(); err != nil {
		t.Fatal(err)
	}
	committed, reason, err := h.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatalf("aborted: %s", reason)
	}
	v, found, err := srvs[1].GetCommitted(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "via-remote-em" {
		t.Errorf("read %q found=%v", v, found)
	}
}
