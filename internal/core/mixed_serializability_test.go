package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// TestMixedSerializability extends the append-only equivalence check with
// the full operation mix — arithmetic, overwrites, deletes, and
// conditional debits that abort on insufficient funds — and verifies the
// engine's final state equals a sequential replay in timestamp order,
// including which transactions aborted.
func TestMixedSerializability(t *testing.T) {
	const (
		servers = 3
		keys    = 6
		writers = 6
		perW    = 60
	)
	reg := functor.NewRegistry()
	// cdebit subtracts the argument if the balance covers it, else aborts.
	reg.MustRegister("cdebit", func(ctx *functor.Context) (*functor.Resolution, error) {
		amt, _ := kv.DecodeInt64(ctx.Arg)
		r := ctx.Reads[ctx.Key]
		if !r.Found {
			return functor.AbortResolution("no account"), nil
		}
		bal, _ := kv.DecodeInt64(r.Value)
		if bal < amt {
			return functor.AbortResolution("insufficient"), nil
		}
		return functor.ValueResolution(kv.EncodeInt64(bal - amt)), nil
	})
	c, err := NewCluster(ClusterConfig{
		Servers:       servers,
		EpochDuration: 3 * time.Millisecond,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	type opKind uint8
	const (
		opAdd opKind = iota
		opSet
		opDel
		opDebit
		opAddPair // two-key arithmetic transaction
	)
	type op struct {
		version tstamp.Timestamp
		kind    opKind
		key     kv.Key
		key2    kv.Key
		arg     int64
	}
	allKeys := make([]kv.Key, keys)
	for i := range allKeys {
		allKeys[i] = kv.Key(fmt.Sprintf("m%d", i))
	}

	var (
		mu  sync.Mutex
		ops []op
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < perW; i++ {
				o := op{
					kind: opKind(rng.Intn(5)),
					key:  allKeys[rng.Intn(keys)],
					arg:  int64(rng.Intn(40)),
				}
				var txn Txn
				switch o.kind {
				case opAdd:
					txn = Txn{Writes: []Write{{Key: o.key, Functor: functor.Add(o.arg)}}}
				case opSet:
					txn = Txn{Writes: []Write{{Key: o.key, Functor: functor.Value(kv.EncodeInt64(o.arg))}}}
				case opDel:
					txn = Txn{Writes: []Write{{Key: o.key, Functor: functor.Deleted()}}}
				case opDebit:
					txn = Txn{Writes: []Write{{Key: o.key, Functor: functor.User("cdebit", kv.EncodeInt64(o.arg), nil)}}}
				case opAddPair:
					o.key2 = allKeys[(int(o.arg)+1+rng.Intn(keys-1))%keys]
					if o.key2 == o.key {
						o.key2 = allKeys[(rng.Intn(keys-1)+1+indexOf(allKeys, o.key))%keys]
					}
					txn = Txn{Writes: []Write{
						{Key: o.key, Functor: functor.Add(o.arg)},
						{Key: o.key2, Functor: functor.Add(o.arg)},
					}}
				}
				h, err := c.Server(rng.Intn(servers)).Submit(ctx, txn)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				o.version = h.Version()
				mu.Lock()
				ops = append(ops, o)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Wait for the last epochs to commit and all functors to compute.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.FunctorsComputed >= s.FunctorsInstalled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("functors never settled: %d/%d", s.FunctorsComputed, s.FunctorsInstalled)
		}
		time.Sleep(time.Millisecond)
	}

	// Sequential replay in timestamp order.
	type state struct {
		val    int64
		exists bool
	}
	model := make(map[kv.Key]state)
	sort.Slice(ops, func(i, j int) bool { return ops[i].version < ops[j].version })
	for _, o := range ops {
		switch o.kind {
		case opAdd:
			st := model[o.key]
			model[o.key] = state{val: st.val + o.arg, exists: true}
		case opSet:
			model[o.key] = state{val: o.arg, exists: true}
		case opDel:
			model[o.key] = state{}
		case opDebit:
			st := model[o.key]
			if st.exists && st.val >= o.arg {
				model[o.key] = state{val: st.val - o.arg, exists: true}
			}
			// else: aborted, no effect
		case opAddPair:
			st := model[o.key]
			model[o.key] = state{val: st.val + o.arg, exists: true}
			st2 := model[o.key2]
			model[o.key2] = state{val: st2.val + o.arg, exists: true}
		}
	}

	for _, k := range allKeys {
		v, found, err := c.Server(0).Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		want := model[k]
		if found != want.exists {
			t.Errorf("%s: found=%v, model exists=%v", k, found, want.exists)
			continue
		}
		if !found {
			continue
		}
		got, _ := kv.DecodeInt64(v)
		if got != want.val {
			t.Errorf("%s: engine=%d model=%d", k, got, want.val)
		}
	}
}

func indexOf(keys []kv.Key, k kv.Key) int {
	for i, kk := range keys {
		if kk == k {
			return i
		}
	}
	return 0
}

// TestDeleteArithmeticInterleaving pins the missing-key semantics of
// arithmetic functors across deletions: ADD after DELETE restarts from
// zero, exactly like the reference model above assumes.
func TestDeleteArithmeticInterleaving(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		fn   *functor.Functor
		want int64
		gone bool
	}{
		{fn: functor.Add(5), want: 5},
		{fn: functor.Deleted(), gone: true},
		{fn: functor.Add(3), want: 3},
		{fn: functor.Sub(10), want: -7},
		{fn: functor.Value(kv.EncodeInt64(100)), want: 100},
		{fn: functor.Deleted(), gone: true},
		{fn: functor.Max(9), want: 9},
	}
	for i, st := range steps {
		mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: st.fn}}})
		mustAdvance(t, c)
		n, ok := readInt(t, c, 0, "k")
		if st.gone {
			if ok {
				t.Errorf("step %d: key exists after delete", i)
			}
			continue
		}
		if !ok || n != st.want {
			t.Errorf("step %d: k = %d ok=%v, want %d", i, n, ok, st.want)
		}
	}
}
