package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/mvstore"
	"alohadb/internal/obs"
	"alohadb/internal/obs/journal"
	"alohadb/internal/placement"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// Partitioner maps a key to the server owning its partition. Workloads may
// provide their own placement (TPC-C partitions by warehouse, scaled TPC-C
// by item/district); the default is hash partitioning.
//
// Deprecated: Partitioner describes a placement that can never change.
// Routing now goes through placement.Router (an epoch-versioned ownership
// map that supports live migration); wrap a legacy closure with
// placement.NewStatic, or set ServerConfig.Router / ClusterConfig.Router
// directly. Existing Partitioner fields keep working via that adapter.
type Partitioner func(k kv.Key, numServers int) int

// HashPartitioner is the default placement: a StaticRouter over it is what
// servers route through when no Router is configured.
func HashPartitioner(k kv.Key, n int) int { return kv.PartitionOf(k, n) }

// ServerConfig configures one combined FE/BE server.
type ServerConfig struct {
	// ID is the server's index in 0..NumServers-1; it doubles as the
	// transport node ID and the timestamp server field.
	ID int
	// NumServers is the cluster size.
	NumServers int
	// Router is the base key→server placement; nil falls back to
	// Partitioner (or hash placement). The server overlays it with the
	// epoch-versioned ownership maps installed by the rebalancer.
	Router placement.Router
	// Partitioner places keys; nil means HashPartitioner.
	//
	// Deprecated: set Router instead (wrap a closure with
	// placement.NewStatic). Ignored when Router is non-nil.
	Partitioner Partitioner
	// Registry resolves user-defined functor handlers.
	Registry *functor.Registry
	// Workers sets the processor pool size; 0 scales with the machine:
	// max(2, GOMAXPROCS). Work is sharded across workers by key hash, so
	// more workers means more keys computing concurrently (the paper's
	// §IV-C thread pool at multi-core scale). A negative value disables
	// asynchronous processing entirely so that tests can exercise the
	// on-demand (read-triggered) computation path deterministically.
	Workers int
	// Durability, when set, receives the server's durable-state stream
	// (installs, second-round aborts, epoch commits). internal/wal and
	// internal/replica implement it. Fault tolerance is disabled by
	// default, following the paper's evaluation convention (§V-A2).
	Durability DurabilityHook
	// DependencyRule declares schema-level key dependencies for dependent
	// transactions (§IV-E): if it maps key k to a determinate key A, every
	// read of k at timestamp ts first forces A's value watermark to ts,
	// guaranteeing all deferred writes to k have been applied. TPC-C maps
	// order/new-order/order-line rows to their district's next-order-id
	// key this way. Nil disables the mechanism.
	DependencyRule func(k kv.Key) (kv.Key, bool)
	// Tracer, when set, records per-transaction lifecycle spans. Nil (the
	// default) disables tracing at zero per-operation cost.
	Tracer *trace.Tracer
	// ReadBatchWindow is how long the per-owner request combiner lingers
	// between consecutive batch dispatches to accumulate more remote
	// reads/ensures. Zero (the default) still combines — ops queued while a
	// dispatch forms leave as one batch — but never sleeps. An isolated
	// request is never delayed either way.
	ReadBatchWindow time.Duration
	// AbortRetries bounds how many times a second-round abort message is
	// redelivered when its call fails (default 4). The coordinator holds
	// the transaction's in-flight epoch slot across the retries, so a
	// transiently unreachable partition usually acknowledges the rollback
	// before the epoch commits; when the budget is exhausted the result is
	// flagged AbortIncomplete instead of silently dropped.
	AbortRetries int
	// AbortRetryBackoff is the pause before the first abort redelivery
	// (default 2 ms), doubling per attempt up to 50 ms.
	AbortRetryBackoff time.Duration
	// Skew, when set, samples per-key accesses on the install and local
	// read paths into the hot-key profiler (internal/obs). Nil (the
	// default) disables profiling at zero per-operation cost, the same
	// contract as Tracer.
	Skew *obs.Skew
	// JournalRing sizes the per-epoch lifecycle journal
	// (internal/obs/journal), in epochs. Zero takes the default (the
	// journal is always on); negative disables it entirely.
	JournalRing int
}

// DurabilityHook receives one server's durable-state stream. Installs and
// aborts may arrive concurrently; LogEpochCommitted(e) is ordered after
// every install and abort of epoch e (the epoch-switch protocol guarantees
// this), making the epoch the atomic durability unit.
type DurabilityHook interface {
	// LogInstall records one installed key-functor pair.
	LogInstall(version tstamp.Timestamp, key kv.Key, fn *functor.Functor) error
	// LogAbort records a second-round abort of the given keys.
	LogAbort(version tstamp.Timestamp, keys []kv.Key) error
	// LogEpochCommitted records that epoch e is fully committed; the hook
	// should make everything up to e durable (fsync, ship to backup). ctx
	// is the server's lifetime context carrying the epoch-commit trace:
	// shutdown cancels in-flight shipping, and the fsync/ship cost shows up
	// as a span under the server's epoch.commit trace.
	LogEpochCommitted(ctx context.Context, e tstamp.Epoch) error
}

// Server is one ALOHA-DB node: a front-end (transaction coordinator) and a
// back-end (one partition of the multi-version store plus the functor
// processor) co-located in one process, as in the paper's deployment.
type Server struct {
	id         int
	n          int
	table      *placement.Table
	registry   *functor.Registry
	store      *mvstore.Store
	gen        *tstamp.Generator
	conn       transport.Conn
	proc       *processor
	stats      serverStats
	durability DurabilityHook
	depRule    func(k kv.Key) (kv.Key, bool)
	tr         *trace.NodeTracer // nil when tracing is disabled
	comb       *combiner         // per-owner remote read/ensure batcher
	skew       *obs.Skew         // nil when hot-key profiling is disabled
	journal    *journal.Journal  // nil when the epoch journal is disabled
	wd         *obs.Watchdog     // nil when the watchdog is disabled

	// queueDepths, when set, reports per-peer transport send-queue depths
	// for stall snapshots (see SetQueueDepthSource).
	queueDepths func() map[transport.NodeID]int
	// maxQueueDepth, when set, reports the deepest outbound send queue
	// without allocating, for the flight recorder's per-tick sample (see
	// SetMaxQueueDepthSource).
	maxQueueDepth func() int

	// Second-round abort redelivery budget (see ServerConfig.AbortRetries).
	abortRetries int
	abortBackoff time.Duration

	// Epoch state. authEpoch is the epoch this FE may start transactions
	// in; authorized distinguishes holding the authorization from the
	// straggler window (§III-C) where transactions start without one.
	mu         sync.Mutex
	authEpoch  tstamp.Epoch
	authorized bool
	inflight   map[tstamp.Epoch]*sync.WaitGroup
	epochTxns  map[tstamp.Epoch]uint64    // transactions begun per epoch (metrics)
	revokedAt  map[tstamp.Epoch]time.Time // revoke arrival, for the switch-span histogram
	pendingMu  sync.Mutex
	pending    map[tstamp.Epoch][]workItem // buffered functor metadata per epoch
	// drainedEpoch is the highest epoch whose pending buffer Committed has
	// extracted (guarded by pendingMu). bufferWork routes installs at or
	// below it straight to seal+processor: deciding under the same lock as
	// the drain means a straggler install can never land in a buffer that
	// was already handed to the processor (which would orphan it unsealed).
	drainedEpoch tstamp.Epoch

	// visible is the exclusive upper bound of readable versions:
	// Start(e+1) once epoch e committed.
	visible   atomic.Uint64
	visibleMu sync.Mutex
	visibleCh chan struct{}

	// Migration state. moveMu interlocks installs against the barrier-time
	// range seal: installs hold the read side across the ownership check and
	// store Puts, the rebalancer's seal takes the write side, so after a
	// seal returns no install that passed the old fence can still be
	// mid-Put when the range is exported. sealedRanges (guarded by moveMu)
	// lists ranges currently being handed off; installs touching them get a
	// retriable WrongOwner rejection.
	moveMu       sync.RWMutex
	sealedRanges []placement.Range
	// abortStash holds second-round aborts that arrived (forwarded from the
	// old owner) before the range import delivered their records; the import
	// interlocks with handleAbort under stashMu and applies them. Entries
	// evict when their epoch commits.
	stashMu    sync.Mutex
	abortStash map[tstamp.Timestamp][]kv.Key

	// pushCache holds proactively pushed values keyed by (version, key).
	pushMu    sync.Mutex
	pushCache map[pushKey]functor.Read

	// computedMu/computedCh broadcast "some functor finished computing",
	// waking WaitComputed waiters; computedWaiters gates the broadcast so
	// the hot compute path pays nothing when nobody waits.
	computedMu      sync.Mutex
	computedCh      chan struct{}
	computedWaiters atomic.Int32

	// retention is the history horizon in epochs (0 = keep everything).
	retention atomic.Uint32

	// ctx is cancelled on Close, releasing blocked remote calls/waiters.
	ctx    context.Context
	cancel context.CancelFunc
	closed atomic.Bool
}

type pushKey struct {
	version tstamp.Timestamp
	key     kv.Key
}

// NewServer constructs a server and attaches it to the network.
func NewServer(cfg ServerConfig, net transport.Network) (*Server, error) {
	if cfg.NumServers <= 0 {
		return nil, fmt.Errorf("core: NumServers must be positive")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.NumServers {
		return nil, fmt.Errorf("core: server ID %d out of range [0,%d)", cfg.ID, cfg.NumServers)
	}
	if cfg.Registry == nil {
		cfg.Registry = functor.NewRegistry()
	}
	if cfg.Router == nil {
		// Legacy Partitioner configs (and the nil default, hash placement)
		// route through the static adapter.
		cfg.Router = placement.NewStatic(cfg.NumServers, cfg.Partitioner)
	}
	switch {
	case cfg.Workers == 0:
		cfg.Workers = defaultWorkers()
	case cfg.Workers < 0:
		cfg.Workers = 0
	}
	if cfg.AbortRetries <= 0 {
		cfg.AbortRetries = 4
	}
	if cfg.AbortRetryBackoff <= 0 {
		cfg.AbortRetryBackoff = 2 * time.Millisecond
	}
	s := &Server{
		id:         cfg.ID,
		n:          cfg.NumServers,
		table:      placement.NewTable(cfg.Router),
		registry:   cfg.Registry,
		store:      mvstore.New(),
		gen:        tstamp.NewGenerator(uint16(cfg.ID)),
		inflight:   make(map[tstamp.Epoch]*sync.WaitGroup),
		epochTxns:  make(map[tstamp.Epoch]uint64),
		revokedAt:  make(map[tstamp.Epoch]time.Time),
		pending:    make(map[tstamp.Epoch][]workItem),
		abortStash: make(map[tstamp.Timestamp][]kv.Key),
		pushCache:  make(map[pushKey]functor.Read),
		visibleCh:  make(chan struct{}),
		computedCh: make(chan struct{}),
		durability: cfg.Durability,
		depRule:    cfg.DependencyRule,
		tr:         cfg.Tracer.ForNode(cfg.ID),
		skew:       cfg.Skew,
		journal:    journal.New(journal.Config{Server: cfg.ID, Ring: cfg.JournalRing}),

		abortRetries: cfg.AbortRetries,
		abortBackoff: cfg.AbortRetryBackoff,
	}
	s.stats.init()
	s.comb = newCombiner(s, cfg.ReadBatchWindow)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	conn, err := net.Node(transport.NodeID(cfg.ID), s.handleMessage)
	if err != nil {
		return nil, fmt.Errorf("core: attach server %d: %w", cfg.ID, err)
	}
	s.conn = conn
	s.proc = newProcessor(s, cfg.Workers)
	return s, nil
}

// ID returns the server's index.
func (s *Server) ID() int { return s.id }

// CurrentEpoch returns the epoch the server currently issues timestamps
// in (zero before the first grant arrives).
func (s *Server) CurrentEpoch() tstamp.Epoch { return s.gen.Epoch() }

// Owner returns the server index currently owning key k under this
// server's routing table (base placement plus the newest ownership map).
func (s *Server) Owner(k kv.Key) int { return s.owner(k) }

// PlacementTable exposes the server's routing table (tests, diagnostics,
// and the rebalancer's direct-call path).
func (s *Server) PlacementTable() *placement.Table { return s.table }

// Stats returns a flat snapshot of the server's counters (compatibility
// view; MetricFamilies carries the full distributions).
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// MetricFamilies returns the server's self-describing metric snapshot:
// engine counters, Figure-10 stage histograms, epoch distributions, and —
// when the durability hook exposes metrics (internal/wal does) — the WAL
// families. Every series is tagged with this server's id.
func (s *Server) MetricFamilies() []metrics.Family {
	fams := s.stats.families()
	// Epoch-position gauges let a cluster scraper compute the minimum
	// sealed epoch across owners without the debug endpoints.
	fams = append(fams,
		metrics.Family{
			Name: FamCommittedEpoch, Help: "Last epoch whose versions are visible on this server.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(s.CommittedEpoch()))},
		},
		metrics.Family{
			Name: FamServerEpoch, Help: "Epoch this server currently issues timestamps in.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(s.gen.Epoch()))},
		},
		metrics.Family{
			Name: FamPlacementGen, Help: "Generation of the newest installed ownership map.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(s.table.Generation()))},
		})
	if src, ok := s.durability.(interface{ MetricFamilies() []metrics.Family }); ok {
		fams = append(fams, src.MetricFamilies()...)
	}
	fams = append(fams, s.journal.MetricFamilies()...) // nil-safe: empty when disabled
	return metrics.WithLabel(fams, "server", strconv.Itoa(s.id))
}

// Journal exposes the server's epoch lifecycle journal (nil when disabled
// via ServerConfig.JournalRing < 0); its Doc feeds /debug/epochs and the
// clusterview critical-path merge.
func (s *Server) Journal() *journal.Journal { return s.journal }

// Store exposes the partition's multi-version store to tests and tools.
func (s *Server) Store() *mvstore.Store { return s.store }

// Close stops the processor and detaches from the network.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.cancel()
	s.proc.stop()
	return s.conn.Close()
}

// baseCtx returns the server's lifetime context, used for internal remote
// calls and waits so Close unblocks them.
func (s *Server) baseCtx() context.Context { return s.ctx }

// engineCtx returns the context for engine-internal remote calls and waits
// reached from ctx: the server's lifetime context (so Close, not the
// original caller, unblocks them) carrying ctx's trace. Untraced contexts
// return s.ctx unchanged — no allocation.
func (s *Server) engineCtx(ctx context.Context) context.Context {
	return trace.Detach(s.ctx, ctx)
}

// owner returns the server index currently owning key k: routing at
// MaxEpoch sees every installed move, which is the right placement for
// reads, ensures, pushes, and scans — they always target the live owner.
func (s *Server) owner(k kv.Key) int { return int(s.table.Route(k, tstamp.MaxEpoch)) }

// ownerAt returns the owner of k for a version in epoch e. Installs and
// second-round aborts route here: a transaction of the sealing epoch still
// belongs to the old owner while the next epoch's writes go to the new one
// (the move's From-epoch fence).
func (s *Server) ownerAt(k kv.Key, e tstamp.Epoch) int { return int(s.table.Route(k, e)) }

// --- epoch.Participant ---------------------------------------------------

// Grant implements epoch.Participant: the server may start transactions in
// epoch e.
func (s *Server) Grant(e tstamp.Epoch) {
	s.mu.Lock()
	if e > s.authEpoch || (e == s.authEpoch && !s.authorized) {
		s.authEpoch = e
		s.authorized = true
	}
	s.mu.Unlock()
	// SetEpoch is a no-op if the straggler path already targeted e.
	s.gen.SetEpoch(e)
}

// Revoke implements epoch.Participant: stop starting authorized epoch-e
// transactions, switch the generator to straggler mode in e+1, and ack once
// in-flight epoch-e installs drain.
func (s *Server) Revoke(e tstamp.Epoch, ack func()) {
	now := time.Now()
	s.journal.AckWaitStart(uint64(e), now)
	s.mu.Lock()
	if s.authEpoch == e {
		s.authorized = false
	}
	wg := s.inflight[e]
	s.revokedAt[e] = now
	s.mu.Unlock()
	// Straggler optimization (§III-C): transactions may start immediately
	// without authorization, drawing timestamps from epoch e+1, which the
	// packed-timestamp scheme bounds below epoch e+1's finish timestamp.
	s.gen.SetEpoch(e + 1)
	if wg == nil {
		s.journal.AckWaitEnd(uint64(e), time.Now())
		ack()
		return
	}
	go func() {
		wg.Wait()
		s.mu.Lock()
		delete(s.inflight, e)
		s.mu.Unlock()
		s.journal.AckWaitEnd(uint64(e), time.Now())
		ack()
	}()
}

// Committed implements epoch.Participant: epoch e's versions become
// visible and its buffered functor metadata flows to the processor.
func (s *Server) Committed(e tstamp.Epoch) {
	s.journal.CommittedRecv(uint64(e), time.Now())
	// Record the epoch's transaction count and revoke→committed span.
	// Epochs that never saw a revoke (the Start-time commit of the loading
	// epoch) are not observed, so the distributions cover real switches
	// only.
	s.mu.Lock()
	txns := s.epochTxns[e]
	delete(s.epochTxns, e)
	revoked, sawRevoke := s.revokedAt[e]
	delete(s.revokedAt, e)
	s.mu.Unlock()
	if sawRevoke {
		s.stats.recordEpoch(txns, time.Since(revoked))
	}
	// Each server's commit work is its own trace root: the manager-side
	// epoch.switch span cannot parent it without widening the Participant
	// interface, and the commit path (durability flush + seal + enqueue) is
	// interesting in isolation.
	ctx, commitSpan := s.tr.StartRoot(s.ctx, "epoch.commit")
	commitSpan.SetAttr("epoch", strconv.FormatUint(uint64(e), 10))
	defer commitSpan.End()
	// Drain the epoch's buffered functor metadata and record the drain under
	// one lock: a straggler install racing this commit either appends to the
	// buffer before the drain or observes drainedEpoch and seals directly in
	// bufferWork — never a third option where it lands in a buffer nobody
	// will ever hand to the processor.
	s.pendingMu.Lock()
	items := s.pending[e]
	delete(s.pending, e)
	if e > s.drainedEpoch {
		s.drainedEpoch = e
	}
	s.pendingMu.Unlock()
	// Seal the epoch's versions (in-epoch -> out-epoch, Figure 4) before
	// advancing visibility: a reader that wakes on the visibility broadcast
	// must find every version of the epoch already reachable. Seal is
	// idempotent and cheap once a chain's staging is empty, so duplicate
	// keys in the batch don't warrant a dedup map here — the map cost the
	// allocation the duplicates were supposed to save.
	now := time.Now()
	slowIdx, slowWait := -1, time.Duration(0)
	for i := range items {
		s.store.Seal(items[i].key, tstamp.End(e))
		if s.journal != nil && !items[i].installed.IsZero() {
			if w := now.Sub(items[i].installed); slowIdx < 0 || w > slowWait {
				slowIdx, slowWait = i, w
			}
		}
		items[i].ready = now
	}
	s.journal.SealDone(uint64(e), time.Now(), len(items))
	if slowIdx >= 0 {
		// The functor that waited longest between install and commit: the
		// journal's pointer at what dragged the epoch (a stuck dependent
		// txn, a hot key, a lagging owner).
		it := items[slowIdx]
		ftype := ""
		if it.rec != nil && it.rec.Functor != nil {
			ftype = it.rec.Functor.Type.String()
		}
		s.journal.Slowest(uint64(e), string(it.key), ftype, slowWait, uint64(it.sc.Trace))
	}
	if s.durability != nil {
		dctx, dspan := s.tr.Start(ctx, "wal.commit")
		dstart := time.Now()
		if err := s.durability.LogEpochCommitted(dctx, e); err != nil {
			// Durability of the boundary marker failed; the epoch's data
			// entries are still logged, and recovery treats the epoch as
			// uncommitted, which is the correct conservative outcome.
			_ = err
		}
		if s.journal != nil {
			total := time.Since(dstart)
			var fsync time.Duration
			if src, ok := s.durability.(interface{ LastSyncDuration() (time.Duration, bool) }); ok {
				if d, ok := src.LastSyncDuration(); ok {
					fsync = d
				}
			}
			s.journal.Durable(uint64(e), total, fsync)
		}
		dspan.End()
	}
	// Advance visibility to Start(e+1) — after the seal and after the
	// durable marker, so observable implies recoverable: a crash right
	// after a reader saw epoch e can never roll e back (§III-B's atomic
	// visibility extended to the durability boundary).
	bound := uint64(tstamp.End(e))
	for {
		cur := s.visible.Load()
		if cur >= bound {
			break
		}
		if s.visible.CompareAndSwap(cur, bound) {
			s.visibleMu.Lock()
			close(s.visibleCh)
			s.visibleCh = make(chan struct{})
			s.visibleMu.Unlock()
			break
		}
	}
	if s.journal != nil {
		// Finalize after visibility published, stamping the interference
		// markers sampled at this instant: migration range seals in force
		// and whether a stall episode is open.
		s.moveMu.RLock()
		migSeals := len(s.sealedRanges)
		s.moveMu.RUnlock()
		s.journal.Visible(uint64(e), time.Now(), migSeals, s.wd.Active())
	}
	s.proc.enqueue(items)
	if items != nil {
		// enqueue copied the items into the shard queues; recycle the
		// epoch buffer for bufferWork's next epoch.
		clear(items)
		items = items[:0]
		workItemsPool.Put(&items)
	}
	s.evictPushCache(e)
	s.evictAbortStash(e)
	s.maybeCompact(e)
}

// evictAbortStash drops stashed forwarded aborts whose epoch has committed:
// by then any migration import of that epoch has run (imports happen inside
// the epoch barrier, before Committed), so an entry still stashed was for a
// record this server never received — the abort already took effect at the
// exporting owner before the chain was streamed.
func (s *Server) evictAbortStash(e tstamp.Epoch) {
	s.stashMu.Lock()
	for ts := range s.abortStash {
		if ts.Epoch() <= e {
			delete(s.abortStash, ts)
		}
	}
	s.stashMu.Unlock()
}

// visibleBound returns the exclusive upper bound of readable versions.
func (s *Server) visibleBound() tstamp.Timestamp {
	return tstamp.Timestamp(s.visible.Load())
}

// waitVisible blocks until version ts is readable (its epoch committed).
func (s *Server) waitVisible(ctx context.Context, ts tstamp.Timestamp) error {
	if ts < s.visibleBound() {
		return nil
	}
	// Only an actual block opens a span, so already-visible reads stay free
	// and traces show the true visibility-wait stage (§III-B: transactions
	// of epoch e become readable once e commits).
	_, span := s.tr.Start(ctx, "visibility.wait")
	defer span.End()
	for {
		if ts < s.visibleBound() {
			return nil
		}
		s.visibleMu.Lock()
		ch := s.visibleCh
		s.visibleMu.Unlock()
		if ts < s.visibleBound() {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// beginTxn reserves a slot in the epoch the generator currently targets and
// returns the epoch plus a completion callback. txns is the number of
// transactions the reservation covers (a batch reserves once), counted
// into the per-epoch transaction histogram. It retries when an epoch
// switch races with the reservation, so an install never proceeds in an
// epoch whose revocation already acked.
func (s *Server) beginTxn(txns int) (tstamp.Epoch, func(), error) {
	for attempt := 0; attempt < 1024; attempt++ {
		e := s.gen.Epoch()
		if e == 0 {
			return 0, nil, fmt.Errorf("core: cluster not started")
		}
		s.mu.Lock()
		wg := s.inflight[e]
		if wg == nil {
			wg = &sync.WaitGroup{}
			s.inflight[e] = wg
		}
		wg.Add(1)
		s.epochTxns[e] += uint64(txns)
		s.mu.Unlock()
		if s.gen.Epoch() == e {
			return e, wg.Done, nil
		}
		// The epoch moved between reservation and check; retry in the
		// new epoch.
		s.mu.Lock()
		s.epochTxns[e] -= uint64(txns)
		s.mu.Unlock()
		wg.Done()
	}
	return 0, nil, fmt.Errorf("core: could not reserve an epoch slot")
}

// --- push cache -----------------------------------------------------------

func (s *Server) pushValue(version tstamp.Timestamp, key kv.Key, r functor.Read) {
	s.pushMu.Lock()
	s.pushCache[pushKey{version: version, key: key}] = r
	s.pushMu.Unlock()
}

func (s *Server) takePushed(version tstamp.Timestamp, key kv.Key) (functor.Read, bool) {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	r, ok := s.pushCache[pushKey{version: version, key: key}]
	if ok {
		delete(s.pushCache, pushKey{version: version, key: key})
	}
	return r, ok
}

// evictPushCache drops pushed values older than the previous epoch; their
// functors have long been computable and any leftover entries are garbage.
func (s *Server) evictPushCache(committed tstamp.Epoch) {
	if committed < 2 {
		return
	}
	cutoff := tstamp.Start(committed - 1)
	s.pushMu.Lock()
	for pk := range s.pushCache {
		if pk.version < cutoff {
			delete(s.pushCache, pk)
		}
	}
	s.pushMu.Unlock()
}

// notifyComputed wakes WaitComputed waiters after functors reach final
// states. The broadcast rotates the channel, one allocation per event, so
// it only fires when someone is registered: a waiter that registers after
// the zero-waiters check re-reads the resolution before blocking and finds
// it installed (both sides use sequentially consistent atomics).
func (s *Server) notifyComputed() {
	if s.computedWaiters.Load() == 0 {
		return
	}
	s.computedMu.Lock()
	close(s.computedCh)
	s.computedCh = make(chan struct{})
	s.computedMu.Unlock()
}

// waitRecordFinal blocks until the record reaches a final state.
func (s *Server) waitRecordFinal(ctx context.Context, rec *mvstore.Record) (*functor.Resolution, error) {
	if res := rec.Resolution(); res != nil {
		return res, nil
	}
	s.computedWaiters.Add(1)
	defer s.computedWaiters.Add(-1)
	for {
		if res := rec.Resolution(); res != nil {
			return res, nil
		}
		s.computedMu.Lock()
		ch := s.computedCh
		s.computedMu.Unlock()
		if res := rec.Resolution(); res != nil {
			return res, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
