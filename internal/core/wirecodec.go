// Binary wire codecs for the hot-path messages (paper §V-A2). Every
// message that rides the per-epoch RPC fan-out — installs, read/ensure
// batches and their responses, aborts, pushes, deferred-write delivery,
// epoch control, and watchdog pings — gets an explicit append/decode
// pair registered with internal/wire, replacing reflective gob. Cold
// messages (scans, client protocol, migration control) keep riding the
// gob escape hatch inside the binary envelope; they are rare enough that
// a hand codec buys nothing.
//
// Layout conventions: uvarint for counts, timestamps, and epochs;
// length-prefixed bytes/strings; one presence byte ahead of nullable
// pointers. Functors and resolutions reuse the exact layout of
// internal/functor/codec.go (the WAL encoding), so the wire and the log
// agree on the one format that matters.
//
// The decode*Into functions decode into caller-owned structs, reusing
// slice capacity and aliasing the frame buffer for keys, values, and
// handler names. Decoding into a reused message is therefore
// allocation-free steady-state (CI-guarded by BenchmarkWireDecode*);
// the registry wrappers allocate exactly one fresh message value per
// frame, whose fields alias the frame buffer that the transport hands
// over with it.
package core

import (
	"fmt"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
	"alohadb/internal/wire"
)

// Wire kinds of the hot messages. The byte values are part of the wire
// format: never renumber, only append.
const (
	wireKindInstall wire.Kind = iota + 1
	wireKindInstallResp
	wireKindAbort
	wireKindAbortBatch
	wireKindRead
	wireKindReadResp
	wireKindReadBatch
	wireKindReadBatchResp
	wireKindPush
	wireKindEnsure
	wireKindEnsureResp
	wireKindEnsureUpTo
	wireKindEnsureUpToResp
	wireKindEnsureBatch
	wireKindEnsureBatchResp
	wireKindApplyDeferred
	wireKindWaitComputed
	wireKindWaitComputedResp
	wireKindGrant
	wireKindRevoke
	wireKindRevokeAck
	wireKindCommitted
	wireKindPing
	wireKindPong
)

// sliceFor returns s resized to n elements, reusing capacity when it can.
func sliceFor[T any](s []T, n int) []T {
	if n == 0 {
		return s[:0]
	}
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func appendKeySet(dst []byte, keys []kv.Key) []byte {
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendString(dst, string(k))
	}
	return dst
}

func decodeKeySetInto(s []kv.Key, r *wire.Reader) []kv.Key {
	n := r.Count(1)
	if n == 0 {
		if s == nil {
			return nil
		}
		return s[:0]
	}
	s = sliceFor(s, n)
	for i := range s {
		s[i] = kv.Key(r.String())
	}
	return s
}

// appendUvarint mirrors binary.AppendUvarint without importing it twice.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// --- functor / resolution (same layout as internal/functor/codec.go) ---

func appendFunctorPtr(dst []byte, f *functor.Functor) []byte {
	if f == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return functor.AppendFunctor(dst, f)
}

// decodeFunctorPtrInto decodes a presence-prefixed functor into *fp,
// reusing the pointed-to struct's slice capacity. Keys, handler, and arg
// alias the frame buffer.
func decodeFunctorPtrInto(fp **functor.Functor, r *wire.Reader) {
	if !r.Bool() {
		*fp = nil
		return
	}
	if *fp == nil {
		*fp = new(functor.Functor)
	}
	f := *fp
	f.Type = functor.Type(r.Byte())
	if r.Err() == nil && (f.Type < functor.TypeValue || f.Type > functor.TypeDepMarker) {
		r.Fail(fmt.Errorf("functor: invalid f-type %d", f.Type))
		return
	}
	f.Handler = r.String()
	f.Arg = r.Bytes()
	f.ReadSet = decodeKeySetInto(f.ReadSet, r)
	f.Recipients = decodeKeySetInto(f.Recipients, r)
	f.DependentKeys = decodeKeySetInto(f.DependentKeys, r)
}

func appendResolutionPtr(dst []byte, res *functor.Resolution) []byte {
	if res == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return functor.AppendResolution(dst, res)
}

func decodeResolutionPtrInto(rp **functor.Resolution, r *wire.Reader) {
	if !r.Bool() {
		*rp = nil
		return
	}
	if *rp == nil {
		*rp = new(functor.Resolution)
	}
	res := *rp
	res.Kind = functor.ResolutionKind(r.Byte())
	if r.Err() == nil && (res.Kind < functor.Resolved || res.Kind > functor.ResolvedSkipped) {
		r.Fail(fmt.Errorf("functor: invalid resolution kind %d", res.Kind))
		return
	}
	res.Value = r.Bytes()
	res.Reason = r.String()
	res.DependentWrites = decodeDependentWritesInto(res.DependentWrites, r)
}

func appendDependentWrites(dst []byte, ws []functor.DependentWrite) []byte {
	dst = appendUvarint(dst, uint64(len(ws)))
	for _, w := range ws {
		dst = wire.AppendString(dst, string(w.Key))
		dst = wire.AppendBytes(dst, w.Value)
		dst = wire.AppendBool(dst, w.Delete)
	}
	return dst
}

func decodeDependentWritesInto(s []functor.DependentWrite, r *wire.Reader) []functor.DependentWrite {
	n := r.Count(3)
	if n == 0 {
		if s == nil {
			return nil
		}
		return s[:0]
	}
	s = sliceFor(s, n)
	for i := range s {
		s[i].Key = kv.Key(r.String())
		s[i].Value = r.Bytes()
		s[i].Delete = r.Bool()
	}
	return s
}

// --- placement maps (rare on the wire: only during migration races) ---

func appendPlacementPtr(dst []byte, m *placement.Map) []byte {
	if m == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendUvarint(dst, uint64(m.Gen))
	dst = appendUvarint(dst, uint64(len(m.Moves)))
	for _, mv := range m.Moves {
		dst = wire.AppendString(dst, string(mv.Range.Start))
		dst = wire.AppendString(dst, string(mv.Range.End))
		dst = appendUvarint(dst, uint64(mv.To))
		dst = appendUvarint(dst, uint64(mv.From))
	}
	return dst
}

func decodePlacementPtr(r *wire.Reader) *placement.Map {
	if !r.Bool() {
		return nil
	}
	m := &placement.Map{Gen: placement.Generation(r.Uvarint())}
	n := r.Count(4)
	if n > 0 {
		m.Moves = make([]placement.Move, n)
		for i := range m.Moves {
			m.Moves[i].Range.Start = kv.Key(r.String())
			m.Moves[i].Range.End = kv.Key(r.String())
			m.Moves[i].To = transport.NodeID(r.Uvarint())
			m.Moves[i].From = tstamp.Epoch(r.Uvarint())
		}
	}
	if r.Err() != nil {
		return nil
	}
	return m
}

// --- MsgInstall / MsgInstallResp ---

func appendMsgInstall(dst []byte, m *MsgInstall) []byte {
	dst = appendUvarint(dst, uint64(len(m.Txns)))
	for i := range m.Txns {
		t := &m.Txns[i]
		dst = appendUvarint(dst, uint64(t.Version))
		dst = appendUvarint(dst, uint64(len(t.Writes)))
		for j := range t.Writes {
			dst = wire.AppendString(dst, string(t.Writes[j].Key))
			dst = appendFunctorPtr(dst, t.Writes[j].Functor)
		}
		dst = appendKeySet(dst, t.Requires)
	}
	return appendPlacementPtr(dst, m.Placement)
}

func decodeMsgInstallInto(m *MsgInstall, r *wire.Reader) {
	n := r.Count(2)
	m.Txns = sliceFor(m.Txns, n)
	for i := range m.Txns {
		t := &m.Txns[i]
		t.Version = tstamp.Timestamp(r.Uvarint())
		nw := r.Count(3)
		t.Writes = sliceFor(t.Writes, nw)
		for j := range t.Writes {
			t.Writes[j].Key = kv.Key(r.String())
			decodeFunctorPtrInto(&t.Writes[j].Functor, r)
		}
		t.Requires = decodeKeySetInto(t.Requires, r)
	}
	m.Placement = decodePlacementPtr(r)
}

func appendMsgInstallResp(dst []byte, m *MsgInstallResp) []byte {
	dst = appendUvarint(dst, uint64(len(m.Results)))
	for i := range m.Results {
		res := &m.Results[i]
		var b byte
		if res.OK {
			b |= 1
		}
		if res.WrongOwner {
			b |= 2
		}
		dst = append(dst, b)
		dst = wire.AppendString(dst, res.Err)
	}
	return appendPlacementPtr(dst, m.Placement)
}

func decodeMsgInstallRespInto(m *MsgInstallResp, r *wire.Reader) {
	n := r.Count(2)
	m.Results = sliceFor(m.Results, n)
	for i := range m.Results {
		b := r.Byte()
		m.Results[i].OK = b&1 != 0
		m.Results[i].WrongOwner = b&2 != 0
		m.Results[i].Err = r.String()
	}
	m.Placement = decodePlacementPtr(r)
}

// --- MsgAbort / MsgAbortBatch ---

func appendMsgAbort(dst []byte, m *MsgAbort) []byte {
	dst = appendUvarint(dst, uint64(m.Version))
	dst = appendKeySet(dst, m.Keys)
	return wire.AppendBool(dst, m.Fwd)
}

func decodeMsgAbortInto(m *MsgAbort, r *wire.Reader) {
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Keys = decodeKeySetInto(m.Keys, r)
	m.Fwd = r.Bool()
}

func appendMsgAbortBatch(dst []byte, m *MsgAbortBatch) []byte {
	dst = appendUvarint(dst, uint64(len(m.Aborts)))
	for i := range m.Aborts {
		dst = appendMsgAbort(dst, &m.Aborts[i])
	}
	return dst
}

func decodeMsgAbortBatchInto(m *MsgAbortBatch, r *wire.Reader) {
	n := r.Count(3)
	m.Aborts = sliceFor(m.Aborts, n)
	for i := range m.Aborts {
		decodeMsgAbortInto(&m.Aborts[i], r)
	}
}

// --- MsgRead family ---

func appendMsgRead(dst []byte, m *MsgRead) []byte {
	dst = wire.AppendString(dst, string(m.Key))
	dst = appendUvarint(dst, uint64(m.Version))
	return wire.AppendBool(dst, m.Fwd)
}

func decodeMsgReadInto(m *MsgRead, r *wire.Reader) {
	m.Key = kv.Key(r.String())
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Fwd = r.Bool()
}

func appendMsgReadResp(dst []byte, m *MsgReadResp) []byte {
	dst = wire.AppendBytes(dst, m.Value)
	dst = wire.AppendBool(dst, m.Found)
	return appendUvarint(dst, uint64(m.Version))
}

func decodeMsgReadRespInto(m *MsgReadResp, r *wire.Reader) {
	m.Value = r.Bytes()
	m.Found = r.Bool()
	m.Version = tstamp.Timestamp(r.Uvarint())
}

func appendMsgReadBatch(dst []byte, m *MsgReadBatch) []byte {
	dst = appendUvarint(dst, uint64(len(m.Reads)))
	for i := range m.Reads {
		dst = appendMsgRead(dst, &m.Reads[i])
	}
	return dst
}

func decodeMsgReadBatchInto(m *MsgReadBatch, r *wire.Reader) {
	n := r.Count(3)
	m.Reads = sliceFor(m.Reads, n)
	for i := range m.Reads {
		decodeMsgReadInto(&m.Reads[i], r)
	}
}

func appendMsgReadBatchResp(dst []byte, m *MsgReadBatchResp) []byte {
	dst = appendUvarint(dst, uint64(len(m.Results)))
	for i := range m.Results {
		dst = appendMsgReadResp(dst, &m.Results[i].Resp)
		dst = wire.AppendString(dst, m.Results[i].Err)
	}
	return dst
}

func decodeMsgReadBatchRespInto(m *MsgReadBatchResp, r *wire.Reader) {
	n := r.Count(4)
	m.Results = sliceFor(m.Results, n)
	for i := range m.Results {
		decodeMsgReadRespInto(&m.Results[i].Resp, r)
		m.Results[i].Err = r.String()
	}
}

// --- MsgPush ---

func appendMsgPush(dst []byte, m *MsgPush) []byte {
	dst = appendUvarint(dst, uint64(m.Version))
	dst = wire.AppendString(dst, string(m.Key))
	dst = wire.AppendBytes(dst, m.Value)
	dst = wire.AppendBool(dst, m.Found)
	return appendUvarint(dst, uint64(m.ValueVersion))
}

func decodeMsgPushInto(m *MsgPush, r *wire.Reader) {
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Key = kv.Key(r.String())
	m.Value = r.Bytes()
	m.Found = r.Bool()
	m.ValueVersion = tstamp.Timestamp(r.Uvarint())
}

// --- MsgEnsure family ---

func appendMsgEnsure(dst []byte, m *MsgEnsure) []byte {
	dst = wire.AppendString(dst, string(m.Key))
	dst = appendUvarint(dst, uint64(m.Version))
	return wire.AppendBool(dst, m.Fwd)
}

func decodeMsgEnsureInto(m *MsgEnsure, r *wire.Reader) {
	m.Key = kv.Key(r.String())
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Fwd = r.Bool()
}

func appendMsgEnsureResp(dst []byte, m *MsgEnsureResp) []byte {
	return appendResolutionPtr(dst, m.Resolution)
}

func decodeMsgEnsureRespInto(m *MsgEnsureResp, r *wire.Reader) {
	decodeResolutionPtrInto(&m.Resolution, r)
}

func appendMsgEnsureUpTo(dst []byte, m *MsgEnsureUpTo) []byte {
	dst = wire.AppendString(dst, string(m.Key))
	dst = appendUvarint(dst, uint64(m.Version))
	return wire.AppendBool(dst, m.Fwd)
}

func decodeMsgEnsureUpToInto(m *MsgEnsureUpTo, r *wire.Reader) {
	m.Key = kv.Key(r.String())
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Fwd = r.Bool()
}

func appendEnsureReq(dst []byte, m *EnsureReq) []byte {
	dst = wire.AppendString(dst, string(m.Key))
	dst = appendUvarint(dst, uint64(m.Version))
	var b byte
	if m.UpTo {
		b |= 1
	}
	if m.Fwd {
		b |= 2
	}
	return append(dst, b)
}

func decodeEnsureReqInto(m *EnsureReq, r *wire.Reader) {
	m.Key = kv.Key(r.String())
	m.Version = tstamp.Timestamp(r.Uvarint())
	b := r.Byte()
	m.UpTo = b&1 != 0
	m.Fwd = b&2 != 0
}

func appendMsgEnsureBatch(dst []byte, m *MsgEnsureBatch) []byte {
	dst = appendUvarint(dst, uint64(len(m.Reqs)))
	for i := range m.Reqs {
		dst = appendEnsureReq(dst, &m.Reqs[i])
	}
	return dst
}

func decodeMsgEnsureBatchInto(m *MsgEnsureBatch, r *wire.Reader) {
	n := r.Count(3)
	m.Reqs = sliceFor(m.Reqs, n)
	for i := range m.Reqs {
		decodeEnsureReqInto(&m.Reqs[i], r)
	}
}

func appendMsgEnsureBatchResp(dst []byte, m *MsgEnsureBatchResp) []byte {
	dst = appendUvarint(dst, uint64(len(m.Results)))
	for i := range m.Results {
		dst = appendResolutionPtr(dst, m.Results[i].Resolution)
		dst = wire.AppendString(dst, m.Results[i].Err)
	}
	return dst
}

func decodeMsgEnsureBatchRespInto(m *MsgEnsureBatchResp, r *wire.Reader) {
	n := r.Count(2)
	m.Results = sliceFor(m.Results, n)
	for i := range m.Results {
		decodeResolutionPtrInto(&m.Results[i].Resolution, r)
		m.Results[i].Err = r.String()
	}
}

// --- MsgApplyDeferred ---

func appendMsgApplyDeferred(dst []byte, m *MsgApplyDeferred) []byte {
	dst = appendUvarint(dst, uint64(m.Version))
	dst = appendDependentWrites(dst, m.Writes)
	dst = appendKeySet(dst, m.Dissolve)
	var b byte
	if m.Aborted {
		b |= 1
	}
	if m.Fwd {
		b |= 2
	}
	return append(dst, b)
}

func decodeMsgApplyDeferredInto(m *MsgApplyDeferred, r *wire.Reader) {
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Writes = decodeDependentWritesInto(m.Writes, r)
	m.Dissolve = decodeKeySetInto(m.Dissolve, r)
	b := r.Byte()
	m.Aborted = b&1 != 0
	m.Fwd = b&2 != 0
}

// --- MsgWaitComputed ---

func appendMsgWaitComputed(dst []byte, m *MsgWaitComputed) []byte {
	dst = wire.AppendString(dst, string(m.Key))
	dst = appendUvarint(dst, uint64(m.Version))
	return wire.AppendBool(dst, m.Fwd)
}

func decodeMsgWaitComputedInto(m *MsgWaitComputed, r *wire.Reader) {
	m.Key = kv.Key(r.String())
	m.Version = tstamp.Timestamp(r.Uvarint())
	m.Fwd = r.Bool()
}

func appendMsgWaitComputedResp(dst []byte, m *MsgWaitComputedResp) []byte {
	dst = append(dst, byte(m.Kind))
	return wire.AppendString(dst, m.Reason)
}

func decodeMsgWaitComputedRespInto(m *MsgWaitComputedResp, r *wire.Reader) {
	m.Kind = functor.ResolutionKind(r.Byte())
	m.Reason = r.String()
}

// --- epoch control + ping ---

func appendEpoch(dst []byte, e tstamp.Epoch) []byte { return appendUvarint(dst, uint64(e)) }

func appendMsgPong(dst []byte, m *MsgPong) []byte {
	dst = appendUvarint(dst, uint64(m.Node))
	dst = appendUvarint(dst, m.CommittedEpoch)
	return appendUvarint(dst, m.CurrentEpoch)
}

func decodeMsgPongInto(m *MsgPong, r *wire.Reader) {
	m.Node = int(r.Uvarint())
	m.CommittedEpoch = r.Uvarint()
	m.CurrentEpoch = r.Uvarint()
}

// registerWireCodecs installs the binary codec of every hot message.
// Helper generics keep each registration to one line while preserving
// the concrete-value round trip handlers rely on for type switches.
func registerWireCodecs() {
	codec := func(kind wire.Kind, enc wire.AppendFunc, dec wire.DecodeFunc, proto any) {
		wire.Register(kind, proto, enc, dec)
	}

	codec(wireKindInstall,
		func(dst []byte, msg any) []byte { m := msg.(MsgInstall); return appendMsgInstall(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgInstall
			r := wire.NewReader(b)
			decodeMsgInstallInto(&m, &r)
			return m, finish(&r)
		}, MsgInstall{})
	codec(wireKindInstallResp,
		func(dst []byte, msg any) []byte { m := msg.(MsgInstallResp); return appendMsgInstallResp(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgInstallResp
			r := wire.NewReader(b)
			decodeMsgInstallRespInto(&m, &r)
			return m, finish(&r)
		}, MsgInstallResp{})
	codec(wireKindAbort,
		func(dst []byte, msg any) []byte { m := msg.(MsgAbort); return appendMsgAbort(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgAbort
			r := wire.NewReader(b)
			decodeMsgAbortInto(&m, &r)
			return m, finish(&r)
		}, MsgAbort{})
	codec(wireKindAbortBatch,
		func(dst []byte, msg any) []byte { m := msg.(MsgAbortBatch); return appendMsgAbortBatch(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgAbortBatch
			r := wire.NewReader(b)
			decodeMsgAbortBatchInto(&m, &r)
			return m, finish(&r)
		}, MsgAbortBatch{})
	codec(wireKindRead,
		func(dst []byte, msg any) []byte { m := msg.(MsgRead); return appendMsgRead(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgRead
			r := wire.NewReader(b)
			decodeMsgReadInto(&m, &r)
			return m, finish(&r)
		}, MsgRead{})
	codec(wireKindReadResp,
		func(dst []byte, msg any) []byte { m := msg.(MsgReadResp); return appendMsgReadResp(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgReadResp
			r := wire.NewReader(b)
			decodeMsgReadRespInto(&m, &r)
			return m, finish(&r)
		}, MsgReadResp{})
	codec(wireKindReadBatch,
		func(dst []byte, msg any) []byte { m := msg.(MsgReadBatch); return appendMsgReadBatch(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgReadBatch
			r := wire.NewReader(b)
			decodeMsgReadBatchInto(&m, &r)
			return m, finish(&r)
		}, MsgReadBatch{})
	codec(wireKindReadBatchResp,
		func(dst []byte, msg any) []byte {
			m := msg.(MsgReadBatchResp)
			return appendMsgReadBatchResp(dst, &m)
		},
		func(b []byte) (any, error) {
			var m MsgReadBatchResp
			r := wire.NewReader(b)
			decodeMsgReadBatchRespInto(&m, &r)
			return m, finish(&r)
		}, MsgReadBatchResp{})
	codec(wireKindPush,
		func(dst []byte, msg any) []byte { m := msg.(MsgPush); return appendMsgPush(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgPush
			r := wire.NewReader(b)
			decodeMsgPushInto(&m, &r)
			return m, finish(&r)
		}, MsgPush{})
	codec(wireKindEnsure,
		func(dst []byte, msg any) []byte { m := msg.(MsgEnsure); return appendMsgEnsure(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgEnsure
			r := wire.NewReader(b)
			decodeMsgEnsureInto(&m, &r)
			return m, finish(&r)
		}, MsgEnsure{})
	codec(wireKindEnsureResp,
		func(dst []byte, msg any) []byte { m := msg.(MsgEnsureResp); return appendMsgEnsureResp(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgEnsureResp
			r := wire.NewReader(b)
			decodeMsgEnsureRespInto(&m, &r)
			return m, finish(&r)
		}, MsgEnsureResp{})
	codec(wireKindEnsureUpTo,
		func(dst []byte, msg any) []byte { m := msg.(MsgEnsureUpTo); return appendMsgEnsureUpTo(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgEnsureUpTo
			r := wire.NewReader(b)
			decodeMsgEnsureUpToInto(&m, &r)
			return m, finish(&r)
		}, MsgEnsureUpTo{})
	codec(wireKindEnsureUpToResp,
		func(dst []byte, msg any) []byte { return dst },
		func(b []byte) (any, error) {
			if len(b) != 0 {
				return nil, fmt.Errorf("core: MsgEnsureUpToResp carries %d stray bytes", len(b))
			}
			return MsgEnsureUpToResp{}, nil
		}, MsgEnsureUpToResp{})
	codec(wireKindEnsureBatch,
		func(dst []byte, msg any) []byte { m := msg.(MsgEnsureBatch); return appendMsgEnsureBatch(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgEnsureBatch
			r := wire.NewReader(b)
			decodeMsgEnsureBatchInto(&m, &r)
			return m, finish(&r)
		}, MsgEnsureBatch{})
	codec(wireKindEnsureBatchResp,
		func(dst []byte, msg any) []byte {
			m := msg.(MsgEnsureBatchResp)
			return appendMsgEnsureBatchResp(dst, &m)
		},
		func(b []byte) (any, error) {
			var m MsgEnsureBatchResp
			r := wire.NewReader(b)
			decodeMsgEnsureBatchRespInto(&m, &r)
			return m, finish(&r)
		}, MsgEnsureBatchResp{})
	codec(wireKindApplyDeferred,
		func(dst []byte, msg any) []byte {
			m := msg.(MsgApplyDeferred)
			return appendMsgApplyDeferred(dst, &m)
		},
		func(b []byte) (any, error) {
			var m MsgApplyDeferred
			r := wire.NewReader(b)
			decodeMsgApplyDeferredInto(&m, &r)
			return m, finish(&r)
		}, MsgApplyDeferred{})
	codec(wireKindWaitComputed,
		func(dst []byte, msg any) []byte {
			m := msg.(MsgWaitComputed)
			return appendMsgWaitComputed(dst, &m)
		},
		func(b []byte) (any, error) {
			var m MsgWaitComputed
			r := wire.NewReader(b)
			decodeMsgWaitComputedInto(&m, &r)
			return m, finish(&r)
		}, MsgWaitComputed{})
	codec(wireKindWaitComputedResp,
		func(dst []byte, msg any) []byte {
			m := msg.(MsgWaitComputedResp)
			return appendMsgWaitComputedResp(dst, &m)
		},
		func(b []byte) (any, error) {
			var m MsgWaitComputedResp
			r := wire.NewReader(b)
			decodeMsgWaitComputedRespInto(&m, &r)
			return m, finish(&r)
		}, MsgWaitComputedResp{})
	codec(wireKindGrant,
		func(dst []byte, msg any) []byte { return appendEpoch(dst, msg.(MsgGrant).E) },
		func(b []byte) (any, error) {
			r := wire.NewReader(b)
			m := MsgGrant{E: tstamp.Epoch(r.Uvarint())}
			return m, finish(&r)
		}, MsgGrant{})
	codec(wireKindRevoke,
		func(dst []byte, msg any) []byte { return appendEpoch(dst, msg.(MsgRevoke).E) },
		func(b []byte) (any, error) {
			r := wire.NewReader(b)
			m := MsgRevoke{E: tstamp.Epoch(r.Uvarint())}
			return m, finish(&r)
		}, MsgRevoke{})
	codec(wireKindRevokeAck,
		func(dst []byte, msg any) []byte { return appendEpoch(dst, msg.(MsgRevokeAck).E) },
		func(b []byte) (any, error) {
			r := wire.NewReader(b)
			m := MsgRevokeAck{E: tstamp.Epoch(r.Uvarint())}
			return m, finish(&r)
		}, MsgRevokeAck{})
	codec(wireKindCommitted,
		func(dst []byte, msg any) []byte { return appendEpoch(dst, msg.(MsgCommitted).E) },
		func(b []byte) (any, error) {
			r := wire.NewReader(b)
			m := MsgCommitted{E: tstamp.Epoch(r.Uvarint())}
			return m, finish(&r)
		}, MsgCommitted{})
	codec(wireKindPing,
		func(dst []byte, msg any) []byte { return dst },
		func(b []byte) (any, error) {
			if len(b) != 0 {
				return nil, fmt.Errorf("core: MsgPing carries %d stray bytes", len(b))
			}
			return MsgPing{}, nil
		}, MsgPing{})
	codec(wireKindPong,
		func(dst []byte, msg any) []byte { m := msg.(MsgPong); return appendMsgPong(dst, &m) },
		func(b []byte) (any, error) {
			var m MsgPong
			r := wire.NewReader(b)
			decodeMsgPongInto(&m, &r)
			return m, finish(&r)
		}, MsgPong{})
}

// finish validates that a decoder consumed its payload exactly.
func finish(r *wire.Reader) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("core: %d stray bytes after message", n)
	}
	return nil
}
