package core

import (
	"context"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/placement"
	"alohadb/internal/tstamp"
)

// keyOwnedBy finds a key with the given prefix that hash-partitions to the
// wanted server.
func keyOwnedBy(t *testing.T, want, servers int, prefix string) kv.Key {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		k := kv.Key(prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)))
		if kv.PartitionOf(k, servers) == want {
			return k
		}
	}
	t.Fatalf("no key with prefix %q owned by server %d", prefix, want)
	return ""
}

func TestLiveMigrationMovesKey(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	k := keyOwnedBy(t, 0, 2, "mig-")
	if err := c.Load([]kv.Pair{{Key: k, Value: kv.Value("v0")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, c, 1, Txn{Writes: []Write{{Key: k, Functor: functor.Value(kv.Value("v1"))}}})
	if aborted, reason := h.Installed(); aborted {
		t.Fatalf("pre-move install aborted: %s", reason)
	}
	mustAdvance(t, c)

	ticket, err := c.Rebalancer().MoveKey(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustAdvance(t, c) // barrier executes the move
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	handoff, err := ticket.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if handoff == 0 {
		t.Fatal("handoff epoch not set")
	}

	// Routing converged everywhere: every server and the cluster table now
	// name server 1 the owner, and the old epoch still routes to server 0.
	for i := 0; i < c.NumServers(); i++ {
		if got := c.Server(i).Owner(k); got != 1 {
			t.Errorf("server %d routes %q to %d, want 1", i, k, got)
		}
		if gen := c.Server(i).PlacementTable().Generation(); gen != 1 {
			t.Errorf("server %d at generation %d, want 1", i, gen)
		}
	}
	if got := int(c.PlacementTable().Route(k, handoff)); got != 0 {
		t.Errorf("epoch-%d route = %d, want old owner 0", handoff, got)
	}

	// The chain migrated: the new owner holds the pre-move versions.
	if recs, _, ok := c.Server(1).Store().ExportKey(k); !ok || len(recs) != 2 {
		t.Fatalf("server 1 has %d records of %q (ok=%v), want 2", len(recs), k, ok)
	}

	// Post-move writes land at the new owner and reads chase the move.
	h = mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: k, Functor: functor.Value(kv.Value("v2"))}}})
	if aborted, reason := h.Installed(); aborted {
		t.Fatalf("post-move install aborted: %s", reason)
	}
	mustAdvance(t, c)
	if recs, _, ok := c.Server(1).Store().ExportKey(k); !ok || len(recs) != 3 {
		t.Fatalf("server 1 has %d records of %q (ok=%v), want 3 after post-move write", len(recs), k, ok)
	}
	v, found, err := c.Server(0).GetCommitted(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "v2" {
		t.Fatalf("read after move = %q found=%v, want v2", v, found)
	}

	// The old replica retires once the handoff settles and records final.
	c.DrainProcessors()
	for i := 0; i < retireGrace+retireAttempts; i++ {
		mustAdvance(t, c)
		c.DrainProcessors()
	}
	if _, _, ok := c.Server(0).Store().ExportKey(k); ok {
		t.Error("old owner still holds the migrated chain after retirement")
	}
}

func TestStaleGenerationInstallRejectedAndRetried(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	k := keyOwnedBy(t, 1, 2, "stale-")
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Server 1 learns a newer map (the key moved to server 0) that the
	// coordinator on server 0 has not seen: its next install routes to
	// server 1 under the stale generation.
	newMap := (*placement.Map)(nil).Next(placement.Move{Range: placement.KeyRange(k), To: 0, From: 1})
	if !c.Server(1).PlacementTable().Install(newMap) {
		t.Fatal("map install rejected")
	}

	h := mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: k, Functor: functor.Value(kv.Value("v"))}}})
	if aborted, reason := h.Installed(); aborted {
		t.Fatalf("stale-generation install aborted instead of retried: %s", reason)
	}
	// The retry adopted the rejecting server's map and landed the write at
	// the owner the new map names, with the same timestamp.
	if gen := c.Server(0).PlacementTable().Generation(); gen != 1 {
		t.Errorf("coordinator at generation %d after retry, want 1", gen)
	}
	recs, _, ok := c.Server(0).Store().ExportKey(k)
	if !ok || len(recs) != 1 {
		t.Fatalf("new owner has %d records (ok=%v), want 1", len(recs), ok)
	}
	if recs[0].Version != h.Version() {
		t.Errorf("retried install changed the timestamp: %v != %v", recs[0].Version, h.Version())
	}
	if recs2, _, ok2 := c.Server(1).Store().ExportKey(k); ok2 && len(recs2) > 0 {
		t.Errorf("rejecting server installed %d records anyway", len(recs2))
	}
	mustAdvance(t, c)
	v, found, err := c.Server(1).GetCommitted(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "v" {
		t.Fatalf("read after retried install = %q found=%v, want v", v, found)
	}
}

func TestSealedRangeRejectsInstall(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	k := keyOwnedBy(t, 0, 2, "seal-")
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	s0 := c.Server(0)
	s0.handleRangeSeal(MsgRangeSeal{Ranges: []placement.Range{placement.KeyRange(k)}})
	ts, err := s0.gen.Next()
	if err != nil {
		t.Fatal(err)
	}
	resp := s0.handleInstall(context.Background(), MsgInstall{Txns: []InstallTxn{{
		Version: ts,
		Writes:  []Write{{Key: k, Functor: functor.Value(kv.Value("x"))}},
	}}})
	if len(resp.Results) != 1 || !resp.Results[0].WrongOwner {
		t.Fatalf("sealed-range install = %+v, want WrongOwner", resp.Results)
	}
	s0.handleRangeSeal(MsgRangeSeal{Clear: true})
	resp = s0.handleInstall(context.Background(), MsgInstall{Txns: []InstallTxn{{
		Version: ts,
		Writes:  []Write{{Key: k, Functor: functor.Value(kv.Value("x"))}},
	}}})
	if len(resp.Results) != 1 || !resp.Results[0].OK {
		t.Fatalf("post-clear install = %+v, want OK", resp.Results)
	}
}

func TestForwardedAbortStashesUntilImport(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	k := keyOwnedBy(t, 0, 2, "stash-")
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	s1 := c.Server(1)
	ts := tstamp.Make(1, 7, 0)
	// A forwarded abort arrives before the migrated record: it must stash.
	if err := s1.handleAbort(context.Background(), MsgAbort{Version: ts, Keys: []kv.Key{k}, Fwd: true}); err != nil {
		t.Fatal(err)
	}
	// The import delivers the record; the stashed abort applies to it.
	s1.handleRangeImport(context.Background(), MsgRangeImport{
		Keys: []mvstore.KeyExport{{Key: k, Records: []mvstore.ExportedRecord{{
			Version: ts, Functor: functor.Value(kv.Value("doomed")),
		}}}},
		Handoff: 1,
	})
	rec, ok := s1.Store().At(k, ts)
	if !ok {
		t.Fatal("imported record missing")
	}
	res := rec.Resolution()
	if res == nil || res.Kind != functor.ResolvedAborted {
		t.Fatalf("stashed abort not applied: resolution=%v", res)
	}
}
