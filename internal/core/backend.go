package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// handleMessage dispatches every inbound message to the back-end. ctx is
// the transport's handler context and carries the sender's trace context;
// handlers that block or call out re-root it on the server's lifetime via
// engineCtx so a remote caller's deadline never cancels local engine work.
func (s *Server) handleMessage(ctx context.Context, from transport.NodeID, msg any) (any, error) {
	switch m := msg.(type) {
	case MsgInstall:
		return s.handleInstall(ctx, m), nil
	case MsgAbort:
		return nil, s.handleAbort(ctx, m)
	case MsgRead:
		return s.handleRead(ctx, m)
	case MsgReadBatch:
		return s.handleReadBatch(ctx, m)
	case MsgEnsureBatch:
		return s.handleEnsureBatch(ctx, m)
	case MsgAbortBatch:
		for _, a := range m.Aborts {
			if err := s.handleAbort(ctx, a); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case MsgPush:
		s.pushValue(m.Version, m.Key, readFromPush(m))
		return nil, nil
	case MsgEnsure:
		return s.handleEnsure(ctx, m)
	case MsgEnsureUpTo:
		if !m.Fwd {
			if o := s.owner(m.Key); o != s.id {
				if _, err := s.conn.Call(s.engineCtx(ctx), transport.NodeID(o), MsgEnsureUpTo{Key: m.Key, Version: m.Version, Fwd: true}); err != nil {
					return nil, err
				}
				return MsgEnsureUpToResp{}, nil
			}
		}
		if err := s.computeKeyUpTo(s.engineCtx(ctx), m.Key, m.Version); err != nil {
			return nil, err
		}
		return MsgEnsureUpToResp{}, nil
	case MsgApplyDeferred:
		s.handleApplyDeferred(ctx, m)
		return nil, nil
	case MsgRangeSeal:
		s.handleRangeSeal(m)
		return MsgRangeSealResp{}, nil
	case MsgRangeExport:
		return s.handleRangeExport(m), nil
	case MsgRangeImport:
		return s.handleRangeImport(ctx, m), nil
	case MsgMapInstall:
		s.table.Install(m.Map)
		return MsgMapInstallResp{}, nil
	case MsgRangeRetire:
		return s.handleRangeRetire(m), nil
	case MsgWaitComputed:
		return s.handleWaitComputed(ctx, m)
	case MsgScan:
		return s.handleScan(s.engineCtx(ctx), m)
	case MsgClientSubmit:
		return s.handleClientSubmit(ctx, m)
	case MsgClientGet:
		return s.handleClientGet(ctx, m)
	case MsgGrant:
		s.Grant(m.E)
		return nil, nil
	case MsgRevoke:
		s.Revoke(m.E, func() {
			_ = s.conn.Send(s.ctx, from, MsgRevokeAck{E: m.E})
		})
		return nil, nil
	case MsgCommitted:
		s.Committed(m.E)
		return nil, nil
	case MsgPing:
		return s.handlePing(), nil
	default:
		return nil, fmt.Errorf("core: server %d: unexpected message %T", s.id, msg)
	}
}

func readFromPush(m MsgPush) funcRead {
	return funcRead{Value: m.Value, Found: m.Found, Version: m.ValueVersion}
}

// handleInstall is the back-end side of the write-only phase: it checks
// phase-1 constraints, inserts every key-functor pair as an in-epoch
// version, and buffers functor metadata until the epoch commits. The
// install span's context is stamped onto every buffered work item so the
// asynchronous functor.process span (which may start an epoch later)
// remains attached to the transaction's trace.
func (s *Server) handleInstall(ctx context.Context, m MsgInstall) MsgInstallResp {
	ctx, span := s.tr.Start(ctx, "be.install")
	span.SetAttr("txns", fmt.Sprintf("%d", len(m.Txns)))
	defer span.End()
	sc := trace.FromContext(ctx)
	if m.Placement != nil {
		// A WrongOwner retry carries the map the coordinator learned;
		// adopting it (newest wins) spreads ownership convergence along the
		// install paths, not just from the rebalancer's broadcast.
		s.table.Install(m.Placement)
	}
	resp := MsgInstallResp{Results: make([]InstallResult, len(m.Txns))}
	itemsp := workItemsPool.Get().(*[]workItem)
	items := (*itemsp)[:0]
	now := time.Now()
	// Hold the move interlock's read side across the fence checks and the
	// store Puts: once the rebalancer's seal (the write side) returns, every
	// install that passed the old fence has finished its Puts, so the
	// subsequent range export cannot miss a record.
	s.moveMu.RLock()
	defer s.moveMu.RUnlock()
	for i, txn := range m.Txns {
		if reason := s.placementFence(txn); reason != "" {
			resp.Results[i] = InstallResult{Err: reason, WrongOwner: true}
			if resp.Placement == nil {
				resp.Placement = s.table.Map()
			}
			continue
		}
		if reason := s.checkRequires(txn.Requires); reason != "" {
			resp.Results[i] = InstallResult{Err: reason}
			continue
		}
		failed := false
		nf, nb := 0, 0
		for _, w := range txn.Writes {
			rec, err := s.store.Put(w.Key, txn.Version, w.Functor)
			if err == mvstore.ErrVersionExists {
				// Retransmitted install: idempotent.
				continue
			}
			if s.durability != nil {
				if err := s.durability.LogInstall(txn.Version, w.Key, w.Functor); err != nil {
					resp.Results[i] = InstallResult{Err: "durability: " + err.Error()}
					failed = true
					break
				}
			}
			s.stats.functorsInstalled.Add(1)
			s.skew.Observe(s.id, string(w.Key))
			nf++
			nb += len(w.Key) + len(w.Functor.Arg)
			items = append(items, workItem{key: w.Key, version: txn.Version, rec: rec, installed: now, sc: sc})
		}
		if nf > 0 {
			s.journal.Install(uint64(txn.Version.Epoch()), nf, nb, now)
		}
		if failed {
			continue
		}
		resp.Results[i] = InstallResult{OK: true}
	}
	if len(items) > 0 {
		s.bufferWork(items)
	}
	// bufferWork copies every item into the per-epoch buffer (or the
	// processor queue), so the scratch slice can go back to the pool.
	clear(items)
	*itemsp = items[:0]
	workItemsPool.Put(itemsp)
	return resp
}

// workItemsPool recycles workItem slices across the install → epoch-buffer →
// processor hand-offs. Every stage copies items forward by value, so the
// backing arrays are reusable the moment the call returns; recycling them
// keeps the install hot path from re-growing a fresh array per batch.
var workItemsPool = sync.Pool{New: func() any {
	s := make([]workItem, 0, 64)
	return &s
}}

// placementFence rejects an install slice this partition must not accept:
// a key inside a range currently being handed off (sealed by the
// rebalancer's barrier), or a key whose owner at the transaction's epoch is
// another server under a newer ownership map than the coordinator routed
// with. Both come back WrongOwner — the coordinator re-routes with the map
// attached to the response and the same timestamp. Callers hold moveMu.R.
func (s *Server) placementFence(txn InstallTxn) string {
	e := txn.Version.Epoch()
	for _, w := range txn.Writes {
		for _, r := range s.sealedRanges {
			if r.Contains(w.Key) {
				return fmt.Sprintf("key %q sealed for migration", w.Key)
			}
		}
		if o := s.ownerAt(w.Key, e); o != s.id {
			return fmt.Sprintf("key %q owned by server %d at epoch %d", w.Key, o, e)
		}
	}
	return ""
}

// checkRequires verifies the phase-1 existence constraints. The referenced
// keys live in tables loaded at epoch 0 (e.g. the TPC-C item table), so a
// plain latest-version probe suffices.
func (s *Server) checkRequires(keys []kv.Key) string {
	for _, k := range keys {
		if _, ok := s.store.Latest(k, tstamp.Max); !ok {
			return fmt.Sprintf("required key %q not found", k)
		}
	}
	return ""
}

// bufferWork stashes functor metadata under its epoch until Committed.
// A batch may straddle an epoch switch (straggler mode draws from the next
// epoch), so items are grouped per epoch; work for an epoch whose buffer
// Committed already drained goes straight to the processor. The drained
// check happens under pendingMu — the same lock Committed drains under —
// so a late install can never append to a buffer that was already handed
// off (it would stay unsealed and unprocessed: a lost write).
func (s *Server) bufferWork(items []workItem) {
	var direct []workItem
	s.pendingMu.Lock()
	for _, it := range items {
		e := it.version.Epoch()
		if e <= s.drainedEpoch {
			direct = append(direct, it)
			continue
		}
		cur, ok := s.pending[e]
		if !ok {
			// Start each epoch's buffer from the pool: Committed recycles
			// drained buffers, so steady state re-grows nothing.
			cur = *workItemsPool.Get().(*[]workItem)
		}
		s.pending[e] = append(cur, it)
	}
	s.pendingMu.Unlock()
	if len(direct) > 0 {
		now := time.Now()
		for i := range direct {
			// Late arrival for an already-committed epoch: seal
			// immediately so the record is readable.
			s.store.Seal(direct[i].key, tstamp.End(direct[i].version.Epoch()))
			direct[i].ready = now
		}
		s.proc.enqueue(direct)
	}
}

// handleAbort is the coordinator's second round: every version the failed
// transaction installed on this partition becomes ABORTED. This happens
// strictly before the epoch commits (the coordinator holds its in-flight
// slot until the round completes), so no reader or processor can have
// resolved the records yet.
//
// Keys whose ownership moved since the install forward one hop to the
// current owner (a migration barrier may have run between the install and
// this abort). At the forwarded-to side a key's migrated record may not
// have been imported yet; those keys stash under stashMu and the import
// applies them — the interlock that keeps an abort from racing past the
// record it must mark.
func (s *Server) handleAbort(ctx context.Context, m MsgAbort) error {
	keys := m.Keys
	if !m.Fwd {
		e := m.Version.Epoch()
		var fwd map[int][]kv.Key
		local := keys[:0:0]
		for _, k := range keys {
			if o := s.ownerAt(k, e); o != s.id {
				if fwd == nil {
					fwd = make(map[int][]kv.Key)
				}
				fwd[o] = append(fwd[o], k)
			} else {
				local = append(local, k)
			}
		}
		keys = local
		for o, ks := range fwd {
			if _, err := s.conn.Call(s.engineCtx(ctx), transport.NodeID(o), MsgAbort{Version: m.Version, Keys: ks, Fwd: true}); err != nil {
				return err
			}
		}
	}
	s.stashMu.Lock()
	var stash []kv.Key
	for _, k := range keys {
		if rec, ok := s.store.At(k, m.Version); ok {
			rec.Resolve(_abortResolutionPeer)
		} else if m.Fwd {
			stash = append(stash, k)
		}
	}
	if len(stash) > 0 {
		s.abortStash[m.Version] = append(s.abortStash[m.Version], stash...)
	}
	s.stashMu.Unlock()
	if s.durability != nil && len(keys) > 0 {
		_ = s.durability.LogAbort(m.Version, keys)
	}
	return nil
}

// handleRead serves a remote Get at the requested snapshot (Algorithm 1's
// Get; computes functors on demand).
func (s *Server) handleRead(ctx context.Context, m MsgRead) (MsgReadResp, error) {
	ctx, span := s.tr.Start(ctx, "be.read")
	span.SetAttr("key", string(m.Key))
	defer span.End()
	s.stats.readsServed.Add(1)
	ectx := s.engineCtx(ctx)
	// The key may have migrated away since the caller routed: forward one
	// hop to the current owner (the second hop always serves locally — maps
	// converge within an epoch, so one hop reaches the owner in practice,
	// and bounding the hops keeps a map race from ping-ponging a request).
	if !m.Fwd {
		if o := s.owner(m.Key); o != s.id {
			raw, err := s.conn.Call(ectx, transport.NodeID(o), MsgRead{Key: m.Key, Version: m.Version, Fwd: true})
			if err != nil {
				return MsgReadResp{}, err
			}
			return raw.(MsgReadResp), nil
		}
	}
	// The requesting server already waited for this snapshot's epoch to
	// commit, but the Committed broadcast reaches participants one at a
	// time: this partition may not have sealed the epoch yet, and Latest
	// only sees sealed records. Serving early would silently miss this
	// epoch's writes — a torn read. Wait for local visibility first.
	if err := s.waitVisible(ectx, m.Version); err != nil {
		return MsgReadResp{}, err
	}
	r, err := s.localRead(ectx, m.Key, m.Version)
	if err != nil {
		return MsgReadResp{}, err
	}
	return MsgReadResp{Value: r.Value, Found: r.Found, Version: r.Version}, nil
}

// handleReadBatch serves a combined batch of remote Gets. Items run in
// parallel: each read may trigger on-demand functor computation with its
// own remote fan-out, so serializing them would stack those latencies.
func (s *Server) handleReadBatch(ctx context.Context, m MsgReadBatch) (MsgReadBatchResp, error) {
	ctx, span := s.tr.Start(ctx, "be.read.batch")
	span.SetAttr("batch", fmt.Sprintf("%d", len(m.Reads)))
	defer span.End()
	s.stats.readsServed.Add(uint64(len(m.Reads)))
	ectx := s.engineCtx(ctx)
	// As in handleRead: don't serve snapshots from an epoch this partition
	// hasn't sealed yet. One wait on the batch maximum covers every item.
	maxV := m.Reads[0].Version
	for _, r := range m.Reads[1:] {
		if r.Version > maxV {
			maxV = r.Version
		}
	}
	if err := s.waitVisible(ectx, maxV); err != nil {
		return MsgReadBatchResp{}, err
	}
	resp := MsgReadBatchResp{Results: make([]ReadResult, len(m.Reads))}
	one := func(i int) ReadResult {
		rd := m.Reads[i]
		// Forward reads for keys that migrated away (single hop, as in
		// handleRead); the batch was combined under an older map.
		if !rd.Fwd {
			if o := s.owner(rd.Key); o != s.id {
				raw, err := s.conn.Call(ectx, transport.NodeID(o), MsgRead{Key: rd.Key, Version: rd.Version, Fwd: true})
				if err != nil {
					return ReadResult{Err: err.Error()}
				}
				return ReadResult{Resp: raw.(MsgReadResp)}
			}
		}
		r, err := s.localRead(ectx, rd.Key, rd.Version)
		return readResult(r, err)
	}
	if len(m.Reads) == 1 {
		resp.Results[0] = one(0)
		return resp, nil
	}
	var wg sync.WaitGroup
	for i := range m.Reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Results[i] = one(i)
		}(i)
	}
	wg.Wait()
	return resp, nil
}

func readResult(r funcRead, err error) ReadResult {
	if err != nil {
		return ReadResult{Err: err.Error()}
	}
	return ReadResult{Resp: MsgReadResp{Value: r.Value, Found: r.Found, Version: r.Version}}
}

// handleEnsureBatch serves a combined batch of ensures, mixing the
// MsgEnsure (resolution wanted) and MsgEnsureUpTo (watermark advance)
// flavors. Items run in parallel like handleReadBatch.
func (s *Server) handleEnsureBatch(ctx context.Context, m MsgEnsureBatch) (MsgEnsureBatchResp, error) {
	ctx, span := s.tr.Start(ctx, "be.ensure.batch")
	span.SetAttr("batch", fmt.Sprintf("%d", len(m.Reqs)))
	defer span.End()
	ectx := s.engineCtx(ctx)
	// Ensures resolve records through the sealed view (resolveRecord walks
	// store.View, computeKeyUpTo walks Between): wait for local visibility
	// of the highest requested version so the mid-broadcast window can't
	// make them compute against a partial chain.
	maxV := m.Reqs[0].Version
	for _, r := range m.Reqs[1:] {
		if r.Version > maxV {
			maxV = r.Version
		}
	}
	if err := s.waitVisible(ectx, maxV); err != nil {
		return MsgEnsureBatchResp{}, err
	}
	resp := MsgEnsureBatchResp{Results: make([]EnsureResult, len(m.Reqs))}
	one := func(i int) EnsureResult {
		req := m.Reqs[i]
		// Forward ensures for keys that migrated away (single hop, as in
		// handleRead); the batch was combined under an older map.
		if !req.Fwd {
			if o := s.owner(req.Key); o != s.id {
				if req.UpTo {
					if _, err := s.conn.Call(ectx, transport.NodeID(o), MsgEnsureUpTo{Key: req.Key, Version: req.Version, Fwd: true}); err != nil {
						return EnsureResult{Err: err.Error()}
					}
					return EnsureResult{}
				}
				raw, err := s.conn.Call(ectx, transport.NodeID(o), MsgEnsure{Key: req.Key, Version: req.Version, Fwd: true})
				if err != nil {
					return EnsureResult{Err: err.Error()}
				}
				return EnsureResult{Resolution: raw.(MsgEnsureResp).Resolution}
			}
		}
		if req.UpTo {
			if err := s.computeKeyUpTo(ectx, req.Key, req.Version); err != nil {
				return EnsureResult{Err: err.Error()}
			}
			return EnsureResult{}
		}
		rec, ok := s.store.At(req.Key, req.Version)
		if !ok {
			return EnsureResult{Err: fmt.Sprintf("core: server %d: determinate functor %q@%v not found", s.id, req.Key, req.Version)}
		}
		res, err := s.resolveRecord(ectx, req.Key, rec)
		if err != nil {
			return EnsureResult{Err: err.Error()}
		}
		return EnsureResult{Resolution: res}
	}
	if len(m.Reqs) == 1 {
		resp.Results[0] = one(0)
		return resp, nil
	}
	var wg sync.WaitGroup
	for i := range m.Reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Results[i] = one(i)
		}(i)
	}
	wg.Wait()
	return resp, nil
}

// handleEnsure computes the determinate functor at (Key, Version) and
// returns its resolution so the caller can resolve dependent-key markers.
func (s *Server) handleEnsure(ctx context.Context, m MsgEnsure) (MsgEnsureResp, error) {
	ctx, span := s.tr.Start(ctx, "be.ensure")
	span.SetAttr("key", string(m.Key))
	defer span.End()
	if !m.Fwd {
		if o := s.owner(m.Key); o != s.id {
			raw, err := s.conn.Call(s.engineCtx(ctx), transport.NodeID(o), MsgEnsure{Key: m.Key, Version: m.Version, Fwd: true})
			if err != nil {
				return MsgEnsureResp{}, err
			}
			return raw.(MsgEnsureResp), nil
		}
	}
	if err := s.waitVisible(s.engineCtx(ctx), m.Version); err != nil {
		return MsgEnsureResp{}, err
	}
	rec, ok := s.store.At(m.Key, m.Version)
	if !ok {
		return MsgEnsureResp{}, fmt.Errorf("core: server %d: determinate functor %q@%v not found", s.id, m.Key, m.Version)
	}
	res, err := s.resolveRecord(s.engineCtx(ctx), m.Key, rec)
	if err != nil {
		return MsgEnsureResp{}, err
	}
	return MsgEnsureResp{Resolution: res}, nil
}

// handleApplyDeferred applies deferred writes from a determinate functor.
// Statically-declared dependent keys carry markers installed in the
// write-only phase; dynamically-named dependent keys (unknown at install,
// e.g. rows keyed by a freshly allocated id) get their records created
// here. Resolution is a CAS and record creation is idempotent, so
// duplicate deliveries and races with on-demand marker resolution are
// harmless.
func (s *Server) handleApplyDeferred(ctx context.Context, m MsgApplyDeferred) {
	_, span := s.tr.Start(ctx, "be.deferred")
	span.SetAttr("writes", fmt.Sprintf("%d", len(m.Writes)))
	defer span.End()
	if !m.Fwd {
		m = s.forwardDeferred(ctx, m)
	}
	for _, w := range m.Writes {
		rec, ok := s.store.At(w.Key, m.Version)
		if !ok {
			fn := functor.Value(w.Value)
			if w.Delete {
				fn = functor.Deleted()
			}
			var err error
			rec, err = s.store.Put(w.Key, m.Version, fn)
			if err != nil && err != mvstore.ErrVersionExists {
				continue
			}
			// Deferred writes happen after their epoch committed; seal the
			// fresh record so readers (guarded by the dependency rule) see
			// it immediately.
			s.store.Seal(w.Key, m.Version+1)
			s.stats.functorsInstalled.Add(1)
		}
		rec.Resolve(deferredResolution(w))
	}
	for _, k := range m.Dissolve {
		if rec, ok := s.store.At(k, m.Version); ok {
			if m.Aborted {
				rec.Resolve(_abortResolutionDeferred)
			} else {
				rec.Resolve(_skipResolutionShared)
			}
		}
	}
	s.notifyComputed()
}

// forwardDeferred splits a deferred-write delivery by current ownership:
// writes and dissolve keys that migrated away go one hop to their new owner
// (Fwd set so the receiver applies locally), and the returned message keeps
// only the still-local remainder. Deliveries are idempotent (resolution is
// a CAS, record creation tolerates duplicates), so a failed forward is
// retried by nothing worse than the reader-side on-demand path.
func (s *Server) forwardDeferred(ctx context.Context, m MsgApplyDeferred) MsgApplyDeferred {
	foreign := false
	for _, w := range m.Writes {
		if s.owner(w.Key) != s.id {
			foreign = true
			break
		}
	}
	if !foreign {
		for _, k := range m.Dissolve {
			if s.owner(k) != s.id {
				foreign = true
				break
			}
		}
	}
	if !foreign {
		return m
	}
	var (
		localW []functor.DependentWrite
		localD []kv.Key
		fwd    = make(map[int]*MsgApplyDeferred)
	)
	peer := func(o int) *MsgApplyDeferred {
		f := fwd[o]
		if f == nil {
			f = &MsgApplyDeferred{Version: m.Version, Aborted: m.Aborted, Fwd: true}
			fwd[o] = f
		}
		return f
	}
	for _, w := range m.Writes {
		if o := s.owner(w.Key); o != s.id {
			peer(o).Writes = append(peer(o).Writes, w)
		} else {
			localW = append(localW, w)
		}
	}
	for _, k := range m.Dissolve {
		if o := s.owner(k); o != s.id {
			peer(o).Dissolve = append(peer(o).Dissolve, k)
		} else {
			localD = append(localD, k)
		}
	}
	ectx := s.engineCtx(ctx)
	for o, f := range fwd {
		_, _ = s.conn.Call(ectx, transport.NodeID(o), *f)
	}
	m.Writes, m.Dissolve = localW, localD
	return m
}

// handleClientSubmit coordinates a remote client's transaction.
func (s *Server) handleClientSubmit(ctx context.Context, m MsgClientSubmit) (MsgClientSubmitResp, error) {
	ctx = s.engineCtx(ctx)
	h, err := s.Submit(ctx, Txn{Writes: m.Writes, Requires: m.Requires})
	if err != nil {
		return MsgClientSubmitResp{}, err
	}
	resp := MsgClientSubmitResp{Version: h.Version()}
	if aborted, reason := h.Installed(); aborted {
		resp.Aborted = true
		resp.Reason = reason
		return resp, nil
	}
	if m.WaitComputed {
		committed, reason, err := h.Await(ctx)
		if err != nil {
			return MsgClientSubmitResp{}, err
		}
		resp.Aborted = !committed
		resp.Reason = reason
	}
	return resp, nil
}

// handleClientGet serves a remote client's serializable read.
func (s *Server) handleClientGet(ctx context.Context, m MsgClientGet) (MsgClientGetResp, error) {
	ctx = s.engineCtx(ctx)
	var (
		v     kv.Value
		found bool
		err   error
	)
	if m.Snapshot != tstamp.Zero {
		v, found, err = s.GetAt(ctx, m.Key, m.Snapshot)
	} else {
		v, found, err = s.Get(ctx, m.Key)
	}
	if err != nil {
		return MsgClientGetResp{}, err
	}
	return MsgClientGetResp{Value: v, Found: found}, nil
}

// handleWaitComputed blocks until the record reaches a final state. Used by
// clients choosing the "acknowledge after functor computing" option.
func (s *Server) handleWaitComputed(ctx context.Context, m MsgWaitComputed) (MsgWaitComputedResp, error) {
	rec, ok := s.store.At(m.Key, m.Version)
	if !ok {
		// The record may have migrated away; chase it one hop.
		if !m.Fwd {
			if o := s.owner(m.Key); o != s.id {
				raw, err := s.conn.Call(s.engineCtx(ctx), transport.NodeID(o), MsgWaitComputed{Key: m.Key, Version: m.Version, Fwd: true})
				if err != nil {
					return MsgWaitComputedResp{}, err
				}
				return raw.(MsgWaitComputedResp), nil
			}
		}
		return MsgWaitComputedResp{}, fmt.Errorf("core: server %d: record %q@%v not found", s.id, m.Key, m.Version)
	}
	res, err := s.waitRecordFinal(s.engineCtx(ctx), rec)
	if err != nil {
		return MsgWaitComputedResp{}, err
	}
	return MsgWaitComputedResp{Kind: res.Kind, Reason: res.Reason}, nil
}
