package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// combiner merges concurrent remote reads and ensures destined for the
// same owner into batch RPCs (MsgReadBatch / MsgEnsureBatch), extending the
// paper's install convention — one message per involved partition (§V) —
// to the functor hot path: under load, many functor computations read
// single keys of the same remote partition at once, and each such read is
// otherwise a full RPC.
//
// Per owner, one former goroutine drains the op queue: the first op of an
// idle owner dispatches immediately (the single-request fast path sends
// the original MsgRead/MsgEnsure/MsgEnsureUpTo, so isolated requests keep
// their latency and wire format), and ops that accumulate while the former
// is active leave as one batch. Dispatches are asynchronous — the former
// never waits for a response. Holding the owner slot across the RPC would
// be the textbook combining window, but compute paths recurse across
// partitions (a served read can trigger computations that read back), and
// two owners waiting on each other's held slots would deadlock; forming
// batches without bounding RPC concurrency keeps the merge and cannot
// create a wait cycle.
type combiner struct {
	s *Server
	// window, when positive, is how long the former lingers between
	// consecutive dispatches to accumulate a larger batch. It never delays
	// an isolated request: the first dispatch of an idle owner is always
	// immediate.
	window time.Duration

	mu     sync.Mutex
	owners map[int]*ownerQueue
}

// maxCombine bounds ops per batch message so a deep queue becomes several
// reasonably-sized RPCs instead of one giant envelope.
const maxCombine = 128

type ownerQueue struct {
	mu      sync.Mutex
	ops     []*combOp
	forming bool
}

type combKind uint8

const (
	combRead combKind = iota
	combEnsure
	combEnsureUpTo
)

type combOp struct {
	kind    combKind
	key     kv.Key
	version tstamp.Timestamp
	// ctx is the caller's context: its trace labels the dispatch and its
	// cancellation releases only this caller's wait, never the shared RPC.
	ctx  context.Context
	done chan combResult
}

type combResult struct {
	read funcRead
	res  *functor.Resolution
	err  error
}

// combOpPool recycles ops together with their buffered result channels:
// every remote read otherwise pays two heap allocations before a byte
// hits the wire, and under combining pressure those dominate the
// client-side allocation profile. Pooled ops always carry an empty
// channel — the happy path drains the single send before releasing, and
// the context-cancel path abandons the op to the GC (the late send lands
// in the buffer of an object nobody will reuse).
var combOpPool = sync.Pool{
	New: func() any { return &combOp{done: make(chan combResult, 1)} },
}

func newCombOp(ctx context.Context, kind combKind, k kv.Key, v tstamp.Timestamp) *combOp {
	op := combOpPool.Get().(*combOp)
	op.kind, op.key, op.version, op.ctx = kind, k, v, ctx
	return op
}

func (op *combOp) release() {
	op.key, op.ctx = "", nil
	combOpPool.Put(op)
}

func newCombiner(s *Server, window time.Duration) *combiner {
	return &combiner{s: s, window: window, owners: make(map[int]*ownerQueue)}
}

// read performs a remote read through the combiner.
func (c *combiner) read(ctx context.Context, owner int, k kv.Key, v tstamp.Timestamp) (funcRead, error) {
	r := c.do(ctx, owner, newCombOp(ctx, combRead, k, v))
	return r.read, r.err
}

// ensure performs a remote MsgEnsure through the combiner.
func (c *combiner) ensure(ctx context.Context, owner int, k kv.Key, v tstamp.Timestamp) (*functor.Resolution, error) {
	r := c.do(ctx, owner, newCombOp(ctx, combEnsure, k, v))
	return r.res, r.err
}

// ensureUpTo performs a remote MsgEnsureUpTo through the combiner.
func (c *combiner) ensureUpTo(ctx context.Context, owner int, k kv.Key, v tstamp.Timestamp) error {
	r := c.do(ctx, owner, newCombOp(ctx, combEnsureUpTo, k, v))
	return r.err
}

func (c *combiner) queue(owner int) *ownerQueue {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.owners[owner]
	if q == nil {
		q = &ownerQueue{}
		c.owners[owner] = q
	}
	return q
}

// occupancy reports each owner slot's queued (not yet dispatched) ops for
// stall snapshots, sorted by owner; idle empty slots are skipped.
func (c *combiner) occupancy() []obs.OwnerQueue {
	c.mu.Lock()
	owners := make([]int, 0, len(c.owners))
	queues := make([]*ownerQueue, 0, len(c.owners))
	for owner, q := range c.owners {
		owners = append(owners, owner)
		queues = append(queues, q)
	}
	c.mu.Unlock()
	var out []obs.OwnerQueue
	for i, q := range queues {
		q.mu.Lock()
		n := len(q.ops)
		forming := q.forming
		q.mu.Unlock()
		if n > 0 || forming {
			out = append(out, obs.OwnerQueue{Owner: owners[i], Queued: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

func (c *combiner) do(ctx context.Context, owner int, op *combOp) combResult {
	q := c.queue(owner)
	q.mu.Lock()
	q.ops = append(q.ops, op)
	start := !q.forming
	q.forming = true
	q.mu.Unlock()
	if start {
		go c.formLoop(owner, q)
	}
	select {
	case r := <-op.done:
		op.release()
		return r
	case <-ctx.Done():
		// The shared dispatch proceeds for the other waiters; only this
		// caller gives up (done is buffered, so the late send never blocks,
		// and the abandoned op stays out of the pool).
		return combResult{err: ctx.Err()}
	}
}

// formLoop drains one owner's queue: grab whatever is queued, dispatch it
// asynchronously, briefly yield (or linger for the configured window) so
// concurrent producers can publish the next batch, and exit once the queue
// stays empty.
func (c *combiner) formLoop(owner int, q *ownerQueue) {
	yields := 0
	for {
		q.mu.Lock()
		n := len(q.ops)
		if n == 0 {
			if yields < 2 {
				q.mu.Unlock()
				yields++
				runtime.Gosched()
				continue
			}
			q.forming = false
			q.mu.Unlock()
			return
		}
		if n > maxCombine {
			n = maxCombine
		}
		ops := q.ops[:n:n]
		q.ops = q.ops[n:]
		q.mu.Unlock()
		yields = 0
		go c.dispatch(owner, ops)
		if c.window > 0 {
			time.Sleep(c.window)
		} else {
			runtime.Gosched()
		}
	}
}

// dispatch sends one formed batch. A single op keeps the original wire
// message and span; a real batch splits into at most one MsgReadBatch and
// one MsgEnsureBatch, sent concurrently.
func (c *combiner) dispatch(owner int, ops []*combOp) {
	if len(ops) == 1 {
		c.dispatchSingle(owner, ops[0])
		return
	}
	// Homogeneous batches (the common case: a burst of remote reads) go
	// out as-is; only mixed batches pay for the split.
	nReads := 0
	for _, op := range ops {
		if op.kind == combRead {
			nReads++
		}
	}
	switch nReads {
	case len(ops):
		c.dispatchReads(owner, ops)
		return
	case 0:
		c.dispatchEnsures(owner, ops)
		return
	}
	reads := make([]*combOp, 0, nReads)
	ensures := make([]*combOp, 0, len(ops)-nReads)
	for _, op := range ops {
		if op.kind == combRead {
			reads = append(reads, op)
		} else {
			ensures = append(ensures, op)
		}
	}
	if len(reads) > 0 && len(ensures) > 0 {
		go c.dispatchEnsures(owner, ensures)
		c.dispatchReads(owner, reads)
		return
	}
	if len(reads) > 0 {
		c.dispatchReads(owner, reads)
	}
	if len(ensures) > 0 {
		c.dispatchEnsures(owner, ensures)
	}
}

func (c *combiner) dispatchSingle(owner int, op *combOp) {
	s := c.s
	ctx := s.engineCtx(op.ctx)
	switch op.kind {
	case combRead:
		s.stats.recordReadBatch(1)
		rctx, span := s.tr.Start(ctx, "read.remote")
		span.SetAttr("key", string(op.key))
		span.SetAttr("owner", strconv.Itoa(owner))
		resp, err := s.conn.Call(rctx, transport.NodeID(owner), MsgRead{Key: op.key, Version: op.version})
		span.End()
		if err != nil {
			op.done <- combResult{err: fmt.Errorf("core: remote read %q@%v: %w", op.key, op.version, err)}
			return
		}
		r, ok := resp.(MsgReadResp)
		if !ok {
			op.done <- combResult{err: fmt.Errorf("core: remote read %q: unexpected response %T", op.key, resp)}
			return
		}
		op.done <- combResult{read: funcRead{Value: r.Value, Found: r.Found, Version: r.Version}}

	case combEnsure:
		s.stats.recordEnsureBatch(1)
		rctx, span := s.tr.Start(ctx, "functor.ensure")
		span.SetAttr("key", string(op.key))
		resp, err := s.conn.Call(rctx, transport.NodeID(owner), MsgEnsure{Key: op.key, Version: op.version})
		span.End()
		if err != nil {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q@%v: %w", op.key, op.version, err)}
			return
		}
		r, ok := resp.(MsgEnsureResp)
		if !ok {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q: unexpected response %T", op.key, resp)}
			return
		}
		op.done <- combResult{res: r.Resolution}

	case combEnsureUpTo:
		s.stats.recordEnsureBatch(1)
		if _, err := s.conn.Call(ctx, transport.NodeID(owner), MsgEnsureUpTo{Key: op.key, Version: op.version}); err != nil {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q up to %v: %w", op.key, op.version, err)}
			return
		}
		op.done <- combResult{}
	}
}

func (c *combiner) dispatchReads(owner int, ops []*combOp) {
	s := c.s
	s.stats.recordReadBatch(len(ops))
	ctx, span := s.tr.Start(s.engineCtx(ops[0].ctx), "read.remote.batch")
	span.SetAttr("owner", strconv.Itoa(owner))
	span.SetAttr("batch", strconv.Itoa(len(ops)))
	msg := MsgReadBatch{Reads: make([]MsgRead, len(ops))}
	for i, op := range ops {
		msg.Reads[i] = MsgRead{Key: op.key, Version: op.version}
	}
	raw, err := s.conn.Call(ctx, transport.NodeID(owner), msg)
	span.End()
	if err != nil {
		for _, op := range ops {
			op.done <- combResult{err: fmt.Errorf("core: remote read %q@%v: %w", op.key, op.version, err)}
		}
		return
	}
	resp, ok := raw.(MsgReadBatchResp)
	if !ok || len(resp.Results) != len(ops) {
		for _, op := range ops {
			op.done <- combResult{err: fmt.Errorf("core: remote read %q: malformed batch response %T", op.key, raw)}
		}
		return
	}
	for i, op := range ops {
		r := resp.Results[i]
		if r.Err != "" {
			op.done <- combResult{err: fmt.Errorf("core: remote read %q@%v: %s", op.key, op.version, r.Err)}
			continue
		}
		op.done <- combResult{read: funcRead{Value: r.Resp.Value, Found: r.Resp.Found, Version: r.Resp.Version}}
	}
}

func (c *combiner) dispatchEnsures(owner int, ops []*combOp) {
	s := c.s
	s.stats.recordEnsureBatch(len(ops))
	ctx, span := s.tr.Start(s.engineCtx(ops[0].ctx), "ensure.remote.batch")
	span.SetAttr("owner", strconv.Itoa(owner))
	span.SetAttr("batch", strconv.Itoa(len(ops)))
	msg := MsgEnsureBatch{Reqs: make([]EnsureReq, len(ops))}
	for i, op := range ops {
		msg.Reqs[i] = EnsureReq{Key: op.key, Version: op.version, UpTo: op.kind == combEnsureUpTo}
	}
	raw, err := s.conn.Call(ctx, transport.NodeID(owner), msg)
	span.End()
	if err != nil {
		for _, op := range ops {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q@%v: %w", op.key, op.version, err)}
		}
		return
	}
	resp, ok := raw.(MsgEnsureBatchResp)
	if !ok || len(resp.Results) != len(ops) {
		for _, op := range ops {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q: malformed batch response %T", op.key, raw)}
		}
		return
	}
	for i, op := range ops {
		r := resp.Results[i]
		if r.Err != "" {
			op.done <- combResult{err: fmt.Errorf("core: ensure %q@%v: %s", op.key, op.version, r.Err)}
			continue
		}
		op.done <- combResult{res: r.Resolution}
	}
}
