package core

import (
	"context"
	"fmt"
	"time"

	"alohadb/internal/epoch"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/mvstore"
	"alohadb/internal/obs"
	"alohadb/internal/placement"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// ClusterConfig configures an embedded ALOHA-DB cluster: N combined FE/BE
// servers plus an epoch manager, wired over an in-memory (default) or
// caller-supplied network.
type ClusterConfig struct {
	// Servers is the number of FE/BE nodes. Required.
	Servers int
	// EpochDuration is the unified epoch length (default 25 ms, §V-A2).
	// With EpochMinDuration/EpochMaxDuration set it is only the adaptive
	// interval's starting point.
	EpochDuration time.Duration
	// EpochMinDuration and EpochMaxDuration, when both set, enable the
	// adaptive epoch interval: the manager retunes the epoch length after
	// every switch from an EMA of switch durations (bounded to the
	// [min, max] window) and drifts toward max while no transactions
	// commit. See epoch.Config.
	EpochMinDuration time.Duration
	EpochMaxDuration time.Duration
	// ManualEpochs disables the timer: epochs advance only via
	// AdvanceEpoch. Deterministic tests use this.
	ManualEpochs bool
	// Router is the base key→server placement shared by every server; nil
	// falls back to Partitioner (or hash placement). The rebalancer overlays
	// it with epoch-versioned ownership maps at runtime.
	Router placement.Router
	// Partitioner places keys (default: hash).
	//
	// Deprecated: set Router instead (wrap a closure with
	// placement.NewStatic). Ignored when Router is non-nil.
	Partitioner Partitioner
	// Registry holds user-defined functor handlers, shared by all servers.
	Registry *functor.Registry
	// Workers is the per-server processor pool size (default 2).
	Workers int
	// Network overrides the transport (default: in-memory, zero latency).
	Network transport.Network
	// NetLatency/NetJitter configure the default in-memory network's
	// simulated one-way delay. Ignored when Network is set.
	NetLatency time.Duration
	NetJitter  time.Duration
	// DurabilityFactory, when set, builds the durability hook for each
	// server (write-ahead log, replication shipper, or both).
	DurabilityFactory func(serverID int) (DurabilityHook, error)
	// Stores, when set, seeds each server with a pre-populated store
	// (crash recovery or replica promotion). Length must equal Servers.
	Stores []*mvstore.Store
	// StartEpoch is the first served epoch (default 1). Recovery restarts
	// at the epoch after the last durably committed one.
	StartEpoch tstamp.Epoch
	// DependencyRule declares schema-level key dependencies (§IV-E); see
	// ServerConfig.DependencyRule.
	DependencyRule func(k kv.Key) (kv.Key, bool)
	// Tracer, when set, is shared by every server and the epoch manager;
	// spans carry the originating node so one cluster-wide snapshot shows
	// cross-server traces whole. Nil disables tracing.
	Tracer *trace.Tracer
	// ReadBatchWindow configures each server's remote read/ensure combiner
	// linger; see ServerConfig.ReadBatchWindow.
	ReadBatchWindow time.Duration
	// SwitchTimeout bounds how long the epoch manager waits for revoke
	// acks before switching anyway (liveness escape hatch for crash-stop
	// scenarios, §III-C); zero waits forever. Fault-injection tests set it
	// so a wedged server cannot stall epochs for the whole cluster.
	SwitchTimeout time.Duration
	// AbortRetries / AbortRetryBackoff tune the second-round abort
	// redelivery budget; see ServerConfig.
	AbortRetries      int
	AbortRetryBackoff time.Duration
	// Skew, when set, is the shared hot-key profiler sampled by every
	// server's install and local-read paths; its families join Metrics().
	// Nil disables profiling (see ServerConfig.Skew).
	Skew *obs.Skew
	// JournalRing sizes each server's per-epoch lifecycle journal (see
	// ServerConfig.JournalRing): zero = default on, negative = disabled.
	JournalRing int
}

// Cluster is an embedded multi-server ALOHA-DB instance. It is the unit the
// examples, tests, and benchmarks run against; the TCP deployment assembles
// the same pieces across processes (see cmd/aloha-server).
type Cluster struct {
	cfg     ClusterConfig
	net     transport.Network
	ownNet  bool
	servers []*Server
	em      *epoch.Manager
	started bool
	loadSeq []uint32
	// table is the cluster's own routing view (base placement plus newest
	// ownership map); Load and the rebalancer route through it instead of
	// peeking at a server's internals.
	table *placement.Table
	reb   *Rebalancer
}

// NewCluster builds the cluster but does not start epochs; call Load for
// initial data, then Start.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("core: cluster needs at least one server")
	}
	if cfg.Registry == nil {
		cfg.Registry = functor.NewRegistry()
	}
	if cfg.Router == nil {
		cfg.Router = placement.NewStatic(cfg.Servers, cfg.Partitioner)
	}
	c := &Cluster{cfg: cfg, loadSeq: make([]uint32, cfg.Servers), table: placement.NewTable(cfg.Router)}
	if cfg.Network != nil {
		c.net = cfg.Network
	} else {
		c.net = transport.NewMemNetwork(transport.WithLatency(cfg.NetLatency, cfg.NetJitter))
		c.ownNet = true
	}
	if cfg.Stores != nil && len(cfg.Stores) != cfg.Servers {
		return nil, fmt.Errorf("core: %d seeded stores for %d servers", len(cfg.Stores), cfg.Servers)
	}
	for i := 0; i < cfg.Servers; i++ {
		var hook DurabilityHook
		if cfg.DurabilityFactory != nil {
			var err error
			hook, err = cfg.DurabilityFactory(i)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("core: durability for server %d: %w", i, err)
			}
		}
		srv, err := NewServer(ServerConfig{
			ID:                i,
			NumServers:        cfg.Servers,
			Router:            cfg.Router,
			Registry:          cfg.Registry,
			Workers:           cfg.Workers,
			Durability:        hook,
			DependencyRule:    cfg.DependencyRule,
			Tracer:            cfg.Tracer,
			ReadBatchWindow:   cfg.ReadBatchWindow,
			AbortRetries:      cfg.AbortRetries,
			AbortRetryBackoff: cfg.AbortRetryBackoff,
			Skew:              cfg.Skew,
			JournalRing:       cfg.JournalRing,
		}, c.net)
		if err != nil {
			c.Close()
			return nil, err
		}
		if cfg.Stores != nil {
			srv.store = cfg.Stores[i]
		}
		c.servers = append(c.servers, srv)
	}
	servers := c.servers
	c.em = epoch.New(epoch.Config{
		Duration:      cfg.EpochDuration,
		SwitchTimeout: cfg.SwitchTimeout,
		StartEpoch:    cfg.StartEpoch,
		MinDuration:   cfg.EpochMinDuration,
		MaxDuration:   cfg.EpochMaxDuration,
		CommitCount: func() uint64 {
			var n uint64
			for _, s := range servers {
				n += s.stats.txnsCommitted.Load()
			}
			return n
		},
	})
	// The manager traces as node Servers, matching the TCP address-book
	// convention that places the EM right after the server IDs.
	c.em.SetTracer(cfg.Tracer.ForNode(cfg.Servers))
	for _, srv := range c.servers {
		if err := c.em.Register(srv); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.reb = newRebalancer(c)
	c.em.SetBarrier(c.reb.barrier)
	return c, nil
}

// Load bulk-inserts initial data as epoch-0 VALUE functors, before Start.
// Epoch 0 commits when the cluster starts, making the data visible to every
// epoch-1 transaction.
func (c *Cluster) Load(pairs []kv.Pair) error {
	if c.started {
		return fmt.Errorf("core: Load after Start")
	}
	for _, p := range pairs {
		if err := c.loadOne(p.Key, functor.Value(p.Value)); err != nil {
			return err
		}
	}
	return nil
}

// LoadFunctor bulk-inserts one arbitrary functor at epoch 0 (tests use this
// to pre-seed non-VALUE states).
func (c *Cluster) LoadFunctor(k kv.Key, fn *functor.Functor) error {
	if c.started {
		return fmt.Errorf("core: Load after Start")
	}
	return c.loadOne(k, fn)
}

func (c *Cluster) loadOne(k kv.Key, fn *functor.Functor) error {
	// Loads are epoch-0 writes: route them at epoch 0 through the cluster's
	// own table rather than through some server's current-owner view (which
	// would chase post-load moves and used to reach into server internals).
	owner := int(c.table.Route(k, 0))
	srv := c.servers[owner]
	c.loadSeq[owner]++
	ts := tstamp.Make(0, c.loadSeq[owner], uint16(owner))
	rec, err := srv.store.Put(k, ts, fn)
	if err != nil {
		return fmt.Errorf("core: load %q: %w", k, err)
	}
	if srv.durability != nil {
		if err := srv.durability.LogInstall(ts, k, fn); err != nil {
			return fmt.Errorf("core: load %q: %w", k, err)
		}
	}
	if res, ok := FinalLoadResolution(fn); ok {
		rec.Resolve(res)
		srv.store.AdvanceWatermark(k, ts)
	}
	// Bulk loads seal immediately: epoch 0 commits at Start, and load
	// order is ascending per key, so each seal is a sorted append.
	srv.store.Seal(k, tstamp.End(0))
	return nil
}

// FinalLoadResolution resolves final f-types eagerly during bulk load
// (loads cannot be aborted by a second round, so eager resolution is safe
// and spares the first epoch a burst of on-demand computes).
func FinalLoadResolution(fn *functor.Functor) (*functor.Resolution, bool) {
	switch fn.Type {
	case functor.TypeValue:
		return functor.ValueResolution(fn.Arg), true
	case functor.TypeDeleted:
		return functor.DeleteResolution(), true
	default:
		return nil, false
	}
}

// Start commits epoch 0 and begins serving: with ManualEpochs the caller
// drives AdvanceEpoch; otherwise a timer advances epochs every
// EpochDuration.
func (c *Cluster) Start() error {
	if c.started {
		return fmt.Errorf("core: cluster already started")
	}
	c.started = true
	if c.cfg.ManualEpochs {
		return c.em.Start()
	}
	return c.em.Run()
}

// AdvanceEpoch performs one manual epoch switch.
func (c *Cluster) AdvanceEpoch() (tstamp.Epoch, error) { return c.em.Advance() }

// CurrentEpoch returns the granted epoch.
func (c *Cluster) CurrentEpoch() tstamp.Epoch { return c.em.Current() }

// EpochManager exposes the manager for harness instrumentation.
func (c *Cluster) EpochManager() *epoch.Manager { return c.em }

// Tracer returns the cluster's shared tracer (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Tracer { return c.cfg.Tracer }

// Traces snapshots the recent sampled traces (nil when tracing is off).
func (c *Cluster) Traces() []trace.Trace { return c.cfg.Tracer.Traces() }

// SlowTraces snapshots the slow-captured traces (nil when tracing is off).
func (c *Cluster) SlowTraces() []trace.Trace { return c.cfg.Tracer.SlowTraces() }

// Server returns node i, which acts as a front-end for clients.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// NumServers returns the cluster size.
func (c *Cluster) NumServers() int { return len(c.servers) }

// Stats aggregates all servers' counters (flat compatibility view).
func (c *Cluster) Stats() Stats {
	var total Stats
	for _, srv := range c.servers {
		total.Add(srv.Stats())
	}
	return total
}

// InstallQuantile merges every server's cumulative install-stage
// histogram (issue -> all functors installed) and returns the
// cluster-wide q-quantile. The scenario runner's trend rows report it.
func (c *Cluster) InstallQuantile(q float64) time.Duration {
	return c.installSnapshot().QuantileDuration(q)
}

// InstallMean is the cluster-wide mean install-stage latency.
func (c *Cluster) InstallMean() time.Duration {
	return time.Duration(c.installSnapshot().Mean())
}

func (c *Cluster) installSnapshot() metrics.HistogramSnapshot {
	var agg metrics.HistogramSnapshot
	for _, srv := range c.servers {
		snap := srv.stats.installHist.Snapshot()
		if agg.Counts == nil {
			agg = snap.Clone()
			continue
		}
		agg.Merge(snap)
	}
	return agg
}

// Metrics returns the cluster's self-describing metric snapshot: every
// server's families (one series per server, labeled server="i"), the
// epoch manager's switch-duration histogram and current-epoch gauge, and
// the transport's message/byte/latency counters. Families with the same
// name are merged; the result is sorted by name and safe to render with
// metrics.WriteText or to inspect programmatically.
func (c *Cluster) Metrics() []metrics.Family {
	groups := make([][]metrics.Family, 0, len(c.servers)+2)
	for _, srv := range c.servers {
		groups = append(groups, srv.MetricFamilies())
	}
	groups = append(groups, c.em.MetricFamilies())
	if inst, ok := c.net.(transport.Instrumented); ok {
		groups = append(groups, inst.NetMetrics().MetricFamilies())
	}
	if c.cfg.Skew != nil {
		groups = append(groups, c.cfg.Skew.MetricFamilies())
	}
	if c.reb != nil {
		groups = append(groups, c.reb.MetricFamilies())
	}
	return metrics.Merge(groups...)
}

// Skew returns the cluster's shared hot-key profiler (nil when disabled).
func (c *Cluster) Skew() *obs.Skew { return c.cfg.Skew }

// Rebalancer exposes the cluster's live-migration orchestrator.
func (c *Cluster) Rebalancer() *Rebalancer { return c.reb }

// PlacementTable exposes the cluster-level routing view (base placement
// plus the newest installed ownership map).
func (c *Cluster) PlacementTable() *placement.Table { return c.table }

// DrainProcessors blocks until every server's processor queue is empty.
// Tests and benchmarks use it to establish "all functors computed"
// barriers.
func (c *Cluster) DrainProcessors() {
	for _, srv := range c.servers {
		srv.proc.drainWait()
	}
}

// Close stops epochs, servers, and (if owned) the network.
func (c *Cluster) Close() error {
	if c.em != nil {
		c.em.Stop()
	}
	var firstErr error
	for _, srv := range c.servers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.ownNet && c.net != nil {
		if err := c.net.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- remote epoch manager ---------------------------------------------------

// RemoteParticipant relays the epoch protocol to a server over the
// transport; the EM process registers one per server (TCP deployment).
type RemoteParticipant struct {
	conn transport.Conn
	node transport.NodeID
	acks *ackTable
}

var _ epoch.Participant = (*RemoteParticipant)(nil)

// Grant implements epoch.Participant.
func (p *RemoteParticipant) Grant(e tstamp.Epoch) {
	_ = p.conn.Send(context.Background(), p.node, MsgGrant{E: e})
}

// Revoke implements epoch.Participant.
func (p *RemoteParticipant) Revoke(e tstamp.Epoch, ack func()) {
	p.acks.put(e, p.node, ack)
	_ = p.conn.Send(context.Background(), p.node, MsgRevoke{E: e})
}

// Committed implements epoch.Participant.
func (p *RemoteParticipant) Committed(e tstamp.Epoch) {
	_ = p.conn.Send(context.Background(), p.node, MsgCommitted{E: e})
}

type ackKey struct {
	e    tstamp.Epoch
	node transport.NodeID
}

type ackTable struct {
	mu   chan struct{} // 1-slot semaphore; avoids importing sync here
	acks map[ackKey]func()
}

func newAckTable() *ackTable {
	t := &ackTable{mu: make(chan struct{}, 1), acks: make(map[ackKey]func())}
	return t
}

func (t *ackTable) put(e tstamp.Epoch, node transport.NodeID, ack func()) {
	t.mu <- struct{}{}
	t.acks[ackKey{e: e, node: node}] = ack
	<-t.mu
}

func (t *ackTable) take(e tstamp.Epoch, node transport.NodeID) func() {
	t.mu <- struct{}{}
	ack := t.acks[ackKey{e: e, node: node}]
	delete(t.acks, ackKey{e: e, node: node})
	<-t.mu
	return ack
}

// EMNode hosts the epoch manager on its own transport node, driving remote
// servers through the message protocol. Used by cmd/aloha-em.
type EMNode struct {
	Manager *epoch.Manager
	conn    transport.Conn
	acks    *ackTable
}

// NewEMNode attaches the epoch manager to the network at nodeID and
// registers a remote participant for every server node listed.
func NewEMNode(net transport.Network, nodeID transport.NodeID, servers []transport.NodeID, cfg epoch.Config) (*EMNode, error) {
	n := &EMNode{Manager: epoch.New(cfg), acks: newAckTable()}
	conn, err := net.Node(nodeID, n.handle)
	if err != nil {
		return nil, err
	}
	n.conn = conn
	for _, sid := range servers {
		p := &RemoteParticipant{conn: conn, node: sid, acks: n.acks}
		if err := n.Manager.Register(p); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return n, nil
}

func (n *EMNode) handle(_ context.Context, from transport.NodeID, msg any) (any, error) {
	switch m := msg.(type) {
	case MsgRevokeAck:
		if fn := n.acks.take(m.E, from); fn != nil {
			fn()
		}
		return nil, nil
	case MsgPing:
		// Watchdog peer probe (see Server.ProbePeers): the EM reports the
		// epoch it currently grants in both positions.
		e := uint64(n.Manager.Current())
		return MsgPong{Node: int(n.conn.Local()), CommittedEpoch: e, CurrentEpoch: e}, nil
	default:
		return nil, fmt.Errorf("core: epoch manager: unexpected message %T", msg)
	}
}

// Close detaches the EM node.
func (n *EMNode) Close() error {
	n.Manager.Stop()
	return n.conn.Close()
}
