package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// funcRead aliases functor.Read locally for brevity.
type funcRead = functor.Read

// Shared immutable resolutions, allocated once.
var (
	_abortResolutionPeer     = functor.AbortResolution("aborted: peer partition failed phase 1")
	_abortResolutionDeferred = functor.AbortResolution("aborted: determinate functor aborted")
	_skipResolutionShared    = functor.SkipResolution()
)

// The compute call graph threads a context end to end: it carries the
// transaction's trace across the recursive resolution chain (and across
// nodes, via transport), and its cancellation is the server's lifetime —
// callers entering from a remote handler re-root on engineCtx first.

// getLocal is Algorithm 1's Get for keys owned by this partition: return
// the value of the latest version of k not exceeding v, computing functors
// on demand, skipping aborted versions, and treating tombstones as absent.
func (s *Server) getLocal(ctx context.Context, k kv.Key, v tstamp.Timestamp) (funcRead, error) {
	rec, ok := s.store.Latest(k, v)
	for ok {
		res := rec.Resolution()
		if res == nil {
			var err error
			res, err = s.resolveRecord(ctx, k, rec)
			if err != nil {
				return funcRead{}, err
			}
		}
		switch res.Kind {
		case functor.Resolved:
			return funcRead{Value: res.Value, Found: true, Version: rec.Version}, nil
		case functor.ResolvedDeleted:
			return funcRead{}, nil // ⊥: deleted key
		default:
			// ABORTED or SKIPPED: fall through to the next lower version
			// (Algorithm 1, lines 22-23).
			rec, ok = s.store.Latest(k, rec.Version.Prev())
		}
	}
	return funcRead{}, nil
}

// read returns the value of k at snapshot v, routing to the owning
// partition (local call, or a remote MsgRead through the per-owner
// combiner, which merges concurrent reads into MsgReadBatch RPCs).
func (s *Server) read(ctx context.Context, k kv.Key, v tstamp.Timestamp) (funcRead, error) {
	if owner := s.owner(k); owner != s.id {
		s.stats.remoteReads.Add(1)
		return s.comb.read(ctx, owner, k, v)
	}
	return s.localRead(ctx, k, v)
}

// localRead is the entry point for reads of locally-owned keys: it
// enforces the schema-level key-dependency rule (§IV-E) before running
// Algorithm 1's Get. Reads issued from inside functor computations also
// pass through here, so deferred writes are always settled before a
// dependent key's value is observed.
func (s *Server) localRead(ctx context.Context, k kv.Key, v tstamp.Timestamp) (funcRead, error) {
	// Hot-key profiling: disabled (nil) it costs nothing; enabled it is
	// one atomic add per access outside the sampling stride.
	s.skew.Observe(s.id, string(k))
	if s.depRule != nil {
		if det, ok := s.depRule(k); ok {
			if err := s.ensureUpTo(ctx, det, v); err != nil {
				return funcRead{}, err
			}
		}
	}
	return s.getLocal(ctx, k, v)
}

// ensureUpTo forces every functor of k at or below v to its final state —
// including synchronous distribution of deferred writes — and advances k's
// value watermark to v, locally or via MsgEnsureUpTo.
func (s *Server) ensureUpTo(ctx context.Context, k kv.Key, v tstamp.Timestamp) error {
	if owner := s.owner(k); owner != s.id {
		return s.comb.ensureUpTo(ctx, owner, k, v)
	}
	return s.computeKeyUpTo(ctx, k, v)
}

// computeKeyUpTo resolves every record of k at or below v in ascending
// order and raises the value watermark to v (Algorithm 1's Compute).
func (s *Server) computeKeyUpTo(ctx context.Context, k kv.Key, v tstamp.Timestamp) error {
	if s.store.Watermark(k) >= v {
		return nil
	}
	// As in resolveRecord: a forwarded ensure can land on a stale replica
	// after a second move — only the current owner may compute.
	if o := s.owner(k); o != s.id {
		return s.comb.ensureUpTo(ctx, o, k, v)
	}
	for _, rec := range s.store.Between(k, tstamp.Zero, v) {
		if rec.Final() {
			continue
		}
		if err := s.computeOne(ctx, k, rec); err != nil {
			return err
		}
	}
	s.store.AdvanceWatermark(k, v)
	return nil
}

// resolveRecord drives rec to its final state, first resolving every
// unresolved lower version of the same key iteratively (self-key dependency
// chains can be as long as an epoch's writes to a hot key, so recursion is
// not an option). Cross-key dependencies recurse through getLocal/read,
// bounded by the workload's dependency depth; version numbers strictly
// decrease across such hops, so the recursion terminates.
func (s *Server) resolveRecord(ctx context.Context, k kv.Key, rec *mvstore.Record) (*functor.Resolution, error) {
	// The key may have migrated away while this record sat in the
	// processor queue (or a forwarded read raced a second move). The
	// current owner is the one replica allowed to *compute* it: resolving
	// here could diverge — e.g. a second-round abort delivered only to the
	// new owner would make this stale copy commit a value the rest of the
	// cluster aborted. Fetch the authoritative resolution instead, which
	// also lets the retirement pass find the chain fully final later.
	if o := s.owner(k); o != s.id {
		res, err := s.comb.ensure(ctx, o, k, rec.Version)
		if err != nil {
			return nil, err
		}
		rec.Resolve(res)
		return rec.Resolution(), nil
	}
	view := s.store.View(k)
	// Locate rec in the snapshot.
	i := sort.Search(len(view), func(i int) bool { return view[i].Version >= rec.Version })
	if i == len(view) || view[i] != rec {
		// The snapshot raced with an insert of a lower version; rec must
		// still be present in a fresh view because records are never
		// removed while unresolved.
		view = s.store.View(k)
		i = sort.Search(len(view), func(i int) bool { return view[i].Version >= rec.Version })
		if i == len(view) || view[i] != rec {
			return nil, fmt.Errorf("core: record %q@%v vanished", k, rec.Version)
		}
	}
	// Walk down to the nearest resolved record, then compute forward.
	j := i - 1
	for j >= 0 && !view[j].Final() {
		j--
	}
	for idx := j + 1; idx <= i; idx++ {
		if view[idx].Final() {
			continue
		}
		if err := s.computeOne(ctx, k, view[idx]); err != nil {
			return nil, err
		}
	}
	res := rec.Resolution()
	if res == nil {
		return nil, fmt.Errorf("core: record %q@%v unresolved after compute", k, rec.Version)
	}
	return res, nil
}

// computeOne computes exactly one functor, assuming every lower version of
// its key is already final (the paper's Func procedure, Algorithm 1 lines
// 10-15). Concurrent invocations are safe: the resolution CAS ensures the
// functor is computed at most once and identical inputs yield identical
// results.
func (s *Server) computeOne(ctx context.Context, k kv.Key, rec *mvstore.Record) error {
	fn := rec.Functor
	var computeStart time.Time
	if !fn.Type.Final() {
		computeStart = time.Now()
		// Final f-types (VALUE/DELETE) resolve without computing; spans for
		// them would be pure noise, so only real computations trace.
		var span *trace.Span
		ctx, span = s.tr.Start(ctx, "functor.compute")
		span.SetAttr("key", string(k))
		defer span.End()
	}
	var res *functor.Resolution
	switch {
	case fn.Type.Final():
		res, _ = mvstore.FinalResolution(fn)

	case fn.Type.Arithmetic():
		prev, err := s.getLocal(ctx, k, rec.Version.Prev())
		if err != nil {
			return err
		}
		res, err = functor.EvalArithmetic(fn.Type, fn.Arg, prev)
		if err != nil {
			// A malformed argument is a logic error: the transaction
			// aborts, which ECC permits (unlike deterministic systems).
			res = functor.AbortResolution(err.Error())
		}

	case fn.Type == functor.TypeDepMarker:
		det := fn.DeterminateKey()
		detRes, err := s.ensureComputed(ctx, det, rec.Version)
		if err != nil {
			return err
		}
		res = markerResolution(detRes, k)

	case fn.Type == functor.TypeUser:
		var err error
		res, err = s.computeUser(ctx, k, rec)
		if err != nil {
			return err
		}

	default:
		res = functor.AbortResolution(fmt.Sprintf("unknown f-type %d", fn.Type))
	}
	rec.Resolve(res)
	s.stats.functorsComputed.Add(1)
	if !computeStart.IsZero() {
		// Figure-10 "processing" stage: the Func procedure's run time,
		// including its historical reads (leaf computations only; nested
		// chain resolution is accounted to its own records).
		s.stats.recordCompute(time.Since(computeStart))
	}
	// Distribute deferred writes for determinate functors, synchronously:
	// the caller may advance this key's watermark next, which per §IV-E
	// promises readers of the dependent keys that all deferred writes have
	// been applied. The resolution actually installed may differ from res
	// if a concurrent computation won the CAS; use the installed one so
	// all partitions agree.
	installed := rec.Resolution()
	if len(fn.DependentKeys) > 0 || len(installed.DependentWrites) > 0 {
		s.distributeDeferred(ctx, fn, rec.Version, installed)
	}
	s.notifyComputed()
	return nil
}

// readsPool recycles the read-set maps passed to user handlers: one map
// per computed functor is the engine's hottest allocation, and the Handler
// contract (the Context is valid only for the duration of the call) makes
// reuse safe.
var readsPool = sync.Pool{
	New: func() any { return make(map[kv.Key]funcRead, 8) },
}

// computeUser gathers the read set and invokes the user handler.
func (s *Server) computeUser(ctx context.Context, k kv.Key, rec *mvstore.Record) (*functor.Resolution, error) {
	fn := rec.Functor
	handler, ok := s.registry.Lookup(fn.Handler)
	if !ok {
		return functor.AbortResolution(fmt.Sprintf("unknown handler %q", fn.Handler)), nil
	}
	reads := readsPool.Get().(map[kv.Key]funcRead)
	defer func() {
		clear(reads)
		readsPool.Put(reads)
	}()
	// Implicit self-read: the functor's own key at the previous version is
	// always available to the handler (paper §IV-B: "the read set of some
	// functors comprises only the key to which the functor was written, in
	// which case the read set is omitted").
	self, err := s.getLocal(ctx, k, rec.Version.Prev())
	if err != nil {
		return nil, err
	}
	reads[k] = self
	// Resolve pushed and local keys inline; remote keys fetch in parallel
	// so a functor's computation costs one network round trip regardless
	// of read-set size (critical under scaled TPC-C, where a NewOrder's
	// item reads span many partitions, §V-B3).
	var remote []kv.Key
	for _, rk := range fn.ReadSet {
		if rk == k {
			continue
		}
		// Proactively pushed values avoid the remote read (§IV-B).
		if pushed, hit := s.takePushed(rec.Version, rk); hit {
			s.stats.pushHits.Add(1)
			reads[rk] = pushed
			continue
		}
		if s.owner(rk) == s.id {
			r, err := s.localRead(ctx, rk, rec.Version.Prev())
			if err != nil {
				return nil, err
			}
			reads[rk] = r
			continue
		}
		remote = append(remote, rk)
	}
	switch len(remote) {
	case 0:
	case 1:
		r, err := s.read(ctx, remote[0], rec.Version.Prev())
		if err != nil {
			return nil, err
		}
		reads[remote[0]] = r
	default:
		type fetched struct {
			key kv.Key
			r   funcRead
			err error
		}
		results := make(chan fetched, len(remote))
		for _, rk := range remote {
			go func(rk kv.Key) {
				r, err := s.read(ctx, rk, rec.Version.Prev())
				results <- fetched{key: rk, r: r, err: err}
			}(rk)
		}
		for range remote {
			f := <-results
			if f.err != nil {
				err = f.err
				continue
			}
			reads[f.key] = f.r
		}
		if err != nil {
			return nil, err
		}
	}
	res, err := handler(&functor.Context{
		Key:     k,
		Version: rec.Version,
		Arg:     fn.Arg,
		Reads:   reads,
	})
	if err != nil {
		res = functor.AbortResolution(err.Error())
	} else if res == nil {
		res = functor.AbortResolution(fmt.Sprintf("handler %q returned no resolution", fn.Handler))
	}
	return res, nil
}

// ensureComputed forces the functor at (k, version) — a determinate key —
// to its final state and returns its resolution, locally or via MsgEnsure.
func (s *Server) ensureComputed(ctx context.Context, k kv.Key, version tstamp.Timestamp) (*functor.Resolution, error) {
	if owner := s.owner(k); owner != s.id {
		return s.comb.ensure(ctx, owner, k, version)
	}
	rec, ok := s.store.At(k, version)
	if !ok {
		return nil, fmt.Errorf("core: determinate functor %q@%v not found", k, version)
	}
	return s.resolveRecord(ctx, k, rec)
}

// markerResolution derives a dependent-key marker's resolution from its
// determinate functor's resolution: the deferred write's value if present,
// ABORTED if the transaction aborted, SKIPPED otherwise.
func markerResolution(det *functor.Resolution, marker kv.Key) *functor.Resolution {
	if det.Kind == functor.ResolvedAborted {
		return _abortResolutionDeferred
	}
	for _, w := range det.DependentWrites {
		if w.Key == marker {
			return deferredResolution(w)
		}
	}
	return _skipResolutionShared
}

// deferredResolution converts one deferred write into a resolution.
func deferredResolution(w functor.DependentWrite) *functor.Resolution {
	if w.Delete {
		return functor.DeleteResolution()
	}
	return functor.ValueResolution(w.Value)
}

// distributeDeferred pushes a computed determinate functor's deferred
// writes (and marker dissolutions) to the partitions owning its dependent
// keys. Two flavours coexist (§IV-E): statically declared dependent keys
// (markers were installed in the write-only phase and must be resolved or
// dissolved) and dynamically named dependent keys (e.g. TPC-C order rows
// keyed by the freshly allocated order id; their records are created on
// application and guarded by the schema-level DependencyRule).
//
// Distribution is synchronous: the determinate key's watermark only
// advances after this returns, which is exactly the promise the
// DependencyRule relies on. All applications are idempotent CAS installs.
func (s *Server) distributeDeferred(ctx context.Context, fn *functor.Functor, version tstamp.Timestamp, res *functor.Resolution) {
	ctx, span := s.tr.Start(ctx, "deferred.apply")
	defer span.End()
	// A determinate functor touches a handful of owners and a dozen-odd
	// dependent keys; small slices with linear scans beat per-computation
	// map allocations on this hot path.
	type ownerMsg struct {
		owner int
		msg   *MsgApplyDeferred
	}
	var byOwner []ownerMsg
	msgFor := func(owner int) *MsgApplyDeferred {
		for i := range byOwner {
			if byOwner[i].owner == owner {
				return byOwner[i].msg
			}
		}
		m := &MsgApplyDeferred{Version: version, Aborted: res.Kind == functor.ResolvedAborted}
		byOwner = append(byOwner, ownerMsg{owner: owner, msg: m})
		return m
	}
	aborted := res.Kind == functor.ResolvedAborted
	if !aborted {
		for _, w := range res.DependentWrites {
			m := msgFor(s.owner(w.Key))
			if m.Writes == nil {
				m.Writes = make([]functor.DependentWrite, 0, len(res.DependentWrites))
			}
			m.Writes = append(m.Writes, w)
		}
	}
	for _, dk := range fn.DependentKeys {
		if !aborted {
			written := false
			for _, w := range res.DependentWrites {
				if w.Key == dk {
					written = true
					break
				}
			}
			if written {
				continue
			}
		}
		m := msgFor(s.owner(dk))
		m.Dissolve = append(m.Dissolve, dk)
	}
	for _, om := range byOwner {
		owner, m := om.owner, om.msg
		if owner == s.id {
			s.handleApplyDeferred(ctx, *m)
			continue
		}
		if _, err := s.conn.Call(ctx, transport.NodeID(owner), *m); err != nil {
			// The partition is unreachable (shutdown or crash). Readers of
			// statically-declared markers still resolve on demand via
			// MsgEnsure; dynamically-named rows are re-created when the
			// dependency rule re-forces this computation after recovery.
			continue
		}
	}
}
