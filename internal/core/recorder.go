package core

import (
	"math"
	"runtime"
	rm "runtime/metrics"
	"time"

	"alohadb/internal/obs/journal"
	"alohadb/internal/obs/tsdb"
)

// This file is the server side of the metrics flight recorder
// (internal/obs/tsdb): the curated source set every deployment records —
// commit/abort throughput, the abort-reason taxonomy, per-stage epoch
// close-out quantiles from the journal, visibility lag, stall count,
// send-queue depth, WAL fsync age, and runtime health — each with the
// anomaly thresholds the soak gates care about.

// SetMaxQueueDepthSource installs an allocation-free callback reporting
// the deepest outbound transport send queue, sampled by the flight
// recorder every tick (the TCP network exposes one; the in-memory mesh
// has no queues). Set before the recorder starts.
func (s *Server) SetMaxQueueDepthSource(fn func() int) {
	s.maxQueueDepth = fn
}

// runtimeSampler reads the runtime's heap and GC telemetry into a
// preallocated sample buffer, one runtime/metrics read per tick: the
// heap source refreshes the buffer, the gc source (registered after it,
// sampled in order within the same tick) reuses it.
type runtimeSampler struct {
	samples [2]rm.Sample
}

func newRuntimeSampler() *runtimeSampler {
	rs := &runtimeSampler{}
	rs.samples[0].Name = "/memory/classes/heap/objects:bytes"
	rs.samples[1].Name = "/gc/cycles/total:gc-cycles"
	return rs
}

func (rs *runtimeSampler) heap() float64 {
	rm.Read(rs.samples[:])
	if rs.samples[0].Value.Kind() != rm.KindUint64 {
		return math.NaN()
	}
	return float64(rs.samples[0].Value.Uint64())
}

func (rs *runtimeSampler) gcCycles() float64 {
	if rs.samples[1].Value.Kind() != rm.KindUint64 {
		return 0
	}
	return float64(rs.samples[1].Value.Uint64())
}

// NewRecorder builds this server's flight recorder: the caller sets the
// cadence (Interval/Retention/Detector) and owns Start/Stop; the curated
// sources, the committed-epoch sample clock, and the journal gating
// cross-link are wired here. Extra sources (e.g. the cluster-singleton
// migration gauge) are appended after the curated set. Wire the watchdog
// and queue-depth source before starting the recorder — their sources
// read the fields the setters fill.
func (s *Server) NewRecorder(cfg tsdb.Config, extra ...tsdb.Source) *tsdb.Recorder {
	cfg.Server = s.id
	if cfg.Epoch == nil {
		cfg.Epoch = func() uint64 { return uint64(s.CommittedEpoch()) }
	}
	if cfg.Gating == nil && s.journal != nil {
		cfg.Gating = s.journal.GatingBetween
	}

	src := []tsdb.Source{
		{Name: "commit_rate", Unit: "txn/s", Kind: tsdb.KindRate,
			Value:  func() float64 { return float64(s.stats.txnsCommitted.Load()) },
			Detect: tsdb.Detect{DropFrac: 0.3, MinBaseline: 20}},
		{Name: "abort_rate", Unit: "txn/s", Kind: tsdb.KindRate,
			Value:  func() float64 { return float64(s.stats.txnsAborted.Load()) },
			Detect: tsdb.Detect{RiseFactor: 3, MinBaseline: 5}},
		{Name: "install_p50", Unit: "seconds", Kind: tsdb.KindQuantile,
			Hist: s.stats.installHist, Q: 0.5, Scale: 1e-9},
		{Name: "install_p99", Unit: "seconds", Kind: tsdb.KindQuantile,
			Hist: s.stats.installHist, Q: 0.99, Scale: 1e-9,
			Detect: tsdb.Detect{RiseFactor: 2.5, MinBaseline: 0.002}},
		{Name: "visibility_lag_epochs", Unit: "epochs", Kind: tsdb.KindGauge,
			Value:  func() float64 { return float64(s.gen.Epoch()) - float64(s.CommittedEpoch()) },
			Detect: tsdb.Detect{RiseFactor: 3, MinBaseline: 3}},
		{Name: "stalls", Unit: "stalls/s", Kind: tsdb.KindRate,
			Value:  func() float64 { return float64(s.wd.Stalls()) },
			Detect: tsdb.Detect{Onset: true}},
	}
	for i := 0; i < numAbortReasons; i++ {
		i := i
		src = append(src, tsdb.Source{
			Name: "abort_" + AbortReasons[i], Unit: "txn/s", Kind: tsdb.KindRate,
			Value: func() float64 { return float64(s.stats.abortReasons[i].Load()) },
		})
	}
	// Per-stage close-out quantiles: the per-tick windowed view of the
	// journal's cumulative stage histograms, the series that lets a p99
	// excursion be seen (and blamed) minutes later.
	for stage := 0; stage < len(journal.StageNames); stage++ {
		h := s.journal.StageHist(stage)
		if h == nil {
			continue
		}
		name := "stage_" + journal.StageNames[stage]
		src = append(src,
			tsdb.Source{Name: name + "_p50", Unit: "seconds", Kind: tsdb.KindQuantile,
				Hist: h, Q: 0.5, Scale: 1e-9},
			tsdb.Source{Name: name + "_p99", Unit: "seconds", Kind: tsdb.KindQuantile,
				Hist: h, Q: 0.99, Scale: 1e-9,
				Detect: tsdb.Detect{RiseFactor: 3, MinBaseline: 0.001}},
		)
	}
	if s.maxQueueDepth != nil {
		fn := s.maxQueueDepth
		src = append(src, tsdb.Source{
			Name: "send_queue_max", Unit: "msgs", Kind: tsdb.KindGauge,
			Value:  func() float64 { return float64(fn()) },
			Detect: tsdb.Detect{RiseFactor: 4, MinBaseline: 32},
		})
	}
	if hook, ok := s.durability.(interface{ LastSyncAge() (time.Duration, bool) }); ok {
		src = append(src, tsdb.Source{
			Name: "wal_fsync_age", Unit: "seconds", Kind: tsdb.KindGauge,
			Value: func() float64 {
				age, ok := hook.LastSyncAge()
				if !ok {
					return math.NaN()
				}
				return age.Seconds()
			},
		})
	}
	rs := newRuntimeSampler()
	src = append(src,
		tsdb.Source{Name: "heap_bytes", Unit: "bytes", Kind: tsdb.KindGauge, Value: rs.heap},
		tsdb.Source{Name: "gc_rate", Unit: "cycles/s", Kind: tsdb.KindRate, Value: rs.gcCycles},
		tsdb.Source{Name: "goroutines", Unit: "goroutines", Kind: tsdb.KindGauge,
			Value: func() float64 { return float64(runtime.NumGoroutine()) }},
	)
	cfg.Sources = append(src, extra...)
	return tsdb.New(cfg)
}

// MigrationSource builds the cluster-singleton migration-inflight gauge,
// attached to one server's recorder (convention: server 0) so cluster
// rings do not double-count it. Safe on a nil rebalancer.
func (c *Cluster) MigrationSource() tsdb.Source {
	reb := c.reb
	return tsdb.Source{
		Name: "migration_inflight", Unit: "moves", Kind: tsdb.KindGauge,
		Value: func() float64 { return float64(reb.Inflight()) },
	}
}
