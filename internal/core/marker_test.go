package core

import (
	"context"
	"strings"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
)

// markerCluster builds a two-partition cluster with no asynchronous
// processors, so dependent-key markers can only resolve through the
// on-demand path: read marker -> MsgEnsure to the determinate partition ->
// derive the marker's resolution from the determinate functor's.
func markerCluster(t *testing.T, handler string, h functor.Handler) *Cluster {
	t.Helper()
	reg := functor.NewRegistry()
	reg.MustRegister(handler, h)
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     reg,
		Workers:      -1,
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if strings.HasPrefix(string(k), "dep:") {
				return 1
			}
			return 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestMarkerOnDemandRemoteResolution: reading a marker forces the remote
// determinate functor's computation and adopts its deferred write.
func TestMarkerOnDemandRemoteResolution(t *testing.T) {
	c := markerCluster(t, "det", func(ctx *functor.Context) (*functor.Resolution, error) {
		return &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.EncodeInt64(1),
			DependentWrites: []functor.DependentWrite{
				{Key: "dep:row", Value: kv.Value("written")},
			},
		}, nil
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "det:seq", Functor: functor.User("det", nil, nil,
			functor.WithDependentKeys("dep:row"))},
	}})
	mustAdvance(t, c)
	// The marker lives on partition 1; its only resolution path is the
	// read-triggered MsgEnsure round trip to partition 0.
	v, found, err := c.Server(1).GetCommitted(ctx, "dep:row")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "written" {
		t.Errorf("dep:row = %q found=%v", v, found)
	}
}

// TestMarkerDissolvesWhenNotWritten: the determinate functor declares the
// dependent key but chooses not to write it; the marker must dissolve and
// the read fall through.
func TestMarkerDissolvesWhenNotWritten(t *testing.T) {
	c := markerCluster(t, "det", func(ctx *functor.Context) (*functor.Resolution, error) {
		return functor.ValueResolution(kv.EncodeInt64(1)), nil // no deferred writes
	})
	if err := c.Load([]kv.Pair{{Key: "dep:row", Value: kv.Value("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "det:seq", Functor: functor.User("det", nil, nil,
			functor.WithDependentKeys("dep:row"))},
	}})
	mustAdvance(t, c)
	v, found, err := c.Server(0).GetCommitted(context.Background(), "dep:row")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "old" {
		t.Errorf("dep:row = %q found=%v, want the pre-existing value", v, found)
	}
}

// TestMarkerAbortsWithDeterminate: when the determinate functor aborts,
// the marker resolves ABORTED and the read falls through.
func TestMarkerAbortsWithDeterminate(t *testing.T) {
	c := markerCluster(t, "det", func(ctx *functor.Context) (*functor.Resolution, error) {
		return functor.AbortResolution("constraint violated"), nil
	})
	if err := c.Load([]kv.Pair{{Key: "dep:row", Value: kv.Value("survivor")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "det:seq", Functor: functor.User("det", nil, nil,
			functor.WithDependentKeys("dep:row"))},
	}})
	mustAdvance(t, c)
	v, found, err := c.Server(1).GetCommitted(context.Background(), "dep:row")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "survivor" {
		t.Errorf("dep:row = %q found=%v, want survivor", v, found)
	}
	// The determinate key's own version must also read as aborted
	// (skipped).
	if _, found, _ := c.Server(0).GetCommitted(context.Background(), "det:seq"); found {
		t.Error("aborted determinate version visible")
	}
}

// TestMarkerDeferredDelete: a deferred write can be a tombstone.
func TestMarkerDeferredDelete(t *testing.T) {
	c := markerCluster(t, "det", func(ctx *functor.Context) (*functor.Resolution, error) {
		return &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.EncodeInt64(1),
			DependentWrites: []functor.DependentWrite{
				{Key: "dep:row", Delete: true},
			},
		}, nil
	})
	if err := c.Load([]kv.Pair{{Key: "dep:row", Value: kv.Value("doomed")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "det:seq", Functor: functor.User("det", nil, nil,
			functor.WithDependentKeys("dep:row"))},
	}})
	mustAdvance(t, c)
	if _, found, err := c.Server(0).GetCommitted(context.Background(), "dep:row"); err != nil || found {
		t.Errorf("dep:row found=%v err=%v, want deleted", found, err)
	}
}

// TestUnknownHandlerAborts: a functor naming an unregistered handler
// aborts rather than wedging the chain.
func TestUnknownHandlerAborts(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.Value("base")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "k", Functor: functor.User("never-registered", nil, nil)},
	}})
	mustAdvance(t, c)
	committed, reason, err := h.Await(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("unknown handler should abort")
	}
	if !strings.Contains(reason, "unknown handler") {
		t.Errorf("reason = %q", reason)
	}
	// The chain stays readable below the aborted version.
	v, found, err := c.Server(0).GetCommitted(context.Background(), "k")
	if err != nil || !found || string(v) != "base" {
		t.Errorf("k = %q found=%v err=%v", v, found, err)
	}
}

// TestHandlerReturningNilAborts: a handler returning (nil, nil) is a logic
// error that aborts the transaction.
func TestHandlerReturningNilAborts(t *testing.T) {
	reg := functor.NewRegistry()
	reg.MustRegister("broken", func(*functor.Context) (*functor.Resolution, error) {
		return nil, nil
	})
	c, err := NewCluster(ClusterConfig{Servers: 1, ManualEpochs: true, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "k", Functor: functor.User("broken", nil, nil)},
	}})
	mustAdvance(t, c)
	committed, reason, err := h.Await(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed || !strings.Contains(reason, "no resolution") {
		t.Errorf("committed=%v reason=%q", committed, reason)
	}
}

// TestLoadFunctorSeedsNonValueState: pre-seeding an arithmetic functor at
// epoch 0 computes on first read.
func TestLoadFunctorSeedsNonValueState(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.LoadFunctor("ctr", functor.Add(41)); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Add(1)}}})
	mustAdvance(t, c)
	if n, ok := readInt(t, c, 0, "ctr"); !ok || n != 42 {
		t.Errorf("ctr = %d ok=%v, want 42", n, ok)
	}
}
