package core

import (
	"context"
	"fmt"
	"sync"

	"alohadb/internal/kv"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// This file adds two operational features on top of the paper's design:
// version retention (garbage collection of old final versions, which any
// production multi-version store needs) and snapshot prefix scans (the
// paper motivates historical read-only transactions for analytics, §IV-A;
// scans let them enumerate keys without knowing them ahead of time).

// SetRetention configures how many epochs of history every server keeps;
// each epoch commit then compacts versions older than the horizon. Zero
// (the default) keeps everything.
//
// Compaction never touches the newest final version below the horizon, so
// reads at any snapshot within the retained window — and the latest state
// as of any older snapshot — stay servable; truly historical reads below
// the horizon observe the collapsed value, the same contract as
// checkpoint recovery.
func (c *Cluster) SetRetention(epochs tstamp.Epoch) {
	for _, srv := range c.servers {
		srv.retention.Store(uint32(epochs))
	}
}

// maybeCompact runs on every epoch commit and compacts the store when a
// retention horizon is configured.
func (s *Server) maybeCompact(committed tstamp.Epoch) {
	retention := tstamp.Epoch(s.retention.Load())
	if retention == 0 || committed <= retention {
		return
	}
	horizon := tstamp.Start(committed - retention)
	removed := s.store.Compact(horizon)
	if removed > 0 {
		s.stats.versionsCompacted.Add(uint64(removed))
	}
}

// VisibleBound returns the exclusive upper bound of committed, readable
// versions (the end of the last committed epoch).
func (s *Server) VisibleBound() tstamp.Timestamp { return s.visibleBound() }

// SettleUpTo forces every functor at or below bound on this partition to
// its final state (checkpointing requires a fully settled prefix).
func (s *Server) SettleUpTo(bound tstamp.Timestamp) error {
	var err error
	s.store.RangeKeys(func(k kv.Key) bool {
		if e := s.computeKeyUpTo(s.ctx, k, bound); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// ScanPrefix reads every key with the given prefix at one consistent
// snapshot, assembling a serializable read-only analytic transaction
// across all partitions. The snapshot may be historical (served
// immediately) or in the current epoch (waits for its commit).
//
// Scans enumerate keys that have at least one installed record. Rows
// created dynamically by determinate functors (deferred writes to keys
// named during computation, §IV-E) become enumerable once the determinate
// functor computes — which the asynchronous processors do shortly after
// each epoch commits; a caller needing a hard guarantee settles the
// determinate keys first (SettleUpTo) or reads them through the
// dependency rule.
func (s *Server) ScanPrefix(ctx context.Context, prefix kv.Key, snapshot tstamp.Timestamp) (map[kv.Key]kv.Value, error) {
	if err := s.waitVisible(ctx, snapshot); err != nil {
		return nil, err
	}
	// One scan RPC per partition, in parallel: a scan's cost is dominated
	// by the slowest partition (each reads through the full Algorithm-1
	// path), so fanning out sequentially would sum those latencies.
	resps := make([]MsgScanResp, s.n)
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for owner := 0; owner < s.n; owner++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			if owner == s.id {
				resps[owner], errs[owner] = s.handleScan(ctx, MsgScan{Prefix: prefix, Snapshot: snapshot})
				return
			}
			raw, err := s.conn.Call(ctx, transport.NodeID(owner), MsgScan{Prefix: prefix, Snapshot: snapshot})
			if err != nil {
				errs[owner] = fmt.Errorf("core: scan partition %d: %w", owner, err)
				return
			}
			resp, ok := raw.(MsgScanResp)
			if !ok {
				errs[owner] = fmt.Errorf("core: scan: unexpected response %T", raw)
				return
			}
			resps[owner] = resp
		}(owner)
	}
	wg.Wait()
	out := make(map[kv.Key]kv.Value)
	for owner := 0; owner < s.n; owner++ {
		if errs[owner] != nil {
			return nil, errs[owner]
		}
		for _, p := range resps[owner].Pairs {
			out[p.Key] = p.Value
		}
	}
	return out, nil
}

// handleScan serves one partition's slice of a prefix scan.
func (s *Server) handleScan(ctx context.Context, m MsgScan) (MsgScanResp, error) {
	var (
		resp    MsgScanResp
		scanErr error
	)
	// Remote scans arrive while the Committed broadcast may still be in
	// flight toward this partition; serve only sealed snapshots.
	if err := s.waitVisible(ctx, m.Snapshot); err != nil {
		return MsgScanResp{}, err
	}
	// Range over keys; read each at the snapshot through the full
	// Algorithm-1 path (computes functors on demand, honors dependency
	// rules, skips aborted versions).
	s.store.RangeKeys(func(k kv.Key) bool {
		if len(k) < len(m.Prefix) || k[:len(m.Prefix)] != m.Prefix {
			return true
		}
		// A migrated-away key's not-yet-retired replica still lives in this
		// store; its current owner reports it (the scan fans out to every
		// partition), so listing it here would duplicate — and possibly
		// staleify — the result.
		if s.owner(k) != s.id {
			return true
		}
		r, err := s.localRead(ctx, k, m.Snapshot)
		if err != nil {
			scanErr = err
			return false
		}
		if r.Found {
			resp.Pairs = append(resp.Pairs, kv.Pair{Key: k, Value: r.Value})
		}
		return true
	})
	if scanErr != nil {
		return MsgScanResp{}, scanErr
	}
	return resp, nil
}
