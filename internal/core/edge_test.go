package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/tstamp"
)

// TestStragglerModeSubmissions verifies §III-C explicitly: transactions
// submitted after an epoch's revocation (while no authorization is held)
// draw timestamps from the next epoch and commit with it.
func TestStragglerModeSubmissions(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	srv := c.Server(0)
	ctx := context.Background()

	// Simulate the revocation window: the EM revoked epoch 1 but has not
	// granted epoch 2 yet.
	acked := make(chan struct{})
	srv.Revoke(1, func() { close(acked) })
	<-acked

	// A submission in the window must succeed without authorization,
	// stamped into epoch 2.
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "straggler", Functor: functor.Value(kv.Value("no-auth"))},
	}})
	if got := h.Version().Epoch(); got != 2 {
		t.Fatalf("straggler txn epoch = %d, want 2", got)
	}
	// Let the epoch manager finish switching to 2 and then past it, so the
	// straggler's epoch commits.
	mustAdvance(t, c) // commit 1, grant 2
	mustAdvance(t, c) // commit 2 (the straggler's epoch), grant 3
	v, found, err := srv.GetCommitted(ctx, "straggler")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "no-auth" {
		t.Errorf("straggler read = %q found=%v", v, found)
	}
}

// TestAbortChainFallthrough: a reader must skip arbitrarily long runs of
// aborted versions (Algorithm 1 lines 22-23 applied repeatedly).
func TestAbortChainFallthrough(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.Value("base")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Five consecutive failed transactions (phase-1 aborts).
	for i := 0; i < 5; i++ {
		h := mustSubmit(t, c, 0, Txn{
			Writes:   []Write{{Key: "k", Functor: functor.Value(kv.Value("poison"))}},
			Requires: []kv.Key{"missing"},
		})
		if aborted, _ := h.Installed(); !aborted {
			t.Fatal("expected abort")
		}
	}
	mustAdvance(t, c)
	v, found, err := c.Server(0).GetCommitted(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "base" {
		t.Errorf("read through abort chain = %q found=%v, want base", v, found)
	}
}

// TestConditionalAbortAgreement: every functor of a compute-phase-aborted
// transaction resolves ABORTED (§IV-C: the decision keys are in every
// functor's read set, so all functors agree).
func TestConditionalAbortAgreement(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	if err := c.Load([]kv.Pair{
		{Key: "src", Value: kv.EncodeInt64(10)},
		{Key: "dst", Value: kv.EncodeInt64(0)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "src", Functor: functor.User("xfer-out", kv.EncodeInt64(100), nil)},
		{Key: "dst", Functor: functor.User("xfer-in", xferInArg("src", 100), []kv.Key{"src"})},
	}})
	mustAdvance(t, c)
	if committed, _, err := h.Await(context.Background()); err != nil || committed {
		t.Fatalf("committed=%v err=%v, want abort", committed, err)
	}
	c.DrainProcessors()
	for _, key := range []kv.Key{"src", "dst"} {
		owner := c.Server(0).owner(key)
		rec, ok := c.Server(owner).Store().At(key, h.Version())
		if !ok {
			t.Fatalf("%s record missing", key)
		}
		res := rec.Resolution()
		if res == nil || res.Kind != functor.ResolvedAborted {
			t.Errorf("%s resolution = %v, want ABORTED (functors must agree)", key, res)
		}
	}
}

// TestPushCacheEviction: stale pushed values are dropped two epochs later.
func TestPushCacheEviction(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	srv := c.Server(0)
	ts1 := tstamp.Make(1, 1, 0)
	srv.pushValue(ts1, "k", funcRead{Found: true, Value: kv.Value("v")})
	if _, ok := srv.takePushed(ts1, "k"); !ok {
		t.Fatal("pushed value missing")
	}
	srv.pushValue(ts1, "k2", funcRead{Found: true})
	mustAdvance(t, c) // commit epoch 1 -> granted 2
	mustAdvance(t, c) // commit epoch 2 -> granted 3
	mustAdvance(t, c) // commit epoch 3: evicts versions below epoch 2
	if _, ok := srv.takePushed(ts1, "k2"); ok {
		t.Error("stale pushed value survived eviction")
	}
}

// TestCompactionPreservesReads: compaction below the watermark keeps the
// latest value readable while dropping history.
func TestCompactionPreservesReads(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.EncodeInt64(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var last *TxnHandle
	for i := 0; i < 10; i++ {
		last = mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Add(1)}}})
	}
	mustAdvance(t, c)
	if _, _, err := last.Await(ctx); err != nil {
		t.Fatal(err)
	}
	c.DrainProcessors()
	store := c.Server(0).Store()
	before := len(store.View("k"))
	removed := store.Compact(last.Version())
	if removed == 0 {
		t.Errorf("compaction removed nothing (chain length %d)", before)
	}
	if n, ok := readInt(t, c, 0, "k"); !ok || n != 10 {
		t.Errorf("k after compaction = %d ok=%v, want 10", n, ok)
	}
}

// TestConcurrentFETimestampsUnique: concurrent submissions through every
// front-end produce globally unique versions.
func TestConcurrentFETimestampsUnique(t *testing.T) {
	c := newTestCluster(t, 4, 2)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var (
		mu       sync.Mutex
		versions = make(map[tstamp.Timestamp]bool)
		wg       sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h, err := c.Server(w%4).Submit(ctx, Txn{Writes: []Write{
					{Key: kv.Key(fmt.Sprintf("k%d", i%7)), Functor: functor.Add(1)},
				}})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				if versions[h.Version()] {
					t.Errorf("duplicate version %v", h.Version())
				}
				versions[h.Version()] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(versions) != 400 {
		t.Errorf("unique versions = %d, want 400", len(versions))
	}
}

// TestSubmitBeforeStart fails cleanly.
func TestSubmitBeforeStart(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	_, err := c.Server(0).Submit(context.Background(), Txn{Writes: []Write{
		{Key: "k", Functor: functor.Value(nil)},
	}})
	if err == nil || !strings.Contains(err.Error(), "not started") {
		t.Errorf("err = %v, want not-started", err)
	}
	if _, _, err := c.Server(0).GetCommitted(context.Background(), "k"); err == nil {
		t.Error("GetCommitted before start should fail")
	}
}

// TestRecipientPushHit: with asynchronous processing enabled, the
// recipient-set push populates the peer's cache and its functor consumes
// the pushed value instead of issuing a remote read.
func TestRecipientPushHit(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     testRegistry(t),
		Workers:      1,
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if k == "A" {
				return 0
			}
			return 1
		}),
		// Delay makes the push measurably useful and gives the processor
		// a stable ordering: A's partition computes and pushes, then B's
		// partition computes with the pushed value.
		NetLatency: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{
		{Key: "A", Value: kv.EncodeInt64(1000)},
		{Key: "B", Value: kv.EncodeInt64(0)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var handles []*TxnHandle
	for i := 0; i < 8; i++ {
		h := mustSubmit(t, c, 0, Txn{Writes: []Write{
			{Key: "A", Functor: functor.User("xfer-out", kv.EncodeInt64(10), nil,
				functor.WithRecipients("B"))},
			{Key: "B", Functor: functor.User("xfer-in", xferInArg("A", 10), []kv.Key{"A"})},
		}})
		handles = append(handles, h)
	}
	mustAdvance(t, c)
	for _, h := range handles {
		if committed, reason, err := h.Await(ctx); err != nil || !committed {
			t.Fatalf("committed=%v reason=%q err=%v", committed, reason, err)
		}
	}
	stats := c.Stats()
	if stats.PushesSent == 0 {
		t.Error("no pushes were sent")
	}
	if n, ok := readInt(t, c, 0, "A"); !ok || n != 920 {
		t.Errorf("A = %d, want 920", n)
	}
	if n, ok := readInt(t, c, 1, "B"); !ok || n != 80 {
		t.Errorf("B = %d, want 80", n)
	}
}

// TestManyEpochsStability: hundreds of manual epoch switches with sparse
// traffic keep state consistent and goroutine-stable.
func TestManyEpochsStability(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	if err := c.Load([]kv.Pair{{Key: "ctr", Value: kv.EncodeInt64(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if i%10 == 0 {
			mustSubmit(t, c, i%2, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Add(1)}}})
		}
		mustAdvance(t, c)
	}
	if n, ok := readInt(t, c, 0, "ctr"); !ok || n != 30 {
		t.Errorf("ctr = %d ok=%v, want 30", n, ok)
	}
	if got := c.CurrentEpoch(); got != 301 {
		t.Errorf("epoch = %d, want 301", got)
	}
}
