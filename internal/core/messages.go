// Package core implements the ALOHA-DB transaction processing engine: the
// combined front-end/back-end server (paper §III), the functor computing
// layer (paper §IV, Algorithm 1), and the cluster assembly that wires
// servers to the epoch manager over a transport.
package core

import (
	"sync"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/placement"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// Write is one key-functor pair of a transaction's write set.
type Write struct {
	Key     kv.Key
	Functor *functor.Functor
}

// MsgInstall carries the write-only phase of one or more transactions to a
// single partition. Front-ends batch many transactions per message, the
// paper's convention for an apples-to-apples RPC comparison with Calvin.
type MsgInstall struct {
	Txns []InstallTxn
	// Placement, when set, is the sender's newest ownership map; the
	// receiver installs it if newer than its own. WrongOwner retries carry
	// the map they learned so the receiving server converges too.
	Placement *placement.Map
}

// InstallTxn is the slice of one transaction destined for one partition.
type InstallTxn struct {
	// Version is the transaction timestamp; every functor of the
	// transaction shares it.
	Version tstamp.Timestamp
	// Writes are the key-functor pairs stored on this partition.
	Writes []Write
	// Requires lists keys that must exist on this partition for the
	// install to succeed (phase-1 constraint check; e.g. TPC-C NewOrder
	// referencing an unknown item aborts here and triggers the
	// coordinator's second round).
	Requires []kv.Key
}

// InstallResult reports one transaction's install outcome on one partition.
type InstallResult struct {
	OK  bool
	Err string
	// WrongOwner marks a retriable rejection: some key of the slice is no
	// longer (or not yet) owned by this partition under its newer ownership
	// map — the coordinator routed with a stale generation. The response's
	// Placement carries the rejecting server's map; the coordinator installs
	// it and resends the slice to the owners the new map names, with the
	// same timestamp.
	WrongOwner bool
}

// MsgInstallResp answers MsgInstall, aligned index-wise with Txns.
type MsgInstallResp struct {
	Results []InstallResult
	// Placement is the responder's newest ownership map when any result was
	// rejected WrongOwner (nil otherwise), so retries route correctly.
	Placement *placement.Map
}

// MsgAbort is the coordinator's second round: mark the listed keys'
// versions ABORTED on this partition because another partition failed the
// transaction's phase-1 check.
type MsgAbort struct {
	Version tstamp.Timestamp
	Keys    []kv.Key
	// Fwd marks a single-hop forward from a server whose ownership map says
	// the keys moved away; the receiver applies it locally (stashing keys
	// whose migrated records have not arrived yet) instead of forwarding
	// again, bounding the hop count during a map race.
	Fwd bool
}

// MsgRead asks the key's owner for the latest value at or below Version
// (Algorithm 1's Get; computes functors on demand).
type MsgRead struct {
	Key     kv.Key
	Version tstamp.Timestamp
	// Fwd marks a single-hop ownership forward; the receiver serves locally.
	Fwd bool
}

// MsgReadResp answers MsgRead.
type MsgReadResp struct {
	Value kv.Value
	Found bool
	// Version is the version of the record that produced Value; optimistic
	// validation compares it against the transaction's snapshot.
	Version tstamp.Timestamp
}

// MsgReadBatch carries several MsgRead requests for keys of one owner in a
// single RPC. Front-ends combine concurrent functor computations' remote
// reads per owner (the same batching convention §V applies to installs:
// one message per involved partition), so a burst of single-key reads
// costs one round trip instead of one per key.
type MsgReadBatch struct {
	Reads []MsgRead
}

// ReadResult is one read's outcome inside MsgReadBatchResp; Err is set
// instead of failing the whole batch so one bad key cannot poison its
// neighbors' reads.
type ReadResult struct {
	Resp MsgReadResp
	Err  string
}

// MsgReadBatchResp answers MsgReadBatch, aligned index-wise with Reads.
type MsgReadBatchResp struct {
	Results []ReadResult
}

// MsgPush proactively delivers the latest value of Key strictly below
// Version to a partition whose functor(s) of the same transaction read
// Key (paper §IV-B recipient sets).
type MsgPush struct {
	Version tstamp.Timestamp
	Key     kv.Key
	Value   kv.Value
	Found   bool
	// ValueVersion is the version of the record that produced Value, so
	// consumers (e.g. optimistic validation) see the same metadata a
	// direct read would return.
	ValueVersion tstamp.Timestamp
}

// MsgEnsure asks the determinate key's owner to compute its functor at
// Version and return the resolution, so the caller can resolve a
// dependent-key marker (paper §IV-E).
type MsgEnsure struct {
	Key     kv.Key
	Version tstamp.Timestamp
	// Fwd marks a single-hop ownership forward; the receiver serves locally.
	Fwd bool
}

// MsgEnsureResp carries the determinate functor's resolution.
type MsgEnsureResp struct {
	Resolution *functor.Resolution
}

// MsgEnsureUpTo asks the key's owner to compute every functor of Key at or
// below Version — including synchronously distributing any deferred writes
// — and advance the key's value watermark to Version before answering.
// This realizes §IV-E's rule that a dependent key may be read at ts only
// once the determinate key's watermark is at least ts.
type MsgEnsureUpTo struct {
	Key     kv.Key
	Version tstamp.Timestamp
	// Fwd marks a single-hop ownership forward; the receiver serves locally.
	Fwd bool
}

// MsgEnsureUpToResp acknowledges MsgEnsureUpTo.
type MsgEnsureUpToResp struct{}

// EnsureReq is one ensure inside MsgEnsureBatch: UpTo selects the
// MsgEnsureUpTo semantics (compute everything at or below Version and
// advance the watermark, ack only), otherwise the MsgEnsure semantics
// (compute the functor at exactly Version and return its resolution).
type EnsureReq struct {
	Key     kv.Key
	Version tstamp.Timestamp
	UpTo    bool
	// Fwd marks a single-hop ownership forward; the receiver serves locally.
	Fwd bool
}

// MsgEnsureBatch combines several ensure requests for one owner in a
// single RPC, mirroring MsgReadBatch for the dependent-key paths (§IV-E).
type MsgEnsureBatch struct {
	Reqs []EnsureReq
}

// EnsureResult is one ensure's outcome inside MsgEnsureBatchResp.
// Resolution is nil for UpTo requests (they only acknowledge).
type EnsureResult struct {
	Resolution *functor.Resolution
	Err        string
}

// MsgEnsureBatchResp answers MsgEnsureBatch, aligned index-wise with Reqs.
type MsgEnsureBatchResp struct {
	Results []EnsureResult
}

// MsgAbortBatch carries the second-round aborts of several transactions to
// one partition in a single RPC (a failed batch can abort many
// transactions on the same peer at once).
type MsgAbortBatch struct {
	Aborts []MsgAbort
}

// MsgApplyDeferred delivers deferred writes (or the lack thereof) from a
// computed determinate functor to the partitions owning its dependent keys.
type MsgApplyDeferred struct {
	Version tstamp.Timestamp
	// Writes are concrete deferred writes for keys on the destination.
	Writes []functor.DependentWrite
	// Dissolve lists dependent keys on the destination that the
	// determinate functor did NOT write (or that belong to an aborted
	// transaction); their markers resolve to SKIPPED/ABORTED.
	Dissolve []kv.Key
	// Aborted is set when the whole transaction aborted.
	Aborted bool
	// Fwd marks a single-hop ownership forward of writes whose keys moved;
	// the receiver applies them locally.
	Fwd bool
}

// MsgWaitComputed blocks until the record (Key, Version) reaches its final
// state, returning that state. Used by clients that request the
// "functor computing phase complete" acknowledgment option (§IV-A) and by
// the latency harness.
type MsgWaitComputed struct {
	Key     kv.Key
	Version tstamp.Timestamp
	// Fwd marks a single-hop ownership forward; the receiver serves locally.
	Fwd bool
}

// MsgWaitComputedResp reports the record's final resolution kind.
type MsgWaitComputedResp struct {
	Kind   functor.ResolutionKind
	Reason string
}

// MsgScan asks one partition for all of its keys matching Prefix at the
// given snapshot (analytic read-only transactions, §IV-A).
type MsgScan struct {
	Prefix   kv.Key
	Snapshot tstamp.Timestamp
}

// MsgScanResp carries one partition's slice of a scan.
type MsgScanResp struct {
	Pairs []kv.Pair
}

// Migration protocol messages, used by the rebalancer's epoch-barrier
// handoff (internal/core/rebalance.go). The rebalancer calls the in-process
// server handlers directly, but the messages are registered with the
// transport codec so deployments that split the control plane out can relay
// them unchanged.
type (
	// MsgRangeSeal fences the listed ranges on a server: installs touching
	// them are rejected WrongOwner until a MsgRangeSeal with Clear lifts the
	// fence. Sent inside the epoch barrier, where no install of the sealed
	// epoch is in flight.
	MsgRangeSeal struct {
		Ranges []placement.Range
		Clear  bool
	}
	// MsgRangeSealResp acknowledges MsgRangeSeal.
	MsgRangeSealResp struct{}
	// MsgRangeExport asks the old owner for every version chain in Range.
	MsgRangeExport struct {
		Range placement.Range
	}
	// MsgRangeExportResp carries the exported chains.
	MsgRangeExportResp struct {
		Keys []mvstore.KeyExport
	}
	// MsgRangeImport delivers exported chains to the new owner. Handoff is
	// the epoch being sealed when the move executes: records in epochs ≤
	// Handoff are sealed (and their unresolved functors enqueued) on import,
	// later ones buffer until their epoch commits.
	MsgRangeImport struct {
		Keys    []mvstore.KeyExport
		Handoff tstamp.Epoch
	}
	// MsgRangeImportResp reports how much the import absorbed.
	MsgRangeImportResp struct {
		Keys    int
		Records int
	}
	// MsgMapInstall installs an ownership map on a server (newest wins).
	MsgMapInstall struct {
		Map *placement.Map
	}
	// MsgMapInstallResp acknowledges MsgMapInstall.
	MsgMapInstallResp struct{}
	// MsgRangeRetire asks the old owner to drop its replica of a migrated
	// range once the handoff has settled; only chains whose records are all
	// final are dropped, the rest stay for a later retirement pass.
	MsgRangeRetire struct {
		Range   placement.Range
		Handoff tstamp.Epoch
	}
	// MsgRangeRetireResp reports how many chains were dropped.
	MsgRangeRetireResp struct {
		Dropped int
		// Remaining counts chains that still hold non-final records and
		// survived this pass.
		Remaining int
	}
)

// Client protocol messages, used by remote clients (cmd/aloha-client)
// talking to a server over the TCP transport. Embedded users call the Go
// API directly.
type (
	// MsgClientSubmit submits one transaction; the server coordinates it.
	MsgClientSubmit struct {
		Writes   []Write
		Requires []kv.Key
		// WaitComputed selects acknowledgment option 2 (§IV-A): respond
		// only after the functors are fully computed.
		WaitComputed bool
	}
	// MsgClientSubmitResp reports the outcome.
	MsgClientSubmitResp struct {
		Version tstamp.Timestamp
		Aborted bool
		Reason  string
	}
	// MsgClientGet reads the latest version of a key (serializable).
	MsgClientGet struct {
		Key kv.Key
		// Snapshot, when non-zero, reads at that historical snapshot.
		Snapshot tstamp.Timestamp
	}
	// MsgClientGetResp carries the read result.
	MsgClientGetResp struct {
		Value kv.Value
		Found bool
	}
)

// Epoch protocol messages, used when the epoch manager runs remotely.
type (
	// MsgGrant authorizes epoch E.
	MsgGrant struct{ E tstamp.Epoch }
	// MsgRevoke withdraws epoch E's authorization; the server answers
	// with MsgRevokeAck once in-flight transactions drain.
	MsgRevoke struct{ E tstamp.Epoch }
	// MsgRevokeAck acknowledges MsgRevoke.
	MsgRevokeAck struct{ E tstamp.Epoch }
	// MsgCommitted announces epoch E fully committed.
	MsgCommitted struct{ E tstamp.Epoch }
)

// Diagnosis messages, used by the epoch watchdog's peer probes
// (internal/obs): a stall snapshot names unreachable peers by pinging every
// node and reporting who failed to answer within the probe deadline.
type (
	// MsgPing asks a peer for its epoch positions.
	MsgPing struct{}
	// MsgPong answers MsgPing with the responder's view of epoch progress.
	MsgPong struct {
		Node int
		// CommittedEpoch is the last epoch whose versions are visible on
		// the responder; CurrentEpoch is the epoch it issues timestamps in.
		CommittedEpoch uint64
		CurrentEpoch   uint64
	}
)

// RegisterMessages registers every core message type with the transport.
// Call once at startup when using the TCP transport (idempotent).
//
// Hot messages (install, read/ensure/abort batches, push, deferred
// writes, epoch control, ping) register explicit binary codecs with
// internal/wire — the default TCP codec never gob-encodes them. They are
// also gob-registered because the legacy gob codec (transport.CodecGob,
// used by mixed-codec clusters mid-upgrade and the differential codec
// tests) still carries them reflectively. Cold messages (scans, client
// protocol, migration control) are gob-only on purpose: they ride the
// binary envelope's gob escape hatch.
func RegisterMessages() {
	registerWire.Do(registerWireCodecs)
	for _, m := range []any{
		// Hot messages: binary-coded by default, gob for the legacy codec.
		MsgInstall{}, MsgInstallResp{}, MsgAbort{}, MsgAbortBatch{},
		MsgRead{}, MsgReadResp{}, MsgReadBatch{}, MsgReadBatchResp{}, MsgPush{},
		MsgEnsure{}, MsgEnsureResp{}, MsgEnsureUpTo{}, MsgEnsureUpToResp{},
		MsgEnsureBatch{}, MsgEnsureBatchResp{},
		MsgApplyDeferred{}, MsgWaitComputed{}, MsgWaitComputedResp{},
		MsgGrant{}, MsgRevoke{}, MsgRevokeAck{}, MsgCommitted{},
		MsgPing{}, MsgPong{},
		// Cold messages: gob escape hatch only.
		MsgScan{}, MsgScanResp{},
		MsgClientSubmit{}, MsgClientSubmitResp{}, MsgClientGet{}, MsgClientGetResp{},
		MsgRangeSeal{}, MsgRangeSealResp{}, MsgRangeExport{}, MsgRangeExportResp{},
		MsgRangeImport{}, MsgRangeImportResp{}, MsgMapInstall{}, MsgMapInstallResp{},
		MsgRangeRetire{}, MsgRangeRetireResp{},
	} {
		transport.RegisterType(m)
	}
}

var registerWire sync.Once
