package core

import (
	"context"
	"time"

	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

// This file is the server side of the rebalancer's epoch-barrier handoff
// (see rebalance.go for the orchestration and DESIGN.md §10 for the
// protocol). All four handlers run inside the epoch manager's barrier —
// after every revoke ack, before Committed+Grant — so the only traffic that
// can race them is straggler installs of the next epoch, which the seal
// fence rejects (WrongOwner) everywhere but at the move's target.

// handleRangeSeal fences the listed ranges against installs (or lifts the
// fence with Clear). Taking moveMu's write side waits out every install
// that passed the previous fence check and may still be mid-Put, so when
// this returns the store holds everything the fence let through — the
// export that follows cannot miss a record.
func (s *Server) handleRangeSeal(m MsgRangeSeal) {
	s.moveMu.Lock()
	defer s.moveMu.Unlock()
	if !m.Clear {
		s.sealedRanges = append(s.sealedRanges, m.Ranges...)
		return
	}
	if len(m.Ranges) == 0 {
		s.sealedRanges = nil
		return
	}
	kept := s.sealedRanges[:0]
	for _, have := range s.sealedRanges {
		listed := false
		for _, r := range m.Ranges {
			if have == r {
				listed = true
				break
			}
		}
		if !listed {
			kept = append(kept, have)
		}
	}
	s.sealedRanges = kept
}

// handleRangeExport snapshots every version chain inside the range for
// streaming to the new owner. The caller sealed the range first, so no
// install can be adding records concurrently.
func (s *Server) handleRangeExport(m MsgRangeExport) MsgRangeExportResp {
	return MsgRangeExportResp{Keys: s.store.ExportMatching(m.Range.Contains)}
}

// handleRangeImport absorbs exported chains at the new owner. Puts are
// idempotent (a retransmitted import, or a straggler install that raced
// ahead under the new map, leaves the existing record in place), carried
// resolutions install via the resolve-once CAS, and unresolved functors
// flow through bufferWork so the processor computes them under the same
// epoch discipline as locally installed ones: epochs the server already
// drained seal and enqueue immediately, the sealing epoch's records wait
// for its Committed, and straggler-epoch records wait for theirs.
//
// After the Puts the abort stash is checked under stashMu: a second-round
// abort forwarded here before its record arrived (see handleAbort) now
// finds it and marks it ABORTED — the Put-then-check ordering against
// handleAbort's check-then-stash makes losing an abort impossible.
func (s *Server) handleRangeImport(ctx context.Context, m MsgRangeImport) MsgRangeImportResp {
	_ = ctx
	var resp MsgRangeImportResp
	now := time.Now()
	var work []workItem
	for _, ke := range m.Keys {
		resp.Keys++
		for _, er := range ke.Records {
			rec, err := s.store.Put(ke.Key, er.Version, er.Functor)
			if err != nil && err != mvstore.ErrVersionExists {
				continue
			}
			if err == nil {
				resp.Records++
			}
			if er.Resolution != nil {
				rec.Resolve(er.Resolution)
				s.store.Seal(ke.Key, tstamp.End(er.Version.Epoch()))
				continue
			}
			if rec.Final() {
				// The record existed and is already final here.
				s.store.Seal(ke.Key, tstamp.End(er.Version.Epoch()))
				continue
			}
			work = append(work, workItem{key: ke.Key, version: er.Version, rec: rec, installed: now})
		}
		if ke.Watermark != 0 {
			s.store.AdvanceWatermark(ke.Key, ke.Watermark)
		}
	}
	if len(work) > 0 {
		s.bufferWork(work)
	}
	s.drainAbortStash()
	s.notifyComputed()
	return resp
}

// drainAbortStash applies stashed forwarded aborts whose records have
// arrived, keeping the rest for the next import (or for eviction when
// their epoch commits).
func (s *Server) drainAbortStash() {
	s.stashMu.Lock()
	defer s.stashMu.Unlock()
	for ts, keys := range s.abortStash {
		remaining := keys[:0]
		for _, k := range keys {
			if rec, ok := s.store.At(k, ts); ok {
				rec.Resolve(_abortResolutionPeer)
			} else {
				remaining = append(remaining, k)
			}
		}
		if len(remaining) == 0 {
			delete(s.abortStash, ts)
		} else {
			s.abortStash[ts] = remaining
		}
	}
}

// handleRangeRetire drops the old owner's replicas of a migrated range.
// Only chains whose records are all final go (dropping an unresolved
// functor would lose it); the rest report as Remaining and the rebalancer
// retries at a later barrier. Keys the current map still routes here are
// skipped — the range may have moved back.
func (s *Server) handleRangeRetire(m MsgRangeRetire) MsgRangeRetireResp {
	var resp MsgRangeRetireResp
	var keys []kv.Key
	s.store.RangeKeys(func(k kv.Key) bool {
		if m.Range.Contains(k) {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		if s.owner(k) == s.id {
			continue
		}
		recs, _, ok := s.store.ExportKey(k)
		if !ok {
			continue
		}
		final := true
		for _, r := range recs {
			if r.Resolution == nil {
				final = false
				break
			}
		}
		if !final {
			resp.Remaining++
			continue
		}
		if s.store.Drop(k) {
			resp.Dropped++
		}
	}
	return resp
}
