package core

import (
	"context"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
)

// TestWrongOwnerRetryExhaustion pins the coordinator's behavior when
// install rerouting can never converge: a range sealed by a migration
// fence that is never lifted rejects every install with WrongOwner and
// the same placement map, so each retry round routes the slice straight
// back to the rejecting owner. The transaction must come back as a
// bounded, cleanly-typed abort — not hang, not error — and be
// distinguishable from a semantic abort via RerouteExhausted.
func TestWrongOwnerRetryExhaustion(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:       3,
		EpochDuration: 2 * time.Millisecond,
		Registry:      testRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	key := kv.Key("stuck-key")
	owner := c.Server(0).Owner(key)
	// Fence the key's range on its owner as the rebalancer's barrier
	// would, but never lift it — the stuck-migration failure mode.
	c.Server(owner).handleRangeSeal(MsgRangeSeal{Ranges: []placement.Range{placement.KeyRange(key)}})

	fe := (owner + 1) % 3
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	results, _, err := c.Server(fe).SubmitBatch(ctx, []Txn{{Writes: []Write{
		{Key: key, Functor: functor.User("append", []byte("x"), nil)},
	}}})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("submit through a sealed range must abort, not error: %v", err)
	}
	res := results[0]
	if !res.Aborted {
		t.Fatalf("transaction committed through a sealed range: %+v", res)
	}
	if !res.RerouteExhausted() {
		t.Fatalf("abort reason %q; want the typed reroute-exhaustion reason %q",
			res.Reason, ErrRerouteExhausted.Error())
	}
	if res.AbortIncomplete {
		t.Errorf("nothing was installed, yet the abort is marked incomplete: %+v", res)
	}
	// The retry budget is wrongOwnerRetries rounds with backoff capped in
	// the tens of milliseconds; exhaustion must be prompt, not minutes of
	// spinning.
	if elapsed > 2*time.Second {
		t.Errorf("reroute exhaustion took %v; want bounded well under 2s", elapsed)
	}

	// A semantic abort (missing Requires key) must NOT claim reroute
	// exhaustion: the predicate distinguishes routing failures from
	// constraint failures.
	results, _, err = c.Server(fe).SubmitBatch(ctx, []Txn{{
		Writes:   []Write{{Key: kv.Key("other-key"), Functor: functor.User("append", []byte("x"), nil)}},
		Requires: []kv.Key{kv.Key("never-loaded")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Aborted {
		t.Fatal("missing Requires key must abort")
	}
	if results[0].RerouteExhausted() {
		t.Errorf("constraint abort %q misclassified as reroute exhaustion", results[0].Reason)
	}

	// The cluster stays healthy for keys outside the sealed range.
	h, err := c.Server(fe).Submit(ctx, Txn{Writes: []Write{
		{Key: kv.Key("other-key"), Functor: functor.User("append", []byte("y"), nil)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if committed, _, err := h.Await(ctx); err != nil || !committed {
		t.Fatalf("healthy key failed after exhaustion test: committed=%v err=%v", committed, err)
	}
}
