package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/transport"
)

// captureNetwork wraps another transport and counts outbound Call messages
// by concrete type, so tests can assert which wire messages the combiner
// actually sends.
type captureNetwork struct {
	inner transport.Network

	mu    sync.Mutex
	calls map[string]int
}

func newCaptureNetwork(inner transport.Network) *captureNetwork {
	return &captureNetwork{inner: inner, calls: make(map[string]int)}
}

func (n *captureNetwork) Node(id transport.NodeID, h transport.Handler) (transport.Conn, error) {
	c, err := n.inner.Node(id, h)
	if err != nil {
		return nil, err
	}
	return &captureConn{Conn: c, net: n}, nil
}

func (n *captureNetwork) Close() error { return n.inner.Close() }

func (n *captureNetwork) record(req any) {
	n.mu.Lock()
	n.calls[fmt.Sprintf("%T", req)]++
	n.mu.Unlock()
}

// count returns how many Calls carried the given message type.
func (n *captureNetwork) count(sample any) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls[fmt.Sprintf("%T", sample)]
}

type captureConn struct {
	transport.Conn
	net *captureNetwork
}

func (c *captureConn) Call(ctx context.Context, to transport.NodeID, req any) (any, error) {
	c.net.record(req)
	return c.Conn.Call(ctx, to, req)
}

// newCombinerCluster builds a two-server manual-epoch cluster over a
// capture network; keys starting with "a" live on server 0, everything
// else on server 1.
func newCombinerCluster(t *testing.T, window time.Duration) (*Cluster, *captureNetwork) {
	t.Helper()
	capture := newCaptureNetwork(transport.NewMemNetwork())
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     testRegistry(t),
		Network:      capture,
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if len(k) > 0 && k[0] == 'a' {
				return 0
			}
			return 1
		}),
		ReadBatchWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); capture.inner.Close() })
	return c, capture
}

// TestCombinerSingleReadFastPath proves an isolated remote read keeps the
// original single-request wire protocol: one MsgRead, no batch envelope,
// so single-key latency cannot regress through the combiner.
func TestCombinerSingleReadFastPath(t *testing.T) {
	c, capture := newCombinerCluster(t, 0)
	if err := c.Load([]kv.Pair{{Key: "remote-key", Value: kv.Value("v")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Server(0).GetCommitted(context.Background(), "remote-key")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("remote read = %q found=%v err=%v", v, found, err)
	}
	if got := capture.count(MsgRead{}); got != 1 {
		t.Errorf("MsgRead calls = %d, want 1", got)
	}
	if got := capture.count(MsgReadBatch{}); got != 0 {
		t.Errorf("isolated read sent MsgReadBatch (%d), want the single-request fast path", got)
	}
}

// TestCombinerBatchesConcurrentReads proves concurrent remote reads to one
// owner share RPCs: N reads arrive in far fewer than N read Calls, with at
// least one multi-op MsgReadBatch on the wire.
func TestCombinerBatchesConcurrentReads(t *testing.T) {
	c, capture := newCombinerCluster(t, 2*time.Millisecond)
	const n = 32
	pairs := make([]kv.Pair, n)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: kv.Key(fmt.Sprintf("rk%02d", i)), Value: kv.Value("v")}
	}
	if err := c.Load(pairs); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, found, err := c.Server(0).GetCommitted(context.Background(), pairs[i].Key)
			if err == nil && !found {
				err = fmt.Errorf("key %q not found", pairs[i].Key)
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	reads := capture.count(MsgRead{})
	batches := capture.count(MsgReadBatch{})
	if batches == 0 {
		t.Errorf("no MsgReadBatch sent for %d concurrent remote reads", n)
	}
	if total := reads + batches; total >= n {
		t.Errorf("read RPCs = %d (singles=%d batches=%d), want fewer than %d reads", total, reads, batches, n)
	}
	// The combiner stats must account for every read exactly once: the
	// dispatch-size histogram records fast-path singles as size-1 batches.
	st := c.Server(0).Stats()
	if st.BatchedReads != n {
		t.Errorf("stats: batched reads = %d, want %d", st.BatchedReads, n)
	}
	if st.ReadBatches != uint64(reads+batches) {
		t.Errorf("stats: dispatches = %d, want %d singles + %d batches", st.ReadBatches, reads, batches)
	}
}

// TestCombinerAbortBatch proves the coordinator's second round merges all
// failed transactions' aborts toward one owner into a single MsgAbortBatch,
// and that the batched aborts still roll the installs back.
func TestCombinerAbortBatch(t *testing.T) {
	c, capture := newCombinerCluster(t, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Every transaction requires a missing key, so all fail the first
	// round; each installed a write on server 1 that round two must abort.
	txns := []Txn{
		{Writes: []Write{{Key: "b1", Functor: functor.Value(kv.Value("1"))}}, Requires: []kv.Key{"a-nope"}},
		{Writes: []Write{{Key: "b2", Functor: functor.Value(kv.Value("2"))}}, Requires: []kv.Key{"a-nope"}},
		{Writes: []Write{{Key: "b3", Functor: functor.Value(kv.Value("3"))}}, Requires: []kv.Key{"a-nope"}},
	}
	results, _, err := c.Server(0).SubmitBatch(context.Background(), txns)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Aborted {
			t.Fatalf("txn %d did not abort: %+v", i, r)
		}
	}
	if got := capture.count(MsgAbortBatch{}); got != 1 {
		t.Errorf("MsgAbortBatch calls = %d, want 1", got)
	}
	if got := capture.count(MsgAbort{}); got != 0 {
		t.Errorf("MsgAbort calls = %d, want 0 (all aborts batched)", got)
	}
	mustAdvance(t, c)
	ctx := context.Background()
	for _, k := range []kv.Key{"b1", "b2", "b3"} {
		if _, found, _ := c.Server(0).GetCommitted(ctx, k); found {
			t.Errorf("aborted write %q visible", k)
		}
	}
}

// TestCombinerCancellationReleasesCaller proves a caller whose context is
// cancelled while its op sits in the batching window gets released
// immediately with context.Canceled, while the shared dispatch proceeds
// and the other waiters in the same window still get their values.
func TestCombinerCancellationReleasesCaller(t *testing.T) {
	const window = 60 * time.Millisecond
	c, _ := newCombinerCluster(t, window)
	if err := c.Load([]kv.Pair{
		{Key: "b-warm", Value: kv.Value("w")},
		{Key: "b-canceled", Value: kv.Value("x")},
		{Key: "b-patient", Value: kv.Value("y")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm read: immediate dispatch, former now lingers for the window, so
	// the two reads below are queued behind it.
	if _, _, err := c.Server(0).GetCommitted(ctx, "b-warm"); err != nil {
		t.Fatalf("warm read: %v", err)
	}

	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	aDone := make(chan error, 1)
	go func() {
		_, _, err := c.Server(0).GetCommitted(actx, "b-canceled")
		aDone <- err
	}()
	bDone := make(chan error, 1)
	go func() {
		v, found, err := c.Server(0).GetCommitted(ctx, "b-patient")
		if err == nil && (!found || string(v) != "y") {
			err = fmt.Errorf("b-patient = %q found=%v", v, found)
		}
		bDone <- err
	}()

	// Cancel A while both ops are still queued; A must return well before
	// the window would have dispatched it.
	time.Sleep(5 * time.Millisecond)
	cancelAt := time.Now()
	acancel()
	select {
	case err := <-aDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled read returned %v, want context.Canceled", err)
		}
		if waited := time.Since(cancelAt); waited > window/2 {
			t.Errorf("cancelled caller released after %v; cancellation should not wait out the window", waited)
		}
	case <-time.After(window / 2):
		t.Error("cancelled caller still blocked at half the batching window")
	}
	// B rides the window out normally.
	select {
	case err := <-bDone:
		if err != nil {
			t.Errorf("co-batched read failed after peer cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("co-batched read never completed")
	}
}

// TestCombinerWindowSingleOpKeepsFastPath proves a positive batching
// window never changes the wire format of isolated reads: ops that find
// the owner idle dispatch immediately as the original MsgRead, and a
// window that drains with one op collapses to the single-request message.
func TestCombinerWindowSingleOpKeepsFastPath(t *testing.T) {
	const window = 30 * time.Millisecond
	c, capture := newCombinerCluster(t, window)
	if err := c.Load([]kv.Pair{
		{Key: "b-one", Value: kv.Value("1")},
		{Key: "b-two", Value: kv.Value("2")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []kv.Key{"b-one", "b-two"} {
		if _, _, err := c.Server(0).GetCommitted(ctx, k); err != nil {
			t.Fatalf("read %q: %v", k, err)
		}
		// Let the former's window lapse and the loop exit so the next read
		// finds an idle owner again.
		time.Sleep(3 * window)
	}
	if got := capture.count(MsgRead{}); got != 2 {
		t.Errorf("MsgRead calls = %d, want 2", got)
	}
	if got := capture.count(MsgReadBatch{}); got != 0 {
		t.Errorf("sequential isolated reads sent %d MsgReadBatch, want 0", got)
	}
}

// TestCombinerSingleAbortFastPath proves one failed transaction still
// aborts with the original single MsgAbort message.
func TestCombinerSingleAbortFastPath(t *testing.T) {
	c, capture := newCombinerCluster(t, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Server(0).SubmitBatch(context.Background(), []Txn{{
		Writes:   []Write{{Key: "b-only", Functor: functor.Value(kv.Value("1"))}},
		Requires: []kv.Key{"a-nope"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Aborted {
		t.Fatal("transaction with missing requirement did not abort")
	}
	if got := capture.count(MsgAbort{}); got != 1 {
		t.Errorf("MsgAbort calls = %d, want 1", got)
	}
	if got := capture.count(MsgAbortBatch{}); got != 0 {
		t.Errorf("MsgAbortBatch calls = %d, want 0 for a lone abort", got)
	}
}
