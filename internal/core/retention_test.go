package core

import (
	"context"
	"fmt"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
)

func TestRetentionCompactsOldVersions(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	c.SetRetention(2)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.EncodeInt64(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// One increment per epoch over many epochs.
	for i := 0; i < 20; i++ {
		h := mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Add(1)}}})
		mustAdvance(t, c)
		if _, _, err := h.Await(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	c.DrainProcessors()
	mustAdvance(t, c) // trigger one more compaction pass after everything settled
	stats := c.Stats()
	if stats.VersionsCompacted == 0 {
		t.Error("retention configured but nothing compacted")
	}
	chainLen := len(c.Server(0).Store().View("k"))
	if chainLen > 6 {
		t.Errorf("chain length %d exceeds the retained window", chainLen)
	}
	// The current value is intact.
	if n, ok := readInt(t, c, 0, "k"); !ok || n != 20 {
		t.Errorf("k = %d ok=%v, want 20", n, ok)
	}
}

func TestRetentionZeroKeepsEverything(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Add(1)}}})
		mustAdvance(t, c)
	}
	c.DrainProcessors()
	if got := c.Stats().VersionsCompacted; got != 0 {
		t.Errorf("VersionsCompacted = %d without retention", got)
	}
	if got := len(c.Server(0).Store().View("k")); got != 10 {
		t.Errorf("chain length = %d, want 10", got)
	}
}

func TestScanPrefixConsistentSnapshot(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	var pairs []kv.Pair
	for i := 0; i < 12; i++ {
		pairs = append(pairs, kv.Pair{
			Key:   kv.Key(fmt.Sprintf("inv:%02d", i)),
			Value: kv.EncodeInt64(int64(i)),
		})
	}
	pairs = append(pairs, kv.Pair{Key: "other:x", Value: kv.EncodeInt64(999)})
	if err := c.Load(pairs); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap, err := c.Server(0).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Writes after the snapshot must be invisible to the scan.
	mustSubmit(t, c, 1, Txn{Writes: []Write{
		{Key: "inv:00", Functor: functor.Value(kv.EncodeInt64(1000))},
		{Key: "inv:99", Functor: functor.Value(kv.EncodeInt64(1000))},
	}})
	mustAdvance(t, c)

	got, err := c.Server(2).ScanPrefix(ctx, "inv:", snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("scan returned %d keys, want 12", len(got))
	}
	for i := 0; i < 12; i++ {
		k := kv.Key(fmt.Sprintf("inv:%02d", i))
		n, _ := kv.DecodeInt64(got[k])
		if n != int64(i) {
			t.Errorf("%s = %d, want %d", k, n, i)
		}
	}
	if _, ok := got["other:x"]; ok {
		t.Error("scan leaked a non-matching key")
	}
	if _, ok := got["inv:99"]; ok {
		t.Error("scan observed a post-snapshot insert")
	}

	// A fresh scan at a later snapshot sees the update and the new key.
	snap2, err := c.Server(0).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mustAdvance(t, c)
	got2, err := c.Server(0).ScanPrefix(ctx, "inv:", snap2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 13 {
		t.Fatalf("second scan returned %d keys, want 13", len(got2))
	}
	if n, _ := kv.DecodeInt64(got2["inv:00"]); n != 1000 {
		t.Errorf("inv:00 = %d, want 1000", n)
	}
}

func TestScanPrefixSkipsDeleted(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	if err := c.Load([]kv.Pair{
		{Key: "p:a", Value: kv.Value("1")},
		{Key: "p:b", Value: kv.Value("2")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "p:a", Functor: functor.Deleted()}}})
	mustAdvance(t, c)
	snap := c.Server(0).visibleBound().Prev()
	got, err := c.Server(1).ScanPrefix(context.Background(), "p:", snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scan = %v, want only p:b", got)
	}
	if _, ok := got["p:b"]; !ok {
		t.Error("p:b missing")
	}
}
