package core

import (
	"context"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
)

// TestDeadPartitionFailsFast: when a partition dies, operations touching
// it return errors rather than hanging, and operations confined to the
// surviving partitions keep working (crash-stop degradation; recovery is
// internal/wal's job).
func TestDeadPartitionFailsFast(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     functor.NewRegistry(),
		Partitioner: func(k kv.Key, n int) int {
			if len(k) > 0 && k[0] == 'd' {
				return 1 // the partition we will kill
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{
		{Key: "alive", Value: kv.Value("a")},
		{Key: "dead", Value: kv.Value("d")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Kill partition 1.
	if err := c.Server(1).Close(); err != nil {
		t.Fatal(err)
	}

	// Writes and reads to the dead partition fail fast with an error.
	res, _, err := c.Server(0).SubmitBatch(ctx, []Txn{{Writes: []Write{
		{Key: "dead", Functor: functor.Value(kv.Value("x"))},
	}}})
	if err != nil {
		t.Fatalf("SubmitBatch returned a hard error: %v", err)
	}
	if !res[0].Aborted {
		t.Error("write to dead partition did not abort")
	}
	if _, _, err := c.Server(0).GetCommitted(ctx, "dead"); err == nil {
		t.Error("read of dead partition should error")
	}

	// The surviving partition still serves local transactions. The epoch
	// manager's revoke to the dead server can never ack, so drive
	// visibility with the straggler-tolerant switch path: use a
	// SwitchTimeout-less manual advance in a goroutine and rely on the
	// revoke ack of the dead participant being the direct (non-transport)
	// call, which still fires because the embedded cluster registers
	// servers directly.
	if _, err := c.Server(0).Submit(ctx, Txn{Writes: []Write{
		{Key: "alive", Functor: functor.Value(kv.Value("updated"))},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Server(0).GetCommitted(ctx, "alive")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "updated" {
		t.Errorf("alive = %q found=%v", v, found)
	}
}
