package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/tstamp"
)

// TestDeadPartitionFailsFast: when a partition dies, operations touching
// it return errors rather than hanging, and operations confined to the
// surviving partitions keep working (crash-stop degradation; recovery is
// internal/wal's job).
func TestDeadPartitionFailsFast(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     functor.NewRegistry(),
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if len(k) > 0 && k[0] == 'd' {
				return 1 // the partition we will kill
			}
			return 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{
		{Key: "alive", Value: kv.Value("a")},
		{Key: "dead", Value: kv.Value("d")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Kill partition 1.
	if err := c.Server(1).Close(); err != nil {
		t.Fatal(err)
	}

	// Writes and reads to the dead partition fail fast with an error.
	res, _, err := c.Server(0).SubmitBatch(ctx, []Txn{{Writes: []Write{
		{Key: "dead", Functor: functor.Value(kv.Value("x"))},
	}}})
	if err != nil {
		t.Fatalf("SubmitBatch returned a hard error: %v", err)
	}
	if !res[0].Aborted {
		t.Error("write to dead partition did not abort")
	}
	if _, _, err := c.Server(0).GetCommitted(ctx, "dead"); err == nil {
		t.Error("read of dead partition should error")
	}

	// The surviving partition still serves local transactions. The epoch
	// manager's revoke to the dead server can never ack, so drive
	// visibility with the straggler-tolerant switch path: use a
	// SwitchTimeout-less manual advance in a goroutine and rely on the
	// revoke ack of the dead participant being the direct (non-transport)
	// call, which still fires because the embedded cluster registers
	// servers directly.
	if _, err := c.Server(0).Submit(ctx, Txn{Writes: []Write{
		{Key: "alive", Functor: functor.Value(kv.Value("updated"))},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Server(0).GetCommitted(ctx, "alive")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "updated" {
		t.Errorf("alive = %q found=%v", v, found)
	}
}

// TestDeadPartitionFailsBatchedReadsFast: reads queued in the combiner's
// batching window when their owner dies must all complete quickly with
// errors — the batch dispatch fails once and fans the error to every
// waiter, rather than each op hanging on its own timeout.
func TestDeadPartitionFailsBatchedReadsFast(t *testing.T) {
	const window = 50 * time.Millisecond
	c, capture := newCombinerCluster(t, window)
	const n = 8
	pairs := make([]kv.Pair, n)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: kv.Key(fmt.Sprintf("bk%d", i)), Value: kv.Value("v")}
	}
	if err := c.Load(pairs); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A warm read dispatches immediately (idle owner) and leaves the former
	// lingering for the window, so the reads below all queue mid-window
	// instead of racing into the first dispatch.
	if _, _, err := c.Server(0).GetCommitted(ctx, "bk0"); err != nil {
		t.Fatalf("warm read: %v", err)
	}
	start := time.Now()
	type outcome struct{ err error }
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.Server(0).GetCommitted(ctx, pairs[i].Key)
			outcomes[i].err = err
		}(i)
	}
	// Kill the owner mid-window, before the lingering batch dispatches.
	time.Sleep(10 * time.Millisecond)
	if err := c.Server(1).Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Fast: the batch fails at dispatch, so everything resolves in a couple
	// of windows — nowhere near the 10 s caller budget.
	if elapsed > 2*time.Second {
		t.Errorf("queued reads took %v to resolve after owner death", elapsed)
	}
	// Every read was queued behind the lingering former when the owner
	// died, so every one must have errored.
	for i, o := range outcomes {
		if o.err == nil {
			t.Errorf("read %d queued at owner death returned nil error", i)
		}
	}
	if got := capture.count(MsgReadBatch{}); got == 0 {
		t.Error("no MsgReadBatch dispatched — the window never formed a batch, test tested nothing")
	}

	// Ensures bound for the dead owner fail fast through the same path.
	es := time.Now()
	v := tstamp.End(c.CurrentEpoch())
	if _, err := c.Server(0).comb.ensure(ctx, 1, "bk0", v); err == nil {
		t.Error("ensure against dead owner returned nil error")
	}
	if err := c.Server(0).comb.ensureUpTo(ctx, 1, "bk0", v); err == nil {
		t.Error("ensureUpTo against dead owner returned nil error")
	}
	if d := time.Since(es); d > 2*time.Second {
		t.Errorf("ensures against dead owner took %v", d)
	}
}
