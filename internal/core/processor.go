package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// workItem is the metadata of one installed functor awaiting asynchronous
// processing (paper §IV-D: "their meta-data (key and version), which were
// buffered in the previous epoch, are pushed to a queue for the processor
// to consume").
type workItem struct {
	key     kv.Key
	version tstamp.Timestamp
	rec     *mvstore.Record
	// installed is when the functor was installed in the BE; ready is when
	// its epoch committed and it entered the queue. The Figure-10 "waiting
	// for processing" stage spans installed → dequeue.
	installed time.Time
	ready     time.Time
	// sc is the install span's trace context, carried across the queue so
	// the asynchronous computation stays attached to the transaction's
	// trace (zero when the transaction is untraced).
	sc trace.SpanContext
}

// processor is the back-end's thread-pool functor computing engine
// (paper §IV-C/D). Work is sharded across workers by key: one key's
// functors always compute on one worker (in ascending version order, the
// paper's per-key sequential access, §V-B2), while distinct keys compute
// in parallel — key-level concurrency control in its scheduling form. A
// worker drains its queue in batches to amortize synchronization.
type processor struct {
	s       *Server
	shards  []*procShard
	wg      sync.WaitGroup
	stopped atomic.Bool
	// groups is enqueue's reusable per-shard grouping scratch, serialized
	// by groupMu (epoch commits enqueue one batch at a time; the mutex
	// only guards against overlapping callers).
	groupMu sync.Mutex
	groups  [][]workItem
}

type procShard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []workItem
	active bool
}

// defaultWorkers sizes the pool for ServerConfig.Workers == 0: one shard
// per core so functor computation scales with the machine, floored at 2
// so single-core test environments still overlap compute with install.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

func newProcessor(s *Server, workers int) *processor {
	p := &processor{s: s, groups: make([][]workItem, workers)}
	for i := 0; i < workers; i++ {
		sh := &procShard{}
		sh.cond = sync.NewCond(&sh.mu)
		p.shards = append(p.shards, sh)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(p.shards[i])
	}
	return p
}

// enqueue routes functor metadata to the owning worker by key hash.
// Items are grouped per destination shard first, so an epoch's whole
// batch takes each shard lock once instead of once per item — with
// GOMAXPROCS-many shards the per-item locking was the enqueue path's
// dominant cost. Grouping is stable, preserving the per-key ascending
// version order the workers rely on (§V-B2).
func (p *processor) enqueue(items []workItem) {
	if len(items) == 0 || len(p.shards) == 0 {
		return
	}
	if len(p.shards) == 1 {
		sh := p.shards[0]
		sh.mu.Lock()
		sh.queue = append(sh.queue, items...)
		sh.mu.Unlock()
		sh.cond.Signal()
		return
	}
	p.groupMu.Lock()
	groups := p.groups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for _, it := range items {
		si := kv.Hash(it.key) % uint64(len(p.shards))
		groups[si] = append(groups[si], it)
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := p.shards[si]
		sh.mu.Lock()
		sh.queue = append(sh.queue, g...)
		sh.mu.Unlock()
		sh.cond.Signal()
		// Drop the record pointers so the scratch buffer does not pin
		// records past their processing.
		clear(g)
	}
	p.groupMu.Unlock()
}

// drainWait blocks until every shard's queue is empty and idle; used by
// tests and by the saturation-mode benchmark barrier.
func (p *processor) drainWait() {
	for {
		empty := true
		for _, sh := range p.shards {
			sh.mu.Lock()
			if len(sh.queue) > 0 || sh.active {
				empty = false
			}
			sh.mu.Unlock()
			if !empty {
				break
			}
		}
		if empty {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// queueDepths reports each shard's queue length for stall snapshots; when
// consider is non-nil every queued item is offered to it (the watchdog
// uses this to find the oldest pending functor).
func (p *processor) queueDepths(consider func(workItem)) []int {
	depths := make([]int, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		depths[i] = len(sh.queue)
		if consider != nil {
			for _, it := range sh.queue {
				consider(it)
			}
		}
		sh.mu.Unlock()
	}
	return depths
}

func (p *processor) stop() {
	p.stopped.Store(true)
	for _, sh := range p.shards {
		// Hold the shard lock while broadcasting so a worker between its
		// stop-check and Wait cannot miss the wakeup.
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	p.wg.Wait()
}

const _workerBatch = 64

func (p *processor) worker(sh *procShard) {
	defer p.wg.Done()
	// buf receives each batch so the queue's backing array can be reused:
	// slicing the front off (queue = queue[n:]) strands the consumed prefix
	// and forces append to grow a fresh array every few batches, a steady
	// allocation stream this copy-and-shift avoids.
	var buf [_workerBatch]workItem
	for {
		sh.mu.Lock()
		for len(sh.queue) == 0 && !p.stopped.Load() {
			sh.cond.Wait()
		}
		if p.stopped.Load() {
			sh.mu.Unlock()
			return
		}
		n := len(sh.queue)
		if n > _workerBatch {
			n = _workerBatch
		}
		copy(buf[:n], sh.queue)
		rest := copy(sh.queue, sh.queue[n:])
		clear(sh.queue[rest:])
		sh.queue = sh.queue[:rest]
		sh.active = true
		sh.mu.Unlock()

		for i := range buf[:n] {
			p.process(buf[i])
		}

		sh.mu.Lock()
		sh.active = false
		sh.mu.Unlock()
	}
}

// process handles one queued functor: record queueing delay, proactively
// push values to recipient partitions, compute every pending functor of the
// key up to the queued version, and advance the value watermark.
func (p *processor) process(item workItem) {
	s := p.s
	wait := time.Since(item.installed)
	s.stats.recordWait(wait)
	// The parent install span ended an epoch ago; StartAt re-attaches the
	// asynchronous computation to the transaction's trace, and the wait
	// attribute records the Figure-10 queueing stage the span's own start
	// time cannot show.
	ctx, span := s.tr.StartAt(s.ctx, item.sc, "functor.process")
	span.SetAttr("key", string(item.key))
	span.SetAttr("wait", wait.String())
	defer span.End()

	fn := item.rec.Functor
	if len(fn.Recipients) > 0 {
		p.pushToRecipients(ctx, item, fn)
	}
	// Dependent-key markers are resolved by their determinate functor's
	// computation (directly when local, via MsgApplyDeferred when remote).
	// Processing them here would issue a redundant synchronous MsgEnsure,
	// so the processor skips markers that are not yet resolved; the
	// watermark advances when the determinate side applies the write or
	// when a read forces it.
	if fn.Type == functor.TypeDepMarker && !item.rec.Final() {
		return
	}
	// Fast path: an earlier chain walk (hot key) already settled this
	// record and the watermark.
	if item.rec.Final() && s.store.Watermark(item.key) >= item.version {
		return
	}
	if _, err := s.resolveRecord(ctx, item.key, item.rec); err != nil {
		// A failed remote read (e.g. during shutdown) leaves the functor
		// for on-demand computation at read time.
		return
	}
	s.store.AdvanceWatermark(item.key, item.version)
}

// pushToRecipients sends the latest value of the functor's key strictly
// below its version to each recipient's partition (paper §IV-B). Purely an
// optimization: compute falls back to remote reads when a push is missing.
func (p *processor) pushToRecipients(ctx context.Context, item workItem, fn *functor.Functor) {
	s := p.s
	prev, err := s.getLocal(ctx, item.key, item.version.Prev())
	if err != nil {
		return
	}
	sent := make(map[int]bool, len(fn.Recipients))
	for _, rk := range fn.Recipients {
		owner := s.owner(rk)
		if owner == s.id || sent[owner] {
			continue
		}
		sent[owner] = true
		s.stats.pushesSent.Add(1)
		_ = s.conn.Send(ctx, transport.NodeID(owner), MsgPush{
			Version:      item.version,
			Key:          item.key,
			Value:        prev.Value,
			Found:        prev.Found,
			ValueVersion: prev.Version,
		})
	}
}
