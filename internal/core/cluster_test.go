package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/tstamp"
)

// testRegistry builds the handlers the tests share.
func testRegistry(t *testing.T) *functor.Registry {
	t.Helper()
	r := functor.NewRegistry()
	// xfer-out debits the amount from its own key, aborting when the
	// source balance (which is its own key) is insufficient.
	r.MustRegister("xfer-out", func(ctx *functor.Context) (*functor.Resolution, error) {
		amt, _ := kv.DecodeInt64(ctx.Arg)
		bal := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			bal, _ = kv.DecodeInt64(r.Value)
		}
		if bal < amt {
			return functor.AbortResolution("insufficient funds"), nil
		}
		return functor.ValueResolution(kv.EncodeInt64(bal - amt)), nil
	})
	// xfer-in credits the amount to its own key; its read set contains the
	// source key so it reaches the same abort decision as xfer-out.
	r.MustRegister("xfer-in", func(ctx *functor.Context) (*functor.Resolution, error) {
		arg := string(ctx.Arg) // "src|amount"
		parts := strings.SplitN(arg, "|", 2)
		src := kv.Key(parts[0])
		amt, _ := kv.DecodeInt64([]byte(parts[1]))
		srcBal := int64(0)
		if r := ctx.Reads[src]; r.Found {
			srcBal, _ = kv.DecodeInt64(r.Value)
		}
		if srcBal < amt {
			return functor.AbortResolution("insufficient funds"), nil
		}
		bal := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			bal, _ = kv.DecodeInt64(r.Value)
		}
		return functor.ValueResolution(kv.EncodeInt64(bal + amt)), nil
	})
	// append concatenates its argument to the previous value; it is
	// intentionally non-commutative so serializability violations surface.
	r.MustRegister("append", func(ctx *functor.Context) (*functor.Resolution, error) {
		var prev []byte
		if r := ctx.Reads[ctx.Key]; r.Found {
			prev = r.Value
		}
		out := make([]byte, 0, len(prev)+len(ctx.Arg))
		out = append(out, prev...)
		out = append(out, ctx.Arg...)
		return functor.ValueResolution(out), nil
	})
	return r
}

// xferInArg encodes the xfer-in argument.
func xferInArg(src kv.Key, amt int64) []byte {
	return []byte(string(src) + "|" + string(kv.EncodeInt64(amt)))
}

// newTestCluster builds a manual-epoch cluster.
func newTestCluster(t *testing.T, servers, workers int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Registry:     testRegistry(t),
		Workers:      workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustAdvance(t *testing.T, c *Cluster) {
	t.Helper()
	if _, err := c.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
}

func mustSubmit(t *testing.T, c *Cluster, fe int, txn Txn) *TxnHandle {
	t.Helper()
	h, err := c.Server(fe).Submit(context.Background(), txn)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func readInt(t *testing.T, c *Cluster, fe int, key kv.Key) (int64, bool) {
	t.Helper()
	v, found, err := c.Server(fe).GetCommitted(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		return 0, false
	}
	n, ok := kv.DecodeInt64(v)
	if !ok {
		t.Fatalf("value for %q is not an int64", key)
	}
	return n, true
}

func TestSingleServerPutGet(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Value(kv.Value("hello"))}}})
	if aborted, _ := h.Installed(); aborted {
		t.Fatal("install aborted")
	}
	mustAdvance(t, c)
	v, found, err := c.Server(0).GetCommitted(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "hello" {
		t.Errorf("GetCommitted = %q found=%v", v, found)
	}
}

func TestLoadVisibleFromEpochOne(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	if err := c.Load([]kv.Pair{{Key: "a", Value: kv.EncodeInt64(100)}, {Key: "b", Value: kv.EncodeInt64(200)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if n, ok := readInt(t, c, 0, "a"); !ok || n != 100 {
		t.Errorf("a = %d ok=%v, want 100", n, ok)
	}
	if n, ok := readInt(t, c, 1, "b"); !ok || n != 200 {
		t.Errorf("b = %d ok=%v, want 200", n, ok)
	}
}

func TestArithmeticFunctorChain(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Load([]kv.Pair{{Key: "ctr", Value: kv.EncodeInt64(10)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Add(3)}}})
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Sub(5)}}})
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Max(100)}}})
	mustAdvance(t, c)
	if n, ok := readInt(t, c, 0, "ctr"); !ok || n != 100 {
		t.Errorf("ctr = %d ok=%v, want 100 (10+15-5 then MAX 100)", n, ok)
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.Value("v1")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Deleted()}}})
	mustAdvance(t, c)
	if _, found, err := c.Server(0).GetCommitted(context.Background(), "k"); err != nil || found {
		t.Errorf("deleted key found=%v err=%v", found, err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Value(kv.Value("v2"))}}})
	mustAdvance(t, c)
	v, found, err := c.Server(0).GetCommitted(context.Background(), "k")
	if err != nil || !found || string(v) != "v2" {
		t.Errorf("reinserted key = %q found=%v err=%v", v, found, err)
	}
}

// TestFigure5 reproduces the paper's Figure 5 scenario over two accounts on
// two partitions: T1 multi-writes $150 to A and $100 to B; T2 transfers
// $100 from A to B; T3 transfers $100 from A to B only if the remaining
// balance is non-negative, which fails and aborts on both keys.
func TestFigure5(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     testRegistry(t),
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if k == "A" {
				return 0
			}
			return 1
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// T1: multi-write.
	h1 := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "A", Functor: functor.Value(kv.EncodeInt64(150))},
		{Key: "B", Functor: functor.Value(kv.EncodeInt64(100))},
	}})
	// T2: unconditional transfer, expressed as SUB/ADD functors exactly as
	// in the figure ("readset is the key itself, local read").
	h2 := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "A", Functor: functor.Sub(100)},
		{Key: "B", Functor: functor.Add(100)},
	}})
	// T3: conditional transfer; the functor on B reads A remotely, with A
	// in B's recipient set via the functor on A.
	h3 := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "A", Functor: &functor.Functor{
			Type:       functor.TypeUser,
			Handler:    "xfer-out",
			Arg:        kv.EncodeInt64(100),
			Recipients: []kv.Key{"B"},
		}},
		{Key: "B", Functor: functor.User("xfer-in", xferInArg("A", 100), []kv.Key{"A"})},
	}})
	mustAdvance(t, c)

	ctx := context.Background()
	for i, h := range []*TxnHandle{h1, h2} {
		committed, reason, err := h.Await(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !committed {
			t.Errorf("T%d aborted: %s", i+1, reason)
		}
	}
	committed, reason, err := h3.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Error("T3 should abort (remaining balance would be negative)")
	}
	if !strings.Contains(reason, "insufficient funds") {
		t.Errorf("T3 abort reason = %q", reason)
	}

	// Final balances: A=50, B=200 (T3's versions are ABORTED on both keys
	// and skipped by reads).
	if n, ok := readInt(t, c, 0, "A"); !ok || n != 50 {
		t.Errorf("A = %d ok=%v, want 50", n, ok)
	}
	if n, ok := readInt(t, c, 1, "B"); !ok || n != 200 {
		t.Errorf("B = %d ok=%v, want 200", n, ok)
	}

	// The version chains must reflect Figure 5's "after functor
	// computation" state: three versions per key, the last ABORTED.
	for _, tt := range []struct {
		server int
		key    kv.Key
	}{{0, "A"}, {1, "B"}} {
		view := c.Server(tt.server).Store().View(tt.key)
		if len(view) != 3 {
			t.Fatalf("%s: %d versions, want 3", tt.key, len(view))
		}
		last := view[2].Resolution()
		if last == nil || last.Kind != functor.ResolvedAborted {
			t.Errorf("%s: final version resolution = %v, want ABORTED", tt.key, last)
		}
	}
	// The push optimization should have fired from A's partition to B's.
	if c.Server(0).Stats().PushesSent == 0 {
		t.Error("no proactive pushes were sent")
	}
}

func TestPhase1AbortSecondRound(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	if err := c.Load([]kv.Pair{{Key: "x", Value: kv.EncodeInt64(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// The transaction requires a key that exists nowhere, so phase 1 fails
	// on that key's partition and the coordinator aborts the rest.
	h := mustSubmit(t, c, 0, Txn{
		Writes:   []Write{{Key: "x", Functor: functor.Value(kv.EncodeInt64(99))}},
		Requires: []kv.Key{"missing-item"},
	})
	aborted, reason := h.Installed()
	if !aborted {
		t.Fatal("transaction should abort in phase 1")
	}
	if !strings.Contains(reason, "missing-item") {
		t.Errorf("reason = %q", reason)
	}
	mustAdvance(t, c)
	// The write must not be visible.
	if n, ok := readInt(t, c, 0, "x"); !ok || n != 1 {
		t.Errorf("x = %d ok=%v, want 1 (aborted write visible!)", n, ok)
	}
	stats := c.Stats()
	if stats.TxnsAborted != 1 {
		t.Errorf("TxnsAborted = %d, want 1", stats.TxnsAborted)
	}
}

func TestOnDemandComputeAtReadTime(t *testing.T) {
	// Workers < 0 disables the processor: only Algorithm 1's read-time
	// computation can resolve functors.
	c := newTestCluster(t, 1, -1)
	if err := c.Load([]kv.Pair{{Key: "ctr", Value: kv.EncodeInt64(5)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "ctr", Functor: functor.Add(1)}}})
	}
	mustAdvance(t, c)
	if n, ok := readInt(t, c, 0, "ctr"); !ok || n != 8 {
		t.Errorf("ctr = %d ok=%v, want 8", n, ok)
	}
	if got := c.Stats().FunctorsComputed; got < 3 {
		t.Errorf("FunctorsComputed = %d, want >= 3", got)
	}
}

func TestCrossPartitionTransferConservation(t *testing.T) {
	const (
		servers  = 4
		accounts = 16
		rounds   = 5
		perRound = 20
	)
	c := newTestCluster(t, servers, 2)
	keys := make([]kv.Key, accounts)
	pairs := make([]kv.Pair, accounts)
	for i := range keys {
		keys[i] = kv.Key(fmt.Sprintf("acct:%d", i))
		pairs[i] = kv.Pair{Key: keys[i], Value: kv.EncodeInt64(1000)}
	}
	if err := c.Load(pairs); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			src := keys[(round*perRound+i)%accounts]
			dst := keys[(round*perRound+i*7+3)%accounts]
			if src == dst {
				continue
			}
			fe := i % servers
			mustSubmit(t, c, fe, Txn{Writes: []Write{
				{Key: src, Functor: functor.User("xfer-out", kv.EncodeInt64(10), nil, functor.WithRecipients(dst))},
				{Key: dst, Functor: functor.User("xfer-in", xferInArg(src, 10), []kv.Key{src})},
			}})
		}
		mustAdvance(t, c)
		// Conservation must hold at every committed snapshot.
		snapshot := c.Server(0).visibleBound().Prev()
		total := int64(0)
		for _, k := range keys {
			v, found, err := c.Server(0).GetAt(ctx, k, snapshot)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("account %q missing", k)
			}
			n, _ := kv.DecodeInt64(v)
			total += n
		}
		if total != int64(accounts)*1000 {
			t.Fatalf("round %d: total = %d, want %d", round, total, int64(accounts)*1000)
		}
	}
}

func TestDependentKeyDeterminateFunctor(t *testing.T) {
	reg := functor.NewRegistry()
	// next-id increments its own key and writes an order row (dependent
	// key) named by the allocated id — TPC-C's order-id pattern (§V-A2).
	reg.MustRegister("next-id", func(ctx *functor.Context) (*functor.Resolution, error) {
		id := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			id, _ = kv.DecodeInt64(r.Value)
		}
		id++
		orderKey := kv.Key(fmt.Sprintf("order:%d", id))
		return &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.EncodeInt64(id),
			DependentWrites: []functor.DependentWrite{
				{Key: orderKey, Value: ctx.Arg},
			},
		}, nil
	})
	c, err := NewCluster(ClusterConfig{
		Servers:      2,
		ManualEpochs: true,
		Registry:     reg,
		Router: placement.NewStatic(2, func(k kv.Key, n int) int {
			if strings.HasPrefix(string(k), "order:") {
				return 1
			}
			return 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// The determinate functor declares both possible dependent keys; only
	// order:1 is written this time.
	h := mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "next", Functor: functor.User("next-id", []byte("order-payload"), nil,
			functor.WithDependentKeys("order:1", "order:2"))},
	}})
	mustAdvance(t, c)
	if committed, reason, err := h.Await(context.Background()); err != nil || !committed {
		t.Fatalf("txn committed=%v reason=%q err=%v", committed, reason, err)
	}
	v, found, err := c.Server(1).GetCommitted(context.Background(), "order:1")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "order-payload" {
		t.Errorf("order:1 = %q found=%v", v, found)
	}
	// order:2's marker dissolved: the key reads as absent.
	if _, found, err := c.Server(0).GetCommitted(context.Background(), "order:2"); err != nil || found {
		t.Errorf("order:2 found=%v err=%v, want absent", found, err)
	}
	if n, ok := readInt(t, c, 0, "next"); !ok || n != 1 {
		t.Errorf("next = %d ok=%v, want 1", n, ok)
	}
}

func TestGetWaitsForEpochCommit(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	if err := c.Load([]kv.Pair{{Key: "k", Value: kv.Value("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Txn{Writes: []Write{{Key: "k", Functor: functor.Value(kv.Value("new"))}}})

	type result struct {
		v     kv.Value
		found bool
		err   error
	}
	done := make(chan result, 1)
	go func() {
		v, found, err := c.Server(0).Get(context.Background(), "k")
		done <- result{v, found, err}
	}()
	select {
	case <-done:
		t.Fatal("latest-version Get returned before the epoch committed")
	case <-time.After(50 * time.Millisecond):
	}
	mustAdvance(t, c)
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		// The read's timestamp was drawn in the same epoch as the write;
		// SubmitBatch ran first, so the read sees "new".
		if !r.found || string(r.v) != "new" {
			t.Errorf("Get = %q found=%v, want new", r.v, r.found)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get hung after epoch commit")
	}
}

func TestHistoricalReadsTimeTravel(t *testing.T) {
	c := newTestCluster(t, 1, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var versions []tstamp.Timestamp
	for i := 1; i <= 3; i++ {
		h := mustSubmit(t, c, 0, Txn{Writes: []Write{
			{Key: "k", Functor: functor.Value(kv.EncodeInt64(int64(i * 10)))},
		}})
		versions = append(versions, h.Version())
		mustAdvance(t, c)
	}
	ctx := context.Background()
	for i, ver := range versions {
		v, found, err := c.Server(0).GetAt(ctx, "k", ver)
		if err != nil {
			t.Fatal(err)
		}
		want := int64((i + 1) * 10)
		n, _ := kv.DecodeInt64(v)
		if !found || n != want {
			t.Errorf("GetAt(v%d) = %d found=%v, want %d", i, n, found, want)
		}
	}
	// A snapshot below the first version sees nothing.
	if _, found, err := c.Server(0).GetAt(ctx, "k", versions[0].Prev()); err != nil || found {
		t.Errorf("pre-history read found=%v err=%v", found, err)
	}
}

func TestReadManyConsistentSnapshot(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	if err := c.Load([]kv.Pair{
		{Key: "a", Value: kv.EncodeInt64(1)},
		{Key: "b", Value: kv.EncodeInt64(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Writes in the current epoch must not tear the snapshot.
	mustSubmit(t, c, 0, Txn{Writes: []Write{
		{Key: "a", Functor: functor.Value(kv.EncodeInt64(2))},
		{Key: "b", Functor: functor.Value(kv.EncodeInt64(2))},
	}})
	// Draw the snapshot in the write's epoch, then read after commit: both
	// keys must come from one consistent cut.
	snap, err := c.Server(1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[kv.Key]kv.Value, 1)
	go func() {
		ctx := context.Background()
		m := make(map[kv.Key]kv.Value)
		for _, k := range []kv.Key{"a", "b"} {
			v, found, err := c.Server(1).GetAt(ctx, k, snap)
			if err != nil || !found {
				t.Errorf("GetAt(%q): found=%v err=%v", k, found, err)
				done <- nil
				return
			}
			m[k] = v
		}
		done <- m
	}()
	mustAdvance(t, c)
	m := <-done
	if m == nil {
		return
	}
	av, _ := kv.DecodeInt64(m["a"])
	bv, _ := kv.DecodeInt64(m["b"])
	if av != bv {
		t.Errorf("torn snapshot: a=%d b=%d", av, bv)
	}
}

func TestSubmitBatchMixedOutcomes(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	if err := c.Load([]kv.Pair{{Key: "exists", Value: kv.Value("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	txns := []Txn{
		{Writes: []Write{{Key: "good", Functor: functor.Value(kv.Value("1"))}}},
		{Writes: []Write{{Key: "bad", Functor: functor.Value(kv.Value("2"))}}, Requires: []kv.Key{"nope"}},
		{Writes: []Write{{Key: "good2", Functor: functor.Value(kv.Value("3"))}}, Requires: []kv.Key{"exists"}},
	}
	results, _, err := c.Server(0).SubmitBatch(context.Background(), txns)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Aborted || results[2].Aborted {
		t.Errorf("good transactions aborted: %+v", results)
	}
	if !results[1].Aborted {
		t.Error("transaction with missing requirement did not abort")
	}
	mustAdvance(t, c)
	ctx := context.Background()
	if _, found, _ := c.Server(0).GetCommitted(ctx, "good"); !found {
		t.Error("good not visible")
	}
	if _, found, _ := c.Server(0).GetCommitted(ctx, "bad"); found {
		t.Error("aborted write visible")
	}
	if _, found, _ := c.Server(0).GetCommitted(ctx, "good2"); !found {
		t.Error("good2 not visible")
	}
}

func TestTimerDrivenEpochs(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:       2,
		EpochDuration: 5 * time.Millisecond,
		Registry:      testRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := c.Server(0).Submit(ctx, Txn{Writes: []Write{
		{Key: "k", Functor: functor.Value(kv.Value("v"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	committed, reason, err := h.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatalf("txn aborted: %s", reason)
	}
	v, found, err := c.Server(1).Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "v" {
		t.Errorf("Get = %q found=%v", v, found)
	}
}

func TestEpochSwitchUnderLoad(t *testing.T) {
	// Continuous submissions across timer-driven epoch switches exercise
	// the in-flight draining and straggler (no-auth) paths.
	c, err := NewCluster(ClusterConfig{
		Servers:       2,
		EpochDuration: 2 * time.Millisecond,
		Registry:      testRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load([]kv.Pair{{Key: "ctr", Value: kv.EncodeInt64(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := c.Server(i%2).Submit(ctx, Txn{Writes: []Write{
			{Key: "ctr", Functor: functor.Add(1)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for everything to commit, then verify the counter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, found, err := c.Server(0).Get(ctx, "ctr")
		if err != nil {
			t.Fatal(err)
		}
		if found {
			if got, _ := kv.DecodeInt64(v); got == n {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("ctr = %d, want %d", got, n)
			}
		}
	}
}
