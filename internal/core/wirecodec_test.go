package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/placement"
	"alohadb/internal/tstamp"
	"alohadb/internal/wire"
)

func init() { RegisterMessages() }

// hotSamples returns one fully populated sample per hot message type.
// Slices that would be empty are nil (not []T{}): the binary codec
// matches gob's convention of decoding zero-length sequences as nil, so
// DeepEqual round trips hold for both codecs.
func hotSamples() []any {
	ts := tstamp.Make(7, 42, 3)
	fn := &functor.Functor{
		Type:          functor.TypeUser,
		Handler:       "neworder",
		Arg:           []byte{0x01, 0x02, 0x03},
		ReadSet:       []kv.Key{"w:1", "i:77"},
		Recipients:    []kv.Key{"o:9"},
		DependentKeys: []kv.Key{"ol:9:1"},
	}
	put := &functor.Functor{Type: functor.TypeValue, Arg: []byte("v")}
	pm := &placement.Map{
		Gen: 4,
		Moves: []placement.Move{
			{Range: placement.Range{Start: "a", End: "m"}, To: 2, From: 6},
			{Range: placement.Range{Start: "m"}, To: 0, From: 6},
		},
	}
	return []any{
		MsgInstall{
			Txns: []InstallTxn{
				{
					Version:  ts,
					Writes:   []Write{{Key: "w:1", Functor: fn}, {Key: "o:9", Functor: put}},
					Requires: []kv.Key{"i:77"},
				},
				{Version: ts + 1, Writes: []Write{{Key: "x", Functor: put}}},
			},
			Placement: pm,
		},
		MsgInstall{Txns: []InstallTxn{{Version: ts}}},
		MsgInstallResp{
			Results: []InstallResult{
				{OK: true},
				{Err: "missing key i:404"},
				{WrongOwner: true},
			},
			Placement: pm,
		},
		MsgInstallResp{Results: []InstallResult{{OK: true}}},
		MsgAbort{Version: ts, Keys: []kv.Key{"a", "b"}, Fwd: true},
		MsgAbortBatch{Aborts: []MsgAbort{
			{Version: ts, Keys: []kv.Key{"a"}},
			{Version: ts + 5, Keys: []kv.Key{"c", "d"}, Fwd: true},
		}},
		MsgRead{Key: "stock:3:42", Version: ts, Fwd: true},
		MsgReadResp{Value: kv.Value("val"), Found: true, Version: ts},
		MsgReadResp{},
		MsgReadBatch{Reads: []MsgRead{
			{Key: "k1", Version: ts},
			{Key: "k2", Version: ts, Fwd: true},
		}},
		MsgReadBatchResp{Results: []ReadResult{
			{Resp: MsgReadResp{Value: kv.Value("x"), Found: true, Version: ts}},
			{Err: "not owner"},
		}},
		MsgPush{Version: ts, Key: "k", Value: kv.Value("pushed"), Found: true, ValueVersion: ts - 1},
		MsgEnsure{Key: "det", Version: ts},
		MsgEnsureResp{Resolution: &functor.Resolution{
			Kind:  functor.Resolved,
			Value: kv.Value("r"),
			DependentWrites: []functor.DependentWrite{
				{Key: "dep1", Value: kv.Value("dv")},
				{Key: "dep2", Delete: true},
			},
		}},
		MsgEnsureResp{},
		MsgEnsureUpTo{Key: "det", Version: ts, Fwd: true},
		MsgEnsureUpToResp{},
		MsgEnsureBatch{Reqs: []EnsureReq{
			{Key: "d1", Version: ts, UpTo: true},
			{Key: "d2", Version: ts, Fwd: true},
		}},
		MsgEnsureBatchResp{Results: []EnsureResult{
			{Resolution: &functor.Resolution{Kind: functor.ResolvedAborted, Reason: "constraint"}},
			{Err: "timeout"},
			{},
		}},
		MsgApplyDeferred{
			Version: ts,
			Writes: []functor.DependentWrite{
				{Key: "dep", Value: kv.Value("v")},
			},
			Dissolve: []kv.Key{"gone"},
			Aborted:  true,
			Fwd:      true,
		},
		MsgWaitComputed{Key: "k", Version: ts},
		MsgWaitComputedResp{Kind: functor.ResolvedAborted, Reason: "why"},
		MsgGrant{E: 300},
		MsgRevoke{E: 301},
		MsgRevokeAck{E: 301},
		MsgCommitted{E: 299},
		MsgPing{},
		MsgPong{Node: 3, CommittedEpoch: 11, CurrentEpoch: 12},
	}
}

func binaryRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	env := wire.Envelope{ID: 1, Kind: 1, Msg: msg}
	b, gobFallback, err := wire.AppendEnvelope(nil, &env)
	if err != nil {
		t.Fatalf("%T: AppendEnvelope: %v", msg, err)
	}
	if gobFallback {
		t.Fatalf("%T: hot message took the gob fallback", msg)
	}
	got, err := wire.DecodeEnvelope(b[wire.FrameLenSize:])
	if err != nil {
		t.Fatalf("%T: DecodeEnvelope: %v", msg, err)
	}
	return got.Msg
}

func gobRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	boxed := msg
	if err := gob.NewEncoder(&buf).Encode(&boxed); err != nil {
		t.Fatalf("%T: gob encode: %v", msg, err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("%T: gob decode: %v", msg, err)
	}
	return out
}

func TestHotMessagesRoundTrip(t *testing.T) {
	for _, msg := range hotSamples() {
		t.Run(fmt.Sprintf("%T", msg), func(t *testing.T) {
			got := binaryRoundTrip(t, msg)
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("binary round trip:\n got %#v\nwant %#v", got, msg)
			}
		})
	}
}

// TestHotMessagesDifferential asserts the binary codec and gob decode
// every hot message to identical structs — the property that lets a
// mixed-codec cluster interoperate during a rolling upgrade.
func TestHotMessagesDifferential(t *testing.T) {
	for _, msg := range hotSamples() {
		t.Run(fmt.Sprintf("%T", msg), func(t *testing.T) {
			viaBinary := binaryRoundTrip(t, msg)
			viaGob := gobRoundTrip(t, msg)
			if !reflect.DeepEqual(viaBinary, viaGob) {
				t.Errorf("codecs disagree:\nbinary %#v\n   gob %#v", viaBinary, viaGob)
			}
		})
	}
}

func TestHotMessagesRegistered(t *testing.T) {
	for _, msg := range hotSamples() {
		if !wire.Registered(msg) {
			t.Errorf("%T has no binary codec", msg)
		}
	}
	// Cold messages deliberately ride the gob escape hatch.
	for _, msg := range []any{MsgScan{}, MsgClientSubmit{}, MsgMapInstall{}} {
		if wire.Registered(msg) {
			t.Errorf("%T unexpectedly has a binary codec", msg)
		}
	}
}

// TestWireKindsStable locks the kind bytes: they are wire format, shared
// across versions in a mixed cluster. Append new kinds, never renumber.
func TestWireKindsStable(t *testing.T) {
	want := map[wire.Kind]wire.Kind{
		wireKindInstall:          1,
		wireKindInstallResp:      2,
		wireKindAbort:            3,
		wireKindAbortBatch:       4,
		wireKindRead:             5,
		wireKindReadResp:         6,
		wireKindReadBatch:        7,
		wireKindReadBatchResp:    8,
		wireKindPush:             9,
		wireKindEnsure:           10,
		wireKindEnsureResp:       11,
		wireKindEnsureUpTo:       12,
		wireKindEnsureUpToResp:   13,
		wireKindEnsureBatch:      14,
		wireKindEnsureBatchResp:  15,
		wireKindApplyDeferred:    16,
		wireKindWaitComputed:     17,
		wireKindWaitComputedResp: 18,
		wireKindGrant:            19,
		wireKindRevoke:           20,
		wireKindRevokeAck:        21,
		wireKindCommitted:        22,
		wireKindPing:             23,
		wireKindPong:             24,
	}
	for got, w := range want {
		if got != w {
			t.Errorf("kind constant renumbered: got %d, want %d", got, w)
		}
	}
}

// TestMessageGolden locks the full frame bytes of representative hot
// messages. A mismatch means the wire format changed: that breaks mixed
// clusters, so bump wire.Version instead of editing the bytes.
func TestMessageGolden(t *testing.T) {
	t.Run("MsgRead", func(t *testing.T) {
		env := wire.Envelope{ID: 5, From: 2, Kind: 1, Msg: MsgRead{Key: "k1", Version: 9}}
		b, _, err := wire.AppendEnvelope(nil, &env)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{
			0x8a, 0x80, 0x80, 0x00, // frame len 10
			0x01,     // envelope kind: request
			0x05,     // id 5
			0x02,     // from 2
			0x00,     // flags: none
			0x05,     // msgKind: wireKindRead
			0x02,     // len("k1")
			'k', '1', // key
			0x09, // version 9
			0x00, // fwd = false
		}
		if !bytes.Equal(b, want) {
			t.Errorf("golden mismatch:\n got % x\nwant % x", b, want)
		}
	})
	t.Run("MsgGrant", func(t *testing.T) {
		env := wire.Envelope{ID: 1, From: 6, Kind: 3, Msg: MsgGrant{E: 300}}
		b, _, err := wire.AppendEnvelope(nil, &env)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{
			0x87, 0x80, 0x80, 0x00, // frame len 7
			0x03,       // envelope kind: oneway
			0x01,       // id 1
			0x06,       // from 6
			0x00,       // flags: none
			0x13,       // msgKind: wireKindGrant (19)
			0xac, 0x02, // epoch 300
		}
		if !bytes.Equal(b, want) {
			t.Errorf("golden mismatch:\n got % x\nwant % x", b, want)
		}
	})
}

// Benchmark messages sized like a hot TPC-C steady state: a 16-read batch
// and a 2-txn install. The CI alloc guards grep these for "0 allocs/op";
// encode appends into a reused buffer, decode fills a reused struct from a
// stable byte slice — exactly the flusher's and reader's steady state.

func benchReadBatch() MsgReadBatch {
	m := MsgReadBatch{Reads: make([]MsgRead, 16)}
	for i := range m.Reads {
		m.Reads[i] = MsgRead{Key: kv.Key(fmt.Sprintf("stock:%d:%d", i%4, i)), Version: tstamp.Make(9, uint32(i), 1)}
	}
	return m
}

func benchInstall() MsgInstall {
	ts := tstamp.Make(9, 7, 1)
	fn := &functor.Functor{Type: functor.TypeAdd, Arg: []byte{0, 0, 0, 0, 0, 0, 0, 5}}
	return MsgInstall{Txns: []InstallTxn{
		{Version: ts, Writes: []Write{{Key: "a", Functor: fn}, {Key: "b", Functor: fn}}},
		{Version: ts + 1, Writes: []Write{{Key: "c", Functor: fn}}, Requires: []kv.Key{"i:1"}},
	}}
}

func BenchmarkWireEncodeMsgReadBatch(b *testing.B) {
	m := benchReadBatch()
	buf := appendMsgReadBatch(nil, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendMsgReadBatch(buf[:0], &m)
	}
	_ = buf
}

func BenchmarkWireDecodeMsgReadBatch(b *testing.B) {
	src := benchReadBatch()
	buf := appendMsgReadBatch(nil, &src)
	var m MsgReadBatch
	// Warm up so the decode target's slices reach steady-state capacity.
	r := wire.NewReader(buf)
	decodeMsgReadBatchInto(&m, &r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wire.NewReader(buf)
		decodeMsgReadBatchInto(&m, &r)
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func BenchmarkWireEncodeMsgInstall(b *testing.B) {
	m := benchInstall()
	buf := appendMsgInstall(nil, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendMsgInstall(buf[:0], &m)
	}
	_ = buf
}

func BenchmarkWireDecodeMsgInstall(b *testing.B) {
	src := benchInstall()
	buf := appendMsgInstall(nil, &src)
	var m MsgInstall
	r := wire.NewReader(buf)
	decodeMsgInstallInto(&m, &r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wire.NewReader(buf)
		decodeMsgInstallInto(&m, &r)
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}
