package wal

import (
	"context"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/epoch"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/transport"
)

// TestFullDeploymentOverTCP assembles the production shape end to end:
// three servers over real TCP sockets, a remote epoch manager driving the
// grant/revoke/commit protocol as messages, WAL durability on every
// server, and a remote client using the client protocol — followed by a
// crash and a log-based recovery check.
func TestFullDeploymentOverTCP(t *testing.T) {
	core.RegisterMessages()
	dir := t.TempDir()
	const servers = 3
	const emID = transport.NodeID(servers)
	const clientID = transport.NodeID(100)

	addrs := make(map[transport.NodeID]string)
	for i := 0; i <= servers; i++ {
		addrs[transport.NodeID(i)] = "127.0.0.1:0"
	}
	addrs[clientID] = "127.0.0.1:0"
	net := transport.NewTCPNetwork(addrs)
	defer net.Close()

	reg := functor.NewRegistry()
	var srvs []*core.Server
	for i := 0; i < servers; i++ {
		log, err := Open(LogPath(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		defer log.Close()
		s, err := core.NewServer(core.ServerConfig{
			ID: i, NumServers: servers, Registry: reg, Durability: log,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs = append(srvs, s)
	}
	em, err := core.NewEMNode(net, emID, []transport.NodeID{0, 1, 2}, epoch.Config{
		Duration:      5 * time.Millisecond,
		SwitchTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Manager.Run(); err != nil {
		t.Fatal(err)
	}

	// A remote client joins the mesh and drives the client protocol.
	cli, err := net.Node(clientID, func(context.Context, transport.NodeID, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Wait for the first grant to reach all servers.
	deadline := time.Now().Add(5 * time.Second)
	for srvs[0].CurrentEpoch() == 0 || srvs[2].CurrentEpoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("servers never received an epoch grant")
		}
		time.Sleep(time.Millisecond)
	}

	submit := func(server transport.NodeID, key kv.Key, fn *functor.Functor) core.MsgClientSubmitResp {
		t.Helper()
		raw, err := cli.Call(ctx, server, core.MsgClientSubmit{
			Writes:       []core.Write{{Key: key, Functor: fn}},
			WaitComputed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return raw.(core.MsgClientSubmitResp)
	}

	if resp := submit(0, "deploy:balance", functor.Value(kv.EncodeInt64(100))); resp.Aborted {
		t.Fatalf("put aborted: %s", resp.Reason)
	}
	for i := 0; i < 3; i++ {
		if resp := submit(transport.NodeID(i%servers), "deploy:balance", functor.Add(10)); resp.Aborted {
			t.Fatalf("add aborted: %s", resp.Reason)
		}
	}
	raw, err := cli.Call(ctx, 2, core.MsgClientGet{Key: "deploy:balance"})
	if err != nil {
		t.Fatal(err)
	}
	resp := raw.(core.MsgClientGetResp)
	if n, _ := kv.DecodeInt64(resp.Value); !resp.Found || n != 130 {
		t.Fatalf("balance = %d found=%v, want 130", n, resp.Found)
	}

	// Crash: stop the EM and servers, then recover the owner partition
	// from its WAL and verify the committed chain survived.
	em.Close()
	owner := srvs[0].Owner("deploy:balance")
	for _, s := range srvs {
		s.Close()
	}
	store, last, err := Recover(LogPath(dir, owner))
	if err != nil {
		t.Fatal(err)
	}
	if last == 0 {
		t.Fatal("no committed epoch recovered")
	}
	view := store.View("deploy:balance")
	if len(view) != 4 { // the VALUE plus three ADDs
		t.Fatalf("recovered %d versions, want 4", len(view))
	}
}
