package wal

import (
	"fmt"

	"alohadb/internal/functor"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

// _abortedByPeer mirrors the resolution the coordinator's second round
// installs; replaying it restores the exact pre-crash state.
var _abortedByPeer = functor.AbortResolution("aborted: peer partition failed phase 1")

// Recover rebuilds one server's store from its log: replay every install
// and abort whose epoch is durably committed, discard everything newer (an
// epoch without its committed marker never became visible), and return the
// last committed epoch so the cluster can restart at the next one.
func Recover(path string) (*mvstore.Store, tstamp.Epoch, error) {
	// Pass 1: find the last committed epoch.
	var last tstamp.Epoch
	if err := Replay(path, func(e Entry) error {
		if e.Kind == KindEpochCommitted && e.Epoch > last {
			last = e.Epoch
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	// Pass 2: apply committed-epoch entries.
	store := mvstore.New()
	bound := tstamp.End(last)
	err := Replay(path, func(e Entry) error {
		switch e.Kind {
		case KindInstall:
			if e.Version >= bound {
				return nil // uncommitted epoch: discard
			}
			if _, err := store.Put(e.Key, e.Version, e.Functor); err != nil && err != mvstore.ErrVersionExists {
				return fmt.Errorf("wal: recover %q@%v: %w", e.Key, e.Version, err)
			}
		case KindAbort:
			if e.Version >= bound {
				return nil
			}
			for _, k := range e.Keys {
				if rec, ok := store.At(k, e.Version); ok {
					rec.Resolve(_abortedByPeer)
				}
			}
		case KindEpochCommitted:
			// Pass 1 consumed these.
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	// Publish the rebuilt versions (in-epoch staging -> readable).
	store.SealAll(tstamp.End(last))
	return store, last, nil
}
