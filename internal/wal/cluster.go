package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"alohadb/internal/core"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

// Cluster-level durability helpers: checkpoint every partition of a live
// cluster and rebuild all partitions after a crash. File layout inside
// dir: server-<i>.wal and server-<i>.ckpt.

// LogPath returns the WAL path for server id under dir; wire it through
// core.ClusterConfig.DurabilityFactory.
func LogPath(dir string, id int) string {
	return filepath.Join(dir, "server-"+strconv.Itoa(id)+".wal")
}

// CheckpointPath returns the checkpoint path for server id under dir.
func CheckpointPath(dir string, id int) string {
	return filepath.Join(dir, "server-"+strconv.Itoa(id)+".ckpt")
}

// CheckpointCluster settles and snapshots every partition at the last
// epoch committed on all servers, returning the checkpoint bound. Future
// recoveries via RecoverCluster combine the checkpoints with the log
// suffix above the bound.
func CheckpointCluster(c *core.Cluster, dir string) (tstamp.Timestamp, error) {
	// The cluster-wide settled bound is the minimum visible bound.
	bound := tstamp.Max
	for i := 0; i < c.NumServers(); i++ {
		if b := c.Server(i).VisibleBound(); b < bound {
			bound = b
		}
	}
	if bound == tstamp.Zero {
		return 0, fmt.Errorf("wal: cluster not started")
	}
	bound = bound.Prev()
	for i := 0; i < c.NumServers(); i++ {
		srv := c.Server(i)
		if err := srv.SettleUpTo(bound); err != nil {
			return 0, fmt.Errorf("wal: settle server %d: %w", i, err)
		}
		if err := WriteCheckpoint(srv.Store(), bound, CheckpointPath(dir, i)); err != nil {
			return 0, fmt.Errorf("wal: checkpoint server %d: %w", i, err)
		}
	}
	return bound, nil
}

// RecoverCluster rebuilds every partition from dir (checkpoint if present
// plus log) and returns the stores and the epoch the replacement cluster
// should start at.
func RecoverCluster(dir string, servers int) ([]*mvstore.Store, tstamp.Epoch, error) {
	stores := make([]*mvstore.Store, servers)
	var last tstamp.Epoch
	for i := 0; i < servers; i++ {
		ckpt := CheckpointPath(dir, i)
		if !fileExists(ckpt) {
			ckpt = ""
		}
		store, l, err := RecoverFull(ckpt, LogPath(dir, i))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: recover server %d: %w", i, err)
		}
		stores[i] = store
		if l > last {
			last = l
		}
	}
	return stores, last + 1, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
