package wal

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// TestEntryCodecProperty round-trips randomized install entries through
// the log framing.
func TestEntryCodecProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(version uint64, key string, handler string, arg []byte, readSet []string) bool {
		i++
		path := filepath.Join(dir, "wal-"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+(i/676)%26)))
		l, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]kv.Key, len(readSet))
		for j, s := range readSet {
			keys[j] = kv.Key(s)
		}
		if len(keys) == 0 {
			keys = nil
		}
		if len(arg) == 0 {
			arg = nil
		}
		fn := functor.User("h"+handler, arg, keys)
		v := tstamp.Timestamp(version)
		if err := l.LogInstall(v, kv.Key(key), fn); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var got Entry
		n := 0
		if err := ReplayStrict(path, func(e Entry) error {
			got = e
			n++
			return nil
		}); err != nil {
			return false
		}
		if n != 1 || got.Kind != KindInstall || got.Version != v || got.Key != kv.Key(key) {
			return false
		}
		if got.Functor.Handler != "h"+handler || len(got.Functor.ReadSet) != len(keys) {
			return false
		}
		for j := range keys {
			if got.Functor.ReadSet[j] != keys[j] {
				return false
			}
		}
		return string(got.Functor.Arg) == string(arg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogPathHelpers(t *testing.T) {
	if LogPath("/x", 3) != "/x/server-3.wal" {
		t.Errorf("LogPath = %q", LogPath("/x", 3))
	}
	if CheckpointPath("/x", 12) != "/x/server-12.ckpt" {
		t.Errorf("CheckpointPath = %q", CheckpointPath("/x", 12))
	}
	l, err := Open(filepath.Join(t.TempDir(), "w"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Path() == "" {
		t.Error("Path() empty")
	}
}
