package wal

import (
	"context"
	"testing"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
)

// TestClusterCheckpointRecovery runs the full operational cycle: serve
// with WAL durability, checkpoint mid-life, keep serving, crash, recover
// from checkpoint + log suffix, and keep serving again.
func TestClusterCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	const servers = 2

	newCluster := func(cfg core.ClusterConfig) *core.Cluster {
		cfg.Servers = servers
		cfg.ManualEpochs = true
		cfg.DurabilityFactory = func(id int) (core.DurabilityHook, error) {
			return Open(LogPath(dir, id))
		}
		c, err := core.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := newCluster(core.ClusterConfig{})
	if err := c1.Load([]kv.Pair{
		{Key: "bal", Value: kv.EncodeInt64(100)},
		{Key: "other", Value: kv.EncodeInt64(7)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bump := func(c *core.Cluster, delta int64) {
		t.Helper()
		if _, err := c.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: "bal", Functor: functor.Add(delta)},
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AdvanceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	bump(c1, 10)
	bump(c1, 10)

	// Checkpoint at bal=120, then two more epochs of writes land in the
	// log suffix only.
	if _, err := CheckpointCluster(c1, dir); err != nil {
		t.Fatal(err)
	}
	bump(c1, 5)
	bump(c1, 5)
	// An uncommitted write that the crash must discard.
	if _, err := c1.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
		{Key: "bal", Functor: functor.Add(1000)},
	}}); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	stores, startEpoch, err := RecoverCluster(dir, servers)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCluster(core.ClusterConfig{Stores: stores, StartEpoch: startEpoch})
	defer c2.Close()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c2.Server(1).GetCommitted(ctx, "bal")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := kv.DecodeInt64(v)
	if !found || n != 130 {
		t.Errorf("bal = %d found=%v, want 130", n, found)
	}
	v, found, err = c2.Server(0).GetCommitted(ctx, "other")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := kv.DecodeInt64(v); !found || n != 7 {
		t.Errorf("other = %d found=%v, want 7", n, found)
	}
	// The recovered cluster keeps serving.
	bump(c2, 3)
	v, _, err = c2.Server(0).GetCommitted(ctx, "bal")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := kv.DecodeInt64(v); n != 133 {
		t.Errorf("bal after recovery write = %d, want 133", n)
	}
}
