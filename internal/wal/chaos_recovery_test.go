package wal_test

// Crash-at-the-marker recovery tests: a hook that dies exactly around
// LogEpochCommitted simulates the two nastiest crash points — just before
// the commit marker hits disk (the epoch must vanish wholesale on
// recovery) and just after (the epoch must survive wholesale, even though
// the visibility broadcast never finished). The chaos oracle checks the
// recovered state against the recorded history in both cases.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"alohadb/internal/chaos/oracle"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
	"alohadb/internal/wal"
)

// crashingHook wraps a *wal.Log and simulates a process crash at the
// target epoch's commit marker: once dead, every later hook call is
// dropped on the floor (the process is gone), and the wrapped Log is
// deliberately never closed — Close would flush buffered tails and turn
// the crash into a clean shutdown.
type crashingHook struct {
	inner  *wal.Log
	target tstamp.Epoch
	// afterMarker selects the crash point: true crashes just after the
	// marker is durable, false just before.
	afterMarker bool
	dead        atomic.Bool
}

func (h *crashingHook) LogInstall(v tstamp.Timestamp, k kv.Key, fn *functor.Functor) error {
	if h.dead.Load() {
		return nil
	}
	return h.inner.LogInstall(v, k, fn)
}

func (h *crashingHook) LogAbort(v tstamp.Timestamp, keys []kv.Key) error {
	if h.dead.Load() {
		return nil
	}
	return h.inner.LogAbort(v, keys)
}

func (h *crashingHook) LogEpochCommitted(ctx context.Context, e tstamp.Epoch) error {
	if h.dead.Load() {
		return nil
	}
	if e == h.target {
		if h.afterMarker {
			err := h.inner.LogEpochCommitted(ctx, e)
			h.dead.Store(true)
			return err
		}
		h.dead.Store(true)
		return fmt.Errorf("crash injected before epoch %d marker", e)
	}
	return h.inner.LogEpochCommitted(ctx, e)
}

func appendRegistry() *functor.Registry {
	reg := functor.NewRegistry()
	reg.MustRegister("append", func(fc *functor.Context) (*functor.Resolution, error) {
		prev := fc.Reads[fc.Key]
		out := make([]byte, 0, len(prev.Value)+len(fc.Arg))
		out = append(out, prev.Value...)
		out = append(out, fc.Arg...)
		return functor.ValueResolution(out), nil
	})
	return reg
}

// runMarkerCrash drives a 2-server cluster through epochs 1..target+1,
// crashes the durability hooks at target's marker, recovers, and lets the
// oracle judge the surviving state.
func runMarkerCrash(t *testing.T, afterMarker bool) {
	t.Helper()
	const servers = 2
	target := tstamp.Epoch(3)
	dir := t.TempDir()
	reg := appendRegistry()
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Registry:     reg,
		DurabilityFactory: func(id int) (core.DurabilityHook, error) {
			lg, err := wal.Open(wal.LogPath(dir, id))
			if err != nil {
				return nil, err
			}
			return &crashingHook{inner: lg, target: target, afterMarker: afterMarker}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	hist := oracle.New()
	keys := []kv.Key{"a", "b", "c", "d"}
	ctx := context.Background()
	tag := 0
	// Epochs 1..target commit (target's marker is where the crash hits);
	// epoch target+1 installs but never commits anywhere.
	for e := tstamp.Epoch(1); e <= target+1; e++ {
		for i := 0; i < 3; i++ {
			tag++
			name := fmt.Sprintf("t%d", tag)
			wkeys := []kv.Key{keys[tag%len(keys)], keys[(tag+1)%len(keys)]}
			txn := core.Txn{}
			for _, k := range wkeys {
				txn.Writes = append(txn.Writes, core.Write{Key: k, Functor: functor.User("append", []byte(name+";"), nil)})
			}
			hist.Begin(name, wkeys)
			results, _, err := c.Server(tag%servers).SubmitBatch(ctx, []core.Txn{txn})
			if err != nil {
				t.Fatalf("txn %s: %v", name, err)
			}
			if results[0].Aborted {
				t.Fatalf("txn %s aborted unexpectedly: %+v", name, results[0])
			}
			if got := results[0].Version.Epoch(); got != e {
				t.Fatalf("txn %s landed in epoch %d, want %d", name, got, e)
			}
			hist.Finish(name, results[0].Version, oracle.StatusCommitted)
		}
		if e <= target {
			if _, err := c.AdvanceEpoch(); err != nil {
				t.Fatalf("advance to %d: %v", e+1, err)
			}
		}
	}
	// The crash: abandon the cluster. The hooks' Logs are never closed, so
	// nothing buffered gets a farewell flush.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	stores, start, err := wal.RecoverCluster(dir, servers)
	if err != nil {
		t.Fatal(err)
	}
	wantLast := target
	if !afterMarker {
		wantLast = target - 1
	}
	if start != wantLast+1 {
		t.Fatalf("recovered start epoch = %d, want %d", start, wantLast+1)
	}
	hist.DiscardEpochsAfter(wantLast)

	c2, err := core.NewCluster(core.ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Registry:     reg,
		Stores:       stores,
		StartEpoch:   start,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, found, err := c2.Server(0).GetCommitted(ctx, k)
		if err != nil {
			t.Fatalf("final read %q: %v", k, err)
		}
		hist.ObserveFinal(k, v, found)
		// Belt and braces beyond the oracle: the target epoch's tags must
		// be present iff the marker made it to disk.
		for _, got := range oracle.ParseTags(v) {
			var n int
			if _, err := fmt.Sscanf(got, "t%d", &n); err != nil {
				t.Fatalf("unparsable tag %q in %q", got, v)
			}
			e := tstamp.Epoch(1 + (n-1)/3)
			if e > wantLast {
				t.Errorf("key %q carries tag %s from epoch %d, beyond recovered epoch %d", k, got, e, wantLast)
			}
		}
	}
	if vs := hist.Check(); len(vs) != 0 {
		t.Fatalf("oracle violations after recovery (afterMarker=%v):\n%v", afterMarker, vs)
	}
}

// TestCrashAfterMarkerBeforeVisibility: the marker is durable but the
// crash lands before the visibility broadcast finishes — recovery must
// surface the whole epoch (observable implies recoverable).
func TestCrashAfterMarkerBeforeVisibility(t *testing.T) { runMarkerCrash(t, true) }

// TestCrashBeforeMarker: the epoch's installs were written but its marker
// never hit disk — recovery must roll the epoch back wholesale, with no
// half-visible remains.
func TestCrashBeforeMarker(t *testing.T) { runMarkerCrash(t, false) }
