package wal

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

func ts(e tstamp.Epoch, seq uint32) tstamp.Timestamp { return tstamp.Make(e, seq, 0) }

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fn := functor.User("h", []byte("arg"), []kv.Key{"a", "b"})
	if err := l.LogInstall(ts(1, 1), "k1", fn); err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(1, 2), "k2", functor.Add(7)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogAbort(ts(1, 2), []kv.Key{"k2", "k3"}); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var entries []Entry
	if err := ReplayStrict(path, func(e Entry) error {
		entries = append(entries, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("replayed %d entries, want 4", len(entries))
	}
	if entries[0].Kind != KindInstall || entries[0].Key != "k1" ||
		entries[0].Functor.Handler != "h" || len(entries[0].Functor.ReadSet) != 2 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[2].Kind != KindAbort || len(entries[2].Keys) != 2 {
		t.Errorf("entry 2 = %+v", entries[2])
	}
	if entries[3].Kind != KindEpochCommitted || entries[3].Epoch != 1 {
		t.Errorf("entry 3 = %+v", entries[3])
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(1, 1), "k", functor.Value(kv.Value("v"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage to simulate a torn write at crash time.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	count := 0
	if err := Replay(path, func(Entry) error { count++; return nil }); err != nil {
		t.Fatalf("lenient replay failed: %v", err)
	}
	if count != 1 {
		t.Errorf("replayed %d entries, want 1", count)
	}
	if err := ReplayStrict(path, func(Entry) error { return nil }); err == nil {
		t.Error("strict replay should fail on torn tail")
	}
}

func TestReplayCRCCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(1, 1), "k", functor.Value(kv.Value("value-bytes"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := Replay(path, func(Entry) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("corrupt entry replayed")
	}
}

func TestRecoverDiscardsUncommittedEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: committed.
	if err := l.LogInstall(ts(1, 1), "a", functor.Value(kv.EncodeInt64(10))); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: crash before the marker.
	if err := l.LogInstall(ts(2, 1), "a", functor.Value(kv.EncodeInt64(99))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	store, last, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if last != 1 {
		t.Errorf("last committed = %d, want 1", last)
	}
	if got := len(store.View("a")); got != 1 {
		t.Errorf("key a has %d versions, want 1 (uncommitted discarded)", got)
	}
}

func TestRecoverAppliesAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(1, 1), "x", functor.Value(kv.Value("poison"))); err != nil {
		t.Fatal(err)
	}
	if err := l.LogAbort(ts(1, 1), []kv.Key{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	store, _, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := store.At("x", ts(1, 1))
	if !ok {
		t.Fatal("record missing after recovery")
	}
	res := rec.Resolution()
	if res == nil || res.Kind != functor.ResolvedAborted {
		t.Errorf("resolution = %v, want ABORTED", res)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := mvstore.New()
	put := func(k kv.Key, v tstamp.Timestamp, fn *functor.Functor, res *functor.Resolution) {
		rec, err := src.Put(k, v, fn)
		if err != nil {
			t.Fatal(err)
		}
		rec.Resolve(res)
		src.Seal(k, tstamp.Max)
		src.AdvanceWatermark(k, v)
	}
	put("a", ts(1, 1), functor.Value(kv.EncodeInt64(1)), functor.ValueResolution(kv.EncodeInt64(1)))
	put("a", ts(2, 1), functor.Value(kv.EncodeInt64(2)), functor.ValueResolution(kv.EncodeInt64(2)))
	put("gone", ts(1, 2), functor.Deleted(), functor.DeleteResolution())
	// An aborted head: the checkpoint must fall back to the value below.
	put("b", ts(1, 3), functor.Value(kv.EncodeInt64(7)), functor.ValueResolution(kv.EncodeInt64(7)))
	put("b", ts(2, 2), functor.Aborted(), functor.AbortResolution("x"))

	path := filepath.Join(dir, "ckpt")
	bound := tstamp.End(2).Prev()
	if err := WriteCheckpoint(src, bound, path); err != nil {
		t.Fatal(err)
	}
	loaded, gotBound, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotBound != bound {
		t.Errorf("bound = %v, want %v", gotBound, bound)
	}
	rec, ok := loaded.Latest("a", tstamp.Max)
	if !ok || rec.Version != ts(2, 1) {
		t.Fatalf("a: rec=%v ok=%v", rec, ok)
	}
	if n, _ := kv.DecodeInt64(rec.Resolution().Value); n != 2 {
		t.Errorf("a = %d, want 2", n)
	}
	rec, ok = loaded.Latest("gone", tstamp.Max)
	if !ok || rec.Resolution().Kind != functor.ResolvedDeleted {
		t.Error("tombstone not preserved")
	}
	rec, ok = loaded.Latest("b", tstamp.Max)
	if !ok || rec.Version != ts(1, 3) {
		t.Fatalf("b: rec=%+v ok=%v (aborted head must be skipped)", rec, ok)
	}
}

func TestCheckpointRejectsUncomputed(t *testing.T) {
	src := mvstore.New()
	if _, err := src.Put("k", ts(1, 1), functor.Add(1)); err != nil {
		t.Fatal(err)
	}
	src.SealAll(tstamp.Max)
	err := WriteCheckpoint(src, tstamp.Max, filepath.Join(t.TempDir(), "ckpt"))
	if err == nil {
		t.Error("checkpoint of uncomputed store should fail")
	}
}

// TestClusterCrashRecovery runs a full cluster with WAL durability, kills
// it, recovers every partition from its log, restarts at the next epoch,
// and verifies both the recovered state and continued operation.
func TestClusterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := func(id int) string { return filepath.Join(dir, "server-"+string(rune('0'+id))+".wal") }
	mkCluster := func(stores []*mvstore.Store, start tstamp.Epoch) *core.Cluster {
		c, err := core.NewCluster(core.ClusterConfig{
			Servers:      2,
			ManualEpochs: true,
			Stores:       stores,
			StartEpoch:   start,
			DurabilityFactory: func(id int) (core.DurabilityHook, error) {
				return Open(logPath(id))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := mkCluster(nil, 0)
	if err := c1.Load([]kv.Pair{{Key: "bal", Value: kv.EncodeInt64(100)}}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c1.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: "bal", Functor: functor.Add(10)},
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.AdvanceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// One more write whose epoch never commits (simulated crash).
	if _, err := c1.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
		{Key: "bal", Functor: functor.Add(1000)},
	}}); err != nil {
		t.Fatal(err)
	}
	lastEpoch := c1.CurrentEpoch()
	c1.Close()

	// Recover both partitions.
	stores := make([]*mvstore.Store, 2)
	var lastCommitted tstamp.Epoch
	for i := 0; i < 2; i++ {
		store, last, err := Recover(logPath(i))
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = store
		if last > lastCommitted {
			lastCommitted = last
		}
	}
	if lastCommitted != lastEpoch-1 {
		t.Errorf("last committed = %d, want %d", lastCommitted, lastEpoch-1)
	}

	c2 := mkCluster(stores, lastCommitted+1)
	defer c2.Close()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c2.Server(0).GetCommitted(ctx, "bal")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := kv.DecodeInt64(v)
	if !found || n != 130 {
		t.Errorf("bal = %d found=%v, want 130 (uncommitted +1000 discarded)", n, found)
	}
	// The recovered cluster keeps working.
	if _, err := c2.Server(1).Submit(ctx, core.Txn{Writes: []core.Write{
		{Key: "bal", Functor: functor.Sub(30)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	v, _, err = c2.Server(0).GetCommitted(ctx, "bal")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := kv.DecodeInt64(v); n != 100 {
		t.Errorf("bal after recovery write = %d, want 100", n)
	}
}

func TestRecoverFullWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal")
	ckptPath := filepath.Join(dir, "ckpt")

	l, err := Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 committed, checkpointed; epoch 2 committed after the
	// checkpoint; epoch 3 uncommitted.
	if err := l.LogInstall(ts(1, 1), "k", functor.Value(kv.EncodeInt64(1))); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ckptStore := mvstore.New()
	rec, err := ckptStore.Put("k", ts(1, 1), functor.Value(kv.EncodeInt64(1)))
	if err != nil {
		t.Fatal(err)
	}
	rec.Resolve(functor.ValueResolution(kv.EncodeInt64(1)))
	ckptStore.SealAll(tstamp.Max)
	ckptStore.AdvanceWatermark("k", ts(1, 1))
	if err := WriteCheckpoint(ckptStore, tstamp.End(1).Prev(), ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(2, 1), "k", functor.Value(kv.EncodeInt64(2))); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpochCommitted(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := l.LogInstall(ts(3, 1), "k", functor.Value(kv.EncodeInt64(3))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	store, last, err := RecoverFull(ckptPath, logPath)
	if err != nil {
		t.Fatal(err)
	}
	if last != 2 {
		t.Errorf("last = %d, want 2", last)
	}
	view := store.View("k")
	if len(view) != 2 {
		t.Fatalf("k has %d versions, want 2", len(view))
	}
	if view[1].Version != ts(2, 1) {
		t.Errorf("newest version = %v, want %v", view[1].Version, ts(2, 1))
	}
}

// TestLastSyncAge covers the readiness-probe hook: unknown before the
// first fsync, then a small age immediately after one.
func TestLastSyncAge(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, ok := l.LastSyncAge(); ok {
		t.Error("LastSyncAge ok before any Sync")
	}
	if err := l.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	age, ok := l.LastSyncAge()
	if !ok {
		t.Fatal("LastSyncAge not ok after epoch commit")
	}
	if age < 0 || age > 10*time.Second {
		t.Errorf("implausible fsync age %v", age)
	}
}
