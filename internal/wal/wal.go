// Package wal implements ALOHA-DB's epoch-granularity write-ahead log and
// checkpointing, the fault-tolerance strategy inherited from ALOHA-KV
// (paper §III-A). Installs and second-round aborts are appended as they
// happen; the epoch-committed marker is appended and synced at each epoch
// switch, making the epoch the atomic durability unit. Recovery replays
// installs and aborts of committed epochs only — an epoch without its
// marker never happened, exactly matching ECC's visibility rule.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/tstamp"
)

// EntryKind tags one log record.
type EntryKind uint8

const (
	// KindInstall records one installed key-functor pair.
	KindInstall EntryKind = iota + 1
	// KindAbort records a second-round abort.
	KindAbort
	// KindEpochCommitted marks an epoch fully committed (synced).
	KindEpochCommitted
)

// Entry is one decoded log record.
type Entry struct {
	Kind    EntryKind
	Version tstamp.Timestamp
	Epoch   tstamp.Epoch // KindEpochCommitted only
	Key     kv.Key       // KindInstall only
	Functor *functor.Functor
	Keys    []kv.Key // KindAbort only
}

// ErrCorrupt reports a failed CRC or framing check; replay stops at the
// last intact record, which is the standard torn-write recovery rule.
var ErrCorrupt = errors.New("wal: corrupt entry")

// Log is an append-only write-ahead log for one server. Appends are
// buffered; Sync flushes and fsyncs. All methods are safe for concurrent
// use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string

	appendHist *metrics.Histogram // framed record sizes in bytes
	fsyncHist  *metrics.Histogram // Sync (flush+fsync) latency

	// lastSyncDur is the duration of the last completed Sync (flush+fsync);
	// zero until the first. The epoch journal splits the durable-marker
	// cost into fsync vs epoch ship with it.
	lastSyncDur atomic.Int64

	// lastSync is the wall time (UnixNano) of the last completed Sync;
	// zero until the first. Readiness probes alert on its age: an epoch
	// switch fsyncs once per epoch, so a stale fsync means commits stopped
	// reaching disk.
	lastSync atomic.Int64
}

// Open creates or appends to the log at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{
		f: f, w: bufio.NewWriterSize(f, 1<<16), path: path,
		appendHist: metrics.NewHistogram(metrics.SizeBounds()),
		fsyncHist:  metrics.NewHistogram(metrics.LatencyBounds()),
	}, nil
}

// Metric family names exported by the log.
const (
	// FamAppendBytes is the framed record size distribution.
	FamAppendBytes = "aloha_wal_append_bytes"
	// FamFsync is the Sync (flush + fsync) latency distribution.
	FamFsync = "aloha_wal_fsync_seconds"
)

// MetricFamilies returns the log's metric snapshot. core.Server detects
// this method on its durability hook and folds the families into its own.
func (l *Log) MetricFamilies() []metrics.Family {
	return []metrics.Family{
		{
			Name:   FamAppendBytes,
			Help:   "Size of appended WAL records including framing.",
			Kind:   metrics.KindHistogram,
			Series: []metrics.Series{metrics.HistSeries(l.appendHist.Snapshot())},
		},
		{
			Name: FamFsync,
			Help: "WAL flush+fsync latency (one per committed epoch).",
			Kind: metrics.KindHistogram, Unit: metrics.UnitSeconds,
			Series: []metrics.Series{metrics.HistSeries(l.fsyncHist.Snapshot())},
		},
	}
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// LogInstall implements core.DurabilityHook.
func (l *Log) LogInstall(version tstamp.Timestamp, key kv.Key, fn *functor.Functor) error {
	payload := make([]byte, 0, 64)
	payload = binary.BigEndian.AppendUint64(payload, uint64(version))
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = functor.AppendFunctor(payload, fn)
	return l.append(KindInstall, payload)
}

// LogAbort implements core.DurabilityHook.
func (l *Log) LogAbort(version tstamp.Timestamp, keys []kv.Key) error {
	payload := make([]byte, 0, 64)
	payload = binary.BigEndian.AppendUint64(payload, uint64(version))
	payload = binary.AppendUvarint(payload, uint64(len(keys)))
	for _, k := range keys {
		payload = binary.AppendUvarint(payload, uint64(len(k)))
		payload = append(payload, k...)
	}
	return l.append(KindAbort, payload)
}

// LogEpochCommitted implements core.DurabilityHook: append the marker and
// fsync, making the whole epoch durable in one synchronous write per epoch
// (the amortization that lets ECC log at memory speed). The context carries
// the epoch-commit trace; the fsync itself is not cancellable mid-call.
func (l *Log) LogEpochCommitted(ctx context.Context, e tstamp.Epoch) error {
	var payload [4]byte
	binary.BigEndian.PutUint32(payload[:], uint32(e))
	if err := l.append(KindEpochCommitted, payload[:]); err != nil {
		return err
	}
	return l.Sync()
}

// append frames one record: crc32(kind|len|payload) kind len payload.
func (l *Log) append(kind EntryKind, payload []byte) error {
	var hdr [9]byte
	hdr[4] = byte(kind)
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(payload)
	binary.BigEndian.PutUint32(hdr[:4], crc.Sum32())
	l.appendHist.Observe(int64(len(hdr) + len(payload)))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.fsyncHist.ObserveDuration(time.Since(start))
	l.lastSyncDur.Store(int64(time.Since(start)))
	l.lastSync.Store(time.Now().UnixNano())
	return nil
}

// LastSyncDuration reports how long the last completed Sync took; ok is
// false before the first. core.Server detects this method on its
// durability hook to split the epoch journal's durable-marker cost into
// fsync vs epoch ship.
func (l *Log) LastSyncDuration() (time.Duration, bool) {
	ns := l.lastSyncDur.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Duration(ns), true
}

// LastSyncAge reports the time since the last completed Sync; ok is false
// before the first. core.Server detects this method on its durability hook
// for stall snapshots, and aloha-server's readiness probe alerts when the
// age exceeds its threshold.
func (l *Log) LastSyncAge() (time.Duration, bool) {
	ns := l.lastSync.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, ns)), true
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// Replay streams every intact entry of the log at path to fn, stopping at
// the first corrupt/torn record (which it reports via ErrCorrupt only if
// strict is requested through ReplayStrict; plain Replay treats a torn tail
// as end-of-log).
func Replay(path string, fn func(Entry) error) error { return replay(path, fn, false) }

// ReplayStrict is Replay but fails on any corrupt record.
func ReplayStrict(path string, fn func(Entry) error) error { return replay(path, fn, true) }

func replay(path string, fn func(Entry) error, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		entry, err := readEntry(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if strict {
				return err
			}
			return nil // torn tail: recover up to here
		}
		if err := fn(entry); err != nil {
			return err
		}
	}
}

func readEntry(r *bufio.Reader) (Entry, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Entry{}, fmt.Errorf("%w: torn header", ErrCorrupt)
		}
		return Entry{}, err
	}
	kind := EntryKind(hdr[4])
	size := binary.BigEndian.Uint32(hdr[5:])
	if size > 1<<24 {
		return Entry{}, fmt.Errorf("%w: implausible size %d", ErrCorrupt, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Entry{}, fmt.Errorf("%w: torn payload", ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(hdr[:4]) {
		return Entry{}, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return decodeEntry(kind, payload)
}

func decodeEntry(kind EntryKind, payload []byte) (Entry, error) {
	switch kind {
	case KindInstall:
		if len(payload) < 8 {
			return Entry{}, fmt.Errorf("%w: short install", ErrCorrupt)
		}
		e := Entry{Kind: kind, Version: tstamp.Timestamp(binary.BigEndian.Uint64(payload))}
		rest := payload[8:]
		klen, n := binary.Uvarint(rest)
		if n <= 0 || klen > uint64(len(rest)-n) {
			return Entry{}, fmt.Errorf("%w: install key", ErrCorrupt)
		}
		e.Key = kv.Key(rest[n : n+int(klen)])
		fn, _, err := functor.DecodeFunctor(rest[n+int(klen):])
		if err != nil {
			return Entry{}, fmt.Errorf("%w: install functor: %v", ErrCorrupt, err)
		}
		e.Functor = fn
		return e, nil
	case KindAbort:
		if len(payload) < 8 {
			return Entry{}, fmt.Errorf("%w: short abort", ErrCorrupt)
		}
		e := Entry{Kind: kind, Version: tstamp.Timestamp(binary.BigEndian.Uint64(payload))}
		rest := payload[8:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > uint64(len(rest)) {
			return Entry{}, fmt.Errorf("%w: abort count", ErrCorrupt)
		}
		rest = rest[n:]
		for i := uint64(0); i < count; i++ {
			klen, n := binary.Uvarint(rest)
			if n <= 0 || klen > uint64(len(rest)-n) {
				return Entry{}, fmt.Errorf("%w: abort key", ErrCorrupt)
			}
			e.Keys = append(e.Keys, kv.Key(rest[n:n+int(klen)]))
			rest = rest[n+int(klen):]
		}
		return e, nil
	case KindEpochCommitted:
		if len(payload) != 4 {
			return Entry{}, fmt.Errorf("%w: bad epoch marker", ErrCorrupt)
		}
		return Entry{Kind: kind, Epoch: tstamp.Epoch(binary.BigEndian.Uint32(payload))}, nil
	default:
		return Entry{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}
