package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

// A checkpoint captures, for every key, the latest final value (or
// tombstone) at or below a bound timestamp. Restoring a checkpoint and
// replaying the log's entries above the bound reproduces the pre-crash
// committed state while letting the log be truncated. Historical versions
// below the bound are collapsed into one value per key, the same trade-off
// as mvstore.Compact.

const (
	_ckptMagic   = 0x414c4348 // "ALCH"
	_ckptVersion = 1
)

// WriteCheckpoint scans the store and writes every key's latest readable
// state at or below bound to path. The store should be quiesced up to
// bound (all functors at or below it computed), which the caller arranges
// by draining the processors after an epoch switch; unresolved records at
// or below the bound are an error.
func WriteCheckpoint(store *mvstore.Store, bound tstamp.Timestamp, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[:4], _ckptMagic)
	binary.BigEndian.PutUint32(hdr[4:8], _ckptVersion)
	binary.BigEndian.PutUint64(hdr[8:], uint64(bound))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	var scanErr error
	store.Range(func(k kv.Key, c *mvstore.Chain) bool {
		view := c.View()
		// Latest readable resolution at or below bound: skip aborted and
		// skipped versions, stop at a value or tombstone.
		for i := len(view) - 1; i >= 0; i-- {
			rec := view[i]
			if rec.Version > bound {
				continue
			}
			res := rec.Resolution()
			if res == nil {
				scanErr = fmt.Errorf("wal: checkpoint: %q@%v not computed", k, rec.Version)
				return false
			}
			if !res.Readable() {
				continue
			}
			if werr := writeCkptRecord(w, k, rec.Version, res); werr != nil {
				scanErr = werr
				return false
			}
			break
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func writeCkptRecord(w io.Writer, k kv.Key, v tstamp.Timestamp, res *functor.Resolution) error {
	payload := make([]byte, 0, 32+len(k)+len(res.Value))
	payload = binary.BigEndian.AppendUint64(payload, uint64(v))
	payload = binary.AppendUvarint(payload, uint64(len(k)))
	payload = append(payload, k...)
	payload = append(payload, byte(res.Kind))
	payload = binary.AppendUvarint(payload, uint64(len(res.Value)))
	payload = append(payload, res.Value...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(payload)
	binary.BigEndian.PutUint32(hdr[:4], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// LoadCheckpoint restores a store from a checkpoint file, returning the
// bound timestamp the checkpoint covers.
func LoadCheckpoint(path string) (*mvstore.Store, tstamp.Timestamp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: checkpoint open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("wal: checkpoint header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[:4]) != _ckptMagic {
		return nil, 0, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	if got := binary.BigEndian.Uint32(hdr[4:8]); got != _ckptVersion {
		return nil, 0, fmt.Errorf("wal: unsupported checkpoint version %d", got)
	}
	bound := tstamp.Timestamp(binary.BigEndian.Uint64(hdr[8:]))
	store := mvstore.New()
	for {
		var rhdr [8]byte
		if _, err := io.ReadFull(r, rhdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, 0, fmt.Errorf("%w: torn checkpoint record", ErrCorrupt)
		}
		size := binary.BigEndian.Uint32(rhdr[4:])
		if size > 1<<24 {
			return nil, 0, fmt.Errorf("%w: implausible checkpoint record", ErrCorrupt)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, 0, fmt.Errorf("%w: torn checkpoint record", ErrCorrupt)
		}
		crc := crc32.NewIEEE()
		crc.Write(rhdr[4:])
		crc.Write(payload)
		if crc.Sum32() != binary.BigEndian.Uint32(rhdr[:4]) {
			return nil, 0, fmt.Errorf("%w: checkpoint crc", ErrCorrupt)
		}
		if err := loadCkptRecord(store, payload); err != nil {
			return nil, 0, err
		}
	}
	store.SealAll(tstamp.Max)
	return store, bound, nil
}

func loadCkptRecord(store *mvstore.Store, payload []byte) error {
	if len(payload) < 9 {
		return fmt.Errorf("%w: short checkpoint record", ErrCorrupt)
	}
	v := tstamp.Timestamp(binary.BigEndian.Uint64(payload))
	rest := payload[8:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || klen > uint64(len(rest)-n) {
		return fmt.Errorf("%w: checkpoint key", ErrCorrupt)
	}
	k := kv.Key(rest[n : n+int(klen)])
	rest = rest[n+int(klen):]
	if len(rest) < 1 {
		return fmt.Errorf("%w: checkpoint kind", ErrCorrupt)
	}
	kind := functor.ResolutionKind(rest[0])
	rest = rest[1:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || vlen > uint64(len(rest)-n) {
		return fmt.Errorf("%w: checkpoint value", ErrCorrupt)
	}
	val := make(kv.Value, vlen)
	copy(val, rest[n:n+int(vlen)])

	var fn *functor.Functor
	var res *functor.Resolution
	switch kind {
	case functor.Resolved:
		fn = functor.Value(val)
		res = functor.ValueResolution(val)
	case functor.ResolvedDeleted:
		fn = functor.Deleted()
		res = functor.DeleteResolution()
	default:
		return fmt.Errorf("%w: checkpoint resolution kind %d", ErrCorrupt, kind)
	}
	rec, err := store.Put(k, v, fn)
	if err != nil {
		return err
	}
	rec.Resolve(res)
	store.AdvanceWatermark(k, v)
	return nil
}

// RecoverFull restores a store from an optional checkpoint plus the log:
// the checkpoint seeds state up to its bound, and the log contributes
// installs/aborts above the bound belonging to committed epochs. It
// returns the last committed epoch. An empty ckptPath means log-only
// recovery.
func RecoverFull(ckptPath, logPath string) (*mvstore.Store, tstamp.Epoch, error) {
	store := mvstore.New()
	var ckptBound tstamp.Timestamp
	if ckptPath != "" {
		var err error
		store, ckptBound, err = LoadCheckpoint(ckptPath)
		if err != nil {
			return nil, 0, err
		}
	}
	var last tstamp.Epoch
	if err := Replay(logPath, func(e Entry) error {
		if e.Kind == KindEpochCommitted && e.Epoch > last {
			last = e.Epoch
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	bound := tstamp.End(last)
	err := Replay(logPath, func(e Entry) error {
		switch e.Kind {
		case KindInstall:
			if e.Version <= ckptBound || e.Version >= bound {
				return nil
			}
			if _, err := store.Put(e.Key, e.Version, e.Functor); err != nil && err != mvstore.ErrVersionExists {
				return err
			}
		case KindAbort:
			if e.Version <= ckptBound || e.Version >= bound {
				return nil
			}
			for _, k := range e.Keys {
				if rec, ok := store.At(k, e.Version); ok {
					rec.Resolve(_abortedByPeer)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	store.SealAll(bound)
	return store, last, nil
}
