package wal

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
)

// FuzzReplay hardens log replay against arbitrary file contents: lenient
// replay must never error or panic, and strict replay must never panic.
func FuzzReplay(f *testing.F) {
	// Seed with a valid log.
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed")
	l, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	_ = l.LogInstall(ts(1, 1), "k", functor.User("h", []byte("a"), []kv.Key{"r"}))
	_ = l.LogAbort(ts(1, 1), []kv.Key{"k"})
	_ = l.LogEpochCommitted(context.Background(), 1)
	l.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		count := 0
		if err := Replay(path, func(Entry) error { count++; return nil }); err != nil {
			t.Fatalf("lenient replay errored: %v", err)
		}
		// Strict replay may error but must not panic, and must visit at
		// least as many entries as... exactly the lenient count.
		strict := 0
		_ = ReplayStrict(path, func(Entry) error { strict++; return nil })
		if strict != count {
			t.Fatalf("strict visited %d entries, lenient %d", strict, count)
		}
		// Recovery over arbitrary bytes must not panic either.
		if _, _, err := Recover(path); err != nil {
			t.Fatalf("recover errored on lenient-replayable log: %v", err)
		}
	})
}
