package chaos

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

var (
	flagSeeds = flag.Int("chaos.seeds", 4, "seeds per quick chaos suite")
	flagSeed  = flag.Int64("chaos.seed", 0, "run only this seed (replay a failure)")
	flagLong  = flag.Bool("chaos.long", false, "run the long nightly chaos suite")
)

// runSeed executes one scenario and fails the test with a replayable
// report if the oracle objects.
func runSeed(t *testing.T, cfg ScenarioConfig) *Report {
	t.Helper()
	rep, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("seed %d: scenario error: %v (replay: go test ./internal/chaos/ -run %s -args -chaos.seed %d)",
			cfg.Seed, err, t.Name(), cfg.Seed)
	}
	t.Logf("%s", rep)
	if !rep.OK() {
		t.Errorf("seed %d: oracle violations (replay: go test ./internal/chaos/ -run %s -args -chaos.seed %d):\n%s",
			cfg.Seed, t.Name(), cfg.Seed, rep)
	}
	return rep
}

// suiteSeeds returns the seeds a quick suite should run: the replay seed
// alone when -chaos.seed is set, otherwise base..base+n-1.
func suiteSeeds(base int64, n int) []int64 {
	if *flagSeed != 0 {
		return []int64{*flagSeed}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// TestChaosQuickSuite is the PR-gate smoke: drop/delay/duplicate faults
// plus link sever/heal cycles over the in-memory transport.
func TestChaosQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	for _, seed := range suiteSeeds(1000, *flagSeeds) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep := runSeed(t, ScenarioConfig{Seed: seed, LinkChaos: true})
			if rep.Faults.Injected() == 0 {
				t.Errorf("seed %d: no faults injected — the suite tested nothing", seed)
			}
		})
	}
}

// TestChaosCrashRecovery runs the two-phase crash scenario: half the
// workload, an abrupt crash with WAL recovery, then the rest. The oracle
// spans the crash, so lost committed epochs or resurrected rolled-back
// writes fail the run.
func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	for _, seed := range suiteSeeds(2000, 2) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			// Longer epochs widen the uncommitted window at the crash, so
			// the discard/rollback path is actually exercised.
			runSeed(t, ScenarioConfig{Seed: seed, Crash: true, Dir: t.TempDir(), EpochDuration: 8 * time.Millisecond})
		})
	}
}

// TestChaosOverTCP exercises the injector stacked on real sockets, with a
// lighter fault mix (TCP RPCs are slower, so the same drop rates would
// mostly measure retry latency). Both wire codecs run under the same
// history oracle: the binary framing and the legacy gob stream must be
// indistinguishable at the consistency level.
func TestChaosOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	probs := Probabilities{DropCall: 0.01, DropResp: 0.005, DropSend: 0.03, Duplicate: 0.01, Delay: 0.15, MaxDelay: 2 * time.Millisecond}
	for _, codec := range []string{"binary", "gob"} {
		codec := codec
		for _, seed := range suiteSeeds(3000, 1) {
			seed := seed
			t.Run(fmt.Sprintf("%s-seed-%d", codec, seed), func(t *testing.T) {
				runSeed(t, ScenarioConfig{
					Seed:          seed,
					TCP:           true,
					WireCodec:     codec,
					Probabilities: &probs,
					Writers:       4,
					OpsPerWriter:  30,
					EpochDuration: 5 * time.Millisecond,
				})
			})
		}
	}
}

// TestChaosTCPMixedCodec runs a cluster whose even nodes dial binary and
// odd nodes dial gob — the rolling-upgrade shape — under faults: every
// fault path (retries, duplicate delivery, link delays) crosses the
// codec handshake fallback in both directions.
func TestChaosTCPMixedCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	probs := Probabilities{DropCall: 0.01, DropResp: 0.005, DropSend: 0.03, Duplicate: 0.01, Delay: 0.15, MaxDelay: 2 * time.Millisecond}
	for _, seed := range suiteSeeds(3500, 1) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runSeed(t, ScenarioConfig{
				Seed:          seed,
				TCP:           true,
				WireCodec:     "mixed",
				Probabilities: &probs,
				Writers:       4,
				OpsPerWriter:  30,
				EpochDuration: 5 * time.Millisecond,
			})
		})
	}
}

// TestChaosLong is the nightly suite: 20+ seeds mixing link chaos, crash
// recovery, and TCP. Skipped unless -chaos.long. On failure the seed and
// report are written to $CHAOS_ARTIFACT for CI to upload.
func TestChaosLong(t *testing.T) {
	if !*flagLong {
		t.Skip("long chaos suite requires -chaos.long")
	}
	seeds := *flagSeeds
	if seeds < 20 {
		seeds = 20
	}
	if *flagSeed != 0 {
		seeds = 1
	}
	artifact := os.Getenv("CHAOS_ARTIFACT")
	for i := 0; i < seeds; i++ {
		seed := int64(9000 + i)
		if *flagSeed != 0 {
			seed = *flagSeed
		}
		cfg := ScenarioConfig{Seed: seed, LinkChaos: true}
		switch i % 3 {
		case 1:
			cfg.Crash = true
			cfg.Dir = t.TempDir()
		case 2:
			cfg.TCP = true
			cfg.LinkChaos = false
			probs := DefaultProbabilities()
			probs.DropCall, probs.DropSend = 0.01, 0.03
			cfg.Probabilities = &probs
			cfg.EpochDuration = 5 * time.Millisecond
		}
		name := fmt.Sprintf("seed-%d", seed)
		t.Run(name, func(t *testing.T) {
			rep := runSeed(t, cfg)
			if t.Failed() && artifact != "" {
				body := fmt.Sprintf("failing chaos seed: %d\nreplay: go test -race ./internal/chaos/ -run TestChaosLong -args -chaos.long -chaos.seed %d\n\n%s\n",
					seed, seed, rep)
				_ = os.WriteFile(artifact, []byte(body), 0o644)
			}
		})
	}
}
