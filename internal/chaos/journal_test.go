package chaos

import (
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/epoch"
	"alohadb/internal/functor"
	"alohadb/internal/obs/clusterview"
	"alohadb/internal/obs/journal"
	"alohadb/internal/transport"
)

// TestChaosAckDelayCriticalPath is the critical-path attribution drill of
// the quick suite: a 3-server cluster driven by a remote epoch manager,
// with server 2's revoke-ack link (2 -> EM node 3) carrying a fixed chaos
// delay. Every epoch switch therefore waits ~delay on server 2's ack, and
// the merged cluster-wide critical path must name server 2 and the
// ack-wait stage for at least 90% of the committed epochs — the
// acceptance criterion of the epoch journal. Deterministic: fixed seed,
// zero probabilistic faults, the only injected fault is the link delay.
func TestChaosAckDelayCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	core.RegisterMessages()
	net := Wrap(transport.NewMemNetwork(), Config{Seed: 7})
	defer net.Close()

	const (
		servers  = 3
		ackDelay = 25 * time.Millisecond
		epochs   = 12
	)
	// Delay only the ack direction: server 2 -> EM (node 3). Revokes and
	// Committed broadcasts reach server 2 undelayed, so nothing but the
	// ack-wait stage can absorb the injected latency.
	net.DelayLink(2, transport.NodeID(servers), ackDelay)

	reg := functor.NewRegistry()
	srvs := make([]*core.Server, servers)
	for i := 0; i < servers; i++ {
		s, err := core.NewServer(core.ServerConfig{ID: i, NumServers: servers, Registry: reg}, net)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
	}
	em, err := core.NewEMNode(net, transport.NodeID(servers), []transport.NodeID{0, 1, 2}, epoch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Manager.Start(); err != nil {
		t.Fatal(err)
	}

	// Drive the switches manually: each Advance blocks on the delayed ack,
	// so the loop itself paces the run (~epochs × ackDelay total).
	for i := 0; i < epochs; i++ {
		if _, err := em.Manager.Advance(); err != nil {
			t.Fatal(err)
		}
	}

	// Committed broadcasts ride one-way sends; wait for every server to
	// finish publishing the final epoch before snapshotting the journals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, s := range srvs {
			if uint64(s.CommittedEpoch()) < epochs {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("servers never committed epoch %d (committed: %d %d %d)",
				epochs, srvs[0].CommittedEpoch(), srvs[1].CommittedEpoch(), srvs[2].CommittedEpoch())
		}
		time.Sleep(2 * time.Millisecond)
	}

	docs := make([]journal.Doc, 0, servers+1)
	for _, s := range srvs {
		docs = append(docs, s.Journal().Doc())
	}
	docs = append(docs, journal.Doc{EM: em.Manager.Journal().Snapshot()})
	paths := clusterview.MergeEpochs(docs...)
	if len(paths) == 0 {
		t.Fatal("no attributed epochs from the merged journals")
	}

	attributed := 0
	for _, p := range paths {
		if p.GatingServer == 2 && p.GatingStage == "ack-wait" {
			attributed++
		}
	}
	// ≥90% of the delayed epochs must name server 2's ack-wait; the 25ms
	// injected delay dwarfs every other stage (all µs-scale in-memory).
	if min := (len(paths)*9 + 9) / 10; attributed < min {
		t.Fatalf("critical path named server 2 ack-wait for %d/%d epochs (need %d): %+v",
			attributed, len(paths), min, paths)
	}

	// The EM mirror must show server 2 as the last ack on those epochs.
	for _, r := range em.Manager.Journal().Snapshot() {
		if n := len(r.AckOrder); n == servers && r.AckOrder[n-1] != 2 {
			t.Errorf("epoch %d ack order %v: delayed server 2 should ack last", r.Epoch, r.AckOrder)
		}
	}
}
