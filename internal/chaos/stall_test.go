package chaos

import (
	"sync"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/epoch"
	"alohadb/internal/functor"
	"alohadb/internal/obs"
	"alohadb/internal/transport"
)

// eventLog collects watchdog events across goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *eventLog) add(ev obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.Event(nil), l.events...)
}

func (l *eventLog) count(kind string) int {
	n := 0
	for _, ev := range l.snapshot() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestChaosWatchdogStall is the partition-stall drill of the quick suite:
// a 3-server cluster driven by a remote epoch manager, with node 2 severed
// from everyone mid-run. The epoch manager blocks each switch on node 2's
// revoke ack until SwitchTimeout, so node 0's visibility bound stops
// advancing — its watchdog must detect the stall within the threshold
// period and the captured snapshot must name node 2 as the unreachable
// peer. After HealAll the stall must clear and stay cleared, without any
// restart. Deterministic: fixed seed, no probabilistic faults — the only
// injected fault is the explicit partition.
func TestChaosWatchdogStall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	core.RegisterMessages()
	net := Wrap(transport.NewMemNetwork(), Config{Seed: 42})
	defer net.Close()

	const servers = 3
	const (
		epochDuration = 10 * time.Millisecond
		// SwitchTimeout is the EM's straggler escape hatch: each severed
		// switch stalls this long, comfortably past the watchdog threshold,
		// before the EM proceeds without node 2's ack.
		switchTimeout = 300 * time.Millisecond
		threshold     = 100 * time.Millisecond
	)
	reg := functor.NewRegistry()
	srvs := make([]*core.Server, servers)
	for i := 0; i < servers; i++ {
		s, err := core.NewServer(core.ServerConfig{ID: i, NumServers: servers, Registry: reg}, net)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
	}
	em, err := core.NewEMNode(net, transport.NodeID(servers), []transport.NodeID{0, 1, 2},
		epoch.Config{Duration: epochDuration, SwitchTimeout: switchTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()

	var log eventLog
	wd := srvs[0].NewWatchdog(obs.WatchdogConfig{
		Threshold: threshold,
		Poll:      10 * time.Millisecond,
		OnEvent:   log.add,
	})
	if wd == nil {
		t.Fatal("NewWatchdog returned nil")
	}
	wd.Start()
	defer wd.Stop()

	if err := em.Manager.Run(); err != nil {
		t.Fatal(err)
	}

	waitFor := func(what string, deadline time.Duration, cond func() bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for !cond() {
			if time.Now().After(end) {
				t.Fatalf("timed out waiting for %s (events: %+v)", what, log.snapshot())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Healthy phase: epochs commit on the 10ms timer, no stall.
	waitFor("initial progress", 5*time.Second, func() bool { return srvs[0].CommittedEpoch() >= 3 })
	if wd.Active() {
		t.Fatal("watchdog active while the cluster is healthy")
	}

	// Partition node 2 from every other node, both directions (the EM is
	// node 3 by the address-book convention).
	for _, peer := range []transport.NodeID{0, 1, 3} {
		net.Sever(2, peer)
		net.Sever(peer, 2)
	}

	// The next epoch switch wedges on node 2's ack; node 0's watchdog must
	// fire within one threshold period of the progress age crossing it
	// (generous deadline for loaded CI machines).
	waitFor("stall detection", 5*time.Second, func() bool { return log.count(obs.EventStallDetected) > 0 })

	snaps := wd.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("stall detected but no snapshot captured")
	}
	snap := snaps[len(snaps)-1]
	found := false
	for _, p := range snap.UnreachablePeers {
		if p == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("stall snapshot does not name severed node 2: unreachable=%v peers=%+v",
			snap.UnreachablePeers, snap.Peers)
	}
	if snap.Age < threshold {
		t.Errorf("snapshot age %v below threshold %v", snap.Age, threshold)
	}

	// Heal. The EM's SwitchTimeout means it kept advancing (and re-revoking)
	// during the partition, so the next switch after healing reaches node 2
	// and the cluster returns to the fast cadence — the stall must clear and
	// stay cleared without restarting anything.
	net.HealAll()
	waitFor("stall cleared", 5*time.Second, func() bool {
		return log.count(obs.EventStallCleared) > 0 && !wd.Active()
	})

	// Quiet period: detect/clear may flap while severed (each switch stalls
	// for SwitchTimeout, then progress jumps); after healing it must go
	// quiet. Require several consecutive healthy samples with advancing
	// commits and no new detections.
	waitFor("post-heal quiet period", 10*time.Second, func() bool {
		detectedBefore := log.count(obs.EventStallDetected)
		epochBefore := srvs[0].CommittedEpoch()
		for i := 0; i < 3; i++ {
			time.Sleep(50 * time.Millisecond)
			if wd.Active() || log.count(obs.EventStallDetected) != detectedBefore {
				return false
			}
		}
		return srvs[0].CommittedEpoch() > epochBefore
	})

	status := wd.Status()
	if status.Active {
		t.Error("watchdog still active after heal")
	}
	if status.StallsTotal == 0 {
		t.Error("StallsTotal not incremented")
	}
}
