// Package chaos is a deterministic, seed-driven fault injector for the
// transport mesh. Wrap decorates any transport.Network — the in-memory mesh
// or the TCP one — with a layer that can drop requests, drop responses,
// lose one-way sends, duplicate deliveries, delay messages (reordering
// concurrent traffic), sever and heal directional links (asymmetric
// partitions), and crash/restart whole nodes.
//
// Every per-message decision is drawn from a single seeded PRNG as a
// fixed-size vector, so the fault schedule is a pure function of the seed
// and the message arrival order: a failing run replays by seed, and the
// decision log (Log) lets tests assert bit-for-bit identical schedules.
//
// The injector mirrors what a real network can do to each traffic class.
// Calls behave like RPCs over TCP: a dropped request or dropped response
// surfaces as an error at the caller (never a silent half-delivery), with
// the request-drop variant guaranteeing the handler did not run and the
// response-drop variant running the handler and discarding its answer —
// the classic "did my write land?" ambiguity. Sends are fire-and-forget
// datagrams: loss is silent. All injected errors wrap ErrInjected so
// workloads can tell chaos from real failures.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/trace"
	"alohadb/internal/transport"
)

// ErrInjected is the sentinel wrapped by every chaos-injected failure.
var ErrInjected = errors.New("chaos: injected fault")

// Fault identifies one injected fault kind inside a Decision.
type Fault uint8

const (
	// FaultDropCall fails a Call before the request reaches the handler.
	FaultDropCall Fault = iota + 1
	// FaultDropResp runs the handler but fails the Call afterwards, so the
	// caller cannot tell whether the request was applied.
	FaultDropResp
	// FaultDropSend silently loses a one-way Send.
	FaultDropSend
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultDelay holds the message for Decision.Delay before delivery,
	// reordering it against concurrent traffic.
	FaultDelay
	// FaultSevered rejects the message because the directional link (or an
	// endpoint) is down.
	FaultSevered
)

func (f Fault) String() string {
	switch f {
	case FaultDropCall:
		return "drop-call"
	case FaultDropResp:
		return "drop-resp"
	case FaultDropSend:
		return "drop-send"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	case FaultSevered:
		return "severed"
	default:
		return "none"
	}
}

// Decision records the injector's choices for one message, in application
// order. The sequence of Decisions is the fault schedule; two runs with the
// same seed and message order produce identical sequences.
type Decision struct {
	Seq    uint64
	Call   bool // Call traffic (false: Send)
	From   transport.NodeID
	To     transport.NodeID
	Msg    string // message type, %T
	Faults []Fault
	Delay  time.Duration
}

func (d Decision) has(f Fault) bool {
	for _, g := range d.Faults {
		if g == f {
			return true
		}
	}
	return false
}

// Probabilities sets the per-message fault rates, each in [0,1].
type Probabilities struct {
	DropCall  float64
	DropResp  float64
	DropSend  float64
	Duplicate float64
	Delay     float64
	// MaxDelay bounds the uniform delay drawn when a Delay fault fires.
	MaxDelay time.Duration
}

// DefaultProbabilities is a moderately hostile network: a few percent of
// messages misbehave, a quarter are delayed (reordered).
func DefaultProbabilities() Probabilities {
	return Probabilities{
		DropCall:  0.02,
		DropResp:  0.01,
		DropSend:  0.05,
		Duplicate: 0.02,
		Delay:     0.25,
		MaxDelay:  3 * time.Millisecond,
	}
}

// Config configures a chaos network.
type Config struct {
	// Seed drives every probabilistic decision. The same seed over the
	// same message sequence yields the same fault schedule.
	Seed int64
	// Probabilities are the per-message fault rates; the zero value
	// injects nothing (links can still be severed explicitly).
	Probabilities Probabilities
	// Protect exempts matching messages from probabilistic faults (they
	// still respect severed links and crashed nodes). Useful to keep e.g.
	// the epoch protocol alive while data traffic degrades.
	Protect func(msg any) bool
	// LogCap bounds the decision log (default 8192, -1 disables logging).
	LogCap int
}

// Stats counts injected faults; all fields are cumulative.
type Stats struct {
	Calls      uint64 // Call attempts seen
	Sends      uint64 // Send attempts seen
	DropsCall  uint64
	DropsResp  uint64
	DropsSend  uint64
	Duplicates uint64
	Delays     uint64
	LinkDenied uint64 // messages rejected by severed links / crashed nodes
}

// Injected returns the total number of injected faults.
func (s Stats) Injected() uint64 {
	return s.DropsCall + s.DropsResp + s.DropsSend + s.Duplicates + s.Delays + s.LinkDenied
}

func (s Stats) String() string {
	return fmt.Sprintf("calls=%d sends=%d drop-call=%d drop-resp=%d drop-send=%d dup=%d delay=%d link-denied=%d",
		s.Calls, s.Sends, s.DropsCall, s.DropsResp, s.DropsSend, s.Duplicates, s.Delays, s.LinkDenied)
}

type link struct{ from, to transport.NodeID }

// Network decorates an inner transport.Network with fault injection.
type Network struct {
	inner transport.Network
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	seq     uint64
	enabled bool
	severed map[link]bool
	delayed map[link]time.Duration
	crashed map[transport.NodeID]bool
	log     []Decision
	dropLog uint64 // decisions discarded once the log hit LogCap

	calls      atomic.Uint64
	sends      atomic.Uint64
	dropsCall  atomic.Uint64
	dropsResp  atomic.Uint64
	dropsSend  atomic.Uint64
	duplicates atomic.Uint64
	delays     atomic.Uint64
	linkDenied atomic.Uint64
}

// Wrap builds a chaos network around inner. Injection starts enabled.
func Wrap(inner transport.Network, cfg Config) *Network {
	if cfg.LogCap == 0 {
		cfg.LogCap = 8192
	}
	return &Network{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		enabled: true,
		severed: make(map[link]bool),
		delayed: make(map[link]time.Duration),
		crashed: make(map[transport.NodeID]bool),
	}
}

// Node implements transport.Network.
func (n *Network) Node(id transport.NodeID, h transport.Handler) (transport.Conn, error) {
	inner, err := n.inner.Node(id, h)
	if err != nil {
		return nil, err
	}
	return &conn{net: n, inner: inner, id: id}, nil
}

// Close implements transport.Network.
func (n *Network) Close() error { return n.inner.Close() }

// NetMetrics forwards the inner network's transport metrics when it has
// them, keeping the decorator drop-in for instrumented deployments.
func (n *Network) NetMetrics() *transport.Metrics {
	if inst, ok := n.inner.(transport.Instrumented); ok {
		return inst.NetMetrics()
	}
	return nil
}

// SetEnabled switches probabilistic injection on or off. While disabled no
// PRNG draws happen and no decisions are logged; explicit link/crash state
// still applies. Used to quiesce a scenario before its final verification
// reads.
func (n *Network) SetEnabled(v bool) {
	n.mu.Lock()
	n.enabled = v
	n.mu.Unlock()
}

// Sever cuts the directional link from -> to; messages across it fail at
// the sender. Sever(a,b) without Sever(b,a) is an asymmetric partition.
func (n *Network) Sever(from, to transport.NodeID) {
	n.mu.Lock()
	n.severed[link{from, to}] = true
	n.mu.Unlock()
}

// Heal restores the directional link from -> to (clearing both a sever
// and a fixed delay).
func (n *Network) Heal(from, to transport.NodeID) {
	n.mu.Lock()
	delete(n.severed, link{from, to})
	delete(n.delayed, link{from, to})
	n.mu.Unlock()
}

// DelayLink adds a fixed, deterministic delay to every message crossing
// the directional link from -> to (a slow path, not a lossy one). Unlike
// the probabilistic Delay fault it consumes no PRNG draws, so setting it
// mid-run shifts no later decision — replay stability is preserved. A
// non-positive d clears the delay; Heal and HealAll clear it too.
func (n *Network) DelayLink(from, to transport.NodeID, d time.Duration) {
	n.mu.Lock()
	if d <= 0 {
		delete(n.delayed, link{from, to})
	} else {
		n.delayed[link{from, to}] = d
	}
	n.mu.Unlock()
}

// Crash takes the node down: every message to or from it fails until
// Restart. In-flight deliveries are not recalled, matching a real
// crash-stop where packets already in the receive buffer get processed.
func (n *Network) Crash(id transport.NodeID) {
	n.mu.Lock()
	n.crashed[id] = true
	n.mu.Unlock()
}

// Restart brings a crashed node back.
func (n *Network) Restart(id transport.NodeID) {
	n.mu.Lock()
	delete(n.crashed, id)
	n.mu.Unlock()
}

// HealAll clears every severed link, link delay, and crashed node.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.severed = make(map[link]bool)
	n.delayed = make(map[link]time.Duration)
	n.crashed = make(map[transport.NodeID]bool)
	n.mu.Unlock()
}

// Stats snapshots the fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Calls:      n.calls.Load(),
		Sends:      n.sends.Load(),
		DropsCall:  n.dropsCall.Load(),
		DropsResp:  n.dropsResp.Load(),
		DropsSend:  n.dropsSend.Load(),
		Duplicates: n.duplicates.Load(),
		Delays:     n.delays.Load(),
		LinkDenied: n.linkDenied.Load(),
	}
}

// Log returns a copy of the decision log (the fault schedule so far).
func (n *Network) Log() []Decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Decision, len(n.log))
	copy(out, n.log)
	return out
}

// decide draws this message's fault vector. Exactly five uniform draws per
// enabled, unprotected message — a fixed consumption rate, so the schedule
// depends only on the seed and the order messages reach the injector, not
// on which faults happened to fire earlier.
func (n *Network) decide(isCall bool, from, to transport.NodeID, msg any) Decision {
	if isCall {
		n.calls.Add(1)
	} else {
		n.sends.Add(1)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	d := Decision{Seq: n.seq, Call: isCall, From: from, To: to, Msg: fmt.Sprintf("%T", msg)}
	down := n.crashed[from] || n.crashed[to] || n.severed[link{from, to}]
	if n.enabled && (n.cfg.Protect == nil || !n.cfg.Protect(msg)) {
		p := n.cfg.Probabilities
		vec := [5]float64{n.rng.Float64(), n.rng.Float64(), n.rng.Float64(), n.rng.Float64(), n.rng.Float64()}
		if isCall {
			if vec[0] < p.DropCall {
				d.Faults = append(d.Faults, FaultDropCall)
			} else if vec[1] < p.DropResp {
				d.Faults = append(d.Faults, FaultDropResp)
			}
		} else if vec[2] < p.DropSend {
			d.Faults = append(d.Faults, FaultDropSend)
		}
		if vec[3] < p.Duplicate {
			d.Faults = append(d.Faults, FaultDuplicate)
		}
		if vec[4] < p.Delay && p.MaxDelay > 0 {
			d.Faults = append(d.Faults, FaultDelay)
			d.Delay = time.Duration(n.rng.Int63n(int64(p.MaxDelay))) + 1
		}
		n.record(d)
	}
	if down {
		// Link state overrides the drawn faults but does not change PRNG
		// consumption, so severing a link mid-run shifts no later decision.
		d.Faults = append(d.Faults[:0], FaultSevered)
		d.Delay = 0
	} else if fixed := n.delayed[link{from, to}]; fixed > 0 && fixed > d.Delay {
		// A deterministic link delay stacks the same way: applied after the
		// draws, consuming none, keeping the probabilistic schedule intact.
		if !d.has(FaultDelay) {
			d.Faults = append(d.Faults, FaultDelay)
		}
		d.Delay = fixed
	}
	return d
}

func (n *Network) record(d Decision) {
	if n.cfg.LogCap < 0 {
		return
	}
	if len(n.log) >= n.cfg.LogCap {
		n.dropLog++
		return
	}
	n.log = append(n.log, d)
}

type conn struct {
	net   *Network
	inner transport.Conn
	id    transport.NodeID
}

// Call implements transport.Conn with sender-side fault injection.
func (c *conn) Call(ctx context.Context, to transport.NodeID, req any) (any, error) {
	n := c.net
	d := n.decide(true, c.id, to, req)
	if d.has(FaultSevered) {
		n.linkDenied.Add(1)
		return nil, fmt.Errorf("%w: link %d->%d down (%T)", ErrInjected, c.id, to, req)
	}
	if d.has(FaultDropCall) {
		n.dropsCall.Add(1)
		return nil, fmt.Errorf("%w: request dropped (%T %d->%d)", ErrInjected, req, c.id, to)
	}
	if d.Delay > 0 {
		n.delays.Add(1)
		if err := sleepCtx(ctx, d.Delay); err != nil {
			return nil, err
		}
	}
	if d.has(FaultDuplicate) {
		n.duplicates.Add(1)
		// The duplicate races the original, exercising handler idempotency.
		// It rides a detached context carrying only the trace: the caller
		// returning must not recall a duplicate already "on the wire".
		dup := trace.Detach(context.Background(), ctx)
		go func() { _, _ = c.inner.Call(dup, to, req) }()
	}
	resp, err := c.inner.Call(ctx, to, req)
	if err != nil {
		return nil, err
	}
	if d.has(FaultDropResp) {
		n.dropsResp.Add(1)
		return nil, fmt.Errorf("%w: response dropped (%T %d->%d)", ErrInjected, req, c.id, to)
	}
	return resp, nil
}

// Send implements transport.Conn. Loss is silent — one-way traffic has no
// acknowledgment to fail — so only optimization-grade messages should ride
// Send (which is the engine's contract already).
func (c *conn) Send(ctx context.Context, to transport.NodeID, req any) error {
	n := c.net
	d := n.decide(false, c.id, to, req)
	if d.has(FaultSevered) {
		n.linkDenied.Add(1)
		return nil
	}
	if d.has(FaultDropSend) {
		n.dropsSend.Add(1)
		return nil
	}
	copies := 1
	if d.has(FaultDuplicate) {
		n.duplicates.Add(1)
		copies = 2
	}
	if d.Delay > 0 {
		n.delays.Add(1)
		delayed := trace.Detach(context.Background(), ctx)
		go func() {
			if sleepCtx(delayed, d.Delay) != nil {
				return
			}
			for i := 0; i < copies; i++ {
				_ = c.inner.Send(delayed, to, req)
			}
		}()
		return nil
	}
	for i := 0; i < copies; i++ {
		if err := c.inner.Send(ctx, to, req); err != nil {
			return err
		}
	}
	return nil
}

// Local implements transport.Conn.
func (c *conn) Local() transport.NodeID { return c.inner.Local() }

// Close implements transport.Conn.
func (c *conn) Close() error { return c.inner.Close() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
