package oracle

import (
	"strings"
	"testing"

	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

func ts(e tstamp.Epoch, seq uint32) tstamp.Timestamp { return tstamp.Make(e, seq, 0) }

func val(tags ...string) kv.Value {
	if len(tags) == 0 {
		return kv.Value{}
	}
	return kv.Value(strings.Join(tags, ";") + ";")
}

// cleanHistory builds a consistent two-key history: t1 writes a, t2 writes
// a+b (multi-key), t3 writes b, t4 aborts cleanly.
func cleanHistory() *History {
	h := New()
	h.Begin("t1", []kv.Key{"a"})
	h.Finish("t1", ts(1, 1), StatusCommitted)
	h.Begin("t2", []kv.Key{"a", "b"})
	h.Finish("t2", ts(1, 2), StatusCommitted)
	h.Begin("t3", []kv.Key{"b"})
	h.Finish("t3", ts(2, 1), StatusCommitted)
	h.Begin("t4", []kv.Key{"a"})
	h.Finish("t4", ts(2, 2), StatusAborted)
	// A mid-history read at the end of epoch 1 and a later full read.
	h.Observe(7, tstamp.End(1), []kv.Key{"a", "b"}, map[kv.Key]kv.Value{
		"a": val("t1", "t2"), "b": val("t2"),
	})
	h.Observe(7, tstamp.End(2), []kv.Key{"a", "b"}, map[kv.Key]kv.Value{
		"a": val("t1", "t2"), "b": val("t2", "t3"),
	})
	h.ObserveFinal("a", val("t1", "t2"), true)
	h.ObserveFinal("b", val("t2", "t3"), true)
	return h
}

func kinds(vs []Violation) map[string]int {
	m := make(map[string]int)
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

func TestCleanHistoryPasses(t *testing.T) {
	if vs := cleanHistory().Check(); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

// TestDetectsLostWrite is the acceptance-criterion self-test: deliberately
// drop a committed write from the final value and the oracle must notice.
func TestDetectsLostWrite(t *testing.T) {
	h := cleanHistory()
	h.ObserveFinal("a", val("t1"), true) // t2's write to a mutated away
	vs := h.Check()
	if kinds(vs)["lost-write"] == 0 {
		t.Fatalf("injected lost write not detected; violations: %v", vs)
	}
}

func TestDetectsAbortedVisible(t *testing.T) {
	h := cleanHistory()
	h.ObserveFinal("a", val("t1", "t2", "t4"), true)
	if kinds(h.Check())["aborted-visible"] == 0 {
		t.Fatal("aborted txn in final value not detected")
	}
}

func TestDetectsDuplicateApplication(t *testing.T) {
	h := cleanHistory()
	h.ObserveFinal("a", val("t1", "t2", "t2"), true)
	if kinds(h.Check())["duplicate-tag"] == 0 {
		t.Fatal("duplicate functor application not detected")
	}
}

func TestDetectsOrderViolation(t *testing.T) {
	h := cleanHistory()
	h.ObserveFinal("a", val("t2", "t1"), true)
	if kinds(h.Check())["order"] == 0 {
		t.Fatal("out-of-timestamp-order application not detected")
	}
}

func TestDetectsFutureRead(t *testing.T) {
	h := cleanHistory()
	// Snapshot inside epoch 1 must not see epoch-2 writes.
	h.Observe(9, tstamp.End(1), []kv.Key{"b"}, map[kv.Key]kv.Value{"b": val("t2", "t3")})
	if kinds(h.Check())["future-read"] == 0 {
		t.Fatal("read above snapshot not detected")
	}
}

func TestDetectsTornTxn(t *testing.T) {
	h := cleanHistory()
	// t2 wrote a and b in epoch 1; a snapshot above it seeing only the a
	// half breaks epoch atomicity.
	h.Observe(9, tstamp.End(1), []kv.Key{"a", "b"}, map[kv.Key]kv.Value{
		"a": val("t1", "t2"), "b": val(),
	})
	ks := kinds(h.Check())
	if ks["torn-txn"] == 0 {
		t.Fatal("torn multi-key txn not detected")
	}
	if ks["lost-write"] == 0 {
		t.Fatal("the missing half should also count as a lost write at that snapshot")
	}
}

func TestDetectsNonMonotonicRead(t *testing.T) {
	h := cleanHistory()
	// Client 7's third read regresses key b to its pre-t3 state.
	h.Observe(7, tstamp.End(2)+1, []kv.Key{"b"}, map[kv.Key]kv.Value{"b": val("t2")})
	if kinds(h.Check())["non-monotonic-read"] == 0 {
		t.Fatal("regressed read not detected")
	}
}

func TestDetectsDiscardedVisible(t *testing.T) {
	h := cleanHistory()
	h.Begin("t5", []kv.Key{"a"})
	h.Finish("t5", ts(3, 1), StatusCommitted)
	// Crash recovery rolled back to epoch 2: t5's epoch never durably
	// committed, yet its write survived — a resurrection bug.
	h.DiscardEpochsAfter(2)
	h.ObserveFinal("a", val("t1", "t2", "t5"), true)
	if kinds(h.Check())["discarded-visible"] == 0 {
		t.Fatal("write from a rolled-back epoch not detected")
	}
}

func TestDiscardEpochsAfterStatusTransitions(t *testing.T) {
	h := New()
	h.Begin("c", []kv.Key{"a"})
	h.Finish("c", ts(2, 1), StatusCommitted)
	h.Begin("d", []kv.Key{"a"})
	h.Finish("d", ts(3, 1), StatusCommitted)
	h.Begin("p", []kv.Key{"a"}) // in-flight at the crash
	h.DiscardEpochsAfter(2)
	total, committed, _, indeterminate, discarded := h.Counts()
	if total != 3 || committed != 1 || indeterminate != 1 || discarded != 1 {
		t.Fatalf("counts = total %d committed %d indet %d discarded %d", total, committed, indeterminate, discarded)
	}
}

func TestCrashRecoveredGrayBand(t *testing.T) {
	h := New()
	h.Begin("lo", []kv.Key{"a"})
	h.Finish("lo", ts(2, 1), StatusCommitted)
	h.Begin("mid", []kv.Key{"a"})
	h.Finish("mid", ts(3, 1), StatusCommitted)
	h.Begin("hi", []kv.Key{"a"})
	h.Finish("hi", ts(4, 1), StatusCommitted)
	// Markers reached epoch 2 on the slowest partition and epoch 3 on the
	// fastest: epoch 3 is the gray band, epoch 4 is gone everywhere.
	h.CrashRecovered(2, 3)
	_, committed, _, indeterminate, discarded := h.Counts()
	if committed != 1 || indeterminate != 1 || discarded != 1 {
		t.Fatalf("committed %d indet %d discarded %d, want 1/1/1", committed, indeterminate, discarded)
	}
	// The gray-band txn may surface or not; both finals must pass.
	h.ObserveFinal("a", val("lo", "mid"), true)
	if vs := h.Check(); len(vs) != 0 {
		t.Fatalf("gray txn present flagged: %v", vs)
	}
}

func TestIndeterminateIsExempt(t *testing.T) {
	h := New()
	h.Begin("t1", []kv.Key{"a"})
	h.Finish("t1", ts(1, 1), StatusCommitted)
	h.Begin("x", []kv.Key{"a", "b"})
	h.Finish("x", ts(1, 2), StatusIndeterminate)
	// The indeterminate txn surfaced on a but not b: allowed.
	h.ObserveFinal("a", val("t1", "x"), true)
	h.ObserveFinal("b", val(), true)
	if vs := h.Check(); len(vs) != 0 {
		t.Fatalf("indeterminate txn flagged: %v", vs)
	}
	// But a duplicate application of it is still a violation.
	h2 := New()
	h2.Begin("x", []kv.Key{"a"})
	h2.Finish("x", ts(1, 1), StatusIndeterminate)
	h2.ObserveFinal("a", val("x", "x"), true)
	if kinds(h2.Check())["duplicate-tag"] == 0 {
		t.Fatal("duplicate application of indeterminate txn not detected")
	}
}

func TestDetectsUnknownAndAbsentRegression(t *testing.T) {
	h := cleanHistory()
	h.ObserveFinal("a", val("t1", "t2", "ghost"), true)
	if kinds(h.Check())["unknown-tag"] == 0 {
		t.Fatal("unrecorded tag not detected")
	}
	// A key that vanishes after being observed non-empty.
	h2 := New()
	h2.Begin("t1", []kv.Key{"a"})
	h2.Finish("t1", ts(1, 1), StatusCommitted)
	h2.Observe(1, tstamp.End(1), []kv.Key{"a"}, map[kv.Key]kv.Value{"a": val("t1")})
	h2.Observe(1, tstamp.End(2), []kv.Key{"a"}, map[kv.Key]kv.Value{})
	ks := kinds(h2.Check())
	if ks["non-monotonic-read"] == 0 {
		t.Fatal("vanished key not detected")
	}
}

func TestParseTags(t *testing.T) {
	if got := ParseTags(nil); len(got) != 0 {
		t.Fatalf("ParseTags(nil) = %v", got)
	}
	got := ParseTags(kv.Value("t1;t2;t3;"))
	if len(got) != 3 || got[0] != "t1" || got[2] != "t3" {
		t.Fatalf("ParseTags = %v", got)
	}
}
