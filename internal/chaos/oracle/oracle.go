// Package oracle checks a recorded transaction/read history against the
// paper's correctness guarantees. The chaos workload writes with a
// unique-tag append functor — each transaction appends "tag;" to every key
// it touches — which turns history checking linear: a key's value at any
// snapshot is exactly the ordered list of tags of the transactions that
// committed a write to it at or below that snapshot.
//
// Checks, mapped to paper invariants:
//
//   - sequential replay (serializability, §II): every observed value's tag
//     list is strictly version-ordered, and final values contain exactly
//     the committed writers of the key in timestamp order;
//   - epoch atomicity (§III-B): a snapshot read never observes a proper
//     subset of a committed transaction's writes across the keys it read,
//     and never observes a version above its snapshot;
//   - at-most-once evaluation (§IV): no tag appears twice in any value —
//     re-invoked handlers are legal, re-applied effects are not;
//   - monotonic reads: per client, snapshots are non-decreasing and each
//     key's observed tag list extends (is prefixed by) the previous one;
//   - durability of the visible (§III-B at the WAL boundary): transactions
//     discarded by crash recovery must never have been observed, and
//     observed ones must survive recovery.
//
// Transactions whose rollback could not be confirmed (AbortIncomplete, a
// partition stayed unreachable through the retry budget) are Indeterminate:
// their writes may or may not surface, so they are exempt from must-appear
// and must-not-appear checks, but still subject to ordering, duplicate, and
// snapshot-bound checks wherever they do surface.
package oracle

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// Status is a recorded transaction's outcome as the workload knows it.
type Status uint8

const (
	// StatusPending is a submitted transaction with no recorded outcome.
	StatusPending Status = iota
	// StatusCommitted transactions must appear, exactly once, in order.
	StatusCommitted
	// StatusAborted transactions (cleanly rolled back, or never installed)
	// must not appear anywhere.
	StatusAborted
	// StatusIndeterminate transactions may or may not appear (incomplete
	// rollback or unknown in-flight outcome at a crash).
	StatusIndeterminate
	// StatusDiscarded transactions committed in an epoch that crash
	// recovery rolled back; they must not appear in post-recovery state,
	// and having been observed before the crash is itself a violation
	// (visibility outran durability).
	StatusDiscarded
)

func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	case StatusIndeterminate:
		return "indeterminate"
	case StatusDiscarded:
		return "discarded"
	default:
		return "pending"
	}
}

// Txn is one recorded transaction.
type Txn struct {
	Tag     string
	Version tstamp.Timestamp
	Keys    []kv.Key
	Status  Status
}

func (t *Txn) writes(k kv.Key) bool {
	for _, key := range t.Keys {
		if key == k {
			return true
		}
	}
	return false
}

// Violation is one detected invariant breach.
type Violation struct {
	// Kind labels the broken invariant: lost-write, aborted-visible,
	// discarded-visible, duplicate-tag, order, future-read, torn-txn,
	// non-monotonic-read, unknown-tag, pending-tag.
	Kind   string
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

type observation struct {
	client   int
	seq      int
	snapshot tstamp.Timestamp
	values   map[kv.Key][]string // key -> parsed tag list; nil list = absent
	keys     []kv.Key            // all keys read (order preserved)
}

// History accumulates transactions, reads, and final values. All methods
// are safe for concurrent use; Check is typically called after quiesce.
type History struct {
	mu     sync.Mutex
	txns   map[string]*Txn
	bySeq  []string // tags in Begin order, for stable reporting
	obs    []observation
	seqs   map[int]int
	finals map[kv.Key][]string
	fseen  map[kv.Key]bool
}

// New creates an empty history.
func New() *History {
	return &History{
		txns:   make(map[string]*Txn),
		seqs:   make(map[int]int),
		finals: make(map[kv.Key][]string),
		fseen:  make(map[kv.Key]bool),
	}
}

// Begin records a transaction about to be submitted.
func (h *History) Begin(tag string, keys []kv.Key) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.txns[tag] = &Txn{Tag: tag, Keys: keys, Status: StatusPending}
	h.bySeq = append(h.bySeq, tag)
}

// Finish records a transaction's outcome. version may be zero when the
// submission failed before a timestamp was assigned.
func (h *History) Finish(tag string, version tstamp.Timestamp, st Status) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.txns[tag]; ok {
		t.Version = version
		t.Status = st
	}
}

// Observe records one snapshot read of several keys. values holds the raw
// stored value per found key; absent keys are simply missing from the map.
// Reads by the same client id must be recorded in their issue order.
func (h *History) Observe(client int, snapshot tstamp.Timestamp, keys []kv.Key, values map[kv.Key]kv.Value) {
	o := observation{client: client, snapshot: snapshot, values: make(map[kv.Key][]string, len(values)), keys: keys}
	for k, v := range values {
		o.values[k] = ParseTags(v)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	o.seq = h.seqs[client]
	h.seqs[client] = o.seq + 1
	h.obs = append(h.obs, o)
}

// ObserveFinal records a key's post-quiesce final value.
func (h *History) ObserveFinal(key kv.Key, value kv.Value, found bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fseen[key] = true
	if found {
		h.finals[key] = ParseTags(value)
	}
}

// DiscardEpochsAfter models a crash recovery that rolled the cluster back
// to epoch e: committed or indeterminate transactions above e become
// Discarded (their epoch never durably committed), and still-pending ones
// become Indeterminate (their in-flight outcome died with the cluster).
func (h *History) DiscardEpochsAfter(e tstamp.Epoch) {
	h.CrashRecovered(e, e)
}

// CrashRecovered models a crash whose per-partition commit markers stopped
// at different epochs: every epoch at or below durable survived on all
// partitions, epochs above recovered survived on none, and the gray band
// in between is durable on some partitions but not others (the Committed
// broadcast writes markers one partition at a time, so a crash can split
// it). Transactions in the gray band become Indeterminate — each of their
// writes may or may not have survived, and the oracle only holds them to
// the order/duplicate/snapshot rules. Still-pending transactions become
// Indeterminate regardless of epoch.
func (h *History) CrashRecovered(durable, recovered tstamp.Epoch) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.txns {
		switch t.Status {
		case StatusCommitted, StatusIndeterminate:
			switch e := t.Version.Epoch(); {
			case e > recovered:
				t.Status = StatusDiscarded
			case e > durable:
				t.Status = StatusIndeterminate
			}
		case StatusPending:
			t.Status = StatusIndeterminate
		}
	}
}

// ParseTags splits a chaos-append value ("t1;t9;t42;") into its tag list.
func ParseTags(v kv.Value) []string {
	if len(v) == 0 {
		return []string{}
	}
	parts := strings.Split(strings.TrimSuffix(string(v), ";"), ";")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Check verifies the whole history and returns every violation found.
func (h *History) Check() []Violation {
	h.mu.Lock()
	defer h.mu.Unlock()
	var vs []Violation

	// Committed writers per key, version-sorted — the sequential replay.
	writers := make(map[kv.Key][]*Txn)
	for _, tag := range h.bySeq {
		t := h.txns[tag]
		if t.Status == StatusCommitted {
			for _, k := range t.Keys {
				writers[k] = append(writers[k], t)
			}
		}
	}
	for _, ws := range writers {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Version < ws[j].Version })
	}

	// Final values: exactly the committed writers, in timestamp order.
	for k := range h.fseen {
		tags, found := h.finals[k]
		if !found {
			tags = nil
		}
		vs = append(vs, h.checkList(fmt.Sprintf("final[%s]", k), k, tags, tstamp.Max)...)
		seen := tagSet(tags)
		for _, w := range writers[k] {
			if !seen[w.Tag] {
				vs = append(vs, Violation{Kind: "lost-write", Detail: fmt.Sprintf(
					"final[%s] is missing committed txn %s@%v", k, w.Tag, w.Version)})
			}
		}
	}

	// Snapshot reads: ordered, bounded, and complete up to the snapshot.
	for _, o := range h.obs {
		where := fmt.Sprintf("read[client=%d seq=%d snap=%v]", o.client, o.seq, o.snapshot)
		for _, k := range o.keys {
			tags, found := o.values[k]
			if !found {
				tags = nil
			}
			vs = append(vs, h.checkList(fmt.Sprintf("%s key=%s", where, k), k, tags, o.snapshot)...)
			seen := tagSet(tags)
			for _, w := range writers[k] {
				if w.Version > o.snapshot {
					break
				}
				if !seen[w.Tag] {
					vs = append(vs, Violation{Kind: "lost-write", Detail: fmt.Sprintf(
						"%s key=%s is missing committed txn %s@%v (torn or lost epoch)", where, k, w.Tag, w.Version)})
				}
			}
		}
		// Epoch atomicity across keys: a committed multi-key transaction
		// below the snapshot is all-or-nothing over the keys this read
		// covers. (The per-key completeness pass above also reports each
		// missing half as lost-write; this names the atomicity breach.)
		vs = append(vs, h.checkTorn(o)...)
	}

	// Monotonic reads per client.
	vs = append(vs, h.checkMonotonic()...)
	return vs
}

// checkList validates one observed tag list: known tags only, no
// duplicates (at-most-once), no aborted/discarded writers, no versions
// above bound, strictly ascending versions, and every tag a writer of k.
func (h *History) checkList(where string, k kv.Key, tags []string, bound tstamp.Timestamp) []Violation {
	var vs []Violation
	seen := make(map[string]bool, len(tags))
	last := tstamp.Zero
	for _, tag := range tags {
		t, ok := h.txns[tag]
		if !ok {
			vs = append(vs, Violation{Kind: "unknown-tag", Detail: fmt.Sprintf("%s contains unrecorded tag %q", where, tag)})
			continue
		}
		if seen[tag] {
			vs = append(vs, Violation{Kind: "duplicate-tag", Detail: fmt.Sprintf(
				"%s applied txn %s twice (at-most-once violated)", where, tag)})
			continue
		}
		seen[tag] = true
		switch t.Status {
		case StatusAborted:
			vs = append(vs, Violation{Kind: "aborted-visible", Detail: fmt.Sprintf(
				"%s contains aborted txn %s@%v", where, tag, t.Version)})
		case StatusDiscarded:
			vs = append(vs, Violation{Kind: "discarded-visible", Detail: fmt.Sprintf(
				"%s contains txn %s@%v from an epoch crash recovery rolled back", where, tag, t.Version)})
		case StatusPending:
			vs = append(vs, Violation{Kind: "pending-tag", Detail: fmt.Sprintf(
				"%s contains txn %s with no recorded outcome", where, tag)})
		}
		if t.Version == tstamp.Zero {
			continue
		}
		if !t.writes(k) {
			vs = append(vs, Violation{Kind: "order", Detail: fmt.Sprintf(
				"%s contains txn %s which never wrote %s", where, tag, k)})
			continue
		}
		if t.Version > bound {
			vs = append(vs, Violation{Kind: "future-read", Detail: fmt.Sprintf(
				"%s contains txn %s@%v above the snapshot", where, tag, t.Version)})
		}
		if t.Version <= last {
			vs = append(vs, Violation{Kind: "order", Detail: fmt.Sprintf(
				"%s applied txn %s@%v out of timestamp order (after %v)", where, tag, t.Version, last)})
		}
		last = t.Version
	}
	return vs
}

// checkTorn flags committed multi-key transactions observed partially
// within one snapshot read — the epoch-atomicity breach (§III-B).
func (h *History) checkTorn(o observation) []Violation {
	var vs []Violation
	read := make(map[kv.Key]bool, len(o.keys))
	for _, k := range o.keys {
		read[k] = true
	}
	for _, tag := range h.bySeq {
		t := h.txns[tag]
		if t.Status != StatusCommitted || t.Version == tstamp.Zero || t.Version > o.snapshot || len(t.Keys) < 2 {
			continue
		}
		var covered, present int
		for _, k := range t.Keys {
			if !read[k] {
				continue
			}
			covered++
			if tagSet(o.values[k])[tag] {
				present++
			}
		}
		if covered >= 2 && present > 0 && present < covered {
			vs = append(vs, Violation{Kind: "torn-txn", Detail: fmt.Sprintf(
				"read[client=%d seq=%d snap=%v] observes %d of %d read keys of committed txn %s@%v (epoch atomicity violated)",
				o.client, o.seq, o.snapshot, present, covered, tag, t.Version)})
		}
	}
	return vs
}

// checkMonotonic verifies per-client session guarantees: non-decreasing
// snapshots and, per key, each observation extending the previous one.
func (h *History) checkMonotonic() []Violation {
	var vs []Violation
	byClient := make(map[int][]observation)
	for _, o := range h.obs {
		byClient[o.client] = append(byClient[o.client], o)
	}
	for client, obs := range byClient {
		sort.Slice(obs, func(i, j int) bool { return obs[i].seq < obs[j].seq })
		lastSnap := tstamp.Zero
		lastTags := make(map[kv.Key][]string)
		for _, o := range obs {
			if o.snapshot < lastSnap {
				vs = append(vs, Violation{Kind: "non-monotonic-read", Detail: fmt.Sprintf(
					"client %d snapshot went backwards: %v after %v", client, o.snapshot, lastSnap)})
			}
			lastSnap = o.snapshot
			for _, k := range o.keys {
				cur := o.values[k] // nil when absent
				prev, sawBefore := lastTags[k]
				if sawBefore && !isPrefix(prev, cur) {
					vs = append(vs, Violation{Kind: "non-monotonic-read", Detail: fmt.Sprintf(
						"client %d key %s: observed %v after %v (not an extension)", client, k, cur, prev)})
				}
				lastTags[k] = cur
			}
		}
	}
	return vs
}

func isPrefix(prev, cur []string) bool {
	if len(prev) > len(cur) {
		return false
	}
	for i := range prev {
		if cur[i] != prev[i] {
			return false
		}
	}
	return true
}

func tagSet(tags []string) map[string]bool {
	m := make(map[string]bool, len(tags))
	for _, t := range tags {
		m[t] = true
	}
	return m
}

// Counts summarizes the recorded transaction statuses.
func (h *History) Counts() (total, committed, aborted, indeterminate, discarded int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total = len(h.txns)
	for _, t := range h.txns {
		switch t.Status {
		case StatusCommitted:
			committed++
		case StatusAborted:
			aborted++
		case StatusIndeterminate:
			indeterminate++
		case StatusDiscarded:
			discarded++
		}
	}
	return
}

// Reads returns the number of recorded snapshot observations.
func (h *History) Reads() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.obs)
}
