package chaos

import (
	"fmt"
	"testing"
)

// TestChaosMigration runs the workload with live key migrations happening
// throughout: a rebalance goroutine repeatedly moves random workload keys
// between servers while writers, readers, and message-level faults run.
// The oracle check is unchanged — migration must not lose or duplicate
// any committed write, tear any snapshot, or break at-most-once compute.
func TestChaosMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	for _, seed := range suiteSeeds(4000, *flagSeeds) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep := runSeed(t, ScenarioConfig{Seed: seed, Migrate: true})
			if rep.Migrations == 0 {
				t.Errorf("seed %d: no migrations completed — the suite tested nothing", seed)
			}
		})
	}
}

// TestChaosMigrationWithLinkFaults layers link sever/heal cycles on top of
// the migrating workload. The migration control plane runs over direct
// in-process calls (a failed mid-move RPC would need its own recovery
// protocol, out of scope), but the data plane — redirected installs,
// WrongOwner retries, forwarded reads and aborts — rides the faulty
// links.
func TestChaosMigrationWithLinkFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	for _, seed := range suiteSeeds(5000, 2) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			runSeed(t, ScenarioConfig{Seed: seed, Migrate: true, LinkChaos: true})
		})
	}
}
