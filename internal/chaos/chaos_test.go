package chaos

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"alohadb/internal/transport"
)

type countMsg struct{ N int }
type otherMsg struct{ N int }

// scriptRun drives a fixed single-threaded message sequence through a fresh
// chaos-wrapped in-memory mesh and returns the decision log.
func scriptRun(t *testing.T, seed int64) []Decision {
	t.Helper()
	net := Wrap(transport.NewMemNetwork(), Config{Seed: seed, Probabilities: DefaultProbabilities()})
	defer net.Close()
	for id := 0; id < 2; id++ {
		if _, err := net.Node(transport.NodeID(id)+10, func(ctx context.Context, from transport.NodeID, msg any) (any, error) {
			return msg, nil
		}); err != nil {
			t.Fatalf("node: %v", err)
		}
	}
	c, err := net.Node(0, func(ctx context.Context, from transport.NodeID, msg any) (any, error) { return msg, nil })
	if err != nil {
		t.Fatalf("node 0: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		to := transport.NodeID(10 + i%2)
		if i%3 == 0 {
			_ = c.Send(ctx, to, otherMsg{N: i})
		} else {
			_, _ = c.Call(ctx, to, countMsg{N: i})
		}
	}
	return net.Log()
}

// TestReplayDeterminism is the acceptance-criterion check: the same seed
// over the same message sequence yields a bit-for-bit identical fault
// schedule, and a different seed yields a different one.
func TestReplayDeterminism(t *testing.T) {
	a := scriptRun(t, 42)
	b := scriptRun(t, 42)
	if len(a) == 0 {
		t.Fatal("empty decision log")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault schedules diverged for the same seed:\n%v\nvs\n%v", a, b)
	}
	other := scriptRun(t, 43)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	injected := 0
	for _, d := range a {
		injected += len(d.Faults)
	}
	if injected == 0 {
		t.Fatal("default probabilities injected nothing over 200 messages")
	}
}

func twoNodes(t *testing.T, cfg Config) (*Network, transport.Conn, transport.Conn, *atomic.Int64) {
	t.Helper()
	net := Wrap(transport.NewMemNetwork(), cfg)
	t.Cleanup(func() { net.Close() })
	var handled atomic.Int64
	h := func(ctx context.Context, from transport.NodeID, msg any) (any, error) {
		handled.Add(1)
		return msg, nil
	}
	c0, err := net.Node(0, h)
	if err != nil {
		t.Fatalf("node 0: %v", err)
	}
	c1, err := net.Node(1, h)
	if err != nil {
		t.Fatalf("node 1: %v", err)
	}
	return net, c0, c1, &handled
}

func TestSeverIsDirectional(t *testing.T) {
	net, c0, c1, _ := twoNodes(t, Config{Seed: 1})
	ctx := context.Background()
	net.Sever(0, 1)
	if _, err := c0.Call(ctx, 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("severed 0->1 call: got %v, want ErrInjected", err)
	}
	if _, err := c1.Call(ctx, 0, countMsg{}); err != nil {
		t.Fatalf("reverse link 1->0 should be up: %v", err)
	}
	net.Heal(0, 1)
	if _, err := c0.Call(ctx, 1, countMsg{}); err != nil {
		t.Fatalf("healed link: %v", err)
	}
}

func TestCrashRestart(t *testing.T) {
	net, c0, c1, _ := twoNodes(t, Config{Seed: 1})
	ctx := context.Background()
	net.Crash(1)
	if _, err := c0.Call(ctx, 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("call to crashed node: got %v, want ErrInjected", err)
	}
	if _, err := c1.Call(ctx, 0, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("call from crashed node: got %v, want ErrInjected", err)
	}
	net.Restart(1)
	if _, err := c0.Call(ctx, 1, countMsg{}); err != nil {
		t.Fatalf("restarted node: %v", err)
	}
	if s := net.Stats(); s.LinkDenied != 2 {
		t.Fatalf("LinkDenied = %d, want 2", s.LinkDenied)
	}
}

func TestDropCallNeverReachesHandler(t *testing.T) {
	_, c0, _, handled := twoNodes(t, Config{Seed: 1, Probabilities: Probabilities{DropCall: 1}})
	if _, err := c0.Call(context.Background(), 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if n := handled.Load(); n != 0 {
		t.Fatalf("handler ran %d times on a dropped request", n)
	}
}

func TestDropRespRunsHandler(t *testing.T) {
	_, c0, _, handled := twoNodes(t, Config{Seed: 1, Probabilities: Probabilities{DropResp: 1}})
	if _, err := c0.Call(context.Background(), 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if n := handled.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1 (request delivered, response lost)", n)
	}
}

func TestDuplicateSendDeliversTwice(t *testing.T) {
	_, c0, _, handled := twoNodes(t, Config{Seed: 1, Probabilities: Probabilities{Duplicate: 1}})
	if err := c0.Send(context.Background(), 1, countMsg{}); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("handled = %d, want 2 (duplicate delivery)", handled.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDropSendIsSilent(t *testing.T) {
	_, c0, _, handled := twoNodes(t, Config{Seed: 1, Probabilities: Probabilities{DropSend: 1}})
	if err := c0.Send(context.Background(), 1, countMsg{}); err != nil {
		t.Fatalf("dropped send must not error: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := handled.Load(); n != 0 {
		t.Fatalf("handler ran %d times on a dropped send", n)
	}
}

func TestProtectExemptsMessages(t *testing.T) {
	cfg := Config{
		Seed:          1,
		Probabilities: Probabilities{DropCall: 1},
		Protect:       func(msg any) bool { _, ok := msg.(otherMsg); return ok },
	}
	_, c0, _, _ := twoNodes(t, cfg)
	ctx := context.Background()
	if _, err := c0.Call(ctx, 1, otherMsg{}); err != nil {
		t.Fatalf("protected message faulted: %v", err)
	}
	if _, err := c0.Call(ctx, 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("unprotected message survived DropCall=1: %v", err)
	}
}

func TestDisabledDrawsNothing(t *testing.T) {
	net, c0, _, _ := twoNodes(t, Config{Seed: 1, Probabilities: Probabilities{DropCall: 1}})
	net.SetEnabled(false)
	for i := 0; i < 10; i++ {
		if _, err := c0.Call(context.Background(), 1, countMsg{N: i}); err != nil {
			t.Fatalf("disabled injector faulted: %v", err)
		}
	}
	if lg := net.Log(); len(lg) != 0 {
		t.Fatalf("disabled injector logged %d decisions", len(lg))
	}
	// Severed links still apply while disabled.
	net.Sever(0, 1)
	if _, err := c0.Call(context.Background(), 1, countMsg{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("severed link ignored while disabled: %v", err)
	}
	net.HealAll()
	if _, err := c0.Call(context.Background(), 1, countMsg{}); err != nil {
		t.Fatalf("HealAll: %v", err)
	}
}

func TestFaultString(t *testing.T) {
	for f, want := range map[Fault]string{
		FaultDropCall:  "drop-call",
		FaultDropResp:  "drop-resp",
		FaultDropSend:  "drop-send",
		FaultDuplicate: "duplicate",
		FaultDelay:     "delay",
		FaultSevered:   "severed",
	} {
		if got := fmt.Sprint(f); got != want {
			t.Errorf("Fault(%d) = %q, want %q", f, got, want)
		}
	}
}
