package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/chaos/oracle"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/scenario"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
	"alohadb/internal/wal"
)

// ScenarioConfig parameterizes one chaos run: a workload of unique-tag
// append transactions driven against a chaos-wrapped cluster, recorded
// into an oracle.History and checked at the end. Every random choice —
// the fault schedule and the workload — derives from Seed, so a failing
// run replays from its seed alone.
type ScenarioConfig struct {
	Seed int64
	// Servers is the cluster size (default 3).
	Servers int
	// Keys is the number of distinct keys (default 12).
	Keys int
	// Writers and OpsPerWriter size the write load (defaults 6 and 60).
	Writers      int
	OpsPerWriter int
	// Readers is the number of snapshot-reader clients (default 3).
	Readers int
	// EpochDuration shortens epochs so a run crosses many commit
	// boundaries (default 3 ms).
	EpochDuration time.Duration
	// Probabilities overrides the message-level fault mix (default
	// DefaultProbabilities).
	Probabilities *Probabilities
	// LinkChaos adds a goroutine that severs and heals random directed
	// links throughout the run.
	LinkChaos bool
	// Migrate adds a goroutine that live-migrates random workload keys
	// between servers throughout the run, exercising the epoch-fenced
	// placement handoff under the same faults and oracle as everything
	// else.
	Migrate bool
	// Crash runs the workload in two phases with an abrupt cluster crash
	// and WAL recovery in between. Requires Dir.
	Crash bool
	// TCP runs the cluster over real TCP sockets instead of the in-memory
	// transport.
	TCP bool
	// WireCodec selects the TCP wire encoding: "binary" (default), "gob",
	// or "mixed" — even nodes dial binary and odd nodes dial gob, so the
	// handshake fallback that carries a rolling codec upgrade runs under
	// the same faults and oracle as everything else. Requires TCP.
	WireCodec string
	// Dir is the WAL directory (required when Crash is set).
	Dir string
}

func (cfg *ScenarioConfig) defaults() {
	if cfg.Servers <= 0 {
		cfg.Servers = 3
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 12
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 6
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 60
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 3
	}
	if cfg.EpochDuration <= 0 {
		cfg.EpochDuration = 3 * time.Millisecond
	}
}

// Report summarizes one scenario: what the workload did, what the
// injector did to it, and what the oracle concluded.
type Report struct {
	Seed          int64
	Txns          int
	Committed     int
	Aborted       int
	Indeterminate int
	Discarded     int
	Reads         int
	ReadErrors    int
	FinalKeys     int
	// Recomputed counts extra invocations of already-computed functors
	// (legal: at-most-once is an effect guarantee, not an invocation
	// count; concurrent computation and post-crash replay both recompute).
	Recomputed uint64
	// Migrations counts live key moves that completed their handoff
	// mid-workload (Migrate scenarios).
	Migrations int
	Faults     Stats
	Crashes    int
	// GrayEpochs is the width of the recovery gray band: epochs whose
	// commit marker reached only part of the cluster before the crash.
	GrayEpochs int
	Violations []oracle.Violation
}

// OK reports whether the oracle found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d txns (%d committed, %d aborted, %d indeterminate, %d discarded), %d reads (%d failed), %d recomputed",
		r.Seed, r.Txns, r.Committed, r.Aborted, r.Indeterminate, r.Discarded, r.Reads, r.ReadErrors, r.Recomputed)
	if r.Migrations > 0 {
		fmt.Fprintf(&b, ", %d migrations", r.Migrations)
	}
	if r.Crashes > 0 {
		fmt.Fprintf(&b, ", %d crash (gray band %d)", r.Crashes, r.GrayEpochs)
	}
	fmt.Fprintf(&b, "; faults: %v", r.Faults)
	if r.OK() {
		b.WriteString("; oracle: PASS")
	} else {
		fmt.Fprintf(&b, "; oracle: FAIL (%d violations)", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "\n  %v", v)
		}
	}
	return b.String()
}

// computeCounter wraps the workload handler to witness the at-most-once
// invariant (paper §IV): a functor may be *invoked* more than once — by
// concurrent on-demand readers or post-crash replay — but every
// invocation must produce the identical value, so the resolution CAS
// yields one effect. Divergent results would mean duplicated or
// misordered effects and are reported as violations.
type computeCounter struct {
	mu          sync.Mutex
	invocations map[string]int
	results     map[string]string
	divergent   []string
}

func newComputeCounter() *computeCounter {
	return &computeCounter{invocations: make(map[string]int), results: make(map[string]string)}
}

func (c *computeCounter) wrap(h functor.Handler) functor.Handler {
	return func(fc *functor.Context) (*functor.Resolution, error) {
		res, err := h(fc)
		id := fmt.Sprintf("%s@%d", fc.Key, fc.Version)
		fp := "<error>"
		if err == nil && res != nil {
			fp = string(res.Value)
		}
		c.mu.Lock()
		c.invocations[id]++
		if prev, seen := c.results[id]; seen {
			if prev != fp {
				c.divergent = append(c.divergent, fmt.Sprintf("%s: %q vs %q", id, prev, fp))
			}
		} else {
			c.results[id] = fp
		}
		c.mu.Unlock()
		return res, err
	}
}

func (c *computeCounter) recomputed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, inv := range c.invocations {
		if inv > 1 {
			n += uint64(inv - 1)
		}
	}
	return n
}

// appendTags is the workload functor: append this transaction's unique
// tag to the key's previous value. Self-read only, so recomputation is
// deterministic from the key's own chain.
func appendTags(fc *functor.Context) (*functor.Resolution, error) {
	prev := fc.Reads[fc.Key]
	out := make([]byte, 0, len(prev.Value)+len(fc.Arg))
	out = append(out, prev.Value...)
	out = append(out, fc.Arg...)
	return functor.ValueResolution(out), nil
}

func addStats(dst *Stats, s Stats) {
	dst.Calls += s.Calls
	dst.Sends += s.Sends
	dst.DropsCall += s.DropsCall
	dst.DropsResp += s.DropsResp
	dst.DropsSend += s.DropsSend
	dst.Duplicates += s.Duplicates
	dst.Delays += s.Delays
	dst.LinkDenied += s.LinkDenied
}

// RunScenario drives one seeded chaos scenario end to end and returns the
// oracle's verdict. The same seed reproduces the same fault schedule and
// workload decisions.
func RunScenario(cfg ScenarioConfig) (*Report, error) {
	cfg.defaults()
	if cfg.Crash && cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Crash requires Dir")
	}
	probs := DefaultProbabilities()
	if cfg.Probabilities != nil {
		probs = *cfg.Probabilities
	}
	counter := newComputeCounter()
	reg := functor.NewRegistry()
	reg.MustRegister("chaos-append", counter.wrap(appendTags))
	hist := oracle.New()
	keys := make([]kv.Key, cfg.Keys)
	for i := range keys {
		keys[i] = kv.Key(fmt.Sprintf("ck%02d", i))
	}
	rep := &Report{Seed: cfg.Seed}
	var tagSeq atomic.Int64
	var readErrs atomic.Int64
	var migrations atomic.Int64

	build := func(phase int, stores []*mvstore.Store, start tstamp.Epoch) (*core.Cluster, *Network, error) {
		// The shared env builder owns transport and cluster construction;
		// the injector slots in through the WrapNet hook. The env's own
		// lifecycle helpers go unused on purpose: chaos teardown is
		// explicit (a crash is precisely not an orderly Close).
		var net *Network
		ecfg := scenario.EnvConfig{
			Servers:       cfg.Servers,
			EpochDuration: cfg.EpochDuration,
			Registry:      reg,
			// The abort retry budget bounds submit latency; the switch
			// timeout is only a backstop against a wedged revoke.
			SwitchTimeout:     time.Second,
			AbortRetries:      10,
			AbortRetryBackoff: 2 * time.Millisecond,
			Stores:            stores,
			StartEpoch:        start,
			// Each phase gets a derived sub-seed so the post-crash network
			// has its own (still seed-determined) schedule.
			WrapNet: func(inner transport.Network) transport.Network {
				net = Wrap(inner, Config{Seed: cfg.Seed + int64(phase)*0x9e3779b9, Probabilities: probs, LogCap: -1})
				return net
			},
		}
		if cfg.TCP {
			ecfg.Transport = "tcp"
			ecfg.WireCodec = cfg.WireCodec
		}
		if cfg.Crash {
			dir := cfg.Dir
			ecfg.DurabilityFactory = func(id int) (core.DurabilityHook, error) {
				return wal.Open(wal.LogPath(dir, id))
			}
		}
		env, err := scenario.BuildEnv(ecfg)
		if err != nil {
			return nil, nil, err
		}
		return env.Cluster, net, nil
	}

	// runPhase drives writers to completion while readers and the link
	// saboteur run freely, then returns a stopAux that halts and reaps
	// them. The crash path invokes it only after killing the cluster, so
	// readers are genuinely in flight when the servers vanish.
	runPhase := func(c *core.Cluster, net *Network, ops, phase int) (stopAux func()) {
		stop := make(chan struct{})
		var aux sync.WaitGroup
		if cfg.LinkChaos {
			aux.Add(1)
			go func() {
				defer aux.Done()
				rng := rand.New(rand.NewSource(cfg.Seed*104729 + int64(phase)))
				for {
					select {
					case <-stop:
						net.HealAll()
						return
					case <-time.After(time.Duration(2+rng.Intn(20)) * time.Millisecond):
					}
					from := transport.NodeID(rng.Intn(cfg.Servers))
					to := transport.NodeID(rng.Intn(cfg.Servers))
					if from == to {
						continue
					}
					both := rng.Float64() < 0.3
					net.Sever(from, to)
					if both {
						net.Sever(to, from)
					}
					select {
					case <-stop:
						net.HealAll()
						return
					case <-time.After(time.Duration(3+rng.Intn(25)) * time.Millisecond):
					}
					net.Heal(from, to)
					if both {
						net.Heal(to, from)
					}
				}
			}()
		}
		if cfg.Migrate && cfg.Servers > 1 {
			aux.Add(1)
			go func() {
				defer aux.Done()
				rng := rand.New(rand.NewSource(cfg.Seed*31337 + int64(phase)))
				for {
					select {
					case <-stop:
						return
					case <-time.After(time.Duration(8+rng.Intn(16)) * time.Millisecond):
					}
					// Move a random workload key off its current owner; the
					// handoff executes inside the next epoch barrier.
					k := keys[rng.Intn(len(keys))]
					cur := int(c.PlacementTable().Route(k, tstamp.MaxEpoch))
					to := (cur + 1 + rng.Intn(cfg.Servers-1)) % cfg.Servers
					ticket, err := c.Rebalancer().MoveKey(k, to)
					if err != nil {
						continue
					}
					wctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					if _, err := ticket.Wait(wctx); err == nil {
						migrations.Add(1)
					}
					cancel()
				}
			}()
		}
		for r := 0; r < cfg.Readers; r++ {
			aux.Add(1)
			go func(r int) {
				defer aux.Done()
				rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(1000*phase+r)))
				srv := c.Server(r % cfg.Servers)
				for {
					select {
					case <-stop:
						return
					default:
					}
					time.Sleep(time.Duration(rng.Intn(2500)) * time.Microsecond)
					rkeys := pickKeys(rng, keys, 2+rng.Intn(3))
					// A short timeout: loopback reads are sub-millisecond,
					// and a reader caught by the crash must not pin the
					// run for long.
					rctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
					vals, snap, err := srv.ReadMany(rctx, rkeys)
					cancel()
					if err != nil {
						readErrs.Add(1)
						continue
					}
					hist.Observe(r, snap, rkeys, vals)
				}
			}(r)
		}
		var writers sync.WaitGroup
		for w := 0; w < cfg.Writers; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(1000*phase+w)))
				srv := c.Server(w % cfg.Servers)
				for op := 0; op < ops; op++ {
					time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond)
					tag := fmt.Sprintf("t%d", tagSeq.Add(1))
					nk := 1
					if rng.Float64() < 0.45 {
						nk = 2
					}
					wkeys := pickKeys(rng, keys, nk)
					txn := core.Txn{}
					for _, k := range wkeys {
						txn.Writes = append(txn.Writes, core.Write{
							Key:     k,
							Functor: functor.User("chaos-append", []byte(tag+";"), nil),
						})
					}
					// Occasionally require a key that can't exist, forcing
					// the second-round abort path under faults.
					if rng.Float64() < 0.06 {
						txn.Requires = []kv.Key{kv.Key("missing-" + tag)}
					}
					hist.Begin(tag, wkeys)
					sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					results, handles, err := srv.SubmitBatch(sctx, []core.Txn{txn})
					switch {
					case err != nil:
						// SubmitBatch fails before any install fan-out
						// (no timestamp assigned): the tag cannot surface.
						hist.Finish(tag, tstamp.Zero, oracle.StatusAborted)
					case results[0].Aborted && results[0].AbortIncomplete:
						hist.Finish(tag, results[0].Version, oracle.StatusIndeterminate)
					case results[0].Aborted:
						hist.Finish(tag, results[0].Version, oracle.StatusAborted)
					default:
						hist.Finish(tag, results[0].Version, oracle.StatusCommitted)
						if rng.Float64() < 0.15 {
							actx, acancel := context.WithTimeout(context.Background(), time.Second)
							_, _, _ = handles[0].Await(actx)
							acancel()
						}
					}
					cancel()
				}
			}(w)
		}
		writers.Wait()
		return func() {
			close(stop)
			aux.Wait()
		}
	}

	// finish quiesces the cluster and records the final per-key values.
	finish := func(c *core.Cluster, net *Network) error {
		net.SetEnabled(false)
		net.HealAll()
		// Wait on the engine's own commit frontier rather than sleeping a
		// guessed number of epoch durations: once every server has
		// committed past the epoch that was current here, all workload
		// writes are visible.
		if err := scenario.WaitCommitted(c, 10*time.Second); err != nil {
			return err
		}
		c.DrainProcessors()
		for _, k := range keys {
			var (
				v     kv.Value
				found bool
				err   error
			)
			for attempt := 0; attempt < 5; attempt++ {
				fctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				v, found, err = c.Server(0).Get(fctx, k)
				cancel()
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("chaos: final read of %q: %w", k, err)
			}
			hist.ObserveFinal(k, v, found)
		}
		return nil
	}

	c, net, err := build(0, nil, 0)
	if err != nil {
		return nil, err
	}
	if cfg.Crash {
		half := cfg.OpsPerWriter / 2
		stopAux := runPhase(c, net, half, 0)
		// Abrupt crash: close the servers out from under the epoch
		// manager and the still-running readers, then stop the manager.
		// WAL handles are abandoned, not closed — Close would flush
		// buffered tails and fake a clean shutdown. The final epoch's
		// transactions typically die uncommitted here; the oracle
		// reclassifies them from the recovered marker bounds.
		rep.Crashes++
		crashClose(c)
		stopAux()
		addStats(&rep.Faults, net.Stats())
		net.Close()
		stores := make([]*mvstore.Store, cfg.Servers)
		minLast, maxLast := tstamp.Epoch(0), tstamp.Epoch(0)
		for i := range stores {
			st, last, err := wal.Recover(wal.LogPath(cfg.Dir, i))
			if err != nil {
				return nil, fmt.Errorf("chaos: recover server %d: %w", i, err)
			}
			stores[i] = st
			if i == 0 || last < minLast {
				minLast = last
			}
			if last > maxLast {
				maxLast = last
			}
		}
		// Epochs whose marker reached only part of the cluster are the
		// gray band: durable on some partitions, rolled back on others.
		hist.CrashRecovered(minLast, maxLast)
		rep.GrayEpochs = int(maxLast - minLast)
		c2, net2, err := build(1, stores, maxLast+1)
		if err != nil {
			return nil, err
		}
		runPhase(c2, net2, cfg.OpsPerWriter-half, 1)()
		if err := finish(c2, net2); err != nil {
			c2.Close()
			net2.Close()
			return nil, err
		}
		c2.Close()
		addStats(&rep.Faults, net2.Stats())
		net2.Close()
	} else {
		runPhase(c, net, cfg.OpsPerWriter, 0)()
		if err := finish(c, net); err != nil {
			c.Close()
			net.Close()
			return nil, err
		}
		c.Close()
		addStats(&rep.Faults, net.Stats())
		net.Close()
	}

	rep.Violations = hist.Check()
	counter.mu.Lock()
	for _, d := range counter.divergent {
		rep.Violations = append(rep.Violations, oracle.Violation{
			Kind:   "nondeterministic-compute",
			Detail: d,
		})
	}
	counter.mu.Unlock()
	rep.Recomputed = counter.recomputed()
	total, committed, aborted, indeterminate, discarded := hist.Counts()
	rep.Txns = total
	rep.Committed = committed
	rep.Aborted = aborted
	rep.Indeterminate = indeterminate
	rep.Discarded = discarded
	rep.Reads = hist.Reads()
	rep.ReadErrors = int(readErrs.Load())
	rep.Migrations = int(migrations.Load())
	rep.FinalKeys = len(keys)
	return rep, nil
}

// crashClose kills the servers first — out from under the epoch manager
// and any in-flight work — then stops the manager. Cluster.Close would do
// the reverse (an orderly drain), which is exactly what a crash isn't.
func crashClose(c *core.Cluster) {
	var wg sync.WaitGroup
	for i := 0; i < c.NumServers(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = c.Server(i).Close()
		}(i)
	}
	wg.Wait()
	_ = c.Close()
}

// pickKeys samples n distinct keys.
func pickKeys(rng *rand.Rand, keys []kv.Key, n int) []kv.Key {
	if n >= len(keys) {
		n = len(keys)
	}
	idx := rng.Perm(len(keys))[:n]
	out := make([]kv.Key, n)
	for i, j := range idx {
		out[i] = keys[j]
	}
	return out
}
