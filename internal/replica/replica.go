// Package replica implements ALOHA-DB's primary-backup replication at
// epoch granularity (the fault-tolerance strategy of ALOHA-KV the paper
// inherits, §III-A). The primary's durability hook buffers each epoch's
// installs and aborts and ships them to a backup when the epoch commits;
// the backup maintains a shadow store that can be promoted to seed a
// replacement server after a primary crash.
package replica

import (
	"context"
	"fmt"
	"sync"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
	"alohadb/internal/wal"
)

// Sink receives one committed epoch's entries, in commit order. The
// context is the primary's epoch-commit context: it carries the commit
// trace and is cancelled when the primary shuts down, so an in-flight
// shipment to a dead backup cannot wedge Close.
type Sink interface {
	ShipEpoch(ctx context.Context, e tstamp.Epoch, entries []wal.Entry) error
}

// Shipper buffers a primary's durable-state stream per epoch and ships
// each epoch to the sink at its commit marker. It implements
// core.DurabilityHook.
type Shipper struct {
	sink Sink

	mu  sync.Mutex
	buf []wal.Entry // entries of not-yet-committed epochs
}

var _ core.DurabilityHook = (*Shipper)(nil)

// NewShipper returns a shipper delivering committed epochs to sink.
func NewShipper(sink Sink) *Shipper {
	return &Shipper{sink: sink}
}

// LogInstall implements core.DurabilityHook.
func (s *Shipper) LogInstall(version tstamp.Timestamp, key kv.Key, fn *functor.Functor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, wal.Entry{Kind: wal.KindInstall, Version: version, Key: key, Functor: fn})
	return nil
}

// LogAbort implements core.DurabilityHook.
func (s *Shipper) LogAbort(version tstamp.Timestamp, keys []kv.Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, wal.Entry{Kind: wal.KindAbort, Version: version, Keys: keys})
	return nil
}

// LogEpochCommitted implements core.DurabilityHook: ship every buffered
// entry belonging to epochs <= e. Entries of later epochs (straggler-mode
// installs that raced the switch) stay buffered for their own commit.
func (s *Shipper) LogEpochCommitted(ctx context.Context, e tstamp.Epoch) error {
	s.mu.Lock()
	var ship, keep []wal.Entry
	for _, entry := range s.buf {
		if entry.Version.Epoch() <= e {
			ship = append(ship, entry)
		} else {
			keep = append(keep, entry)
		}
	}
	s.buf = keep
	s.mu.Unlock()
	return s.sink.ShipEpoch(ctx, e, ship)
}

// Backup maintains a shadow copy of one primary's partition, applied one
// committed epoch at a time. It implements Sink for in-process wiring and
// is driven by BackupNode for cross-process replication.
type Backup struct {
	mu    sync.Mutex
	store *mvstore.Store
	last  tstamp.Epoch
}

var _ Sink = (*Backup)(nil)

// NewBackup returns an empty backup.
func NewBackup() *Backup {
	return &Backup{store: mvstore.New()}
}

// ShipEpoch implements Sink: apply the epoch's installs and aborts.
// Application is idempotent (duplicate installs are ignored, abort
// resolution is a CAS), so a retried shipment is harmless.
func (b *Backup) ShipEpoch(_ context.Context, e tstamp.Epoch, entries []wal.Entry) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e < b.last {
		return nil // stale duplicate
	}
	for _, entry := range entries {
		switch entry.Kind {
		case wal.KindInstall:
			if _, err := b.store.Put(entry.Key, entry.Version, entry.Functor); err != nil && err != mvstore.ErrVersionExists {
				return fmt.Errorf("replica: apply install %q@%v: %w", entry.Key, entry.Version, err)
			}
		case wal.KindAbort:
			for _, k := range entry.Keys {
				if rec, ok := b.store.At(k, entry.Version); ok {
					rec.Resolve(functor.AbortResolution("aborted: peer partition failed phase 1"))
				}
			}
		default:
			return fmt.Errorf("replica: unexpected entry kind %d", entry.Kind)
		}
	}
	// Publish the epoch on the shadow store (in-epoch -> out-epoch).
	b.store.SealAll(tstamp.End(e))
	b.last = e
	return nil
}

// LastEpoch returns the newest fully applied epoch.
func (b *Backup) LastEpoch() tstamp.Epoch {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}

// Promote hands the shadow store over for seeding a replacement server
// (core.ClusterConfig.Stores) and reports the last applied epoch; the new
// cluster starts at the next epoch. The backup must not receive further
// shipments after promotion.
func (b *Backup) Promote() (*mvstore.Store, tstamp.Epoch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.store, b.last
}

// --- cross-process shipping ------------------------------------------------

// MsgShipEpoch carries one committed epoch to a remote backup node.
type MsgShipEpoch struct {
	E       tstamp.Epoch
	Entries []wal.Entry
}

// RegisterMessages registers replication messages for the TCP transport.
func RegisterMessages() { transport.RegisterType(MsgShipEpoch{}) }

// RemoteSink ships epochs to a backup node over the transport. Shipments
// are synchronous calls so the primary learns about a dead backup at the
// epoch boundary rather than silently diverging.
type RemoteSink struct {
	conn transport.Conn
	node transport.NodeID
}

var _ Sink = (*RemoteSink)(nil)

// NewRemoteSink returns a sink delivering to the backup at node via conn.
func NewRemoteSink(conn transport.Conn, node transport.NodeID) *RemoteSink {
	return &RemoteSink{conn: conn, node: node}
}

// ShipEpoch implements Sink. The call runs on the primary's epoch-commit
// context, so server shutdown cancels a shipment stuck on a dead backup
// and the epoch-commit trace (if sampled) extends across the shipment.
func (s *RemoteSink) ShipEpoch(ctx context.Context, e tstamp.Epoch, entries []wal.Entry) error {
	_, err := s.conn.Call(ctx, s.node, MsgShipEpoch{E: e, Entries: entries})
	if err != nil {
		return fmt.Errorf("replica: ship epoch %d: %w", e, err)
	}
	return nil
}

// BackupNode hosts a Backup behind a transport node.
type BackupNode struct {
	Backup *Backup
	conn   transport.Conn
}

// NewBackupNode attaches a backup to the network at nodeID.
func NewBackupNode(net transport.Network, nodeID transport.NodeID) (*BackupNode, error) {
	n := &BackupNode{Backup: NewBackup()}
	conn, err := net.Node(nodeID, n.handle)
	if err != nil {
		return nil, err
	}
	n.conn = conn
	return n, nil
}

func (n *BackupNode) handle(ctx context.Context, from transport.NodeID, msg any) (any, error) {
	m, ok := msg.(MsgShipEpoch)
	if !ok {
		return nil, fmt.Errorf("replica: backup: unexpected message %T", msg)
	}
	return nil, n.Backup.ShipEpoch(ctx, m.E, m.Entries)
}

// Close detaches the backup node.
func (n *BackupNode) Close() error { return n.conn.Close() }
