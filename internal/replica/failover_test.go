package replica

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/tstamp"
)

// TestFailoverUnderLoad replicates a cluster while concurrent transfer
// traffic runs, "crashes" it mid-stream, promotes the backups, and checks
// the invariant that matters: the promoted state is a consistent epoch
// boundary — total money is conserved even though an unknown number of
// in-flight transactions was lost.
func TestFailoverUnderLoad(t *testing.T) {
	const (
		servers  = 2
		accounts = 10
		total    = int64(accounts) * 1000
	)
	reg := functor.NewRegistry()
	reg.MustRegister("take", func(ctx *functor.Context) (*functor.Resolution, error) {
		bal := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			bal, _ = kv.DecodeInt64(r.Value)
		}
		amt, _ := kv.DecodeInt64(ctx.Arg)
		if bal < amt {
			return functor.AbortResolution("insufficient"), nil
		}
		return functor.ValueResolution(kv.EncodeInt64(bal - amt)), nil
	})
	reg.MustRegister("give", func(ctx *functor.Context) (*functor.Resolution, error) {
		src := kv.Key(ctx.Arg[8:])
		amt, _ := kv.DecodeInt64(ctx.Arg[:8])
		srcBal := int64(0)
		if r := ctx.Reads[src]; r.Found {
			srcBal, _ = kv.DecodeInt64(r.Value)
		}
		if srcBal < amt {
			return functor.AbortResolution("insufficient"), nil
		}
		bal := int64(0)
		if r := ctx.Reads[ctx.Key]; r.Found {
			bal, _ = kv.DecodeInt64(r.Value)
		}
		return functor.ValueResolution(kv.EncodeInt64(bal + amt)), nil
	})

	backups := make([]*Backup, servers)
	for i := range backups {
		backups[i] = NewBackup()
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:       servers,
		EpochDuration: 2 * time.Millisecond,
		Registry:      reg,
		DurabilityFactory: func(id int) (core.DurabilityHook, error) {
			return NewShipper(backups[id]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]kv.Key, accounts)
	pairs := make([]kv.Pair, accounts)
	for i := range keys {
		keys[i] = kv.Key(fmt.Sprintf("acct:%d", i))
		pairs[i] = kv.Pair{Key: keys[i], Value: kv.EncodeInt64(1000)}
	}
	if err := c.Load(pairs); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// Concurrent transfers until the crash.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := keys[(w+i)%accounts]
				dst := keys[(w+i*3+1)%accounts]
				if src == dst {
					i++
					continue
				}
				arg := append(kv.EncodeInt64(5), src...)
				_, err := c.Server(w%servers).Submit(ctx, core.Txn{Writes: []core.Write{
					{Key: src, Functor: functor.User("take", kv.EncodeInt64(5), nil)},
					{Key: dst, Functor: functor.User("give", arg, []kv.Key{src})},
				}})
				if err != nil {
					return // cluster is shutting down
				}
				i++
			}
		}(w)
	}
	time.Sleep(60 * time.Millisecond) // several epochs of traffic
	close(stop)
	wg.Wait()
	c.Close() // crash

	// Promote. Every backup must have applied the same set of committed
	// epochs for the invariant to hold; the shipper guarantees per-epoch
	// atomicity, and the EM commits an epoch everywhere or nowhere.
	stores := make([]*mvstore.Store, servers)
	var low tstamp.Epoch
	for i, b := range backups {
		var e tstamp.Epoch
		stores[i], e = b.Promote()
		if i == 0 || e < low {
			low = e
		}
	}
	if low == 0 {
		t.Fatal("no epochs were replicated")
	}
	c2, err := core.NewCluster(core.ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Registry:     reg,
		Stores:       stores,
		StartEpoch:   low + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snapshot := tstamp.End(low).Prev()
	sum := int64(0)
	for _, k := range keys {
		v, found, err := c2.Server(0).GetAt(ctx, k, snapshot)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("%s missing after failover", k)
		}
		n, _ := kv.DecodeInt64(v)
		sum += n
	}
	if sum != total {
		t.Fatalf("money not conserved across failover: %d, want %d", sum, total)
	}
}
