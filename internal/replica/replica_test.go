package replica

import (
	"context"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/mvstore"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
	"alohadb/internal/wal"
)

func ts(e tstamp.Epoch, seq uint32) tstamp.Timestamp { return tstamp.Make(e, seq, 0) }

func TestShipperBuffersUntilCommit(t *testing.T) {
	b := NewBackup()
	s := NewShipper(b)
	if err := s.LogInstall(ts(1, 1), "k", functor.Value(kv.Value("v"))); err != nil {
		t.Fatal(err)
	}
	if b.LastEpoch() != 0 {
		t.Error("backup received data before commit")
	}
	if err := s.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if b.LastEpoch() != 1 {
		t.Errorf("backup last epoch = %d, want 1", b.LastEpoch())
	}
	store, _ := b.Promote()
	if _, ok := store.At("k", ts(1, 1)); !ok {
		t.Error("shipped record missing on backup")
	}
}

func TestShipperKeepsLaterEpochEntries(t *testing.T) {
	b := NewBackup()
	s := NewShipper(b)
	// Straggler-mode install for epoch 2 arrives before epoch 1 commits.
	if err := s.LogInstall(ts(1, 1), "a", functor.Value(nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogInstall(ts(2, 1), "b", functor.Value(nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	store, _ := b.Promote()
	if _, ok := store.At("a", ts(1, 1)); !ok {
		t.Error("epoch-1 entry not shipped")
	}
	if _, ok := store.At("b", ts(2, 1)); ok {
		t.Error("epoch-2 entry shipped with epoch 1")
	}
	if err := s.LogEpochCommitted(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.At("b", ts(2, 1)); !ok {
		t.Error("epoch-2 entry not shipped at its own commit")
	}
}

func TestBackupAppliesAbortsAndIsIdempotent(t *testing.T) {
	b := NewBackup()
	entries := []wal.Entry{
		{Kind: wal.KindInstall, Version: ts(1, 1), Key: "x", Functor: functor.Value(kv.Value("v"))},
		{Kind: wal.KindAbort, Version: ts(1, 1), Keys: []kv.Key{"x"}},
	}
	if err := b.ShipEpoch(context.Background(), 1, entries); err != nil {
		t.Fatal(err)
	}
	if err := b.ShipEpoch(context.Background(), 1, entries); err != nil { // duplicate delivery
		t.Fatal(err)
	}
	store, last := b.Promote()
	if last != 1 {
		t.Errorf("last = %d, want 1", last)
	}
	rec, ok := store.At("x", ts(1, 1))
	if !ok || rec.Resolution() == nil || rec.Resolution().Kind != functor.ResolvedAborted {
		t.Errorf("aborted record not reproduced: %v ok=%v", rec, ok)
	}
}

// TestPrimaryBackupFailover replicates a running cluster to per-server
// backups, "crashes" the cluster, promotes the backups, and verifies the
// replacement cluster serves the committed state.
func TestPrimaryBackupFailover(t *testing.T) {
	const servers = 2
	backups := make([]*Backup, servers)
	for i := range backups {
		backups[i] = NewBackup()
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		DurabilityFactory: func(id int) (core.DurabilityHook, error) {
			return NewShipper(backups[id]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load([]kv.Pair{
		{Key: "a", Value: kv.EncodeInt64(10)},
		{Key: "b", Value: kv.EncodeInt64(20)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Server(i%servers).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: "a", Functor: functor.Add(5)},
			{Key: "b", Functor: functor.Sub(5)},
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AdvanceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// A write in the final, never-committed epoch must not survive.
	if _, err := c.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
		{Key: "a", Functor: functor.Add(1000)},
	}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	stores := make([]*mvstore.Store, servers)
	var last tstamp.Epoch
	for i, b := range backups {
		var e tstamp.Epoch
		stores[i], e = b.Promote()
		if e > last {
			last = e
		}
	}
	c2, err := core.NewCluster(core.ClusterConfig{
		Servers:      servers,
		ManualEpochs: true,
		Stores:       stores,
		StartEpoch:   last + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[kv.Key]int64{"a": 20, "b": 10} {
		v, found, err := c2.Server(0).GetCommitted(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := kv.DecodeInt64(v)
		if !found || n != want {
			t.Errorf("%s = %d found=%v, want %d", key, n, found, want)
		}
	}
}

func TestRemoteShippingOverTransport(t *testing.T) {
	RegisterMessages()
	net := transport.NewMemNetwork()
	defer net.Close()
	backup, err := NewBackupNode(net, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	conn, err := net.Node(0, func(context.Context, transport.NodeID, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	shipper := NewShipper(NewRemoteSink(conn, 100))
	if err := shipper.LogInstall(ts(1, 1), "k", functor.Value(kv.Value("remote"))); err != nil {
		t.Fatal(err)
	}
	if err := shipper.LogEpochCommitted(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	store, last := backup.Backup.Promote()
	if last != 1 {
		t.Errorf("backup epoch = %d, want 1", last)
	}
	rec, ok := store.At("k", ts(1, 1))
	if !ok || string(rec.Functor.Arg) != "remote" {
		t.Error("remote shipment not applied")
	}
}

// TestShipEpochCancellation pins the shutdown contract: the context handed
// to LogEpochCommitted (the primary's lifetime context in production)
// cancels an in-flight shipment to an unresponsive backup instead of
// wedging the epoch commit forever.
func TestShipEpochCancellation(t *testing.T) {
	RegisterMessages()
	net := transport.NewTCPNetwork(map[transport.NodeID]string{
		0: "127.0.0.1:0", 100: "127.0.0.1:0",
	})
	defer net.Close()
	block := make(chan struct{})
	defer close(block)
	// A backup that never answers, standing in for a hung or dead node.
	if _, err := net.Node(100, func(context.Context, transport.NodeID, any) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Node(0, func(context.Context, transport.NodeID, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	shipper := NewShipper(NewRemoteSink(conn, 100))
	if err := shipper.LogInstall(ts(1, 1), "k", functor.Value(kv.Value("v"))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- shipper.LogEpochCommitted(ctx, 1) }()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled shipment reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shipment ignored context cancellation")
	}
}
