// Package kv defines the key and value types shared by every layer of
// ALOHA-DB, along with the hash used for key partitioning. ALOHA-DB stores
// key-functor pairs in a hash-partitioned distributed table (paper §III-D);
// all layers agree on this hash so that any node can route any key.
package kv

import "encoding/binary"

// Key identifies one item in the distributed table. Workloads encode
// composite keys (table, warehouse, district, ...) into the string.
type Key string

// Value is an opaque, immutable byte payload. Numeric helpers below define
// the encoding used by the built-in arithmetic f-types.
type Value []byte

// Pair couples a key with a value, used in bulk-load and checkpoint paths.
type Pair struct {
	Key   Key
	Value Value
}

// Hash returns a stable 64-bit FNV-1a hash of the key. Both ALOHA-DB and
// the Calvin baseline partition by this hash so experiments compare the
// same data placement.
func Hash(k Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}

// PartitionOf maps a key onto one of n partitions.
func PartitionOf(k Key, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash(k) % uint64(n))
}

// EncodeInt64 renders v in the fixed 8-byte big-endian encoding used by the
// built-in ADD/SUBTR/MAX/MIN f-types.
func EncodeInt64(v int64) Value {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses a value produced by EncodeInt64. Values of the wrong
// length decode as zero with ok=false; arithmetic f-types treat a missing
// or malformed previous version as zero, matching a counter's natural
// initial state.
func DecodeInt64(v Value) (n int64, ok bool) {
	if len(v) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(v)), true
}
