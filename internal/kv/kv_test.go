package kv

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestHashStable(t *testing.T) {
	if Hash("") != Hash("") {
		t.Error("hash of empty key not stable")
	}
	if Hash("a") == Hash("b") {
		t.Error("trivially distinct keys collide")
	}
}

func TestPartitionOf(t *testing.T) {
	tests := []struct {
		name string
		key  Key
		n    int
	}{
		{name: "one partition", key: "x", n: 1},
		{name: "zero partitions treated as one", key: "x", n: 0},
		{name: "many", key: "warehouse:3", n: 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := PartitionOf(tt.key, tt.n)
			max := tt.n
			if max < 1 {
				max = 1
			}
			if p < 0 || p >= max {
				t.Errorf("PartitionOf(%q, %d) = %d, out of range", tt.key, tt.n, p)
			}
		})
	}
}

func TestPartitionBalance(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 8000; i++ {
		counts[PartitionOf(Key("key:"+strconv.Itoa(i)), n)]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Errorf("partition %d received no keys", p)
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, ok := DecodeInt64(EncodeInt64(v))
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeInt64Malformed(t *testing.T) {
	for _, v := range []Value{nil, {}, {1, 2, 3}, make(Value, 9)} {
		if _, ok := DecodeInt64(v); ok {
			t.Errorf("DecodeInt64(%v) ok = true, want false", v)
		}
	}
}
