package epoch

import (
	"testing"
	"time"
)

// These tests drive the interval tuner (retune) directly with crafted
// switch durations, pinning its arithmetic deterministically — no
// participants, no wall-clock switches. Manager-level behavior (idle
// drift across real Advances, ack-delay tracking) is covered in
// epoch_test.go.

// tunerForTest builds an adaptive manager without starting it; retune
// only touches the EMA state and the interval atomic.
func tunerForTest(min, max time.Duration) *Manager {
	return New(Config{Duration: min, MinDuration: min, MaxDuration: max})
}

func TestRetuneConvergesToTargetFraction(t *testing.T) {
	m := tunerForTest(time.Millisecond, time.Second)
	// A steady 1ms switch at the default 5% target fraction should pin
	// the interval at 20ms. The first call seeds the EMA exactly, so
	// convergence is immediate and stays put.
	for i := 0; i < 10; i++ {
		m.retune(time.Millisecond)
		if got := m.Interval(); got != 20*time.Millisecond {
			t.Fatalf("retune %d: interval = %v, want 20ms (1ms / 0.05)", i+1, got)
		}
	}
}

func TestRetuneDampsOutliers(t *testing.T) {
	m := tunerForTest(time.Millisecond, 10*time.Second)
	for i := 0; i < 10; i++ {
		m.retune(time.Millisecond)
	}
	// One straggler ack makes a 100ms switch. Undamped, the interval
	// would jump to 100ms/0.05 = 2s; the alpha-0.25 EMA must keep it
	// far below that (ema = 0.25*100ms + 0.75*1ms = 25.75ms -> 515ms).
	m.retune(100 * time.Millisecond)
	got := m.Interval()
	if got >= time.Second {
		t.Fatalf("one outlier moved the interval to %v; EMA damping lost", got)
	}
	if got <= 20*time.Millisecond {
		t.Fatalf("outlier ignored entirely: interval still %v", got)
	}
	// Recovery: steady 1ms switches pull the interval back down.
	for i := 0; i < 30; i++ {
		m.retune(time.Millisecond)
	}
	if got := m.Interval(); got > 25*time.Millisecond {
		t.Errorf("interval stuck at %v after the outlier aged out", got)
	}
}

func TestRetuneClampsToBounds(t *testing.T) {
	m := tunerForTest(5*time.Millisecond, 50*time.Millisecond)
	// Near-zero switches: target ~0, clamped at the floor.
	for i := 0; i < 5; i++ {
		m.retune(time.Microsecond)
	}
	if got := m.Interval(); got != 5*time.Millisecond {
		t.Errorf("fast switches: interval = %v, want the 5ms floor", got)
	}
	// Huge switches: target in the seconds, clamped at the ceiling.
	for i := 0; i < 10; i++ {
		m.retune(time.Second)
	}
	if got := m.Interval(); got != 50*time.Millisecond {
		t.Errorf("slow switches: interval = %v, want the 50ms ceiling", got)
	}
}

func TestRetuneIdleDoublingLadder(t *testing.T) {
	commits := uint64(0)
	m := New(Config{
		Duration:    10 * time.Millisecond,
		MinDuration: 10 * time.Millisecond,
		MaxDuration: 160 * time.Millisecond,
		CommitCount: func() uint64 { return commits },
	})
	// Every epoch is idle (CommitCount frozen): the interval climbs the
	// doubling ladder and parks at MaxDuration, regardless of the switch
	// EMA staying tiny.
	for i, want := range []time.Duration{20, 40, 80, 160, 160} {
		m.retune(100 * time.Microsecond)
		if got := m.Interval(); got != want*time.Millisecond {
			t.Fatalf("idle retune %d: interval = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

func TestRetuneBurstAfterIdleShrinks(t *testing.T) {
	// Regression guard for the burst-after-idle path: a cluster that
	// drifted to MaxDuration while quiet must snap back to the EMA
	// target on the first busy epoch — not keep the doubled interval one
	// epoch longer, and not ratchet down one halving at a time.
	commits := uint64(0)
	m := New(Config{
		Duration:    10 * time.Millisecond,
		MinDuration: time.Millisecond,
		MaxDuration: 500 * time.Millisecond,
		CommitCount: func() uint64 { return commits },
	})
	for i := 0; i < 8; i++ {
		m.retune(time.Millisecond) // idle: drifts to the 500ms ceiling
	}
	if got := m.Interval(); got != 500*time.Millisecond {
		t.Fatalf("idle drift parked at %v, want the 500ms ceiling", got)
	}
	commits++ // the burst arrives
	m.retune(time.Millisecond)
	if got := m.Interval(); got != 20*time.Millisecond {
		t.Fatalf("first busy retune: interval = %v, want the 20ms EMA target", got)
	}
	// And it stays at the target while traffic continues.
	commits++
	m.retune(time.Millisecond)
	if got := m.Interval(); got != 20*time.Millisecond {
		t.Errorf("second busy retune: interval = %v, want 20ms", got)
	}
}

func TestRetuneNoopWhenNotAdaptive(t *testing.T) {
	m := New(Config{Duration: 25 * time.Millisecond})
	for i := 0; i < 5; i++ {
		m.retune(time.Second)
	}
	if got := m.Interval(); got != 25*time.Millisecond {
		t.Errorf("non-adaptive manager retuned itself to %v", got)
	}
}
