package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alohadb/internal/tstamp"
)

// fakeParticipant records the protocol events it observes.
type fakeParticipant struct {
	mu        sync.Mutex
	grants    []tstamp.Epoch
	revokes   []tstamp.Epoch
	committed []tstamp.Epoch
	ackDelay  time.Duration
	holdAck   bool
	pending   []func()
}

func (f *fakeParticipant) Grant(e tstamp.Epoch) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.grants = append(f.grants, e)
}

func (f *fakeParticipant) Revoke(e tstamp.Epoch, ack func()) {
	f.mu.Lock()
	f.revokes = append(f.revokes, e)
	hold := f.holdAck
	delay := f.ackDelay
	if hold {
		f.pending = append(f.pending, ack)
	}
	f.mu.Unlock()
	if hold {
		return
	}
	if delay > 0 {
		go func() {
			time.Sleep(delay)
			ack()
		}()
		return
	}
	ack()
}

func (f *fakeParticipant) Committed(e tstamp.Epoch) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.committed = append(f.committed, e)
}

func (f *fakeParticipant) releaseAcks() {
	f.mu.Lock()
	pending := f.pending
	f.pending = nil
	f.mu.Unlock()
	for _, ack := range pending {
		ack()
	}
}

func (f *fakeParticipant) snapshot() (grants, revokes, committed []tstamp.Epoch) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]tstamp.Epoch(nil), f.grants...),
		append([]tstamp.Epoch(nil), f.revokes...),
		append([]tstamp.Epoch(nil), f.committed...)
}

func TestStartGrantsEpochOne(t *testing.T) {
	m := New(Config{})
	p := &fakeParticipant{}
	if err := m.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	grants, _, committed := p.snapshot()
	if len(grants) != 1 || grants[0] != 1 {
		t.Errorf("grants = %v, want [1]", grants)
	}
	if len(committed) != 1 || committed[0] != 0 {
		t.Errorf("committed = %v, want [0]", committed)
	}
	if m.Current() != 1 {
		t.Errorf("Current() = %d, want 1", m.Current())
	}
	if err := m.Start(); err == nil {
		t.Error("double Start should fail")
	}
}

func TestAdvanceProtocolOrder(t *testing.T) {
	m := New(Config{})
	p1, p2 := &fakeParticipant{}, &fakeParticipant{}
	for _, p := range []*fakeParticipant{p1, p2} {
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	next, err := m.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Errorf("Advance() = %d, want 2", next)
	}
	for i, p := range []*fakeParticipant{p1, p2} {
		grants, revokes, committed := p.snapshot()
		if len(revokes) != 1 || revokes[0] != 1 {
			t.Errorf("p%d revokes = %v, want [1]", i+1, revokes)
		}
		wantGrants := []tstamp.Epoch{1, 2}
		wantCommitted := []tstamp.Epoch{0, 1}
		if len(grants) != 2 || grants[0] != wantGrants[0] || grants[1] != wantGrants[1] {
			t.Errorf("p%d grants = %v, want %v", i+1, grants, wantGrants)
		}
		if len(committed) != 2 || committed[0] != wantCommitted[0] || committed[1] != wantCommitted[1] {
			t.Errorf("p%d committed = %v, want %v", i+1, committed, wantCommitted)
		}
	}
}

func TestAdvanceBeforeStart(t *testing.T) {
	m := New(Config{})
	if _, err := m.Advance(); err == nil {
		t.Error("Advance before Start should fail")
	}
}

func TestRegisterAfterStart(t *testing.T) {
	m := New(Config{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(&fakeParticipant{}); err == nil {
		t.Error("Register after Start should fail")
	}
}

func TestAdvanceWaitsForAcks(t *testing.T) {
	m := New(Config{})
	p := &fakeParticipant{holdAck: true}
	if err := m.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	var advanced atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.Advance(); err != nil {
			t.Errorf("Advance: %v", err)
			return
		}
		advanced.Store(true)
	}()
	time.Sleep(50 * time.Millisecond)
	if advanced.Load() {
		t.Fatal("Advance completed before revoke ack")
	}
	p.releaseAcks()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance hung after acks released")
	}
	if !advanced.Load() {
		t.Error("Advance did not complete")
	}
}

func TestSwitchTimeoutEscapesStraggler(t *testing.T) {
	m := New(Config{SwitchTimeout: 30 * time.Millisecond})
	straggler := &fakeParticipant{holdAck: true}
	if err := m.Register(straggler); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.Advance(); err != nil {
			t.Errorf("Advance: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance did not escape the straggler")
	}
	if m.Current() != 2 {
		t.Errorf("Current() = %d, want 2", m.Current())
	}
	straggler.releaseAcks() // late ack must be harmless
}

func TestRunAdvancesOnTimer(t *testing.T) {
	m := New(Config{Duration: 5 * time.Millisecond})
	p := &fakeParticipant{}
	if err := m.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	deadline := time.After(2 * time.Second)
	for m.Current() < 4 {
		select {
		case <-deadline:
			t.Fatalf("epochs did not advance; current = %d", m.Current())
		case <-time.After(time.Millisecond):
		}
	}
	count, total := m.SwitchStats()
	if count < 3 {
		t.Errorf("switch count = %d, want >= 3", count)
	}
	if total <= 0 {
		t.Error("switch duration not recorded")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := New(Config{Duration: time.Hour})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestStopIdempotentWithoutRun(t *testing.T) {
	m := New(Config{})
	m.Stop()
	m.Stop()
}

func TestDefaultDuration(t *testing.T) {
	if d := New(Config{}).Duration(); d != DefaultDuration {
		t.Errorf("Duration() = %v, want %v", d, DefaultDuration)
	}
	if d := New(Config{Duration: time.Second}).Duration(); d != time.Second {
		t.Errorf("Duration() = %v, want 1s", d)
	}
}

func TestConcurrentAdvanceRejected(t *testing.T) {
	m := New(Config{})
	p := &fakeParticipant{holdAck: true}
	if err := m.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.Advance(); err != nil {
			t.Errorf("first Advance: %v", err)
		}
	}()
	// Wait until the first switch is blocked on the held ack.
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		blocked := len(p.pending) > 0
		p.mu.Unlock()
		if blocked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first Advance never reached the revoke")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Advance(); err == nil {
		t.Error("concurrent Advance should be rejected")
	}
	p.releaseAcks()
	<-done
}

func TestAdaptiveInterval(t *testing.T) {
	var commits atomic.Uint64
	m := New(Config{
		Duration:    10 * time.Millisecond,
		MinDuration: 5 * time.Millisecond,
		MaxDuration: 80 * time.Millisecond,
		CommitCount: func() uint64 { return commits.Load() },
	})
	if err := m.Register(&fakeParticipant{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if got := m.Interval(); got != 10*time.Millisecond {
		t.Fatalf("initial interval = %v, want the configured duration", got)
	}
	// Idle epochs (no commits between switches) drift the interval toward
	// the max bound, doubling each switch: 10 -> 20 -> 40 -> 80 -> 80.
	for i, want := range []time.Duration{20, 40, 80, 80} {
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
		if got := m.Interval(); got != want*time.Millisecond {
			t.Fatalf("idle switch %d: interval = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	// A busy epoch snaps back to the EMA target. Acks return instantly
	// here, so the switch EMA is far below min*fraction and the clamp
	// floors the interval at MinDuration.
	commits.Add(100)
	if _, err := m.Advance(); err != nil {
		t.Fatal(err)
	}
	if got := m.Interval(); got != 5*time.Millisecond {
		t.Fatalf("busy switch: interval = %v, want the 5ms floor", got)
	}
}

func TestAdaptiveIntervalDisabled(t *testing.T) {
	m := New(Config{Duration: 10 * time.Millisecond})
	if err := m.Register(&fakeParticipant{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Interval(); got != 10*time.Millisecond {
		t.Errorf("fixed interval moved to %v", got)
	}
}

func TestAdaptiveIntervalTracksSlowSwitches(t *testing.T) {
	// Acks arriving after ~2ms make the switch EMA ~2ms; at the default
	// 5% target fraction the tuner should settle near 40ms, inside the
	// [1ms, 200ms] window rather than at either clamp.
	m := New(Config{
		Duration:    time.Millisecond,
		MinDuration: time.Millisecond,
		MaxDuration: 200 * time.Millisecond,
	})
	if err := m.Register(&fakeParticipant{ackDelay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Interval()
	if got < 20*time.Millisecond || got > 200*time.Millisecond {
		t.Errorf("interval = %v, want ~40ms (2ms switch / 5%% target)", got)
	}
}
