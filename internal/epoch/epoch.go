// Package epoch implements the epoch manager (EM) of epoch-based
// concurrency control (paper §II, §III). The EM controls epoch changes by
// granting and revoking authorizations at all front-ends. ALOHA-DB uses
// unified epochs (§III-B): there is only a series of write epochs, and all
// transactions started within epoch e become visible atomically when epoch
// e+1 is granted.
//
// The manager is transport-agnostic: participants are an interface, so the
// embedded simulated cluster registers servers directly while the TCP
// deployment registers proxies that relay the protocol as messages. The
// epoch switch is the paper's amortized-one-round-trip commitment: Revoke
// (wait for in-flight transactions to drain) followed by a combined
// Committed+Grant broadcast.
package epoch

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/metrics"
	"alohadb/internal/obs/journal"
	"alohadb/internal/trace"
	"alohadb/internal/tstamp"
)

// Participant is one front-end (or FE proxy) under the manager's control.
// Methods are called from the manager's switch goroutine; implementations
// must not block indefinitely, and Revoke must eventually invoke ack
// (possibly asynchronously, after in-flight transactions drain).
type Participant interface {
	// Grant authorizes the participant to start transactions in epoch e.
	Grant(e tstamp.Epoch)
	// Revoke withdraws the authorization for epoch e. The participant
	// stops starting authorized transactions in e (it may continue in
	// straggler mode, drawing timestamps from e+1, per §III-C) and calls
	// ack once every in-flight epoch-e transaction has completed its
	// write-only phase.
	Revoke(e tstamp.Epoch, ack func())
	// Committed announces that every transaction of epoch e is durable on
	// all participants: epoch-e versions become visible and their functors
	// become computable.
	Committed(e tstamp.Epoch)
}

// Config tunes a Manager.
type Config struct {
	// Duration is the epoch length for the timer-driven Run loop. The
	// paper's default deployment uses 25 ms. With MinDuration/MaxDuration
	// set it is only the starting point of the adaptive interval.
	Duration time.Duration
	// SwitchTimeout bounds how long the manager waits for revoke acks
	// before proceeding anyway (crash-stop straggler escape hatch).
	// Zero means wait forever.
	SwitchTimeout time.Duration
	// StartEpoch is the first epoch granted by Start (default 1). Recovery
	// restarts a cluster at the epoch after the last durably committed
	// one; every epoch up to StartEpoch-1 is announced as committed.
	StartEpoch tstamp.Epoch

	// MinDuration and MaxDuration, when both set (0 < Min <= Max), enable
	// the adaptive epoch interval: after every switch, Run's next interval
	// is retuned from an EMA of observed switch durations so the switch
	// overhead stays near TargetSwitchFraction of the epoch, clamped to
	// [MinDuration, MaxDuration]. A slow cluster (long ack waits) gets
	// longer epochs — lower commit-latency overhead per transaction — and
	// a fast one converges down toward MinDuration for fresher visibility.
	MinDuration time.Duration
	MaxDuration time.Duration
	// TargetSwitchFraction is the switch-duration share of the epoch the
	// tuner aims for; default 0.05 (the switch costs at most ~5% of the
	// epoch). Only meaningful with MinDuration/MaxDuration.
	TargetSwitchFraction float64
	// CommitCount, when set, returns the cluster's cumulative committed
	// transaction count. The tuner uses it for idle detection: an epoch
	// that committed nothing drifts the interval toward MaxDuration,
	// halving switch churn on quiet clusters; the first busy epoch snaps
	// it back to the EMA target.
	CommitCount func() uint64
}

// DefaultDuration is the paper's default unified epoch duration (§V-A2).
const DefaultDuration = 25 * time.Millisecond

// Manager is the epoch manager. Create with New, attach participants, then
// either drive epochs manually with Advance (deterministic tests) or start
// the timer loop with Run.
type Manager struct {
	cfg Config

	mu           sync.Mutex
	participants []Participant
	current      tstamp.Epoch
	started      bool
	switching    bool
	barrier      func(e tstamp.Epoch)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	running  bool

	// switchHist is the distribution of epoch-switch durations
	// (revoke broadcast through the Committed+Grant broadcast), the
	// manager-side view of epoch-switch jitter.
	switchHist *metrics.Histogram

	// adaptive-interval state. intervalNs is the Run loop's next epoch
	// length, retuned after every switch when adaptive is set; emaSwitch
	// and lastCommits are touched only by the (serialized) Advance path.
	adaptive    bool
	intervalNs  atomic.Int64
	emaSwitchNs float64
	lastCommits uint64

	// tr, when set, records each Advance as an epoch.switch trace root with
	// the ack-wait broken out. The Participant interface carries no context,
	// so each server's commit work traces as its own epoch.commit root
	// rather than as a child of this span.
	tr *trace.NodeTracer

	// journal is the EM-side epoch lifecycle mirror (switch decision, per-
	// participant ack arrivals, commit broadcast); created at Start when the
	// participant count is known. Always on — one fixed ring of small slots.
	journal *journal.EM
}

// Journal exposes the EM-side epoch journal (nil before Start); merged
// with server journals it names the ack straggler of each epoch switch.
func (m *Manager) Journal() *journal.EM {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}

// SetTracer attaches a tracer handle; call before Start. Nil disables.
func (m *Manager) SetTracer(tr *trace.NodeTracer) { m.tr = tr }

// SetBarrier installs a hook that Advance invokes inside the epoch switch,
// after every revoke ack and before the Committed+Grant broadcast. At that
// instant no epoch-e transaction is in flight anywhere (the revoke-ack
// quiescence of §III-B) and epoch e+1 has not been granted, which makes it
// the one safe window for atomic cluster-wide reconfiguration — the
// rebalancer executes ownership handoffs here. The hook runs on the switch
// goroutine and must not call Advance or block on epoch progress.
func (m *Manager) SetBarrier(fn func(e tstamp.Epoch)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.barrier = fn
}

// New returns a manager with the given configuration. A zero Duration
// defaults to DefaultDuration for Run; Advance ignores it.
func New(cfg Config) *Manager {
	if cfg.Duration <= 0 {
		cfg.Duration = DefaultDuration
	}
	if cfg.StartEpoch == 0 {
		cfg.StartEpoch = 1
	}
	if cfg.TargetSwitchFraction <= 0 {
		cfg.TargetSwitchFraction = 0.05
	}
	m := &Manager{
		cfg:        cfg,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		switchHist: metrics.NewHistogram(metrics.LatencyBounds()),
	}
	m.adaptive = cfg.MinDuration > 0 && cfg.MaxDuration >= cfg.MinDuration
	m.intervalNs.Store(int64(clampDuration(cfg.Duration, cfg.MinDuration, cfg.MaxDuration)))
	return m
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if lo > 0 && d < lo {
		return lo
	}
	if hi > 0 && d > hi {
		return hi
	}
	return d
}

// Register attaches a participant. All participants must be registered
// before Start.
func (m *Manager) Register(p Participant) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("epoch: register after Start")
	}
	m.participants = append(m.participants, p)
	return nil
}

// Current returns the epoch currently granted (0 before Start).
func (m *Manager) Current() tstamp.Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// Start commits the data-loading epoch 0 and grants epoch 1 to every
// participant.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("epoch: already started")
	}
	m.started = true
	first := m.cfg.StartEpoch
	m.current = first
	parts := m.participants
	// Participant index doubles as the server ID (the address-book
	// convention registers servers in ID order).
	m.journal = journal.NewEM(len(parts), 0)
	m.mu.Unlock()
	for _, p := range parts {
		p.Committed(first - 1)
		p.Grant(first)
	}
	return nil
}

// Advance performs one epoch switch: revoke the current epoch from every
// participant, wait for their acks, then broadcast Committed(current) and
// Grant(current+1). It returns the newly granted epoch.
func (m *Manager) Advance() (tstamp.Epoch, error) {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return 0, fmt.Errorf("epoch: Advance before Start")
	}
	if m.switching {
		m.mu.Unlock()
		return 0, fmt.Errorf("epoch: concurrent Advance")
	}
	if m.current >= tstamp.MaxEpoch-1 {
		m.mu.Unlock()
		return 0, fmt.Errorf("epoch: epoch space exhausted")
	}
	m.switching = true
	e := m.current
	parts := m.participants
	barrier := m.barrier
	jr := m.journal
	m.mu.Unlock()

	begin := time.Now()
	jr.Decide(uint64(e), begin)
	ctx, span := m.tr.StartRoot(context.Background(), "epoch.switch")
	span.SetAttr("epoch", strconv.FormatUint(uint64(e), 10))
	defer span.End()
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for i, p := range parts {
		i := i
		p.Revoke(e, func() {
			// The ack's arrival instant at the EM, journaled before the
			// WaitGroup releases the switch.
			jr.Ack(uint64(e), i, time.Now())
			wg.Done()
		})
	}
	_, ackSpan := m.tr.Start(ctx, "epoch.ackwait")
	if !m.waitAcks(&wg) {
		// Timed out waiting for a straggler's ack. The straggler
		// optimization (§III-C) means FEs already moved on to no-auth
		// mode; proceeding is safe because any transaction the straggler
		// still starts draws epoch e+1 timestamps.
		// Fall through.
		_ = parts
	}
	ackSpan.End()
	if barrier != nil {
		barrier(e)
	}
	next := e + 1
	jr.Commit(uint64(e), time.Now())
	for _, p := range parts {
		p.Committed(e)
		p.Grant(next)
	}
	elapsed := time.Since(begin)
	m.switchHist.ObserveDuration(elapsed)
	m.retune(elapsed)
	m.mu.Lock()
	m.current = next
	m.switching = false
	m.mu.Unlock()
	return next, nil
}

// retune adapts the Run loop's next epoch interval from switch feedback.
// Called on the (serialized) Advance path before the switching flag
// clears, so the unsynchronized EMA state is safe: the flag's mutex
// handoff orders successive calls.
func (m *Manager) retune(switchDur time.Duration) {
	if !m.adaptive {
		return
	}
	// EMA over switch durations (alpha 0.25): responsive to load shifts,
	// damped against one straggler's outlier ack.
	if m.emaSwitchNs == 0 {
		m.emaSwitchNs = float64(switchDur)
	} else {
		m.emaSwitchNs = 0.25*float64(switchDur) + 0.75*m.emaSwitchNs
	}
	target := time.Duration(m.emaSwitchNs / m.cfg.TargetSwitchFraction)
	if m.cfg.CommitCount != nil {
		commits := m.cfg.CommitCount()
		idle := commits == m.lastCommits
		m.lastCommits = commits
		if idle {
			// Nothing committed this epoch: no one is waiting on
			// visibility, so drift toward MaxDuration to halve the
			// switch churn of a quiet cluster.
			if doubled := 2 * time.Duration(m.intervalNs.Load()); doubled > target {
				target = doubled
			}
		}
	}
	m.intervalNs.Store(int64(clampDuration(target, m.cfg.MinDuration, m.cfg.MaxDuration)))
}

// Interval returns the Run loop's next epoch interval: the adaptive
// tuner's current value, or the fixed configured Duration.
func (m *Manager) Interval() time.Duration {
	return time.Duration(m.intervalNs.Load())
}

// waitAcks waits for all revoke acks, bounded by SwitchTimeout. Returns
// false on timeout.
func (m *Manager) waitAcks(wg *sync.WaitGroup) bool {
	if m.cfg.SwitchTimeout <= 0 {
		wg.Wait()
		return true
	}
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(m.cfg.SwitchTimeout):
		return false
	}
}

// Run drives epoch switches on the configured duration until Stop. It
// calls Start if the manager has not started yet.
func (m *Manager) Run() error {
	m.mu.Lock()
	started := m.started
	if m.running {
		m.mu.Unlock()
		return fmt.Errorf("epoch: Run called twice")
	}
	m.running = true
	m.mu.Unlock()
	if !started {
		if err := m.Start(); err != nil {
			return err
		}
	}
	go func() {
		defer close(m.done)
		// A resettable timer instead of a ticker: the adaptive tuner may
		// pick a different interval after every switch.
		timer := time.NewTimer(m.Interval())
		defer timer.Stop()
		for {
			select {
			case <-timer.C:
				if _, err := m.Advance(); err != nil {
					return
				}
				timer.Reset(m.Interval())
			case <-m.stop:
				return
			}
		}
	}()
	return nil
}

// Stop terminates the Run loop and waits for it to exit. Safe to call
// multiple times and even if Run was never called.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
	})
	m.mu.Lock()
	running := m.running
	m.mu.Unlock()
	if running {
		<-m.done
	}
}

// SwitchStats reports how many epoch switches have completed and their
// cumulative duration; used by the benchmark harness. The full
// distribution is available via MetricFamilies.
func (m *Manager) SwitchStats() (count int, total time.Duration) {
	s := m.switchHist.Snapshot()
	return int(s.Count), time.Duration(s.Sum)
}

// Metric family names exported by the manager.
const (
	// FamSwitch is the manager-side switch-duration histogram (revoke
	// broadcast through Committed+Grant).
	FamSwitch = "aloha_em_switch_seconds"
	// FamCurrentEpoch is the currently granted epoch number.
	FamCurrentEpoch = "aloha_epoch_current"
	// FamEpochInterval is the Run loop's next epoch interval in seconds —
	// constant when fixed, moving when the adaptive tuner is active.
	FamEpochInterval = "aloha_epoch_interval_seconds"
)

// MetricFamilies returns the manager's metric snapshot: the epoch-switch
// duration histogram and the current epoch gauge.
func (m *Manager) MetricFamilies() []metrics.Family {
	return []metrics.Family{
		{
			Name: FamSwitch,
			Help: "Epoch-switch duration at the manager (revoke through Committed+Grant broadcast).",
			Kind: metrics.KindHistogram, Unit: metrics.UnitSeconds,
			Series: []metrics.Series{metrics.HistSeries(m.switchHist.Snapshot())},
		},
		{
			Name:   FamCurrentEpoch,
			Help:   "Currently granted epoch.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(m.Current()))},
		},
		{
			Name: FamEpochInterval,
			Help: "Next epoch interval of the Run loop (adaptive when min/max are set).",
			Kind: metrics.KindGauge, Unit: metrics.UnitSeconds,
			Series: []metrics.Series{{Value: m.Interval().Seconds()}},
		},
	}
}

// Duration returns the configured epoch duration.
func (m *Manager) Duration() time.Duration { return m.cfg.Duration }
