package mvstore

import (
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

func TestExportKeyCapturesSealedAndStaged(t *testing.T) {
	s := New()
	v1 := tstamp.Make(1, 1, 0)
	v2 := tstamp.Make(2, 1, 0)
	if _, err := s.Put("k", v1, functor.Value([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	s.Seal("k", tstamp.End(1))
	rec, _ := s.Latest("k", tstamp.Max)
	rec.Resolve(functor.ValueResolution([]byte("a")))
	s.AdvanceWatermark("k", v1)
	if _, err := s.Put("k", v2, functor.Value([]byte("b"))); err != nil {
		t.Fatal(err)
	}

	recs, wm, ok := s.ExportKey("k")
	if !ok {
		t.Fatal("ExportKey reported missing key")
	}
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2 (sealed + staged)", len(recs))
	}
	if recs[0].Version != v1 || recs[1].Version != v2 {
		t.Fatalf("export order wrong: %v, %v", recs[0].Version, recs[1].Version)
	}
	if recs[0].Resolution == nil || string(recs[0].Resolution.Value) != "a" {
		t.Fatalf("sealed record's resolution not exported: %+v", recs[0].Resolution)
	}
	if recs[1].Resolution != nil {
		t.Fatalf("unresolved staged record exported with a resolution")
	}
	if wm != v1 {
		t.Fatalf("watermark = %v, want %v", wm, v1)
	}
}

func TestExportMatchingAndDrop(t *testing.T) {
	s := New()
	for _, k := range []kv.Key{"h:1", "h:2", "c:1"} {
		if _, err := s.Put(k, tstamp.Make(1, 1, 0), functor.Value(nil)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ExportMatching(func(k kv.Key) bool { return k >= "h:" && k < "h;" })
	if len(got) != 2 || got[0].Key != "h:1" || got[1].Key != "h:2" {
		t.Fatalf("ExportMatching = %+v, want h:1,h:2", got)
	}
	if !s.Drop("h:1") {
		t.Fatal("Drop of existing key reported false")
	}
	if s.Drop("h:1") {
		t.Fatal("Drop of missing key reported true")
	}
	if _, _, ok := s.ExportKey("h:1"); ok {
		t.Fatal("dropped key still exports")
	}
}
