package mvstore

import (
	"errors"
	"sync"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// ErrVersionExists is returned by Put when the key already has a record at
// the given version. Versions are transaction timestamps, which are
// globally unique, so a duplicate indicates a retransmitted install; the
// caller treats it as idempotent success or a protocol error as
// appropriate.
var ErrVersionExists = errors.New("mvstore: version already exists")

const _defaultShards = 64

// Store is one partition's multi-version table: a sharded hash map from
// keys to version chains.
type Store struct {
	shards []shard
}

type shard struct {
	mu     sync.RWMutex
	chains map[kv.Key]*Chain
}

// New returns an empty store with the default shard count.
func New() *Store { return NewWithShards(_defaultShards) }

// NewWithShards returns an empty store with n hash shards. Shards bound
// contention on chain creation; chain access itself is lock-free for reads.
func NewWithShards(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].chains = make(map[kv.Key]*Chain)
	}
	return s
}

func (s *Store) shardFor(k kv.Key) *shard {
	return &s.shards[kv.Hash(k)%uint64(len(s.shards))]
}

// chain returns the key's chain, or nil if the key has never been written.
func (s *Store) chain(k kv.Key) *Chain {
	sh := s.shardFor(k)
	sh.mu.RLock()
	c := sh.chains[k]
	sh.mu.RUnlock()
	return c
}

// chainOrCreate returns the key's chain, creating it if needed.
func (s *Store) chainOrCreate(k kv.Key) *Chain {
	sh := s.shardFor(k)
	sh.mu.RLock()
	c := sh.chains[k]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.chains[k]; c == nil {
		c = newChain()
		sh.chains[k] = c
	}
	return c
}

// Put installs a functor as a new in-epoch version of key k (paper
// Figure 4). The record stays invisible to reads until Seal moves it into
// the out-epoch category when its epoch commits.
func (s *Store) Put(k kv.Key, version tstamp.Timestamp, fn *functor.Functor) (*Record, error) {
	rec := newRecord(version, fn)
	got, inserted := s.chainOrCreate(k).insert(rec)
	if !inserted {
		return got, ErrVersionExists
	}
	return got, nil
}

// Seal makes k's staged records with versions strictly below bound
// readable. The backend seals every key an epoch touched when the epoch
// commits.
func (s *Store) Seal(k kv.Key, bound tstamp.Timestamp) {
	if c := s.chain(k); c != nil {
		c.seal(bound)
	}
}

// SealAll seals every key up to bound; recovery and replica promotion use
// it to publish a rebuilt store in one sweep.
func (s *Store) SealAll(bound tstamp.Timestamp) {
	s.Range(func(_ kv.Key, c *Chain) bool {
		c.seal(bound)
		return true
	})
}

// Latest returns the newest record of k with Version <= max.
func (s *Store) Latest(k kv.Key, max tstamp.Timestamp) (*Record, bool) {
	c := s.chain(k)
	if c == nil {
		return nil, false
	}
	r := c.latest(max)
	return r, r != nil
}

// At returns the record of k at exactly the given version, whether sealed
// or still staged in-epoch (the second-round abort addresses uncommitted
// records by version).
func (s *Store) At(k kv.Key, version tstamp.Timestamp) (*Record, bool) {
	c := s.chain(k)
	if c == nil {
		return nil, false
	}
	r := c.atLocked(version)
	return r, r != nil
}

// View returns the immutable ascending version snapshot of k, or nil.
func (s *Store) View(k kv.Key) []*Record {
	c := s.chain(k)
	if c == nil {
		return nil
	}
	return c.View()
}

// Between returns k's records with versions in [from, to], ascending.
func (s *Store) Between(k kv.Key, from, to tstamp.Timestamp) []*Record {
	c := s.chain(k)
	if c == nil {
		return nil
	}
	return c.between(from, to)
}

// Watermark returns k's value watermark (zero if the key is unknown).
func (s *Store) Watermark(k kv.Key) tstamp.Timestamp {
	c := s.chain(k)
	if c == nil {
		return tstamp.Zero
	}
	return c.Watermark()
}

// AdvanceWatermark raises k's value watermark to at least v.
func (s *Store) AdvanceWatermark(k kv.Key, v tstamp.Timestamp) {
	s.chainOrCreate(k).AdvanceWatermark(v)
}

// Range calls fn for every key in the store until fn returns false. The
// iteration order is unspecified. Chains observed through fn are live: new
// versions may be inserted concurrently, but each View() call returns a
// consistent snapshot.
func (s *Store) Range(fn func(k kv.Key, c *Chain) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		keys := make([]kv.Key, 0, len(sh.chains))
		for k := range sh.chains {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
		for _, k := range keys {
			if c := s.chain(k); c != nil {
				if !fn(k, c) {
					return
				}
			}
		}
	}
}

// RangeKeys calls fn for every key in the store until fn returns false,
// in unspecified order.
func (s *Store) RangeKeys(fn func(k kv.Key) bool) {
	s.Range(func(k kv.Key, _ *Chain) bool { return fn(k) })
}

// Len returns the number of keys in the store.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.chains)
		sh.mu.RUnlock()
	}
	return n
}

// Compact drops final version records strictly below bound for every key,
// always retaining the newest record below bound so historical reads at
// live snapshots still resolve. Returns the total number of records
// removed. Compaction never touches unresolved records (it is capped at
// each key's watermark).
func (s *Store) Compact(bound tstamp.Timestamp) int {
	total := 0
	s.Range(func(_ kv.Key, c *Chain) bool {
		total += c.compact(bound)
		return true
	})
	return total
}
