package mvstore

import (
	"sort"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// ExportedRecord is one version record flattened for transfer between
// partitions during a placement handoff: the functor plus whatever
// resolution had been installed at export time. It is wire-friendly (all
// fields exported, no atomics) so migration messages can carry it over any
// transport.
type ExportedRecord struct {
	Version    tstamp.Timestamp
	Functor    *functor.Functor
	Resolution *functor.Resolution
}

// KeyExport is one key's full version chain as captured by ExportMatching:
// sealed and staged records ascending by version, plus the value watermark.
type KeyExport struct {
	Key       kv.Key
	Records   []ExportedRecord
	Watermark tstamp.Timestamp
}

// export snapshots the chain — sealed view plus staged records — under the
// chain mutex, so no concurrently staged record is missed. Callers
// serialize against new inserts themselves (the migration barrier runs
// when no install is in flight).
func (c *Chain) export() ([]ExportedRecord, tstamp.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	view := *c.view.Load()
	out := make([]ExportedRecord, 0, len(view)+len(c.staged))
	for _, r := range view {
		out = append(out, ExportedRecord{Version: r.Version, Functor: r.Functor, Resolution: r.Resolution()})
	}
	for _, r := range c.staged {
		out = append(out, ExportedRecord{Version: r.Version, Functor: r.Functor, Resolution: r.Resolution()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, tstamp.Timestamp(c.watermark.Load())
}

// ExportKey snapshots one key's chain for migration. ok is false when the
// key has never been written here.
func (s *Store) ExportKey(k kv.Key) (recs []ExportedRecord, watermark tstamp.Timestamp, ok bool) {
	c := s.chain(k)
	if c == nil {
		return nil, 0, false
	}
	recs, watermark = c.export()
	return recs, watermark, true
}

// ExportMatching snapshots every key accepted by match, sorted by key. The
// rebalancer uses it to lift a sealed range out of the old owner's store.
func (s *Store) ExportMatching(match func(kv.Key) bool) []KeyExport {
	var keys []kv.Key
	s.RangeKeys(func(k kv.Key) bool {
		if match(k) {
			keys = append(keys, k)
		}
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]KeyExport, 0, len(keys))
	for _, k := range keys {
		if recs, wm, ok := s.ExportKey(k); ok {
			out = append(out, KeyExport{Key: k, Records: recs, Watermark: wm})
		}
	}
	return out
}

// Drop removes a key's entire chain, reporting whether it existed. The old
// owner retires migrated replicas with it once the handoff has settled;
// dropping a chain with unresolved records would lose functors, so callers
// check finality first.
func (s *Store) Drop(k kv.Key) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.chains[k]; !ok {
		return false
	}
	delete(sh.chains, k)
	return true
}
