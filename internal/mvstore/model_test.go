package mvstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

// TestConcurrentModelEquivalence runs random interleaved inserts, seals,
// and reads against the store while maintaining a reference model, then
// verifies every Latest/At/Between answer over the sealed state matches
// the model exactly.
func TestConcurrentModelEquivalence(t *testing.T) {
	const (
		rounds  = 30
		writers = 4
		perW    = 40
	)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < rounds; round++ {
		s := New()
		var (
			mu    sync.Mutex
			model = make(map[tstamp.Timestamp]int64) // version -> value
		)
		epochs := tstamp.Epoch(rng.Intn(3) + 1)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(server uint16, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < perW; i++ {
					v := tstamp.Make(tstamp.Epoch(r.Intn(int(epochs))+1), uint32(r.Intn(64)+1), server)
					val := r.Int63()
					if _, err := s.Put("k", v, functor.Value(kv.EncodeInt64(val))); err == nil {
						mu.Lock()
						model[v] = val
						mu.Unlock()
					}
				}
			}(uint16(w), int64(round*100+w))
		}
		// A concurrent sealer publishes progressively.
		stop := make(chan struct{})
		var sealer sync.WaitGroup
		sealer.Add(1)
		go func() {
			defer sealer.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.SealAll(tstamp.Max)
				}
			}
		}()
		wg.Wait()
		close(stop)
		sealer.Wait()
		s.SealAll(tstamp.Max)

		// Resolve everything so Latest answers carry values.
		versions := make([]tstamp.Timestamp, 0, len(model))
		for v := range model {
			versions = append(versions, v)
		}
		sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
		for _, v := range versions {
			rec, ok := s.At("k", v)
			if !ok {
				t.Fatalf("round %d: version %v missing", round, v)
			}
			rec.Resolve(functor.ValueResolution(kv.EncodeInt64(model[v])))
		}
		view := s.View("k")
		if len(view) != len(model) {
			t.Fatalf("round %d: view has %d records, model %d", round, len(view), len(model))
		}
		// Probe Latest at random points.
		for probe := 0; probe < 50; probe++ {
			max := tstamp.Make(tstamp.Epoch(rng.Intn(int(epochs)+1)), uint32(rng.Intn(70)), uint16(rng.Intn(writers+1)))
			i := sort.Search(len(versions), func(i int) bool { return versions[i] > max })
			rec, ok := s.Latest("k", max)
			if i == 0 {
				if ok {
					t.Fatalf("round %d: Latest(%v) = %v, want miss", round, max, rec.Version)
				}
				continue
			}
			want := versions[i-1]
			if !ok || rec.Version != want {
				t.Fatalf("round %d: Latest(%v) = %v ok=%v, want %v", round, max, rec, ok, want)
			}
			if got, _ := kv.DecodeInt64(rec.Resolution().Value); got != model[want] {
				t.Fatalf("round %d: value mismatch at %v", round, want)
			}
		}
		// Between over a random window matches the model slice.
		lo := versions[rng.Intn(len(versions))]
		hi := versions[rng.Intn(len(versions))]
		if lo > hi {
			lo, hi = hi, lo
		}
		got := s.Between("k", lo, hi)
		want := 0
		for _, v := range versions {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("round %d: Between(%v,%v) = %d records, want %d", round, lo, hi, len(got), want)
		}
	}
}
