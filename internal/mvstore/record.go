// Package mvstore implements ALOHA-DB's multi-version storage layout
// (paper §III-D). Each key owns an ordered list of version records; each
// record couples a version number with a functor and, once computed, an
// immutable resolution. A per-key value watermark marks the prefix of
// versions that are final: reads below the watermark need no
// synchronization at all.
//
// Concurrency design: version lists are published as immutable sorted
// slices through an atomic pointer, so readers are lock-free; inserts take
// a per-key mutex (inserts are nearly sorted — appends — because versions
// are assigned in epoch order). Resolutions are installed with a single
// compare-and-swap, enforcing the paper's "computed at most once" rule and
// providing the key-level concurrency control of functor-enabled ECC.
package mvstore

import (
	"sync/atomic"

	"alohadb/internal/functor"
	"alohadb/internal/tstamp"
)

// Record is one version of one key: the functor written by the transaction
// with this version, plus the resolution installed when the functor is
// computed. Functor and Version are immutable after insertion.
type Record struct {
	// Version is the transaction timestamp that wrote this record.
	Version tstamp.Timestamp
	// Functor is the placeholder written in the write-only phase.
	Functor *functor.Functor

	resolved atomic.Pointer[functor.Resolution]
}

func newRecord(version tstamp.Timestamp, fn *functor.Functor) *Record {
	return &Record{Version: version, Functor: fn}
}

// FinalResolution derives the resolution of a final f-type (VALUE, ABORTED,
// DELETED). Final functors skip the computing phase, but their resolution
// is still installed lazily rather than at insert: the coordinator's
// second-round abort (paper §V-A2) must be able to turn any record of a
// failed transaction into ABORTED before the epoch commits, and the
// resolve-once CAS would forbid that if inserts pre-resolved.
func FinalResolution(fn *functor.Functor) (*functor.Resolution, bool) {
	switch fn.Type {
	case functor.TypeValue:
		return functor.ValueResolution(fn.Arg), true
	case functor.TypeAborted:
		return functor.AbortResolution(""), true
	case functor.TypeDeleted:
		return functor.DeleteResolution(), true
	default:
		return nil, false
	}
}

// Resolution returns the installed resolution, or nil if the functor has
// not been computed yet. Safe for concurrent use.
func (r *Record) Resolution() *functor.Resolution {
	return r.resolved.Load()
}

// Resolve installs res as the record's final state. It returns true if this
// call installed the resolution and false if the record was already
// resolved (each functor is computed at most once; concurrent computations
// of the same functor produce identical results and the first CAS wins).
func (r *Record) Resolve(res *functor.Resolution) bool {
	return r.resolved.CompareAndSwap(nil, res)
}

// Final reports whether the record has reached its final state.
func (r *Record) Final() bool { return r.resolved.Load() != nil }
