package mvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/tstamp"
)

func ts(epoch tstamp.Epoch, seq uint32, server uint16) tstamp.Timestamp {
	return tstamp.Make(epoch, seq, server)
}

func TestPutAndLatest(t *testing.T) {
	s := New()
	versions := []tstamp.Timestamp{ts(1, 1, 0), ts(1, 5, 0), ts(2, 1, 0)}
	for i, v := range versions {
		fn := functor.Value(kv.Value(fmt.Sprintf("v%d", i)))
		rec, err := s.Put("k", v, fn)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := FinalResolution(fn)
		rec.Resolve(res)
	}
	s.SealAll(tstamp.Max)
	tests := []struct {
		name  string
		max   tstamp.Timestamp
		want  string
		found bool
	}{
		{name: "below all", max: ts(1, 0, 0), found: false},
		{name: "exact first", max: ts(1, 1, 0), want: "v0", found: true},
		{name: "between", max: ts(1, 3, 0), want: "v0", found: true},
		{name: "exact mid", max: ts(1, 5, 0), want: "v1", found: true},
		{name: "max", max: tstamp.Max, want: "v2", found: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, ok := s.Latest("k", tt.max)
			if ok != tt.found {
				t.Fatalf("found = %v, want %v", ok, tt.found)
			}
			if !ok {
				return
			}
			if got := string(r.Resolution().Value); got != tt.want {
				t.Errorf("value = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestPutDuplicateVersion(t *testing.T) {
	s := New()
	v := ts(1, 1, 0)
	first, err := s.Put("k", v, functor.Value(kv.Value("a")))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Put("k", v, functor.Value(kv.Value("b")))
	if err != ErrVersionExists {
		t.Fatalf("err = %v, want ErrVersionExists", err)
	}
	if second != first {
		t.Error("duplicate Put should return the existing record")
	}
}

func TestOutOfOrderInsert(t *testing.T) {
	s := New()
	order := []uint32{5, 2, 9, 1, 7, 3}
	for _, seq := range order {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Add(int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll(tstamp.Max)
	view := s.View("k")
	if len(view) != len(order) {
		t.Fatalf("len(view) = %d, want %d", len(view), len(order))
	}
	for i := 1; i < len(view); i++ {
		if view[i-1].Version >= view[i].Version {
			t.Fatalf("view not sorted at %d", i)
		}
	}
}

func TestAt(t *testing.T) {
	s := New()
	v := ts(3, 7, 1)
	if _, ok := s.At("k", v); ok {
		t.Error("At on empty store should miss")
	}
	if _, err := s.Put("k", v, functor.Value(nil)); err != nil {
		t.Fatal(err)
	}
	if r, ok := s.At("k", v); !ok || r.Version != v {
		t.Error("At missed an existing version")
	}
	if _, ok := s.At("k", v+1); ok {
		t.Error("At found a non-existent version")
	}
}

func TestBetween(t *testing.T) {
	s := New()
	for seq := uint32(1); seq <= 10; seq++ {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Add(1)); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll(tstamp.Max)
	got := s.Between("k", ts(1, 3, 0), ts(1, 7, 0))
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	if got[0].Version != ts(1, 3, 0) || got[4].Version != ts(1, 7, 0) {
		t.Error("wrong boundary records")
	}
	if s.Between("missing", tstamp.Zero, tstamp.Max) != nil {
		t.Error("Between on missing key should be nil")
	}
}

func TestFinalResolution(t *testing.T) {
	tests := []struct {
		fn   *functor.Functor
		kind functor.ResolutionKind
		ok   bool
	}{
		{fn: functor.Value(kv.Value("x")), kind: functor.Resolved, ok: true},
		{fn: functor.Aborted(), kind: functor.ResolvedAborted, ok: true},
		{fn: functor.Deleted(), kind: functor.ResolvedDeleted, ok: true},
		{fn: functor.Add(1), ok: false},
		{fn: functor.User("h", nil, nil), ok: false},
	}
	for _, tt := range tests {
		res, ok := FinalResolution(tt.fn)
		if ok != tt.ok {
			t.Errorf("%v: ok = %v, want %v", tt.fn.Type, ok, tt.ok)
			continue
		}
		if ok && res.Kind != tt.kind {
			t.Errorf("%v: kind = %v, want %v", tt.fn.Type, res.Kind, tt.kind)
		}
	}
}

func TestRecordsNotResolvedAtInsert(t *testing.T) {
	// Records must stay unresolved at insert so the coordinator's second
	// round can abort them (see FinalResolution).
	s := New()
	for i, fn := range []*functor.Functor{
		functor.Value(kv.Value("x")), functor.Aborted(), functor.Deleted(), functor.Add(1),
	} {
		r, err := s.Put("k", ts(1, uint32(i+1), 0), fn)
		if err != nil {
			t.Fatal(err)
		}
		if r.Final() {
			t.Errorf("%v record resolved at insert", fn.Type)
		}
		if !r.Resolve(functor.AbortResolution("second round")) {
			t.Errorf("%v record could not be aborted post-insert", fn.Type)
		}
	}
}

func TestResolveOnce(t *testing.T) {
	s := New()
	r, err := s.Put("k", ts(1, 1, 0), functor.Add(1))
	if err != nil {
		t.Fatal(err)
	}
	first := functor.ValueResolution(kv.EncodeInt64(1))
	if !r.Resolve(first) {
		t.Fatal("first Resolve should win")
	}
	if r.Resolve(functor.ValueResolution(kv.EncodeInt64(99))) {
		t.Fatal("second Resolve should lose")
	}
	if r.Resolution() != first {
		t.Error("resolution changed after losing CAS")
	}
}

func TestWatermark(t *testing.T) {
	s := New()
	if s.Watermark("k") != tstamp.Zero {
		t.Error("missing key watermark should be zero")
	}
	s.AdvanceWatermark("k", ts(1, 5, 0))
	if s.Watermark("k") != ts(1, 5, 0) {
		t.Error("watermark not advanced")
	}
	s.AdvanceWatermark("k", ts(1, 2, 0)) // lower: no-op
	if s.Watermark("k") != ts(1, 5, 0) {
		t.Error("watermark regressed")
	}
	s.AdvanceWatermark("k", ts(2, 1, 0))
	if s.Watermark("k") != ts(2, 1, 0) {
		t.Error("watermark not advanced further")
	}
}

func TestRangeAndLen(t *testing.T) {
	s := New()
	keys := map[kv.Key]bool{"a": false, "b": false, "c": false}
	seq := uint32(1)
	for k := range keys {
		if _, err := s.Put(k, ts(1, seq, 0), functor.Value(nil)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	s.Range(func(k kv.Key, c *Chain) bool {
		keys[k] = true
		return true
	})
	for k, seen := range keys {
		if !seen {
			t.Errorf("Range missed key %q", k)
		}
	}
	n := 0
	s.Range(func(kv.Key, *Chain) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range with early stop visited %d keys, want 1", n)
	}
}

func TestCompact(t *testing.T) {
	s := New()
	for seq := uint32(1); seq <= 10; seq++ {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Value(kv.EncodeInt64(int64(seq)))); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll(tstamp.Max)
	s.AdvanceWatermark("k", ts(1, 10, 0))
	removed := s.Compact(ts(1, 8, 0))
	if removed != 6 {
		t.Errorf("removed = %d, want 6", removed)
	}
	// Newest record below the bound must survive for old snapshot reads.
	r, ok := s.Latest("k", ts(1, 7, 0))
	if !ok || r.Version != ts(1, 7, 0) {
		t.Errorf("latest <= seq7 after compact = %v, ok=%v", r, ok)
	}
	if _, ok := s.Latest("k", ts(1, 6, 0)); ok {
		t.Error("compacted record still visible")
	}
}

// TestCompactSkipsInvisibleRecords is the regression guard for a
// history-erasing compaction bug: when the newest record below the bound
// was an aborted (computed-ABORT) version, compaction collapsed the whole
// visible history onto that invisible record and the key read as
// not-found at every snapshot. The retained record must be the newest
// VISIBLE one below the bound.
func TestCompactSkipsInvisibleRecords(t *testing.T) {
	s := New()
	for seq := uint32(1); seq <= 5; seq++ {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Value(kv.EncodeInt64(int64(seq)))); err != nil {
			t.Fatal(err)
		}
	}
	// seq 6 and 7: transactions whose functors computed to ABORTED (e.g. a
	// failed constraint); they sit in the chain but reads skip them.
	for seq := uint32(6); seq <= 7; seq++ {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Aborted()); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll(tstamp.Max)
	for _, r := range s.View("k") {
		if r.Version > ts(1, 5, 0) {
			r.Resolve(functor.AbortResolution("constraint failed"))
		}
	}
	s.AdvanceWatermark("k", ts(1, 7, 0))

	// Compact past the whole history: the newest records below the bound
	// are the two aborted ones; the survivor must be visible seq 5.
	s.Compact(ts(2, 0, 0))
	view := s.View("k")
	if len(view) == 0 {
		t.Fatal("key vanished: compaction collapsed history onto an aborted record")
	}
	if view[0].Version != ts(1, 5, 0) {
		t.Fatalf("oldest surviving version = %v, want seq 5 (newest visible)", view[0].Version)
	}

	// All-invisible prefix: a key whose every record below the bound is
	// aborted compacts to empty — reads found nothing there before either.
	if _, err := s.Put("dead", ts(1, 1, 0), functor.Aborted()); err != nil {
		t.Fatal(err)
	}
	s.SealAll(tstamp.Max)
	for _, r := range s.View("dead") {
		r.Resolve(functor.AbortResolution("constraint failed"))
	}
	s.AdvanceWatermark("dead", ts(1, 2, 0))
	s.Compact(ts(2, 0, 0))
	if n := len(s.View("dead")); n != 0 {
		t.Errorf("all-aborted chain kept %d records after compaction", n)
	}
}

func TestCompactRespectsWatermark(t *testing.T) {
	s := New()
	for seq := uint32(1); seq <= 5; seq++ {
		if _, err := s.Put("k", ts(1, seq, 0), functor.Add(1)); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll(tstamp.Max)
	s.AdvanceWatermark("k", ts(1, 3, 0))
	// Bound above the watermark: compaction must clamp to the watermark so
	// unresolved records survive.
	s.Compact(tstamp.Max)
	view := s.View("k")
	// seq2 (newest final below the watermark), seq3..5 (at/above it) survive.
	if len(view) != 4 {
		t.Fatalf("len(view) = %d, want 4", len(view))
	}
	if view[0].Version != ts(1, 2, 0) {
		t.Errorf("oldest surviving version = %v, want %v", view[0].Version, ts(1, 2, 0))
	}
}

// TestChainAgainstModel cross-checks chain behaviour against a simple
// reference model under random operations.
func TestChainAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	model := make(map[tstamp.Timestamp]int64)
	for i := 0; i < 2000; i++ {
		v := ts(tstamp.Epoch(rng.Intn(4)+1), uint32(rng.Intn(200)), uint16(rng.Intn(4)))
		val := rng.Int63()
		if _, err := s.Put("k", v, functor.Value(kv.EncodeInt64(val))); err == ErrVersionExists {
			continue
		} else if err != nil {
			t.Fatal(err)
		}
		model[v] = val
	}
	s.SealAll(tstamp.Max)
	sorted := make([]tstamp.Timestamp, 0, len(model))
	for v := range model {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	view := s.View("k")
	if len(view) != len(model) {
		t.Fatalf("chain has %d records, model %d", len(view), len(model))
	}
	for i, r := range view {
		if r.Version != sorted[i] {
			t.Fatalf("chain[%d] = %v, want %v", i, r.Version, sorted[i])
		}
	}
	for trial := 0; trial < 500; trial++ {
		max := ts(tstamp.Epoch(rng.Intn(5)), uint32(rng.Intn(220)), uint16(rng.Intn(5)))
		r, ok := s.Latest("k", max)
		// Reference: greatest model version <= max.
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > max })
		if i == 0 {
			if ok {
				t.Fatalf("Latest(%v) = %v, want miss", max, r.Version)
			}
			continue
		}
		want := sorted[i-1]
		if !ok || r.Version != want {
			t.Fatalf("Latest(%v) = %v ok=%v, want %v", max, r, ok, want)
		}
	}
}

func TestLatestProperty(t *testing.T) {
	f := func(seqs []uint32, probe uint32) bool {
		s := New()
		inserted := map[uint32]bool{}
		for _, q := range seqs {
			q &= tstamp.MaxSeq
			if _, err := s.Put("k", ts(1, q, 0), functor.Add(1)); err == nil {
				inserted[q] = true
			}
		}
		s.SealAll(tstamp.Max)
		probe &= tstamp.MaxSeq
		r, ok := s.Latest("k", ts(1, probe, 0))
		var want uint32
		var found bool
		for q := range inserted {
			if q <= probe && (!found || q > want) {
				want, found = q, true
			}
		}
		if found != ok {
			return false
		}
		return !found || r.Version == ts(1, want, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	// Writers stage in-epoch inserts while a sealer publishes them and
	// readers verify every published view is sorted — the full Figure-4
	// in-epoch/out-epoch lifecycle under concurrency.
	s := New()
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(server uint16) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if _, err := s.Put("hot", ts(1, uint32(i), server), functor.Add(1)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(uint16(w))
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // sealer
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SealAll(tstamp.Max)
			}
		}
	}()
	for r := 0; r < 4; r++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := s.View("hot")
				for i := 1; i < len(view); i++ {
					if view[i-1].Version >= view[i].Version {
						t.Error("reader observed unsorted view")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	s.SealAll(tstamp.Max)
	if got := len(s.View("hot")); got != writers*perWriter {
		t.Errorf("final chain length = %d, want %d", got, writers*perWriter)
	}
}

func TestStagingInvisibleUntilSeal(t *testing.T) {
	s := New()
	if _, err := s.Put("k", ts(1, 1, 0), functor.Value(kv.Value("v"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Latest("k", tstamp.Max); ok {
		t.Error("staged record visible before seal")
	}
	if _, ok := s.At("k", ts(1, 1, 0)); !ok {
		t.Error("At must find staged records (second-round abort path)")
	}
	s.Seal("k", tstamp.End(1))
	if _, ok := s.Latest("k", tstamp.Max); !ok {
		t.Error("sealed record invisible")
	}
}

func TestSealRespectsBound(t *testing.T) {
	s := New()
	if _, err := s.Put("k", ts(1, 1, 0), functor.Add(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", ts(2, 1, 0), functor.Add(1)); err != nil { // straggler: next epoch
		t.Fatal(err)
	}
	s.Seal("k", tstamp.End(1))
	if got := len(s.View("k")); got != 1 {
		t.Fatalf("sealed %d records, want 1 (epoch-2 record must stay staged)", got)
	}
	s.Seal("k", tstamp.End(2))
	if got := len(s.View("k")); got != 2 {
		t.Fatalf("sealed %d records, want 2", got)
	}
}

func TestSealMergesStragglersSealedLate(t *testing.T) {
	// An epoch-2 record sealed after epoch 3's records forces the general
	// merge path; ordering must survive.
	s := New()
	if _, err := s.Put("k", ts(3, 1, 0), functor.Add(1)); err != nil {
		t.Fatal(err)
	}
	s.Seal("k", tstamp.End(3))
	if _, err := s.Put("k", ts(2, 1, 0), functor.Add(1)); err != nil {
		t.Fatal(err)
	}
	s.Seal("k", tstamp.End(3))
	view := s.View("k")
	if len(view) != 2 || view[0].Version != ts(2, 1, 0) || view[1].Version != ts(3, 1, 0) {
		t.Fatalf("merge broke ordering: %v", versionsOf(view))
	}
}

func versionsOf(recs []*Record) []tstamp.Timestamp {
	out := make([]tstamp.Timestamp, len(recs))
	for i, r := range recs {
		out[i] = r.Version
	}
	return out
}

func TestDuplicateAcrossStagedAndSealed(t *testing.T) {
	s := New()
	v := ts(1, 1, 0)
	first, err := s.Put("k", v, functor.Value(kv.Value("a")))
	if err != nil {
		t.Fatal(err)
	}
	s.Seal("k", tstamp.End(1))
	second, err := s.Put("k", v, functor.Value(kv.Value("b")))
	if err != ErrVersionExists || second != first {
		t.Errorf("sealed duplicate: err=%v same=%v", err, second == first)
	}
}

func TestConcurrentResolveExactlyOnce(t *testing.T) {
	s := New()
	r, err := s.Put("k", ts(1, 1, 0), functor.Add(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	wins := make(chan bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- r.Resolve(functor.ValueResolution(kv.EncodeInt64(1)))
		}()
	}
	wg.Wait()
	close(wins)
	count := 0
	for w := range wins {
		if w {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d goroutines won the resolve CAS, want exactly 1", count)
	}
}
