package mvstore

import (
	"sort"
	"sync"
	"sync/atomic"

	"alohadb/internal/functor"
	"alohadb/internal/tstamp"
)

// Chain holds the version records of a single key, split exactly as the
// paper's Figure 4 describes into two categories:
//
//   - out-epoch: an immutable, sorted array of records from committed
//     epochs, readable without locks through an atomically published
//     slice;
//   - in-epoch: a staging table of records from epochs still being
//     written, invisible to readers, accepting inserts in O(1) regardless
//     of arrival order (decentralized timestamps interleave across
//     servers, so arrivals are only nearly sorted).
//
// Seal moves staged records below an epoch boundary into the sorted array
// — one sort + append per key per epoch, amortizing what per-record sorted
// insertion would make quadratic on hot keys.
type Chain struct {
	mu   sync.Mutex // guards staged and structural view changes
	view atomic.Pointer[[]*Record]
	// staged holds in-epoch records, unsorted; nil when empty. A small
	// slice beats a map here: the set lives for one epoch, holds a handful
	// of records for all but the hottest keys, and a map's buckets cost
	// far more live heap per key than a compact pointer array. Duplicate
	// checks scan linearly — duplicates only arise from retransmitted
	// installs, and the scan is a pointer-array sweep.
	staged []*Record
	// watermark is the value watermark: every version at or below it is a
	// final value (paper §III-D). Monotonically non-decreasing.
	watermark atomic.Uint64
}

// emptyView is the shared zero-length view every fresh chain publishes.
// Seal never appends in place to a zero-capacity backing array, so the
// shared slice is immutable and one allocation serves every key.
var emptyView = make([]*Record, 0)

func newChain() *Chain {
	c := &Chain{}
	c.view.Store(&emptyView)
	return c
}

// View returns the current immutable snapshot of the sealed (out-epoch)
// version list, sorted ascending by version. Callers must not mutate it.
func (c *Chain) View() []*Record { return *c.view.Load() }

// Watermark returns the key's value watermark.
func (c *Chain) Watermark() tstamp.Timestamp {
	return tstamp.Timestamp(c.watermark.Load())
}

// AdvanceWatermark raises the watermark to at least v (Algorithm 1,
// lines 7-9). Raising past versions that are not final is a caller error
// that the engine prevents by computing in ascending version order.
func (c *Chain) AdvanceWatermark(v tstamp.Timestamp) {
	for {
		w := c.watermark.Load()
		if w >= uint64(v) {
			return
		}
		if c.watermark.CompareAndSwap(w, uint64(v)) {
			return
		}
	}
}

// insert stages a record as an in-epoch version. Inserting a duplicate
// version returns the existing record and false.
func (c *Chain) insert(r *Record) (*Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec := c.at(r.Version); rec != nil {
		return rec, false
	}
	c.staged = append(c.staged, r)
	return r, true
}

// seal moves staged records with versions strictly below bound into the
// immutable sorted view, making them readable. Committed epochs only grow
// the high end of the version space, so the merge is a sorted append.
func (c *Chain) seal(bound tstamp.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.staged) == 0 {
		return
	}
	// Partition in place: records below the bound form the batch, the
	// rest (stragglers from still-open epochs) stay staged.
	var batch []*Record
	keep := 0
	for _, r := range c.staged {
		if r.Version < bound {
			batch = append(batch, r)
		} else {
			c.staged[keep] = r
			keep++
		}
	}
	if keep == 0 {
		// Release the staging array: a store holds one chain per key it
		// has ever seen, and retained empty staging per cold key is pure
		// live-heap (and GC mark) overhead.
		c.staged = nil
	} else {
		clear(c.staged[keep:])
		c.staged = c.staged[:keep]
	}
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Version < batch[j].Version })
	old := *c.view.Load()
	n := len(old)
	if n == 0 || old[n-1].Version < batch[0].Version {
		// Sorted append, in place when capacity allows: published slice
		// headers only grow in length, so readers holding older headers
		// never observe the freshly filled slots, and the atomic header
		// store orders the writes for readers that do.
		var neu []*Record
		if cap(old)-n >= len(batch) {
			neu = old[:n+len(batch)]
		} else {
			// First seal sizes exactly: most keys are written once and
			// never again, and slack capacity on millions of cold chains
			// is pure live-heap overhead. Hot keys hit the doubling branch
			// from their second seal on.
			grow := n + len(batch)
			if n > 0 {
				grow *= 2
			}
			neu = make([]*Record, n+len(batch), grow)
			copy(neu, old)
		}
		copy(neu[n:], batch)
		c.view.Store(&neu)
		return
	}
	// General merge (stragglers sealed late can interleave with an epoch
	// sealed earlier): build a fresh array.
	neu := make([]*Record, 0, n+len(batch))
	i, j := 0, 0
	for i < n && j < len(batch) {
		if old[i].Version < batch[j].Version {
			neu = append(neu, old[i])
			i++
		} else {
			neu = append(neu, batch[j])
			j++
		}
	}
	neu = append(neu, old[i:]...)
	neu = append(neu, batch[j:]...)
	c.view.Store(&neu)
}

// latest returns the newest sealed record with Version <= max, or nil.
// Staged (in-epoch) records are invisible by design: reads only ever run
// at snapshots whose epochs have committed and sealed.
func (c *Chain) latest(max tstamp.Timestamp) *Record {
	view := *c.view.Load()
	i := sort.Search(len(view), func(i int) bool { return view[i].Version > max })
	if i == 0 {
		return nil
	}
	return view[i-1]
}

// at returns the record with exactly the given version, sealed or staged.
// The second-round abort and deferred-write paths address records by
// version before their epoch commits.
func (c *Chain) atLocked(v tstamp.Timestamp) *Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at(v)
}

// at is atLocked without the staging lock; callers hold c.mu or accept
// missing staged records.
func (c *Chain) at(v tstamp.Timestamp) *Record {
	view := *c.view.Load()
	i := sort.Search(len(view), func(i int) bool { return view[i].Version >= v })
	if i < len(view) && view[i].Version == v {
		return view[i]
	}
	for _, r := range c.staged {
		if r.Version == v {
			return r
		}
	}
	return nil
}

// between returns the sealed records with versions in [from, to],
// ascending. Used by the processor to compute all pending functors of a
// key up to a queued version (Algorithm 1, line 4).
func (c *Chain) between(from, to tstamp.Timestamp) []*Record {
	view := *c.view.Load()
	lo := sort.Search(len(view), func(i int) bool { return view[i].Version >= from })
	hi := sort.Search(len(view), func(i int) bool { return view[i].Version > to })
	if lo >= hi {
		return nil
	}
	return view[lo:hi]
}

// compact drops sealed records whose versions are strictly below bound,
// keeping the newest *visible* such record so reads at old-but-live
// snapshots still resolve. Aborted and skipped records are invisible to
// reads — collapsing the history onto one of them would erase the key's
// latest surviving value, turning a fully committed key into not-found —
// so the retained record is the newest below bound whose resolution a
// read would return (any aborted records above it inside the bound are
// retained with it). When everything below bound is invisible the whole
// prefix is dropped: reads there found nothing before and still find
// nothing. Only final records below the watermark may be dropped. Returns
// the number of records removed.
func (c *Chain) compact(bound tstamp.Timestamp) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := tstamp.Timestamp(c.watermark.Load()); bound > w {
		bound = w
	}
	old := *c.view.Load()
	i := sort.Search(len(old), func(i int) bool { return old[i].Version >= bound })
	if i < 1 {
		return 0
	}
	keepFrom := i // if no record below bound is visible, drop them all
	for j := i - 1; j >= 0; j-- {
		res := old[j].Resolution()
		// A nil resolution below the watermark is a lazily-resolved final
		// functor (VALUE/DELETED placeholders resolve on first read);
		// treat it as visible.
		if res == nil || res.Kind == functor.Resolved || res.Kind == functor.ResolvedDeleted {
			keepFrom = j
			break
		}
	}
	if keepFrom == 0 {
		return 0
	}
	neu := make([]*Record, len(old)-keepFrom)
	copy(neu, old[keepFrom:])
	c.view.Store(&neu)
	return keepFrom
}
