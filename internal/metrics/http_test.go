package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func opsGather() []Family {
	var c Counter
	c.Add(7)
	return []Family{{
		Name:   "aloha_test_total",
		Help:   "test counter",
		Kind:   KindCounter,
		Series: []Series{CounterSeries(c.Value())},
	}}
}

func TestOpsHandlerRoutes(t *testing.T) {
	traced := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Echo the path the mount hands us so the test can assert the
		// prefix stripping.
		_, _ = w.Write([]byte("traces:" + r.URL.Path))
	})
	h := OpsHandler(opsGather, WithTraces(traced))

	get := func(t *testing.T, path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	t.Run("metrics", func(t *testing.T) {
		rec := get(t, "/metrics")
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("Content-Type = %q", ct)
		}
		if !strings.Contains(rec.Body.String(), "aloha_test_total 7") {
			t.Errorf("exposition missing counter:\n%s", rec.Body.String())
		}
	})

	t.Run("healthz", func(t *testing.T) {
		rec := get(t, "/healthz")
		if rec.Code != 200 || rec.Body.String() != "ok\n" {
			t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
		}
	})

	t.Run("pprof", func(t *testing.T) {
		rec := get(t, "/debug/pprof/")
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "goroutine") {
			t.Error("pprof index missing profile listing")
		}
	})

	t.Run("traces", func(t *testing.T) {
		for path, want := range map[string]string{
			"/debug/traces":        "traces:/",
			"/debug/traces/":       "traces:/",
			"/debug/traces/chrome": "traces:/chrome",
		} {
			rec := get(t, path)
			if rec.Code != 200 || rec.Body.String() != want {
				t.Errorf("GET %s = %d %q, want 200 %q", path, rec.Code, rec.Body.String(), want)
			}
		}
	})

	t.Run("no-traces-option", func(t *testing.T) {
		bare := OpsHandler(opsGather)
		rec := httptest.NewRecorder()
		bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
		if rec.Code != 404 {
			t.Errorf("unmounted /debug/traces = %d, want 404", rec.Code)
		}
	})
}

// TestOpsHandlerReadiness covers /healthz as a real readiness probe:
// failing checks flip it to 503 with one "name: reason" line per failure,
// while /livez stays 200 regardless.
func TestOpsHandlerReadiness(t *testing.T) {
	stalled := false
	h := OpsHandler(opsGather,
		WithHealth("watchdog", func() (bool, string) {
			if stalled {
				return false, "epoch stall: no progress for 2s"
			}
			return true, ""
		}),
		WithHealth("wal", func() (bool, string) { return true, "" }),
	)
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("healthy healthz = %d %q", rec.Code, rec.Body.String())
	}
	stalled = true
	rec := get("/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("stalled healthz = %d, want 503", rec.Code)
	}
	if want := "watchdog: epoch stall: no progress for 2s\n"; rec.Body.String() != want {
		t.Errorf("stalled healthz body = %q, want %q", rec.Body.String(), want)
	}
	if rec := get("/livez"); rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("livez = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
}

func TestOpsHandlerDebugMounts(t *testing.T) {
	h := OpsHandler(opsGather,
		WithDebug("stall", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("stall-status"))
		})),
		WithDebug("hotkeys", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("hotkeys-snapshot"))
		})),
		WithDebug("epochs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("epochs-journal"))
		})),
	)
	for path, want := range map[string]string{
		"/debug/stall":   "stall-status",
		"/debug/hotkeys": "hotkeys-snapshot",
		"/debug/epochs":  "epochs-journal",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || rec.Body.String() != want {
			t.Errorf("GET %s = %d %q, want 200 %q", path, rec.Code, rec.Body.String(), want)
		}
	}
}

// TestOpsHandlerWriteFailure covers the /healthz write-error path: a
// client that vanished mid-response must not crash the handler, only log.
func TestOpsHandlerWriteFailure(t *testing.T) {
	var logged []string
	h := OpsHandler(opsGather, WithLogf(func(format string, args ...any) {
		logged = append(logged, format)
	}))
	rec := &failingWriter{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if len(logged) != 1 {
		t.Errorf("write failure logged %d times, want 1", len(logged))
	}
}

type failingWriter struct {
	*httptest.ResponseRecorder
}

func (f *failingWriter) Write([]byte) (int, error) {
	return 0, http.ErrHandlerTimeout
}
