package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteText renders families in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, one line per sample,
// histograms expanded into cumulative _bucket series plus _sum and
// _count. Families with UnitSeconds have their nanosecond observations
// scaled to seconds, following the *_seconds naming convention.
func WriteText(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, s := range f.Series {
			if f.Kind == KindHistogram && s.Hist != nil {
				writeHistogram(bw, f.Name, s, f.Unit)
				continue
			}
			writeSample(bw, f.Name, s.Labels, "", "", f.Unit.apply(s.Value))
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, s Series, unit Unit) {
	var cum uint64
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Hist.Bounds) {
			le = formatFloat(unit.apply(float64(s.Hist.Bounds[i])))
		}
		writeSample(bw, name+"_bucket", s.Labels, "le", le, float64(cum))
	}
	writeSample(bw, name+"_sum", s.Labels, "", "", unit.apply(float64(s.Hist.Sum)))
	writeSample(bw, name+"_count", s.Labels, "", "", float64(s.Hist.Count))
}

// writeSample emits one line: name{labels,extraKey="extraVal"} value.
func writeSample(bw *bufio.Writer, name string, labels []Label, extraKey, extraVal string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraKey)
			bw.WriteString(`="`)
			bw.WriteString(extraVal)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders values the way Prometheus clients do: integers
// without an exponent or trailing zeros, everything else in shortest
// form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }
