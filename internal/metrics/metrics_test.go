package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	// 1000 observations uniform in [0, 1ms): p50 ≈ 0.5ms, p99 ≈ 0.99ms.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * int64(time.Millisecond) / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	p50 := s.QuantileDuration(0.50)
	if p50 < 300*time.Microsecond || p50 > 700*time.Microsecond {
		t.Errorf("p50 = %s, want ~0.5ms", p50)
	}
	p99 := s.QuantileDuration(0.99)
	if p99 < 700*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Errorf("p99 = %s, want ~1ms", p99)
	}
	if got := s.Mean(); got <= 0 || got > int64(time.Millisecond) {
		t.Errorf("mean = %d out of range", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
	// Overflow bucket: observations above the last bound report the last
	// finite bound.
	h.Observe(1_000_000)
	if q := h.Snapshot().Quantile(0.99); q != 100 {
		t.Errorf("overflow quantile = %d, want 100", q)
	}
	// Quantile clamping.
	if q := h.Snapshot().Quantile(5); q != 100 {
		t.Errorf("clamped quantile = %d, want 100", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 555 {
		t.Errorf("merged count=%d sum=%d, want 3/555", sa.Count, sa.Sum)
	}
	// Mismatched bounds are ignored, not corrupted.
	c := NewHistogram([]int64{1}).Snapshot()
	before := sa.Count
	sa.Merge(c)
	if sa.Count != before {
		t.Errorf("mismatched merge changed count: %d -> %d", before, sa.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

// TestRecordAllocs guards the acceptance criterion: hot-path record calls
// allocate nothing.
func TestRecordAllocs(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per call, want 0", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per call, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per call, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(LatencyBounds())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestMergeFamilies(t *testing.T) {
	a := []Family{
		{Name: "b_total", Kind: KindCounter, Series: []Series{CounterSeries(1, Label{"server", "0"})}},
		{Name: "a_total", Kind: KindCounter, Series: []Series{CounterSeries(2, Label{"server", "0"})}},
	}
	b := []Family{
		{Name: "b_total", Kind: KindCounter, Series: []Series{CounterSeries(3, Label{"server", "1"})}},
	}
	out := Merge(a, b)
	if len(out) != 2 || out[0].Name != "a_total" || out[1].Name != "b_total" {
		t.Fatalf("merge order wrong: %+v", out)
	}
	if len(out[1].Series) != 2 || out[1].Total() != 4 {
		t.Errorf("b_total series=%d total=%v, want 2/4", len(out[1].Series), out[1].Total())
	}
}

func TestWithLabelAndTotals(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Observe(5)
	fams := WithLabel([]Family{
		{Name: "x_seconds", Kind: KindHistogram, Unit: UnitSeconds, Series: []Series{HistSeries(h.Snapshot())}},
	}, "server", "3")
	if got := fams[0].Series[0].Labels; len(got) != 1 || got[0].Value != "3" {
		t.Fatalf("labels = %+v", got)
	}
	th := fams[0].TotalHist()
	if th.Count != 1 {
		t.Errorf("TotalHist count = %d, want 1", th.Count)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	if fmt.Sprint(b) != fmt.Sprint(want) {
		t.Errorf("bounds = %v, want %v", b, want)
	}
}
