package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenFamilies is a fixed snapshot exercising every rendering path:
// counters with and without labels, a gauge, a seconds-scaled histogram,
// and label escaping.
func goldenFamilies() []Family {
	h := NewHistogram([]int64{1000, 1000000, 1000000000}) // 1µs, 1ms, 1s in ns
	h.Observe(500)                                        // first bucket
	h.Observe(500_000)                                    // second bucket
	h.Observe(2_000_000_000)                              // +Inf bucket
	return []Family{
		{
			Name: "aloha_stage_install_seconds",
			Help: "Time from transaction issue to all functors installed.",
			Kind: KindHistogram,
			Unit: UnitSeconds,
			Series: []Series{
				HistSeries(h.Snapshot(), Label{"server", "0"}),
			},
		},
		{
			Name: "aloha_txns_committed_total",
			Help: "Committed transactions.",
			Kind: KindCounter,
			Series: []Series{
				CounterSeries(42, Label{"server", "0"}),
				CounterSeries(7, Label{"server", "1"}),
			},
		},
		{
			Name:   "aloha_epoch_current",
			Help:   "Currently granted epoch.",
			Kind:   KindGauge,
			Series: []Series{GaugeSeries(9)},
		},
		{
			Name:   "odd_label",
			Kind:   KindCounter,
			Series: []Series{CounterSeries(1, Label{"path", `C:\x "q"` + "\n"})},
		},
	}
}

const goldenText = `# HELP aloha_stage_install_seconds Time from transaction issue to all functors installed.
# TYPE aloha_stage_install_seconds histogram
aloha_stage_install_seconds_bucket{server="0",le="1e-06"} 1
aloha_stage_install_seconds_bucket{server="0",le="0.001"} 2
aloha_stage_install_seconds_bucket{server="0",le="1"} 2
aloha_stage_install_seconds_bucket{server="0",le="+Inf"} 3
aloha_stage_install_seconds_sum{server="0"} 2.0005005
aloha_stage_install_seconds_count{server="0"} 3
# HELP aloha_txns_committed_total Committed transactions.
# TYPE aloha_txns_committed_total counter
aloha_txns_committed_total{server="0"} 42
aloha_txns_committed_total{server="1"} 7
# HELP aloha_epoch_current Currently granted epoch.
# TYPE aloha_epoch_current gauge
aloha_epoch_current 9
# TYPE odd_label counter
odd_label{path="C:\\x \"q\"\n"} 1
`

// TestWriteTextGolden is the golden test for the /metrics Prometheus
// rendering: any format drift fails loudly with a full diff.
func TestWriteTextGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, goldenFamilies()); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenText {
		t.Errorf("rendered text drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenText)
	}
}

func TestOpsHandler(t *testing.T) {
	srv := httptest.NewServer(OpsHandler(func() []Family { return goldenFamilies() }))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if body != goldenText {
		t.Errorf("/metrics body drifted from golden:\n%s", body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (%d bytes)", code, len(body))
	}
}
