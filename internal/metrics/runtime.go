package metrics

import (
	"math"
	rm "runtime/metrics"
)

// Go runtime metric family names. RuntimeFamilies exports them so stall
// snapshots and aloha-top can correlate engine stalls with GC pauses,
// scheduler latency, and goroutine growth.
const (
	FamRuntimeHeapBytes    = "aloha_runtime_heap_bytes"
	FamRuntimeGoroutines   = "aloha_runtime_goroutines"
	FamRuntimeGCCycles     = "aloha_runtime_gc_cycles_total"
	FamRuntimeGCPause      = "aloha_runtime_gc_pause_seconds"
	FamRuntimeSchedLatency = "aloha_runtime_sched_latency_seconds"
)

// runtimeSamples is the fixed sample set read per gather; building it once
// keeps RuntimeFamilies to one runtime/metrics read.
var runtimeSamples = []rm.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/gc/pauses:seconds"},
	{Name: "/sched/latencies:seconds"},
}

// RuntimeFamilies snapshots the Go runtime's own telemetry as
// aloha_runtime_* families: heap in use, goroutine count, GC cycles, and
// the GC pause / scheduler latency distributions. Metrics the current
// runtime does not export are skipped, so the set degrades gracefully
// across Go versions.
func RuntimeFamilies() []Family {
	samples := make([]rm.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	rm.Read(samples)

	var fams []Family
	scalar := func(s rm.Sample, name, help string, kind Kind) {
		var v float64
		switch s.Value.Kind() {
		case rm.KindUint64:
			v = float64(s.Value.Uint64())
		case rm.KindFloat64:
			v = s.Value.Float64()
		default:
			return // KindBad: not exported by this runtime
		}
		ser := Series{Value: v}
		fams = append(fams, Family{Name: name, Help: help, Kind: kind, Series: []Series{ser}})
	}
	hist := func(s rm.Sample, name, help string) {
		if s.Value.Kind() != rm.KindFloat64Histogram {
			return
		}
		snap, ok := convertFloat64Histogram(s.Value.Float64Histogram())
		if !ok {
			return
		}
		fams = append(fams, Family{
			Name: name, Help: help, Kind: KindHistogram, Unit: UnitSeconds,
			Series: []Series{HistSeries(snap)},
		})
	}

	scalar(samples[0], FamRuntimeHeapBytes, "Bytes of heap memory occupied by live objects and dead objects not yet freed.", KindGauge)
	scalar(samples[1], FamRuntimeGoroutines, "Live goroutines.", KindGauge)
	scalar(samples[2], FamRuntimeGCCycles, "Completed GC cycles.", KindCounter)
	hist(samples[3], FamRuntimeGCPause, "Stop-the-world GC pause latency.")
	hist(samples[4], FamRuntimeSchedLatency, "Time goroutines spend runnable before running.")
	return fams
}

// convertFloat64Histogram maps a runtime/metrics seconds histogram onto the
// internal nanosecond-bounds snapshot (rendered back to seconds by
// UnitSeconds). Runtime histograms are sparse with hundreds of buckets;
// adjacent buckets are coalesced onto an exponential grid so the exported
// family stays a few dozen lines.
func convertFloat64Histogram(h *rm.Float64Histogram) (HistogramSnapshot, bool) {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return HistogramSnapshot{}, false
	}
	bounds := LatencyBounds()
	counts := make([]uint64, len(bounds)+1)
	var total uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		// Attribute the bucket to its upper bound (conservative for
		// latency quantiles); infinite edges fall back on the finite side.
		upper := h.Buckets[i+1]
		if math.IsInf(upper, 1) {
			upper = h.Buckets[i]
		}
		if math.IsInf(upper, -1) || math.IsNaN(upper) || upper < 0 {
			continue
		}
		ns := upper * 1e9
		idx := len(bounds)
		for b, bound := range bounds {
			if ns <= float64(bound) {
				idx = b
				break
			}
		}
		counts[idx] += c
		total += c
		sum += float64(c) * ns
	}
	if total == 0 {
		return HistogramSnapshot{}, false
	}
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Count: total, Sum: int64(sum)}, true
}
