package metrics

import (
	"log"
	"net/http"
	"net/http/pprof"
)

// OpsOption customizes the operator HTTP surface built by OpsHandler.
type OpsOption func(*opsConfig)

type opsConfig struct {
	traces http.Handler
	logf   func(format string, args ...any)
}

// WithTraces mounts a trace viewer (see alohadb/internal/trace.Handler)
// under /debug/traces. The handler receives paths relative to that prefix,
// so its "/" route serves /debug/traces and "/chrome" serves
// /debug/traces/chrome.
func WithTraces(h http.Handler) OpsOption {
	return func(c *opsConfig) { c.traces = h }
}

// WithLogf redirects write-failure logging (default log.Printf).
func WithLogf(logf func(format string, args ...any)) OpsOption {
	return func(c *opsConfig) { c.logf = logf }
}

// OpsHandler builds the operator HTTP surface served by -metrics-addr:
//
//	/metrics              Prometheus text exposition of gather()
//	/healthz              liveness probe (200 "ok")
//	/debug/pprof/         the standard Go profiler endpoints
//	/debug/traces         recent/slow traces (only with WithTraces)
//	/debug/traces/chrome  Chrome trace-event export (only with WithTraces)
//
// gather is invoked per scrape; it should return a fresh snapshot (see
// Cluster.Metrics / Server.MetricFamilies).
func OpsHandler(gather func() []Family, opts ...OpsOption) http.Handler {
	cfg := opsConfig{logf: log.Printf}
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteText(w, gather()); err != nil {
			// Headers are gone; all we can do is note the broken scrape.
			cfg.logf("metrics: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			cfg.logf("metrics: /healthz write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.traces != nil {
		mux.Handle("/debug/traces/", http.StripPrefix("/debug/traces", cfg.traces))
		// The bare path strips to "", which a ServeMux would redirect to
		// the server root; rewrite it to the handler's "/" route instead.
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/"
			cfg.traces.ServeHTTP(w, r2)
		})
	}
	return mux
}
