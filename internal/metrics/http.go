package metrics

import (
	"net/http"
	"net/http/pprof"
)

// OpsHandler builds the operator HTTP surface served by -metrics-addr:
//
//	/metrics       Prometheus text exposition of gather()
//	/healthz       liveness probe (200 "ok")
//	/debug/pprof/  the standard Go profiler endpoints
//
// gather is invoked per scrape; it should return a fresh snapshot (see
// Cluster.Metrics / Server.MetricFamilies).
func OpsHandler(gather func() []Family) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, gather())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
