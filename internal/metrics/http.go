package metrics

import (
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
)

// OpsOption customizes the operator HTTP surface built by OpsHandler.
type OpsOption func(*opsConfig)

type opsConfig struct {
	traces http.Handler
	debug  map[string]http.Handler
	checks []healthCheck
	logf   func(format string, args ...any)
}

type healthCheck struct {
	name  string
	check func() (ok bool, reason string)
}

// WithTraces mounts a trace viewer (see alohadb/internal/trace.Handler)
// under /debug/traces. The handler receives paths relative to that prefix,
// so its "/" route serves /debug/traces and "/chrome" serves
// /debug/traces/chrome.
func WithTraces(h http.Handler) OpsOption {
	return func(c *opsConfig) { c.traces = h }
}

// WithDebug mounts a handler at /debug/<name> (e.g. the watchdog's stall
// flight recorder at /debug/stall, the skew profiler at /debug/hotkeys).
func WithDebug(name string, h http.Handler) OpsOption {
	return func(c *opsConfig) {
		if c.debug == nil {
			c.debug = make(map[string]http.Handler)
		}
		c.debug[name] = h
	}
}

// WithHealth registers a readiness check consulted by /healthz: when any
// check fails, /healthz answers 503 with "name: reason" lines, turning it
// into a real readiness probe (an active epoch stall or a stale WAL fsync
// takes the server out of rotation). Plain liveness stays at /livez.
func WithHealth(name string, check func() (ok bool, reason string)) OpsOption {
	return func(c *opsConfig) {
		c.checks = append(c.checks, healthCheck{name: name, check: check})
	}
}

// WithLogf redirects write-failure logging (default log.Printf).
func WithLogf(logf func(format string, args ...any)) OpsOption {
	return func(c *opsConfig) { c.logf = logf }
}

// OpsHandler builds the operator HTTP surface served by -metrics-addr:
//
//	/metrics              Prometheus text exposition of gather()
//	/healthz              readiness probe: 200 "ok", or 503 with the
//	                      failing checks' reasons (WithHealth)
//	/livez                liveness probe, always 200 "ok"
//	/debug/pprof/         the standard Go profiler endpoints
//	/debug/traces         recent/slow traces (only with WithTraces)
//	/debug/traces/chrome  Chrome trace-event export (only with WithTraces)
//	/debug/<name>         extra debug handlers (WithDebug)
//
// gather is invoked per scrape; it should return a fresh snapshot (see
// Cluster.Metrics / Server.MetricFamilies).
func OpsHandler(gather func() []Family, opts ...OpsOption) http.Handler {
	cfg := opsConfig{logf: log.Printf}
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteText(w, gather()); err != nil {
			// Headers are gone; all we can do is note the broken scrape.
			cfg.logf("metrics: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		body := "ok\n"
		status := http.StatusOK
		for _, hc := range cfg.checks {
			if ok, reason := hc.check(); !ok {
				if status == http.StatusOK {
					status = http.StatusServiceUnavailable
					body = ""
				}
				body += fmt.Sprintf("%s: %s\n", hc.name, reason)
			}
		}
		w.WriteHeader(status)
		if _, err := w.Write([]byte(body)); err != nil {
			cfg.logf("metrics: /healthz write: %v", err)
		}
	})
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			cfg.logf("metrics: /livez write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.traces != nil {
		mux.Handle("/debug/traces/", http.StripPrefix("/debug/traces", cfg.traces))
		// The bare path strips to "", which a ServeMux would redirect to
		// the server root; rewrite it to the handler's "/" route instead.
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/"
			cfg.traces.ServeHTTP(w, r2)
		})
	}
	// Deterministic mount order keeps duplicate-name panics reproducible.
	names := make([]string, 0, len(cfg.debug))
	for name := range cfg.debug {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mux.Handle("/debug/"+name, cfg.debug[name])
	}
	return mux
}
