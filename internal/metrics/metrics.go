// Package metrics is ALOHA-DB's observability substrate: lock-free
// counters, gauges, and fixed-bucket histograms that components record
// into on their hot paths (zero allocations per record call), plus a
// self-describing snapshot model — a list of Family values with name,
// kind, labels, and values — that the public API and the Prometheus text
// renderer both consume. New instruments add families without breaking
// the snapshot shape, so the observability API never needs another
// redesign when instrumentation grows.
//
// The paper's evaluation (§V, Figure 10) is built on latency
// distributions, not means; histograms are therefore the primary
// instrument. Buckets are fixed at construction (exponential by default)
// and quantiles (p50/p95/p99) are extracted from bucket counts by linear
// interpolation, the same scheme the benchmark harness uses for sampled
// latencies.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String names the kind as in the Prometheus exposition format.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Unit declares how a family's raw int64 observations translate to the
// exposition format. Instruments record raw integers (nanoseconds,
// bytes, counts); the renderer scales at the edge.
type Unit uint8

const (
	// UnitNone renders raw values unscaled (counts, bytes).
	UnitNone Unit = iota
	// UnitSeconds marks nanosecond observations rendered as seconds.
	UnitSeconds
)

// apply converts a raw value to the rendered unit. Division (not a
// 1e-9 multiply) keeps round values like 1000 ns rendering as exactly
// 1e-06.
func (u Unit) apply(v float64) float64 {
	if u == UnitSeconds {
		return v / 1e9
	}
	return v
}

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// Series is one labeled measurement inside a family: a scalar for
// counters and gauges, a histogram snapshot for histograms.
type Series struct {
	Labels []Label
	// Value holds the counter or gauge reading (KindCounter, KindGauge).
	Value float64
	// Hist holds the distribution (KindHistogram).
	Hist *HistogramSnapshot
}

// Family is one named metric with all its labeled series. It is the unit
// of the self-describing snapshot returned by DB.Metrics and rendered by
// WriteText.
type Family struct {
	// Name is the metric name (Prometheus conventions: *_total for
	// counters, *_seconds for duration histograms).
	Name string
	// Help is the one-line description emitted as # HELP.
	Help string
	// Kind is the metric type.
	Kind Kind
	// Unit declares the raw observation unit (see Unit).
	Unit Unit
	// Series are the labeled measurements.
	Series []Series
}

// Total sums the scalar values of every series (counters/gauges),
// giving the cluster-wide aggregate of a per-server family.
func (f Family) Total() float64 {
	var t float64
	for _, s := range f.Series {
		t += s.Value
	}
	return t
}

// TotalHist merges every series' histogram into one cluster-wide
// distribution. Series with mismatched bucket bounds are skipped (all
// ALOHA-DB families share bounds per name).
func (f Family) TotalHist() HistogramSnapshot {
	var out HistogramSnapshot
	for _, s := range f.Series {
		if s.Hist == nil {
			continue
		}
		if out.Bounds == nil {
			out = s.Hist.Clone()
			continue
		}
		out.Merge(*s.Hist)
	}
	return out
}

// --- instruments ----------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: a binary search over the bounds followed by two
// atomic adds, cheap enough for per-message and per-functor hot paths.
type Histogram struct {
	bounds []int64         // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Observations above the last bound land in the implicit +Inf bucket.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one raw observation (nanoseconds, bytes, a count).
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v (inlined sort.Search to keep
	// the hot path free of func-value indirection).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot copies the current bucket counts. The snapshot is internally
// consistent enough for operator use (counts and sum are read without a
// global lock, so a concurrent Observe may be half-reflected).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; shared, not copied
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// SnapshotInto refills s from the histogram, reusing s.Counts when its
// capacity suffices. Repeated calls against the same histogram allocate
// nothing, which is what lets the flight recorder (internal/obs/tsdb)
// sample windowed quantiles on its steady-state path at zero allocs.
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {
	s.Bounds = h.bounds // immutable after construction; shared, not copied
	if cap(s.Counts) < len(h.counts) {
		s.Counts = make([]uint64, len(h.counts))
	}
	s.Counts = s.Counts[:len(h.counts)]
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
}

// HistogramSnapshot is an immutable copy of a histogram's state, in the
// instrument's raw unit (nanoseconds for latency histograms).
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; the final bucket
	// (Counts[len(Bounds)]) is +Inf.
	Bounds []int64
	// Counts are per-bucket (not cumulative) observation counts,
	// len(Bounds)+1.
	Counts []uint64
	// Sum is the sum of all observations.
	Sum int64
	// Count is the number of observations.
	Count uint64
}

// Clone deep-copies the snapshot (Bounds stay shared: immutable).
func (s HistogramSnapshot) Clone() HistogramSnapshot {
	c := s
	c.Counts = make([]uint64, len(s.Counts))
	copy(c.Counts, s.Counts)
	return c
}

// Merge folds another snapshot with identical bounds into s. Mismatched
// bounds are ignored (families always share bounds per name).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(o.Counts) != len(s.Counts) {
		return
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Quantile extracts the q-quantile (0 < q <= 1) by locating the bucket
// holding the q*Count-th observation and interpolating linearly inside
// it. Observations in the +Inf bucket report the last finite bound (a
// conservative floor). Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the last finite bound is the best floor.
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := float64(s.Bounds[i])
		lower := float64(0)
		if i > 0 {
			lower = float64(s.Bounds[i-1])
		}
		frac := (rank - prev) / float64(c)
		return int64(lower + (upper-lower)*frac)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileDuration is Quantile for nanosecond histograms.
func (s HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// --- standard bucket layouts ----------------------------------------------

// ExponentialBounds returns n ascending bounds start, start*factor, ...
func ExponentialBounds(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		bounds = append(bounds, int64(math.Round(v)))
		v *= factor
	}
	return bounds
}

// LatencyBounds is the default latency layout: 1 µs to ~16.8 s, doubling
// (25 buckets + +Inf). It spans sub-epoch installs through multi-second
// epoch-commit waits.
func LatencyBounds() []int64 {
	return ExponentialBounds(int64(time.Microsecond), 2, 25)
}

// CountBounds is the default count layout (per-epoch transaction counts):
// 1 to ~524k, doubling.
func CountBounds() []int64 {
	return ExponentialBounds(1, 2, 20)
}

// SizeBounds is the default byte-size layout (WAL appends, messages):
// 64 B to ~16 MiB, quadrupling.
func SizeBounds() []int64 {
	return ExponentialBounds(64, 4, 10)
}

// --- family assembly helpers ----------------------------------------------

// CounterSeries builds a scalar series.
func CounterSeries(v uint64, labels ...Label) Series {
	return Series{Labels: labels, Value: float64(v)}
}

// GaugeSeries builds a scalar series from a gauge reading.
func GaugeSeries(v int64, labels ...Label) Series {
	return Series{Labels: labels, Value: float64(v)}
}

// HistSeries builds a histogram series.
func HistSeries(s HistogramSnapshot, labels ...Label) Series {
	return Series{Labels: labels, Hist: &s}
}

// WithLabel returns the families with one more label appended to every
// series (e.g. tagging a server's families with server="3").
func WithLabel(fams []Family, key, value string) []Family {
	for fi := range fams {
		for si := range fams[fi].Series {
			fams[fi].Series[si].Labels = append(fams[fi].Series[si].Labels, Label{Key: key, Value: value})
		}
	}
	return fams
}

// Merge combines families with the same name (appending their series)
// and returns the result sorted by name. Help/Kind/Unit come from the
// first family seen under each name.
func Merge(groups ...[]Family) []Family {
	byName := make(map[string]*Family)
	var order []string
	for _, fams := range groups {
		for _, f := range fams {
			if existing, ok := byName[f.Name]; ok {
				existing.Series = append(existing.Series, f.Series...)
				continue
			}
			cp := f
			cp.Series = append([]Series(nil), f.Series...)
			byName[f.Name] = &cp
			order = append(order, f.Name)
		}
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}
