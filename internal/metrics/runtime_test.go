package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeFamilies(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle and pause sample
	fams := RuntimeFamilies()
	byName := make(map[string]Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	heap, ok := byName[FamRuntimeHeapBytes]
	if !ok || heap.Total() <= 0 {
		t.Fatalf("heap bytes missing or zero: %+v", heap)
	}
	gor, ok := byName[FamRuntimeGoroutines]
	if !ok || gor.Total() < 1 {
		t.Fatalf("goroutines missing or zero: %+v", gor)
	}
	if f, ok := byName[FamRuntimeGCCycles]; !ok || f.Kind != KindCounter || f.Total() < 1 {
		t.Fatalf("gc cycles missing: %+v", f)
	}
	pause, ok := byName[FamRuntimeGCPause]
	if !ok {
		t.Fatal("gc pause histogram missing")
	}
	hs := pause.TotalHist()
	if hs.Count == 0 || len(hs.Bounds)+1 != len(hs.Counts) {
		t.Fatalf("gc pause snapshot malformed: count=%d bounds=%d counts=%d", hs.Count, len(hs.Bounds), len(hs.Counts))
	}
	// The families must render cleanly through the text exposition.
	var sb strings.Builder
	if err := WriteText(&sb, fams); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{FamRuntimeHeapBytes, FamRuntimeGoroutines, FamRuntimeGCPause + "_bucket"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("rendered exposition missing %s:\n%s", name, sb.String())
		}
	}
}
