package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"alohadb/internal/obs/tsdb"
)

// RunOptions tunes one matrix run.
type RunOptions struct {
	// Seed is the base deterministic seed (default 1); the replay artifact
	// records it.
	Seed int64
	// Window is the per-scenario workload window (default 800ms). Ignored
	// when Soak is set.
	Window time.Duration
	// Soak, when non-zero, is the total soak budget: the matrix divides it
	// evenly across the selected scenarios and runs each with chaos,
	// watchdog, oracle, and journal on, gated on p99 SLOs and zero stall
	// episodes.
	Soak time.Duration
	// Out receives progress lines and scenario output (default stdout).
	Out io.Writer
	// ArtifactPath, or $SCENARIO_ARTIFACT when empty, names the replay
	// artifact written when any scenario fails.
	ArtifactPath string
	// TrendPath, or $SCENARIO_TREND when empty, names the trend-summary
	// JSONL (tsdb.TrendRow per scenario) written at the end of the run —
	// the file `make trend-gate` compares against the previous night.
	TrendPath string
}

// Artifact is the replayable record of one failing scenario run: the
// seed, scenario, and shape parameters that reproduce it, plus the exact
// CLI invocation.
type Artifact struct {
	Scenario string   `json:"scenario"`
	Attrs    []string `json:"attrs"`
	Seed     int64    `json:"seed"`
	Window   string   `json:"window"`
	Soak     bool     `json:"soak"`
	Error    string   `json:"error"`
	Replay   string   `json:"replay"`
}

// Outcome is one scenario's result within a matrix run.
type Outcome struct {
	Name    string
	Elapsed time.Duration
	Stalls  uint64
	Err     error
}

// defaultWindow is the quick-matrix workload window per scenario.
const defaultWindow = 800 * time.Millisecond

// Run executes the scenarios sequentially and returns an error if any
// failed. Each scenario gets a fresh environment built from its shape, a
// context bounded by window+timeout, and a zero-stall gate over its
// watchdogs; a failure writes a replay artifact (all failures, one JSON
// document) to opts.ArtifactPath or $SCENARIO_ARTIFACT.
func Run(ctx context.Context, scns []*Scenario, opts RunOptions) ([]Outcome, error) {
	if len(scns) == 0 {
		return nil, fmt.Errorf("scenario: nothing selected")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	window := opts.Window
	if opts.Soak > 0 {
		window = opts.Soak / time.Duration(len(scns))
	}
	if window <= 0 {
		window = defaultWindow
	}

	var (
		outcomes  []Outcome
		artifacts []Artifact
		trend     []tsdb.TrendRow
	)
	for _, s := range scns {
		p := Params{Seed: opts.Seed, Window: window, Soak: opts.Soak > 0}
		fmt.Fprintf(out, "=== scenario %s (seed %d, window %s)\n", s.Name, p.Seed, window.Round(time.Millisecond))
		start := time.Now()
		stalls, row, err := runOne(ctx, s, p, out)
		oc := Outcome{Name: s.Name, Elapsed: time.Since(start), Stalls: stalls, Err: err}
		outcomes = append(outcomes, oc)
		if row != nil && err == nil {
			row.At = start.UTC().Format(time.RFC3339)
			trend = append(trend, *row)
		}
		if err != nil {
			fmt.Fprintf(out, "--- FAIL %s (%s): %v\n", s.Name, oc.Elapsed.Round(time.Millisecond), err)
			artifacts = append(artifacts, Artifact{
				Scenario: s.Name,
				Attrs:    s.Attrs,
				Seed:     p.Seed,
				Window:   window.String(),
				Soak:     p.Soak,
				Error:    err.Error(),
				Replay: fmt.Sprintf("go run ./cmd/aloha-bench -scenarios 'name:%s' -scenario-seed %d -scenario-window %s",
					s.Name, p.Seed, window),
			})
		} else {
			fmt.Fprintf(out, "--- ok %s (%s)\n", s.Name, oc.Elapsed.Round(time.Millisecond))
		}
	}

	if path := trendPath(opts); path != "" && len(trend) > 0 {
		if werr := tsdb.WriteTrend(path, trend); werr != nil {
			fmt.Fprintf(out, "scenario: write trend %s: %v\n", path, werr)
		} else {
			fmt.Fprintf(out, "scenario: trend summary (%d rows) written to %s\n", len(trend), path)
		}
	}

	if len(artifacts) > 0 {
		if path := artifactPath(opts); path != "" {
			if werr := writeArtifact(path, artifacts); werr != nil {
				fmt.Fprintf(out, "scenario: write artifact %s: %v\n", path, werr)
			} else {
				fmt.Fprintf(out, "scenario: replay artifact written to %s\n", path)
			}
		}
		for _, a := range artifacts {
			fmt.Fprintf(out, "replay: %s\n", a.Replay)
		}
		return outcomes, fmt.Errorf("scenario: %d/%d scenarios failed", len(artifacts), len(scns))
	}
	return outcomes, nil
}

// runOne builds the env, runs the body under its deadline, and applies
// the runner-level gates (zero stall episodes, oracle verdict). The
// returned trend row summarizes the run for the nightly gate (nil for
// scenarios that build their own clusters per phase).
func runOne(ctx context.Context, s *Scenario, p Params, out io.Writer) (stalls uint64, row *tsdb.TrendRow, err error) {
	var env *Env
	if s.Shape != nil {
		cfg := s.Shape(p)
		if p.Soak {
			// Soak runs always fly the recorder: the trend row's anomaly
			// count and the /debug/timeseries forensics depend on it.
			cfg.Timeseries = true
		}
		env, err = BuildEnv(cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("build env: %w", err)
		}
	} else {
		env = &Env{}
	}
	defer env.Close()
	env.Name = s.Name
	env.Seed = p.Seed
	env.Window = p.Window
	env.Soak = p.Soak
	env.Out = out
	env.logf = func(format string, args ...any) {
		fmt.Fprintf(out, "    "+format+"\n", args...)
	}

	slack := s.Timeout
	if slack <= 0 {
		slack = 2 * time.Minute
	}
	rctx, cancel := context.WithTimeout(ctx, p.Window+slack)
	defer cancel()

	// Baseline counters before the body: scenario preloads (cfg.Load)
	// already committed transactions the throughput row must not claim.
	var base struct {
		commits, aborts uint64
	}
	if env.Cluster != nil {
		st := env.Cluster.Stats()
		base.commits, base.aborts = st.TxnsCommitted, st.TxnsAborted
	}
	bodyStart := time.Now()

	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		err = s.Run(rctx, env)
	}()

	stalls = env.StallsTotal()
	if env.Cluster != nil {
		elapsed := time.Since(bodyStart).Seconds()
		st := env.Cluster.Stats()
		row = &tsdb.TrendRow{
			Kind:      tsdb.TrendKindSoak,
			Scenario:  s.Name,
			Seed:      p.Seed,
			WindowS:   elapsed,
			Commits:   st.TxnsCommitted - base.commits,
			Aborts:    st.TxnsAborted - base.aborts,
			P99MS:     env.Cluster.InstallQuantile(0.99).Seconds() * 1e3,
			MeanMS:    env.Cluster.InstallMean().Seconds() * 1e3,
			StallS:    env.StallSeconds(),
			Anomalies: env.AnomaliesTotal(),
		}
		if elapsed > 0 {
			row.Throughput = float64(row.Commits) / elapsed
		}
	}
	if err == nil && stalls > 0 {
		err = fmt.Errorf("watchdog recorded %d stall episode(s)", stalls)
	}
	if err == nil && env.Oracle != nil {
		if vs := env.Oracle.Check(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(out, "    oracle violation: %v\n", v)
			}
			err = fmt.Errorf("oracle found %d violation(s)", len(vs))
		}
	}
	return stalls, row, err
}

func artifactPath(opts RunOptions) string {
	if opts.ArtifactPath != "" {
		return opts.ArtifactPath
	}
	return os.Getenv("SCENARIO_ARTIFACT")
}

func trendPath(opts RunOptions) string {
	if opts.TrendPath != "" {
		return opts.TrendPath
	}
	return os.Getenv("SCENARIO_TREND")
}

func writeArtifact(path string, arts []Artifact) error {
	raw, err := json.MarshalIndent(arts, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// List renders the registry as a table for -scenario-list.
func List(w io.Writer, r *Registry) {
	for _, s := range r.All() {
		fmt.Fprintf(w, "%-18s  [%s]  %s\n", s.Name, AttrsString(s.Attrs), s.Summary)
	}
}
