package scenario

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/transport"
)

// TestBuildEnvMem exercises the shared builder end to end on the default
// in-memory transport: preload, submit, quiesce, read back.
func TestBuildEnvMem(t *testing.T) {
	loaded := kv.Key("seeded")
	env, err := BuildEnv(EnvConfig{
		Servers:       2,
		EpochDuration: 2 * time.Millisecond,
		Load: func(c *core.Cluster) error {
			return c.Load([]kv.Pair{{Key: loaded, Value: kv.EncodeInt64(41)}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	ctx := context.Background()
	h, err := env.Cluster.Server(0).Submit(ctx, core.Txn{Writes: []core.Write{
		{Key: loaded, Functor: functor.Add(1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Await(ctx); err != nil {
		t.Fatal(err)
	}
	if err := env.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	v, found, err := env.Cluster.Server(1).Get(ctx, loaded)
	if err != nil || !found {
		t.Fatalf("Get: %v found=%v", err, found)
	}
	if n, _ := kv.DecodeInt64(v); n != 42 {
		t.Fatalf("got %d, want 42", n)
	}
}

// TestBuildEnvOps verifies the full observability shape: watchdogs, skew,
// per-server ops listeners, and a clusterview scrape that sees every
// server with an advancing commit frontier.
func TestBuildEnvOps(t *testing.T) {
	env, err := BuildEnv(EnvConfig{
		Servers:       3,
		EpochDuration: 2 * time.Millisecond,
		Skew:          &obs.SkewConfig{SampleEvery: 1, TopK: 8},
		Ops:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if len(env.Watchdogs) != 3 {
		t.Fatalf("got %d watchdogs, want 3 (Ops implies Watchdog)", len(env.Watchdogs))
	}
	if len(env.OpsAddrs) != 3 {
		t.Fatalf("got %d ops listeners, want 3", len(env.OpsAddrs))
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		k := kv.Key(fmt.Sprintf("k%d", i%4))
		h, err := env.Cluster.Server(i%3).Submit(ctx, core.Txn{Writes: []core.Write{
			{Key: k, Functor: functor.Add(1)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if i == 19 {
			if _, _, err := h.Await(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := env.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	snap := env.Scraper().Scrape(ctx)
	if snap.ReachableServers != 3 {
		t.Fatalf("scrape reached %d/3 servers", snap.ReachableServers)
	}
	if snap.MinCommittedEpoch == 0 {
		t.Fatal("scrape saw no committed epochs")
	}
	if snap.ActiveStalls != 0 {
		t.Fatalf("scrape saw %d active stalls", snap.ActiveStalls)
	}
	if got := env.StallsTotal(); got != 0 {
		t.Fatalf("StallsTotal = %d, want 0", got)
	}
}

// TestBuildEnvWrapNet proves the decoration hook sees the inner transport
// and its result is what the cluster runs on.
func TestBuildEnvWrapNet(t *testing.T) {
	wrapped := false
	env, err := BuildEnv(EnvConfig{
		Servers:       2,
		EpochDuration: 2 * time.Millisecond,
		WrapNet: func(inner transport.Network) transport.Network {
			wrapped = true
			return inner
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if !wrapped {
		t.Fatal("WrapNet hook never ran")
	}
}

// TestRunMatrix drives the matrix runner over a private registry: one
// passing and one failing scenario, with the artifact written and the
// stall gate consulted.
func TestRunMatrix(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Scenario{
		Name:  "pass-one",
		Attrs: []string{"smoke"},
		Shape: func(p Params) EnvConfig {
			return EnvConfig{Servers: 1, EpochDuration: 2 * time.Millisecond}
		},
		Run: func(ctx context.Context, env *Env) error {
			if env.Cluster == nil {
				return fmt.Errorf("no cluster")
			}
			if env.Window <= 0 {
				return fmt.Errorf("no window")
			}
			return nil
		},
	})
	r.MustRegister(&Scenario{
		Name:  "fail-one",
		Attrs: []string{"smoke"},
		Run: func(ctx context.Context, env *Env) error {
			return fmt.Errorf("deliberate")
		},
	})

	scns, err := r.Select("smoke")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	artifact := t.TempDir() + "/artifact.json"
	outcomes, err := Run(context.Background(), scns, RunOptions{
		Window:       50 * time.Millisecond,
		Out:          &buf,
		ArtifactPath: artifact,
	})
	if err == nil {
		t.Fatal("matrix with a failing scenario reported success")
	}
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outcomes))
	}
	// Select sorts by name, so fail-one runs first and pass-one second.
	if outcomes[0].Err == nil || outcomes[1].Err != nil {
		t.Fatalf("unexpected outcome errors: %+v", outcomes)
	}
	out := buf.String()
	if !strings.Contains(out, "--- ok pass-one") || !strings.Contains(out, "--- FAIL fail-one") {
		t.Fatalf("runner output missing pass/fail lines:\n%s", out)
	}
	if !strings.Contains(out, "replay: go run ./cmd/aloha-bench -scenarios 'name:fail-one'") {
		t.Fatalf("runner output missing replay command:\n%s", out)
	}
}
