package scenario

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"alohadb/internal/chaos/oracle"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/mvstore"
	"alohadb/internal/obs"
	"alohadb/internal/obs/clusterview"
	"alohadb/internal/obs/journal"
	"alohadb/internal/obs/tsdb"
	"alohadb/internal/placement"
	"alohadb/internal/trace"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

// EnvConfig declares a scenario's cluster shape. BuildEnv turns it into a
// started cluster plus the observability stack, replacing the hand-rolled
// construction the chaos runner, netbench, obs-sim, and migrate-sim each
// used to carry.
type EnvConfig struct {
	// Servers is the cluster size. Required.
	Servers int
	// Transport selects "mem" (default) or "tcp" (real loopback sockets
	// with the binary wire codec). Ignored when Network is set.
	Transport string
	// WireCodec selects the TCP wire encoding: "binary" (default), "gob",
	// or "mixed" (even nodes binary, odd nodes gob — the rolling-upgrade
	// handshake path).
	WireCodec string
	// Network overrides transport construction entirely (callers that
	// pre-build a network, e.g. netbench sharing one across phases). The
	// env does not close it.
	Network transport.Network
	// NetLatency/NetJitter add simulated one-way delay to the in-memory
	// transport ("mem" only).
	NetLatency time.Duration
	NetJitter  time.Duration
	// WrapNet, when set, decorates the freshly built transport before the
	// cluster attaches — the chaos injector's hook. The wrapped network is
	// what Env.Net exposes, so bodies can reach fault controls through a
	// type assertion without this package importing the chaos package.
	WrapNet func(transport.Network) transport.Network

	// EpochDuration, EpochMinDuration, EpochMaxDuration, ManualEpochs,
	// SwitchTimeout: see core.ClusterConfig.
	EpochDuration    time.Duration
	EpochMinDuration time.Duration
	EpochMaxDuration time.Duration
	ManualEpochs     bool
	SwitchTimeout    time.Duration

	// Registry, Router, DependencyRule, Workers, Tracer, ReadBatchWindow,
	// AbortRetries, AbortRetryBackoff, Stores, StartEpoch,
	// DurabilityFactory: see core.ClusterConfig.
	AbortRetries      int
	AbortRetryBackoff time.Duration
	Workers           int
	Registry          *functor.Registry
	Router            placement.Router
	DependencyRule    func(k kv.Key) (kv.Key, bool)
	Tracer            *trace.Tracer
	ReadBatchWindow   time.Duration
	Stores            []*mvstore.Store
	StartEpoch        tstamp.Epoch
	DurabilityFactory func(serverID int) (core.DurabilityHook, error)

	// Retention bounds per-key version history (Cluster.SetRetention);
	// zero keeps the default unbounded chains. Hot-key workloads set it so
	// hour-long soaks don't grow one key's chain without bound.
	Retention int

	// Skew, when set, attaches a shared hot-key profiler (Partitions
	// defaults to Servers).
	Skew *obs.SkewConfig
	// Watchdog attaches one epoch-progress watchdog per server; the
	// runner's zero-stall gate and the /debug/stall endpoint need it.
	Watchdog bool
	// WatchdogThreshold overrides the stall threshold (default 2s; chaos
	// shapes use a larger one so injected faults below the epoch switch
	// timeout never count as stalls).
	WatchdogThreshold time.Duration
	// Ops starts one loopback HTTP ops listener per server — /metrics,
	// /healthz, /debug/stall|hotkeys|epochs|placement — the same surface
	// aloha-server exposes, so clusterview can scrape the env. Implies
	// Watchdog.
	Ops bool

	// Timeseries attaches one metrics flight recorder per server (served
	// at /debug/timeseries when Ops is also set). Implies Watchdog — the
	// recorder's stall source reads it. Soak runs force this on.
	Timeseries bool
	// TimeseriesInterval overrides the recorder sample interval (default
	// 500ms; fault-injection scenarios use a faster clock so short
	// degraded windows clear the detector's baseline).
	TimeseriesInterval time.Duration

	// Load runs between construction and Start, while bulk Load is still
	// legal; scenario preloads (TPC-C tables, account balances) go here.
	Load func(c *core.Cluster) error
}

// Env is the pre-wired world a scenario body runs in.
type Env struct {
	// Name and Seed identify the run; Window and Soak tell the body how
	// long and how hard to drive it.
	Name   string
	Seed   int64
	Window time.Duration
	Soak   bool

	// Cluster is started and loaded (nil for scenarios that build their
	// own clusters per phase).
	Cluster *core.Cluster
	// Net is the cluster's transport, after WrapNet decoration.
	Net transport.Network
	// Skew is the shared profiler (nil unless configured).
	Skew *obs.Skew
	// Watchdogs holds one started watchdog per server (empty unless
	// configured).
	Watchdogs []*obs.Watchdog
	// OpsAddrs lists the per-server ops listener addresses (empty unless
	// Ops was set).
	OpsAddrs []string
	// Recorders holds one started flight recorder per server (empty
	// unless Timeseries was configured).
	Recorders []*tsdb.Recorder
	// Oracle is a fresh history oracle; bodies that run tag-append
	// workloads record into it and the runner reports its verdict.
	Oracle *oracle.History
	// Out receives scenario-body reporting (figure rows, progress lines).
	Out io.Writer

	ownNet    bool
	httpSrvs  []*http.Server
	logf      func(format string, args ...any)
	artifacts []Artifact
}

// Logf writes one line of run output through the runner's writer.
func (e *Env) Logf(format string, args ...any) {
	if e.logf != nil {
		e.logf(format, args...)
	}
}

// Scraper returns a clusterview scraper over the env's ops listeners.
func (e *Env) Scraper() *clusterview.Scraper {
	return &clusterview.Scraper{Addrs: e.OpsAddrs}
}

// StallsTotal sums stall episodes across every watchdog; the runner gates
// soak and smoke runs on it staying zero.
func (e *Env) StallsTotal() uint64 {
	var n uint64
	for _, wd := range e.Watchdogs {
		n += wd.Status().StallsTotal
	}
	return n
}

// StallSeconds sums cumulative stalled wall-clock across every watchdog —
// the trend rows report it so a soak that limped (stalled but recovered)
// looks different from one that cruised.
func (e *Env) StallSeconds() float64 {
	var d time.Duration
	for _, wd := range e.Watchdogs {
		d += wd.StallTime()
	}
	return d.Seconds()
}

// AnomaliesTotal sums every recorder's lifetime annotation count.
func (e *Env) AnomaliesTotal() int {
	var n int
	for _, rec := range e.Recorders {
		n += rec.AnomalyCount()
	}
	return n
}

// Close tears the env down: recorders, watchdogs, ops listeners,
// cluster, and (when the env built it) the network. Safe to call more
// than once.
func (e *Env) Close() {
	for _, rec := range e.Recorders {
		rec.Stop()
	}
	e.Recorders = nil
	for _, wd := range e.Watchdogs {
		wd.Stop()
	}
	e.Watchdogs = nil
	for _, hs := range e.httpSrvs {
		hs.Close()
	}
	e.httpSrvs = nil
	if e.Cluster != nil {
		e.Cluster.Close()
		e.Cluster = nil
	}
	if e.ownNet && e.Net != nil {
		e.Net.Close()
		e.Net = nil
	}
}

// BuildEnv constructs and starts the declared cluster shape. On success
// the caller owns the env and must Close it.
func BuildEnv(cfg EnvConfig) (*Env, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("scenario: env needs at least one server")
	}
	env := &Env{Oracle: oracle.New(), Out: io.Discard}

	inner := cfg.Network
	if inner == nil {
		switch cfg.Transport {
		case "", "mem":
			inner = transport.NewMemNetwork(transport.WithLatency(cfg.NetLatency, cfg.NetJitter))
		case "tcp":
			core.RegisterMessages()
			addrs := make(map[transport.NodeID]string, cfg.Servers)
			for i := 0; i < cfg.Servers; i++ {
				addrs[transport.NodeID(i)] = "127.0.0.1:0"
			}
			var opts []transport.TCPOption
			switch cfg.WireCodec {
			case "", "binary":
				opts = append(opts, transport.WithCodec(transport.CodecBinary))
			case "gob":
				opts = append(opts, transport.WithCodec(transport.CodecGob))
			case "mixed":
				opts = append(opts, transport.WithCodecFor(func(id transport.NodeID) transport.Codec {
					if id%2 == 0 {
						return transport.CodecBinary
					}
					return transport.CodecGob
				}))
			default:
				return nil, fmt.Errorf("scenario: unknown wire codec %q", cfg.WireCodec)
			}
			inner = transport.NewTCPNetwork(addrs, opts...)
		default:
			return nil, fmt.Errorf("scenario: unknown transport %q", cfg.Transport)
		}
		env.ownNet = true
	}
	netw := inner
	if cfg.WrapNet != nil {
		netw = cfg.WrapNet(inner)
	}
	env.Net = netw

	var skew *obs.Skew
	if cfg.Skew != nil {
		sc := *cfg.Skew
		if sc.Partitions == 0 {
			sc.Partitions = cfg.Servers
		}
		skew = obs.NewSkew(sc)
	}
	env.Skew = skew

	c, err := core.NewCluster(core.ClusterConfig{
		Servers:           cfg.Servers,
		EpochDuration:     cfg.EpochDuration,
		EpochMinDuration:  cfg.EpochMinDuration,
		EpochMaxDuration:  cfg.EpochMaxDuration,
		ManualEpochs:      cfg.ManualEpochs,
		Router:            cfg.Router,
		Registry:          cfg.Registry,
		Workers:           cfg.Workers,
		Network:           netw,
		DurabilityFactory: cfg.DurabilityFactory,
		Stores:            cfg.Stores,
		StartEpoch:        cfg.StartEpoch,
		DependencyRule:    cfg.DependencyRule,
		Tracer:            cfg.Tracer,
		ReadBatchWindow:   cfg.ReadBatchWindow,
		SwitchTimeout:     cfg.SwitchTimeout,
		AbortRetries:      cfg.AbortRetries,
		AbortRetryBackoff: cfg.AbortRetryBackoff,
		Skew:              skew,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.Cluster = c
	if cfg.Retention > 0 {
		c.SetRetention(tstamp.Epoch(cfg.Retention))
	}
	if cfg.Load != nil {
		if err := cfg.Load(c); err != nil {
			env.Close()
			return nil, err
		}
	}

	if cfg.Watchdog || cfg.Ops || cfg.Timeseries {
		threshold := cfg.WatchdogThreshold
		if threshold <= 0 {
			threshold = 2 * time.Second
		}
		for i := 0; i < cfg.Servers; i++ {
			wd := c.Server(i).NewWatchdog(obs.WatchdogConfig{Threshold: threshold})
			wd.Start()
			env.Watchdogs = append(env.Watchdogs, wd)
		}
	}
	if cfg.Timeseries {
		// Recorders after watchdogs: the stall source reads the watchdog
		// the setter above installed. The migration gauge is a cluster
		// singleton, attached to server 0 so merged rings don't multiply it.
		for i := 0; i < cfg.Servers; i++ {
			var extra []tsdb.Source
			if i == 0 {
				extra = append(extra, c.MigrationSource())
			}
			rec := c.Server(i).NewRecorder(tsdb.Config{Interval: cfg.TimeseriesInterval}, extra...)
			rec.Start()
			env.Recorders = append(env.Recorders, rec)
		}
	}
	if cfg.Ops {
		if err := env.startOps(c); err != nil {
			env.Close()
			return nil, err
		}
	}

	if err := c.Start(); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

// startOps brings up one loopback ops listener per server, serving the
// same endpoint set as aloha-server's -metrics-addr.
func (e *Env) startOps(c *core.Cluster) error {
	n := c.NumServers()
	e.OpsAddrs = make([]string, n)
	for i := 0; i < n; i++ {
		srv := c.Server(i)
		wd := e.Watchdogs[i]
		gather := func() []metrics.Family {
			fams := srv.MetricFamilies()
			fams = append(fams, metrics.RuntimeFamilies()...)
			fams = append(fams, wd.MetricFamilies()...)
			if e.Skew != nil {
				fams = append(fams, e.Skew.MetricFamilies()...)
			}
			if reb := c.Rebalancer(); reb != nil {
				fams = append(fams, reb.MetricFamilies()...)
			}
			return fams
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		e.OpsAddrs[i] = ln.Addr().String()
		opts := []metrics.OpsOption{
			metrics.WithDebug("stall", wd.Handler()),
			// Embedded cluster: the EM is in-process, so each server's
			// /debug/epochs carries the EM mirror too (harmless duplication
			// — the clusterview merge dedups EM records by epoch).
			metrics.WithDebug("epochs", journal.DocHandler(srv.Journal(), c.EpochManager().Journal())),
			metrics.WithDebug("placement", placement.Handler(srv.PlacementTable())),
			metrics.WithHealth("watchdog", wd.Health),
		}
		if e.Skew != nil {
			opts = append(opts, metrics.WithDebug("hotkeys", e.Skew.Handler()))
		}
		if i < len(e.Recorders) {
			opts = append(opts, metrics.WithDebug("timeseries", e.Recorders[i].Handler()))
		}
		hs := &http.Server{Handler: metrics.OpsHandler(gather, opts...)}
		e.httpSrvs = append(e.httpSrvs, hs)
		go func() { _ = hs.Serve(ln) }()
	}
	return nil
}

// WaitCommitted blocks until every server has committed the epoch that
// was current when the call was made — the epoch-progress signal that
// replaces "sleep a few epoch durations and hope" quiesce waits: any
// transaction submitted before the call drew a timestamp at or below that
// epoch, so once the commit frontier passes it the transaction's effects
// are visible everywhere. Returns an error if the frontier does not reach
// the target within the timeout (wedged manager, manual epochs).
func WaitCommitted(c *core.Cluster, timeout time.Duration) error {
	target := c.CurrentEpoch()
	deadline := time.Now().Add(timeout)
	for {
		frontier := tstamp.MaxEpoch
		for i := 0; i < c.NumServers(); i++ {
			if e := c.Server(i).CommittedEpoch(); e < frontier {
				frontier = e
			}
		}
		if frontier >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scenario: commit frontier stuck at %d, want >= %d after %v", frontier, target, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Quiesce settles the env's cluster: waits for the commit frontier to
// pass every in-flight epoch, then drains the functor processors. Bodies
// call it before final-state checks.
func (e *Env) Quiesce(ctx context.Context) error {
	timeout := 10 * time.Second
	if d, ok := ctx.Deadline(); ok {
		if until := time.Until(d); until < timeout {
			timeout = until
		}
	}
	if err := WaitCommitted(e.Cluster, timeout); err != nil {
		return err
	}
	e.Cluster.DrainProcessors()
	return nil
}
