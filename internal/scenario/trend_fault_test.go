package scenario_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alohadb/internal/chaos"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs/tsdb"
	"alohadb/internal/scenario"
	"alohadb/internal/transport"
)

// TestTrendFaultAnnotationAndGate is the flight recorder's end-to-end
// acceptance path: a scenario run with an injected mid-run network fault
// must (a) open a /debug/timeseries anomaly annotation over the degraded
// window, cross-linked to the epoch journal's gating attribution, and
// (b) emit a trend row whose regression the gate catches against a clean
// baseline of the same scenario.
func TestTrendFaultAnnotationAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	const servers = 3
	dir := t.TempDir()

	mk := func(name string, fault bool) *scenario.Scenario {
		return &scenario.Scenario{
			Name:    name,
			Summary: "trend acceptance: steady closed loop, optional mid-run delay fault",
			Shape: func(p scenario.Params) scenario.EnvConfig {
				return scenario.EnvConfig{
					Servers:       servers,
					EpochDuration: 2 * time.Millisecond,
					SwitchTimeout: time.Second,
					Registry:      functor.NewRegistry(),
					Ops:           true,
					// Fast sample clock so the ~1.3s degraded window spans
					// many ticks beyond the detector's cold-start floor.
					Timeseries:         true,
					TimeseriesInterval: 50 * time.Millisecond,
					WatchdogThreshold:  10 * time.Second,
					WrapNet: func(inner transport.Network) transport.Network {
						// Probability-free wrap: the body schedules the only
						// fault (deterministic link delays) itself.
						return chaos.Wrap(inner, chaos.Config{Seed: p.Seed, LogCap: -1})
					},
				}
			},
			Run: func(ctx context.Context, env *scenario.Env) error {
				c := env.Cluster
				// Closed-loop batches: throughput tracks commit latency, so
				// delayed links genuinely collapse the commit rate instead
				// of queueing fire-and-forget submissions for later.
				drive := func(until time.Time) {
					i := 0
					for time.Now().Before(until) && ctx.Err() == nil {
						var hs []*core.TxnHandle
						for j := 0; j < 16; j++ {
							h, err := c.Server(i%servers).Submit(ctx, core.Txn{Writes: []core.Write{
								{Key: kv.Key("acct-" + string(rune('a'+i%24))), Functor: functor.Add(1)},
							}})
							if err == nil {
								hs = append(hs, h)
							}
							i++
						}
						for _, h := range hs {
							_, _, _ = h.Await(ctx)
						}
					}
				}
				drive(time.Now().Add(1600 * time.Millisecond))
				if fault {
					cn := env.Net.(*chaos.Network)
					for from := 0; from < servers; from++ {
						for to := 0; to < servers; to++ {
							if from != to {
								cn.DelayLink(transport.NodeID(from), transport.NodeID(to), 30*time.Millisecond)
							}
						}
					}
					drive(time.Now().Add(1300 * time.Millisecond))
					cn.HealAll()
				}
				drive(time.Now().Add(300 * time.Millisecond))
				return env.Quiesce(ctx)
			},
		}
	}

	cleanPath := filepath.Join(dir, "TREND_prev.jsonl")
	faultPath := filepath.Join(dir, "TREND_cur.jsonl")
	ctx := context.Background()
	if _, err := scenario.Run(ctx, []*scenario.Scenario{mk("trend-fault", false)}, scenario.RunOptions{
		Out: testWriter{t}, TrendPath: cleanPath,
	}); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	// The faulted run shares the scenario name so the gate matches rows.
	faulted := mk("trend-fault", true)
	var annotated []tsdb.Annotation
	origRun := faulted.Run
	faulted.Run = func(ctx context.Context, env *scenario.Env) error {
		err := origRun(ctx, env)
		for _, rec := range env.Recorders {
			annotated = append(annotated, rec.Annotations()...)
		}
		// The merged cluster view must carry the same anomalies,
		// cross-linked to the merged epoch critical paths.
		snap := env.Scraper().Scrape(ctx)
		if len(snap.Anomalies) == 0 {
			t.Error("cluster view carries no anomaly annotations after the fault")
		}
		linked := false
		for _, a := range snap.Anomalies {
			if a.FromEpoch > 0 && (a.ClusterGatingStage != "" || a.GatingStage != "") {
				linked = true
			}
		}
		if !linked {
			t.Errorf("no anomaly cross-linked to an epoch gating stage: %+v", snap.Anomalies)
		}
		return err
	}
	if _, err := scenario.Run(ctx, []*scenario.Scenario{faulted}, scenario.RunOptions{
		Out: testWriter{t}, TrendPath: faultPath,
	}); err != nil {
		t.Fatalf("faulted run: %v", err)
	}

	// (a) The recorder annotated the degraded window with real epochs.
	found := false
	for _, a := range annotated {
		if a.Series == "commit_rate" && a.Kind == tsdb.AnomalyDrop && a.FromEpoch > 0 {
			found = true
			if a.GatingStage == "" {
				t.Errorf("drop annotation has no journal gating cross-link: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("no commit_rate drop annotation over the fault window; got %+v", annotated)
	}

	// (b) The trend gate catches the regression against the clean baseline.
	prev, err := tsdb.ReadTrend(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := tsdb.ReadTrend(faultPath)
	if err != nil {
		t.Fatal(err)
	}
	fails := tsdb.GateTrend(prev, cur, tsdb.GateConfig{})
	if len(fails) == 0 {
		t.Fatalf("gate passed a faulted run against a clean baseline\nprev=%+v\ncur=%+v", prev, cur)
	}
	throughputFail := false
	for _, f := range fails {
		t.Logf("gate: %s", f)
		if strings.Contains(f, "throughput") {
			throughputFail = true
		}
	}
	if !throughputFail {
		t.Errorf("gate failures do not include the throughput regression: %v", fails)
	}
}

// testWriter routes runner output through the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
