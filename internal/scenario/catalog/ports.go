package catalog

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"alohadb/internal/chaos"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/harness"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/scenario"
	"alohadb/internal/tstamp"
)

// registerPorts puts the pre-registry harnesses — the paper-figure
// sweeps, the network-path benchmarks, the oracle-checked chaos suites,
// the observability boot, and the hot-spot split — under the same
// declarative roof, so one attribute expression can select across all of
// them.
func registerPorts(r *scenario.Registry) {
	registerFigures(r)
	registerNetBench(r)
	registerChaosPorts(r)
	registerObsView(r)
	registerMigrateSplit(r)
}

// figureWindow maps the scenario window onto a per-point measurement
// duration; the sweeps visit several parameter points per figure.
func figureWindow(w time.Duration) time.Duration {
	d := w / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

func registerFigures(r *scenario.Registry) {
	figs := []struct {
		n   string
		sum string
		run func(harness.Options) error
	}{
		{"6", "TPC-C NewOrder scaling over cluster size", func(o harness.Options) error { _, err := harness.Figure6(o); return err }},
		{"7", "TPC-C throughput under growing multi-partition rate", func(o harness.Options) error { _, err := harness.Figure7(o); return err }},
		{"8", "latency/throughput frontier", func(o harness.Options) error { _, err := harness.Figure8(o); return err }},
		{"9", "YCSB contention sweep vs Calvin", func(o harness.Options) error { _, err := harness.Figure9(o); return err }},
		{"10", "per-stage commit latency breakdown", func(o harness.Options) error { _, err := harness.Figure10(o); return err }},
		{"11", "scaled TPC-C districts sweep", func(o harness.Options) error { _, err := harness.Figure11(o); return err }},
	}
	for _, f := range figs {
		f := f
		r.MustRegister(&scenario.Scenario{
			Name:    "figure-" + f.n,
			Summary: "paper figure " + f.n + ": " + f.sum,
			Attrs:   []string{"bench"},
			Timeout: 10 * time.Minute,
			Run: func(ctx context.Context, env *scenario.Env) error {
				return f.run(harness.Options{
					Quick:    true,
					Duration: figureWindow(env.Window),
					Out:      env.Out,
				})
			},
		})
	}
}

func registerNetBench(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "netbench",
		Summary: "network-path suite: transport coalescing, remote reads, NewOrder over TCP",
		Attrs:   []string{"bench", "net"},
		Timeout: 10 * time.Minute,
		Run: func(ctx context.Context, env *scenario.Env) error {
			rows, err := harness.NetBench(harness.Options{
				Quick:    true,
				Duration: figureWindow(env.Window),
				Out:      env.Out,
			})
			if err != nil {
				return err
			}
			env.Logf("netbench: %d rows (regression gating stays with -netbench-gate)", len(rows))
			return nil
		},
	})
}

// chaosPort wraps one chaos suite configuration as a scenario: ops per
// writer scale with the window, the report prints through the runner,
// and any oracle violation fails the scenario.
func chaosPort(name, summary string, attrs []string, shape func(cfg *chaos.ScenarioConfig)) *scenario.Scenario {
	return &scenario.Scenario{
		Name:    name,
		Summary: summary,
		Attrs:   attrs,
		Timeout: 5 * time.Minute,
		Run: func(ctx context.Context, env *scenario.Env) error {
			ops := int(60 * env.Window.Seconds())
			if ops < 20 {
				ops = 20
			}
			if ops > 2000 {
				ops = 2000
			}
			cfg := chaos.ScenarioConfig{Seed: env.Seed, OpsPerWriter: ops}
			shape(&cfg)
			if cfg.Crash {
				dir, err := os.MkdirTemp("", "aloha-scn-chaos-*")
				if err != nil {
					return err
				}
				defer os.RemoveAll(dir)
				cfg.Dir = dir
			}
			rep, err := chaos.RunScenario(cfg)
			if err != nil {
				return err
			}
			env.Logf("%s", rep)
			if !rep.OK() {
				return fmt.Errorf("oracle found %d violation(s)", len(rep.Violations))
			}
			return nil
		},
	}
}

func registerChaosPorts(r *scenario.Registry) {
	tcpProbs := func(cfg *chaos.ScenarioConfig) {
		// TCP RPCs are slower; the in-memory fault mix would mostly
		// measure retry latency (same tuning as the -chaos CLI path).
		probs := chaos.DefaultProbabilities()
		probs.DropCall, probs.DropSend = 0.01, 0.03
		cfg.Probabilities = &probs
	}
	r.MustRegister(chaosPort("chaos-quick",
		"oracle-checked fault injection with link chaos on the in-memory transport",
		[]string{"chaos", "smoke"},
		func(cfg *chaos.ScenarioConfig) { cfg.LinkChaos = true }))
	r.MustRegister(chaosPort("chaos-crash",
		"mid-run cluster crash with WAL recovery and gray-band reclassification",
		[]string{"chaos", "crash"},
		func(cfg *chaos.ScenarioConfig) { cfg.LinkChaos = true; cfg.Crash = true }))
	r.MustRegister(chaosPort("chaos-tcp",
		"oracle-checked fault injection over real TCP sockets",
		[]string{"chaos", "net"},
		func(cfg *chaos.ScenarioConfig) { cfg.TCP = true; tcpProbs(cfg) }))
	r.MustRegister(chaosPort("chaos-mixed-codec",
		"fault injection across a rolling codec upgrade (binary and gob peers)",
		[]string{"chaos", "net"},
		func(cfg *chaos.ScenarioConfig) { cfg.TCP = true; cfg.WireCodec = "mixed"; tcpProbs(cfg) }))
	r.MustRegister(chaosPort("chaos-migrate",
		"live key migration racing the workload under faults",
		[]string{"chaos", "migration"},
		func(cfg *chaos.ScenarioConfig) { cfg.LinkChaos = true; cfg.Migrate = true }))
}

// registerObsView ports the obs-sim boot: a cluster with the full
// observability stack, a light workload, then assertions over the same
// scrape surface aloha-top renders.
func registerObsView(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "obs-view",
		Summary: "full observability stack boot: ops listeners, watchdogs, skew profiler, scrape",
		Attrs:   []string{"smoke", "obs"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("obs-append", appendTag)
			return scenario.EnvConfig{
				Servers:       3,
				EpochDuration: 3 * time.Millisecond,
				Registry:      reg,
				Skew:          &obs.SkewConfig{SampleEvery: 4, TopK: 16},
				Ops:           true,
			}
		},
		Run: func(ctx context.Context, env *scenario.Env) error {
			rng := rand.New(rand.NewSource(env.Seed))
			deadline := time.Now().Add(env.Window)
			n := 0
			for time.Now().Before(deadline) && ctx.Err() == nil {
				k := kv.Key(fmt.Sprintf("obs:k%02d", rng.Intn(16)))
				tag := fmt.Sprintf("o%d", n)
				n++
				env.Oracle.Begin(tag, []kv.Key{k})
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				results, _, err := env.Cluster.Server(n%env.Cluster.NumServers()).SubmitBatch(sctx, []core.Txn{{
					Writes: []core.Write{{Key: k, Functor: functor.User("obs-append", []byte(tag+";"), nil)}},
				}})
				cancel()
				var res core.TxnResult
				if err == nil {
					res = results[0]
				}
				finishSubmit(env.Oracle, tag, res, err)
				time.Sleep(500 * time.Microsecond)
			}
			if err := settle(ctx, env); err != nil {
				return err
			}
			snap := env.Scraper().Scrape(ctx)
			env.Logf("obs: %d txns; scrape: %d servers, frontier %d..%d, %d epoch paths",
				n, snap.ReachableServers, snap.MinCommittedEpoch, snap.MaxCommittedEpoch, len(snap.EpochPaths))
			if snap.ReachableServers != env.Cluster.NumServers() {
				return fmt.Errorf("scrape reached %d of %d servers", snap.ReachableServers, env.Cluster.NumServers())
			}
			if snap.MinCommittedEpoch == 0 {
				return fmt.Errorf("commit frontier never advanced")
			}
			if env.Skew.Snapshot().Observed == 0 {
				return fmt.Errorf("skew profiler observed no accesses")
			}
			return nil
		},
	})
}

// registerMigrateSplit ports migrate-sim's core move: hammer a hot key,
// find it through the skew profiler (not by construction), split it off
// its partition live, and prove the history stays clean across the
// epoch-fenced handoff.
func registerMigrateSplit(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "migrate-split",
		Summary: "profiler-guided live split of a hot key, oracle-checked across the handoff",
		Attrs:   []string{"migration", "smoke", "obs"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("mg-append", appendTag)
			return scenario.EnvConfig{
				Servers:           3,
				EpochDuration:     2 * time.Millisecond,
				Registry:          reg,
				Retention:         8,
				Skew:              &obs.SkewConfig{SampleEvery: 1, TopK: 8},
				Watchdog:          true,
				WatchdogThreshold: 5 * time.Second,
			}
		},
		Run: runMigrateSplit,
	})
}

func runMigrateSplit(ctx context.Context, env *scenario.Env) error {
	keys := make([]kv.Key, 16)
	for i := range keys {
		keys[i] = kv.Key(fmt.Sprintf("mg:k%02d", i))
	}
	hot := keys[0]
	rng := rand.New(rand.NewSource(env.Seed))
	tagSeq := 0
	drive := func(until time.Time) error {
		for time.Now().Before(until) && ctx.Err() == nil {
			// Zipf-ish: most writes land on the hot key.
			k := hot
			if rng.Float64() > 0.7 {
				k = keys[1+rng.Intn(len(keys)-1)]
			}
			tagSeq++
			tag := fmt.Sprintf("g%d", tagSeq)
			env.Oracle.Begin(tag, []kv.Key{k})
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			results, _, err := env.Cluster.Server(tagSeq%env.Cluster.NumServers()).SubmitBatch(sctx, []core.Txn{{
				Writes: []core.Write{{Key: k, Functor: functor.User("mg-append", []byte(tag+";"), nil)}},
			}})
			cancel()
			var res core.TxnResult
			if err == nil {
				res = results[0]
			}
			finishSubmit(env.Oracle, tag, res, err)
			time.Sleep(300 * time.Microsecond)
		}
		return ctx.Err()
	}

	// Phase 1: build up heat so the profiler, not the test, names the
	// hot key.
	half := env.Window / 2
	if err := drive(time.Now().Add(half)); err != nil {
		return err
	}
	snap := env.Skew.Snapshot()
	if len(snap.TopKeys) == 0 {
		return fmt.Errorf("skew profiler ranked no keys")
	}
	hottest := kv.Key(snap.TopKeys[0].Key)
	if hottest != hot {
		return fmt.Errorf("profiler ranked %q hottest, want %q", hottest, hot)
	}
	cur := int(env.Cluster.PlacementTable().Route(hottest, tstamp.MaxEpoch))
	to := (cur + 1) % env.Cluster.NumServers()
	ticket, err := env.Cluster.Rebalancer().MoveKey(hottest, to)
	if err != nil {
		return fmt.Errorf("enqueue split: %w", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	epoch, err := ticket.Wait(wctx)
	cancel()
	if err != nil {
		return fmt.Errorf("handoff never completed: %w", err)
	}
	env.Logf("split %s: server %d -> %d at epoch %d", hottest, cur, to, epoch)

	// Phase 2: keep writing through and past the handoff.
	if err := drive(time.Now().Add(half)); err != nil {
		return err
	}
	if got := int(env.Cluster.PlacementTable().Route(hottest, tstamp.MaxEpoch)); got != to {
		return fmt.Errorf("after the split %s routes to %d, want %d", hottest, got, to)
	}
	if err := settle(ctx, env); err != nil {
		return err
	}
	if err := observeFinals(ctx, env, keys); err != nil {
		return err
	}
	_, committed, _, _, _ := env.Oracle.Counts()
	env.Logf("migration survived %d txns (%d committed)", tagSeq, committed)
	if committed == 0 {
		return fmt.Errorf("no transaction committed in a %s window", env.Window)
	}
	return nil
}
