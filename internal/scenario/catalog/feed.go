package catalog

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/scenario"
)

// Social-feed fanout: a read-heavy workload where every post is a
// multi-key transaction appending to one celebrity timeline and a few
// follower timelines. A handful of celebrity keys absorb most writes, so
// their functor chains are long and contended while reader snapshots
// race the fanout — the oracle's torn-transaction check is exactly the
// "did a reader see half a fanout" question.
const (
	feedCelebs  = 4
	feedUsers   = 48
	feedWriters = 4
	feedReaders = 8
)

func registerFeed(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "feed-fanout",
		Summary: "read-heavy social-feed fanout with hot celebrity timelines under light chaos",
		Attrs:   []string{"contention", "chaos", "soak", "smoke"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("feed-append", appendTag)
			cfg := chaosEnv(3, p.Seed)
			cfg.Registry = reg
			cfg.Retention = 16
			return cfg
		},
		Run: runFeedFanout,
	})
}

func feedKeys() (celebs, users, all []kv.Key) {
	for i := 0; i < feedCelebs; i++ {
		celebs = append(celebs, kv.Key(fmt.Sprintf("feed:celeb:%d", i)))
	}
	for i := 0; i < feedUsers; i++ {
		users = append(users, kv.Key(fmt.Sprintf("feed:user:%02d", i)))
	}
	all = append(append(all, celebs...), users...)
	return
}

// pickCeleb skews writes toward celebrity 0: the minimum of two uniform
// draws lands on the low indices most of the time.
func pickCeleb(rng *rand.Rand) int {
	a, b := rng.Intn(feedCelebs), rng.Intn(feedCelebs)
	if b < a {
		a = b
	}
	return a
}

func runFeedFanout(ctx context.Context, env *scenario.Env) error {
	celebs, users, all := feedKeys()
	lat := newLatencies()
	deadline := time.Now().Add(env.Window)

	var (
		tagMu  sync.Mutex
		tagSeq int
	)
	nextTag := func() string {
		tagMu.Lock()
		defer tagMu.Unlock()
		tagSeq++
		return fmt.Sprintf("f%d", tagSeq)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < feedReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(env.Seed*7919 + int64(r)))
			srv := env.Cluster.Server(r % env.Cluster.NumServers())
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				rkeys := []kv.Key{
					celebs[pickCeleb(rng)],
					users[rng.Intn(feedUsers)],
					users[rng.Intn(feedUsers)],
				}
				rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				vals, snap, err := srv.ReadMany(rctx, rkeys)
				cancel()
				if err != nil {
					continue
				}
				env.Oracle.Observe(r, snap, rkeys, vals)
			}
		}(r)
	}

	var writers sync.WaitGroup
	for w := 0; w < feedWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(env.Seed*1000003 + int64(w)))
			srv := env.Cluster.Server(w % env.Cluster.NumServers())
			for time.Now().Before(deadline) && ctx.Err() == nil {
				time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond)
				tag := nextTag()
				// One post fans out to the celebrity timeline plus two
				// distinct follower timelines.
				u1 := rng.Intn(feedUsers)
				u2 := (u1 + 1 + rng.Intn(feedUsers-1)) % feedUsers
				wkeys := []kv.Key{celebs[pickCeleb(rng)], users[u1], users[u2]}
				txn := core.Txn{}
				for _, k := range wkeys {
					txn.Writes = append(txn.Writes, core.Write{
						Key:     k,
						Functor: functor.User("feed-append", []byte(tag+";"), nil),
					})
				}
				env.Oracle.Begin(tag, wkeys)
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				start := time.Now()
				results, _, err := srv.SubmitBatch(sctx, []core.Txn{txn})
				lat.observe(time.Since(start))
				cancel()
				var res core.TxnResult
				if err == nil {
					res = results[0]
				}
				finishSubmit(env.Oracle, tag, res, err)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if err := settle(ctx, env); err != nil {
		return err
	}
	if err := observeFinals(ctx, env, all); err != nil {
		return err
	}
	total, committed, aborted, indeterminate, _ := env.Oracle.Counts()
	env.Logf("posts: %d (%d committed, %d aborted, %d indeterminate); reads: %d",
		total, committed, aborted, indeterminate, env.Oracle.Reads())
	if committed == 0 {
		return fmt.Errorf("no post committed in a %s window", env.Window)
	}
	return requireP99(env, "post", lat, 400*time.Millisecond)
}
