package catalog

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alohadb/internal/chaos/oracle"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/scenario"
)

// Payment ledger: dependent transactions with constraint aborts. Each
// transfer is three functors — debit the source, credit the destination,
// and append an audit tag — that all read the source balance and must
// reach the same keep-or-abort decision (paper §IV-C: decision-relevant
// keys in every functor's read set). The audit keys feed the history
// oracle; the balances feed a conservation check: money neither appears
// nor vanishes, modulo transfers whose rollback is indeterminate.
const (
	ledgerAccounts = 12
	ledgerWriters  = 6
	ledgerInitial  = int64(1000)
	// ledgerDoomed exceeds the whole system's balance, so a doomed
	// transfer can never find sufficient funds: one committing is a bug,
	// not bad luck.
	ledgerDoomed = int64(10_000_000)
)

func registerLedger(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "payment-ledger",
		Summary: "dependent-transaction transfers with constraint aborts and a conservation invariant",
		Attrs:   []string{"contention", "chaos", "soak", "smoke"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("pay-out", payOut)
			reg.MustRegister("pay-in", payIn)
			reg.MustRegister("pay-audit", payAudit)
			cfg := chaosEnv(3, p.Seed)
			cfg.Registry = reg
			cfg.Retention = 16
			cfg.Load = func(c *core.Cluster) error {
				pairs := make([]kv.Pair, ledgerAccounts)
				for i := range pairs {
					pairs[i] = kv.Pair{Key: ledgerAcct(i), Value: kv.EncodeInt64(ledgerInitial)}
				}
				return c.Load(pairs)
			}
			return cfg
		},
		Run: runPaymentLedger,
	})
}

func ledgerAcct(i int) kv.Key  { return kv.Key(fmt.Sprintf("pay:acct:%02d", i)) }
func ledgerAudit(w int) kv.Key { return kv.Key(fmt.Sprintf("pay:audit:w%d", w)) }

// payOut debits the source account (self = src). Arg: amount.
func payOut(fc *functor.Context) (*functor.Resolution, error) {
	amt, _ := kv.DecodeInt64(fc.Arg)
	bal, _ := kv.DecodeInt64(fc.Reads[fc.Key].Value)
	if bal < amt {
		return functor.AbortResolution("insufficient funds"), nil
	}
	return functor.ValueResolution(kv.EncodeInt64(bal - amt)), nil
}

// payIn credits the destination (self = dst). Arg: amount ++ src key.
// The source balance is in the read set so the credit reaches the same
// decision as the debit.
func payIn(fc *functor.Context) (*functor.Resolution, error) {
	amt, _ := kv.DecodeInt64(fc.Arg[:8])
	src := kv.Key(fc.Arg[8:])
	srcBal, _ := kv.DecodeInt64(fc.Reads[src].Value)
	if srcBal < amt {
		return functor.AbortResolution("insufficient funds"), nil
	}
	bal, _ := kv.DecodeInt64(fc.Reads[fc.Key].Value)
	return functor.ValueResolution(kv.EncodeInt64(bal + amt)), nil
}

// payAudit appends the transfer's tag to the writer's audit trail (self
// = audit key), deciding from the same source read as the other two.
// Arg: amount ++ tag ++ ';' ++ src key.
func payAudit(fc *functor.Context) (*functor.Resolution, error) {
	amt, _ := kv.DecodeInt64(fc.Arg[:8])
	rest := fc.Arg[8:]
	i := bytes.IndexByte(rest, ';')
	tagged, src := rest[:i+1], kv.Key(rest[i+1:])
	srcBal, _ := kv.DecodeInt64(fc.Reads[src].Value)
	if srcBal < amt {
		return functor.AbortResolution("insufficient funds"), nil
	}
	prev := fc.Reads[fc.Key]
	out := make([]byte, 0, len(prev.Value)+len(tagged))
	out = append(out, prev.Value...)
	out = append(out, tagged...)
	return functor.ValueResolution(out), nil
}

func runPaymentLedger(ctx context.Context, env *scenario.Env) error {
	lat := newLatencies()
	deadline := time.Now().Add(env.Window)

	var (
		mu              sync.Mutex
		tagSeq          int
		indetAmts       int64
		doomedCommitted int
	)

	var writers sync.WaitGroup
	for w := 0; w < ledgerWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(env.Seed*104729 + int64(w)))
			srv := env.Cluster.Server(w % env.Cluster.NumServers())
			audit := ledgerAudit(w)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond)
				mu.Lock()
				tagSeq++
				tag := fmt.Sprintf("p%d", tagSeq)
				mu.Unlock()
				si := rng.Intn(ledgerAccounts)
				di := (si + 1 + rng.Intn(ledgerAccounts-1)) % ledgerAccounts
				src, dst := ledgerAcct(si), ledgerAcct(di)
				amt := int64(1 + rng.Intn(50))
				if rng.Float64() < 0.10 {
					amt = ledgerDoomed
				}
				auditArg := append(kv.EncodeInt64(amt), []byte(tag+";")...)
				auditArg = append(auditArg, src...)
				txn := core.Txn{Writes: []core.Write{
					{Key: src, Functor: functor.User("pay-out", kv.EncodeInt64(amt), nil)},
					{Key: dst, Functor: functor.User("pay-in", append(kv.EncodeInt64(amt), src...), []kv.Key{src})},
					{Key: audit, Functor: functor.User("pay-audit", auditArg, []kv.Key{src})},
				}}
				env.Oracle.Begin(tag, []kv.Key{audit})
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				start := time.Now()
				h, err := srv.Submit(sctx, txn)
				lat.observe(time.Since(start))
				if err != nil {
					cancel()
					finishSubmit(env.Oracle, tag, core.TxnResult{}, err)
					continue
				}
				// The constraint decision is made at compute time, so the
				// ledger must use acknowledgment option 2 (fully computed)
				// to learn each transfer's real outcome.
				committed, _, aerr := h.Await(sctx)
				cancel()
				switch {
				case aerr != nil:
					env.Oracle.Finish(tag, h.Version(), oracle.StatusIndeterminate)
					mu.Lock()
					indetAmts += amt
					mu.Unlock()
				case committed:
					env.Oracle.Finish(tag, h.Version(), oracle.StatusCommitted)
					if amt == ledgerDoomed {
						mu.Lock()
						doomedCommitted++
						mu.Unlock()
					}
				case h.AbortIncomplete():
					env.Oracle.Finish(tag, h.Version(), oracle.StatusIndeterminate)
					mu.Lock()
					indetAmts += amt
					mu.Unlock()
				default:
					env.Oracle.Finish(tag, h.Version(), oracle.StatusAborted)
				}
			}
		}(w)
	}
	writers.Wait()

	if err := settle(ctx, env); err != nil {
		return err
	}
	var total int64
	for i := 0; i < ledgerAccounts; i++ {
		v, found, err := env.Cluster.Server(0).Get(ctx, ledgerAcct(i))
		if err != nil || !found {
			return fmt.Errorf("final balance of %s: err=%v found=%v", ledgerAcct(i), err, found)
		}
		bal, _ := kv.DecodeInt64(v)
		total += bal
	}
	audits := make([]kv.Key, ledgerWriters)
	for w := range audits {
		audits[w] = ledgerAudit(w)
	}
	if err := observeFinals(ctx, env, audits); err != nil {
		return err
	}

	initial := ledgerInitial * ledgerAccounts
	drift := total - initial
	txns, committed, aborted, indeterminate, _ := env.Oracle.Counts()
	env.Logf("transfers: %d (%d committed, %d aborted, %d indeterminate); balance drift %+d (slack %d)",
		txns, committed, aborted, indeterminate, drift, indetAmts)
	if doomedCommitted > 0 {
		return fmt.Errorf("%d doomed transfer(s) committed despite insufficient funds", doomedCommitted)
	}
	// Committed transfers conserve by construction; only a transfer whose
	// rollback is indeterminate may have moved money one-sidedly.
	if drift > indetAmts || drift < -indetAmts {
		return fmt.Errorf("conservation violated: balances drifted %+d with only %d indeterminate", drift, indetAmts)
	}
	if committed == 0 {
		return fmt.Errorf("no transfer committed in a %s window", env.Window)
	}
	return requireP99(env, "transfer", lat, 400*time.Millisecond)
}
