// Package catalog registers every scenario the repo ships: the four
// high-contention end-to-end workloads (social-feed fanout, payment
// ledger, auction sniping, multi-tenant mix) plus ports of the ad-hoc
// harnesses that predate the registry (bench figures, chaos suites,
// obs-sim, migrate-sim). It is the one package allowed to import both
// the scenario runtime and the chaos injector; the runtime itself stays
// injector-free via EnvConfig.WrapNet.
package catalog

import (
	"context"
	"fmt"
	"sync"
	"time"

	"alohadb/internal/chaos"
	"alohadb/internal/chaos/oracle"
	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/metrics"
	"alohadb/internal/scenario"
	"alohadb/internal/transport"
	"alohadb/internal/tstamp"
)

var registerOnce sync.Once

// Register populates the default registry. Idempotent, so the CLI and
// the go-test bridge can both call it.
func Register() {
	registerOnce.Do(func() {
		r := scenario.Default()
		registerFeed(r)
		registerLedger(r)
		registerAuction(r)
		registerTenants(r)
		registerPorts(r)
	})
}

// lightProbs is the fault mix the end-to-end workloads run under: hostile
// enough to exercise retries, second-round aborts, and reordering on
// every run, light enough that p99 SLOs stay meaningful.
func lightProbs() chaos.Probabilities {
	return chaos.Probabilities{
		DropCall:  0.01,
		DropResp:  0.005,
		DropSend:  0.03,
		Duplicate: 0.01,
		Delay:     0.15,
		MaxDelay:  2 * time.Millisecond,
	}
}

// wrapChaos is the EnvConfig.WrapNet hook that puts the fault injector
// between the cluster and its transport.
func wrapChaos(seed int64) func(transport.Network) transport.Network {
	return func(inner transport.Network) transport.Network {
		return chaos.Wrap(inner, chaos.Config{Seed: seed, Probabilities: lightProbs(), LogCap: -1})
	}
}

// chaosEnv is the base shape for the fault-injected workloads: short
// epochs so a window crosses many commit boundaries, a bounded abort
// retry budget, and a watchdog threshold well above the switch timeout
// so injected faults never register as stall episodes.
func chaosEnv(servers int, seed int64) scenario.EnvConfig {
	return scenario.EnvConfig{
		Servers:           servers,
		EpochDuration:     2 * time.Millisecond,
		SwitchTimeout:     time.Second,
		AbortRetries:      10,
		AbortRetryBackoff: 2 * time.Millisecond,
		Watchdog:          true,
		WatchdogThreshold: 5 * time.Second,
		WrapNet:           wrapChaos(seed),
	}
}

// appendTag is the workload functor shared by every oracle-checked
// scenario: append this transaction's unique tag to the key's previous
// value (self-read only, so recomputation is deterministic).
func appendTag(fc *functor.Context) (*functor.Resolution, error) {
	prev := fc.Reads[fc.Key]
	out := make([]byte, 0, len(prev.Value)+len(fc.Arg))
	out = append(out, prev.Value...)
	out = append(out, fc.Arg...)
	return functor.ValueResolution(out), nil
}

// settle ends the fault schedule (when one is attached) and quiesces the
// cluster, so final-state reads see a healed, committed world.
func settle(ctx context.Context, env *scenario.Env) error {
	if cn, ok := env.Net.(*chaos.Network); ok {
		cn.SetEnabled(false)
		cn.HealAll()
	}
	return env.Quiesce(ctx)
}

// finishSubmit records a SubmitBatch outcome in the oracle: a submit
// error means no timestamp was ever assigned (cannot surface), an
// incomplete rollback is indeterminate, and everything else is the
// result's word.
func finishSubmit(h *oracle.History, tag string, res core.TxnResult, err error) {
	switch {
	case err != nil:
		h.Finish(tag, tstamp.Zero, oracle.StatusAborted)
	case res.Aborted && res.AbortIncomplete:
		h.Finish(tag, res.Version, oracle.StatusIndeterminate)
	case res.Aborted:
		h.Finish(tag, res.Version, oracle.StatusAborted)
	default:
		h.Finish(tag, res.Version, oracle.StatusCommitted)
	}
}

// latencies tracks submit latency in the same bounded histogram the
// server metrics use, so hour-long soaks measure p99 in constant memory.
type latencies struct {
	h *metrics.Histogram
}

func newLatencies() *latencies {
	return &latencies{h: metrics.NewHistogram(metrics.LatencyBounds())}
}

func (l *latencies) observe(d time.Duration) { l.h.ObserveDuration(d) }

func (l *latencies) p99() time.Duration { return l.h.Snapshot().QuantileDuration(0.99) }

func (l *latencies) count() uint64 { return l.h.Snapshot().Count }

// requireP99 is the workloads' SLO gate. The bounds are deliberately
// generous — shared CI runners, fault injection — and exist to catch
// collapse (retry storms, stalled epochs), not to benchmark.
func requireP99(env *scenario.Env, label string, l *latencies, slo time.Duration) error {
	p := l.p99()
	env.Logf("%s: %d txns, submit p99 %s (SLO %s)", label, l.count(), p.Round(time.Microsecond), slo)
	if p > slo {
		return fmt.Errorf("%s submit p99 %s exceeds SLO %s", label, p, slo)
	}
	return nil
}

// observeFinals records every key's settled value into the oracle.
func observeFinals(ctx context.Context, env *scenario.Env, keys []kv.Key) error {
	for _, k := range keys {
		v, found, err := env.Cluster.Server(0).Get(ctx, k)
		if err != nil {
			return fmt.Errorf("final read of %q: %w", k, err)
		}
		env.Oracle.ObserveFinal(k, v, found)
	}
	return nil
}
