package catalog

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/obs"
	"alohadb/internal/obs/clusterview"
	"alohadb/internal/scenario"
)

// Multi-tenant mix: three tenants with very different profiles share one
// cluster — gold (light, latency-sensitive), silver (moderate), and
// bronze (heavy, hot-keyed). Each tenant gets its own submit-latency SLO,
// and the cluster is asserted through the same clusterview scrape an
// operator would use: every server reachable via its ops listener, the
// commit frontier advancing, zero active stalls.
type tenant struct {
	name    string
	keys    int
	writers int
	// pause is the max inter-op think time; smaller = heavier load.
	pause time.Duration
	slo   time.Duration
}

var tenants = []tenant{
	{name: "gold", keys: 8, writers: 2, pause: 3 * time.Millisecond, slo: 400 * time.Millisecond},
	{name: "silver", keys: 8, writers: 2, pause: 1500 * time.Microsecond, slo: 600 * time.Millisecond},
	{name: "bronze", keys: 4, writers: 4, pause: 600 * time.Microsecond, slo: 800 * time.Millisecond},
}

func registerTenants(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "tenant-mix",
		Summary: "three-tenant mixed load with per-tenant p99 SLOs asserted via clusterview scrape",
		Attrs:   []string{"contention", "soak", "smoke", "obs"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("tenant-append", appendTag)
			return scenario.EnvConfig{
				Servers:       3,
				EpochDuration: 2 * time.Millisecond,
				NetLatency:    100 * time.Microsecond,
				NetJitter:     50 * time.Microsecond,
				Registry:      reg,
				Retention:     16,
				Skew:          &obs.SkewConfig{SampleEvery: 4, TopK: 16},
				Ops:           true,
			}
		},
		Run: runTenantMix,
	})
}

func tenantKey(t tenant, j int) kv.Key {
	return kv.Key(fmt.Sprintf("ten:%s:k%02d", t.name, j))
}

func runTenantMix(ctx context.Context, env *scenario.Env) error {
	before := env.Scraper().Scrape(ctx)
	deadline := time.Now().Add(env.Window)

	lats := make(map[string]*latencies, len(tenants))
	for _, t := range tenants {
		lats[t.name] = newLatencies()
	}
	var (
		tagMu  sync.Mutex
		tagSeq int
	)

	var wg sync.WaitGroup
	client := 0
	for ti, t := range tenants {
		lat := lats[t.name]
		for w := 0; w < t.writers; w++ {
			wg.Add(1)
			client++
			go func(t tenant, seed int64, cli int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(env.Seed*99991 + seed))
				srv := env.Cluster.Server(cli % env.Cluster.NumServers())
				for time.Now().Before(deadline) && ctx.Err() == nil {
					time.Sleep(time.Duration(rng.Int63n(int64(t.pause))))
					tagMu.Lock()
					tagSeq++
					tag := fmt.Sprintf("m%d", tagSeq)
					tagMu.Unlock()
					k := tenantKey(t, rng.Intn(t.keys))
					env.Oracle.Begin(tag, []kv.Key{k})
					sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
					start := time.Now()
					results, _, err := srv.SubmitBatch(sctx, []core.Txn{{Writes: []core.Write{
						{Key: k, Functor: functor.User("tenant-append", []byte(tag+";"), nil)},
					}}})
					lat.observe(time.Since(start))
					cancel()
					var res core.TxnResult
					if err == nil {
						res = results[0]
					}
					finishSubmit(env.Oracle, tag, res, err)
					// Occasionally read back own tenant's keys for the
					// oracle's monotonic-session checks.
					if rng.Float64() < 0.2 {
						rkeys := []kv.Key{tenantKey(t, rng.Intn(t.keys)), tenantKey(t, rng.Intn(t.keys))}
						rctx, rcancel := context.WithTimeout(ctx, 2*time.Second)
						vals, snap, rerr := srv.ReadMany(rctx, rkeys)
						rcancel()
						if rerr == nil {
							env.Oracle.Observe(cli, snap, rkeys, vals)
						}
					}
				}
			}(t, int64(ti*100+w), client)
		}
	}
	wg.Wait()

	if err := settle(ctx, env); err != nil {
		return err
	}
	var all []kv.Key
	for _, t := range tenants {
		for j := 0; j < t.keys; j++ {
			all = append(all, tenantKey(t, j))
		}
	}
	if err := observeFinals(ctx, env, all); err != nil {
		return err
	}

	// The operator's view: one scrape across every ops listener, deltas
	// against the pre-workload snapshot.
	after := env.Scraper().Scrape(ctx)
	d := clusterview.Delta(before, after)
	env.Logf("clusterview: %d/%d servers reachable, commit frontier %d..%d, +%.0f txns committed",
		after.ReachableServers, env.Cluster.NumServers(),
		after.MinCommittedEpoch, after.MaxCommittedEpoch, d.AggTxnsCommitted)
	if after.ReachableServers != env.Cluster.NumServers() {
		return fmt.Errorf("scrape reached %d of %d servers", after.ReachableServers, env.Cluster.NumServers())
	}
	if after.MinCommittedEpoch <= before.MinCommittedEpoch {
		return fmt.Errorf("commit frontier did not advance (%d -> %d)", before.MinCommittedEpoch, after.MinCommittedEpoch)
	}
	if d.AggTxnsCommitted <= 0 {
		return fmt.Errorf("scrape saw no committed transactions during the window")
	}
	if after.ActiveStalls != 0 {
		return fmt.Errorf("scrape saw %d active stalls", after.ActiveStalls)
	}

	for _, t := range tenants {
		if err := requireP99(env, "tenant "+t.name, lats[t.name], t.slo); err != nil {
			return err
		}
	}
	_, committed, _, _, _ := env.Oracle.Counts()
	if committed == 0 {
		return fmt.Errorf("no transaction committed in a %s window", env.Window)
	}
	return nil
}
