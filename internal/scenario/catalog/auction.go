package catalog

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/functor"
	"alohadb/internal/kv"
	"alohadb/internal/scenario"
)

// Auction sniping: every writer hammers ONE key with MAX functors — the
// most extreme single-key contention the engine can see, and exactly the
// shape the paper's functor argument is about (a lock-based system would
// serialize on the item's lock; functors commute at the partition). An
// audit append in the same transaction keeps each bid visible to the
// history oracle, and the settled high bid must lie between the largest
// committed bid and the largest bid whose outcome might have applied.
const (
	auctionWriters = 8
	auctionReaders = 4
)

var auctionItem = kv.Key("auction:item")

func registerAuction(r *scenario.Registry) {
	r.MustRegister(&scenario.Scenario{
		Name:    "auction-snipe",
		Summary: "extreme single-key contention: concurrent MAX bids on one item under light chaos",
		Attrs:   []string{"contention", "chaos", "soak", "smoke"},
		Shape: func(p scenario.Params) scenario.EnvConfig {
			reg := functor.NewRegistry()
			reg.MustRegister("auction-append", appendTag)
			cfg := chaosEnv(3, p.Seed)
			cfg.Registry = reg
			// The item's version chain grows with every bid; retention keeps
			// an hour-long soak from pinning the whole history.
			cfg.Retention = 8
			cfg.Load = func(c *core.Cluster) error {
				return c.Load([]kv.Pair{{Key: auctionItem, Value: kv.EncodeInt64(0)}})
			}
			return cfg
		},
		Run: runAuctionSnipe,
	})
}

func auctionAudit(w int) kv.Key { return kv.Key(fmt.Sprintf("auction:audit:w%d", w)) }

func runAuctionSnipe(ctx context.Context, env *scenario.Env) error {
	lat := newLatencies()
	deadline := time.Now().Add(env.Window)

	var (
		mu           sync.Mutex
		tagSeq       int
		maxCommitted int64
		maxApplied   int64 // committed or indeterminate: anything that may surface
	)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < auctionReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(env.Seed*6151 + int64(r)))
			srv := env.Cluster.Server(r % env.Cluster.NumServers())
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(time.Duration(rng.Intn(2500)) * time.Microsecond)
				// Snapshot two audit trails; the oracle's torn-transaction
				// and monotonic checks run over them.
				a := rng.Intn(auctionWriters)
				b := (a + 1 + rng.Intn(auctionWriters-1)) % auctionWriters
				rkeys := []kv.Key{auctionAudit(a), auctionAudit(b)}
				rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				vals, snap, err := srv.ReadMany(rctx, rkeys)
				cancel()
				if err != nil {
					continue
				}
				env.Oracle.Observe(r, snap, rkeys, vals)
			}
		}(r)
	}

	var writers sync.WaitGroup
	for w := 0; w < auctionWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(env.Seed*31337 + int64(w)))
			srv := env.Cluster.Server(w % env.Cluster.NumServers())
			audit := auctionAudit(w)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				time.Sleep(time.Duration(rng.Intn(800)) * time.Microsecond)
				mu.Lock()
				tagSeq++
				tag := fmt.Sprintf("a%d", tagSeq)
				mu.Unlock()
				bid := int64(1 + rng.Intn(1_000_000))
				txn := core.Txn{Writes: []core.Write{
					{Key: auctionItem, Functor: functor.Max(bid)},
					{Key: audit, Functor: functor.User("auction-append", []byte(tag+";"), nil)},
				}}
				// A sliver of bids requires a key that cannot exist, forcing
				// the second-round abort path while the item stays hot.
				if rng.Float64() < 0.05 {
					txn.Requires = []kv.Key{kv.Key("auction:missing:" + tag)}
				}
				env.Oracle.Begin(tag, []kv.Key{audit})
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				start := time.Now()
				results, _, err := srv.SubmitBatch(sctx, []core.Txn{txn})
				lat.observe(time.Since(start))
				cancel()
				var res core.TxnResult
				if err == nil {
					res = results[0]
				}
				finishSubmit(env.Oracle, tag, res, err)
				mu.Lock()
				switch {
				case err == nil && !res.Aborted:
					if bid > maxCommitted {
						maxCommitted = bid
					}
					if bid > maxApplied {
						maxApplied = bid
					}
				case err == nil && res.AbortIncomplete:
					if bid > maxApplied {
						maxApplied = bid
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if err := settle(ctx, env); err != nil {
		return err
	}
	audits := make([]kv.Key, auctionWriters)
	for w := range audits {
		audits[w] = auctionAudit(w)
	}
	if err := observeFinals(ctx, env, audits); err != nil {
		return err
	}
	v, found, err := env.Cluster.Server(0).Get(ctx, auctionItem)
	if err != nil || !found {
		return fmt.Errorf("final high bid read: err=%v found=%v", err, found)
	}
	final, _ := kv.DecodeInt64(v)

	txns, committed, aborted, indeterminate, _ := env.Oracle.Counts()
	env.Logf("bids: %d (%d committed, %d aborted, %d indeterminate); high bid %d (committed max %d)",
		txns, committed, aborted, indeterminate, final, maxCommitted)
	if final < maxCommitted {
		return fmt.Errorf("high bid %d lost a committed bid of %d", final, maxCommitted)
	}
	if final > maxApplied {
		return fmt.Errorf("high bid %d exceeds every bid that could have applied (max %d)", final, maxApplied)
	}
	if committed == 0 {
		return fmt.Errorf("no bid committed in a %s window", env.Window)
	}
	return requireP99(env, "bid", lat, 400*time.Millisecond)
}
