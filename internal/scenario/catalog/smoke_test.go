package catalog

import (
	"context"
	"strings"
	"testing"
	"time"

	"alohadb/internal/scenario"
)

// TestScenarioSmokeMatrix is the go-test bridge into the scenario
// registry: it runs the whole smoke matrix — the same selection CI's
// `aloha-bench -scenarios smoke` uses — with a short window, so tier-1
// `go test ./...` exercises every smoke scenario end to end.
func TestScenarioSmokeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke matrix boots real clusters; skipped in -short")
	}
	Register()
	scns, err := scenario.Default().Select("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) < 5 {
		t.Fatalf("smoke matrix has only %d scenarios; expected the workloads plus chaos-quick, obs-view, migrate-split", len(scns))
	}
	var out strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	outcomes, err := scenario.Run(ctx, scns, scenario.RunOptions{
		Seed:         1,
		Window:       300 * time.Millisecond,
		Out:          &out,
		ArtifactPath: t.TempDir() + "/artifact.json",
	})
	t.Logf("matrix output:\n%s", out.String())
	if err != nil {
		t.Fatalf("smoke matrix failed: %v", err)
	}
	for _, oc := range outcomes {
		if oc.Stalls != 0 {
			t.Errorf("%s recorded %d stall episodes", oc.Name, oc.Stalls)
		}
	}
}

// TestRegistryShape pins the catalog's selection surface: the attribute
// families the docs advertise actually select something.
func TestRegistryShape(t *testing.T) {
	Register()
	r := scenario.Default()
	for _, expr := range []string{"smoke", "chaos", "bench", "contention", "soak", "migration", "obs", "net"} {
		scns, err := r.Select(expr)
		if err != nil {
			t.Fatalf("Select(%q): %v", expr, err)
		}
		if len(scns) == 0 {
			t.Errorf("Select(%q) matched nothing", expr)
		}
	}
	if s := r.Find("feed-fanout"); s == nil || !s.HasAttr("contention") {
		t.Error("feed-fanout missing or lost its contention attr")
	}
	// The soak family must be exactly the four end-to-end workloads: soak
	// mode divides its budget across this selection.
	soak, err := r.Select("soak")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"feed-fanout": true, "payment-ledger": true, "auction-snipe": true, "tenant-mix": true}
	if len(soak) != len(want) {
		t.Fatalf("soak family = %d scenarios, want %d", len(soak), len(want))
	}
	for _, s := range soak {
		if !want[s.Name] {
			t.Errorf("unexpected soak scenario %q", s.Name)
		}
	}
}
