package scenario

import (
	"context"
	"testing"
)

func mk(name string, attrs ...string) *Scenario {
	return &Scenario{
		Name:  name,
		Attrs: attrs,
		Run:   func(context.Context, *Env) error { return nil },
	}
}

func names(scns []*Scenario) []string {
	out := make([]string, len(scns))
	for i, s := range scns {
		out[i] = s.Name
	}
	return out
}

func TestSelectExpressions(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(mk("feed-fanout", "smoke", "soak", "chaos", "contention"))
	r.MustRegister(mk("auction-snipe", "smoke", "soak", "chaos", "contention"))
	r.MustRegister(mk("figure-6", "bench"))
	r.MustRegister(mk("chaos-crash", "chaos"))
	r.MustRegister(mk("obs-view", "smoke", "obs"))

	cases := []struct {
		expr string
		want []string
	}{
		{"smoke", []string{"auction-snipe", "feed-fanout", "obs-view"}},
		{"attr:smoke", []string{"auction-snipe", "feed-fanout", "obs-view"}},
		{"smoke && chaos", []string{"auction-snipe", "feed-fanout"}},
		{"smoke && !contention", []string{"obs-view"}},
		{"bench || obs", []string{"figure-6", "obs-view"}},
		{"bench, obs", []string{"figure-6", "obs-view"}},
		{"(smoke || bench) && !chaos", []string{"figure-6", "obs-view"}},
		{"auction-*", []string{"auction-snipe"}},
		{"name:figure-?", []string{"figure-6"}},
		{"name:chaos-* || contention", []string{"auction-snipe", "chaos-crash", "feed-fanout"}},
		{"nothing-matches", nil},
	}
	for _, tc := range cases {
		got, err := r.Select(tc.expr)
		if err != nil {
			t.Fatalf("Select(%q): %v", tc.expr, err)
		}
		gotNames := names(got)
		if len(gotNames) != len(tc.want) {
			t.Fatalf("Select(%q) = %v, want %v", tc.expr, gotNames, tc.want)
		}
		for i := range tc.want {
			if gotNames[i] != tc.want[i] {
				t.Fatalf("Select(%q) = %v, want %v", tc.expr, gotNames, tc.want)
			}
		}
	}
}

func TestSelectBadExpressions(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(mk("x", "smoke"))
	for _, expr := range []string{"&& smoke", "smoke &&", "(smoke", "smoke)", "smoke & chaos", "!", "attr:", "name:"} {
		if _, err := r.Select(expr); err == nil {
			t.Errorf("Select(%q): expected error", expr)
		}
	}
	// An empty expression selects nothing rather than erroring.
	got, err := r.Select("")
	if err != nil || len(got) != 0 {
		t.Errorf("Select(\"\") = %v, %v; want empty, nil", names(got), err)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(mk("ok-name", "smoke")); err != nil {
		t.Fatalf("valid register: %v", err)
	}
	if err := r.Register(mk("ok-name", "smoke")); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register(mk("Bad_Name")); err == nil {
		t.Error("invalid name accepted")
	}
	if err := r.Register(mk("other", "Bad Attr")); err == nil {
		t.Error("invalid attr accepted")
	}
	if err := r.Register(&Scenario{Name: "no-body"}); err == nil {
		t.Error("nil Run accepted")
	}
	if s := r.Find("ok-name"); s == nil {
		t.Error("Find missed registered scenario")
	}
}
