// Package scenario is ALOHA-DB's declarative workload registry. Each
// scenario registers a name, a set of attributes (smoke, soak, chaos,
// contention, migration, bench, obs), a cluster shape, and a Run body
// that receives a pre-wired environment: a started cluster, a history
// oracle, per-server watchdogs, and (when the shape asks for them) ops
// HTTP listeners a clusterview scraper can poll. The matrix runner
// selects scenarios by attribute expression ("smoke", "soak && !tcp",
// "name:auction-*") and runs them as one suite — the same bodies power
// the quick per-PR smoke matrix, the nightly soak, and ad-hoc replays
// of a failing seed.
//
// The shape is modeled on Tast's declarative test registry: a scenario
// declares what it needs and the harness owns construction, selection,
// timeouts, and teardown, so adding the N+1th workload is one file in
// the catalog rather than the N+1th hand-rolled cluster builder.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Params carries the per-run knobs a scenario's Shape closure may bake
// into its environment: every random choice must derive from Seed so a
// failing run replays from its artifact alone.
type Params struct {
	// Seed is the run's deterministic seed (workload and fault schedule).
	Seed int64
	// Window is how long the body should drive its workload.
	Window time.Duration
	// Soak is set on nightly long runs; bodies may loosen pacing or SLO
	// thresholds that only make sense over hours.
	Soak bool
}

// Scenario is one registered end-to-end workload.
type Scenario struct {
	// Name uniquely identifies the scenario (lowercase, dash-separated).
	Name string
	// Summary is a one-line description for -scenario-list.
	Summary string
	// Attrs are the selection attributes: smoke (per-PR matrix), soak
	// (nightly long run), chaos, contention, migration, bench, obs.
	Attrs []string
	// Timeout bounds the run beyond the workload window (default 2 min of
	// slack); the runner cancels the body's context when it expires.
	Timeout time.Duration
	// Shape builds the environment config for one run. Nil means the body
	// constructs its own world (ported harnesses that manage several
	// clusters per run); it still receives an Env for seed/window/logging.
	Shape func(p Params) EnvConfig
	// Run drives the workload. A non-nil error fails the scenario; the
	// runner additionally fails it on watchdog stall episodes.
	Run func(ctx context.Context, env *Env) error
}

// HasAttr reports whether the scenario carries the attribute.
func (s *Scenario) HasAttr(a string) bool {
	for _, x := range s.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Registry holds scenarios by name. The package-level Default registry is
// what the catalog populates and the CLI selects from; tests may build
// private registries.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Scenario)}
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a scenario, rejecting duplicates and malformed names or
// attributes (lowercase letters, digits, and dashes only — the selection
// expression grammar depends on it).
func (r *Registry) Register(s *Scenario) error {
	if s == nil || s.Run == nil {
		return fmt.Errorf("scenario: register needs a Run body")
	}
	if !validIdent(s.Name) {
		return fmt.Errorf("scenario: invalid name %q", s.Name)
	}
	for _, a := range s.Attrs {
		if !validIdent(a) {
			return fmt.Errorf("scenario: %s: invalid attribute %q", s.Name, a)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q", s.Name)
	}
	r.byName[s.Name] = s
	return nil
}

// MustRegister is Register, panicking on error (catalog init paths).
func (r *Registry) MustRegister(s *Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// All returns every scenario sorted by name.
func (r *Registry) All() []*Scenario {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Scenario, 0, len(r.byName))
	for _, s := range r.byName {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the named scenario, or nil.
func (r *Registry) Find(name string) *Scenario {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Select returns the scenarios matching the attribute expression, sorted
// by name. See CompileExpr for the grammar.
func (r *Registry) Select(expr string) ([]*Scenario, error) {
	m, err := CompileExpr(expr)
	if err != nil {
		return nil, err
	}
	var out []*Scenario
	for _, s := range r.All() {
		if m(s) {
			out = append(out, s)
		}
	}
	return out, nil
}

var defaultRegistry = NewRegistry()

// Default returns the package-level registry the catalog populates.
func Default() *Registry { return defaultRegistry }

// Register adds a scenario to the default registry.
func Register(s *Scenario) error { return defaultRegistry.Register(s) }

// MustRegister adds a scenario to the default registry, panicking on error.
func MustRegister(s *Scenario) { defaultRegistry.MustRegister(s) }

// AttrsString renders the attribute list for tables and artifacts.
func AttrsString(attrs []string) string { return strings.Join(attrs, ",") }
