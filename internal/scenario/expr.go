package scenario

import (
	"fmt"
	"path"
	"strings"
)

// Matcher decides whether a scenario is selected by an expression.
type Matcher func(s *Scenario) bool

// CompileExpr compiles a selection expression into a matcher. The grammar
// is a small boolean language over attribute and name terms:
//
//	expr   = or
//	or     = and { ("||" | ",") and }
//	and    = unary { "&&" unary }
//	unary  = "!" unary | "(" expr ")" | term
//	term   = "attr:" IDENT | "name:" GLOB | IDENT-or-GLOB
//
// A bare term matches a scenario when it equals one of its attributes or
// when, interpreted as a path glob, it matches the scenario name — so
// "smoke" selects the smoke matrix and "auction-*" selects by name.
// Commas are a convenience alias for "||". An empty expression matches
// nothing.
func CompileExpr(expr string) (Matcher, error) {
	toks, err := lexExpr(expr)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	if len(toks) == 0 {
		return func(*Scenario) bool { return false }, nil
	}
	m, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("scenario: unexpected %q in expression %q", p.toks[p.pos], expr)
	}
	return m, nil
}

func lexExpr(expr string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '!' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '&' || c == '|':
			if i+1 >= len(expr) || expr[i+1] != c {
				return nil, fmt.Errorf("scenario: single %q in expression %q", string(c), expr)
			}
			toks = append(toks, string(c)+string(c))
			i += 2
		default:
			j := i
			for j < len(expr) && !strings.ContainsRune(" \t\n()!&|,", rune(expr[j])) {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		}
	}
	return toks, nil
}

type exprParser struct {
	toks []string
	pos  int
}

func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *exprParser) parseOr() (Matcher, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "||" || p.peek() == "," {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(s *Scenario) bool { return l(s) || r(s) }
	}
	return left, nil
}

func (p *exprParser) parseAnd() (Matcher, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&&" {
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(s *Scenario) bool { return l(s) && r(s) }
	}
	return left, nil
}

func (p *exprParser) parseUnary() (Matcher, error) {
	switch p.peek() {
	case "":
		return nil, fmt.Errorf("scenario: expression ended where a term was expected")
	case "!":
		p.pos++
		m, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(s *Scenario) bool { return !m(s) }, nil
	case "(":
		p.pos++
		m, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("scenario: missing ) in expression")
		}
		p.pos++
		return m, nil
	case ")", "&&", "||", ",":
		return nil, fmt.Errorf("scenario: unexpected %q where a term was expected", p.peek())
	}
	term := p.toks[p.pos]
	p.pos++
	return compileTerm(term)
}

func compileTerm(term string) (Matcher, error) {
	switch {
	case strings.HasPrefix(term, "attr:"):
		a := strings.TrimPrefix(term, "attr:")
		if a == "" {
			return nil, fmt.Errorf("scenario: empty attr: term")
		}
		return func(s *Scenario) bool { return s.HasAttr(a) }, nil
	case strings.HasPrefix(term, "name:"):
		g := strings.TrimPrefix(term, "name:")
		if g == "" {
			return nil, fmt.Errorf("scenario: empty name: term")
		}
		if _, err := path.Match(g, "probe"); err != nil {
			return nil, fmt.Errorf("scenario: bad name glob %q", g)
		}
		return func(s *Scenario) bool {
			ok, _ := path.Match(g, s.Name)
			return ok
		}, nil
	default:
		// Bare term: attribute equality, or a name glob. A malformed glob
		// still works as a plain attribute term.
		globOK := true
		if _, err := path.Match(term, "probe"); err != nil {
			globOK = false
		}
		return func(s *Scenario) bool {
			if s.HasAttr(term) {
				return true
			}
			if globOK {
				ok, _ := path.Match(term, s.Name)
				return ok
			}
			return false
		}, nil
	}
}
