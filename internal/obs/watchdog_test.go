package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestWatchdogDetectAndClear drives a fake progress signal through a stall
// and recovery and checks the detected/cleared event pair, the snapshot
// capture, and Health.
func TestWatchdogDetectAndClear(t *testing.T) {
	var progress atomic.Uint64
	var captured atomic.Int32
	var mu sync.Mutex
	var events []Event

	w := NewWatchdog(WatchdogConfig{
		Server:    7,
		Threshold: 30 * time.Millisecond,
		Poll:      5 * time.Millisecond,
		Progress:  progress.Load,
		Capture: func(ctx context.Context) *StallSnapshot {
			captured.Add(1)
			return &StallSnapshot{
				CommittedEpoch:   4,
				CurrentEpoch:     5,
				UnreachablePeers: []int{2},
			}
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	w.Start()
	defer w.Stop()

	// Healthy while progress advances.
	progress.Store(1)
	time.Sleep(15 * time.Millisecond)
	if w.Active() {
		t.Fatal("active with fresh progress")
	}

	// Freeze progress: a stall must be detected and captured exactly once.
	if !waitFor(t, time.Second, w.Active) {
		t.Fatal("stall never detected")
	}
	if ok, reason := w.Health(); ok || !strings.Contains(reason, "epoch stall") {
		t.Fatalf("Health = %v %q during stall", ok, reason)
	}
	time.Sleep(30 * time.Millisecond) // stay stalled across more polls
	if got := captured.Load(); got != 1 {
		t.Fatalf("captured %d snapshots for one episode", got)
	}
	snaps := w.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshot ring has %d entries", len(snaps))
	}
	s := snaps[0]
	if s.Server != 7 || s.CommittedEpoch != 4 || len(s.UnreachablePeers) != 1 || s.UnreachablePeers[0] != 2 {
		t.Fatalf("snapshot fields: %+v", s)
	}
	if s.Age < 30*time.Millisecond || s.Threshold != 30*time.Millisecond {
		t.Fatalf("snapshot age/threshold: %v/%v", s.Age, s.Threshold)
	}
	if s.Goroutines == 0 || !strings.Contains(s.GoroutineProfile, "goroutine") {
		t.Fatal("goroutine profile missing")
	}

	// Progress resumes: the episode clears.
	progress.Store(2)
	if !waitFor(t, time.Second, func() bool { return !w.Active() }) {
		t.Fatal("stall never cleared")
	}
	if ok, _ := w.Health(); !ok {
		t.Fatal("unhealthy after clear")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0].Kind != EventStallDetected || events[1].Kind != EventStallCleared {
		t.Fatalf("events = %+v", events)
	}
	if events[1].Age <= 0 {
		t.Fatalf("cleared event has no episode duration: %+v", events[1])
	}
}

// TestWatchdogRingBound checks the flight-recorder ring stays bounded
// across many episodes.
func TestWatchdogRingBound(t *testing.T) {
	var progress atomic.Uint64
	w := NewWatchdog(WatchdogConfig{
		Threshold:    5 * time.Millisecond,
		Poll:         time.Millisecond,
		RingSize:     3,
		Progress:     progress.Load,
		ProfileBytes: -1, // keep the test cheap
	})
	w.Start()
	defer w.Stop()
	for i := 0; i < 6; i++ {
		if !waitFor(t, time.Second, w.Active) {
			t.Fatalf("episode %d never detected", i)
		}
		progress.Add(1)
		if !waitFor(t, time.Second, func() bool { return !w.Active() }) {
			t.Fatalf("episode %d never cleared", i)
		}
	}
	if n := len(w.Snapshots()); n != 3 {
		t.Fatalf("ring has %d snapshots, want 3", n)
	}
	st := w.Status()
	if st.StallsTotal != 6 {
		t.Fatalf("stalls_total = %d, want 6", st.StallsTotal)
	}
}

// TestWatchdogHandler pins the /debug/stall JSON document shape.
func TestWatchdogHandler(t *testing.T) {
	var progress atomic.Uint64
	w := NewWatchdog(WatchdogConfig{
		Server:       3,
		Threshold:    10 * time.Millisecond,
		Poll:         2 * time.Millisecond,
		Progress:     progress.Load,
		ProfileBytes: -1,
	})
	w.Start()
	defer w.Stop()
	if !waitFor(t, time.Second, w.Active) {
		t.Fatal("stall never detected")
	}

	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stall", nil))
	var st StallStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if !st.Active || st.StallsTotal != 1 || len(st.Snapshots) != 1 || len(st.Events) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Snapshots[0].Server != 3 {
		t.Fatalf("snapshot server = %d", st.Snapshots[0].Server)
	}
	if st.Events[0].Kind != EventStallDetected {
		t.Fatalf("event kind = %q", st.Events[0].Kind)
	}
}

// TestWatchdogNil checks the disabled (nil) watchdog is inert and free.
func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	w.Start()
	w.Stop()
	if w.Active() {
		t.Fatal("nil watchdog active")
	}
	if ok, _ := w.Health(); !ok {
		t.Fatal("nil watchdog unhealthy")
	}
	if w.Snapshots() != nil || w.Events() != nil || w.MetricFamilies() != nil {
		t.Fatal("nil watchdog returned data")
	}
	if NewWatchdog(WatchdogConfig{}) != nil {
		t.Fatal("config without threshold/progress must disable the watchdog")
	}
	if n := testing.AllocsPerRun(1000, func() {
		w.Active()
		_, _ = w.Health()
	}); n != 0 {
		t.Fatalf("nil watchdog allocates %v/op", n)
	}
}

// BenchmarkWatchdogDisabled backs the CI "0 allocs/op" guard for the
// disabled watchdog on the hot query path.
func BenchmarkWatchdogDisabled(b *testing.B) {
	var w *Watchdog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Active() {
			b.Fatal("active")
		}
	}
}
