package clusterview

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"alohadb/internal/obs/tsdb"
)

// This file merges the per-server flight-recorder rings
// (/debug/timeseries, internal/obs/tsdb) into cluster-wide series and
// anomaly callouts. Servers sample on their own clocks, restart at
// different times, and drop out mid-scrape, so the merge aligns samples
// onto shared interval buckets and only emits buckets at least one
// server actually reported — a missing server narrows a point's
// contributor count, it never fabricates data.

// ClusterPoint is one aligned sample of a merged series.
type ClusterPoint struct {
	UnixMS int64   `json:"unix_ms"`
	Value  float64 `json:"value"`
	// Servers is how many servers contributed to this bucket; a count
	// below the reachable-server total marks a partial (ragged) point.
	Servers int `json:"servers"`
}

// ClusterSeries is one metric merged across servers: rates sum, gauges
// and quantiles take the cluster-worst (max).
type ClusterSeries struct {
	Name   string         `json:"name"`
	Kind   string         `json:"kind"`
	Unit   string         `json:"unit,omitempty"`
	Points []ClusterPoint `json:"points"`
}

// Last returns the newest point's value (NaN when empty).
func (s ClusterSeries) Last() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	return s.Points[len(s.Points)-1].Value
}

// ClusterAnnotation is one server's anomaly window lifted into the
// cluster view: the local annotation plus the cluster-wide critical-path
// attribution joined from the merged epoch paths over the window's epoch
// range.
type ClusterAnnotation struct {
	// Server is the annotating server's ID.
	Server int `json:"server"`
	tsdb.Annotation
	// ClusterGatingServer/Stage name who gated the cluster's commits
	// during the window, per the merged epoch critical paths (-1/empty
	// when no merged path covers the window).
	ClusterGatingServer int    `json:"cluster_gating_server"`
	ClusterGatingStage  string `json:"cluster_gating_stage,omitempty"`
}

// maxClusterAnnotations caps the anomaly roll-up in a snapshot.
const maxClusterAnnotations = 64

// MergeTimeseries aligns per-server recorder documents onto shared
// interval buckets and merges them per series name. Buckets no server
// reported are absent, so ragged rings (servers with different sample
// counts, or one unreachable) yield shorter series rather than invented
// points.
func MergeTimeseries(docs []tsdb.Doc) []ClusterSeries {
	var intervalMS int64
	for _, d := range docs {
		if d.IntervalMS > intervalMS {
			intervalMS = d.IntervalMS
		}
	}
	if intervalMS <= 0 {
		return nil
	}
	type agg struct {
		sum, max float64
		servers  int
	}
	type seriesAgg struct {
		kind, unit string
		buckets    map[int64]*agg
	}
	var order []string
	byName := make(map[string]*seriesAgg)
	for _, d := range docs {
		for _, sd := range d.Series {
			sa := byName[sd.Name]
			if sa == nil {
				sa = &seriesAgg{kind: sd.Kind, unit: sd.Unit, buckets: make(map[int64]*agg)}
				byName[sd.Name] = sa
				order = append(order, sd.Name)
			}
			for i, v := range sd.Samples {
				if i >= len(d.Ticks) || math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				b := d.Ticks[i] / intervalMS
				a := sa.buckets[b]
				if a == nil {
					a = &agg{max: math.Inf(-1)}
					sa.buckets[b] = a
				}
				a.sum += v
				if v > a.max {
					a.max = v
				}
				a.servers++
			}
		}
	}
	out := make([]ClusterSeries, 0, len(order))
	for _, name := range order {
		sa := byName[name]
		cs := ClusterSeries{Name: name, Kind: sa.kind, Unit: sa.unit}
		keys := make([]int64, 0, len(sa.buckets))
		for b := range sa.buckets {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, b := range keys {
			a := sa.buckets[b]
			v := a.max
			if sa.kind == "rate" {
				// Rates are per-server contributions to cluster throughput;
				// gauges and quantiles report the cluster-worst server.
				v = a.sum
			}
			cs.Points = append(cs.Points, ClusterPoint{UnixMS: b * intervalMS, Value: v, Servers: a.servers})
		}
		out = append(out, cs)
	}
	return out
}

// mergeTimeseries rebuilds the snapshot's merged series and anomaly
// roll-up from the scraped recorder documents (idempotent: Delta re-runs
// it after re-merging epoch paths).
func mergeTimeseries(snap *ClusterSnapshot) {
	snap.Timeseries = nil
	snap.Anomalies = nil
	var docs []tsdb.Doc
	for _, sv := range snap.Servers {
		if sv.Timeseries != nil {
			docs = append(docs, *sv.Timeseries)
		}
	}
	if len(docs) == 0 {
		return
	}
	snap.Timeseries = MergeTimeseries(docs)
	for _, d := range docs {
		for _, a := range d.Annotations {
			ca := ClusterAnnotation{Server: d.Server, Annotation: a}
			ca.ClusterGatingServer, ca.ClusterGatingStage = gatingForWindow(snap.EpochPaths, a.FromEpoch, a.ToEpoch)
			snap.Anomalies = append(snap.Anomalies, ca)
		}
	}
	sort.SliceStable(snap.Anomalies, func(i, j int) bool {
		return snap.Anomalies[i].StartMS < snap.Anomalies[j].StartMS
	})
	if len(snap.Anomalies) > maxClusterAnnotations {
		snap.Anomalies = snap.Anomalies[len(snap.Anomalies)-maxClusterAnnotations:]
	}
}

// gatingForWindow names the dominant (server, stage) pair among the
// merged epoch critical paths inside [from, to]. (-1, "") when no merged
// path covers the window.
func gatingForWindow(paths []EpochPath, from, to uint64) (int, string) {
	if from == 0 || len(paths) == 0 {
		return -1, ""
	}
	type key struct {
		server int
		stage  string
	}
	counts := make(map[key]int)
	for _, p := range paths {
		if p.Epoch < from || (to >= from && p.Epoch > to) || p.GatingStage == "" {
			continue
		}
		counts[key{p.GatingServer, p.GatingStage}]++
	}
	best, bestN := key{server: -1}, 0
	for k, n := range counts {
		if n > bestN || (n == bestN && k.server < best.server) {
			best, bestN = k, n
		}
	}
	if bestN == 0 {
		return -1, ""
	}
	return best.server, best.stage
}

// sparkRunes are the eighth-block ramp used for inline sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width unicode strip, downsampling
// by bucket means; gaps (NaN) render as spaces. Empty input yields an
// empty string.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	cells := make([]float64, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for c := 0; c < width; c++ {
		start := c * len(values) / width
		end := (c + 1) * len(values) / width
		sum, n := 0.0, 0
		for _, v := range values[start:end] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			cells[c] = math.NaN()
			continue
		}
		cells[c] = sum / float64(n)
		if cells[c] < lo {
			lo = cells[c]
		}
		if cells[c] > hi {
			hi = cells[c]
		}
	}
	var sb strings.Builder
	for _, v := range cells {
		if math.IsNaN(v) {
			sb.WriteByte(' ')
			continue
		}
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// seriesValues extracts a merged series' values for sparkline rendering.
func seriesValues(s ClusterSeries) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// RenderAnomalies writes the active-anomaly callouts (and the most
// recent closed windows up to n) under a dashboard frame.
func RenderAnomalies(w io.Writer, snap ClusterSnapshot, n int) {
	if len(snap.Anomalies) == 0 {
		return
	}
	shown := 0
	for i := len(snap.Anomalies) - 1; i >= 0 && shown < n; i-- {
		a := snap.Anomalies[i]
		if !a.Active && shown > 0 {
			continue // always show actives; at most one recent closed window
		}
		state := "cleared"
		if a.Active {
			state = "ACTIVE"
		}
		fmt.Fprintf(w, "anomaly [%s] server %d %s %s: baseline %s -> %s", state, a.Server, a.Series, a.Kind,
			fmtVal(a.Baseline), fmtVal(a.Observed))
		if a.FromEpoch > 0 {
			fmt.Fprintf(w, " (epochs %d-%d", a.FromEpoch, a.ToEpoch)
			switch {
			case a.ClusterGatingStage != "":
				fmt.Fprintf(w, ", gating server %d %s)", a.ClusterGatingServer, a.ClusterGatingStage)
			case a.GatingStage != "":
				fmt.Fprintf(w, ", local gating %s)", a.GatingStage)
			default:
				fmt.Fprint(w, ")")
			}
		}
		fmt.Fprintln(w)
		shown++
	}
}

// RenderTimeseries writes the -timeseries drill-down: every merged
// series as a sparkline row with its latest value, then every anomaly
// window.
func RenderTimeseries(w io.Writer, snap ClusterSnapshot, width int) {
	if width <= 0 {
		width = 48
	}
	if len(snap.Timeseries) == 0 {
		fmt.Fprintln(w, "no timeseries: servers expose no /debug/timeseries (recorder disabled?)")
		return
	}
	fmt.Fprintf(w, "%-28s %-*s %12s %8s\n", "series", width, "trend (oldest -> newest)", "last", "unit")
	for _, s := range snap.Timeseries {
		fmt.Fprintf(w, "%-28s %-*s %12s %8s\n", s.Name, width, Sparkline(seriesValues(s), width), fmtVal(s.Last()), s.Unit)
	}
	if len(snap.Anomalies) > 0 {
		fmt.Fprintln(w)
		RenderAnomalies(w, snap, len(snap.Anomalies))
	}
}

func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
