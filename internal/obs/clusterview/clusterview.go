package clusterview

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/metrics"
	"alohadb/internal/obs"
	"alohadb/internal/obs/journal"
	"alohadb/internal/obs/tsdb"
)

// ServerStatus is one server's slice of a cluster snapshot, distilled from
// its operator endpoints.
type ServerStatus struct {
	Addr      string `json:"addr"`
	Reachable bool   `json:"reachable"`
	Err       string `json:"err,omitempty"`

	// Readiness per /healthz (false on an active stall or stale WAL fsync).
	Healthy      bool   `json:"healthy"`
	HealthReason string `json:"health_reason,omitempty"`

	CommittedEpoch uint64 `json:"committed_epoch"`
	CurrentEpoch   uint64 `json:"current_epoch"`

	// PlacementGen is the server's ownership-map generation; servers
	// disagreeing mid-scrape are converging on a live migration.
	PlacementGen uint64 `json:"placement_generation,omitempty"`

	// Migration roll-up from the rebalancer families: moves in flight
	// (queued plus pending retirements) and the last handoff's epoch. A
	// non-zero inflight with an old handoff means a migration is stuck.
	MigrationInflight    float64 `json:"migration_inflight,omitempty"`
	MigrationLastHandoff uint64  `json:"migration_last_handoff_epoch,omitempty"`

	// ServerID is the journal's server number (from /debug/epochs); -1
	// when the endpoint is absent.
	ServerID int `json:"server_id,omitempty"`
	// GatingEpochs/GatingStage summarize the merged critical paths: how
	// many committed epochs this server gated, and its most common gating
	// stage. Filled by Scrape/Delta after the cross-server merge.
	GatingEpochs int    `json:"gating_epochs,omitempty"`
	GatingStage  string `json:"gating_stage,omitempty"`

	// Epochs is the raw journal document for the cross-server merge; kept
	// out of the JSON snapshot (EpochPaths carries the distilled view).
	Epochs *journal.Doc `json:"-"`

	// Timeseries is the raw flight-recorder document (/debug/timeseries)
	// for the cross-server merge; like Epochs it stays out of the JSON
	// snapshot (ClusterSnapshot.Timeseries carries the merged view).
	Timeseries *tsdb.Doc `json:"-"`

	TxnsCommitted float64 `json:"txns_committed"`
	TxnsAborted   float64 `json:"txns_aborted"`
	// AbortReasons breaks TxnsAborted down by the taxonomy labels of
	// aloha_txn_abort_total{reason=...}; zero-count reasons are omitted.
	AbortReasons map[string]float64 `json:"abort_reasons,omitempty"`
	// TxnRate is commits/second between two scrapes; zero on a one-shot
	// snapshot (see Delta).
	TxnRate float64 `json:"txn_rate,omitempty"`

	// Per-stage p99s in seconds, from the cumulative stage histograms.
	P99Install float64 `json:"p99_install_seconds"`
	P99Wait    float64 `json:"p99_wait_seconds"`
	P99Compute float64 `json:"p99_compute_seconds"`

	Goroutines float64 `json:"goroutines,omitempty"`
	HeapBytes  float64 `json:"heap_bytes,omitempty"`

	// Stall roll-up from /debug/stall (absent when the watchdog is off).
	StallActive      bool   `json:"stall_active"`
	StallsTotal      uint64 `json:"stalls_total,omitempty"`
	UnreachablePeers []int  `json:"unreachable_peers,omitempty"`

	// Skew roll-up from /debug/hotkeys (absent when profiling is off).
	SkewImbalance float64      `json:"skew_imbalance,omitempty"`
	HotKeys       []obs.HotKey `json:"hot_keys,omitempty"`
}

// ClusterSnapshot merges every server's status into the cluster view.
type ClusterSnapshot struct {
	At      time.Time      `json:"at"`
	Servers []ServerStatus `json:"servers"`

	ReachableServers int `json:"reachable_servers"`

	// MinCommittedEpoch is the cluster's visibility floor: the epoch every
	// reachable server has committed (the paper's global commit frontier).
	MinCommittedEpoch uint64 `json:"min_committed_epoch"`
	MaxCommittedEpoch uint64 `json:"max_committed_epoch"`

	AggTxnsCommitted float64 `json:"agg_txns_committed"`
	AggTxnRate       float64 `json:"agg_txn_rate,omitempty"`

	// ActiveStalls counts servers whose watchdog currently declares a
	// stall; unreachable servers are counted separately above.
	ActiveStalls int `json:"active_stalls"`

	// EpochPaths are the committed epochs' critical paths, merged across
	// every reachable server's /debug/epochs journal (newest last, capped
	// at maxEpochPaths).
	EpochPaths []EpochPath `json:"epoch_paths,omitempty"`

	// Timeseries are the flight-recorder rings merged across every
	// reachable server's /debug/timeseries document, and Anomalies the
	// union of their level-shift annotations cross-linked to the merged
	// critical paths.
	Timeseries []ClusterSeries     `json:"timeseries,omitempty"`
	Anomalies  []ClusterAnnotation `json:"anomalies,omitempty"`
}

// maxEpochPaths caps how many merged critical paths a snapshot carries:
// the newest are the interesting ones, and the ring can hold hundreds.
const maxEpochPaths = 128

// Scraper polls a set of ops addresses (the -metrics-addr listeners).
type Scraper struct {
	// Addrs are host:port ops endpoints, one per server.
	Addrs []string
	// Client overrides the HTTP client (default: 2s overall timeout).
	Client *http.Client
}

func (s *Scraper) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Scrape polls every server concurrently and merges the results. Per-server
// failures degrade that server's entry (Reachable=false) rather than
// failing the snapshot — a dashboard must keep rendering through the very
// outages it exists to show.
func (s *Scraper) Scrape(ctx context.Context) ClusterSnapshot {
	snap := ClusterSnapshot{At: time.Now(), Servers: make([]ServerStatus, len(s.Addrs))}
	var wg sync.WaitGroup
	for i, addr := range s.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			snap.Servers[i] = s.scrapeOne(ctx, addr)
		}(i, addr)
	}
	wg.Wait()

	first := true
	for _, sv := range snap.Servers {
		if !sv.Reachable {
			continue
		}
		snap.ReachableServers++
		snap.AggTxnsCommitted += sv.TxnsCommitted
		if sv.StallActive {
			snap.ActiveStalls++
		}
		if first || sv.CommittedEpoch < snap.MinCommittedEpoch {
			snap.MinCommittedEpoch = sv.CommittedEpoch
		}
		if first || sv.CommittedEpoch > snap.MaxCommittedEpoch {
			snap.MaxCommittedEpoch = sv.CommittedEpoch
		}
		first = false
	}
	mergeEpochPaths(&snap)
	mergeTimeseries(&snap)
	return snap
}

// mergeEpochPaths computes the snapshot's cluster-wide critical paths from
// the scraped journal documents and fills each server's gating summary.
func mergeEpochPaths(snap *ClusterSnapshot) {
	var docs []journal.Doc
	for _, sv := range snap.Servers {
		if sv.Epochs != nil {
			docs = append(docs, *sv.Epochs)
		}
	}
	if len(docs) == 0 {
		return
	}
	paths := MergeEpochs(docs...)
	if len(paths) > maxEpochPaths {
		paths = paths[len(paths)-maxEpochPaths:]
	}
	snap.EpochPaths = paths
	summary := GatingSummary(paths)
	for i := range snap.Servers {
		sv := &snap.Servers[i]
		if sv.Epochs == nil {
			continue
		}
		if g, ok := summary[sv.ServerID]; ok {
			sv.GatingEpochs = g.Epochs
			sv.GatingStage = g.Stage
		}
	}
}

func (s *Scraper) scrapeOne(ctx context.Context, addr string) ServerStatus {
	st := ServerStatus{Addr: addr}
	body, _, err := s.get(ctx, addr, "/metrics")
	if err != nil {
		st.Err = err.Error()
		return st
	}
	m, err := ParseMetrics(strings.NewReader(string(body)))
	if err != nil {
		st.Err = err.Error()
		return st
	}
	st.Reachable = true

	if v, ok := m.Value(core.FamCommittedEpoch); ok {
		st.CommittedEpoch = uint64(v)
	}
	if v, ok := m.Value(core.FamServerEpoch); ok {
		st.CurrentEpoch = uint64(v)
	}
	if v, ok := m.Value(core.FamPlacementGen); ok {
		st.PlacementGen = uint64(v)
	}
	st.TxnsCommitted, _ = m.Value(core.FamTxnsCommitted)
	st.TxnsAborted, _ = m.Value(core.FamTxnsAborted)
	for reason, n := range m.ByLabel(core.FamTxnAbortReason, "reason") {
		if n <= 0 {
			continue
		}
		if st.AbortReasons == nil {
			st.AbortReasons = make(map[string]float64)
		}
		st.AbortReasons[reason] = n
	}
	st.P99Install, _ = m.Quantile(core.FamStageInstall, 0.99)
	st.P99Wait, _ = m.Quantile(core.FamStageWait, 0.99)
	st.P99Compute, _ = m.Quantile(core.FamStageCompute, 0.99)
	st.Goroutines, _ = m.Value(metrics.FamRuntimeGoroutines)
	st.HeapBytes, _ = m.Value(metrics.FamRuntimeHeapBytes)
	st.MigrationInflight, _ = m.Value(core.FamMigrationInflight)
	if v, ok := m.Value(core.FamMigrationLastHandoff); ok {
		st.MigrationLastHandoff = uint64(v)
	}

	// Health: non-200 means not ready; the body carries the reasons.
	if body, code, err := s.get(ctx, addr, "/healthz"); err == nil {
		st.Healthy = code == http.StatusOK
		if !st.Healthy {
			st.HealthReason = strings.TrimSpace(string(body))
		}
	}

	// Stall flight recorder (optional endpoint).
	if body, code, err := s.get(ctx, addr, "/debug/stall"); err == nil && code == http.StatusOK {
		var stall obs.StallStatus
		if json.Unmarshal(body, &stall) == nil {
			st.StallActive = stall.Active
			st.StallsTotal = stall.StallsTotal
			if n := len(stall.Snapshots); n > 0 {
				st.UnreachablePeers = stall.Snapshots[n-1].UnreachablePeers
			}
		}
	}

	// Hot-key profiler (optional endpoint).
	if body, code, err := s.get(ctx, addr, "/debug/hotkeys"); err == nil && code == http.StatusOK {
		var skew obs.SkewSnapshot
		if json.Unmarshal(body, &skew) == nil {
			st.SkewImbalance = skew.Imbalance
			if len(skew.TopKeys) > 5 {
				skew.TopKeys = skew.TopKeys[:5]
			}
			st.HotKeys = skew.TopKeys
		}
	}

	// Epoch lifecycle journal (optional endpoint): the raw document feeds
	// the cross-server critical-path merge.
	st.ServerID = -1
	if body, code, err := s.get(ctx, addr, "/debug/epochs"); err == nil && code == http.StatusOK {
		var doc journal.Doc
		if json.Unmarshal(body, &doc) == nil && (len(doc.Records) > 0 || len(doc.EM) > 0 || doc.Ring > 0) {
			st.Epochs = &doc
			st.ServerID = doc.Server
		}
	}

	// Flight-recorder rings (optional endpoint): the raw document feeds
	// the cross-server timeseries merge.
	if body, code, err := s.get(ctx, addr, "/debug/timeseries"); err == nil && code == http.StatusOK {
		var doc tsdb.Doc
		if json.Unmarshal(body, &doc) == nil && len(doc.Series) > 0 {
			st.Timeseries = &doc
		}
	}
	return st
}

func (s *Scraper) get(ctx context.Context, addr, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

// Delta fills cur's per-server and aggregate commit rates from a previous
// snapshot of the same address set, matching servers by address.
func Delta(prev, cur ClusterSnapshot) ClusterSnapshot {
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return cur
	}
	prevBy := make(map[string]ServerStatus, len(prev.Servers))
	for _, sv := range prev.Servers {
		prevBy[sv.Addr] = sv
	}
	for i := range cur.Servers {
		sv := &cur.Servers[i]
		p, ok := prevBy[sv.Addr]
		if !ok || !sv.Reachable || !p.Reachable {
			continue
		}
		if d := sv.TxnsCommitted - p.TxnsCommitted; d >= 0 {
			sv.TxnRate = d / dt
			cur.AggTxnRate += sv.TxnRate
		}
		// Carry the previous scrape's journal into the merge: epochs the
		// ring already overwrote stay attributable, and re-merging the
		// overlap exercises the dedup path on every refresh.
		if p.Epochs != nil {
			if sv.Epochs == nil {
				sv.Epochs = p.Epochs
			} else {
				union := *sv.Epochs
				union.Records = append(append([]journal.Record(nil), p.Epochs.Records...), sv.Epochs.Records...)
				union.EM = append(append([]journal.EMRecord(nil), p.Epochs.EM...), sv.Epochs.EM...)
				sv.Epochs = &union
			}
		}
	}
	mergeEpochPaths(&cur)
	// Re-link the anomaly roll-up against the unioned critical paths: the
	// carried-over journal may cover epochs the fresh scrape's ring lost.
	mergeTimeseries(&cur)
	return cur
}

// Render writes one human-readable dashboard frame: a cluster summary line
// and a fixed-width row per server. It is what aloha-top refreshes.
func Render(w io.Writer, snap ClusterSnapshot) {
	fmt.Fprintf(w, "cluster: %d/%d up  min-epoch %d  max-epoch %d  commits %.0f",
		snap.ReachableServers, len(snap.Servers), snap.MinCommittedEpoch, snap.MaxCommittedEpoch, snap.AggTxnsCommitted)
	if snap.AggTxnRate > 0 {
		fmt.Fprintf(w, "  (%.0f/s)", snap.AggTxnRate)
	}
	if snap.ActiveStalls > 0 {
		fmt.Fprintf(w, "  STALLS %d", snap.ActiveStalls)
	}
	fmt.Fprintf(w, "\n%-22s %-6s %-8s %-8s %-4s %10s %10s %-14s %12s %12s %12s %-14s  %s\n",
		"server", "state", "epoch", "commit", "gen", "txns", "txn/s", "aborts", "p99-install", "p99-wait", "p99-compute", "gating", "notes")
	for _, sv := range snap.Servers {
		state := "up"
		switch {
		case !sv.Reachable:
			state = "down"
		case sv.StallActive:
			state = "stall"
		case !sv.Healthy:
			state = "notrdy"
		}
		var notes []string
		if sv.Err != "" {
			notes = append(notes, sv.Err)
		}
		if sv.HealthReason != "" {
			notes = append(notes, sv.HealthReason)
		}
		if len(sv.UnreachablePeers) > 0 {
			notes = append(notes, fmt.Sprintf("unreachable peers %v", sv.UnreachablePeers))
		}
		if len(sv.HotKeys) > 0 {
			notes = append(notes, fmt.Sprintf("hot %q ×%d", sv.HotKeys[0].Key, sv.HotKeys[0].Count))
		}
		if sv.MigrationInflight > 0 {
			note := fmt.Sprintf("migrating ×%.0f", sv.MigrationInflight)
			if sv.MigrationLastHandoff > 0 && sv.CommittedEpoch >= sv.MigrationLastHandoff {
				note += fmt.Sprintf(" (last handoff %d epochs ago)", sv.CommittedEpoch-sv.MigrationLastHandoff)
			}
			notes = append(notes, note)
		}
		gating := "-"
		if sv.GatingEpochs > 0 {
			gating = fmt.Sprintf("%d×%s", sv.GatingEpochs, sv.GatingStage)
		}
		fmt.Fprintf(w, "%-22s %-6s %-8d %-8d %-4d %10.0f %10.0f %-14s %12s %12s %12s %-14s  %s\n",
			sv.Addr, state, sv.CurrentEpoch, sv.CommittedEpoch, sv.PlacementGen, sv.TxnsCommitted, sv.TxnRate,
			fmtAborts(sv), fmtSec(sv.P99Install), fmtSec(sv.P99Wait), fmtSec(sv.P99Compute), gating, strings.Join(notes, "; "))
	}
	renderTrendFooter(w, snap)
}

// fmtAborts renders the aborts column: total count plus the dominant
// taxonomy reason, e.g. "12 (chaos-inje…)".
func fmtAborts(sv ServerStatus) string {
	if sv.TxnsAborted <= 0 {
		return "-"
	}
	out := fmt.Sprintf("%.0f", sv.TxnsAborted)
	var top string
	var topN float64
	for reason, n := range sv.AbortReasons {
		if n > topN || (n == topN && reason < top) {
			top, topN = reason, n
		}
	}
	if top != "" {
		if len(top) > 6 {
			top = top[:6]
		}
		out += " (" + top + ")"
	}
	return out
}

// renderTrendFooter appends the flight-recorder strip under the server
// table: a cluster commit-rate sparkline and the anomaly callouts.
func renderTrendFooter(w io.Writer, snap ClusterSnapshot) {
	for _, s := range snap.Timeseries {
		if s.Name != "commit_rate" {
			continue
		}
		fmt.Fprintf(w, "commit/s %s %s\n", Sparkline(seriesValues(s), 48), fmtVal(s.Last()))
		break
	}
	RenderAnomalies(w, snap, 4)
}

func fmtSec(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
