// Package clusterview aggregates the per-server operator surfaces
// (/metrics, /healthz, /debug/stall, /debug/hotkeys) into one cluster-wide
// snapshot: minimum committed epoch, aggregate transaction throughput,
// per-server tail latencies, and a stall roll-up. It is the library behind
// cmd/aloha-top.
package clusterview

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: its label set and value.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed Prometheus text exposition page, family name (as
// written, so histogram series appear under name_bucket / name_sum /
// name_count) to samples.
type Metrics map[string][]Sample

// ParseMetrics reads the Prometheus text format (version 0.0.4) as emitted
// by internal/metrics.WriteText: # comment lines, then one
// `name{labels} value` sample per line. It is a scrape-side parser for our
// own exposition, not a general-purpose one — unknown syntax fails loudly
// rather than being guessed at.
func ParseMetrics(r io.Reader) (Metrics, error) {
	out := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("clusterview: line %d: %w", lineNo, err)
		}
		out[name] = append(out[name], sample)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("clusterview: scan: %w", err)
	}
	return out, nil
}

func parseSampleLine(line string) (string, Sample, error) {
	s := Sample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		labels, tail, err := parseLabels(rest[brace+1:])
		if err != nil {
			return "", s, err
		}
		s.Labels = labels
		rest = tail
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", s, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	valStr := strings.TrimSpace(rest)
	// Our exposition carries no timestamps, so the remainder is the value.
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return name, s, nil
}

// parseLabels consumes `key="val",...}` (the opening brace already eaten)
// and returns the label map plus the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		in = strings.TrimLeft(in, ",")
		if strings.HasPrefix(in, "}") {
			return labels, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 || len(in) <= eq+1 || in[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed label in %q", in)
		}
		key := in[:eq]
		val, tail, err := parseQuoted(in[eq+1:])
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		in = tail
	}
}

// parseQuoted consumes a `"..."` string with \\ \" \n escapes.
func parseQuoted(in string) (string, string, error) {
	if !strings.HasPrefix(in, `"`) {
		return "", "", fmt.Errorf("expected quote in %q", in)
	}
	var sb strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape in %q", in)
			}
			i++
			switch in[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(in[i])
			}
		case '"':
			return sb.String(), in[i+1:], nil
		default:
			sb.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", in)
}

// Value returns the sum of a family's samples (the natural roll-up for
// counters and for gauges partitioned by label) and whether any were seen.
func (m Metrics) Value(name string) (float64, bool) {
	samples, ok := m[name]
	if !ok {
		return 0, false
	}
	var sum float64
	for _, s := range samples {
		sum += s.Value
	}
	return sum, true
}

// ByLabel sums a family's samples grouped by one label key's value, the
// roll-up for labeled counters like aloha_txn_abort_total{reason=...}.
// Samples missing the key land under "". Nil when the family is absent.
func (m Metrics) ByLabel(name, key string) map[string]float64 {
	samples, ok := m[name]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Labels[key]] += s.Value
	}
	return out
}

// Quantile reassembles the cumulative `name_bucket` series and returns the
// q-quantile upper bound in the exposition's unit (seconds for *_seconds
// families). Bucket counts are summed across label sets, which is exact
// for cumulative histograms sharing one `le` grid.
func (m Metrics) Quantile(name string, q float64) (float64, bool) {
	buckets := m[name+"_bucket"]
	if len(buckets) == 0 {
		return 0, false
	}
	// Aggregate by le across series.
	byLE := make(map[float64]float64)
	for _, s := range buckets {
		le, err := parseLE(s.Labels["le"])
		if err != nil {
			return 0, false
		}
		byLE[le] += s.Value
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	total := byLE[les[len(les)-1]] // +Inf bucket is cumulative over all
	if total == 0 {
		return 0, false
	}
	target := q * total
	for _, le := range les {
		if byLE[le] >= target {
			if math.IsInf(le, 1) {
				// Tail beyond the last finite bound: report that bound.
				if len(les) >= 2 {
					return les[len(les)-2], true
				}
				return 0, false
			}
			return le, true
		}
	}
	return 0, false
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
