package clusterview

import (
	"strings"
	"testing"
	"time"

	"alohadb/internal/obs/journal"
)

// mk builds a complete server record for epoch e with the given stage
// stamps (milliseconds from a fixed origin).
func mk(e uint64, server int, ackStartMS, ackEndMS, committedMS, sealMS, visibleMS int) journal.Record {
	ms := func(v int) int64 {
		if v == 0 {
			return 0
		}
		return int64(time.Duration(v) * time.Millisecond)
	}
	return journal.Record{
		Epoch:          e,
		Server:         server,
		AckWaitStartNS: ms(ackStartMS),
		AckWaitEndNS:   ms(ackEndMS),
		CommittedNS:    ms(committedMS),
		SealNS:         ms(sealMS),
		VisibleNS:      ms(visibleMS),
	}
}

func emRec(e uint64, decideMS int, ackMS []int, commitMS int) journal.EMRecord {
	r := journal.EMRecord{
		Epoch:    e,
		DecideNS: int64(time.Duration(decideMS) * time.Millisecond),
		CommitNS: int64(time.Duration(commitMS) * time.Millisecond),
		AckNS:    make([]int64, len(ackMS)),
	}
	for i, ms := range ackMS {
		if ms > 0 {
			r.AckNS[i] = int64(time.Duration(ms) * time.Millisecond)
		}
	}
	return r
}

// threeServerDocs builds a healthy 3-server epoch where server 2's ack is
// delayed: decide at 10ms, acks arrive 11/12/40, commit 41, visibility
// 42-43. The critical path must be server 2's ack-wait.
func threeServerDocs(e uint64) []journal.Doc {
	return []journal.Doc{
		{Server: 0, Records: []journal.Record{mk(e, 0, 10, 11, 41, 41, 42)}},
		{Server: 1, Records: []journal.Record{mk(e, 1, 10, 12, 41, 41, 42)}},
		{Server: 2, Records: []journal.Record{mk(e, 2, 10, 39, 41, 41, 43)}},
		{EM: []journal.EMRecord{emRec(e, 10, []int{11, 12, 40}, 41)}},
	}
}

func TestMergeEpochsAttributesAckStraggler(t *testing.T) {
	paths := MergeEpochs(threeServerDocs(7)...)
	if len(paths) != 1 {
		t.Fatalf("paths = %+v, want 1", paths)
	}
	p := paths[0]
	if p.Epoch != 7 || p.Servers != 3 {
		t.Fatalf("identity: %+v", p)
	}
	if p.GatingServer != 2 || p.GatingStage != "ack-wait" {
		t.Fatalf("critical path = server %d stage %s, want server 2 ack-wait", p.GatingServer, p.GatingStage)
	}
	// Decide 10ms → last ack 40ms = 30ms gating; total 10→43 = 33ms.
	if p.GatingNS != int64(30*time.Millisecond) || p.TotalNS != int64(33*time.Millisecond) {
		t.Fatalf("durations: gating=%d total=%d", p.GatingNS, p.TotalNS)
	}
}

func TestMergeEpochsWithoutEMFallsBackToAckSendStamps(t *testing.T) {
	docs := threeServerDocs(7)[:3] // no EM mirror
	paths := MergeEpochs(docs...)
	if len(paths) != 1 {
		t.Fatalf("paths = %+v", paths)
	}
	// Server 2's AckWaitEnd (39ms) is still the latest ack approximation.
	if paths[0].GatingServer != 2 || paths[0].GatingStage != "ack-wait" {
		t.Fatalf("fallback path: %+v", paths[0])
	}
}

func TestMergeEpochsInstallTailAttribution(t *testing.T) {
	// The straggler's installs kept landing after its revoke arrived — the
	// install tail, not the drain itself, is what dragged the ack.
	docs := threeServerDocs(9)
	r := &docs[2].Records[0]
	r.FirstInstallNS = int64(1 * time.Millisecond)
	r.LastInstallNS = int64(35 * time.Millisecond) // after ack start (10ms)
	paths := MergeEpochs(docs...)
	if len(paths) != 1 || paths[0].GatingServer != 2 || paths[0].GatingStage != "install" {
		t.Fatalf("install-tail path: %+v", paths)
	}
}

func TestMergeEpochsRaggedSnapshots(t *testing.T) {
	// Servers scraped at different committed epochs: only server 0 has
	// finished epoch 8. Attribution must cover epoch 8 with the one
	// complete record — and must not fabricate a path for epoch 9, which
	// only has an incomplete record.
	docs := threeServerDocs(7)
	docs[0].Records = append(docs[0].Records, mk(8, 0, 50, 52, 60, 61, 62))
	docs[1].Records = append(docs[1].Records, journal.Record{Epoch: 9, Server: 1, AckWaitStartNS: int64(70 * time.Millisecond)})
	paths := MergeEpochs(docs...)
	if len(paths) != 2 {
		t.Fatalf("paths = %+v, want epochs 7 and 8 only", paths)
	}
	if paths[0].Epoch != 7 || paths[1].Epoch != 8 {
		t.Fatalf("epochs: %+v", paths)
	}
	if paths[1].Servers != 1 {
		t.Fatalf("epoch 8 should attribute among 1 complete record: %+v", paths[1])
	}
}

func TestMergeEpochsUnreachableServer(t *testing.T) {
	// Server 2 unreachable mid-merge: its doc is missing entirely. The
	// epoch still attributes among the two reachable servers.
	docs := threeServerDocs(7)
	docs = append(docs[:2], docs[3]) // drop server 2's doc, keep EM
	paths := MergeEpochs(docs...)
	if len(paths) != 1 || paths[0].Servers != 2 {
		t.Fatalf("paths = %+v, want one path over 2 servers", paths)
	}
	// Without server 2's record the EM still saw its ack at 40ms — but
	// attribution only covers servers with complete records, so the
	// straggler among those is server 1 (ack 12ms) and the path shifts to
	// whatever dominates the visible records. It must not name server 2.
	if paths[0].GatingServer == 2 {
		t.Fatalf("fabricated a path for an unreachable server: %+v", paths[0])
	}
}

func TestMergeEpochsDuplicateRecords(t *testing.T) {
	// The double scrape delivers every record twice; output must be
	// identical to the single-scrape merge.
	docs := threeServerDocs(7)
	dup := append(append([]journal.Doc(nil), docs...), docs...)
	a, b := MergeEpochs(docs...), MergeEpochs(dup...)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("dedup: single=%+v doubled=%+v", a, b)
	}
}

func TestMergeEpochsDuplicateKeepsMoreFinished(t *testing.T) {
	// First scrape caught epoch 7 mid-close-out on server 2 (no visibility
	// yet), the second caught it complete. The merge must keep the
	// finished record, not drop the epoch or use the torn one.
	docs := threeServerDocs(7)
	torn := docs[2].Records[0]
	torn.VisibleNS = 0
	torn.CommittedNS = 0
	docs = append(docs, journal.Doc{Server: 2, Records: []journal.Record{torn}})
	paths := MergeEpochs(docs...)
	if len(paths) != 1 || paths[0].Servers != 3 || paths[0].GatingServer != 2 {
		t.Fatalf("more-finished dedup: %+v", paths)
	}
}

func TestMergeEpochsNoCompleteRecords(t *testing.T) {
	docs := []journal.Doc{
		{Server: 0, Records: []journal.Record{{Epoch: 5, Server: 0, AckWaitStartNS: 1}}},
	}
	if paths := MergeEpochs(docs...); len(paths) != 0 {
		t.Fatalf("fabricated a path with no complete records: %+v", paths)
	}
	if paths := MergeEpochs(); len(paths) != 0 {
		t.Fatalf("empty merge: %+v", paths)
	}
}

func TestMergeEpochsBroadcastAttribution(t *testing.T) {
	// Fast acks, slow Committed broadcast to server 1: the gating stage is
	// the broadcast on the visibility straggler.
	docs := []journal.Doc{
		{Server: 0, Records: []journal.Record{mk(3, 0, 10, 11, 13, 13, 14)}},
		{Server: 1, Records: []journal.Record{mk(3, 1, 10, 12, 40, 41, 42)}},
		{EM: []journal.EMRecord{emRec(3, 10, []int{11, 12}, 13)}},
	}
	paths := MergeEpochs(docs...)
	if len(paths) != 1 || paths[0].GatingServer != 1 || paths[0].GatingStage != "broadcast" {
		t.Fatalf("broadcast path: %+v", paths)
	}
}

func TestGatingSummaryAndRender(t *testing.T) {
	paths := MergeEpochs(threeServerDocs(7)...)
	paths = append(paths, MergeEpochs(threeServerDocs(8)...)...)
	sum := GatingSummary(paths)
	if g := sum[2]; g.Epochs != 2 || g.Stage != "ack-wait" {
		t.Fatalf("summary: %+v", sum)
	}
	var sb strings.Builder
	RenderEpochs(&sb, paths, 10)
	out := sb.String()
	if !strings.Contains(out, "ack-wait") || !strings.Contains(out, "epoch") {
		t.Fatalf("render:\n%s", out)
	}
	sb.Reset()
	RenderEpochs(&sb, nil, 10)
	if !strings.Contains(sb.String(), "no attributed epochs") {
		t.Fatalf("empty render: %s", sb.String())
	}
}
