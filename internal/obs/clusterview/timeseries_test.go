package clusterview

import (
	"math"
	"strings"
	"testing"

	"alohadb/internal/obs/tsdb"
)

// doc builds a recorder document with one commit_rate series sampled at
// the given tick timestamps.
func doc(server int, intervalMS int64, ticks []int64, values []float64) tsdb.Doc {
	return tsdb.Doc{
		Server:     server,
		IntervalMS: intervalMS,
		Retention:  len(ticks),
		Ticks:      ticks,
		Series: []tsdb.SeriesDoc{
			{Name: "commit_rate", Kind: "rate", Unit: "txn/s", Samples: values},
		},
	}
}

func TestMergeTimeseriesRaggedRings(t *testing.T) {
	// Server 0 has four samples, server 1 joined late and has two; a
	// third server is unreachable (no doc at all). The merged series must
	// cover exactly the buckets somebody reported — no fabricated points.
	d0 := doc(0, 500, []int64{1000, 1500, 2000, 2500}, []float64{100, 110, 120, 130})
	d1 := doc(1, 500, []int64{2010, 2510}, []float64{50, 60})

	merged := MergeTimeseries([]tsdb.Doc{d0, d1})
	if len(merged) != 1 {
		t.Fatalf("series = %d, want 1", len(merged))
	}
	s := merged[0]
	if s.Name != "commit_rate" || s.Kind != "rate" {
		t.Fatalf("unexpected series header %+v", s)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4 (no fabricated buckets): %+v", len(s.Points), s.Points)
	}
	// First two buckets come from server 0 alone; the last two sum both.
	wantVals := []float64{100, 110, 170, 190}
	wantServers := []int{1, 1, 2, 2}
	for i, p := range s.Points {
		if p.Value != wantVals[i] || p.Servers != wantServers[i] {
			t.Fatalf("point %d = %+v, want value %v servers %d", i, p, wantVals[i], wantServers[i])
		}
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].UnixMS <= s.Points[i-1].UnixMS {
			t.Fatalf("points not time-ordered: %+v", s.Points)
		}
	}
}

func TestMergeTimeseriesGapsNotFabricated(t *testing.T) {
	// A NaN sample is a recorder gap; a bucket where every server gapped
	// must be absent from the merged series, not zero-filled.
	d := doc(0, 500, []int64{1000, 1500, 2000}, []float64{100, math.NaN(), 120})
	merged := MergeTimeseries([]tsdb.Doc{d})
	if len(merged) != 1 || len(merged[0].Points) != 2 {
		t.Fatalf("want 2 points (gap dropped), got %+v", merged)
	}
	if merged[0].Points[0].Value != 100 || merged[0].Points[1].Value != 120 {
		t.Fatalf("unexpected values %+v", merged[0].Points)
	}
}

func TestMergeTimeseriesGaugeTakesWorst(t *testing.T) {
	d0 := tsdb.Doc{Server: 0, IntervalMS: 500, Ticks: []int64{1000},
		Series: []tsdb.SeriesDoc{{Name: "visibility_lag_epochs", Kind: "gauge", Samples: []float64{2}}}}
	d1 := tsdb.Doc{Server: 1, IntervalMS: 500, Ticks: []int64{1200},
		Series: []tsdb.SeriesDoc{{Name: "visibility_lag_epochs", Kind: "gauge", Samples: []float64{7}}}}
	merged := MergeTimeseries([]tsdb.Doc{d0, d1})
	if len(merged) != 1 || len(merged[0].Points) != 1 {
		t.Fatalf("unexpected merge %+v", merged)
	}
	if p := merged[0].Points[0]; p.Value != 7 || p.Servers != 2 {
		t.Fatalf("gauge merge = %+v, want max 7 from 2 servers", p)
	}
}

func TestMergeTimeseriesEmpty(t *testing.T) {
	if got := MergeTimeseries(nil); got != nil {
		t.Fatalf("nil docs should merge to nil, got %+v", got)
	}
}

func TestAnomalyCrossLinkToEpochPaths(t *testing.T) {
	d := doc(1, 500, []int64{1000, 1500}, []float64{100, 20})
	d.Annotations = []tsdb.Annotation{{
		Series: "commit_rate", Kind: tsdb.AnomalyDrop, Active: true,
		StartMS: 1500, Baseline: 100, Observed: 20,
		FromEpoch: 10, ToEpoch: 14, GatingStage: "fsync",
	}}
	snap := ClusterSnapshot{
		Servers: []ServerStatus{{Reachable: true, Timeseries: &d}},
		EpochPaths: []EpochPath{
			{Epoch: 9, GatingServer: 0, GatingStage: "install"},
			{Epoch: 11, GatingServer: 2, GatingStage: "ack-wait"},
			{Epoch: 12, GatingServer: 2, GatingStage: "ack-wait"},
			{Epoch: 13, GatingServer: 0, GatingStage: "broadcast"},
			{Epoch: 15, GatingServer: 1, GatingStage: "seal"},
		},
	}
	mergeTimeseries(&snap)
	if len(snap.Anomalies) != 1 {
		t.Fatalf("anomalies = %d, want 1", len(snap.Anomalies))
	}
	a := snap.Anomalies[0]
	if a.Server != 1 || a.Series != "commit_rate" {
		t.Fatalf("annotation not carried: %+v", a)
	}
	// Epochs 11 and 12 (gated by server 2's ack-wait) dominate the window
	// [10,14]; epochs 9 and 15 lie outside it.
	if a.ClusterGatingServer != 2 || a.ClusterGatingStage != "ack-wait" {
		t.Fatalf("cross-link = server %d stage %q, want server 2 ack-wait",
			a.ClusterGatingServer, a.ClusterGatingStage)
	}

	// With no covering paths the link degrades to unknown, keeping the
	// local attribution.
	snap.EpochPaths = []EpochPath{{Epoch: 99, GatingServer: 0, GatingStage: "install"}}
	mergeTimeseries(&snap)
	if a := snap.Anomalies[0]; a.ClusterGatingServer != -1 || a.ClusterGatingStage != "" || a.GatingStage != "fsync" {
		t.Fatalf("uncovered window should keep local gating only: %+v", a)
	}
}

func TestByLabel(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(strings.Join([]string{
		`aloha_txn_abort_total{reason="constraint"} 3`,
		`aloha_txn_abort_total{reason="chaos-injected"} 7`,
		`aloha_txn_abort_total{reason="chaos-injected"} 2`,
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	by := m.ByLabel("aloha_txn_abort_total", "reason")
	if by["constraint"] != 3 || by["chaos-injected"] != 9 {
		t.Fatalf("ByLabel = %v", by)
	}
	if m.ByLabel("absent_family", "reason") != nil {
		t.Fatal("absent family should return nil")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", got)
	}
	if got := Sparkline([]float64{1, math.NaN(), 3}, 3); got[0] == ' ' || !strings.Contains(got, " ") {
		t.Fatalf("NaN should render as a gap: %q", got)
	}
	if Sparkline(nil, 8) != "" {
		t.Fatal("empty input should render empty")
	}
	// Flat series renders mid-ramp, not a divide-by-zero artifact.
	if got := Sparkline([]float64{5, 5, 5}, 3); strings.ContainsRune(got, ' ') || len([]rune(got)) != 3 {
		t.Fatalf("flat series = %q", got)
	}
}
