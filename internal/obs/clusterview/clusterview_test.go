package clusterview

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/metrics"
	"alohadb/internal/obs"
)

func TestParseMetrics(t *testing.T) {
	const page = `# HELP aloha_txns_committed_total Committed transactions.
# TYPE aloha_txns_committed_total counter
aloha_txns_committed_total 42
aloha_committed_epoch 7
aloha_stage_install_seconds_bucket{le="0.001"} 90
aloha_stage_install_seconds_bucket{le="0.01"} 99
aloha_stage_install_seconds_bucket{le="+Inf"} 100
aloha_stage_install_seconds_sum 0.5
aloha_stage_install_seconds_count 100
aloha_skew_partition_accesses{partition="0"} 10
aloha_skew_partition_accesses{partition="1"} 30
weird_label{key="a\"b\\c\nd"} 1
`
	m, err := ParseMetrics(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("aloha_txns_committed_total"); !ok || v != 42 {
		t.Errorf("txns = %v %v", v, ok)
	}
	if v, ok := m.Value("aloha_skew_partition_accesses"); !ok || v != 40 {
		t.Errorf("partition sum = %v %v, want 40", v, ok)
	}
	if q, ok := m.Quantile("aloha_stage_install_seconds", 0.99); !ok || q != 0.01 {
		t.Errorf("p99 = %v %v, want 0.01", q, ok)
	}
	// p999 falls in the +Inf bucket; the last finite bound is reported.
	if q, ok := m.Quantile("aloha_stage_install_seconds", 0.999); !ok || q != 0.01 {
		t.Errorf("p999 = %v %v, want 0.01", q, ok)
	}
	if s := m["weird_label"]; len(s) != 1 || s[0].Labels["key"] != "a\"b\\c\nd" {
		t.Errorf("escaped label = %+v", s)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"novalue\n",
		"name{unterminated=\"x} 1\n",
		"name{} notanumber\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted garbage", bad)
		}
	}
}

// fakeServer builds an ops endpoint backed by real OpsHandler plumbing and
// synthetic families, the same shape aloha-server serves.
func fakeServer(t *testing.T, committed, current uint64, txns float64, stalled bool) *httptest.Server {
	t.Helper()
	var c metrics.Counter
	c.Add(uint64(txns))
	hist := metrics.NewHistogram(metrics.LatencyBounds())
	for i := 0; i < 100; i++ {
		hist.ObserveDuration(500 * time.Microsecond)
	}
	gather := func() []metrics.Family {
		return append([]metrics.Family{
			{Name: core.FamCommittedEpoch, Kind: metrics.KindGauge,
				Series: []metrics.Series{metrics.GaugeSeries(int64(committed))}},
			{Name: core.FamServerEpoch, Kind: metrics.KindGauge,
				Series: []metrics.Series{metrics.GaugeSeries(int64(current))}},
			{Name: core.FamTxnsCommitted, Kind: metrics.KindCounter,
				Series: []metrics.Series{metrics.CounterSeries(c.Value())}},
			{Name: core.FamStageInstall, Kind: metrics.KindHistogram, Unit: metrics.UnitSeconds,
				Series: []metrics.Series{metrics.HistSeries(hist.Snapshot())}},
		}, metrics.RuntimeFamilies()...)
	}

	progress := committed
	wd := obs.NewWatchdog(obs.WatchdogConfig{
		Threshold: time.Hour,
		Progress:  func() uint64 { return progress },
	})
	skew := obs.NewSkew(obs.SkewConfig{SampleEvery: 1, TopK: 4, Partitions: 1})
	for i := 0; i < 9; i++ {
		skew.Observe(0, "hotkey")
	}
	health := func() (bool, string) {
		if stalled {
			return false, "epoch stall: simulated"
		}
		return true, ""
	}
	h := metrics.OpsHandler(gather,
		metrics.WithHealth("watchdog", health),
		metrics.WithDebug("stall", wd.Handler()),
		metrics.WithDebug("hotkeys", skew.Handler()),
	)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestScrapeMergesCluster(t *testing.T) {
	s0 := fakeServer(t, 9, 11, 1000, false)
	s1 := fakeServer(t, 7, 11, 800, false)
	s2 := fakeServer(t, 8, 11, 900, true)
	addr := func(s *httptest.Server) string { return strings.TrimPrefix(s.URL, "http://") }
	sc := &Scraper{Addrs: []string{addr(s0), addr(s1), addr(s2), "127.0.0.1:1"}}

	snap := sc.Scrape(context.Background())
	if snap.ReachableServers != 3 {
		t.Fatalf("reachable = %d, want 3 (%+v)", snap.ReachableServers, snap.Servers)
	}
	if snap.MinCommittedEpoch != 7 || snap.MaxCommittedEpoch != 9 {
		t.Errorf("epoch range = [%d,%d], want [7,9]", snap.MinCommittedEpoch, snap.MaxCommittedEpoch)
	}
	if snap.AggTxnsCommitted != 2700 {
		t.Errorf("agg txns = %v, want 2700", snap.AggTxnsCommitted)
	}
	if snap.Servers[3].Reachable || snap.Servers[3].Err == "" {
		t.Errorf("dead server not degraded: %+v", snap.Servers[3])
	}
	sv := snap.Servers[0]
	if !sv.Healthy || sv.CommittedEpoch != 9 || sv.CurrentEpoch != 11 {
		t.Errorf("server 0 = %+v", sv)
	}
	if sv.P99Install <= 0 || sv.P99Install > 0.1 {
		t.Errorf("p99 install = %v", sv.P99Install)
	}
	if sv.Goroutines < 1 {
		t.Errorf("runtime goroutines = %v", sv.Goroutines)
	}
	if len(sv.HotKeys) == 0 || sv.HotKeys[0].Key != "hotkey" {
		t.Errorf("hot keys = %+v", sv.HotKeys)
	}
	if !snap.Servers[2].Healthy || snap.Servers[2].HealthReason == "" {
		// server 2's health check fails: not ready, with the reason echoed.
		if snap.Servers[2].Healthy {
			t.Errorf("stalled server reported healthy: %+v", snap.Servers[2])
		}
	}

	// A second scrape after more commits yields positive rates via Delta.
	prev := snap
	time.Sleep(10 * time.Millisecond)
	cur := Delta(prev, sc.Scrape(context.Background()))
	if cur.AggTxnRate != 0 {
		// Counters did not move between scrapes, so the rate must be zero —
		// Delta must not fabricate throughput.
		t.Errorf("rate without new commits = %v, want 0", cur.AggTxnRate)
	}
	// Render must produce one frame line per server plus header+summary.
	var sb strings.Builder
	Render(&sb, cur)
	if lines := strings.Count(sb.String(), "\n"); lines != len(sc.Addrs)+2 {
		t.Errorf("render produced %d lines, want %d:\n%s", lines, len(sc.Addrs)+2, sb.String())
	}
	if !strings.Contains(sb.String(), "down") {
		t.Errorf("render missing down state:\n%s", sb.String())
	}
}

func TestDeltaComputesRate(t *testing.T) {
	base := time.Unix(1000, 0)
	prev := ClusterSnapshot{At: base, Servers: []ServerStatus{
		{Addr: "a", Reachable: true, TxnsCommitted: 100},
		{Addr: "b", Reachable: true, TxnsCommitted: 50},
	}}
	cur := ClusterSnapshot{At: base.Add(2 * time.Second), Servers: []ServerStatus{
		{Addr: "a", Reachable: true, TxnsCommitted: 300},
		{Addr: "b", Reachable: false},
	}}
	got := Delta(prev, cur)
	if r := got.Servers[0].TxnRate; math.Abs(r-100) > 1e-9 {
		t.Errorf("rate a = %v, want 100", r)
	}
	if got.Servers[1].TxnRate != 0 {
		t.Errorf("unreachable server got a rate: %v", got.Servers[1].TxnRate)
	}
	if math.Abs(got.AggTxnRate-100) > 1e-9 {
		t.Errorf("agg rate = %v, want 100", got.AggTxnRate)
	}
}
