package clusterview

import (
	"fmt"
	"io"
	"sort"
	"time"

	"alohadb/internal/obs/journal"
)

// EpochPath is one committed epoch's cluster-wide critical path: the
// server and close-out stage that gated the commit, from the journal
// records merged across servers (and the EM's mirror when present).
type EpochPath struct {
	Epoch uint64 `json:"epoch"`
	// Servers is how many servers contributed a complete record; fewer
	// than the cluster size means a ragged scrape and the attribution
	// covers only the servers seen.
	Servers int `json:"servers"`
	// TotalNS spans the switch decision (EM record, else the earliest
	// revoke arrival) to the last visibility publication.
	TotalNS int64 `json:"total_ns"`
	// GatingServer/GatingStage name the critical path; GatingNS is that
	// stage's duration on that server.
	GatingServer int    `json:"gating_server"`
	GatingStage  string `json:"gating_stage"`
	GatingNS     int64  `json:"gating_ns"`
	// StallActive/MigrationSeals flag interference on the gating server.
	StallActive    bool `json:"stall_active,omitempty"`
	MigrationSeals int  `json:"migration_seals,omitempty"`
}

// MergeEpochs joins journal documents from any number of servers (plus
// EM mirrors, carried on any doc) by epoch number and attributes each
// epoch's critical path. It is defensive about real scrape conditions:
//
//   - Ragged snapshots (servers at different committed epochs) attribute
//     among the complete records present — never fabricating a path for
//     an epoch no server finished.
//   - Duplicate records (the double scrape, or the same doc twice) dedup
//     by (epoch, server), keeping the more-finished record.
//   - Incomplete records (an epoch mid-close-out when scraped) are
//     excluded from attribution entirely.
func MergeEpochs(docs ...journal.Doc) []EpochPath {
	type key struct {
		epoch  uint64
		server int
	}
	recs := make(map[key]journal.Record)
	ems := make(map[uint64]journal.EMRecord)
	for _, d := range docs {
		for _, r := range d.Records {
			k := key{r.Epoch, r.Server}
			if prev, ok := recs[k]; !ok || moreFinished(r, prev) {
				recs[k] = r
			}
		}
		for _, e := range d.EM {
			if prev, ok := ems[e.Epoch]; !ok || e.CommitNS > prev.CommitNS {
				ems[e.Epoch] = e
			}
		}
	}

	byEpoch := make(map[uint64][]journal.Record)
	for k, r := range recs {
		if r.Complete() {
			byEpoch[k.epoch] = append(byEpoch[k.epoch], r)
		}
	}

	paths := make([]EpochPath, 0, len(byEpoch))
	for e, group := range byEpoch {
		if p, ok := attribute(e, group, ems[e]); ok {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].Epoch < paths[j].Epoch })
	return paths
}

// moreFinished prefers the record further through the close-out, so a
// double scrape keeps the one with visibility (then commit) published.
func moreFinished(a, b journal.Record) bool {
	if a.VisibleNS != b.VisibleNS {
		return a.VisibleNS > b.VisibleNS
	}
	return a.CommittedNS > b.CommittedNS
}

// attribute computes one epoch's critical path from its complete records
// and (optionally) the EM mirror. ok is false when no anchor for the
// switch decision exists — attribution is then impossible, not guessable.
func attribute(epoch uint64, group []journal.Record, em journal.EMRecord) (EpochPath, bool) {
	// D anchors the path: the EM's switch decision when mirrored, else the
	// earliest revoke arrival, else the earliest install.
	decide := em.DecideNS
	if decide == 0 {
		for _, r := range group {
			if r.AckWaitStartNS > 0 && (decide == 0 || r.AckWaitStartNS < decide) {
				decide = r.AckWaitStartNS
			}
		}
	}
	if decide == 0 {
		for _, r := range group {
			if r.FirstInstallNS > 0 && (decide == 0 || r.FirstInstallNS < decide) {
				decide = r.FirstInstallNS
			}
		}
	}
	if decide == 0 {
		return EpochPath{}, false
	}

	// The ack straggler: the last revoke-ack the EM waited on. The EM's
	// arrival stamps see the wire (a delayed ack link shows up here); the
	// fallback to the server-side ack-send stamp does not, but still ranks
	// the slowest drain.
	straggler, maxAck := -1, int64(0)
	for _, r := range group {
		ack := r.AckWaitEndNS
		if len(em.AckNS) > r.Server && r.Server >= 0 && em.AckNS[r.Server] > 0 {
			ack = em.AckNS[r.Server]
		}
		if ack > maxAck {
			straggler, maxAck = r.Server, ack
		}
	}

	// The visibility straggler: the server whose publication closed the
	// epoch. Its post-barrier stages (broadcast, seal, fsync, ship) are the
	// other critical-path candidates.
	var gv journal.Record
	for _, r := range group {
		if gv.VisibleNS == 0 || r.VisibleNS > gv.VisibleNS {
			gv = r
		}
	}

	type cand struct {
		server int
		stage  string
		ns     int64
	}
	var cands []cand
	if straggler >= 0 && maxAck > decide {
		// Everything from the decision to the last ack is the straggler's:
		// if its installs were still landing after the revoke arrived, the
		// install tail is what dragged the drain; otherwise it's the
		// ack-wait itself.
		stage := journal.StageNames[journal.StageAckWait]
		for _, r := range group {
			if r.Server == straggler && r.LastInstallNS > r.AckWaitStartNS && r.AckWaitStartNS > 0 {
				stage = journal.StageNames[journal.StageInstall]
			}
		}
		cands = append(cands, cand{straggler, stage, maxAck - decide})
	}
	if maxAck > 0 && gv.CommittedNS > maxAck {
		cands = append(cands, cand{gv.Server, journal.StageNames[journal.StageBroadcast], gv.CommittedNS - maxAck})
	}
	if gv.SealNS > gv.CommittedNS {
		cands = append(cands, cand{gv.Server, journal.StageNames[journal.StageSeal], gv.SealNS - gv.CommittedNS})
	}
	if gv.FsyncNS > 0 {
		cands = append(cands, cand{gv.Server, journal.StageNames[journal.StageFsync], gv.FsyncNS})
	}
	if gv.ShipNS > 0 {
		cands = append(cands, cand{gv.Server, journal.StageNames[journal.StageShip], gv.ShipNS})
	}
	if len(cands) == 0 {
		return EpochPath{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.ns > best.ns {
			best = c
		}
	}

	p := EpochPath{
		Epoch:        epoch,
		Servers:      len(group),
		GatingServer: best.server,
		GatingStage:  best.stage,
		GatingNS:     best.ns,
	}
	if gv.VisibleNS > decide {
		p.TotalNS = gv.VisibleNS - decide
	}
	for _, r := range group {
		if r.Server == best.server {
			p.StallActive = r.StallActive
			p.MigrationSeals = r.MigrationSeals
		}
	}
	return p, true
}

// RenderEpochs writes the slowest n epochs by total close-out time, one
// row each with the critical-path attribution — the aloha-top drill-down
// and aloha-bench -epoch-report output.
func RenderEpochs(w io.Writer, paths []EpochPath, n int) {
	if len(paths) == 0 {
		fmt.Fprintln(w, "no attributed epochs (journal empty or no complete records)")
		return
	}
	slowest := append([]EpochPath(nil), paths...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].TotalNS > slowest[j].TotalNS })
	if n > 0 && len(slowest) > n {
		slowest = slowest[:n]
	}
	fmt.Fprintf(w, "%-8s %12s %8s %-10s %12s %8s  %s\n",
		"epoch", "total", "server", "stage", "gating", "servers", "notes")
	for _, p := range slowest {
		var notes []string
		if p.StallActive {
			notes = append(notes, "stall")
		}
		if p.MigrationSeals > 0 {
			notes = append(notes, fmt.Sprintf("%d migration seals", p.MigrationSeals))
		}
		note := ""
		for i, s := range notes {
			if i > 0 {
				note += "; "
			}
			note += s
		}
		fmt.Fprintf(w, "%-8d %12s %8d %-10s %12s %8d  %s\n",
			p.Epoch, fmtNS(p.TotalNS), p.GatingServer, p.GatingStage, fmtNS(p.GatingNS), p.Servers, note)
	}
}

func fmtNS(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// GatingSummary tallies how often each server gated a commit and its most
// common gating stage — the aloha-top per-server "gating" column.
func GatingSummary(paths []EpochPath) map[int]GatingCount {
	out := make(map[int]GatingCount)
	stageBy := make(map[int]map[string]int)
	for _, p := range paths {
		g := out[p.GatingServer]
		g.Epochs++
		out[p.GatingServer] = g
		if stageBy[p.GatingServer] == nil {
			stageBy[p.GatingServer] = make(map[string]int)
		}
		stageBy[p.GatingServer][p.GatingStage]++
	}
	for server, stages := range stageBy {
		best, bestN := "", 0
		for stage, n := range stages {
			if n > bestN || (n == bestN && stage < best) {
				best, bestN = stage, n
			}
		}
		g := out[server]
		g.Stage = best
		out[server] = g
	}
	return out
}

// GatingCount is one server's share of the merged critical paths.
type GatingCount struct {
	Epochs int    `json:"epochs"`
	Stage  string `json:"stage"`
}
