package tsdb

import (
	"encoding/json"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"alohadb/internal/metrics"
)

// drive advances the recorder n ticks at the configured interval.
func drive(r *Recorder, start time.Time, n int) time.Time {
	for i := 0; i < n; i++ {
		r.Sample(start)
		start = start.Add(r.cfg.Interval)
	}
	return start
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	r.Start()
	r.Sample(time.Now())
	r.Stop()
	if r.Len() != 0 || r.AnomalyCount() != 0 || r.Annotations() != nil {
		t.Fatal("nil recorder not inert")
	}
	if doc := r.Doc(); len(doc.Series) != 0 {
		t.Fatal("nil recorder produced series")
	}
	if New(Config{}) != nil {
		t.Fatal("sourceless recorder should be nil")
	}
}

func TestRecorderRingsAndDoc(t *testing.T) {
	var ctr atomic.Uint64
	var epoch atomic.Uint64
	r := New(Config{
		Server:    2,
		Interval:  100 * time.Millisecond,
		Retention: 8,
		Epoch:     epoch.Load,
		Sources: []Source{
			{Name: "commit_rate", Kind: KindRate, Unit: "txn/s",
				Value: func() float64 { return float64(ctr.Load()) }},
			{Name: "lag", Kind: KindGauge, Unit: "epochs",
				Value: func() float64 { return 2 }},
		},
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 12; i++ {
		ctr.Add(50) // 50 per 100ms tick = 500/s
		epoch.Add(3)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want retention 8", got)
	}
	doc := r.Doc()
	if doc.Server != 2 || doc.IntervalMS != 100 || doc.Retention != 8 {
		t.Fatalf("doc header = %+v", doc)
	}
	if len(doc.Ticks) != 8 || len(doc.Epochs) != 8 || len(doc.Series) != 2 {
		t.Fatalf("doc shape: ticks=%d epochs=%d series=%d", len(doc.Ticks), len(doc.Epochs), len(doc.Series))
	}
	for i := 1; i < len(doc.Ticks); i++ {
		if doc.Ticks[i] <= doc.Ticks[i-1] || doc.Epochs[i] <= doc.Epochs[i-1] {
			t.Fatalf("timeline not ascending at %d: %v %v", i, doc.Ticks, doc.Epochs)
		}
	}
	rate := doc.Series[0]
	if rate.Kind != "rate" {
		t.Fatalf("kind = %q", rate.Kind)
	}
	last := rate.Samples[len(rate.Samples)-1]
	if math.Abs(last-500) > 1 {
		t.Fatalf("commit_rate sample = %v, want ~500", last)
	}
	if doc.Series[1].Samples[0] != 2 {
		t.Fatalf("gauge sample = %v", doc.Series[1].Samples[0])
	}
}

func TestQuantileWindowedNotLifetime(t *testing.T) {
	h := metrics.NewHistogram(metrics.LatencyBounds())
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 32,
		Sources: []Source{
			{Name: "p99", Kind: KindQuantile, Hist: h, Q: 0.99, Scale: 1e-9, Unit: "seconds"},
		},
	})
	now := time.Unix(1000, 0)
	// A long history of 1ms observations...
	for i := 0; i < 10; i++ {
		for j := 0; j < 100; j++ {
			h.ObserveDuration(time.Millisecond)
		}
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	// ...then one window of 60ms observations.
	for j := 0; j < 100; j++ {
		h.ObserveDuration(60 * time.Millisecond)
	}
	r.Sample(now)
	doc := r.Doc()
	s := doc.Series[0].Samples
	if got := s[len(s)-1]; got < 0.030 {
		t.Fatalf("windowed p99 = %vs, want >= 30ms (lifetime quantile would dilute the burst)", got)
	}
	// An empty window is a gap, not a zero.
	r.Sample(now.Add(100 * time.Millisecond))
	s = r.Doc().Series[0].Samples
	if !math.IsNaN(s[len(s)-1]) {
		t.Fatalf("empty quantile window = %v, want NaN gap", s[len(s)-1])
	}
}

func TestDetectorLevelShiftDetected(t *testing.T) {
	var ctr atomic.Uint64
	var epoch atomic.Uint64
	gateFrom, gateTo := uint64(0), uint64(0)
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 64,
		Epoch:     epoch.Load,
		Gating: func(from, to uint64) string {
			gateFrom, gateTo = from, to
			return "ack-wait"
		},
		Detector: DetectorConfig{Recent: 3, Baseline: 10},
		Sources: []Source{
			{Name: "commit_rate", Kind: KindRate, Detect: Detect{DropFrac: 0.25, MinBaseline: 10},
				Value: func() float64 { return float64(ctr.Load()) }},
		},
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 20; i++ { // healthy baseline: 1000/s
		ctr.Add(100)
		epoch.Add(5)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	if got := r.AnomalyCount(); got != 0 {
		t.Fatalf("anomalies on steady series = %d", got)
	}
	for i := 0; i < 6; i++ { // fault: 100/s, an 90% drop
		ctr.Add(10)
		epoch.Add(5)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	anns := r.Annotations()
	if len(anns) != 1 {
		t.Fatalf("annotations = %+v, want exactly one drop window", anns)
	}
	a := anns[0]
	if a.Kind != AnomalyDrop || !a.Active || a.Series != "commit_rate" {
		t.Fatalf("annotation = %+v", a)
	}
	if a.Observed >= a.Baseline*(1-0.25) {
		t.Fatalf("observed %v vs baseline %v not a 25%% drop", a.Observed, a.Baseline)
	}
	if a.FromEpoch == 0 || a.ToEpoch <= a.FromEpoch {
		t.Fatalf("epoch window [%d,%d] not mapped", a.FromEpoch, a.ToEpoch)
	}
	if a.GatingStage != "ack-wait" || gateFrom != a.FromEpoch || gateTo != a.ToEpoch {
		t.Fatalf("gating cross-link: stage=%q called with [%d,%d], annotation [%d,%d]",
			a.GatingStage, gateFrom, gateTo, a.FromEpoch, a.ToEpoch)
	}
	// Recovery closes the window.
	for i := 0; i < 16; i++ {
		ctr.Add(100)
		epoch.Add(5)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	anns = r.Annotations()
	if len(anns) != 1 || anns[0].Active {
		t.Fatalf("window did not close on recovery: %+v", anns)
	}
	if anns[0].EndMS <= anns[0].StartMS {
		t.Fatalf("closed window has no span: %+v", anns[0])
	}
}

func TestDetectorNoiseNotFlagged(t *testing.T) {
	var ctr atomic.Uint64
	i := 0
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 64,
		Detector:  DetectorConfig{Recent: 3, Baseline: 10},
		Sources: []Source{
			{Name: "commit_rate", Kind: KindRate, Detect: Detect{DropFrac: 0.25, MinBaseline: 10},
				Value: func() float64 { return float64(ctr.Load()) }},
		},
	})
	now := time.Unix(1000, 0)
	for n := 0; n < 60; n++ {
		// +-10% wiggle around 100/tick stays inside the 25% tolerance.
		ctr.Add(uint64(100 + 10*((i%3)-1)))
		i++
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	if got := r.AnomalyCount(); got != 0 {
		t.Fatalf("noise flagged: %d annotations %+v", got, r.Annotations())
	}
}

func TestDetectorColdStartSuppressed(t *testing.T) {
	var v atomic.Uint64
	v.Store(100)
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 64,
		Detector:  DetectorConfig{Recent: 3, Baseline: 10},
		Sources: []Source{
			// A gauge that collapses immediately: without cold-start
			// suppression the first few ticks would look like a drop.
			{Name: "g", Kind: KindGauge, Detect: Detect{DropFrac: 0.25, MinBaseline: 1},
				Value: func() float64 { return float64(v.Load()) }},
		},
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
		v.Store(v.Load() / 2)
	}
	if got := r.AnomalyCount(); got != 0 {
		t.Fatalf("cold start flagged: %+v", r.Annotations())
	}
}

func TestDetectorRiseAndOnset(t *testing.T) {
	lat := atomic.Uint64{}
	lat.Store(1) // ms
	var stalls atomic.Uint64
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 64,
		Detector:  DetectorConfig{Recent: 3, Baseline: 10},
		Sources: []Source{
			{Name: "p99", Kind: KindGauge, Detect: Detect{RiseFactor: 2, MinBaseline: 0.5},
				Value: func() float64 { return float64(lat.Load()) }},
			{Name: "stalls", Kind: KindRate, Detect: Detect{Onset: true},
				Value: func() float64 { return float64(stalls.Load()) }},
		},
	})
	now := drive(r, time.Unix(1000, 0), 20)
	lat.Store(5) // x5 the baseline
	stalls.Add(1)
	now = drive(r, now, 4)
	kinds := map[string]string{}
	for _, a := range r.Annotations() {
		kinds[a.Series] = a.Kind
	}
	if kinds["p99"] != AnomalyRise {
		t.Fatalf("rise not flagged: %+v", r.Annotations())
	}
	if kinds["stalls"] != AnomalyOnset {
		t.Fatalf("stall onset not flagged: %+v", r.Annotations())
	}
}

func TestSamplesJSONGaps(t *testing.T) {
	in := Samples{1.5, math.NaN(), 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1.5,null,3]" {
		t.Fatalf("marshal = %s", b)
	}
	var out Samples
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1.5 || !math.IsNaN(out[1]) || out[2] != 3 {
		t.Fatalf("round trip = %v", out)
	}
}

func TestRecorderStartStop(t *testing.T) {
	var ctr atomic.Uint64
	r := New(Config{
		Interval: time.Millisecond,
		Sources: []Source{
			{Name: "c", Kind: KindRate, Value: func() float64 { return float64(ctr.Add(1)) }},
		},
	})
	r.Start()
	deadline := time.Now().Add(2 * time.Second)
	for r.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if r.Len() < 3 {
		t.Fatalf("sampling loop took no samples: %d", r.Len())
	}
}

// BenchmarkRecorderSample is the CI allocation guard for the always-on
// sample path: gauge, rate, and windowed-quantile sources plus detection
// must not allocate at steady state.
func BenchmarkRecorderSample(b *testing.B) {
	var ctr atomic.Uint64
	var epoch atomic.Uint64
	h := metrics.NewHistogram(metrics.LatencyBounds())
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	r := New(Config{
		Interval:  100 * time.Millisecond,
		Retention: 240,
		Epoch:     epoch.Load,
		Sources: []Source{
			{Name: "commit_rate", Kind: KindRate, Detect: Detect{DropFrac: 0.25, MinBaseline: 10},
				Value: func() float64 { return float64(ctr.Load()) }},
			{Name: "lag", Kind: KindGauge, Detect: Detect{RiseFactor: 3, MinBaseline: 3},
				Value: func() float64 { return 1 }},
			{Name: "p99", Kind: KindQuantile, Hist: h, Q: 0.99, Scale: 1e-9,
				Detect: Detect{RiseFactor: 2.5, MinBaseline: 0.002}},
		},
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 64; i++ { // warm the scratch buffers and windows
		ctr.Add(100)
		epoch.Add(1)
		h.ObserveDuration(time.Millisecond)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Add(100)
		epoch.Add(1)
		h.ObserveDuration(time.Millisecond)
		r.Sample(now)
		now = now.Add(100 * time.Millisecond)
	}
}
