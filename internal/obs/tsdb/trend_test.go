package tsdb

import (
	"path/filepath"
	"strings"
	"testing"
)

func row(kind, scenario string, tput, p99, stall float64, anomalies int) TrendRow {
	return TrendRow{
		Kind: kind, Scenario: scenario,
		Throughput: tput, P99MS: p99, StallS: stall, Anomalies: anomalies,
	}
}

func TestTrendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "TREND_soak.jsonl")
	in := []TrendRow{
		row(TrendKindSoak, "payment-ledger", 1200, 8, 0, 1),
		row(TrendKindBench, "fig6/ALOHA/c8", 90000, 2.5, 0, 0),
	}
	if err := WriteTrend(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Scenario != "payment-ledger" || out[0].Schema != TrendSchema {
		t.Fatalf("round trip = %+v", out)
	}
	if out[1].Throughput != 90000 {
		t.Fatalf("bench row = %+v", out[1])
	}
}

func TestGateTrendCatchesRegressions(t *testing.T) {
	prev := []TrendRow{
		row(TrendKindSoak, "ledger", 1000, 20, 0, 1),
		row(TrendKindSoak, "feed", 500, 15, 0, 0),
		row(TrendKindSoak, "gone", 100, 5, 0, 0),
	}
	cur := []TrendRow{
		row(TrendKindSoak, "ledger", 400, 80, 5, 20), // collapsed on every axis
		row(TrendKindSoak, "feed", 480, 16, 0.2, 1),  // within tolerance
		row(TrendKindSoak, "new-scenario", 50, 5, 0, 0),
	}
	fails := GateTrend(prev, cur, GateConfig{})
	joined := strings.Join(fails, "\n")
	for _, want := range []string{
		"soak/ledger: throughput",
		"soak/ledger: p99",
		"soak/ledger: stall time",
		"soak/ledger: anomaly windows",
		"soak/gone: missing",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("gate missed %q in:\n%s", want, joined)
		}
	}
	for _, never := range []string{"feed", "new-scenario"} {
		if strings.Contains(joined, never) {
			t.Fatalf("gate flagged healthy row %q:\n%s", never, joined)
		}
	}
}

func TestGateTrendTolerances(t *testing.T) {
	prev := []TrendRow{row(TrendKindSoak, "s", 1000, 2, 0, 0)}
	// 20% throughput drop is inside the default 35% tolerance; p99 grew
	// x3 but stays under the 10ms absolute floor.
	cur := []TrendRow{row(TrendKindSoak, "s", 800, 6, 0.5, 3)}
	if fails := GateTrend(prev, cur, GateConfig{}); len(fails) != 0 {
		t.Fatalf("loose tolerances still failed: %v", fails)
	}
	// Beyond tolerance fails even from a small-p99 baseline.
	cur = []TrendRow{row(TrendKindSoak, "s", 800, 40, 0.5, 3)}
	if fails := GateTrend(prev, cur, GateConfig{}); len(fails) != 1 {
		t.Fatalf("p99 blow-up not caught: %v", fails)
	}
}
