// Package tsdb is ALOHA-DB's in-process metrics flight recorder: a
// fixed-memory time-series store that samples a curated set of signals
// (commit/abort throughput, per-stage epoch quantiles, visibility lag,
// stall count, queue depths, WAL fsync age, runtime health) into
// per-series ring buffers on one shared tick. Where /metrics answers
// "what is the server doing right now", the recorder answers "what was
// it doing two minutes ago, and when did it change" — the question every
// post-hoc slowdown investigation starts with.
//
// Alongside the wall clock, every tick samples the committed-epoch
// frontier, so each ring slot maps to a window of the epoch protocol's
// own time base. That mapping is what lets an anomaly window (detect.go)
// be cross-linked to the epoch journal's gating attribution: "throughput
// dropped between epochs 410 and 460, and the journal blames ack-wait".
//
// The recorder follows the package's observability contract: a nil
// *Recorder is valid and inert, and the steady-state Sample path
// performs zero allocations (CI-guarded by BenchmarkRecorderSample).
package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"alohadb/internal/metrics"
)

// Kind discriminates how a source's readings become ring samples.
type Kind uint8

const (
	// KindGauge stores Value() readings as-is.
	KindGauge Kind = iota
	// KindRate stores the per-second increase of a cumulative counter
	// between consecutive ticks.
	KindRate
	// KindQuantile stores a quantile of the observations recorded into
	// Hist since the previous tick — a windowed quantile, unlike the
	// lifetime quantiles on /metrics, so a two-second p99 excursion is
	// visible instead of being averaged into an hour of history.
	KindQuantile
)

// String names the kind in the /debug/timeseries document.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindRate:
		return "rate"
	case KindQuantile:
		return "quantile"
	default:
		return "unknown"
	}
}

// Source describes one recorded series.
type Source struct {
	// Name identifies the series (e.g. "commit_rate", "stage_seal_p99").
	Name string
	// Unit is a display hint ("txn/s", "seconds", "epochs", "bytes").
	Unit string
	// Kind selects the sampling scheme.
	Kind Kind
	// Value returns the gauge reading (KindGauge) or the cumulative
	// counter (KindRate). Must not allocate: it runs on every tick.
	Value func() float64
	// Hist is the cumulative histogram sampled by KindQuantile.
	Hist *metrics.Histogram
	// Q is the quantile for KindQuantile (e.g. 0.5, 0.99).
	Q float64
	// Scale multiplies every sampled value (1e-9 records a nanosecond
	// histogram in seconds). Zero means 1.
	Scale float64
	// Detect enables anomaly detection on this series; the zero value
	// disables it.
	Detect Detect
}

// Config configures one server's recorder.
type Config struct {
	// Server stamps the /debug/timeseries document.
	Server int
	// Interval is the sample cadence (default 500ms).
	Interval time.Duration
	// Retention is the ring length in samples (default 240, two minutes
	// at the default interval). Memory is Retention x 8B per series plus
	// the shared tick and epoch rings.
	Retention int
	// Epoch, when set, samples the committed-epoch frontier alongside the
	// wall clock so every ring slot maps to an epoch window. Must not
	// allocate.
	Epoch func() uint64
	// Gating, when set, names the epoch journal's dominant gating stage
	// over an epoch range; annotations carry it as their local critical-
	// path attribution. Called only when an anomaly opens or closes.
	Gating func(from, to uint64) string
	// Detector tunes the shared anomaly-detection windows.
	Detector DetectorConfig
	// Sources are the recorded series.
	Sources []Source
}

type series struct {
	src  Source
	ring []float64 // parallel to Recorder.ticks; gaps are NaN

	// Rate state: previous cumulative reading.
	lastRaw  float64
	haveLast bool

	// Quantile state: previous/current cumulative snapshots plus a delta
	// scratch buffer, all reused across ticks.
	prev, cur, delta metrics.HistogramSnapshot

	open *Annotation // open anomaly window, nil when healthy
}

// Recorder samples its sources on a fixed cadence into ring buffers. A
// nil *Recorder is valid and inert.
type Recorder struct {
	cfg Config

	mu         sync.Mutex
	series     []*series
	ticks      []int64  // unix ms per tick, ring
	epochs     []uint64 // committed epoch per tick, ring
	n          int      // ticks taken; slot for tick t is t % Retention
	lastTickMS int64
	anns       []*Annotation // bounded, newest last
	annTotal   int           // annotations opened since start (ring trims)

	stop chan struct{}
	done chan struct{}
}

// New builds a stopped recorder; call Start to begin sampling, or drive
// Sample directly (tests, simulators). Returns nil (inert) when no
// sources are configured.
func New(cfg Config) *Recorder {
	if len(cfg.Sources) == 0 {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 240
	}
	cfg.Detector = cfg.Detector.withDefaults()
	r := &Recorder{
		cfg:    cfg,
		ticks:  make([]int64, cfg.Retention),
		epochs: make([]uint64, cfg.Retention),
	}
	for _, src := range cfg.Sources {
		if src.Scale == 0 {
			src.Scale = 1
		}
		r.series = append(r.series, &series{
			src:  src,
			ring: make([]float64, cfg.Retention),
		})
	}
	return r
}

// Start begins the sampling loop. Nil-safe no-op.
func (r *Recorder) Start() {
	if r == nil || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop()
}

// Stop halts the loop. Nil-safe, idempotent.
func (r *Recorder) Stop() {
	if r == nil || r.stop == nil {
		return
	}
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

func (r *Recorder) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	// Prime rate and quantile baselines so the second tick already
	// yields real deltas.
	r.Sample(time.Now())
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.Sample(now)
		}
	}
}

// Sample takes one tick: reads every source, advances the rings, and
// runs anomaly detection. Exported so simulators and tests can drive the
// recorder on their own clock. Nil-safe; zero allocations once the
// histogram scratch buffers are warm and no anomaly window opens.
func (r *Recorder) Sample(now time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var e uint64
	if r.cfg.Epoch != nil {
		e = r.cfg.Epoch()
	}
	ms := now.UnixMilli()
	dt := float64(ms-r.lastTickMS) / 1000
	if r.n == 0 || dt <= 0 {
		dt = r.cfg.Interval.Seconds()
	}
	idx := r.n % r.cfg.Retention
	r.ticks[idx] = ms
	r.epochs[idx] = e
	for _, s := range r.series {
		s.ring[idx] = r.sampleOne(s, dt)
	}
	r.n++
	r.lastTickMS = ms
	for _, s := range r.series {
		r.detect(s, ms, e)
	}
}

func (r *Recorder) sampleOne(s *series, dt float64) float64 {
	var v float64
	switch s.src.Kind {
	case KindGauge:
		v = s.src.Value()
	case KindRate:
		raw := s.src.Value()
		if !s.haveLast {
			v = math.NaN()
		} else {
			v = (raw - s.lastRaw) / dt
			if v < 0 {
				v = 0 // counter reset
			}
		}
		s.lastRaw = raw
		s.haveLast = true
	case KindQuantile:
		s.src.Hist.SnapshotInto(&s.cur)
		if !s.haveLast {
			v = math.NaN()
		} else {
			deltaInto(&s.delta, s.cur, s.prev)
			if s.delta.Count == 0 {
				// No observations this window: a gap, not a zero.
				v = math.NaN()
			} else {
				v = float64(s.delta.Quantile(s.src.Q))
			}
		}
		s.prev, s.cur = s.cur, s.prev
		s.haveLast = true
	}
	return v * s.src.Scale
}

// deltaInto fills dst with cur minus prev (per-tick bucket deltas),
// reusing dst's Counts buffer. Mismatched lengths (first fill) yield an
// empty delta.
func deltaInto(dst *metrics.HistogramSnapshot, cur, prev metrics.HistogramSnapshot) {
	dst.Bounds = cur.Bounds
	if cap(dst.Counts) < len(cur.Counts) {
		dst.Counts = make([]uint64, len(cur.Counts))
	}
	dst.Counts = dst.Counts[:len(cur.Counts)]
	dst.Count = 0
	if len(prev.Counts) != len(cur.Counts) {
		for i := range dst.Counts {
			dst.Counts[i] = 0
		}
		dst.Sum = 0
		return
	}
	for i := range cur.Counts {
		d := cur.Counts[i] - prev.Counts[i]
		dst.Counts[i] = d
		dst.Count += d
	}
	dst.Sum = cur.Sum - prev.Sum
}

// Len returns the number of retained samples. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return min(r.n, r.cfg.Retention)
}

// AnomalyCount returns the number of anomaly windows opened since start
// (including windows since trimmed from the annotation ring). Nil-safe.
func (r *Recorder) AnomalyCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.annTotal
}

// Annotations returns a copy of the annotation ring, oldest first.
// Nil-safe.
func (r *Recorder) Annotations() []Annotation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Annotation, len(r.anns))
	for i, a := range r.anns {
		out[i] = *a
	}
	return out
}

// Samples is a series' ring exported oldest-to-newest. Ticks where the
// series had no reading (first rate tick, empty quantile window) marshal
// as JSON nulls so consumers never see fabricated points.
type Samples []float64

// MarshalJSON renders NaN gaps as null.
func (s Samples) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, v := range s {
		if i > 0 {
			buf.WriteByte(',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			buf.WriteString("null")
			continue
		}
		b := strconv.AppendFloat(buf.AvailableBuffer(), v, 'g', -1, 64)
		buf.Write(b)
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// UnmarshalJSON maps nulls back to NaN gaps.
func (s *Samples) UnmarshalJSON(b []byte) error {
	var raw []*float64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	out := make(Samples, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	*s = out
	return nil
}

// SeriesDoc is one series in the /debug/timeseries document.
type SeriesDoc struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Unit    string  `json:"unit,omitempty"`
	Samples Samples `json:"samples"`
}

// Doc is the /debug/timeseries document: the shared tick timeline (wall
// clock plus committed-epoch frontier), every series' ring, and the
// anomaly annotations.
type Doc struct {
	Server      int          `json:"server"`
	IntervalMS  int64        `json:"interval_ms"`
	Retention   int          `json:"retention"`
	Ticks       []int64      `json:"ticks_unix_ms"`
	Epochs      []uint64     `json:"epochs"`
	Series      []SeriesDoc  `json:"series"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// Doc assembles the document, samples oldest first. Nil-safe (empty).
func (r *Recorder) Doc() Doc {
	if r == nil {
		return Doc{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	doc := Doc{
		Server:     r.cfg.Server,
		IntervalMS: r.cfg.Interval.Milliseconds(),
		Retention:  r.cfg.Retention,
	}
	valid := min(r.n, r.cfg.Retention)
	doc.Ticks = make([]int64, valid)
	doc.Epochs = make([]uint64, valid)
	for i := 0; i < valid; i++ {
		slot := (r.n - valid + i) % r.cfg.Retention
		doc.Ticks[i] = r.ticks[slot]
		doc.Epochs[i] = r.epochs[slot]
	}
	doc.Series = make([]SeriesDoc, len(r.series))
	for si, s := range r.series {
		sd := SeriesDoc{Name: s.src.Name, Kind: s.src.Kind.String(), Unit: s.src.Unit}
		sd.Samples = make(Samples, valid)
		for i := 0; i < valid; i++ {
			sd.Samples[i] = s.ring[(r.n-valid+i)%r.cfg.Retention]
		}
		doc.Series[si] = sd
	}
	if len(r.anns) > 0 {
		doc.Annotations = make([]Annotation, len(r.anns))
		for i, a := range r.anns {
			doc.Annotations[i] = *a
		}
	}
	return doc
}

// Handler serves Doc as JSON (mounted at /debug/timeseries). Nil-safe:
// a disabled recorder serves an empty document.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Doc())
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
