package tsdb

import "math"

// Detect configures per-series anomaly detection: a level-shift test
// comparing the mean of a short recent window against the mean of the
// trailing baseline window before it. It deliberately models only the
// failure shapes the soak gates care about — a sustained throughput
// collapse, a sustained tail blow-up, a stall starting — and accepts a
// shifted level as the new baseline once the trailing window slides past
// the transition (the annotation records the transition itself).
type Detect struct {
	// DropFrac flags a recent mean below baseline*(1-DropFrac), e.g. 0.25
	// flags a 25% throughput drop. Zero disables the drop test.
	DropFrac float64
	// RiseFactor flags a recent mean above max(baseline, MinBaseline) *
	// RiseFactor, e.g. 2 flags a doubled p99. Zero disables the rise test.
	RiseFactor float64
	// Onset flags any recent activity on a series whose baseline is zero
	// (stall count going 0 -> nonzero).
	Onset bool
	// MinBaseline is the noise floor: drop tests are suppressed below it,
	// and rise tests measure against at least it, so a 100µs -> 300µs
	// wiggle on an idle series does not page anyone.
	MinBaseline float64
}

func (d Detect) enabled() bool {
	return d.DropFrac > 0 || d.RiseFactor > 0 || d.Onset
}

// DetectorConfig tunes the shared detection windows.
type DetectorConfig struct {
	// Recent is the window whose mean is tested (default 3 samples, so a
	// single noisy tick cannot open a window).
	Recent int
	// Baseline is the trailing window preceding Recent (default 24).
	Baseline int
	// MinSamples suppresses detection until this many ticks exist
	// (cold-start suppression; default Recent+Baseline, i.e. a full pair
	// of windows).
	MinSamples int
	// MaxAnnotations bounds the annotation ring (default 64).
	MaxAnnotations int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Recent <= 0 {
		c.Recent = 3
	}
	if c.Baseline <= 0 {
		c.Baseline = 24
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Recent + c.Baseline
	}
	if c.MaxAnnotations <= 0 {
		c.MaxAnnotations = 64
	}
	return c
}

// Annotation kinds.
const (
	AnomalyDrop  = "drop"
	AnomalyRise  = "rise"
	AnomalyOnset = "onset"
)

// Annotation marks a window where a series departed its trailing
// baseline. From/ToEpoch map the window onto the committed-epoch
// frontier, and GatingStage carries the epoch journal's dominant
// critical-path attribution for those epochs — the cross-link that turns
// "throughput dropped here" into "throughput dropped here, gated on
// ack-wait".
type Annotation struct {
	Series string `json:"series"`
	Kind   string `json:"kind"` // drop | rise | onset
	// Active is true while the window is still open.
	Active  bool  `json:"active"`
	StartMS int64 `json:"start_unix_ms"`
	EndMS   int64 `json:"end_unix_ms,omitempty"`
	// Baseline is the trailing-window mean when the anomaly opened;
	// Observed is the worst recent-window mean seen while open.
	Baseline float64 `json:"baseline"`
	Observed float64 `json:"observed"`
	// FromEpoch/ToEpoch bound the window on the epoch frontier (0 when
	// the recorder has no epoch clock).
	FromEpoch uint64 `json:"from_epoch,omitempty"`
	ToEpoch   uint64 `json:"to_epoch,omitempty"`
	// GatingStage is the journal's dominant gating stage across the
	// epoch window (empty when no journal is wired).
	GatingStage string `json:"gating_stage,omitempty"`
}

// detect runs the level-shift test for one series after a tick. Called
// with r.mu held, after r.n was advanced.
func (r *Recorder) detect(s *series, nowMS int64, epoch uint64) {
	d := s.src.Detect
	if !d.enabled() || r.n < r.cfg.Detector.MinSamples {
		return
	}
	dc := r.cfg.Detector
	recent, rok := r.windowMean(s, 0, dc.Recent)
	baseline, bok := r.windowMean(s, dc.Recent, dc.Baseline)
	if !rok || !bok {
		return
	}
	kind := ""
	switch {
	case d.Onset && baseline <= 0 && recent > 0:
		kind = AnomalyOnset
	case d.DropFrac > 0 && baseline >= d.MinBaseline && baseline > 0 &&
		recent < baseline*(1-d.DropFrac):
		kind = AnomalyDrop
	case d.RiseFactor > 0 && recent > math.Max(baseline, d.MinBaseline)*d.RiseFactor:
		kind = AnomalyRise
	}

	if a := s.open; a != nil {
		if kind == "" {
			// Condition cleared: close the window and refresh the journal
			// attribution over its final epoch span.
			a.Active = false
			a.EndMS = nowMS
			a.ToEpoch = epoch
			a.GatingStage = r.gating(a.FromEpoch, epoch)
			s.open = nil
			return
		}
		a.EndMS = nowMS
		a.ToEpoch = epoch
		// Keep the attribution live while the window is open so an
		// operator watching /debug/timeseries mid-incident sees the
		// current gating stage, not the one from the first tick.
		a.GatingStage = r.gating(a.FromEpoch, epoch)
		if (a.Kind == AnomalyDrop && recent < a.Observed) ||
			(a.Kind != AnomalyDrop && recent > a.Observed) {
			a.Observed = recent
		}
		return
	}
	if kind == "" {
		return
	}
	// The window opened: its start is the first tick of the recent
	// window, both on the wall clock and the epoch frontier.
	startSlot := (r.n - dc.Recent) % r.cfg.Retention
	a := &Annotation{
		Series:    s.src.Name,
		Kind:      kind,
		Active:    true,
		StartMS:   r.ticks[startSlot],
		EndMS:     nowMS,
		Baseline:  baseline,
		Observed:  recent,
		FromEpoch: r.epochs[startSlot],
		ToEpoch:   epoch,
	}
	a.GatingStage = r.gating(a.FromEpoch, epoch)
	s.open = a
	r.annTotal++
	r.anns = append(r.anns, a)
	if len(r.anns) > r.cfg.Detector.MaxAnnotations {
		r.anns = r.anns[len(r.anns)-r.cfg.Detector.MaxAnnotations:]
	}
}

// windowMean averages the n ring samples ending `skip` ticks before the
// newest, ignoring NaN gaps; ok is false when fewer than half the window
// is present (detection on mostly-gap windows would be noise).
func (r *Recorder) windowMean(s *series, skip, n int) (mean float64, ok bool) {
	var sum float64
	var cnt int
	oldest := r.n - min(r.n, r.cfg.Retention)
	for t := r.n - 1 - skip; t >= r.n-skip-n; t-- {
		if t < oldest {
			break
		}
		v := s.ring[t%r.cfg.Retention]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt < (n+1)/2 {
		return 0, false
	}
	return sum / float64(cnt), true
}

func (r *Recorder) gating(from, to uint64) string {
	if r.cfg.Gating == nil || from == 0 {
		return ""
	}
	return r.cfg.Gating(from, to)
}
