package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// TrendSchema versions the TREND_*.jsonl row format shared by the
// scenario soak and the bench figures. Rows from other schemas are
// skipped on read, so the format can evolve without poisoning old
// baselines.
const TrendSchema = "aloha-trend/v1"

// Trend row kinds.
const (
	TrendKindSoak  = "soak"
	TrendKindBench = "bench"
)

// TrendRow is one run's end-of-run summary for one scenario or bench
// point: the numbers the nightly gate compares against the previous
// night. One schema for both soak and bench keeps the two regression
// trajectories comparable in the same tooling.
type TrendRow struct {
	Schema   string `json:"schema"`
	Kind     string `json:"kind"` // soak | bench
	Scenario string `json:"scenario"`
	At       string `json:"at,omitempty"` // RFC3339, stamped by the writer
	Seed     int64  `json:"seed,omitempty"`
	// WindowS is the measured wall-clock window in seconds.
	WindowS float64 `json:"window_s,omitempty"`
	// Throughput is committed transactions per second over the window.
	Throughput float64 `json:"throughput_txn_s"`
	// P99MS is the p99 transaction latency in milliseconds.
	P99MS   float64 `json:"p99_ms"`
	MeanMS  float64 `json:"mean_ms,omitempty"`
	Commits uint64  `json:"commits,omitempty"`
	Aborts  uint64  `json:"aborts,omitempty"`
	// StallS is the cumulative watchdog stall time in seconds.
	StallS float64 `json:"stall_seconds"`
	// Anomalies counts the recorder's anomaly windows over the run.
	Anomalies int `json:"anomalies"`
}

// key matches rows across runs.
func (t TrendRow) key() string { return t.Kind + "/" + t.Scenario }

// WriteTrend writes rows as JSONL, replacing path.
func WriteTrend(path string, rows []TrendRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range rows {
		rows[i].Schema = TrendSchema
		if err := enc.Encode(rows[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrend parses a JSONL trend file, skipping blank lines and rows
// from other schemas. Duplicate (kind, scenario) keys keep the last row.
func ReadTrend(path string) ([]TrendRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []TrendRow
	byKey := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var row TrendRow
		if err := json.Unmarshal(b, &row); err != nil {
			return nil, fmt.Errorf("tsdb: %s line %d: %w", path, line, err)
		}
		if row.Schema != TrendSchema {
			continue
		}
		if i, ok := byKey[row.key()]; ok {
			rows[i] = row
			continue
		}
		byKey[row.key()] = len(rows)
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// GateConfig tunes the trend gate. Tolerances default loose: the gate
// runs on shared CI runners and hunts sustained regressions, not
// run-to-run noise.
type GateConfig struct {
	// Tolerance is the fractional slack on a throughput drop and a p99
	// rise (default 0.35).
	Tolerance float64
	// P99FloorMS ignores p99 movement while the current value stays
	// under this absolute ceiling (default 10ms) — doubling a 300µs p99
	// is not a regression worth a red nightly.
	P99FloorMS float64
	// StallSlackS allows this many additional stall seconds (default 1).
	StallSlackS float64
	// AnomalySlack allows this many additional anomaly windows
	// (default 5).
	AnomalySlack int
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.35
	}
	if c.P99FloorMS <= 0 {
		c.P99FloorMS = 10
	}
	if c.StallSlackS <= 0 {
		c.StallSlackS = 1
	}
	if c.AnomalySlack <= 0 {
		c.AnomalySlack = 5
	}
	return c
}

// GateTrend compares the current run's rows against the previous run's,
// matched by (kind, scenario), and returns one failure string per
// sustained regression: a throughput drop or p99 rise beyond the
// tolerance, stall time beyond the slack, an anomaly-count jump, or a
// scenario that vanished from the run. New scenarios (in cur, not prev)
// pass — they have no baseline yet.
func GateTrend(prev, cur []TrendRow, cfg GateConfig) []string {
	cfg = cfg.withDefaults()
	curBy := make(map[string]TrendRow, len(cur))
	for _, row := range cur {
		curBy[row.key()] = row
	}
	var fails []string
	keys := make([]string, 0, len(prev))
	prevBy := make(map[string]TrendRow, len(prev))
	for _, row := range prev {
		keys = append(keys, row.key())
		prevBy[row.key()] = row
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := prevBy[k]
		c, ok := curBy[k]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from current run (was %.0f txn/s)", k, p.Throughput))
			continue
		}
		if p.Throughput > 0 && c.Throughput < p.Throughput*(1-cfg.Tolerance) {
			fails = append(fails, fmt.Sprintf("%s: throughput %.0f -> %.0f txn/s (-%.0f%%, tolerance %.0f%%)",
				k, p.Throughput, c.Throughput, 100*(1-c.Throughput/p.Throughput), 100*cfg.Tolerance))
		}
		if effP99 := maxf(p.P99MS, cfg.P99FloorMS); c.P99MS > effP99*(1+cfg.Tolerance) {
			fails = append(fails, fmt.Sprintf("%s: p99 %.1fms -> %.1fms (baseline floor %.1fms, tolerance %.0f%%)",
				k, p.P99MS, c.P99MS, cfg.P99FloorMS, 100*cfg.Tolerance))
		}
		if c.StallS > p.StallS+cfg.StallSlackS {
			fails = append(fails, fmt.Sprintf("%s: stall time %.1fs -> %.1fs (slack %.1fs)",
				k, p.StallS, c.StallS, cfg.StallSlackS))
		}
		if c.Anomalies > p.Anomalies+cfg.AnomalySlack {
			fails = append(fails, fmt.Sprintf("%s: anomaly windows %d -> %d (slack %d)",
				k, p.Anomalies, c.Anomalies, cfg.AnomalySlack))
		}
	}
	return fails
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
