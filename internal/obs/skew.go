// Package obs is ALOHA-DB's progress-oriented diagnosis layer: an epoch
// watchdog with a stall flight recorder (paper §III-B — one laggard FE ack
// or severed link stalls visibility for every transaction in the epoch)
// and a hot-key/partition skew profiler that makes the paper's key-level
// concurrency control visible. Both follow internal/trace's convention:
// the disabled path is nil-receiver safe and allocation-free, so the
// engine hooks stay unconditional.
package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"alohadb/internal/metrics"
)

// SkewConfig configures the hot-key profiler.
type SkewConfig struct {
	// SampleEvery observes one access out of every SampleEvery (default
	// 64). 1 counts everything (tests); the stride keeps the hot path to
	// one atomic add per access.
	SampleEvery int
	// TopK is how many hot keys Snapshot reports (default 32).
	TopK int
	// Partitions sizes the per-partition access counters; accesses with a
	// partition outside [0,Partitions) only count toward key totals.
	Partitions int
}

// Skew is a sampling hot-key/partition profiler for the mvstore/processor
// hot path. A nil *Skew is valid and free: every method is a no-op, so
// servers keep their Observe calls unconditional (the tracer's pattern).
//
// Counting is stride sampling feeding a space-saving (Misra-Gries style)
// top-K table: each sampled access adds SampleEvery to its key's counter,
// so counters estimate true access counts; when the table is full the
// minimum entry is evicted and the newcomer inherits its count — the
// classic bounded-memory heavy-hitter guarantee.
type Skew struct {
	every      uint64
	topK       int
	cap        int
	partitions []atomic.Uint64

	tick     atomic.Uint64
	observed atomic.Uint64 // all Observe calls, sampled or not

	mu      sync.Mutex
	counts  map[string]uint64
	sampled uint64
}

// NewSkew builds a profiler. Zero-value config fields pick defaults.
func NewSkew(cfg SkewConfig) *Skew {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 32
	}
	capacity := 4 * cfg.TopK
	if capacity < 64 {
		capacity = 64
	}
	s := &Skew{
		every:  uint64(cfg.SampleEvery),
		topK:   cfg.TopK,
		cap:    capacity,
		counts: make(map[string]uint64, capacity),
	}
	if cfg.Partitions > 0 {
		s.partitions = make([]atomic.Uint64, cfg.Partitions)
	}
	return s
}

// Observe records one access of key on the given partition. Nil-safe; the
// unsampled path is one atomic increment and allocates nothing.
func (s *Skew) Observe(partition int, key string) {
	if s == nil {
		return
	}
	s.observed.Add(1)
	if s.tick.Add(1)%s.every != 0 {
		return
	}
	if partition >= 0 && partition < len(s.partitions) {
		s.partitions[partition].Add(1)
	}
	s.mu.Lock()
	s.sampled++
	if c, ok := s.counts[key]; ok {
		s.counts[key] = c + s.every
	} else if len(s.counts) < s.cap {
		s.counts[key] = s.every
	} else {
		// Space-saving eviction: replace the minimum and inherit its
		// count, so a newly hot key overtakes in O(hits) samples.
		minKey, minCount := "", uint64(0)
		first := true
		for k, c := range s.counts {
			if first || c < minCount {
				minKey, minCount, first = k, c, false
			}
		}
		delete(s.counts, minKey)
		s.counts[key] = minCount + s.every
	}
	s.mu.Unlock()
}

// HotKey is one entry of the top-K ranking; Count estimates true accesses
// (sampled hits scaled by the stride).
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
}

// PartitionLoad is one partition's estimated access count and share of the
// total.
type PartitionLoad struct {
	Partition int     `json:"partition"`
	Accesses  uint64  `json:"accesses"`
	Share     float64 `json:"share"`
}

// SkewSnapshot is the profiler's point-in-time view, served as JSON at
// /debug/hotkeys.
type SkewSnapshot struct {
	SampleEvery uint64 `json:"sample_every"`
	// Observed counts every Observe call; Sampled is how many fed the
	// top-K table.
	Observed uint64 `json:"observed"`
	Sampled  uint64 `json:"sampled"`
	// TopKeys is sorted by estimated count descending, key ascending on
	// ties (a stable golden-test order).
	TopKeys    []HotKey        `json:"top_keys"`
	Partitions []PartitionLoad `json:"partitions,omitempty"`
	// Imbalance is max/mean of per-partition accesses (1.0 = perfectly
	// even, 0 when nothing was sampled).
	Imbalance float64 `json:"imbalance"`
}

// Snapshot captures the current ranking. Nil-safe (returns zero value).
func (s *Skew) Snapshot() SkewSnapshot {
	if s == nil {
		return SkewSnapshot{}
	}
	snap := SkewSnapshot{
		SampleEvery: s.every,
		Observed:    s.observed.Load(),
	}
	s.mu.Lock()
	snap.Sampled = s.sampled
	keys := make([]HotKey, 0, len(s.counts))
	for k, c := range s.counts {
		keys = append(keys, HotKey{Key: k, Count: c})
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Count != keys[j].Count {
			return keys[i].Count > keys[j].Count
		}
		return keys[i].Key < keys[j].Key
	})
	if len(keys) > s.topK {
		keys = keys[:s.topK]
	}
	snap.TopKeys = keys
	if n := len(s.partitions); n > 0 {
		var total, max uint64
		snap.Partitions = make([]PartitionLoad, n)
		for i := range s.partitions {
			c := s.partitions[i].Load() * s.every
			snap.Partitions[i] = PartitionLoad{Partition: i, Accesses: c}
			total += c
			if c > max {
				max = c
			}
		}
		if total > 0 {
			for i := range snap.Partitions {
				snap.Partitions[i].Share = float64(snap.Partitions[i].Accesses) / float64(total)
			}
			mean := float64(total) / float64(n)
			snap.Imbalance = float64(max) / mean
		}
	}
	return snap
}

// Skew metric family names.
const (
	FamSkewObserved  = "aloha_skew_observed_total"
	FamSkewSampled   = "aloha_skew_sampled_total"
	FamSkewPartition = "aloha_skew_partition_accesses"
	FamSkewImbalance = "aloha_skew_imbalance_ratio"
	FamSkewHotKey    = "aloha_skew_hot_key_accesses"
	skewHotKeyGauges = 8 // top keys exported as gauges (full list on /debug/hotkeys)
)

// MetricFamilies renders the profiler as aloha_skew_* gauges. Nil-safe.
func (s *Skew) MetricFamilies() []metrics.Family {
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	fams := []metrics.Family{
		{
			Name: FamSkewObserved, Help: "Key accesses seen by the skew profiler (sampled or not).",
			Kind:   metrics.KindCounter,
			Series: []metrics.Series{metrics.CounterSeries(snap.Observed)},
		},
		{
			Name: FamSkewSampled, Help: "Key accesses sampled into the hot-key table.",
			Kind:   metrics.KindCounter,
			Series: []metrics.Series{metrics.CounterSeries(snap.Sampled)},
		},
		{
			Name: FamSkewImbalance, Help: "Max/mean of estimated per-partition accesses (1.0 = even).",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(int64(snap.Imbalance * 1000))},
		},
	}
	if len(snap.Partitions) > 0 {
		fam := metrics.Family{
			Name: FamSkewPartition, Help: "Estimated accesses per partition (sampled, scaled by the stride).",
			Kind: metrics.KindGauge,
		}
		for _, p := range snap.Partitions {
			fam.Series = append(fam.Series,
				metrics.GaugeSeries(int64(p.Accesses), metrics.Label{Key: "partition", Value: strconv.Itoa(p.Partition)}))
		}
		fams = append(fams, fam)
	}
	if len(snap.TopKeys) > 0 {
		top := snap.TopKeys
		if len(top) > skewHotKeyGauges {
			top = top[:skewHotKeyGauges]
		}
		fam := metrics.Family{
			Name: FamSkewHotKey, Help: "Estimated accesses of the hottest keys.",
			Kind: metrics.KindGauge,
		}
		for _, hk := range top {
			fam.Series = append(fam.Series,
				metrics.GaugeSeries(int64(hk.Count), metrics.Label{Key: "key", Value: hk.Key}))
		}
		fams = append(fams, fam)
	}
	return fams
}

// Handler serves the snapshot as JSON (mounted at /debug/hotkeys). Nil-safe:
// a disabled profiler serves an empty snapshot.
func (s *Skew) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}
