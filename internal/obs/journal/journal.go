// Package journal is the per-epoch lifecycle flight recorder: an
// always-on, ring-buffered journal holding one fixed-size record per epoch
// per server, plus the epoch manager's mirror record. Where the stage
// histograms (internal/metrics) aggregate and the tracer (internal/trace)
// samples per transaction, the journal answers the question neither can:
// "why was epoch E slow, and which stage gated it?" — the epoch is the
// unit of atomic visibility and durability (paper §III-B), so end-to-end
// commit latency is exactly the epoch close-out path.
//
// A server record covers the whole close-out pipeline in arrival order:
// install (first/last install of the epoch, count and bytes), ack-wait
// (revoke arrival to revoke-ack, the §III-B quiescence), the
// Committed-broadcast receipt, seal, WAL fsync, epoch ship, and the
// visibility publication — plus interference markers (active migration
// seals, an open stall episode, and the slowest pending functor with its
// trace cross-link). The EM mirror records the switch decision time,
// every server's ack arrival, and the commit broadcast, which is what
// cluster-wide critical-path attribution (internal/obs/clusterview) needs
// to name the ack straggler.
//
// The package follows the repo's observability convention (trace, obs):
// a nil *Journal is valid and inert, and every enabled hot-path record
// call is allocation-free (fixed-size slots behind per-slot mutexes;
// CI benchmarks guard both properties).
package journal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/metrics"
)

// DefaultRing is the default journal depth in epochs. At the paper's 25 ms
// default epoch it covers ~13 s of history — several scrape intervals —
// for ~100 KiB of fixed memory.
const DefaultRing = 512

// keyCap bounds the slowest-pending key bytes kept inline in a record
// (longer keys truncate); fixed so the hot path never allocates.
const keyCap = 48

// ftypeCap bounds the slowest-pending f-type name kept inline.
const ftypeCap = 12

// Stage indices of the server-side close-out pipeline. Stage durations are
// what the journal renders as aloha_epoch_stage_seconds{stage=...} and
// what critical-path attribution compares across servers.
const (
	StageInstall   = iota // first install -> last install (the install tail)
	StageAckWait          // revoke arrival -> revoke ack (in-flight drain)
	StageBroadcast        // revoke ack -> Committed receipt (EM barrier + broadcast)
	StageSeal             // Committed receipt -> all epoch versions sealed
	StageFsync            // WAL flush+fsync inside the durable marker
	StageShip             // durable-marker remainder (epoch ship to backups)
	numStages
)

// StageNames maps stage indices to their exported labels.
var StageNames = [numStages]string{
	StageInstall:   "install",
	StageAckWait:   "ack-wait",
	StageBroadcast: "broadcast",
	StageSeal:      "seal",
	StageFsync:     "fsync",
	StageShip:      "ship",
}

// rec is the fixed-size in-ring record. All times are UnixNano wall-clock
// stamps (comparable across servers on one host or NTP-close hosts) except
// fsyncNS/shipNS which are durations.
type rec struct {
	epoch uint64

	installTxns     uint64
	installFunctors uint64
	installBytes    uint64
	firstInstallNS  int64
	lastInstallNS   int64

	ackStartNS int64
	ackEndNS   int64

	committedNS int64
	sealNS      int64
	fsyncNS     int64 // duration
	shipNS      int64 // duration
	visibleNS   int64

	drained        int
	migrationSeals int
	stallActive    bool

	slowWaitNS  int64
	slowTrace   uint64
	slowKeyLen  uint8
	slowTypeLen uint8
	slowKey     [keyCap]byte
	slowType    [ftypeCap]byte

	gating int8 // local gating stage index, -1 until finalized
}

type slot struct {
	mu sync.Mutex
	r  rec
}

// Config configures a server journal.
type Config struct {
	// Server is the owning server's ID, stamped on snapshots.
	Server int
	// Ring is the journal depth in epochs (default DefaultRing). Negative
	// disables the journal: New returns nil, and the nil receiver is inert.
	Ring int
}

// Journal is one server's epoch lifecycle ring. A nil *Journal is valid
// and records nothing at zero cost, mirroring trace.Tracer and obs.Skew.
type Journal struct {
	server int
	ring   []slot

	stageHists [numStages]*metrics.Histogram
	gating     [numStages]atomic.Uint64
	stale      atomic.Uint64 // events for epochs already overwritten
}

// New builds a journal. A non-positive Ring takes the default; a negative
// Ring disables the journal entirely (returns nil).
func New(cfg Config) *Journal {
	if cfg.Ring < 0 {
		return nil
	}
	if cfg.Ring == 0 {
		cfg.Ring = DefaultRing
	}
	j := &Journal{server: cfg.Server, ring: make([]slot, cfg.Ring)}
	for i := range j.stageHists {
		j.stageHists[i] = metrics.NewHistogram(metrics.LatencyBounds())
	}
	return j
}

// at locks epoch e's slot, resetting it when e supersedes the previous
// occupant (ring overwrite). It returns nil — with no lock held — for a
// stale event: an epoch already overwritten by a newer one can only
// produce a torn record, so late events are counted and dropped.
func (j *Journal) at(e uint64) *slot {
	s := &j.ring[e%uint64(len(j.ring))]
	s.mu.Lock()
	switch {
	case s.r.epoch == e:
		return s
	case s.r.epoch < e:
		s.r = rec{epoch: e, gating: -1}
		return s
	default:
		s.mu.Unlock()
		j.stale.Add(1)
		return nil
	}
}

// Install records one installed transaction: functors functor versions
// totalling bytes key+argument bytes, at time now. Called on the install
// hot path — allocation-free, nil-safe.
func (j *Journal) Install(e uint64, functors, bytes int, now time.Time) {
	if j == nil {
		return
	}
	s := j.at(e)
	if s == nil {
		return
	}
	ns := now.UnixNano()
	s.r.installTxns++
	s.r.installFunctors += uint64(functors)
	s.r.installBytes += uint64(bytes)
	if s.r.firstInstallNS == 0 || ns < s.r.firstInstallNS {
		s.r.firstInstallNS = ns
	}
	if ns > s.r.lastInstallNS {
		s.r.lastInstallNS = ns
	}
	s.mu.Unlock()
}

// AckWaitStart records the revoke arrival: the server stops starting
// authorized epoch-e transactions and begins draining in-flight installs.
func (j *Journal) AckWaitStart(e uint64, now time.Time) {
	if j == nil {
		return
	}
	if s := j.at(e); s != nil {
		s.r.ackStartNS = now.UnixNano()
		s.mu.Unlock()
	}
}

// AckWaitEnd records the revoke ack: every in-flight epoch-e transaction
// has completed its write-only phase (§III-B quiescence).
func (j *Journal) AckWaitEnd(e uint64, now time.Time) {
	if j == nil {
		return
	}
	if s := j.at(e); s != nil {
		s.r.ackEndNS = now.UnixNano()
		s.mu.Unlock()
	}
}

// CommittedRecv records the Committed-broadcast receipt.
func (j *Journal) CommittedRecv(e uint64, now time.Time) {
	if j == nil {
		return
	}
	if s := j.at(e); s != nil {
		s.r.committedNS = now.UnixNano()
		s.mu.Unlock()
	}
}

// SealDone records that every buffered version of the epoch is sealed
// (in-epoch -> out-epoch, Figure 4) and how many functors were drained.
func (j *Journal) SealDone(e uint64, now time.Time, drained int) {
	if j == nil {
		return
	}
	if s := j.at(e); s != nil {
		s.r.sealNS = now.UnixNano()
		s.r.drained = drained
		s.mu.Unlock()
	}
}

// Slowest records the epoch's slowest pending functor at commit time: its
// key (truncated to keyCap), f-type, queue wait, and owning transaction's
// trace ID (the /debug/traces cross-link). Copies into fixed buffers —
// no allocation.
func (j *Journal) Slowest(e uint64, key, ftype string, wait time.Duration, traceID uint64) {
	if j == nil {
		return
	}
	s := j.at(e)
	if s == nil {
		return
	}
	s.r.slowWaitNS = int64(wait)
	s.r.slowTrace = traceID
	s.r.slowKeyLen = uint8(copy(s.r.slowKey[:], key))
	s.r.slowTypeLen = uint8(copy(s.r.slowType[:], ftype))
	s.mu.Unlock()
}

// Durable records the durable-marker cost: total is the whole
// LogEpochCommitted call (fsync plus epoch ship), fsync the WAL flush+fsync
// portion when the hook reports it (zero otherwise — the remainder is
// attributed to ship).
func (j *Journal) Durable(e uint64, total, fsync time.Duration) {
	if j == nil {
		return
	}
	s := j.at(e)
	if s == nil {
		return
	}
	if fsync > total {
		fsync = total
	}
	s.r.fsyncNS = int64(fsync)
	s.r.shipNS = int64(total - fsync)
	s.mu.Unlock()
}

// Visible finalizes the record at visibility publication: epoch-e versions
// are readable. migrationSeals and stallActive are the interference
// markers sampled at this instant. Observes every stage duration into the
// aloha_epoch_stage_seconds histograms and counts the locally gating
// (largest) stage.
func (j *Journal) Visible(e uint64, now time.Time, migrationSeals int, stallActive bool) {
	if j == nil {
		return
	}
	s := j.at(e)
	if s == nil {
		return
	}
	s.r.visibleNS = now.UnixNano()
	s.r.migrationSeals = migrationSeals
	s.r.stallActive = stallActive
	var stages [numStages]int64
	stages[StageInstall] = stageSpan(s.r.firstInstallNS, s.r.lastInstallNS)
	stages[StageAckWait] = stageSpan(s.r.ackStartNS, s.r.ackEndNS)
	stages[StageBroadcast] = stageSpan(s.r.ackEndNS, s.r.committedNS)
	stages[StageSeal] = stageSpan(s.r.committedNS, s.r.sealNS)
	stages[StageFsync] = s.r.fsyncNS
	stages[StageShip] = s.r.shipNS
	gating := int8(-1)
	var max int64
	for i, d := range stages {
		if d > max {
			max, gating = d, int8(i)
		}
	}
	s.r.gating = gating
	s.mu.Unlock()
	for i, d := range stages {
		if d > 0 {
			j.stageHists[i].Observe(d)
		}
	}
	if gating >= 0 {
		j.gating[gating].Add(1)
	}
}

// stageSpan returns the positive span between two stamps, zero when either
// is missing (an epoch that skipped the stage must not pollute the
// distribution with wall-clock-sized garbage).
func stageSpan(from, to int64) int64 {
	if from == 0 || to == 0 || to < from {
		return 0
	}
	return to - from
}

// StageHist returns the cumulative close-out histogram for one stage (an
// index into StageNames), letting the flight recorder (internal/obs/tsdb)
// sample windowed per-stage quantiles. Nil-safe.
func (j *Journal) StageHist(stage int) *metrics.Histogram {
	if j == nil || stage < 0 || stage >= numStages {
		return nil
	}
	return j.stageHists[stage]
}

// GatingBetween names the dominant local gating stage across the complete
// records whose epoch falls in [from, to] — the attribution the flight
// recorder stamps on an anomaly window ("throughput dropped across epochs
// 410-460, gated on ack-wait"). Empty when no complete record in the
// range survives in the ring. Nil-safe.
func (j *Journal) GatingBetween(from, to uint64) string {
	if j == nil || from == 0 || to < from {
		return ""
	}
	var counts [numStages]int
	found := false
	for i := range j.ring {
		s := &j.ring[i]
		s.mu.Lock()
		e, g := s.r.epoch, s.r.gating
		complete := s.r.committedNS > 0 && s.r.visibleNS > 0
		s.mu.Unlock()
		if e < from || e > to || !complete || g < 0 {
			continue
		}
		counts[g]++
		found = true
	}
	if !found {
		return ""
	}
	best := 0
	for i := 1; i < numStages; i++ {
		if counts[i] > counts[best] {
			best = i
		}
	}
	return StageNames[best]
}

// Stale reports how many late events were dropped because their epoch had
// already been overwritten in the ring. Nil-safe.
func (j *Journal) Stale() uint64 {
	if j == nil {
		return 0
	}
	return j.stale.Load()
}

// Record is one exported journal entry (the /debug/epochs JSON row). All
// *_unix_ns fields are wall-clock stamps; *_ns fields are durations.
type Record struct {
	Epoch  uint64 `json:"epoch"`
	Server int    `json:"server"`

	InstallTxns     uint64 `json:"install_txns,omitempty"`
	InstallFunctors uint64 `json:"install_functors,omitempty"`
	InstallBytes    uint64 `json:"install_bytes,omitempty"`
	FirstInstallNS  int64  `json:"first_install_unix_ns,omitempty"`
	LastInstallNS   int64  `json:"last_install_unix_ns,omitempty"`

	AckWaitStartNS int64 `json:"ack_wait_start_unix_ns,omitempty"`
	AckWaitEndNS   int64 `json:"ack_wait_end_unix_ns,omitempty"`

	CommittedNS int64 `json:"committed_unix_ns,omitempty"`
	SealNS      int64 `json:"seal_done_unix_ns,omitempty"`
	FsyncNS     int64 `json:"wal_fsync_ns,omitempty"`
	ShipNS      int64 `json:"ship_ns,omitempty"`
	VisibleNS   int64 `json:"visible_unix_ns,omitempty"`

	FunctorsCommitted int  `json:"functors_committed,omitempty"`
	MigrationSeals    int  `json:"migration_seals,omitempty"`
	StallActive       bool `json:"stall_active,omitempty"`

	SlowestKey    string `json:"slowest_key,omitempty"`
	SlowestFType  string `json:"slowest_f_type,omitempty"`
	SlowestWaitNS int64  `json:"slowest_wait_ns,omitempty"`
	SlowestTrace  string `json:"slowest_trace,omitempty"`

	// LocalGatingStage is the largest stage on this server alone; the
	// cluster-wide critical path is computed by clusterview.MergeEpochs.
	LocalGatingStage string `json:"local_gating_stage,omitempty"`
}

// Complete reports whether the record covers the whole close-out (the
// epoch committed and published visibility on this server). Attribution
// only trusts complete records.
func (r Record) Complete() bool { return r.CommittedNS > 0 && r.VisibleNS > 0 }

// Snapshot exports the ring's records, oldest epoch first. Snapshot
// allocates freely — it runs at scrape cadence, not on the hot path.
// Nil-safe (returns nil).
func (j *Journal) Snapshot() []Record {
	if j == nil {
		return nil
	}
	out := make([]Record, 0, len(j.ring))
	for i := range j.ring {
		s := &j.ring[i]
		s.mu.Lock()
		r := s.r
		s.mu.Unlock()
		if r.epoch == 0 {
			continue
		}
		rec := Record{
			Epoch:             r.epoch,
			Server:            j.server,
			InstallTxns:       r.installTxns,
			InstallFunctors:   r.installFunctors,
			InstallBytes:      r.installBytes,
			FirstInstallNS:    r.firstInstallNS,
			LastInstallNS:     r.lastInstallNS,
			AckWaitStartNS:    r.ackStartNS,
			AckWaitEndNS:      r.ackEndNS,
			CommittedNS:       r.committedNS,
			SealNS:            r.sealNS,
			FsyncNS:           r.fsyncNS,
			ShipNS:            r.shipNS,
			VisibleNS:         r.visibleNS,
			FunctorsCommitted: r.drained,
			MigrationSeals:    r.migrationSeals,
			StallActive:       r.stallActive,
			SlowestKey:        string(r.slowKey[:r.slowKeyLen]),
			SlowestFType:      string(r.slowType[:r.slowTypeLen]),
			SlowestWaitNS:     r.slowWaitNS,
		}
		if r.slowTrace != 0 {
			rec.SlowestTrace = fmt.Sprintf("%016x", r.slowTrace)
		}
		if r.gating >= 0 {
			rec.LocalGatingStage = StageNames[r.gating]
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out
}

// Doc is the /debug/epochs JSON document: one server's journal plus, when
// the epoch manager is co-located (embedded clusters, the EM process), its
// mirror records.
type Doc struct {
	Server  int        `json:"server"`
	Ring    int        `json:"ring"`
	Stale   uint64     `json:"stale_events,omitempty"`
	Records []Record   `json:"records,omitempty"`
	EM      []EMRecord `json:"em,omitempty"`
}

// Doc assembles the journal's document. Nil-safe (zero Doc).
func (j *Journal) Doc() Doc {
	if j == nil {
		return Doc{}
	}
	return Doc{Server: j.server, Ring: len(j.ring), Stale: j.stale.Load(), Records: j.Snapshot()}
}

// DocHandler serves the journal (and, when non-nil, the EM mirror) as
// indented JSON; mounted at /debug/epochs. Nil-safe on both arguments.
func DocHandler(j *Journal, em *EM) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := j.Doc()
		doc.EM = em.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// Metric family names exported by the journal.
const (
	// FamEpochStage is the per-stage epoch close-out histogram, one series
	// per stage label.
	FamEpochStage = "aloha_epoch_stage_seconds"
	// FamEpochGating counts epochs per locally gating (largest) stage.
	FamEpochGating = "aloha_epoch_gating_stage_total"
)

// MetricFamilies renders the stage histograms and gating counters, one
// series per stage labeled stage="...". Nil-safe (empty).
func (j *Journal) MetricFamilies() []metrics.Family {
	if j == nil {
		return nil
	}
	stageSeries := make([]metrics.Series, 0, numStages)
	gatingSeries := make([]metrics.Series, 0, numStages)
	for i := 0; i < numStages; i++ {
		lbl := metrics.Label{Key: "stage", Value: StageNames[i]}
		stageSeries = append(stageSeries, metrics.HistSeries(j.stageHists[i].Snapshot(), lbl))
		gatingSeries = append(gatingSeries, metrics.CounterSeries(j.gating[i].Load(), lbl))
	}
	return []metrics.Family{
		{
			Name: FamEpochStage, Help: "Epoch close-out stage durations (install tail, ack-wait, broadcast, seal, fsync, ship).",
			Kind: metrics.KindHistogram, Unit: metrics.UnitSeconds,
			Series: stageSeries,
		},
		{
			Name: FamEpochGating, Help: "Epochs whose locally largest close-out stage was this stage.",
			Kind:   metrics.KindCounter,
			Series: gatingSeries,
		},
	}
}
