package journal

import (
	"sort"
	"sync"
	"time"
)

// EMRecord is the epoch manager's mirror of one epoch switch: when the EM
// decided to advance past the epoch, when each server's revoke-ack arrived
// (indexed by server ID, zero = not yet / not seen), the ack arrival order,
// and when the Committed broadcast went out. Merged with the servers'
// records it exposes the ack straggler: the server record's AckWaitEnd is
// when the ack was *sent*, AckNS is when it *arrived* — the difference is
// the wire.
type EMRecord struct {
	Epoch    uint64  `json:"epoch"`
	DecideNS int64   `json:"decide_unix_ns,omitempty"`
	AckNS    []int64 `json:"ack_unix_ns,omitempty"`
	AckOrder []int   `json:"ack_order,omitempty"`
	CommitNS int64   `json:"commit_unix_ns,omitempty"`
}

type emSlot struct {
	mu       sync.Mutex
	epoch    uint64
	decideNS int64
	commitNS int64
	ackNS    []int64 // by server ID, preallocated
}

// EM is the epoch manager's journal ring. A nil *EM is valid and inert.
type EM struct {
	servers int
	ring    []emSlot
}

// NewEM builds an EM journal for a cluster of servers participants; ring
// as in Config.Ring (<=0 takes the default — the EM journal is always on,
// so there is no disable sentinel).
func NewEM(servers, ring int) *EM {
	if ring <= 0 {
		ring = DefaultRing
	}
	em := &EM{servers: servers, ring: make([]emSlot, ring)}
	for i := range em.ring {
		em.ring[i].ackNS = make([]int64, servers)
	}
	return em
}

// at locks epoch e's slot, claiming it from an older epoch; nil (unlocked)
// for a stale event, as in Journal.at.
func (em *EM) at(e uint64) *emSlot {
	s := &em.ring[e%uint64(len(em.ring))]
	s.mu.Lock()
	switch {
	case s.epoch == e:
		return s
	case s.epoch < e:
		s.epoch, s.decideNS, s.commitNS = e, 0, 0
		for i := range s.ackNS {
			s.ackNS[i] = 0
		}
		return s
	default:
		s.mu.Unlock()
		return nil
	}
}

// Decide records the switch decision: the EM is advancing past epoch e and
// is about to issue Revokes. Nil-safe, allocation-free.
func (em *EM) Decide(e uint64, now time.Time) {
	if em == nil {
		return
	}
	if s := em.at(e); s != nil {
		s.decideNS = now.UnixNano()
		s.mu.Unlock()
	}
}

// Ack records server's revoke-ack arriving at the EM.
func (em *EM) Ack(e uint64, server int, now time.Time) {
	if em == nil || server < 0 || server >= em.servers {
		return
	}
	if s := em.at(e); s != nil {
		s.ackNS[server] = now.UnixNano()
		s.mu.Unlock()
	}
}

// Commit records the Committed broadcast for epoch e going out.
func (em *EM) Commit(e uint64, now time.Time) {
	if em == nil {
		return
	}
	if s := em.at(e); s != nil {
		s.commitNS = now.UnixNano()
		s.mu.Unlock()
	}
}

// Snapshot exports the ring oldest epoch first, computing each record's
// ack arrival order. Nil-safe (nil).
func (em *EM) Snapshot() []EMRecord {
	if em == nil {
		return nil
	}
	out := make([]EMRecord, 0, len(em.ring))
	for i := range em.ring {
		s := &em.ring[i]
		s.mu.Lock()
		if s.epoch == 0 {
			s.mu.Unlock()
			continue
		}
		r := EMRecord{
			Epoch:    s.epoch,
			DecideNS: s.decideNS,
			CommitNS: s.commitNS,
			AckNS:    append([]int64(nil), s.ackNS...),
		}
		s.mu.Unlock()
		for sv, ns := range r.AckNS {
			if ns > 0 {
				r.AckOrder = append(r.AckOrder, sv)
			}
		}
		sort.Slice(r.AckOrder, func(a, b int) bool {
			return r.AckNS[r.AckOrder[a]] < r.AckNS[r.AckOrder[b]]
		})
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out
}
