package journal

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// at returns a wall-clock stamp offset ms milliseconds from a fixed base,
// so stage durations in tests are exact.
func at(ms int) time.Time {
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(ms) * time.Millisecond)
}

func TestJournalLifecycle(t *testing.T) {
	j := New(Config{Server: 2, Ring: 8})

	j.Install(5, 3, 100, at(0))
	j.Install(5, 1, 50, at(4))
	j.AckWaitStart(5, at(10))
	j.AckWaitEnd(5, at(30))
	j.CommittedRecv(5, at(33))
	j.SealDone(5, at(35), 4)
	j.Slowest(5, "warehouse:7", "ADD", 9*time.Millisecond, 0xabcd)
	j.Durable(5, 5*time.Millisecond, 2*time.Millisecond)
	j.Visible(5, at(41), 1, true)

	recs := j.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("snapshot: got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Epoch != 5 || r.Server != 2 {
		t.Fatalf("identity: %+v", r)
	}
	if r.InstallTxns != 2 || r.InstallFunctors != 4 || r.InstallBytes != 150 {
		t.Errorf("install counters: %+v", r)
	}
	if got := r.LastInstallNS - r.FirstInstallNS; got != int64(4*time.Millisecond) {
		t.Errorf("install tail = %d, want 4ms", got)
	}
	if got := r.AckWaitEndNS - r.AckWaitStartNS; got != int64(20*time.Millisecond) {
		t.Errorf("ack wait = %d, want 20ms", got)
	}
	if r.FsyncNS != int64(2*time.Millisecond) || r.ShipNS != int64(3*time.Millisecond) {
		t.Errorf("durable split: fsync=%d ship=%d", r.FsyncNS, r.ShipNS)
	}
	if r.FunctorsCommitted != 4 || r.MigrationSeals != 1 || !r.StallActive {
		t.Errorf("markers: %+v", r)
	}
	if r.SlowestKey != "warehouse:7" || r.SlowestFType != "ADD" ||
		r.SlowestWaitNS != int64(9*time.Millisecond) || r.SlowestTrace != "000000000000abcd" {
		t.Errorf("slowest: %+v", r)
	}
	if !r.Complete() {
		t.Error("record should be complete")
	}
	// Ack wait (20ms) dominates install tail (4ms), broadcast (3ms),
	// seal (2ms), fsync (2ms), ship (3ms).
	if r.LocalGatingStage != "ack-wait" {
		t.Errorf("local gating stage = %q, want ack-wait", r.LocalGatingStage)
	}
}

func TestJournalRingWrapAndStale(t *testing.T) {
	j := New(Config{Ring: 4})
	j.Install(1, 1, 1, at(0))
	j.Install(5, 1, 1, at(1)) // same slot as epoch 1, newer: overwrites
	j.Install(1, 1, 1, at(2)) // stale: dropped
	if got := j.Stale(); got != 1 {
		t.Fatalf("stale = %d, want 1", got)
	}
	recs := j.Snapshot()
	if len(recs) != 1 || recs[0].Epoch != 5 || recs[0].InstallTxns != 1 {
		t.Fatalf("after wrap: %+v", recs)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Install(1, 1, 1, at(0))
	j.AckWaitStart(1, at(0))
	j.AckWaitEnd(1, at(0))
	j.CommittedRecv(1, at(0))
	j.SealDone(1, at(0), 0)
	j.Slowest(1, "k", "VALUE", 0, 0)
	j.Durable(1, 0, 0)
	j.Visible(1, at(0), 0, false)
	if j.Snapshot() != nil || j.Stale() != 0 || j.MetricFamilies() != nil {
		t.Fatal("nil journal must be empty")
	}
	if d := j.Doc(); len(d.Records) != 0 {
		t.Fatal("nil journal doc must be empty")
	}
	if New(Config{Ring: -1}) != nil {
		t.Fatal("negative ring must disable the journal")
	}
}

func TestJournalSkippedStagesNotObserved(t *testing.T) {
	// An epoch with no installs and no ack wait must not record
	// wall-clock-sized garbage into those stage histograms.
	j := New(Config{Ring: 4})
	j.CommittedRecv(3, at(0))
	j.SealDone(3, at(1), 0)
	j.Visible(3, at(2), 0, false)
	fams := j.MetricFamilies()
	for _, f := range fams {
		if f.Name != FamEpochStage {
			continue
		}
		for _, s := range f.Series {
			stage := s.Labels[0].Value
			if (stage == "install" || stage == "ack-wait" || stage == "broadcast") && s.Hist.Count != 0 {
				t.Errorf("stage %s observed %d times on a skipped stage", stage, s.Hist.Count)
			}
			if stage == "seal" && s.Hist.Count != 1 {
				t.Errorf("seal observed %d times, want 1", s.Hist.Count)
			}
		}
	}
}

func TestJournalTruncatesLongKeys(t *testing.T) {
	j := New(Config{Ring: 4})
	long := strings.Repeat("k", keyCap+20)
	j.Slowest(9, long, "USER", time.Millisecond, 1)
	recs := j.Snapshot()
	if len(recs) != 1 || recs[0].SlowestKey != long[:keyCap] {
		t.Fatalf("key truncation: %+v", recs)
	}
}

func TestJournalMetricFamilies(t *testing.T) {
	j := New(Config{Ring: 4})
	j.AckWaitStart(2, at(0))
	j.AckWaitEnd(2, at(20))
	j.CommittedRecv(2, at(21))
	j.Visible(2, at(22), 0, false)
	fams := j.MetricFamilies()
	if len(fams) != 2 || fams[0].Name != FamEpochStage || fams[1].Name != FamEpochGating {
		t.Fatalf("families: %+v", fams)
	}
	var gated uint64
	for _, s := range fams[1].Series {
		if s.Labels[0].Value == "ack-wait" {
			gated = uint64(s.Value)
		}
	}
	if gated != 1 {
		t.Fatalf("ack-wait gating count = %d, want 1", gated)
	}
}

func TestEMJournal(t *testing.T) {
	em := NewEM(3, 8)
	em.Decide(4, at(0))
	em.Ack(4, 1, at(5))
	em.Ack(4, 0, at(9))
	em.Ack(4, 2, at(30))
	em.Ack(4, 99, at(31)) // out of range: ignored
	em.Commit(4, at(32))

	recs := em.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("em snapshot: %+v", recs)
	}
	r := recs[0]
	if r.Epoch != 4 || r.DecideNS == 0 || r.CommitNS == 0 {
		t.Fatalf("em record: %+v", r)
	}
	if len(r.AckOrder) != 3 || r.AckOrder[0] != 1 || r.AckOrder[1] != 0 || r.AckOrder[2] != 2 {
		t.Fatalf("ack order = %v, want [1 0 2]", r.AckOrder)
	}

	var nilEM *EM
	nilEM.Decide(1, at(0))
	nilEM.Ack(1, 0, at(0))
	nilEM.Commit(1, at(0))
	if nilEM.Snapshot() != nil {
		t.Fatal("nil EM must be empty")
	}
}

func TestDocHandler(t *testing.T) {
	j := New(Config{Server: 1, Ring: 4})
	j.Install(7, 2, 10, at(0))
	j.CommittedRecv(7, at(5))
	j.Visible(7, at(6), 0, false)
	em := NewEM(2, 4)
	em.Decide(7, at(1))
	em.Commit(7, at(4))

	rr := httptest.NewRecorder()
	DocHandler(j, em).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epochs", nil))
	var doc Doc
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, rr.Body.String())
	}
	if doc.Server != 1 || doc.Ring != 4 || len(doc.Records) != 1 || len(doc.EM) != 1 {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Records[0].Epoch != 7 || doc.EM[0].Epoch != 7 {
		t.Fatalf("doc epochs: %+v", doc)
	}

	// Nil journal and nil EM still serve valid JSON.
	rr = httptest.NewRecorder()
	DocHandler(nil, nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epochs", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil doc decode: %v", err)
	}
}

// BenchmarkJournalDisabledInstall guards the disabled (nil) hot path:
// 0 allocs/op, CI-enforced.
func BenchmarkJournalDisabledInstall(b *testing.B) {
	var j *Journal
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Install(uint64(i%100)+1, 2, 64, now)
	}
}

// BenchmarkJournalEnabledInstall guards the enabled hot path: ring slots
// are fixed-size, so recording must be 0 allocs/op, CI-enforced.
func BenchmarkJournalEnabledInstall(b *testing.B) {
	j := New(Config{Ring: 512})
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := uint64(i%100) + 1
		j.Install(e, 2, 64, now)
		j.Slowest(e, "warehouse:7:district:3", "ADD", time.Millisecond, 42)
	}
}
