package obs

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
)

// TestSkewGoldenOrdering pins the /debug/hotkeys JSON shape and ordering:
// count descending, key ascending on ties.
func TestSkewGoldenOrdering(t *testing.T) {
	s := NewSkew(SkewConfig{SampleEvery: 1, TopK: 3, Partitions: 2})
	for i := 0; i < 5; i++ {
		s.Observe(0, "hot")
	}
	for i := 0; i < 3; i++ {
		s.Observe(1, "warm-b")
	}
	for i := 0; i < 3; i++ {
		s.Observe(1, "warm-a")
	}
	s.Observe(0, "cold")

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hotkeys", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	var snap SkewSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}

	golden := `{"sample_every":1,"observed":12,"sampled":12,"top_keys":[{"key":"hot","count":5},{"key":"warm-a","count":3},{"key":"warm-b","count":3}],"partitions":[{"partition":0,"accesses":6,"share":0.5},{"partition":1,"accesses":6,"share":0.5}],"imbalance":1}`
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("snapshot mismatch\n got: %s\nwant: %s", got, golden)
	}
}

// TestSkewZipfianTopKey checks sampling accuracy: on a Zipfian workload the
// profiler must recover the true hottest key despite a 16x stride.
func TestSkewZipfianTopKey(t *testing.T) {
	s := NewSkew(SkewConfig{SampleEvery: 16, TopK: 8, Partitions: 4})
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 9999)
	const accesses = 400000
	for i := 0; i < accesses; i++ {
		id := zipf.Uint64()
		s.Observe(int(id%4), fmt.Sprintf("key-%d", id))
	}
	snap := s.Snapshot()
	if snap.Observed != accesses {
		t.Fatalf("observed = %d, want %d", snap.Observed, accesses)
	}
	if snap.Sampled != accesses/16 {
		t.Fatalf("sampled = %d, want %d", snap.Sampled, accesses/16)
	}
	if len(snap.TopKeys) == 0 {
		t.Fatal("no top keys")
	}
	if snap.TopKeys[0].Key != "key-0" {
		t.Fatalf("top-1 key = %q (count %d), want key-0; top: %+v",
			snap.TopKeys[0].Key, snap.TopKeys[0].Count, snap.TopKeys[:4])
	}
	// The estimate should be within a factor of 2 of the true count (the
	// stride is 16, and key-0 draws about a fifth of a Zipf(1.2) stream).
	var true0 uint64
	rng2 := rand.New(rand.NewSource(42))
	zipf2 := rand.NewZipf(rng2, 1.2, 1, 9999)
	for i := 0; i < accesses; i++ {
		if zipf2.Uint64() == 0 {
			true0++
		}
	}
	est := snap.TopKeys[0].Count
	if est < true0/2 || est > true0*2 {
		t.Fatalf("key-0 estimate %d outside [%d,%d]", est, true0/2, true0*2)
	}
}

// TestSkewEviction fills the table past capacity and checks the
// space-saving property: a newly hot key still surfaces in the top-K.
func TestSkewEviction(t *testing.T) {
	s := NewSkew(SkewConfig{SampleEvery: 1, TopK: 4})
	for i := 0; i < s.cap+32; i++ {
		s.Observe(0, fmt.Sprintf("filler-%d", i))
	}
	for i := 0; i < 100; i++ {
		s.Observe(0, "late-hot")
	}
	snap := s.Snapshot()
	found := false
	for _, hk := range snap.TopKeys {
		if hk.Key == "late-hot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late-hot missing from top keys: %+v", snap.TopKeys)
	}
}

// TestSkewDisabledZeroAlloc is the CI guard for the disabled path: a nil
// profiler and a sampled-out observe must not allocate.
func TestSkewDisabledZeroAlloc(t *testing.T) {
	var nilSkew *Skew
	if n := testing.AllocsPerRun(1000, func() {
		nilSkew.Observe(0, "k")
	}); n != 0 {
		t.Fatalf("nil Skew.Observe allocates %v/op", n)
	}
	s := NewSkew(SkewConfig{SampleEvery: 1 << 30, Partitions: 4})
	if n := testing.AllocsPerRun(1000, func() {
		s.Observe(1, "k")
	}); n != 0 {
		t.Fatalf("sampled-out Skew.Observe allocates %v/op", n)
	}
}

// BenchmarkSkewDisabledObserve backs the CI "0 allocs/op" grep guard for
// the fully disabled (nil) profiler.
func BenchmarkSkewDisabledObserve(b *testing.B) {
	var s *Skew
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(0, "bench-key")
	}
}

// BenchmarkSkewSampledOutObserve measures the enabled-but-unsampled hot
// path: one atomic add, zero allocations.
func BenchmarkSkewSampledOutObserve(b *testing.B) {
	s := NewSkew(SkewConfig{SampleEvery: 1 << 30, Partitions: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(3, "bench-key")
	}
}

func TestSkewNilSnapshot(t *testing.T) {
	var s *Skew
	if snap := s.Snapshot(); snap.Observed != 0 || len(snap.TopKeys) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if fams := s.MetricFamilies(); fams != nil {
		t.Fatalf("nil MetricFamilies = %v", fams)
	}
}
