package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"

	"alohadb/internal/metrics"
)

// Event kinds emitted by the watchdog.
const (
	EventStallDetected = "stall.detected"
	EventStallCleared  = "stall.cleared"
)

// PeerProbe is one peer's reachability check inside a stall snapshot: the
// watchdog pings every peer so the snapshot names who is not answering
// (the paper's revocation protocol stalls on exactly one unacked FE).
type PeerProbe struct {
	Node      int           `json:"node"`
	Reachable bool          `json:"reachable"`
	RTT       time.Duration `json:"rtt_ns"`
	// CommittedEpoch is the peer's last committed epoch when reachable,
	// so the snapshot shows which owner's seal is lagging.
	CommittedEpoch uint64 `json:"committed_epoch,omitempty"`
	CurrentEpoch   uint64 `json:"current_epoch,omitempty"`
	Err            string `json:"err,omitempty"`
}

// EpochBuffer is one epoch's buffered-but-uncommitted functor count.
type EpochBuffer struct {
	Epoch    uint64 `json:"epoch"`
	Buffered int    `json:"buffered"`
}

// PendingFunctor describes the oldest functor metadata still waiting —
// key, f-type, how long it has queued, and the owning transaction's trace
// ID so the operator can jump to the slow-txn ring.
type PendingFunctor struct {
	Key       string        `json:"key"`
	FType     string        `json:"f_type"`
	Version   uint64        `json:"version"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	TraceID   string        `json:"trace_id,omitempty"`
}

// OwnerQueue is one combiner owner slot's occupancy.
type OwnerQueue struct {
	Owner  int `json:"owner"`
	Queued int `json:"queued"`
}

// SendQueue is one transport peer's outbound queue depth.
type SendQueue struct {
	Peer  int `json:"peer"`
	Depth int `json:"depth"`
}

// StallSnapshot is one structured flight-recorder capture, taken when the
// watchdog's progress signal stops advancing past the threshold.
type StallSnapshot struct {
	Server     int           `json:"server"`
	DetectedAt time.Time     `json:"detected_at"`
	Age        time.Duration `json:"age_ns"`
	Threshold  time.Duration `json:"threshold_ns"`

	// CommittedEpoch is the last epoch whose versions became visible here;
	// CurrentEpoch is the epoch the server currently issues timestamps in.
	// A gap means the switch protocol is wedged between revoke and commit.
	CommittedEpoch uint64 `json:"committed_epoch"`
	CurrentEpoch   uint64 `json:"current_epoch"`

	Peers            []PeerProbe `json:"peers,omitempty"`
	UnreachablePeers []int       `json:"unreachable_peers,omitempty"`

	// InflightEpochs lists epochs with unacked reservations (a revoked
	// epoch here means this server itself is the unacked FE).
	InflightEpochs []uint64 `json:"inflight_epochs,omitempty"`
	// PendingEpochs lists epochs with buffered functor metadata waiting
	// for commit.
	PendingEpochs []EpochBuffer `json:"pending_epochs,omitempty"`
	// OldestPending is the longest-waiting functor (buffered or queued).
	OldestPending *PendingFunctor `json:"oldest_pending,omitempty"`

	ProcessorQueues []int        `json:"processor_queues,omitempty"`
	CombinerQueues  []OwnerQueue `json:"combiner_queues,omitempty"`
	SendQueues      []SendQueue  `json:"send_queues,omitempty"`

	// WALFsyncAge is the time since the durability hook's last fsync, when
	// a hook exposing it is attached (-1 when unknown).
	WALFsyncAge time.Duration `json:"wal_fsync_age_ns,omitempty"`

	// SlowTraces cross-links the tracer's slow-transaction ring: trace IDs
	// captured around the stall, inspectable at /debug/traces.
	SlowTraces []string `json:"slow_traces,omitempty"`

	Goroutines       int    `json:"goroutines,omitempty"`
	GoroutineProfile string `json:"goroutine_profile,omitempty"`
}

// Event is one watchdog state transition, kept in a bounded ring.
type Event struct {
	Kind string    `json:"kind"`
	At   time.Time `json:"at"`
	// Epoch is the committed epoch at the transition.
	Epoch uint64 `json:"epoch"`
	// Age is how long progress had been stuck (detected) or how long the
	// whole episode lasted (cleared).
	Age time.Duration `json:"age_ns"`
}

// WatchdogConfig configures one server's epoch-progress watchdog.
type WatchdogConfig struct {
	// Server is the owning server's ID, stamped on snapshots.
	Server int
	// Threshold is the maximum progress age before a stall is declared.
	// Required (Watchdog returns nil without it).
	Threshold time.Duration
	// Poll is the check cadence (default Threshold/4, min 1ms).
	Poll time.Duration
	// RingSize bounds the snapshot flight-recorder ring (default 16).
	RingSize int
	// Progress returns a monotonically advancing value — ALOHA-DB uses the
	// visibility bound, so any committed epoch is progress. Required.
	Progress func() uint64
	// Capture builds the stall snapshot (peer probes, queue depths, …).
	// Called once per stall episode, outside the watchdog lock. Optional.
	Capture func(ctx context.Context) *StallSnapshot
	// OnEvent receives stall.detected / stall.cleared transitions
	// (optional; events are also kept in the ring).
	OnEvent func(Event)
	// ProfileBytes bounds the abbreviated goroutine profile attached to
	// snapshots (default 16KiB, negative disables).
	ProfileBytes int
}

// Watchdog tracks one server's epoch progress and records stalls. A nil
// *Watchdog is valid and inert, mirroring the tracer's disabled path.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	lastVal     uint64
	lastChange  time.Time
	active      bool
	activeSince time.Time
	stalls      uint64
	stallTime   time.Duration    // closed episodes only; see StallTime
	snaps       []*StallSnapshot // ring, newest last
	events      []Event          // ring, newest last
}

const watchdogEventRing = 64

// NewWatchdog builds a stopped watchdog; call Start to begin polling.
// Returns nil (inert) when Threshold or Progress is unset.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Threshold <= 0 || cfg.Progress == nil {
		return nil
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Threshold / 4
	}
	if cfg.Poll < time.Millisecond {
		cfg.Poll = time.Millisecond
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 16
	}
	if cfg.ProfileBytes == 0 {
		cfg.ProfileBytes = 16 << 10
	}
	return &Watchdog{cfg: cfg}
}

// Start begins the polling loop. Nil-safe no-op.
func (w *Watchdog) Start() {
	if w == nil || w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	w.mu.Lock()
	w.lastVal = w.cfg.Progress()
	w.lastChange = time.Now()
	w.mu.Unlock()
	go w.loop()
}

// Stop halts the loop. Nil-safe, idempotent.
func (w *Watchdog) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.check(time.Now())
		}
	}
}

// check is one poll: progress advanced clears any active stall; a stuck
// value past the threshold opens one (one capture per episode).
func (w *Watchdog) check(now time.Time) {
	cur := w.cfg.Progress()
	w.mu.Lock()
	if cur != w.lastVal {
		w.lastVal = cur
		w.lastChange = now
		if !w.active {
			w.mu.Unlock()
			return
		}
		w.active = false
		w.stallTime += now.Sub(w.activeSince)
		ev := Event{Kind: EventStallCleared, At: now, Epoch: cur, Age: now.Sub(w.activeSince)}
		w.pushEvent(ev)
		w.mu.Unlock()
		w.emit(ev)
		return
	}
	age := now.Sub(w.lastChange)
	if w.active || age < w.cfg.Threshold {
		w.mu.Unlock()
		return
	}
	w.active = true
	w.activeSince = now
	w.stalls++
	ev := Event{Kind: EventStallDetected, At: now, Epoch: cur, Age: age}
	w.pushEvent(ev)
	w.mu.Unlock()

	snap := w.capture(now, age, cur)
	w.mu.Lock()
	w.snaps = append(w.snaps, snap)
	if len(w.snaps) > w.cfg.RingSize {
		w.snaps = w.snaps[len(w.snaps)-w.cfg.RingSize:]
	}
	w.mu.Unlock()
	w.emit(ev)
}

// capture runs the configured capture hook (outside the lock — it probes
// peers) and fills the watchdog-owned fields.
func (w *Watchdog) capture(now time.Time, age time.Duration, progress uint64) *StallSnapshot {
	var snap *StallSnapshot
	if w.cfg.Capture != nil {
		// The capture probes peers; bounding it by the threshold keeps a
		// hung probe from blocking the poll loop past one episode.
		ctx, cancel := context.WithTimeout(context.Background(), w.cfg.Threshold)
		snap = w.cfg.Capture(ctx)
		cancel()
	}
	if snap == nil {
		snap = &StallSnapshot{}
	}
	snap.Server = w.cfg.Server
	snap.DetectedAt = now
	snap.Age = age
	snap.Threshold = w.cfg.Threshold
	if snap.Goroutines == 0 {
		snap.Goroutines = runtime.NumGoroutine()
	}
	if snap.GoroutineProfile == "" && w.cfg.ProfileBytes > 0 {
		buf := make([]byte, w.cfg.ProfileBytes)
		n := runtime.Stack(buf, true)
		snap.GoroutineProfile = string(buf[:n])
	}
	return snap
}

func (w *Watchdog) pushEvent(ev Event) {
	w.events = append(w.events, ev)
	if len(w.events) > watchdogEventRing {
		w.events = w.events[len(w.events)-watchdogEventRing:]
	}
}

func (w *Watchdog) emit(ev Event) {
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(ev)
	}
}

// Active reports whether a stall episode is open. Nil-safe.
func (w *Watchdog) Active() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active
}

// Stalls returns the number of stall episodes detected since start.
// Nil-safe and allocation-free (the flight recorder samples it every
// tick).
func (w *Watchdog) Stalls() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalls
}

// StallTime returns the cumulative wall time spent inside stall episodes,
// including the open one. Nil-safe; feeds the trend rows' stall-seconds
// column.
func (w *Watchdog) StallTime() time.Duration {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.stallTime
	if w.active {
		total += time.Since(w.activeSince)
	}
	return total
}

// Health returns (ok, reason) for readiness probes: not ok while a stall
// episode is open. Nil-safe (always healthy).
func (w *Watchdog) Health() (bool, string) {
	if w == nil {
		return true, ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.active {
		return true, ""
	}
	return false, "epoch stall: no progress for " + time.Since(w.lastChange).Round(time.Millisecond).String() +
		" (threshold " + w.cfg.Threshold.String() + ")"
}

// Snapshots returns the flight-recorder ring, oldest first. Nil-safe.
func (w *Watchdog) Snapshots() []*StallSnapshot {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*StallSnapshot, len(w.snaps))
	copy(out, w.snaps)
	return out
}

// Events returns the transition ring, oldest first. Nil-safe.
func (w *Watchdog) Events() []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Event, len(w.events))
	copy(out, w.events)
	return out
}

// StallStatus is the /debug/stall JSON document.
type StallStatus struct {
	Active bool `json:"active"`
	// StallsTotal counts stall episodes since start.
	StallsTotal uint64 `json:"stalls_total"`
	// ProgressAge is how long the progress signal has been unchanged.
	ProgressAge time.Duration `json:"progress_age_ns"`
	Threshold   time.Duration `json:"threshold_ns"`
	// Snapshots is the flight-recorder ring, oldest first; the last entry
	// describes the active (or most recent) stall.
	Snapshots []*StallSnapshot `json:"snapshots,omitempty"`
	Events    []Event          `json:"events,omitempty"`
}

// Status assembles the /debug/stall document. Nil-safe (inactive, empty).
func (w *Watchdog) Status() StallStatus {
	if w == nil {
		return StallStatus{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := StallStatus{
		Active:      w.active,
		StallsTotal: w.stalls,
		Threshold:   w.cfg.Threshold,
	}
	if !w.lastChange.IsZero() {
		st.ProgressAge = time.Since(w.lastChange)
	}
	st.Snapshots = make([]*StallSnapshot, len(w.snaps))
	copy(st.Snapshots, w.snaps)
	st.Events = make([]Event, len(w.events))
	copy(st.Events, w.events)
	return st
}

// Watchdog metric family names.
const (
	FamStallActive = "aloha_stall_active"
	FamStallsTotal = "aloha_stalls_total"
	FamEpochAge    = "aloha_epoch_age_seconds"
)

// MetricFamilies renders the watchdog's gauges. Nil-safe.
func (w *Watchdog) MetricFamilies() []metrics.Family {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	active := int64(0)
	if w.active {
		active = 1
	}
	stalls := w.stalls
	var age time.Duration
	if !w.lastChange.IsZero() {
		age = time.Since(w.lastChange)
	}
	w.mu.Unlock()
	return []metrics.Family{
		{
			Name: FamStallActive, Help: "1 while an epoch-progress stall episode is open.",
			Kind:   metrics.KindGauge,
			Series: []metrics.Series{metrics.GaugeSeries(active)},
		},
		{
			Name: FamStallsTotal, Help: "Epoch-progress stall episodes detected since start.",
			Kind:   metrics.KindCounter,
			Series: []metrics.Series{metrics.CounterSeries(stalls)},
		},
		{
			Name: FamEpochAge, Help: "Time since the visibility bound last advanced.",
			Kind: metrics.KindGauge, Unit: metrics.UnitSeconds,
			Series: []metrics.Series{metrics.GaugeSeries(int64(age))},
		},
	}
}

// Handler serves the flight recorder as JSON (mounted at /debug/stall).
// Nil-safe: a disabled watchdog serves an inactive empty status.
func (w *Watchdog) Handler() http.Handler {
	return http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		wr.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(wr)
		enc.SetIndent("", "  ")
		_ = enc.Encode(w.Status())
	})
}
