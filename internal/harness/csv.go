package harness

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"
)

// WriteCSV emits results as CSV for external plotting tools (the figure
// runners print human-readable rows; this is the machine-readable form).
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"engine", "label", "txns", "aborts", "duration_ms",
		"throughput_txn_s", "latency_mean_ms", "latency_p50_ms",
		"latency_p95_ms", "latency_p99_ms", "latency_max_ms", "samples",
	}); err != nil {
		return err
	}
	msStr := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	for _, r := range results {
		rec := []string{
			r.Engine,
			r.Label,
			strconv.FormatUint(r.Txns, 10),
			strconv.FormatUint(r.Aborts, 10),
			msStr(r.Duration),
			strconv.FormatFloat(r.Throughput, 'f', 1, 64),
			msStr(r.Latency.Mean),
			msStr(r.Latency.P50),
			msStr(r.Latency.P95),
			msStr(r.Latency.P99),
			msStr(r.Latency.Max),
			strconv.Itoa(r.Latency.N),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
