package harness

import (
	"fmt"
	"io"
	"time"

	"alohadb/internal/calvin"
	"alohadb/internal/core"
	"alohadb/internal/metrics"
	"alohadb/internal/trace"
	"alohadb/internal/workload/tpcc"
	"alohadb/internal/workload/ycsb"
)

// Options scales the figure sweeps. Quick mode shrinks data sizes, point
// counts, and measurement windows so the full suite runs in minutes on a
// laptop; full mode uses the paper's parameters (§V-A).
type Options struct {
	// Quick selects the reduced sweep.
	Quick bool
	// Servers is the cluster size for Figures 6, 7, 9, 10, 11 (paper: 8).
	Servers int
	// Duration is the measurement window per parameter point.
	Duration time.Duration
	// Items and Customers set the TPC-C data scale.
	Items     int
	Customers int
	// Workers is the per-server processing pool size.
	Workers int
	// Out receives the printed rows (nil discards).
	Out io.Writer
	// Tracer, when non-nil, traces the ALOHA-DB clusters under benchmark
	// (aloha-bench -trace-sample / -trace-slowest).
	Tracer *trace.Tracer
}

// WithDefaults fills the option defaults for the selected mode.
func (o Options) WithDefaults() Options {
	if o.Servers <= 0 {
		if o.Quick {
			o.Servers = 4
		} else {
			o.Servers = 8
		}
	}
	if o.Duration <= 0 {
		if o.Quick {
			o.Duration = 400 * time.Millisecond
		} else {
			o.Duration = 2 * time.Second
		}
	}
	if o.Items <= 0 {
		if o.Quick {
			o.Items = 2000
		} else {
			o.Items = 100_000
		}
	}
	if o.Customers <= 0 {
		if o.Quick {
			o.Customers = 60
		} else {
			o.Customers = 3000
		}
	}
	if o.Workers <= 0 {
		// The simulated network's injected latency releases the CPU, so
		// generous per-server worker pools let functor computations
		// overlap round trips, as the paper's thread-pool processors do.
		o.Workers = 8
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) tpccConfig(scaled bool, perHost int) tpcc.Config {
	cfg := tpcc.Config{
		Servers:              o.Servers,
		Scaled:               scaled,
		Items:                o.Items,
		CustomersPerDistrict: o.Customers,
		AbortRate:            0.01,
	}
	if scaled {
		cfg.DistrictsPerServer = perHost
	} else {
		cfg.WarehousesPerServer = perHost
	}
	return cfg
}

// alohaNewOrderStream builds per-client NewOrder generators for ALOHA-DB.
func alohaNewOrderStream(cfg tpcc.Config, seedBase int64) func(client int) func() core.Txn {
	return func(cli int) func() core.Txn {
		g, err := tpcc.NewGenerator(cfg, cli%cfg.Servers, seedBase+int64(cli))
		if err != nil {
			panic(err)
		}
		return func() core.Txn { return tpcc.AlohaNewOrder(cfg, g.NextNewOrder()) }
	}
}

func alohaPaymentStream(cfg tpcc.Config, seedBase int64) func(client int) func() core.Txn {
	return func(cli int) func() core.Txn {
		g, err := tpcc.NewGenerator(cfg, cli%cfg.Servers, seedBase+int64(cli))
		if err != nil {
			panic(err)
		}
		return func() core.Txn { return tpcc.AlohaPayment(g.NextPayment()) }
	}
}

// calvinNewOrderStream builds per-client generators for Calvin. Calvin's
// deterministic design cannot abort, so its stream carries no invalid
// items (§V-A2).
func calvinNewOrderStream(cfg tpcc.Config, seedBase int64) func(client int) func() calvin.Txn {
	cfg.AbortRate = 0
	return func(cli int) func() calvin.Txn {
		g, err := tpcc.NewGenerator(cfg, cli%cfg.Servers, seedBase+int64(cli))
		if err != nil {
			panic(err)
		}
		return func() calvin.Txn { return tpcc.CalvinNewOrder(cfg, g.NextNewOrder()) }
	}
}

func calvinPaymentStream(cfg tpcc.Config, seedBase int64) func(client int) func() calvin.Txn {
	return func(cli int) func() calvin.Txn {
		g, err := tpcc.NewGenerator(cfg, cli%cfg.Servers, seedBase+int64(cli))
		if err != nil {
			panic(err)
		}
		return func() calvin.Txn { return tpcc.CalvinPayment(g.NextPayment()) }
	}
}

// runAlohaTPCC measures one (config, clients) point on ALOHA-DB. sample
// selects the latency-coupled closed loop (Figure 6) vs the saturation
// mode used for peak-throughput figures.
func runAlohaTPCC(o Options, cfg tpcc.Config, label string, clients int, sample bool,
	stream func(tpcc.Config, int64) func(int) func() core.Txn) (Result, error) {
	c, err := NewAlohaTPCC(cfg, 0, o.Workers, o.Tracer)
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	res, err := RunAloha(AlohaRun{
		Cluster:       c,
		NewTxn:        stream(cfg, int64(clients)*101),
		Clients:       clients,
		BatchSize:     16,
		Duration:      o.Duration,
		SampleLatency: sample,
	})
	res.Label = label
	return res, err
}

// runCalvinTPCC measures one (config, clients) point on Calvin.
func runCalvinTPCC(o Options, cfg tpcc.Config, label string, clients int,
	stream func(tpcc.Config, int64) func(int) func() calvin.Txn) (Result, error) {
	c, err := NewCalvinTPCC(cfg, 0, o.Workers)
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	res, err := RunCalvin(CalvinRun{
		Cluster:   c,
		NewTxn:    stream(cfg, int64(clients)*103),
		Clients:   clients,
		BatchSize: 16,
		Duration:  o.Duration,
	})
	res.Label = label
	return res, err
}

// Figure6 regenerates the throughput-vs-latency sweep for NewOrder
// transactions: ALOHA-DB and Calvin under TPC-C (1 or 10 warehouses per
// host) and scaled TPC-C (1 or 10 districts per host), varying offered
// load via the closed-loop client count.
func Figure6(o Options) ([]Result, error) {
	o = o.WithDefaults()
	clientSweep := []int{1, 4, 16, 64}
	if o.Quick {
		clientSweep = []int{2, 8}
	}
	configs := []struct {
		label   string
		scaled  bool
		perHost int
	}{
		{label: "1W", scaled: false, perHost: 1},
		{label: "10W", scaled: false, perHost: 10},
		{label: "1D", scaled: true, perHost: 1},
		{label: "10D", scaled: true, perHost: 10},
	}
	fmt.Fprintf(o.Out, "# Figure 6: throughput vs latency, NewOrder, %d servers\n", o.Servers)
	fmt.Fprintf(o.Out, "# engine config clients  throughput(txn/s)  mean_latency_ms  p99_ms\n")
	var out []Result
	for _, cc := range configs {
		cfg := o.tpccConfig(cc.scaled, cc.perHost)
		for _, clients := range clientSweep {
			res, err := runAlohaTPCC(o, cfg, cc.label, clients, true, alohaNewOrderStream)
			if err != nil {
				return out, err
			}
			fmt.Fprintf(o.Out, "ALOHA  %-4s %4d  %10.0f  %8.2f  %8.2f\n",
				cc.label, clients, res.Throughput, ms(res.Latency.Mean), ms(res.Latency.P99))
			out = append(out, res)

			cres, err := runCalvinTPCC(o, cfg, cc.label, clients, calvinNewOrderStream)
			if err != nil {
				return out, err
			}
			fmt.Fprintf(o.Out, "Calvin %-4s %4d  %10.0f  %8.2f  %8.2f\n",
				cc.label, clients, cres.Throughput, ms(cres.Latency.Mean), ms(cres.Latency.P99))
			out = append(out, cres)
		}
	}
	return out, nil
}

// Figure7 regenerates the density sweep: NewOrder and Payment throughput
// under 1..10 warehouses (TPC-C) or districts (scaled TPC-C) per host.
func Figure7(o Options) ([]Result, error) {
	o = o.WithDefaults()
	densities := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if o.Quick {
		densities = []int{1, 3, 10}
	}
	clients := 8 * o.Servers
	if o.Quick {
		clients = 4 * o.Servers
	}
	fmt.Fprintf(o.Out, "# Figure 7: throughput vs warehouses/districts per host, %d servers\n", o.Servers)
	fmt.Fprintf(o.Out, "# series density throughput(txn/s)\n")
	var out []Result
	type series struct {
		name   string
		scaled bool
		run    func(cfg tpcc.Config, label string) (Result, error)
	}
	all := []series{
		{name: "Aloha-STPCC-NewOrder", scaled: true, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runAlohaTPCC(o, cfg, label, clients, false, alohaNewOrderStream)
		}},
		{name: "Aloha-TPCC-NewOrder", scaled: false, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runAlohaTPCC(o, cfg, label, clients, false, alohaNewOrderStream)
		}},
		{name: "Aloha-TPCC-Payment", scaled: false, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runAlohaTPCC(o, cfg, label, clients, false, alohaPaymentStream)
		}},
		{name: "Calvin-STPCC-NewOrder", scaled: true, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runCalvinTPCC(o, cfg, label, clients, calvinNewOrderStream)
		}},
		{name: "Calvin-TPCC-NewOrder", scaled: false, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runCalvinTPCC(o, cfg, label, clients, calvinNewOrderStream)
		}},
		{name: "Calvin-TPCC-Payment", scaled: false, run: func(cfg tpcc.Config, label string) (Result, error) {
			return runCalvinTPCC(o, cfg, label, clients, calvinPaymentStream)
		}},
	}
	for _, s := range all {
		for _, d := range densities {
			cfg := o.tpccConfig(s.scaled, d)
			label := fmt.Sprintf("%s/%d", s.name, d)
			res, err := s.run(cfg, label)
			if err != nil {
				return out, err
			}
			fmt.Fprintf(o.Out, "%-24s %2d  %10.0f\n", s.name, d, res.Throughput)
			out = append(out, res)
		}
	}
	return out, nil
}

// Figure8 regenerates the scale-out sweep: NewOrder throughput from 1 to
// 20 servers for both engines under all four partition settings.
func Figure8(o Options) ([]Result, error) {
	o = o.WithDefaults()
	serverSweep := []int{1, 2, 5, 10, 15, 20}
	if o.Quick {
		serverSweep = []int{1, 2, 4}
	}
	configs := []struct {
		label   string
		scaled  bool
		perHost int
	}{
		{label: "1W", scaled: false, perHost: 1},
		{label: "10W", scaled: false, perHost: 10},
		{label: "1D", scaled: true, perHost: 1},
		{label: "10D", scaled: true, perHost: 10},
	}
	fmt.Fprintf(o.Out, "# Figure 8: scale-out, NewOrder throughput\n")
	fmt.Fprintf(o.Out, "# engine config servers throughput(txn/s)\n")
	var out []Result
	for _, cc := range configs {
		for _, servers := range serverSweep {
			if servers < 2 && !cc.scaled {
				// The distributed-transaction convention needs a second
				// server under TPC-C partitioning; with one server the
				// workload degenerates to single-warehouse supplies.
				_ = servers
			}
			oo := o
			oo.Servers = servers
			cfg := oo.tpccConfig(cc.scaled, cc.perHost)
			clients := 8 * servers
			if o.Quick {
				clients = 4 * servers
			}
			res, err := runAlohaTPCC(oo, cfg, cc.label, clients, false, alohaNewOrderStream)
			if err != nil {
				return out, err
			}
			fmt.Fprintf(o.Out, "ALOHA  %-4s %3d  %10.0f\n", cc.label, servers, res.Throughput)
			out = append(out, res)
			cres, err := runCalvinTPCC(oo, cfg, cc.label, clients, calvinNewOrderStream)
			if err != nil {
				return out, err
			}
			fmt.Fprintf(o.Out, "Calvin %-4s %3d  %10.0f\n", cc.label, servers, cres.Throughput)
			out = append(out, cres)
		}
	}
	return out, nil
}

// ycsbOptions builds the microbenchmark configuration for a CI point.
func (o Options) ycsbConfig(ci float64) ycsb.Config {
	keys := 1_000_000
	if o.Quick {
		keys = 100_000
	}
	return ycsb.Config{
		Partitions:       o.Servers,
		KeysPerPartition: keys,
		ContentionIndex:  ci,
		Distributed:      o.Servers >= 2,
	}
}

// runYCSBPoint measures one contention-index point on both engines.
func runYCSBPoint(o Options, ci float64, clients int, epochAloha, epochCalvin time.Duration) (Result, Result, error) {
	return runYCSBPointOpt(o, ci, clients, epochAloha, epochCalvin, true, 0)
}

// runYCSBPointOpt is runYCSBPoint with explicit latency-sampling and
// arrival-jitter control.
func runYCSBPointOpt(o Options, ci float64, clients int, epochAloha, epochCalvin time.Duration, sample bool, jitter time.Duration) (Result, Result, error) {
	cfg := o.ycsbConfig(ci)
	ac, err := NewAlohaYCSB(cfg, epochAloha, o.Workers, o.Tracer)
	if err != nil {
		return Result{}, Result{}, err
	}
	ares, err := RunAloha(AlohaRun{
		Cluster: ac,
		NewTxn: func(cli int) func() core.Txn {
			g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
			if gerr != nil {
				panic(gerr)
			}
			return func() core.Txn { return ycsb.Aloha(g.Next()) }
		},
		Clients:       clients,
		BatchSize:     16,
		Duration:      o.Duration,
		SampleLatency: sample,
		PaceJitter:    jitter,
	})
	ac.Close()
	if err != nil {
		return Result{}, Result{}, err
	}
	ares.Label = fmt.Sprintf("CI=%g", ci)

	cc, err := NewCalvinYCSB(cfg, epochCalvin, o.Workers)
	if err != nil {
		return Result{}, Result{}, err
	}
	cres, err := RunCalvin(CalvinRun{
		Cluster: cc,
		NewTxn: func(cli int) func() calvin.Txn {
			g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
			if gerr != nil {
				panic(gerr)
			}
			return func() calvin.Txn { return ycsb.Calvin(g.Next()) }
		},
		Clients:   clients,
		BatchSize: 16,
		Duration:  o.Duration,
	})
	cc.Close()
	if err != nil {
		return Result{}, Result{}, err
	}
	cres.Label = ares.Label
	return ares, cres, nil
}

func withSeed(cfg ycsb.Config, seed int64) ycsb.Config {
	cfg.Seed = seed
	return cfg
}

// Figure9 regenerates the microbenchmark contention sweep: throughput as a
// function of the contention index.
func Figure9(o Options) ([]Result, error) {
	o = o.WithDefaults()
	cis := []float64{0.0001, 0.001, 0.0017, 0.01, 0.1}
	if o.Quick {
		cis = []float64{0.0001, 0.01, 0.1}
	}
	clients := 32 * o.Servers
	if o.Quick {
		clients = 16 * o.Servers
	}
	fmt.Fprintf(o.Out, "# Figure 9: microbenchmark throughput vs contention index, %d servers\n", o.Servers)
	fmt.Fprintf(o.Out, "# engine CI throughput(txn/s)\n")
	var out []Result
	for _, ci := range cis {
		ares, cres, err := runYCSBPointOpt(o, ci, clients, 0, 0, false, 0)
		if err != nil {
			return out, err
		}
		fmt.Fprintf(o.Out, "ALOHA  %-7g %10.0f\n", ci, ares.Throughput)
		fmt.Fprintf(o.Out, "Calvin %-7g %10.0f\n", ci, cres.Throughput)
		out = append(out, ares, cres)
	}
	return out, nil
}

// Figure10 regenerates the latency breakdown: per-stage time shares of the
// transaction lifecycle under low (0.0001) and high (0.1) contention at
// light load.
func Figure10(o Options) ([]StageBreakdown, error) {
	o = o.WithDefaults()
	var out []StageBreakdown
	fmt.Fprintf(o.Out, "# Figure 10: latency breakdown by stage, light load\n")
	for _, ci := range []float64{0.0001, 0.1} {
		cfg := o.ycsbConfig(ci)
		ac, err := NewAlohaYCSB(cfg, 0, o.Workers, o.Tracer)
		if err != nil {
			return out, err
		}
		_, err = RunAloha(AlohaRun{
			Cluster: ac,
			NewTxn: func(cli int) func() core.Txn {
				g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
				if gerr != nil {
					panic(gerr)
				}
				return func() core.Txn { return ycsb.Aloha(g.Next()) }
			},
			Clients:       2, // light load (paper: 5% of peak)
			Duration:      o.Duration,
			SampleLatency: true,
		})
		if err != nil {
			ac.Close()
			return out, err
		}
		stats := ac.Stats()
		fams := ac.Metrics()
		ac.Close()
		b := alohaBreakdown(stats, fmt.Sprintf("CI=%g", ci))
		stagePercentiles(&b, fams)
		fmt.Fprintln(o.Out, b)
		out = append(out, b)

		cc, err := NewCalvinYCSB(cfg, 0, o.Workers)
		if err != nil {
			return out, err
		}
		_, err = RunCalvin(CalvinRun{
			Cluster: cc,
			NewTxn: func(cli int) func() calvin.Txn {
				g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
				if gerr != nil {
					panic(gerr)
				}
				return func() calvin.Txn { return ycsb.Calvin(g.Next()) }
			},
			Clients:  2,
			Duration: o.Duration,
		})
		if err != nil {
			cc.Close()
			return out, err
		}
		cstats := cc.Stats()
		cc.Close()
		cb := calvinBreakdown(cstats, fmt.Sprintf("CI=%g", ci))
		fmt.Fprintln(o.Out, cb)
		out = append(out, cb)
	}
	return out, nil
}

func alohaBreakdown(s core.Stats, label string) StageBreakdown {
	install := meanOf(s.InstallTime, s.InstallCount)
	wait := meanOf(s.WaitTime, s.WaitCount)
	compute := meanOf(s.ComputeTime, s.ComputeCount)
	total := install + wait + compute
	frac := func(d time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return float64(d) / float64(total)
	}
	return StageBreakdown{
		Engine: "ALOHA",
		Label:  label,
		Stages: []Stage{
			{Name: "functor-installing", Fraction: frac(install), Mean: install},
			{Name: "wait-for-processing", Fraction: frac(wait), Mean: wait},
			{Name: "processing", Fraction: frac(compute), Mean: compute},
		},
	}
}

// stagePercentiles fills the breakdown's p50/p95/p99 columns from the
// cluster's per-stage latency histograms (series merged across servers).
func stagePercentiles(b *StageBreakdown, fams []metrics.Family) {
	famFor := map[string]string{
		"functor-installing":  core.FamStageInstall,
		"wait-for-processing": core.FamStageWait,
		"processing":          core.FamStageCompute,
	}
	byName := make(map[string]metrics.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for i := range b.Stages {
		f, ok := byName[famFor[b.Stages[i].Name]]
		if !ok {
			continue
		}
		h := f.TotalHist()
		if h.Count == 0 {
			continue
		}
		b.Stages[i].P50 = h.QuantileDuration(0.50)
		b.Stages[i].P95 = h.QuantileDuration(0.95)
		b.Stages[i].P99 = h.QuantileDuration(0.99)
	}
}

func calvinBreakdown(s calvin.Stats, label string) StageBreakdown {
	seq := meanOf(s.SequencingTime, s.SequencingN)
	lockRead := meanOf(s.LockReadTime, s.LockReadN)
	proc := meanOf(s.ProcessingTime, s.ProcessingN)
	// Lock-and-read includes processing inside its window; subtract so the
	// stages partition the lifecycle like the paper's figure.
	if lockRead > proc {
		lockRead -= proc
	}
	total := seq + lockRead + proc
	frac := func(d time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return float64(d) / float64(total)
	}
	return StageBreakdown{
		Engine: "Calvin",
		Label:  label,
		Stages: []Stage{
			{Name: "sequencing", Fraction: frac(seq), Mean: seq},
			{Name: "locking-and-read", Fraction: frac(lockRead), Mean: lockRead},
			{Name: "processing", Fraction: frac(proc), Mean: proc},
		},
	}
}

func meanOf(total time.Duration, n uint64) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Figure11 regenerates the epoch-duration sweep: mean latency under
// various epoch durations at medium contention (CI 0.001) and light load.
// The paper's expected slopes: ~0.5 for ALOHA-DB (uniform arrivals wait
// half an epoch) vs ~1.0 for Calvin (whose open-source generator emits at
// epoch start; our closed-loop clients resubmit immediately after each
// batch completes, reproducing that front-loading).
func Figure11(o Options) ([]Result, error) {
	o = o.WithDefaults()
	durations := []time.Duration{
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
		120 * time.Millisecond, 160 * time.Millisecond, 200 * time.Millisecond,
	}
	if o.Quick {
		durations = []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 200 * time.Millisecond}
	}
	fmt.Fprintf(o.Out, "# Figure 11: latency vs epoch duration, CI=0.001, light load\n")
	fmt.Fprintf(o.Out, "# engine epoch_ms mean_latency_ms\n")
	var out []Result
	for _, d := range durations {
		oo := o
		// The measurement window must span several epochs.
		if oo.Duration < 6*d {
			oo.Duration = 6 * d
		}
		// Uniform arrivals: jitter each client by up to one epoch so the
		// measured wait is the paper's half-epoch average for ALOHA-DB.
		ares, cres, err := runYCSBPointOpt(oo, 0.001, 2, d, d, true, d)
		if err != nil {
			return out, err
		}
		ares.Label = fmt.Sprintf("epoch=%s", d)
		cres.Label = ares.Label
		fmt.Fprintf(o.Out, "ALOHA  %4d  %8.2f\n", d.Milliseconds(), ms(ares.Latency.Mean))
		fmt.Fprintf(o.Out, "Calvin %4d  %8.2f\n", d.Milliseconds(), ms(cres.Latency.Mean))
		out = append(out, ares, cres)
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
