package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	results := []Result{
		{
			Engine: "ALOHA", Label: "CI=0.1", Txns: 1000, Aborts: 10,
			Duration: time.Second, Throughput: 1000,
			Latency: Latency{N: 50, Mean: 25 * time.Millisecond, P50: 24 * time.Millisecond,
				P95: 30 * time.Millisecond, P99: 40 * time.Millisecond, Max: 55 * time.Millisecond},
		},
		{Engine: "Calvin", Label: "CI=0.1", Txns: 500, Duration: time.Second, Throughput: 500},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want header + 2", len(records))
	}
	if records[0][0] != "engine" || len(records[0]) != 12 {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "ALOHA" || records[1][2] != "1000" || records[1][3] != "10" {
		t.Errorf("row 1 = %v", records[1])
	}
	if !strings.HasPrefix(records[1][6], "25.000") {
		t.Errorf("mean latency = %q", records[1][6])
	}
	if records[2][0] != "Calvin" {
		t.Errorf("row 2 = %v", records[2])
	}
}
