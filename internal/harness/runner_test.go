package harness

import (
	"testing"
	"time"

	"alohadb/internal/core"
	"alohadb/internal/workload/ycsb"
)

// TestPaceJitterSpreadsArrivals: with jitter of one epoch, mean latency
// lands near half an epoch (uniform arrivals); without jitter, the closed
// loop self-synchronizes to epoch boundaries and waits a full epoch.
func TestPaceJitterSpreadsArrivals(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const epochDur = 20 * time.Millisecond
	cfg := ycsb.Config{Partitions: 2, KeysPerPartition: 10_000, ContentionIndex: 0.01, Distributed: true}
	measure := func(jitter time.Duration) time.Duration {
		c, err := NewAlohaYCSB(cfg, epochDur, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := RunAloha(AlohaRun{
			Cluster: c,
			NewTxn: func(cli int) func() core.Txn {
				g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
				if gerr != nil {
					t.Error(gerr)
				}
				return func() core.Txn { return ycsb.Aloha(g.Next()) }
			},
			Clients:       2,
			Duration:      400 * time.Millisecond,
			SampleLatency: true,
			PaceJitter:    jitter,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency.N == 0 {
			t.Fatal("no latency samples")
		}
		return res.Latency.Mean
	}
	jittered := measure(epochDur)
	synced := measure(0)
	// Jittered arrivals should wait well under a full epoch on average;
	// synchronized arrivals wait about one epoch. Allow generous margins
	// for a loaded machine.
	if jittered > 17*time.Millisecond {
		t.Errorf("jittered mean %v, want well below one 20ms epoch", jittered)
	}
	if synced < 15*time.Millisecond {
		t.Errorf("synchronized mean %v, want about one epoch", synced)
	}
}

// TestSaturationModeDrains: a saturation run (no latency sampling) must
// not report throughput until installed functors are fully computed.
func TestSaturationModeDrains(t *testing.T) {
	cfg := ycsb.Config{Partitions: 2, KeysPerPartition: 5000, ContentionIndex: 0.01, Distributed: true}
	c, err := NewAlohaYCSB(cfg, 5*time.Millisecond, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := RunAloha(AlohaRun{
		Cluster: c,
		NewTxn: func(cli int) func() core.Txn {
			g, gerr := ycsb.NewGenerator(withSeed(cfg, int64(cli)+1))
			if gerr != nil {
				t.Error(gerr)
			}
			return func() core.Txn { return ycsb.Aloha(g.Next()) }
		},
		Clients:  4,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	// After the run returns, the processor queues are drained.
	s := c.Stats()
	if s.FunctorsComputed < s.FunctorsInstalled*9/10 {
		t.Errorf("computed %d of %d installed functors after drain", s.FunctorsComputed, s.FunctorsInstalled)
	}
}
