package harness

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"alohadb/internal/calvin"
	"alohadb/internal/core"
)

// AlohaRun drives a closed loop of clients against an ALOHA-DB cluster.
type AlohaRun struct {
	Cluster *core.Cluster
	// NewTxn builds one transaction for the given client; each client gets
	// an independent stream (generators are not concurrency-safe).
	NewTxn func(client int) func() core.Txn
	// Clients is the closed-loop concurrency (offered load knob).
	Clients int
	// BatchSize groups transactions per install round-trip, the paper's
	// RPC batching convention (§V-A2). Default 1.
	BatchSize int
	// Duration bounds the measurement window.
	Duration time.Duration
	// SampleLatency awaits full functor processing for one transaction of
	// each batch and records issue-to-processed latency, the paper's
	// latency metric (§V-A3). When false, clients pace on install
	// acknowledgments (acknowledgment option 1, §IV-A) so the engine is
	// driven to saturation; the run then drains every processor queue
	// before the clock stops, so reported throughput still means "fully
	// computed transactions per second".
	SampleLatency bool
	// PaceJitter sleeps a uniform random delay in [0, PaceJitter) before
	// each batch, de-synchronizing closed-loop clients from the epoch
	// boundary. Latency-vs-epoch-duration measurements (Figure 11) use it
	// to model uniform arrivals: a transaction arriving at a uniformly
	// random point of an epoch waits half the epoch on average, the
	// paper's ~0.5 slope.
	PaceJitter time.Duration
}

// RunAloha executes the closed loop and reports committed throughput and
// sampled latencies.
func RunAloha(r AlohaRun) (Result, error) {
	if r.Clients <= 0 {
		r.Clients = 1
	}
	if r.BatchSize <= 0 {
		r.BatchSize = 1
	}
	ctx := context.Background()
	var (
		txns    atomic.Uint64
		aborts  atomic.Uint64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lat     LatencySample
		stopped atomic.Bool
	)
	n := r.Cluster.NumServers()
	start := time.Now()
	for cli := 0; cli < r.Clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			gen := r.NewTxn(cli)
			fe := r.Cluster.Server(cli % n)
			rng := rand.New(rand.NewSource(int64(cli) + 1))
			var local LatencySample
			for !stopped.Load() {
				if r.PaceJitter > 0 {
					time.Sleep(time.Duration(rng.Int63n(int64(r.PaceJitter))))
				}
				batch := make([]core.Txn, r.BatchSize)
				for i := range batch {
					batch[i] = gen()
				}
				issued := time.Now()
				results, handles, err := fe.SubmitBatch(ctx, batch)
				if err != nil {
					break
				}
				committed := uint64(0)
				for _, res := range results {
					if res.Aborted {
						aborts.Add(1)
					} else {
						committed++
					}
				}
				txns.Add(committed)
				if r.SampleLatency && len(handles) > 0 {
					// Await the last handle of the batch: its functors are
					// processed no earlier than its batch-mates'.
					h := handles[len(handles)-1]
					if ab, _ := h.Installed(); !ab {
						if _, _, err := h.Await(ctx); err == nil {
							local.Add(time.Since(issued))
						}
					}
				}
			}
			mu.Lock()
			lat.Merge(&local)
			mu.Unlock()
		}(cli)
	}
	time.Sleep(r.Duration)
	stopped.Store(true)
	wg.Wait()
	if !r.SampleLatency {
		// Saturation mode: charge the cost of finishing the asynchronous
		// functor computations to the measured window.
		r.Cluster.DrainProcessors()
	}
	elapsed := time.Since(start)
	return Result{
		Engine:     "ALOHA",
		Txns:       txns.Load(),
		Aborts:     aborts.Load(),
		Duration:   elapsed,
		Throughput: float64(txns.Load()) / elapsed.Seconds(),
		Latency:    lat.Summarize(),
	}, nil
}

// CalvinRun drives a closed loop of clients against a Calvin cluster.
type CalvinRun struct {
	Cluster   *calvin.Cluster
	NewTxn    func(client int) func() calvin.Txn
	Clients   int
	BatchSize int
	Duration  time.Duration
}

// RunCalvin executes the closed loop; Calvin latency spans issue to full
// execution on all participants (the replicated-processing equivalent of
// the paper's metric).
func RunCalvin(r CalvinRun) (Result, error) {
	if r.Clients <= 0 {
		r.Clients = 1
	}
	if r.BatchSize <= 0 {
		r.BatchSize = 1
	}
	var (
		txns    atomic.Uint64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lat     LatencySample
		stopped atomic.Bool
	)
	parts := r.Cluster
	start := time.Now()
	for cli := 0; cli < r.Clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			gen := r.NewTxn(cli)
			origin := cli % parts.NumPartitions()
			var local LatencySample
			for !stopped.Load() {
				batch := make([]calvin.Txn, r.BatchSize)
				for i := range batch {
					batch[i] = gen()
				}
				issued := time.Now()
				handles, err := parts.SubmitMany(origin, batch)
				if err != nil {
					break
				}
				// Closed loop: wait for the batch to finish everywhere.
				for _, h := range handles {
					<-h.Done()
				}
				txns.Add(uint64(len(handles)))
				local.Add(time.Since(issued))
			}
			mu.Lock()
			lat.Merge(&local)
			mu.Unlock()
		}(cli)
	}
	time.Sleep(r.Duration)
	stopped.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return Result{
		Engine:     "Calvin",
		Txns:       txns.Load(),
		Duration:   elapsed,
		Throughput: float64(txns.Load()) / elapsed.Seconds(),
		Latency:    lat.Summarize(),
	}, nil
}
