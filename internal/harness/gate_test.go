package harness

import (
	"strings"
	"testing"
)

func TestGateFailures(t *testing.T) {
	committed := []NetBenchRow{
		{Name: "remote_read_tcp_2s", Metric: "reads_per_s", Value: 1000},
		{Name: "remote_read_tcp_2s", Metric: "msgs_per_read", Value: 2},
		{Name: "neworder_tcp_2s_1w", Metric: "txn_per_s", Value: 500},
	}
	t.Run("pass within tolerance", func(t *testing.T) {
		fresh := []NetBenchRow{
			{Name: "remote_read_tcp_2s", Metric: "reads_per_s", Value: 950},
			{Name: "neworder_tcp_2s_1w", Metric: "txn_per_s", Value: 600},
		}
		if fails := GateFailures(committed, fresh, 0.10); len(fails) != 0 {
			t.Errorf("unexpected failures: %v", fails)
		}
	})
	t.Run("regression fails", func(t *testing.T) {
		fresh := []NetBenchRow{
			{Name: "remote_read_tcp_2s", Metric: "reads_per_s", Value: 800},
			{Name: "neworder_tcp_2s_1w", Metric: "txn_per_s", Value: 510},
		}
		fails := GateFailures(committed, fresh, 0.10)
		if len(fails) != 1 || !strings.Contains(fails[0], "reads_per_s") {
			t.Errorf("fails = %v, want one reads_per_s regression", fails)
		}
	})
	t.Run("ungated metrics ignored", func(t *testing.T) {
		fresh := []NetBenchRow{
			{Name: "remote_read_tcp_2s", Metric: "reads_per_s", Value: 1000},
			{Name: "remote_read_tcp_2s", Metric: "msgs_per_read", Value: 99},
			{Name: "neworder_tcp_2s_1w", Metric: "txn_per_s", Value: 500},
		}
		if fails := GateFailures(committed, fresh, 0.10); len(fails) != 0 {
			t.Errorf("ungated metric gated: %v", fails)
		}
	})
	t.Run("missing gated row fails", func(t *testing.T) {
		fresh := []NetBenchRow{
			{Name: "remote_read_tcp_2s", Metric: "reads_per_s", Value: 1000},
		}
		fails := GateFailures(committed, fresh, 0.10)
		if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
			t.Errorf("fails = %v, want one missing-row failure", fails)
		}
	})
}
